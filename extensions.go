package aqppp

import (
	"context"
	"time"

	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/exec"
)

// Insert appends one row to the prepared table (values in schema order:
// int64/int, float64, or string per column) and incrementally maintains
// the sample and BP-Cube(s) — the paper's data-update extension
// (Appendix C). The preparation must use a uniform sample, and string
// cube dimensions cannot receive unseen values.
func (p *Prepared) Insert(vals ...interface{}) error {
	if err := p.live("insert"); err != nil {
		return err
	}
	if p.shp != nil {
		return &exec.Error{Kind: exec.Unsupported, Op: "insert",
			Err: errSharded("incremental maintenance")}
	}
	if p.dist != nil {
		return &exec.Error{Kind: exec.Unsupported, Op: "insert",
			Err: errDist("incremental maintenance")}
	}
	if p.maintainer == nil {
		m, err := core.NewMaintainer(p.tbl, p.proc, 0x5eed5eed)
		if err != nil {
			return err
		}
		p.maintainer = m
	}
	return p.maintainer.Insert(vals...)
}

// QueryBootstrap answers a SUM/COUNT statement with an empirical
// (bootstrap) confidence interval instead of the closed form (§4.2.2).
func (p *Prepared) QueryBootstrap(statement string, resamples int) (Result, error) {
	return p.QueryBootstrapContext(context.Background(), statement, resamples)
}

// QueryBootstrapContext is QueryBootstrap with cancellation: the
// resampling loop checks ctx once per replicate. The DB's default
// budget caps the replicate count (MaxResamples) and the scratch
// buffers (MaxScratchBytes).
func (p *Prepared) QueryBootstrapContext(ctx context.Context, statement string, resamples int) (Result, error) {
	return p.QueryBootstrapWithBudget(ctx, statement, resamples, p.db.defaultBudget())
}

// QueryBootstrapWithBudget is QueryBootstrapContext with an explicit
// per-call Budget replacing the DB-wide default: the budget's
// MaxResamples and MaxScratchBytes caps apply to this one statement.
func (p *Prepared) QueryBootstrapWithBudget(ctx context.Context, statement string, resamples int, b Budget) (Result, error) {
	plan, err := p.PlanBootstrap(statement, resamples)
	if err != nil {
		return Result{}, err
	}
	return p.RunPlan(ctx, plan, b)
}

// PlanBootstrap parses and compiles a statement into a bootstrap plan
// without running it (the plan-once counterpart of QueryBootstrap; see
// DB.PlanExact). The resample seed is fixed, so one statement at one
// replicate count always builds the same plan — and the same cache key.
func (p *Prepared) PlanBootstrap(statement string, resamples int) (*exec.Plan, error) {
	if err := p.live("bootstrap"); err != nil {
		return nil, err
	}
	if p.dist != nil {
		return exec.PlanDistBootstrapStatement(p.dist, p.distHandle, p.tbl, statement, resamples, 0xb007)
	}
	if p.shp != nil {
		return exec.PlanShardedBootstrapStatement(p.shp, p.tbl, statement, resamples, 0xb007)
	}
	return exec.PlanBootstrapStatement(p.proc, p.tbl, statement, resamples, 0xb007)
}

// MultiPrepareOptions configures PrepareMulti: several templates sharing
// one sample and one total cube budget, split with the error-profile
// allocation of Appendix C.
type MultiPrepareOptions struct {
	// Table names the registered table.
	Table string
	// Templates lists the (aggregate, dimensions) templates to serve.
	Templates []Template
	// TotalCells is the combined BP-Cube budget.
	TotalCells int
	// SampleRate and Seed as in PrepareOptions.
	SampleRate float64
	Seed       uint64
}

// Template names one query template for PrepareMulti.
type Template struct {
	Aggregate  string
	Dimensions []string
}

// MultiPrepared serves several templates, routing each query to the best
// one.
type MultiPrepared struct {
	db    *DB
	tbl   *engine.Table
	mgr   *core.Manager
	state *prepState
}

// PrepareMulti builds a multi-template preparation.
func (db *DB) PrepareMulti(opts MultiPrepareOptions) (*MultiPrepared, error) {
	return db.PrepareMultiContext(context.Background(), opts)
}

// PrepareMultiContext is PrepareMulti with cancellation, at the same
// granularity as PrepareContext (one climb step).
func (db *DB) PrepareMultiContext(ctx context.Context, opts MultiPrepareOptions) (*MultiPrepared, error) {
	tbl, err := db.Table(opts.Table)
	if err != nil {
		return nil, err
	}
	if opts.SampleRate == 0 {
		opts.SampleRate = 0.01
	}
	templates := make([]cube.Template, len(opts.Templates))
	for i, t := range opts.Templates {
		templates[i] = cube.Template{Agg: t.Aggregate, Dims: t.Dimensions}
	}
	mgr, err := db.ex.PrepareMulti(ctx, tbl, core.ManagerConfig{
		Templates:  templates,
		TotalCells: opts.TotalCells,
		SampleRate: opts.SampleRate,
		Seed:       opts.Seed,
	}, db.defaultBudget())
	if err != nil {
		return nil, err
	}
	return &MultiPrepared{db: db, tbl: tbl, mgr: mgr, state: db.track(opts.Table)}, nil
}

// Budgets reports the per-template cell allocation.
func (m *MultiPrepared) Budgets() []int {
	return append([]int(nil), m.mgr.Budgets...)
}

// Query answers a statement with the best-matching template's processor;
// the second return value is the template index used.
func (m *MultiPrepared) Query(statement string) (Result, int, error) {
	return m.QueryContext(context.Background(), statement)
}

// QueryContext is Query with cancellation.
func (m *MultiPrepared) QueryContext(ctx context.Context, statement string) (Result, int, error) {
	if m.state != nil && m.state.dropped.Load() {
		return Result{}, 0, &exec.Error{Kind: exec.UnknownTable, Op: "multi",
			Err: errDropped(m.tbl.Name)}
	}
	plan, err := exec.PlanMultiStatement(m.mgr, m.tbl, statement)
	if err != nil {
		return Result{}, 0, err
	}
	out, err := m.db.ex.Run(ctx, plan, m.db.defaultBudget())
	if err != nil {
		return Result{}, 0, err
	}
	return toResult(out.Answer), out.Template, nil
}

// SpacePlan mirrors core.SpacePlan for the public API.
type SpacePlan = core.SpacePlan

// PlanSpace splits a byte budget between the sample and the BP-Cube so
// that per-query response time stays under the target (Appendix C,
// "Space Allocation"). Feed the result into PrepareOptions via
// SampleRate = plan.SampleRows / table rows and CellBudget =
// plan.CubeCells.
func (db *DB) PlanSpace(table string, totalBytes int64, responseTarget time.Duration) (SpacePlan, error) {
	tbl, err := db.Table(table)
	if err != nil {
		return SpacePlan{}, err
	}
	return core.PlanSpace(tbl, totalBytes, responseTarget)
}
