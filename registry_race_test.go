package aqppp

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// raceStmt is the query every registry-race worker runs.
const raceStmt = "SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400"

func racePrepareOptions() PrepareOptions {
	return PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.2, CellBudget: 50, Seed: 4,
	}
}

// TestRegistryRaceStress churns Register/Drop against concurrent
// Prepare/Query/Exact callers under -race. Correctness bar: no data
// race, and every error any caller sees is either the expected
// duplicate-registration complaint or carries the unknown-table kind —
// a mid-churn caller must never get a half-built answer or an
// unclassified failure.
func TestRegistryRaceStress(t *testing.T) {
	db := NewDB()
	tbl := demoTable(500, 21)
	const rounds = 40

	var wg sync.WaitGroup
	var stop atomic.Bool
	okErr := func(op string, err error) {
		if err == nil {
			return
		}
		if strings.Contains(err.Error(), "already registered") {
			return // churner collided with the initial state; expected
		}
		if k := ErrorKindOf(err); k != ErrUnknownTable {
			t.Errorf("%s: kind %v for %v; want unknown-table", op, k, err)
		}
	}

	// Churner: flip the table in and out of the registry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			okErr("register", db.Register(tbl))
			time.Sleep(time.Millisecond)
			db.Drop("demo")
		}
		// Leave it registered so late workers can still succeed.
		okErr("register", db.Register(tbl))
		stop.Store(true)
	}()

	// Preparers: build a handle and immediately query it.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				prep, err := db.Prepare(racePrepareOptions())
				if err != nil {
					okErr("prepare", err)
					continue
				}
				_, err = prep.Query(raceStmt)
				okErr("prepared query", err)
			}
		}()
	}

	// Exact scanners.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				_, err := db.Exact(raceStmt)
				okErr("exact", err)
			}
		}()
	}

	wg.Wait()

	// The registry must come out of the churn fully usable.
	if _, err := db.Exact(raceStmt); err != nil {
		t.Fatalf("exact after churn: %v", err)
	}
	prep, err := db.Prepare(racePrepareOptions())
	if err != nil {
		t.Fatalf("prepare after churn: %v", err)
	}
	if _, err := prep.Query(raceStmt); err != nil {
		t.Fatalf("query after churn: %v", err)
	}
}

// TestDroppedHandlePoisonStickyUnderContention proves poisoning is
// sticky and monotone while queries are in flight: workers hammer one
// handle, the table is dropped and immediately re-registered, and from
// the moment any worker observes the unknown-table error the handle
// must never answer again — re-registering the table does not resurrect
// the old preparation.
func TestDroppedHandlePoisonStickyUnderContention(t *testing.T) {
	db := NewDB()
	tbl := demoTable(500, 22)
	if err := db.Register(tbl); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(racePrepareOptions())
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg        sync.WaitGroup
		stop      atomic.Bool
		successes atomic.Int64
		poisoned  atomic.Bool
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				// Poisoning is monotone: if the handle was already
				// observed dead before this query started, it must not
				// answer now.
				wasPoisoned := poisoned.Load()
				_, err := prep.Query(raceStmt)
				if err != nil {
					if ErrorKindOf(err) != ErrUnknownTable {
						t.Errorf("poisoned query kind = %v (%v)", ErrorKindOf(err), err)
					}
					poisoned.Store(true)
					continue
				}
				successes.Add(1)
				if wasPoisoned {
					t.Error("handle answered after poisoning was observed")
				}
			}
		}()
	}

	// Let the handle serve some real answers first.
	deadline := time.Now().Add(5 * time.Second)
	for successes.Load() < 16 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if successes.Load() == 0 {
		stop.Store(true)
		wg.Wait()
		t.Fatal("handle never answered before the drop")
	}

	// Drop mid-flight, then immediately re-register the same table.
	db.Drop("demo")
	if err := db.Register(tbl); err != nil {
		t.Fatal(err)
	}

	// Every worker must converge on the poisoned state.
	for !poisoned.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !poisoned.Load() {
		stop.Store(true)
		wg.Wait()
		t.Fatal("drop never surfaced to the queriers")
	}
	// Keep hammering a little longer; the monotonicity check inside the
	// workers catches any post-poison success.
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// Direct stickiness check, single-threaded: still dead.
	if _, err := prep.Query(raceStmt); ErrorKindOf(err) != ErrUnknownTable {
		t.Errorf("stale handle after re-register: kind %v (%v)", ErrorKindOf(err), err)
	}
	// A fresh preparation over the re-registered table works.
	fresh, err := db.Prepare(racePrepareOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Query(raceStmt); err != nil {
		t.Errorf("fresh handle after re-register: %v", err)
	}
}
