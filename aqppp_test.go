package aqppp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

func demoTable(n int, seed uint64) *engine.Table {
	r := stats.NewRNG(seed)
	k := make([]int64, n)
	v := make([]float64, n)
	g := make([]string, n)
	for i := 0; i < n; i++ {
		k[i] = int64(r.Intn(500) + 1)
		v[i] = 50 + 0.2*float64(k[i]) + 8*r.NormFloat64()
		if i%5 == 0 {
			g[i] = "gold"
		} else {
			g[i] = "silver"
		}
	}
	return engine.MustNewTable("demo",
		engine.NewIntColumn("k", k),
		engine.NewFloatColumn("v", v),
		engine.NewStringColumn("tier", g),
	)
}

func TestRegisterAndDrop(t *testing.T) {
	db := NewDB()
	tbl := demoTable(100, 1)
	if err := db.Register(tbl); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(tbl); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := db.Table("demo"); err != nil {
		t.Error(err)
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "demo" {
		t.Errorf("TableNames = %v", names)
	}
	db.Drop("demo")
	if _, err := db.Table("demo"); err == nil {
		t.Error("dropped table still visible")
	}
}

// TestGeneration pins the monotone per-name counter the serving layer's
// response cache keys on: +1 on every Register and every effective
// Drop, never reused, untouched by no-op drops and failed registers.
func TestGeneration(t *testing.T) {
	db := NewDB()
	tbl := demoTable(100, 1)
	if got := db.Generation("demo"); got != 0 {
		t.Fatalf("unregistered generation = %d, want 0", got)
	}
	if err := db.Register(tbl); err != nil {
		t.Fatal(err)
	}
	if got := db.Generation("demo"); got != 1 {
		t.Fatalf("after register: generation = %d, want 1", got)
	}
	// A rejected duplicate registration must not move the counter.
	if err := db.Register(tbl); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if got := db.Generation("demo"); got != 1 {
		t.Errorf("after failed register: generation = %d, want 1", got)
	}
	db.Drop("demo")
	if got := db.Generation("demo"); got != 2 {
		t.Errorf("after drop: generation = %d, want 2", got)
	}
	// Dropping a name that is not registered is a no-op for the counter.
	db.Drop("demo")
	if got := db.Generation("demo"); got != 2 {
		t.Errorf("after no-op drop: generation = %d, want 2", got)
	}
	if err := db.Register(demoTable(50, 2)); err != nil {
		t.Fatal(err)
	}
	if got := db.Generation("demo"); got != 3 {
		t.Errorf("after re-register: generation = %d, want 3 (never reused)", got)
	}
	// Generations are per name.
	if got := db.Generation("other"); got != 0 {
		t.Errorf("unrelated name generation = %d, want 0", got)
	}
}

func TestExact(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(1000, 2)); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exact("SELECT COUNT(*) FROM demo")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1000 {
		t.Errorf("COUNT = %v", res.Value)
	}
	if _, err := db.Exact("SELECT COUNT(*) FROM missing"); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := db.Exact("garbage"); err == nil {
		t.Error("garbage SQL accepted")
	}
}

func TestPrepareAndQuery(t *testing.T) {
	db := NewDB()
	tbl := demoTable(30000, 3)
	if err := db.Register(tbl); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.05, CellBudget: 25, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	stmt := "SELECT SUM(v) FROM demo WHERE k BETWEEN 50 AND 300"
	res, err := prep.Query(stmt)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := db.Exact(stmt)
	if rel := math.Abs(res.Value-truth.Value) / truth.Value; rel > 0.05 {
		t.Errorf("approximate answer off by %v", rel)
	}
	if res.Confidence != 0.95 {
		t.Errorf("confidence = %v", res.Confidence)
	}
	st := prep.Stats()
	if st.SampleRows != 1500 || st.CubeCells < 20 {
		t.Errorf("stats = %+v", st)
	}
	if prep.Sample() == nil || prep.Processor() == nil {
		t.Error("accessors returned nil")
	}
}

func TestQueryGroupBy(t *testing.T) {
	db := NewDB()
	tbl := demoTable(30000, 4)
	if err := db.Register(tbl); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k", "tier"},
		SampleRate: 0.05, CellBudget: 60, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.Query("SELECT SUM(v) FROM demo WHERE k BETWEEN 1 AND 400 GROUP BY tier")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %+v", res.Groups)
	}
	truthRes, _ := db.Exact("SELECT SUM(v) FROM demo WHERE k BETWEEN 1 AND 400 GROUP BY tier")
	truth := map[string]float64{}
	for _, g := range truthRes.Groups {
		truth[g.Key] = g.Value
	}
	for _, g := range res.Groups {
		want := truth[g.Key]
		if rel := math.Abs(g.Value-want) / want; rel > 0.1 {
			t.Errorf("group %q off by %v", g.Key, rel)
		}
	}
}

func TestQueryWrongTable(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(5000, 5)); err != nil {
		t.Fatal(err)
	}
	other := demoTable(100, 6)
	other.Name = "other" // second registered table
	if err := db.Register(other); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.1, CellBudget: 10, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Query("SELECT SUM(v) FROM other"); err == nil {
		t.Error("cross-table query accepted")
	}
}

func TestPrepareValidation(t *testing.T) {
	db := NewDB()
	if _, err := db.Prepare(PrepareOptions{Table: "nope"}); err == nil {
		t.Error("missing table accepted")
	}
	if err := db.Register(demoTable(100, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Prepare(PrepareOptions{Table: "demo", Aggregate: "nope", Dimensions: []string{"k"}}); err == nil {
		t.Error("bad aggregate accepted")
	}
}

func TestLoadCSV(t *testing.T) {
	db := NewDB()
	csv := "k,v\n1,10.5\n2,20.5\n3,30.5\n"
	tbl, err := db.LoadCSV("csvt", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
	res, err := db.Exact("SELECT SUM(v) FROM csvt")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 61.5 {
		t.Errorf("SUM = %v", res.Value)
	}
}

func TestLoadBinary(t *testing.T) {
	src := demoTable(50, 8)
	var buf bytes.Buffer
	if err := src.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	tbl, err := db.LoadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 50 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
}

func TestUsedPrecomputedFlag(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(30000, 9)); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.05, CellBudget: 20, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A wide query spanning many blocks should use the cube.
	res, err := prep.Query("SELECT SUM(v) FROM demo WHERE k BETWEEN 20 AND 450")
	if err != nil {
		t.Fatal(err)
	}
	if !res.UsedPrecomputed {
		t.Error("wide query did not use precomputation")
	}
	if res.Pre == "" {
		t.Error("Pre description empty")
	}
}

func TestForeignKeyJoinEndToEnd(t *testing.T) {
	// Footnote 2: AQP++ over a star schema — denormalize the FK join,
	// then prepare a template mixing fact and dimension attributes.
	r := stats.NewRNG(40)
	const suppliers = 40
	sid := make([]int64, suppliers)
	rating := make([]int64, suppliers)
	for i := range sid {
		sid[i] = int64(i + 1)
		rating[i] = int64(r.Intn(5) + 1)
	}
	dim := engine.MustNewTable("supplier",
		engine.NewIntColumn("s_id", sid),
		engine.NewIntColumn("rating", rating),
	)
	n := 20000
	fk := make([]int64, n)
	amount := make([]float64, n)
	for i := 0; i < n; i++ {
		fk[i] = int64(r.Intn(suppliers) + 1)
		amount[i] = 20 + 4*r.NormFloat64()
	}
	fact := engine.MustNewTable("orders",
		engine.NewIntColumn("o_supp", fk),
		engine.NewFloatColumn("amount", amount),
	)
	joined, err := engine.HashJoinFK(fact, "o_supp", dim, "s_id")
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	if err := db.Register(joined); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: joined.Name, Aggregate: "amount",
		Dimensions: []string{"o_supp", "supplier.rating"},
		SampleRate: 0.05, CellBudget: 50, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Func: engine.Sum, Col: "amount", Ranges: []engine.Range{
		{Col: "o_supp", Lo: 5, Hi: 35},
		{Col: "supplier.rating", Lo: 3, Hi: 5},
	}}
	truth, err := joined.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.QueryStruct(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Value-truth.Value) / truth.Value; rel > 0.1 {
		t.Errorf("star-schema answer off by %v", rel)
	}
	// Dotted identifiers also flow through SQL.
	stmt := "SELECT SUM(amount) FROM " + joined.Name +
		" WHERE o_supp BETWEEN 5 AND 35 AND supplier.rating BETWEEN 3 AND 5"
	sqlRes, err := prep.Query(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if sqlRes.Value != res.Value {
		t.Errorf("SQL path %v != struct path %v", sqlRes.Value, res.Value)
	}
}
