package aqppp

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestCancelExact: a pre-canceled context fails ExactContext with the
// unified error shape.
func TestCancelExact(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(5000, 41)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExactContext(ctx, "SELECT SUM(v) FROM demo")
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if ErrorKindOf(err) != ErrCanceled {
		t.Errorf("kind = %v, want ErrCanceled", ErrorKindOf(err))
	}
}

// TestCancelPrepareMidClimb cancels a preparation while the hill
// climber (or a later build stage) is running: the table is large
// enough that the build cannot finish before the cancel lands, and the
// build must unwind with the Canceled kind rather than run to
// completion.
func TestCancelPrepareMidClimb(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(200000, 42)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// Two dimensions force per-dimension error profiles (eight climbs
	// per dimension) before the shape split — about two orders of
	// magnitude more work than the 1 ms cancel delay.
	_, err := db.PrepareContext(ctx, PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k", "tier"},
		SampleRate: 0.1, CellBudget: 6000,
	})
	if err == nil {
		t.Fatal("prepare completed despite cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if ErrorKindOf(err) != ErrCanceled {
		t.Errorf("kind = %v, want ErrCanceled (err: %v)", ErrorKindOf(err), err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("canceled prepare took %v", el)
	}
}

// TestCancelQueryBootstrap cancels mid-resample: the replicate count is
// far beyond what can run before the cancel lands, so the loop must
// unwind within one resample instead of draining the schedule.
func TestCancelQueryBootstrap(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(5000, 43)); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.2, CellBudget: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = prep.QueryBootstrapContext(ctx, "SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400", 2_000_000)
	if err == nil {
		t.Fatal("bootstrap completed despite cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if ErrorKindOf(err) != ErrCanceled {
		t.Errorf("kind = %v, want ErrCanceled (err: %v)", ErrorKindOf(err), err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("canceled bootstrap took %v", el)
	}
}

// TestCancelBudgetTimeout: the DB-wide budget deadline classifies as
// BudgetExceeded, and clearing the budget restores service.
func TestCancelBudgetTimeout(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(5000, 44)); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.2, CellBudget: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	db.SetDefaultBudget(Budget{Timeout: time.Nanosecond})
	_, err = prep.Query("SELECT SUM(v) FROM demo")
	if ErrorKindOf(err) != ErrBudgetExceeded {
		t.Errorf("kind = %v, want ErrBudgetExceeded (err: %v)", ErrorKindOf(err), err)
	}
	db.SetDefaultBudget(Budget{})
	if _, err := prep.Query("SELECT SUM(v) FROM demo"); err != nil {
		t.Errorf("query after budget reset failed: %v", err)
	}
}

// TestDropInvalidatesPrepared: Drop must poison every preparation built
// over the table — stale handles answer with ErrUnknownTable even after
// a new table claims the same name.
func TestDropInvalidatesPrepared(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(5000, 45)); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.2, CellBudget: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := db.PrepareMulti(MultiPrepareOptions{
		Table: "demo",
		Templates: []Template{
			{Aggregate: "v", Dimensions: []string{"k"}},
		},
		TotalCells: 100, SampleRate: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stmt := "SELECT SUM(v) FROM demo"
	if _, err := prep.Query(stmt); err != nil {
		t.Fatalf("query before drop: %v", err)
	}
	if _, _, err := multi.Query(stmt); err != nil {
		t.Fatalf("multi query before drop: %v", err)
	}

	db.Drop("demo")

	if _, err := prep.Query(stmt); ErrorKindOf(err) != ErrUnknownTable {
		t.Errorf("Query after drop: kind = %v, want ErrUnknownTable (err: %v)", ErrorKindOf(err), err)
	}
	if _, err := prep.QueryBootstrap(stmt, 10); ErrorKindOf(err) != ErrUnknownTable {
		t.Errorf("QueryBootstrap after drop: kind = %v (err: %v)", ErrorKindOf(err), err)
	}
	if err := prep.Insert(int64(1), 1.0, "gold"); ErrorKindOf(err) != ErrUnknownTable {
		t.Errorf("Insert after drop: kind = %v (err: %v)", ErrorKindOf(err), err)
	}
	if _, _, err := multi.Query(stmt); ErrorKindOf(err) != ErrUnknownTable {
		t.Errorf("multi Query after drop: kind = %v (err: %v)", ErrorKindOf(err), err)
	}
	if _, err := db.Exact(stmt); ErrorKindOf(err) != ErrUnknownTable {
		t.Errorf("Exact after drop: kind = %v (err: %v)", ErrorKindOf(err), err)
	}

	// Re-registering the name must not resurrect the stale handles.
	if err := db.Register(demoTable(100, 46)); err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Query(stmt); ErrorKindOf(err) != ErrUnknownTable {
		t.Errorf("Query after re-register: kind = %v (err: %v)", ErrorKindOf(err), err)
	}
	if _, err := db.Exact(stmt); err != nil {
		t.Errorf("Exact on the fresh table failed: %v", err)
	}
}
