// Package aqppp is a Go implementation of AQP++ (Peng, Zhang, Wang, Pei —
// SIGMOD 2018): interactive approximate query processing that connects
// sampling-based AQP with aggregate precomputation. Instead of estimating
// a query's answer directly from a sample, AQP++ estimates the *difference*
// between the query and a precomputed aggregate from a blocked prefix
// cube, then anchors the estimate on the exact precomputed value:
//
//	q(D) ≈ pre(D) + (q̂(S) − prê(S))
//
// The result is typically an order of magnitude more accurate than AQP at
// the same sample size, for a preprocessing cost orders of magnitude below
// materializing full data cubes.
//
// # Quick start
//
//	db := aqppp.NewDB()
//	db.Register(table)                        // an *engine.Table you built or loaded
//	prep, err := db.Prepare(aqppp.PrepareOptions{
//	    Table:      "lineitem",
//	    Aggregate:  "l_extendedprice",
//	    Dimensions: []string{"l_orderkey", "l_suppkey"},
//	    SampleRate: 0.01,
//	    CellBudget: 50000,
//	})
//	res, err := prep.Query("SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 10 AND 500")
//	fmt.Printf("%.0f ± %.0f (95%%)\n", res.Value, res.HalfWidth)
//
// See the examples/ directory for runnable end-to-end programs.
package aqppp

import (
	"fmt"
	"io"
	"sync"

	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/precompute"
	"aqppp/internal/sample"
	"aqppp/internal/sql"
)

// DB is a registry of in-memory tables plus the prepared AQP++ state built
// over them. It is safe for concurrent readers once tables are registered
// and preparations built.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*engine.Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*engine.Table)}
}

// Register adds a table. Registering a second table with the same name is
// an error (drop and re-register to replace).
func (db *DB) Register(tbl *engine.Table) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[tbl.Name]; ok {
		return fmt.Errorf("aqppp: table %q already registered", tbl.Name)
	}
	db.tables[tbl.Name] = tbl
	return nil
}

// Drop removes a table.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.tables, name)
}

// Table returns a registered table.
func (db *DB) Table(name string) (*engine.Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("aqppp: no table %q", name)
	}
	return t, nil
}

// TableNames lists registered tables.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	return names
}

// LoadCSV reads a CSV (with header) into a new registered table.
func (db *DB) LoadCSV(name string, r io.Reader) (*engine.Table, error) {
	tbl, err := engine.ReadCSV(name, r)
	if err != nil {
		return nil, err
	}
	if err := db.Register(tbl); err != nil {
		return nil, err
	}
	return tbl, nil
}

// LoadBinary reads a table in the engine's binary format and registers it.
func (db *DB) LoadBinary(r io.Reader) (*engine.Table, error) {
	tbl, err := engine.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	if err := db.Register(tbl); err != nil {
		return nil, err
	}
	return tbl, nil
}

// Exact runs a SQL statement exactly over the full table (the slow path a
// user falls back to for MIN/MAX/VAR or when perfect answers are needed).
func (db *DB) Exact(statement string) (engine.Result, error) {
	st, err := sql.Parse(statement)
	if err != nil {
		return engine.Result{}, err
	}
	tbl, err := db.Table(st.Table)
	if err != nil {
		return engine.Result{}, err
	}
	q, err := sql.Compile(st, tbl)
	if err != nil {
		return engine.Result{}, err
	}
	return tbl.Execute(q)
}

// PrepareOptions configures Prepare: which template to precompute for and
// how much to spend on it.
type PrepareOptions struct {
	// Table names the registered table.
	Table string
	// Aggregate is the aggregation attribute A of the template
	// [SUM(A), Dims...]; empty prepares a COUNT template.
	Aggregate string
	// Dimensions are the condition attributes.
	Dimensions []string
	// SampleRate is the uniform sample's share of the table (default
	// 0.01).
	SampleRate float64
	// CellBudget is the BP-Cube cell threshold k (default 10000).
	CellBudget int
	// Confidence is the CI level for answers (default 0.95).
	Confidence float64
	// Seed fixes all randomness (sampling, identification subsample).
	Seed uint64
	// EqualPartitionOnly skips hill climbing (mostly for comparisons).
	EqualPartitionOnly bool
	// WithCountCube also precomputes a COUNT cube so AVG queries get the
	// full AQP++ treatment.
	WithCountCube bool
	// WithMinMax also builds exact range-extrema indexes (one per
	// dimension) so MIN/MAX queries restricted to a single dimension are
	// answered exactly — the paper's §8 observation that extrema are
	// easy for precomputation and impossible for sampling.
	WithMinMax bool
	// LocalAdjustment switches hill climbing to the weaker local mode.
	LocalAdjustment bool
}

// Prepared answers queries for one template using AQP++.
type Prepared struct {
	db         *DB
	tbl        *engine.Table
	proc       *core.Processor
	stats      core.BuildStats
	maintainer *core.Maintainer
}

// Prepare builds the sample and BP-Cube for a template (the offline
// stage): sample → per-dimension error profiles → cube shape → hill-climbed
// partition points → one full-data scan to fill the cube.
func (db *DB) Prepare(opts PrepareOptions) (*Prepared, error) {
	tbl, err := db.Table(opts.Table)
	if err != nil {
		return nil, err
	}
	if opts.SampleRate == 0 {
		opts.SampleRate = 0.01
	}
	if opts.CellBudget == 0 {
		opts.CellBudget = 10000
	}
	mode := precompute.Global
	if opts.LocalAdjustment {
		mode = precompute.Local
	}
	proc, st, err := core.Build(tbl, core.BuildConfig{
		Template:           cube.Template{Agg: opts.Aggregate, Dims: opts.Dimensions},
		SampleRate:         opts.SampleRate,
		CellBudget:         opts.CellBudget,
		Confidence:         opts.Confidence,
		Seed:               opts.Seed,
		Mode:               mode,
		EqualPartitionOnly: opts.EqualPartitionOnly,
		WithCountCube:      opts.WithCountCube,
		WithMinMax:         opts.WithMinMax,
	})
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, tbl: tbl, proc: proc, stats: st}, nil
}

// Result is an approximate answer with its confidence interval.
type Result struct {
	// Value is the point estimate.
	Value float64
	// HalfWidth is ε: the true answer lies in [Value−ε, Value+ε] at the
	// stated confidence.
	HalfWidth float64
	// Confidence is the interval's level (e.g. 0.95).
	Confidence float64
	// UsedPrecomputed reports whether a precomputed aggregate anchored
	// the answer (false = the query degenerated to plain AQP).
	UsedPrecomputed bool
	// Pre describes the identified aggregate (for diagnostics).
	Pre string
	// Groups holds per-group results for GROUP BY queries; scalar
	// queries leave it nil.
	Groups []GroupResult
}

// GroupResult is one group's result.
type GroupResult struct {
	Key string
	Result
}

// Query parses and answers a SQL statement approximately.
func (p *Prepared) Query(statement string) (Result, error) {
	st, err := sql.Parse(statement)
	if err != nil {
		return Result{}, err
	}
	if st.Table != p.tbl.Name {
		return Result{}, fmt.Errorf("aqppp: prepared for table %q, statement targets %q", p.tbl.Name, st.Table)
	}
	q, err := sql.Compile(st, p.tbl)
	if err != nil {
		return Result{}, err
	}
	return p.QueryStruct(q)
}

// QueryStruct answers an engine.Query approximately.
func (p *Prepared) QueryStruct(q engine.Query) (Result, error) {
	if len(q.GroupBy) > 0 {
		groups, err := p.proc.AnswerGroups(q)
		if err != nil {
			return Result{}, err
		}
		out := Result{Confidence: p.proc.Confidence}
		for _, g := range groups {
			out.Groups = append(out.Groups, GroupResult{Key: g.Key, Result: toResult(g.Answer)})
		}
		return out, nil
	}
	ans, err := p.proc.Answer(q)
	if err != nil {
		return Result{}, err
	}
	return toResult(ans), nil
}

func toResult(a core.Answer) Result {
	return Result{
		Value:           a.Estimate.Value,
		HalfWidth:       a.Estimate.HalfWidth,
		Confidence:      a.Estimate.Confidence,
		UsedPrecomputed: !a.Pre.IsPhi(),
		Pre:             a.Pre.String(),
	}
}

// Stats reports the preprocessing cost of this preparation.
func (p *Prepared) Stats() PreprocessingStats {
	return PreprocessingStats{
		SampleRows:   p.proc.Sample.Size(),
		SampleBytes:  p.stats.SampleBytes,
		CubeCells:    p.proc.Cube.NumCells(),
		CubeBytes:    p.stats.CubeBytes,
		CubeShape:    append([]int(nil), p.stats.Shape...),
		TotalSeconds: p.stats.TotalTime().Seconds(),
	}
}

// PreprocessingStats summarizes the offline cost (the paper's
// preprocessing time/space metrics).
type PreprocessingStats struct {
	SampleRows   int
	SampleBytes  int64
	CubeCells    int
	CubeBytes    int64
	CubeShape    []int
	TotalSeconds float64
}

// Sample exposes the underlying sample (read-only use).
func (p *Prepared) Sample() *sample.Sample { return p.proc.Sample }

// Processor exposes the underlying AQP++ processor for advanced use
// (ablations, custom pipelines).
func (p *Prepared) Processor() *core.Processor { return p.proc }
