// Package aqppp is a Go implementation of AQP++ (Peng, Zhang, Wang, Pei —
// SIGMOD 2018): interactive approximate query processing that connects
// sampling-based AQP with aggregate precomputation. Instead of estimating
// a query's answer directly from a sample, AQP++ estimates the *difference*
// between the query and a precomputed aggregate from a blocked prefix
// cube, then anchors the estimate on the exact precomputed value:
//
//	q(D) ≈ pre(D) + (q̂(S) − prê(S))
//
// The result is typically an order of magnitude more accurate than AQP at
// the same sample size, for a preprocessing cost orders of magnitude below
// materializing full data cubes.
//
// # Quick start
//
//	db := aqppp.NewDB()
//	db.Register(table)                        // an *engine.Table you built or loaded
//	prep, err := db.Prepare(aqppp.PrepareOptions{
//	    Table:      "lineitem",
//	    Aggregate:  "l_extendedprice",
//	    Dimensions: []string{"l_orderkey", "l_suppkey"},
//	    SampleRate: 0.01,
//	    CellBudget: 50000,
//	})
//	res, err := prep.Query("SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 10 AND 500")
//	fmt.Printf("%.0f ± %.0f (95%%)\n", res.Value, res.HalfWidth)
//
// # Cancellation and budgets
//
// Every query and prepare entry point has a *Context variant
// (ExactContext, PrepareContext, QueryContext, ...) that threads a
// context.Context down to the layers that actually loop — block kernels,
// the hill climber, the bootstrap resampler — so a canceled context
// unwinds within one block chunk, climb step, or resample. All entry
// points route through one internal executor and return the unified
// Error type; classify failures with ErrorKindOf or errors.As. A
// DB-wide Budget (SetDefaultBudget) adds per-query deadlines, resample
// caps and scratch-memory caps on top.
//
// See the examples/ directory for runnable end-to-end programs.
package aqppp

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/exec"
	"aqppp/internal/precompute"
	"aqppp/internal/sample"
	"aqppp/internal/shard"
	"aqppp/internal/store"
)

// DB is a registry of in-memory tables plus the prepared AQP++ state built
// over them. It is safe for concurrent readers once tables are registered
// and preparations built.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*engine.Table
	// preps tracks the prepared state built over each table so Drop can
	// invalidate it: a stale Prepared/MultiPrepared answers with an
	// ErrUnknownTable-kind error instead of silently serving a table the
	// DB no longer knows.
	preps map[string][]*prepState
	// gens counts registration events per table name: Register and Drop
	// each bump the name's generation, monotonically and forever (the
	// entry survives Drop). A serving-layer cache keys entries on the
	// generation observed *before* running a query, so an answer computed
	// against a since-dropped table can never be served once the name is
	// re-registered — the current generation has moved past the key's.
	gens map[string]uint64
	// shards maps sharded table names to their partitioned form; queries
	// against such tables run scatter-gather (see RegisterSharded).
	shards map[string]*shard.Sharded
	// dist maps distributed table names to the coordinator answering for
	// them; the registered table is then a zero-row schema table and
	// every plan routes over the network (see RegisterDistributed).
	dist map[string]exec.Distributed
	// stores maps table names to the open store container serving them
	// (see OpenStore); Drop closes and forgets the entry.
	stores map[string]*store.Store
	ex     *exec.Executor
	budget exec.Budget
}

// prepState is the liveness flag shared between the DB and one
// preparation; Drop flips it.
type prepState struct {
	table   string
	dropped atomic.Bool
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		tables: make(map[string]*engine.Table),
		preps:  make(map[string][]*prepState),
		gens:   make(map[string]uint64),
		shards: make(map[string]*shard.Sharded),
		dist:   make(map[string]exec.Distributed),
		stores: make(map[string]*store.Store),
		ex:     exec.New(),
	}
}

// SetDefaultBudget sets the budget applied to every query and prepare
// run through this DB and its preparations. The zero Budget (the
// default) is unlimited.
func (db *DB) SetDefaultBudget(b Budget) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.budget = b
}

func (db *DB) defaultBudget() exec.Budget {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.budget
}

// track registers a new preparation over table so Drop can invalidate
// it later.
func (db *DB) track(table string) *prepState {
	st := &prepState{table: table}
	db.mu.Lock()
	db.preps[table] = append(db.preps[table], st)
	db.mu.Unlock()
	return st
}

// Register adds a table. Registering a second table with the same name is
// an error (drop and re-register to replace).
func (db *DB) Register(tbl *engine.Table) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[tbl.Name]; ok {
		return fmt.Errorf("aqppp: table %q already registered", tbl.Name)
	}
	db.tables[tbl.Name] = tbl
	db.gens[tbl.Name]++
	return nil
}

// Drop removes a table and invalidates every Prepared and MultiPrepared
// built over it: their queries return an Error of kind ErrUnknownTable
// from then on.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		delete(db.tables, name)
		delete(db.shards, name)
		delete(db.dist, name)
		db.gens[name]++
	}
	if s, ok := db.stores[name]; ok {
		// The store only served the dropped table; release its mapping.
		// In-flight scans fail with the store's closed error, the same
		// outcome as racing any Drop.
		_ = s.Close()
		delete(db.stores, name)
	}
	for _, st := range db.preps[name] {
		st.dropped.Store(true)
	}
	delete(db.preps, name)
}

// Generation reports the registration generation of a table name: 0 for
// a name that was never registered, then +1 on every Register and every
// Drop of that name (monotone; re-registering never reuses an old
// value). A response cache keyed on the generation observed before a
// query ran is therefore immune to Drop/re-Register churn: any entry
// whose generation is not the current one is stale by construction.
func (db *DB) Generation(name string) uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.gens[name]
}

// Table returns a registered table. The failure carries the
// ErrUnknownTable kind, so Prepare on a missing table classifies the
// same way a query on one does.
func (db *DB) Table(name string) (*engine.Table, error) {
	t, ok := db.LookupTable(name)
	if !ok {
		return nil, &exec.Error{Kind: exec.UnknownTable, Op: "table", Err: fmt.Errorf("no table %q", name)}
	}
	return t, nil
}

// LookupTable resolves a table name; it implements the executor's
// TableSource.
func (db *DB) LookupTable(name string) (*engine.Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// TableNames lists registered tables.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	return names
}

// LoadCSV reads a CSV (with header) into a new registered table.
func (db *DB) LoadCSV(name string, r io.Reader) (*engine.Table, error) {
	return db.LoadCSVContext(context.Background(), name, r)
}

// LoadCSVContext is LoadCSV with cancellation: the reader checks ctx
// once per row batch, so a canceled context (e.g. an aborted upload
// request) unwinds the load within one batch instead of parsing the
// rest of the file.
func (db *DB) LoadCSVContext(ctx context.Context, name string, r io.Reader) (*engine.Table, error) {
	tbl, err := engine.ReadCSVContext(ctx, name, r)
	if err != nil {
		return nil, err
	}
	if err := db.Register(tbl); err != nil {
		return nil, err
	}
	return tbl, nil
}

// LoadBinary reads a table in the engine's binary format and registers it.
//
// The AQPT stream it reads is the legacy format: the whole table is
// materialized in memory and nothing prepared survives a restart.
// Prefer store containers (SaveStore/OpenStore), which load lazily and
// carry samples and cubes; convert old files once with
// `aqppp-gen -convert old.bin new.aqps`.
func (db *DB) LoadBinary(r io.Reader) (*engine.Table, error) {
	return db.LoadBinaryContext(context.Background(), r)
}

// LoadBinaryContext is LoadBinary with cancellation, at the same
// per-row-batch granularity as LoadCSVContext.
func (db *DB) LoadBinaryContext(ctx context.Context, r io.Reader) (*engine.Table, error) {
	tbl, err := engine.ReadBinaryContext(ctx, r)
	if err != nil {
		return nil, err
	}
	if err := db.Register(tbl); err != nil {
		return nil, err
	}
	return tbl, nil
}

// Exact runs a SQL statement exactly over the full table (the slow path a
// user falls back to for MIN/MAX/VAR or when perfect answers are needed).
func (db *DB) Exact(statement string) (engine.Result, error) {
	return db.ExactContext(context.Background(), statement)
}

// ExactContext is Exact with cancellation: the scan checks ctx once per
// zone block, so a canceled context unwinds within one block.
func (db *DB) ExactContext(ctx context.Context, statement string) (engine.Result, error) {
	return db.ExactWithBudget(ctx, statement, db.defaultBudget())
}

// ExactWithBudget is ExactContext with an explicit per-call Budget that
// replaces the DB-wide default for this one statement. A serving layer
// uses it to map a per-request deadline onto the executor's budget, so
// an overrun classifies as ErrBudgetExceeded rather than ErrCanceled.
func (db *DB) ExactWithBudget(ctx context.Context, statement string, b Budget) (engine.Result, error) {
	p, err := db.PlanExact(statement)
	if err != nil {
		return engine.Result{}, err
	}
	return db.RunExactPlan(ctx, p, b)
}

// PlanExact parses and compiles a statement into an executor plan
// without running it. A serving layer plans once, derives a response
// cache key from the plan (exec.Plan.CacheKey), and on a cache miss
// runs the very same plan with RunExactPlan — no double parse. Plans
// over sharded tables carry the shard layout, so they scatter-gather
// and their cache keys fold the layout in.
func (db *DB) PlanExact(statement string) (*exec.Plan, error) {
	p, err := exec.PlanExactStatement(db, statement)
	if err != nil {
		return nil, err
	}
	if s, ok := db.lookupSharded(p.Table.Name); ok {
		p.Shards = s
	}
	if d, ok := db.lookupDistributed(p.Table.Name); ok {
		p.Dist = d
	}
	return p, nil
}

// RunExactPlan executes a plan built by PlanExact under the context and
// an explicit budget.
func (db *DB) RunExactPlan(ctx context.Context, p *exec.Plan, b Budget) (engine.Result, error) {
	out, err := db.ex.Run(ctx, p, b)
	if err != nil {
		return engine.Result{}, err
	}
	return out.Exact, nil
}

// PrepareOptions configures Prepare: which template to precompute for and
// how much to spend on it.
type PrepareOptions struct {
	// Table names the registered table.
	Table string
	// Aggregate is the aggregation attribute A of the template
	// [SUM(A), Dims...]; empty prepares a COUNT template.
	Aggregate string
	// Dimensions are the condition attributes.
	Dimensions []string
	// SampleRate is the uniform sample's share of the table (default
	// 0.01).
	SampleRate float64
	// CellBudget is the BP-Cube cell threshold k (default 10000).
	CellBudget int
	// Confidence is the CI level for answers (default 0.95).
	Confidence float64
	// Seed fixes all randomness (sampling, identification subsample).
	Seed uint64
	// EqualPartitionOnly skips hill climbing (mostly for comparisons).
	EqualPartitionOnly bool
	// WithCountCube also precomputes a COUNT cube so AVG queries get the
	// full AQP++ treatment.
	WithCountCube bool
	// WithMinMax also builds exact range-extrema indexes (one per
	// dimension) so MIN/MAX queries restricted to a single dimension are
	// answered exactly — the paper's §8 observation that extrema are
	// easy for precomputation and impossible for sampling.
	WithMinMax bool
	// LocalAdjustment switches hill climbing to the weaker local mode.
	LocalAdjustment bool
}

// Prepared answers queries for one template using AQP++. Over a
// sharded table the preparation holds one processor per shard (shp set,
// proc nil) and answers merge per-stratum; otherwise a single processor
// answers directly.
type Prepared struct {
	db         *DB
	tbl        *engine.Table
	proc       *core.Processor
	shp        *shard.Prepared
	stats      core.BuildStats
	maintainer *core.Maintainer
	state      *prepState

	// A distributed preparation (see DB.DistPrepared) has proc and shp
	// nil: queries route to the fleet through dist under distHandle, and
	// distConf/distSampleRows describe the handle as replicas report it.
	dist           exec.Distributed
	distHandle     string
	distConf       float64
	distSampleRows int
}

// Prepare builds the sample and BP-Cube for a template (the offline
// stage): sample → per-dimension error profiles → cube shape → hill-climbed
// partition points → one full-data scan to fill the cube.
func (db *DB) Prepare(opts PrepareOptions) (*Prepared, error) {
	return db.PrepareContext(context.Background(), opts)
}

// PrepareContext is Prepare with cancellation: the hill climber checks
// ctx once per climb step, so a canceled context unwinds the build
// within one iteration.
func (db *DB) PrepareContext(ctx context.Context, opts PrepareOptions) (*Prepared, error) {
	return db.PrepareWithBudget(ctx, opts, db.defaultBudget())
}

// PrepareWithBudget is PrepareContext with an explicit per-call Budget
// replacing the DB-wide default, so a serving layer can bound one
// build's wall time without changing the DB's configuration.
func (db *DB) PrepareWithBudget(ctx context.Context, opts PrepareOptions, b Budget) (*Prepared, error) {
	tbl, err := db.Table(opts.Table)
	if err != nil {
		return nil, err
	}
	if opts.SampleRate == 0 {
		opts.SampleRate = 0.01
	}
	if opts.CellBudget == 0 {
		opts.CellBudget = 10000
	}
	mode := precompute.Global
	if opts.LocalAdjustment {
		mode = precompute.Local
	}
	cfg := core.BuildConfig{
		Template:           cube.Template{Agg: opts.Aggregate, Dims: opts.Dimensions},
		SampleRate:         opts.SampleRate,
		CellBudget:         opts.CellBudget,
		Confidence:         opts.Confidence,
		Seed:               opts.Seed,
		Mode:               mode,
		EqualPartitionOnly: opts.EqualPartitionOnly,
		WithCountCube:      opts.WithCountCube,
		WithMinMax:         opts.WithMinMax,
	}
	if s, ok := db.lookupSharded(opts.Table); ok {
		sp, err := db.ex.PrepareSharded(ctx, s, cfg, 0, b)
		if err != nil {
			return nil, err
		}
		return &Prepared{db: db, tbl: tbl, shp: sp, state: db.track(opts.Table)}, nil
	}
	proc, st, err := db.ex.Prepare(ctx, tbl, cfg, b)
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, tbl: tbl, proc: proc, stats: st, state: db.track(opts.Table)}, nil
}

// live reports whether the preparation's table is still registered;
// after DB.Drop it returns an ErrUnknownTable-kind error.
func (p *Prepared) live(op string) error {
	if p.state != nil && p.state.dropped.Load() {
		return &exec.Error{Kind: exec.UnknownTable, Op: op, Err: errDropped(p.tbl.Name)}
	}
	return nil
}

// errDropped is the cause carried by stale-preparation errors.
func errDropped(table string) error {
	return fmt.Errorf("table %q was dropped; preparation is stale", table)
}

// Result is an approximate answer with its confidence interval.
type Result struct {
	// Value is the point estimate.
	Value float64
	// HalfWidth is ε: the true answer lies in [Value−ε, Value+ε] at the
	// stated confidence.
	HalfWidth float64
	// Confidence is the interval's level (e.g. 0.95).
	Confidence float64
	// UsedPrecomputed reports whether a precomputed aggregate anchored
	// the answer (false = the query degenerated to plain AQP).
	UsedPrecomputed bool
	// Pre describes the identified aggregate (for diagnostics).
	Pre string
	// Partial reports a degraded distributed answer: one or more
	// replicas were lost and (under the opt-in degraded policy) the
	// survivors' strata answered with a widened interval. Never set on
	// resident or in-process sharded queries.
	Partial bool
	// Groups holds per-group results for GROUP BY queries; scalar
	// queries leave it nil.
	Groups []GroupResult
}

// GroupResult is one group's result.
type GroupResult struct {
	Key string
	Result
}

// Query parses and answers a SQL statement approximately.
func (p *Prepared) Query(statement string) (Result, error) {
	return p.QueryContext(context.Background(), statement)
}

// QueryContext is Query with cancellation; GROUP BY answers check ctx
// once per group.
func (p *Prepared) QueryContext(ctx context.Context, statement string) (Result, error) {
	return p.QueryWithBudget(ctx, statement, p.db.defaultBudget())
}

// QueryWithBudget is QueryContext with an explicit per-call Budget
// replacing the DB-wide default, so a serving layer can map each
// request's deadline onto the executor's budget.
func (p *Prepared) QueryWithBudget(ctx context.Context, statement string, b Budget) (Result, error) {
	plan, err := p.PlanQuery(statement)
	if err != nil {
		return Result{}, err
	}
	return p.RunPlan(ctx, plan, b)
}

// PlanQuery parses and compiles a statement into a closed-form AQP++
// plan without running it (the plan-once counterpart of Query; see
// DB.PlanExact). It fails with the unknown-table kind if the
// preparation was invalidated by DB.Drop.
func (p *Prepared) PlanQuery(statement string) (*exec.Plan, error) {
	if err := p.live("query"); err != nil {
		return nil, err
	}
	if p.dist != nil {
		return exec.PlanDistQueryStatement(p.dist, p.distHandle, p.tbl, statement)
	}
	if p.shp != nil {
		return exec.PlanShardedQueryStatement(p.shp, p.tbl, statement)
	}
	return exec.PlanQueryStatement(p.proc, p.tbl, statement)
}

// RunPlan executes a plan built by PlanQuery or PlanBootstrap under the
// context and an explicit budget. The liveness check runs again here,
// so a preparation dropped between planning and running still refuses
// to answer.
func (p *Prepared) RunPlan(ctx context.Context, plan *exec.Plan, b Budget) (Result, error) {
	if err := p.live(plan.Kind.String()); err != nil {
		return Result{}, err
	}
	return p.runWithBudget(ctx, plan, b)
}

// QueryStruct answers an engine.Query approximately.
func (p *Prepared) QueryStruct(q engine.Query) (Result, error) {
	return p.QueryStructContext(context.Background(), q)
}

// QueryStructContext is QueryStruct with cancellation.
func (p *Prepared) QueryStructContext(ctx context.Context, q engine.Query) (Result, error) {
	if err := p.live("query"); err != nil {
		return Result{}, err
	}
	if p.dist != nil {
		return Result{}, &exec.Error{Kind: exec.Unsupported, Op: "query",
			Err: errDist("QueryStruct")}
	}
	if p.shp != nil {
		return p.run(ctx, exec.PlanShardedQueryStruct(p.shp, p.tbl, q))
	}
	return p.run(ctx, exec.PlanQueryStruct(p.proc, p.tbl, q))
}

// run executes a plan through the DB's executor under the DB-wide
// default budget and converts the outcome.
func (p *Prepared) run(ctx context.Context, plan *exec.Plan) (Result, error) {
	return p.runWithBudget(ctx, plan, p.db.defaultBudget())
}

// runWithBudget executes a plan through the DB's executor under an
// explicit budget and converts the outcome.
func (p *Prepared) runWithBudget(ctx context.Context, plan *exec.Plan, b Budget) (Result, error) {
	out, err := p.db.ex.Run(ctx, plan, b)
	if err != nil {
		return Result{}, err
	}
	if len(plan.Query.GroupBy) > 0 {
		res := Result{Confidence: p.confidence(), Partial: out.Partial}
		for _, g := range out.Groups {
			res.Groups = append(res.Groups, GroupResult{Key: g.Key, Result: toResult(g.Answer)})
		}
		return res, nil
	}
	res := toResult(out.Answer)
	res.Partial = out.Partial
	return res, nil
}

// confidence reports the preparation's CI level, whichever form it took.
func (p *Prepared) confidence() float64 {
	if p.dist != nil {
		return p.distConf
	}
	if p.shp != nil {
		return p.shp.Confidence
	}
	return p.proc.Confidence
}

func toResult(a core.Answer) Result {
	return Result{
		Value:           a.Estimate.Value,
		HalfWidth:       a.Estimate.HalfWidth,
		Confidence:      a.Estimate.Confidence,
		UsedPrecomputed: !a.Pre.IsPhi(),
		Pre:             a.Pre.String(),
	}
}

// Stats reports the preprocessing cost of this preparation. For a
// sharded preparation the figures aggregate across shards (rows, bytes
// and cells sum; seconds sum the per-shard build times, which overstates
// wall clock since shards build in parallel; the shape is left nil —
// each shard climbs its own partition points).
func (p *Prepared) Stats() PreprocessingStats {
	if p.dist != nil {
		// The fleet's preprocessing lives on the replicas; only the total
		// sample size is known here.
		return PreprocessingStats{SampleRows: p.distSampleRows}
	}
	if p.shp != nil {
		st := PreprocessingStats{SampleRows: p.shp.SampleSize()}
		for h, bs := range p.shp.BuildStats {
			if p.shp.Procs[h] == nil {
				continue
			}
			st.SampleBytes += bs.SampleBytes
			st.CubeCells += p.shp.Procs[h].Cube.NumCells()
			st.CubeBytes += bs.CubeBytes
			st.TotalSeconds += bs.TotalTime().Seconds()
		}
		return st
	}
	return PreprocessingStats{
		SampleRows:   p.proc.Sample.Size(),
		SampleBytes:  p.stats.SampleBytes,
		CubeCells:    p.proc.Cube.NumCells(),
		CubeBytes:    p.stats.CubeBytes,
		CubeShape:    append([]int(nil), p.stats.Shape...),
		TotalSeconds: p.stats.TotalTime().Seconds(),
	}
}

// PreprocessingStats summarizes the offline cost (the paper's
// preprocessing time/space metrics).
type PreprocessingStats struct {
	SampleRows   int
	SampleBytes  int64
	CubeCells    int
	CubeBytes    int64
	CubeShape    []int
	TotalSeconds float64
}

// TableName reports the registered table this preparation answers for.
func (p *Prepared) TableName() string { return p.tbl.Name }

// Confidence reports the CI level this preparation answers at.
func (p *Prepared) Confidence() float64 { return p.confidence() }

// Sample exposes the underlying sample (read-only use). Sharded
// preparations have one sample per shard, not a single one, so this
// returns nil for them — use ShardedProcessor.
func (p *Prepared) Sample() *sample.Sample {
	if p.proc == nil {
		return nil
	}
	return p.proc.Sample
}

// Processor exposes the underlying AQP++ processor for advanced use
// (ablations, custom pipelines). Nil for sharded preparations — use
// ShardedProcessor.
func (p *Prepared) Processor() *core.Processor { return p.proc }

// ShardedProcessor exposes the per-shard preparation when this Prepared
// was built over a sharded table; nil otherwise.
func (p *Prepared) ShardedProcessor() *shard.Prepared { return p.shp }
