package aqppp

import (
	"math"
	"testing"
	"time"
)

func TestPreparedInsertMaintains(t *testing.T) {
	db := NewDB()
	tbl := demoTable(20000, 20)
	if err := db.Register(tbl); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.05, CellBudget: 20, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := prep.Insert(int64(i%500+1), 60.0, "gold"); err != nil {
			t.Fatal(err)
		}
	}
	stmt := "SELECT SUM(v) FROM demo WHERE k BETWEEN 1 AND 500"
	truth, _ := db.Exact(stmt)
	res, err := prep.Query(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Value-truth.Value) / truth.Value; rel > 0.05 {
		t.Errorf("post-insert answer off by %v", rel)
	}
}

func TestQueryBootstrap(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(20000, 22)); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.05, CellBudget: 20, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	stmt := "SELECT SUM(v) FROM demo WHERE k BETWEEN 40 AND 350"
	closed, err := prep.Query(stmt)
	if err != nil {
		t.Fatal(err)
	}
	boot, err := prep.QueryBootstrap(stmt, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(boot.Value-closed.Value) > 1e-6*math.Abs(closed.Value)+1e-9 {
		t.Errorf("bootstrap point %v != closed %v", boot.Value, closed.Value)
	}
	if _, err := prep.QueryBootstrap("SELECT AVG(v) FROM demo", 10); err == nil {
		t.Error("AVG accepted by QueryBootstrap")
	}
}

func TestPrepareMulti(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(20000, 24)); err != nil {
		t.Fatal(err)
	}
	multi, err := db.PrepareMulti(MultiPrepareOptions{
		Table: "demo",
		Templates: []Template{
			{Aggregate: "v", Dimensions: []string{"k"}},
			{Aggregate: "v", Dimensions: []string{"k", "tier"}},
		},
		TotalCells: 100, SampleRate: 0.05, Seed: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	budgets := multi.Budgets()
	if len(budgets) != 2 || budgets[0]+budgets[1] > 100 {
		t.Errorf("budgets = %v", budgets)
	}
	stmt := "SELECT SUM(v) FROM demo WHERE k BETWEEN 40 AND 350"
	truth, _ := db.Exact(stmt)
	res, used, err := multi.Query(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if used != 0 {
		t.Errorf("1-D query routed to template %d", used)
	}
	if rel := math.Abs(res.Value-truth.Value) / truth.Value; rel > 0.1 {
		t.Errorf("multi answer off by %v", rel)
	}
	if _, _, err := multi.Query("garbage"); err == nil {
		t.Error("bad SQL accepted")
	}
}

func TestDBPlanSpace(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(30000, 26)); err != nil {
		t.Fatal(err)
	}
	plan, err := db.PlanSpace("demo", 100_000, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SampleRows < 1 {
		t.Errorf("plan = %+v", plan)
	}
	if plan.SampleBytes+plan.CubeBytes > 100_000 {
		t.Errorf("plan exceeds budget: %+v", plan)
	}
	if _, err := db.PlanSpace("missing", 1000, time.Second); err == nil {
		t.Error("missing table accepted")
	}
}

func TestPrepareWithMinMax(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(10000, 27)); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.1, CellBudget: 10, Seed: 28, WithMinMax: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	stmt := "SELECT MAX(v) FROM demo WHERE k BETWEEN 50 AND 300"
	truth, _ := db.Exact(stmt)
	res, err := prep.Query(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != truth.Value {
		t.Errorf("MAX = %v, want %v", res.Value, truth.Value)
	}
	if res.HalfWidth != 0 {
		t.Error("exact MAX has nonzero interval")
	}
}
