// Online aggregation: the §8 future direction prototyped — the sample
// grows while the analyst watches the confidence interval shrink, and the
// precomputed BP-Cube keeps anchoring every refinement. Compare the AQP++
// column against plain AQP at the same growing sample size.
//
//	go run ./examples/online
package main

import (
	"context"
	"fmt"
	"log"

	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/dataset"
	"aqppp/internal/engine"
)

func main() {
	tbl := dataset.TPCDSkew(dataset.TPCDConfig{Rows: 400000, Seed: 17})

	// The warehouse already holds a precomputed BP-Cube.
	built, _, err := core.Build(context.Background(), tbl, core.BuildConfig{
		Template:   cube.Template{Agg: "l_extendedprice", Dims: []string{"l_orderkey"}},
		SampleRate: 0.001, CellBudget: 500, Seed: 19,
	})
	if err != nil {
		log.Fatal(err)
	}

	q := engine.Query{Func: engine.Sum, Col: "l_extendedprice",
		Ranges: []engine.Range{{Col: "l_orderkey", Lo: 50, Hi: 40000}}}
	truth, err := tbl.Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %v\nexact: %.0f\n\n", q, truth.Value)

	// Two online sessions over the same growing random order: one with
	// the cube (AQP++) and one without (plain AQP).
	withCube, err := core.NewProgressive(tbl, built.Cube, 0.95, 21)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := core.NewProgressive(tbl, nil, 0.95, 21)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %28s %28s %18s\n", "sample", "AQP (± 95% CI)", "AQP++ (± 95% CI)", "actual dev %")
	for _, add := range []int{250, 250, 500, 1000, 2000, 4000} {
		withCube.Step(add)
		plain.Step(add)
		a1, err := plain.Answer(q)
		if err != nil {
			log.Fatal(err)
		}
		a2, err := withCube.Answer(q)
		if err != nil {
			log.Fatal(err)
		}
		devAQP := 100 * (a1.Estimate.Value - truth.Value) / truth.Value
		devPP := 100 * (a2.Estimate.Value - truth.Value) / truth.Value
		fmt.Printf("%8d %14.0f ± %-11.0f %14.0f ± %-11.0f %+7.2f / %+6.2f\n",
			withCube.SampleSize(),
			a1.Estimate.Value, a1.Estimate.HalfWidth,
			a2.Estimate.Value, a2.Estimate.HalfWidth, devAQP, devPP)
	}
	fmt.Println("\nBoth intervals shrink as ~1/√n; the cube anchor keeps AQP++'s tighter at every step.")
}
