// Retail exploration: the paper's §7.3 "changes of condition attributes"
// scenario on TPCD-Skew. One BP-Cube is precomputed for the template
// [SUM(l_extendedprice), l_orderkey, l_partkey, l_suppkey]; the analyst
// then explores with fewer and with more condition attributes, and AQP++
// keeps reusing the single cube through query rewriting.
//
//	go run ./examples/retail
package main

import (
	"fmt"
	"log"

	"aqppp"
	"aqppp/internal/aqp"
	"aqppp/internal/dataset"
	"aqppp/internal/sql"
)

func main() {
	tbl := dataset.TPCDSkew(dataset.TPCDConfig{Rows: 300000, Seed: 5})
	db := aqppp.NewDB()
	if err := db.Register(tbl); err != nil {
		log.Fatal(err)
	}

	prep, err := db.Prepare(aqppp.PrepareOptions{
		Table:      "lineitem",
		Aggregate:  "l_extendedprice",
		Dimensions: []string{"l_orderkey", "l_partkey", "l_suppkey"},
		SampleRate: 0.01,
		CellBudget: 8000,
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BP-Cube prepared for [SUM(l_extendedprice), l_orderkey, l_partkey, l_suppkey]")

	exploration := []struct {
		label string
		stmt  string
	}{
		{"Q1: fewer attributes (orderkey only)",
			"SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 1 AND 40"},
		{"Q2: two of the cube's attributes",
			"SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 1 AND 60 AND l_partkey BETWEEN 1 AND 2000"},
		{"Q3: the cube's own template",
			"SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 1 AND 80 AND l_partkey BETWEEN 1 AND 3000 AND l_suppkey BETWEEN 1 AND 800"},
		{"Q4: an extra attribute beyond the cube (quantity)",
			"SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 1 AND 80 AND l_quantity BETWEEN 10 AND 40"},
	}

	for _, step := range exploration {
		exact, err := db.Exact(step.stmt)
		if err != nil {
			log.Fatal(err)
		}
		q, err := sql.ParseAndCompile(step.stmt, tbl)
		if err != nil {
			log.Fatal(err)
		}
		plain, err := aqp.EstimateQuery(prep.Sample(), q, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		approx, err := prep.Query(step.stmt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", step.label)
		fmt.Printf("  exact  %14.0f\n", exact.Value)
		fmt.Printf("  AQP    %14.0f ± %-12.0f (%.2f%% of truth)\n",
			plain.Value, plain.HalfWidth, pct(plain.HalfWidth, exact.Value))
		fmt.Printf("  AQP++  %14.0f ± %-12.0f (%.2f%% of truth; pre = %s)\n",
			approx.Value, approx.HalfWidth, pct(approx.HalfWidth, exact.Value), approx.Pre)
	}
	fmt.Println("\nOne precomputed cube keeps helping as the analyst adds or drops attributes (paper §7.3, Figure 9).")
}

func pct(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * x / base
}
