// Taxi dashboard: the paper's TLCTrip scenario — an analyst slicing NYC
// yellow-cab trips by date, time-of-day and fare, comparing AQP++ against
// plain AQP on the very same sample for a panel of dashboard queries.
//
//	go run ./examples/taxi
package main

import (
	"fmt"
	"log"
	"time"

	"aqppp"
	"aqppp/internal/aqp"
	"aqppp/internal/dataset"
	"aqppp/internal/sql"
)

func main() {
	// 400k synthetic trips with realistic correlations (fare ~ distance,
	// dropoff = pickup + duration, night surcharges).
	tbl := dataset.TLCTrip(dataset.TLCTripConfig{Rows: 400000, Seed: 99})
	db := aqppp.NewDB()
	if err := db.Register(tbl); err != nil {
		log.Fatal(err)
	}

	prep, err := db.Prepare(aqppp.PrepareOptions{
		Table:      "tlctrip",
		Aggregate:  "Distance",
		Dimensions: []string{"Pickup_Date", "Pickup_Time", "Fare_Amt"},
		SampleRate: 0.01,
		CellBudget: 5000,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := prep.Stats()
	fmt.Printf("prepared: %d-row sample, %v-shaped cube (%d cells)\n\n",
		st.SampleRows, st.CubeShape, st.CubeCells)

	dashboard := []string{
		// Total miles in the first quarter of the data.
		"SELECT SUM(Distance) FROM tlctrip WHERE Pickup_Date BETWEEN 1 AND 725",
		// Morning-rush miles across two years.
		"SELECT SUM(Distance) FROM tlctrip WHERE Pickup_Date BETWEEN 300 AND 1000 AND Pickup_Time BETWEEN 420 AND 560",
		// Expensive evening trips.
		"SELECT SUM(Distance) FROM tlctrip WHERE Pickup_Time BETWEEN 1020 AND 1260 AND Fare_Amt BETWEEN 25 AND 80",
		// A narrow drill-down.
		"SELECT SUM(Distance) FROM tlctrip WHERE Pickup_Date BETWEEN 2000 AND 2100 AND Fare_Amt BETWEEN 5 AND 20",
	}

	fmt.Printf("%-4s %12s %22s %22s %9s\n", "#", "exact", "AQP (same sample)", "AQP++", "gain")
	for i, stmt := range dashboard {
		exact, err := db.Exact(stmt)
		if err != nil {
			log.Fatal(err)
		}
		q, err := sql.ParseAndCompile(stmt, tbl)
		if err != nil {
			log.Fatal(err)
		}
		plain, err := aqp.EstimateQuery(prep.Sample(), q, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		approx, err := prep.Query(stmt)
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(t0)
		gain := 0.0
		if approx.HalfWidth > 0 {
			gain = plain.HalfWidth / approx.HalfWidth
		}
		fmt.Printf("Q%-3d %12.0f %13.0f ± %-7.0f %13.0f ± %-7.0f %7.1fx  [%v]\n",
			i+1, exact.Value,
			plain.Value, plain.HalfWidth,
			approx.Value, approx.HalfWidth,
			gain, el.Round(time.Microsecond))
	}
	fmt.Println("\n'gain' is the CI-width ratio AQP/AQP++ on the identical sample.")
}
