// Quickstart: build a table, prepare AQP++, and compare an approximate
// answer with the exact one.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"aqppp"
	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

func main() {
	// A synthetic "orders" table: 500k rows of (customer ID, amount).
	const n = 500000
	r := stats.NewRNG(1)
	customer := make([]int64, n)
	amount := make([]float64, n)
	for i := 0; i < n; i++ {
		customer[i] = int64(r.Intn(10000) + 1)
		amount[i] = 20 + 0.01*float64(customer[i]) + 15*r.NormFloat64()
		if amount[i] < 1 {
			amount[i] = 1
		}
	}
	tbl := engine.MustNewTable("orders",
		engine.NewIntColumn("customer", customer),
		engine.NewFloatColumn("amount", amount),
	)

	db := aqppp.NewDB()
	if err := db.Register(tbl); err != nil {
		log.Fatal(err)
	}

	// Offline: a 1% sample plus a 200-cell BP-Cube for the template
	// [SUM(amount), customer].
	t0 := time.Now()
	prep, err := db.Prepare(aqppp.PrepareOptions{
		Table:      "orders",
		Aggregate:  "amount",
		Dimensions: []string{"customer"},
		SampleRate: 0.01,
		CellBudget: 200,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := prep.Stats()
	fmt.Printf("prepared in %v: %d-row sample + %d-cell cube (%d bytes total)\n\n",
		time.Since(t0).Round(time.Millisecond), st.SampleRows, st.CubeCells,
		st.SampleBytes+st.CubeBytes)

	stmt := "SELECT SUM(amount) FROM orders WHERE customer BETWEEN 1200 AND 4700"

	t1 := time.Now()
	approx, err := prep.Query(stmt)
	if err != nil {
		log.Fatal(err)
	}
	approxTime := time.Since(t1)

	t2 := time.Now()
	exact, err := db.Exact(stmt)
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(t2)

	fmt.Printf("query: %s\n", stmt)
	fmt.Printf("AQP++: %14.2f ± %-12.2f in %8v (used pre: %v)\n",
		approx.Value, approx.HalfWidth, approxTime.Round(time.Microsecond), approx.UsedPrecomputed)
	fmt.Printf("exact: %14.2f                 in %8v\n", exact.Value, exactTime.Round(time.Microsecond))
	relErr := (approx.Value - exact.Value) / exact.Value
	fmt.Printf("actual deviation: %.3f%%; CI half-width: %.3f%% of truth\n",
		100*relErr, 100*approx.HalfWidth/exact.Value)
}
