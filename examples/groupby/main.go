// Group-by with stratified sampling: the paper's §7.4 / Figure 10(b)
// scenario. A stratified sample protects tiny groups (every row of the
// rare <N,F> combination is kept), a BP-Cube treats the group-by
// attributes as extra dimensions (Appendix C), and AQP++ tightens every
// group's interval.
//
//	go run ./examples/groupby
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"aqppp/internal/aqp"
	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/dataset"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
)

func main() {
	tbl := dataset.TPCDSkew(dataset.TPCDConfig{Rows: 300000, Seed: 21})

	// Stratify on the group-by attributes with a 100-row floor per
	// stratum: small groups get fully sampled.
	s, err := sample.NewStratified(tbl, []string{"l_returnflag", "l_linestatus"}, 0.01, 100, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strata (source rows → sample rows):")
	for _, st := range s.Strata {
		full := ""
		if st.SampleRows == st.SourceRows {
			full = "  ← fully sampled (exact answers)"
		}
		fmt.Printf("  <%s>  %7d → %5d%s\n", st.Key, st.SourceRows, st.SampleRows, full)
	}

	// The cube includes the group-by attributes as dimensions.
	ctx := context.Background()
	proc, _, err := core.Build(ctx, tbl, core.BuildConfig{
		Template: cube.Template{
			Agg:  "l_extendedprice",
			Dims: []string{"l_orderkey", "l_suppkey", "l_returnflag", "l_linestatus"},
		},
		CellBudget:     8000,
		Seed:           25,
		PrebuiltSample: s,
	})
	if err != nil {
		log.Fatal(err)
	}

	q := engine.Query{
		Func: engine.Sum, Col: "l_extendedprice",
		Ranges: []engine.Range{
			{Col: "l_orderkey", Lo: 1, Hi: 500},
			{Col: "l_suppkey", Lo: 1, Hi: 3000},
		},
		GroupBy: []string{"l_returnflag", "l_linestatus"},
	}
	truthRes, err := tbl.Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	truth := map[string]float64{}
	for _, g := range truthRes.Groups {
		truth[g.Key] = g.Value
	}

	plain, err := aqp.EstimateGroups(s, q, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	plainBy := map[string]aqp.Estimate{}
	for _, g := range plain {
		plainBy[g.Key] = g.Est
	}

	groups, err := proc.AnswerGroups(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })

	fmt.Printf("\n%-8s %14s %20s %20s\n", "group", "exact", "AQP ±", "AQP++ ±")
	for _, g := range groups {
		tv := truth[g.Key]
		p := plainBy[g.Key]
		fmt.Printf("<%-6s> %14.0f %12.0f ± %-7.0f %12.0f ± %-7.0f\n",
			g.Key, tv, p.Value, p.HalfWidth,
			g.Answer.Estimate.Value, g.Answer.Estimate.HalfWidth)
	}
	fmt.Println("\nFully sampled strata answer exactly (± 0) under both systems —")
	fmt.Println("the paper's \"<N,F>\" observation; AQP++ tightens the rest.")
}
