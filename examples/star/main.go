// Star schema: the footnote-2 extension — AQP++ over a fact table joined
// with a dimension table. The foreign-key join is denormalized once with
// engine.HashJoinFK; templates may then mix fact attributes (order key)
// with dimension attributes (supplier rating), and dotted column names
// flow through the SQL front end.
//
//	go run ./examples/star
package main

import (
	"fmt"
	"log"

	"aqppp"
	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

func main() {
	r := stats.NewRNG(7)

	// Dimension: 200 suppliers with a rating and a region.
	const suppliers = 200
	sid := make([]int64, suppliers)
	rating := make([]int64, suppliers)
	region := make([]string, suppliers)
	regions := []string{"north", "south", "east", "west"}
	for i := range sid {
		sid[i] = int64(i + 1)
		rating[i] = int64(r.Intn(5) + 1)
		region[i] = regions[r.Intn(len(regions))]
	}
	supplier := engine.MustNewTable("supplier",
		engine.NewIntColumn("s_id", sid),
		engine.NewIntColumn("rating", rating),
		engine.NewStringColumn("region", region),
	)

	// Fact: 500k order lines; higher-rated suppliers move bigger orders.
	const n = 500000
	fk := make([]int64, n)
	amount := make([]float64, n)
	for i := 0; i < n; i++ {
		fk[i] = int64(r.Intn(suppliers) + 1)
		amount[i] = 10*float64(rating[fk[i]-1]) + 8*r.NormFloat64()
		if amount[i] < 1 {
			amount[i] = 1
		}
	}
	orders := engine.MustNewTable("orders",
		engine.NewIntColumn("o_supp", fk),
		engine.NewFloatColumn("amount", amount),
	)

	joined, err := engine.HashJoinFK(orders, "o_supp", supplier, "s_id")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joined table %q: %d rows, columns %v\n\n",
		joined.Name, joined.NumRows(), joined.ColumnNames())

	db := aqppp.NewDB()
	if err := db.Register(joined); err != nil {
		log.Fatal(err)
	}
	prep, err := db.Prepare(aqppp.PrepareOptions{
		Table: joined.Name, Aggregate: "amount",
		Dimensions: []string{"o_supp", "supplier.rating"},
		SampleRate: 0.01, CellBudget: 48, Seed: 9, // a tiny cube: 48 cells over 200×5 values
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, stmt := range []string{
		"SELECT SUM(amount) FROM orders_supplier WHERE supplier.rating BETWEEN 4 AND 5",
		"SELECT SUM(amount) FROM orders_supplier WHERE o_supp BETWEEN 20 AND 120 AND supplier.rating BETWEEN 2 AND 3",
	} {
		exact, err := db.Exact(stmt)
		if err != nil {
			log.Fatal(err)
		}
		approx, err := prep.Query(stmt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  exact  %14.0f\n  AQP++  %14.0f ± %.0f (%.3f%% of truth)\n\n",
			stmt, exact.Value, approx.Value, approx.HalfWidth,
			100*approx.HalfWidth/exact.Value)
	}
	fmt.Println("Sampling the fact table and joining commutes with joining then sampling (footnote 2 / BlinkDB-style FK joins).")
}
