package aqppp

import (
	"fmt"

	"aqppp/internal/engine"
	"aqppp/internal/exec"
)

// RegisterDistributed registers a remote table: a zero-row schema table
// (typically dist.Coordinator.SchemaTable()) whose data lives on a
// replica fleet, with d answering every plan against it. Exact queries
// against the name scatter-gather over the network and merge
// bit-identically to the in-process sharded path; DistPrepared exposes
// the fleet's prepared handles for approximate queries.
func (db *DB) RegisterDistributed(tbl *engine.Table, d exec.Distributed) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[tbl.Name]; ok {
		return fmt.Errorf("aqppp: table %q already registered", tbl.Name)
	}
	db.tables[tbl.Name] = tbl
	db.dist[tbl.Name] = d
	db.gens[tbl.Name]++
	return nil
}

// lookupDistributed resolves a table's fleet, if it has one.
func (db *DB) lookupDistributed(name string) (exec.Distributed, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	d, ok := db.dist[name]
	return d, ok
}

// Distributed reports a table's fleet, or nil if the table is resident.
func (db *DB) Distributed(name string) exec.Distributed {
	d, _ := db.lookupDistributed(name)
	return d
}

// DistPrepared wraps one of a distributed table's prepared handles —
// built independently by every replica over its own slice — as a
// Prepared. Queries plan once against the schema table and fan out to
// the fleet; confidence and sampleRows describe the handle as the
// replicas reported it (dist.Coordinator.Handles()).
func (db *DB) DistPrepared(table, handle string, confidence float64, sampleRows int) (*Prepared, error) {
	tbl, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	d, ok := db.lookupDistributed(table)
	if !ok {
		return nil, &exec.Error{Kind: exec.Unsupported, Op: "prepare",
			Err: fmt.Errorf("table %q is not distributed", table)}
	}
	return &Prepared{
		db: db, tbl: tbl, dist: d, distHandle: handle,
		distConf: confidence, distSampleRows: sampleRows,
		state: db.track(table),
	}, nil
}

// errDist is the cause carried by operations a distributed preparation
// does not support.
func errDist(what string) error {
	return fmt.Errorf("%s is not supported over a distributed table", what)
}
