package aqppp

import "aqppp/internal/exec"

// Error is the unified error type every query and prepare entry point
// returns on failure: a Kind from the small taxonomy below, the entry
// point that produced it, and the underlying cause. It unwraps, so
// errors.Is(err, context.Canceled) holds for canceled queries and
// errors.As(err, &e) recovers the Kind.
type Error = exec.Error

// ErrorKind classifies an Error.
type ErrorKind = exec.Kind

// The error taxonomy. Every failure from a DB, Prepared or MultiPrepared
// entry point carries exactly one of these kinds.
const (
	// ErrInternal is an unexpected failure the taxonomy does not model.
	ErrInternal = exec.Internal
	// ErrParse marks statements that do not parse or compile.
	ErrParse = exec.Parse
	// ErrUnknownTable marks statements targeting an unregistered table —
	// including preparations invalidated by DB.Drop.
	ErrUnknownTable = exec.UnknownTable
	// ErrUnsupported marks well-formed requests the engine cannot serve.
	ErrUnsupported = exec.Unsupported
	// ErrCanceled marks queries unwound by the caller's context.
	ErrCanceled = exec.Canceled
	// ErrBudgetExceeded marks queries rejected or unwound by the
	// per-query Budget.
	ErrBudgetExceeded = exec.BudgetExceeded
	// ErrUnavailable marks distributed queries that lost a required
	// replica (unreachable, timed out, or shedding) with no degraded
	// answer permitted. Its wire-stable String form is "unavailable".
	ErrUnavailable = exec.Unavailable
	// ErrContractInfeasible marks contract queries whose error bound no
	// permitted strategy can meet — at plan time (predicted) or after
	// the escalation ladder ran dry (realized). The cause is a
	// *ContractInfeasibleError carrying the tightest achievable
	// half-width; its wire-stable String form is "contract-infeasible".
	ErrContractInfeasible = exec.ContractInfeasible
)

// ErrorKindOf extracts the kind from an error returned by this package;
// other errors (including nil) report ErrInternal.
//
// The kinds are designed to be a wire-stable contract: ErrorKind's
// String form ("parse", "unknown-table", "unsupported", "canceled",
// "budget-exceeded", "contract-infeasible", "internal") is what internal/server emits in its
// JSON error bodies and what cmd/aqppp-cli folds into exit codes, so
// renaming a kind is a breaking API change.
func ErrorKindOf(err error) ErrorKind { return exec.KindOf(err) }

// Budget bounds a query or preparation: wall time, bootstrap resamples,
// and scratch memory. The zero Budget is unlimited. Set a DB-wide
// default with DB.SetDefaultBudget.
type Budget = exec.Budget
