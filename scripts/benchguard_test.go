package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := strings.NewReader(`goos: linux
goarch: amd64
BenchmarkEngineFilterClustered-8    5    35000 ns/op
BenchmarkEngineFilterClustered-8    5    37000 ns/op
BenchmarkEngineGroupByInt-8         5  6000000 ns/op  123 B/op  4 allocs/op
not a benchmark line
PASS
`)
	got, err := parseBenchOutput(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got["BenchmarkEngineFilterClustered"]) != 2 {
		t.Errorf("FilterClustered runs = %v, want 2 samples", got["BenchmarkEngineFilterClustered"])
	}
	if len(got["BenchmarkEngineGroupByInt"]) != 1 {
		t.Errorf("GroupByInt runs = %v, want 1 sample", got["BenchmarkEngineGroupByInt"])
	}
	if len(got) != 2 {
		t.Errorf("parsed %d names, want 2: %v", len(got), got)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := median(c.in); got < c.want-1e-9 || got > c.want+1e-9 {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestRunStrictVsLenient drives the full tool: a benchmark 10x over
// baseline passes in the default (report-only) mode and fails with
// -strict.
func TestRunStrictVsLenient(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	if err := os.WriteFile(baseline, []byte(`{
		"benchmarks": [{"name": "BenchmarkX", "after_ns_op": 1000}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	bench := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(bench, []byte("BenchmarkX-4  5  10000 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", baseline, bench}, nil, &out, &errOut); code != 0 {
		t.Errorf("lenient mode exit = %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "SLOW") {
		t.Errorf("lenient mode did not report the regression:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-baseline", baseline, "-strict", bench}, nil, &out, &errOut); code != 1 {
		t.Errorf("strict mode exit = %d, want 1\n%s", code, out.String())
	}

	// A healthy run exits 0 in both modes.
	if err := os.WriteFile(bench, []byte("BenchmarkX-4  5  900 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-baseline", baseline, "-strict", bench}, nil, &out, &errOut); code != 0 {
		t.Errorf("healthy strict exit = %d, want 0\n%s", code, out.String())
	}

	// A missing baseline file is a usage error, not a silent pass.
	if code := run([]string{"-baseline", filepath.Join(dir, "nope.json"), bench}, nil, &out, &errOut); code != 2 {
		t.Errorf("missing baseline exit = %d, want 2", code)
	}
}

// TestMultiBaseline merges comma-separated baseline files into one
// table and rejects a benchmark recorded in two of them.
func TestMultiBaseline(t *testing.T) {
	dir := t.TempDir()
	baseA := filepath.Join(dir, "a.json")
	baseB := filepath.Join(dir, "b.json")
	if err := os.WriteFile(baseA, []byte(`{
		"benchmarks": [{"name": "BenchmarkA", "after_ns_op": 1000}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseB, []byte(`{
		"benchmarks": [{"name": "BenchmarkB", "after_ns_op": 1000}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	bench := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(bench, []byte(
		"BenchmarkA-4  5  900 ns/op\nBenchmarkB-4  5  10000 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	both := baseA + "," + baseB
	if code := run([]string{"-baseline", both, bench}, nil, &out, &errOut); code != 0 {
		t.Errorf("merged baselines exit = %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"BenchmarkA", "BenchmarkB", "SLOW"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("merged report missing %q:\n%s", want, out.String())
		}
	}

	// The B-side regression still trips -strict through the merge.
	out.Reset()
	if code := run([]string{"-baseline", both, "-strict", bench}, nil, &out, &errOut); code != 1 {
		t.Errorf("merged strict exit = %d, want 1\n%s", code, out.String())
	}

	// A name recorded in two files is a config error.
	dup := filepath.Join(dir, "dup.json")
	if err := os.WriteFile(dup, []byte(`{
		"benchmarks": [{"name": "BenchmarkA", "after_ns_op": 2000}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-baseline", baseA + "," + dup, bench}, nil, &out, &errOut); code != 2 {
		t.Errorf("duplicate baseline exit = %d, want 2", code)
	}
}
