// Command benchguard compares `go test -bench` output against the
// recorded baselines in BENCH_engine.json (and siblings such as
// BENCH_shard.json; -baseline takes a comma-separated list). It reads
// the raw benchmark output (a file argument or stdin), takes the
// per-benchmark median across repeated runs (-count=N), and flags any
// benchmark whose median ns/op exceeds baseline × tolerance.
//
// By default violations are reported but the exit status stays 0: CI
// runs on noisy shared runners where a hard perf gate would flake, so
// the job uploads the raw output as an artifact and this report makes
// regressions visible in the log instead of red. Pass -strict to turn
// violations into a non-zero exit (for quiet, dedicated hardware).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkEngine -benchtime 5x -count=5 ./internal/engine | tee bench.txt
//	go run ./scripts/benchguard.go -baseline BENCH_engine.json bench.txt
//	go run ./scripts/benchguard.go -baseline BENCH_engine.json,BENCH_shard.json bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// baselineFile mirrors BENCH_engine.json.
type baselineFile struct {
	Description string `json:"description"`
	Benchmarks  []struct {
		Name      string  `json:"name"`
		AfterNsOp float64 `json:"after_ns_op"`
		Note      string  `json:"note"`
	} `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_engine.json", "baseline JSON file(s), comma-separated")
	tolerance := fs.Float64("tolerance", 1.5, "allowed median/baseline ratio before a benchmark is flagged")
	strict := fs.Bool("strict", false, "exit non-zero on violations (default: report only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Baselines from every listed file merge into one table; a name
	// recorded twice is a config error, not a silent last-wins.
	var base baselineFile
	for _, path := range strings.Split(*baselinePath, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "benchguard: %v\n", err)
			return 2
		}
		var one baselineFile
		if err := json.Unmarshal(raw, &one); err != nil {
			fmt.Fprintf(stderr, "benchguard: parse %s: %v\n", path, err)
			return 2
		}
		for _, b := range one.Benchmarks {
			if baselineHas(base, b.Name) {
				fmt.Fprintf(stderr, "benchguard: %s recorded in more than one baseline file\n", b.Name)
				return 2
			}
			base.Benchmarks = append(base.Benchmarks, b)
		}
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "benchguard: %v\n", err)
			return 2
		}
		defer func() {
			_ = f.Close()
		}()
		in = f
	}

	samples, err := parseBenchOutput(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: %v\n", err)
		return 2
	}
	if len(samples) == 0 {
		fmt.Fprintln(stderr, "benchguard: no benchmark lines in input")
		return 2
	}

	violations := 0
	missing := 0
	for _, b := range base.Benchmarks {
		runs := samples[b.Name]
		if len(runs) == 0 {
			fmt.Fprintf(stdout, "MISSING %-36s baseline %.0f ns/op, no runs in input\n", b.Name, b.AfterNsOp)
			missing++
			continue
		}
		med := median(runs)
		ratio := med / b.AfterNsOp
		status := "ok"
		if ratio > *tolerance {
			status = "SLOW"
			violations++
		}
		fmt.Fprintf(stdout, "%-7s %-36s median %12.0f ns/op  baseline %12.0f  ratio %.2fx (runs %d)\n",
			status, b.Name, med, b.AfterNsOp, ratio, len(runs))
	}
	for name := range samples {
		if !baselineHas(base, name) {
			fmt.Fprintf(stdout, "NEW     %-36s no baseline recorded (%d runs)\n", name, len(samples[name]))
		}
	}

	if violations > 0 {
		fmt.Fprintf(stdout, "benchguard: %d benchmark(s) above %.2fx tolerance\n", violations, *tolerance)
		if *strict {
			return 1
		}
		fmt.Fprintln(stdout, "benchguard: non-strict mode — reporting only (shared-runner noise tolerated)")
	}
	if missing > 0 && *strict {
		return 1
	}
	return 0
}

func baselineHas(base baselineFile, name string) bool {
	for _, b := range base.Benchmarks {
		if b.Name == name {
			return true
		}
	}
	return false
}

// parseBenchOutput extracts (name, ns/op) samples from `go test -bench`
// output. Benchmark names are normalized by stripping the -GOMAXPROCS
// suffix so they match the baseline's recorded names.
func parseBenchOutput(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Shape: BenchmarkName-8  N  123456 ns/op [extra metrics...]
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 2 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[name] = append(out[name], ns)
	}
	return out, sc.Err()
}

// median returns the middle sample (mean of the middle two for even
// counts).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
