#!/bin/sh
# check.sh — the repo's expanded tier-1 verification gate.
# Runs: build, gofmt, go vet, aqppp-lint, and the race-enabled test suite.
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> gofmt -l"
# Exclude the lint testdata module: its files seed deliberate violations
# and are formatted, but keep the filter explicit in case that changes.
unformatted=$(gofmt -l . | grep -v '^internal/lint/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> aqppp-lint ./..."
# The analyzer parses and analyzes packages in parallel; the wall-clock
# line makes a load/analysis perf regression visible in every gate run.
lint_start=$(date +%s)
go run ./cmd/aqppp-lint ./...
echo "    aqppp-lint wall-clock: $(( $(date +%s) - lint_start ))s"

echo "==> go test -race ./..."
go test -race ./...

echo "==> cancellation flake hunt (-race -run Cancel -count=5)"
# Cancellation is inherently racy machinery: a stop flag armed by
# context.AfterFunc, polled by scan/climb/resample loops. Run the
# TestCancel* suite five times under the race detector to shake out
# ordering-dependent flakes before they reach CI.
go test -race -run Cancel -count=5 ./...

if [ "${AQPPP_SKIP_SERVER_SMOKE:-}" = "1" ]; then
    echo "==> server smoke skipped (AQPPP_SKIP_SERVER_SMOKE=1)"
else
    echo "==> server smoke (build, serve, query, cache hit, shed, quota, drain)"
    # Exercises the real aqppp-serve binary end to end: build it, serve a
    # small demo table on a random port, answer one exact and one approx
    # query, repeat one for a cache hit, burst distinct clients past the
    # capacity-1 admission gate expecting 429 "overloaded", exhaust one
    # client's token bucket expecting 429 "quota-exceeded" (the two sheds
    # must stay distinguishable), scrape /metrics, then SIGTERM and
    # require a clean drain (exit 0). Gated behind the env var so
    # `go test ./...` above stays fast; CI runs it on one matrix leg only.
    # The restart leg saves a store container, restarts from -data alone,
    # and requires identical answers with no rebuild. The fleet leg runs
    # two replica processes plus a coordinator against a single-process
    # sharded oracle: answers must match bit for bit, and killing a
    # replica must shed 503 "unavailable" instead of a silent partial sum.
    AQPPP_SERVER_SMOKE=1 go test -race -count=1 \
        -run 'TestServeBinarySmoke|TestServeStoreRestartSmoke|TestServeFleetSmoke' ./cmd/aqppp-serve
fi

echo "==> engine bench smoke (benchtime 1x)"
# One iteration per benchmark: catches kernel-path panics/regressions in
# the benchmark fixtures without turning the gate into a perf run. The
# recorded baselines live in BENCH_engine.json.
go test -run '^$' -bench BenchmarkEngine -benchtime 1x ./internal/engine

echo "==> store bench smoke (benchtime 1x)"
# One iteration per store benchmark: write + open + scan the 1M-row
# container through both the mmap and portable read paths. Catches
# format/decode-path panics; recorded baselines live in BENCH_store.json.
go test -run '^$' -bench BenchmarkStore -benchtime 1x ./internal/store

echo "==> shard bench smoke (benchtime 1x, one sharded config)"
# One sharded scatter-gather config end to end: partition the 1M-row
# fixture into 4 range shards, run the straddle-heavy SUM through the
# coordinator. Catches partition/prune/merge panics; the recorded
# baselines (all shard counts) live in BENCH_shard.json.
go test -run '^$' -bench 'BenchmarkShardSumShuffled4$' -benchtime 1x ./internal/shard

echo "==> all checks passed"
