#!/bin/sh
# check.sh — the repo's expanded tier-1 verification gate.
# Runs: build, gofmt, go vet, aqppp-lint, the race-enabled test suite,
# the server smokes, and one-iteration bench smokes with the recorded
# baselines loaded. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

# now prints the epoch second. `date +%s` is a GNU/BSD extension (POSIX
# date has no %s), so dash/minimal-sh environments need the awk route:
# srand() with no argument seeds from the clock and returns the previous
# seed, so calling it twice yields the current epoch portably.
now() {
    awk 'BEGIN { srand(); print srand() }'
}

# step/step_done bracket every gate stage with a uniform wall-clock
# line, so a CI log diff immediately shows which stage regressed.
step() {
    echo "==> $1"
    step_started=$(now)
}
step_done() {
    echo "    wall-clock: $(( $(now) - step_started ))s"
}

step "go build ./..."
go build ./...
step_done

step "gofmt -l"
# Exclude the lint testdata module: its files seed deliberate violations
# and are formatted, but keep the filter explicit in case that changes.
unformatted=$(gofmt -l . | grep -v '^internal/lint/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi
step_done

step "go vet ./..."
go vet ./...
step_done

step "aqppp-lint ./..."
go run ./cmd/aqppp-lint ./...
step_done

step "go test -race ./..."
go test -race ./...
step_done

step "cancellation flake hunt (-race -run Cancel -count=5)"
# Cancellation is inherently racy machinery: a stop flag armed by
# context.AfterFunc, polled by scan/climb/resample loops. Run the
# TestCancel* suite five times under the race detector to shake out
# ordering-dependent flakes before they reach CI.
go test -race -run Cancel -count=5 ./...
step_done

if [ "${AQPPP_SKIP_SERVER_SMOKE:-}" = "1" ]; then
    echo "==> server smoke skipped (AQPPP_SKIP_SERVER_SMOKE=1)"
else
    step "server smoke (serve, query, cache, shed, quota, contract, SSE, drain)"
    # Exercises the real aqppp-serve binary end to end: build it, serve a
    # small demo table on a random port, answer one exact and one approx
    # query, repeat one for a cache hit, burst distinct clients past the
    # capacity-1 admission gate expecting 429 "overloaded", exhaust one
    # client's token bucket expecting 429 "quota-exceeded" (the two sheds
    # must stay distinguishable), scrape /metrics, then SIGTERM and
    # require a clean drain (exit 0). Gated behind the env var so
    # `go test ./...` above stays fast; CI runs it on one matrix leg only.
    # The restart leg saves a store container, restarts from -data alone,
    # and requires identical answers with no rebuild. The fleet leg runs
    # two replica processes plus a coordinator against a single-process
    # sharded oracle: answers must match bit for bit, and killing a
    # replica must shed 503 "unavailable" instead of a silent partial sum.
    # The contract leg answers a feasible contract inside its bound,
    # rejects an impossible one 422 with tightest_achievable, streams a
    # progressive SSE answer to a well-formed terminal event, and proves
    # a mid-stream disconnect lands on the canceled counter.
    AQPPP_SERVER_SMOKE=1 go test -race -count=1 \
        -run 'TestServeBinarySmoke|TestServeStoreRestartSmoke|TestServeFleetSmoke|TestServeContractSmoke' \
        ./cmd/aqppp-serve
    step_done
fi

# One iteration per benchmark: catches fixture/kernel-path panics without
# turning the gate into a perf run. The output feeds benchguard below so
# the recorded baselines (BENCH_*.json) are parsed and name-checked on
# every gate run; actual regression comparison happens in CI and nightly
# where repetitions make medians meaningful.
bench_out=$(mktemp)
trap 'rm -f "$bench_out"' EXIT

step "engine bench smoke (benchtime 1x)"
go test -run '^$' -bench BenchmarkEngine -benchtime 1x ./internal/engine | tee "$bench_out"
step_done

step "store bench smoke (benchtime 1x)"
go test -run '^$' -bench BenchmarkStore -benchtime 1x ./internal/store | tee -a "$bench_out"
step_done

step "shard bench smoke (benchtime 1x, one sharded config)"
go test -run '^$' -bench 'BenchmarkShardSumShuffled4$' -benchtime 1x ./internal/shard | tee -a "$bench_out"
step_done

step "contract bench smoke (benchtime 1x)"
go test -run '^$' -bench BenchmarkContract -benchtime 1x ./internal/contract | tee -a "$bench_out"
step_done

step "benchguard baselines (report-only at 1x)"
go run ./scripts/benchguard.go \
    -baseline BENCH_engine.json,BENCH_shard.json,BENCH_store.json,BENCH_contract.json \
    -tolerance 10 "$bench_out"
step_done

echo "==> all checks passed"
