#!/bin/sh
# coverage.sh — test coverage with a ratcheted floor.
# Profiles every non-testdata package, prints the per-package and total
# figures, and fails if the total drops below scripts/coverage_floor.txt
# (a plain number, e.g. "75.0"). Raise the floor when coverage grows;
# never lower it to make a regression pass.
set -eu

cd "$(dirname "$0")/.."

floor=$(cat scripts/coverage_floor.txt)
profile="${COVER_PROFILE:-coverage.out}"

pkgs=$(go list ./... | grep -v testdata)

echo "==> go test -coverprofile over $(echo "$pkgs" | wc -l | tr -d ' ') packages"
# shellcheck disable=SC2086 -- package list is intentionally word-split
go test -coverprofile="$profile" $pkgs

echo "==> totals"
total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "total coverage: ${total}% (floor ${floor}%)"

# awk handles the float comparison portably (sh has no float arithmetic).
if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t < f) }'; then
    echo "coverage ${total}% is below the floor ${floor}%" >&2
    exit 1
fi
echo "coverage floor satisfied"
