// Command aqppp-lint runs the repo's custom static analyzer (see
// internal/lint) over the given package patterns and reports invariant
// violations. The rule set spans plain AST walks (nondeterminism in the
// numeric core, float equality, dropped errors, library panics,
// goroutine loop-variable captures, lock copies, ctx-first signatures)
// and flow-aware analyses built on the CFG/dataflow framework in
// internal/lint/cfg (lock-balance, cancel-leak, guarded-field,
// atomic-mix, ctx-propagation).
//
// Usage:
//
//	aqppp-lint [-json] [-lenient] [-allowlist file] [patterns...]
//
// Patterns are directories, optionally ending in /... for a subtree;
// the default is ./... from the current directory. Unless -allowlist is
// given, a lint.allow file at the enclosing module root is loaded when
// present.
//
// After analysis the allowlist is checked for staleness: an entry whose
// file pattern matched loaded files but which suppressed no diagnostic
// is dead weight and is reported. -lenient downgrades stale entries
// from an error to a warning (for use mid-refactor, never in CI).
//
// Exit status is a contract that scripts/check.sh and CI rely on:
//
//	0 — clean: no diagnostics, no stale allowlist entries
//	1 — findings: diagnostics reported, or stale allowlist entries
//	    found (unless -lenient)
//	2 — operational failure: bad usage, unreadable allowlist, or a
//	    package that fails to parse or type-check
//
// With -json, output is a single object (schema_version 1):
//
//	{
//	  "schema_version": 1,
//	  "diagnostics": [{"rule","file","line","col","message"}, ...],
//	  "counts": {"<rule>": n, ...},
//	  "stale_allowlist": ["line 12: ...", ...]
//	}
//
// counts holds one key per rule that fired; map keys serialize sorted,
// so the output is byte-stable for a given tree. The schema_version
// field only changes when a consumer-visible field is renamed, removed,
// or retyped — adding fields is not a version bump.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"aqppp/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit a JSON report object instead of text")
	lenient := flag.Bool("lenient", false, "warn on stale allowlist entries instead of failing")
	allowPath := flag.String("allowlist", "", "allowlist file (default: lint.allow at the module root, if present)")
	flag.Parse()
	os.Exit(run(*jsonOut, *lenient, *allowPath, flag.Args()))
}

// jsonReport is the -json output shape. Bump schemaVersion only on
// incompatible changes (renames/removals), per the package doc.
type jsonReport struct {
	SchemaVersion  int               `json:"schema_version"`
	Diagnostics    []lint.Diagnostic `json:"diagnostics"`
	Counts         map[string]int    `json:"counts"`
	StaleAllowlist []string          `json:"stale_allowlist,omitempty"`
}

const schemaVersion = 1

func run(jsonOut, lenient bool, allowPath string, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqppp-lint:", err)
		return 2
	}
	var allow *lint.Allowlist
	if allowPath == "" {
		allowPath = defaultAllowlist(cwd)
	}
	if allowPath != "" {
		allow, err = lint.LoadAllowlist(allowPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aqppp-lint:", err)
			return 2
		}
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqppp-lint:", err)
		return 2
	}
	diags := lint.Run(pkgs, lint.Rules(), allow)
	var stale []string
	if allow != nil {
		stale = allow.Stale(pkgs)
	}
	if jsonOut {
		rep := jsonReport{
			SchemaVersion:  schemaVersion,
			Diagnostics:    diags,
			Counts:         make(map[string]int),
			StaleAllowlist: stale,
		}
		if rep.Diagnostics == nil {
			rep.Diagnostics = []lint.Diagnostic{}
		}
		for _, d := range diags {
			rep.Counts[d.Rule]++
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "aqppp-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	for _, s := range stale {
		level := "stale allowlist entry"
		if lenient {
			level = "warning: stale allowlist entry"
		}
		fmt.Fprintf(os.Stderr, "aqppp-lint: %s: %s: %s\n", level, allowPath, s)
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "aqppp-lint: %d violation(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		return 1
	}
	if len(stale) > 0 && !lenient {
		fmt.Fprintf(os.Stderr, "aqppp-lint: %d stale allowlist entr%s; prune %s or rerun with -lenient\n",
			len(stale), plural(len(stale), "y", "ies"), allowPath)
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// defaultAllowlist returns the lint.allow path at the module root
// enclosing dir, or "" when neither a module nor the file exists.
func defaultAllowlist(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			p := filepath.Join(d, "lint.allow")
			if _, err := os.Stat(p); err == nil {
				return p
			}
			return ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}
