// Command aqppp-lint runs the repo's custom static analyzer (see
// internal/lint) over the given package patterns and reports invariant
// violations: nondeterminism in the numeric core, float equality,
// dropped errors, library panics, goroutine loop-variable captures, and
// lock copies.
//
// Usage:
//
//	aqppp-lint [-json] [-allowlist file] [patterns...]
//
// Patterns are directories, optionally ending in /... for a subtree;
// the default is ./... from the current directory. Unless -allowlist is
// given, a lint.allow file at the enclosing module root is loaded when
// present. Exit status: 0 clean, 1 diagnostics reported, 2 usage or
// load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"aqppp/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	allowPath := flag.String("allowlist", "", "allowlist file (default: lint.allow at the module root, if present)")
	flag.Parse()
	os.Exit(run(*jsonOut, *allowPath, flag.Args()))
}

func run(jsonOut bool, allowPath string, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqppp-lint:", err)
		return 2
	}
	var allow *lint.Allowlist
	if allowPath == "" {
		allowPath = defaultAllowlist(cwd)
	}
	if allowPath != "" {
		allow, err = lint.LoadAllowlist(allowPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aqppp-lint:", err)
			return 2
		}
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqppp-lint:", err)
		return 2
	}
	diags := lint.Run(pkgs, lint.Rules(), allow)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "aqppp-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "aqppp-lint: %d violation(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}

// defaultAllowlist returns the lint.allow path at the module root
// enclosing dir, or "" when neither a module nor the file exists.
func defaultAllowlist(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			p := filepath.Join(d, "lint.allow")
			if _, err := os.Stat(p); err == nil {
				return p
			}
			return ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}
