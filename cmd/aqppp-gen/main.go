// Command aqppp-gen generates the benchmark datasets and writes them as
// the engine's binary table format or as CSV.
//
// Usage:
//
//	aqppp-gen -dataset tpcd -rows 1000000 -out lineitem.tbl
//	aqppp-gen -dataset tlctrip -rows 500000 -format csv -out trips.csv
//
// Datasets: tpcd (TPCD-Skew lineitem), bigbench (UserVisits), tlctrip
// (NYC yellow-taxi style).
package main

import (
	"flag"
	"fmt"
	"os"

	"aqppp/internal/dataset"
	"aqppp/internal/engine"
)

func main() {
	name := flag.String("dataset", "tpcd", "tpcd | bigbench | tlctrip")
	rows := flag.Int("rows", 100000, "rows to generate")
	seed := flag.Uint64("seed", 42, "random seed")
	zipf := flag.Float64("zipf", 2, "TPCD-Skew z parameter")
	format := flag.String("format", "binary", "binary | csv")
	out := flag.String("out", "", "output path (default stdout)")
	flag.Parse()

	var tbl *engine.Table
	switch *name {
	case "tpcd":
		tbl = dataset.TPCDSkew(dataset.TPCDConfig{Rows: *rows, Seed: *seed, Zipf: *zipf})
	case "bigbench":
		tbl = dataset.BigBenchUserVisits(dataset.BigBenchConfig{Rows: *rows, Seed: *seed})
	case "tlctrip":
		tbl = dataset.TLCTrip(dataset.TLCTripConfig{Rows: *rows, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *name)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
		w = f
	}
	var err error
	switch *format {
	case "binary":
		err = tbl.WriteBinary(w)
	case "csv":
		err = tbl.WriteCSV(w)
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d rows, %d columns, ~%d bytes of column data\n",
		tbl.Name, tbl.NumRows(), tbl.NumCols(), tbl.SizeBytes())
}
