// Command aqppp-gen generates the benchmark datasets and writes them as
// a store container, the engine's legacy binary format, or CSV. It also
// converts legacy binary tables into store containers.
//
// Usage:
//
//	aqppp-gen -dataset tpcd -rows 1000000 -format store -out lineitem.aqps
//	aqppp-gen -dataset tlctrip -rows 500000 -format csv -out trips.csv
//	aqppp-gen -convert lineitem.tbl lineitem.aqps
//
// Datasets: tpcd (TPCD-Skew lineitem), bigbench (UserVisits), tlctrip
// (NYC yellow-taxi style).
//
// The "binary" format (AQPT row-batch stream) is legacy: it has no
// checksums, no block index, and must be fully materialized to load.
// New files should use "store" (.aqps), which aqppp-serve -data maps
// lazily; -convert migrates old files once.
package main

import (
	"flag"
	"fmt"
	"os"

	"aqppp/internal/dataset"
	"aqppp/internal/engine"
	"aqppp/internal/store"
)

func main() {
	name := flag.String("dataset", "tpcd", "tpcd | bigbench | tlctrip")
	rows := flag.Int("rows", 100000, "rows to generate")
	seed := flag.Uint64("seed", 42, "random seed")
	zipf := flag.Float64("zipf", 2, "TPCD-Skew z parameter")
	format := flag.String("format", "binary", "store | binary (legacy) | csv")
	out := flag.String("out", "", "output path (default stdout; store format requires a path)")
	convert := flag.Bool("convert", false, "convert a legacy binary table to a store container: aqppp-gen -convert <in.tbl> <out.aqps>")
	flag.Parse()

	if *convert {
		os.Exit(runConvert(flag.Args()))
	}

	var tbl *engine.Table
	switch *name {
	case "tpcd":
		tbl = dataset.TPCDSkew(dataset.TPCDConfig{Rows: *rows, Seed: *seed, Zipf: *zipf})
	case "bigbench":
		tbl = dataset.BigBenchUserVisits(dataset.BigBenchConfig{Rows: *rows, Seed: *seed})
	case "tlctrip":
		tbl = dataset.TLCTrip(dataset.TLCTripConfig{Rows: *rows, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *name)
		os.Exit(2)
	}

	if *format == "store" {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "-format store writes a seekable container; give it a path with -out")
			os.Exit(2)
		}
		if err := store.Write(*out, tbl, nil); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report(tbl)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
		w = f
	}
	var err error
	switch *format {
	case "binary":
		err = tbl.WriteBinary(w)
	case "csv":
		err = tbl.WriteCSV(w)
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report(tbl)
}

// runConvert reads a legacy AQPT binary table and rewrites it as a store
// container — the one-shot migration off the deprecated format.
func runConvert(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: aqppp-gen -convert <in.tbl> <out.aqps>")
		return 2
	}
	in, outPath := args[0], args[1]
	f, err := os.Open(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	tbl, err := engine.ReadBinary(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "read legacy table %s: %v\n", in, err)
		return 1
	}
	if err := store.Write(outPath, tbl, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "converted %s -> %s (%d rows, %d columns)\n",
		in, outPath, tbl.NumRows(), tbl.NumCols())
	return 0
}

func report(tbl *engine.Table) {
	fmt.Fprintf(os.Stderr, "wrote %s: %d rows, %d columns, ~%d bytes of column data\n",
		tbl.Name, tbl.NumRows(), tbl.NumCols(), tbl.SizeBytes())
}
