// Command aqppp-cli is an interactive SQL shell over the engine with
// three answering modes: approximate (AQP++), sample-only (plain AQP) and
// exact. It loads a table from a binary/CSV file produced by aqppp-gen,
// or generates a demo dataset in-process.
//
// Usage:
//
//	aqppp-cli -load lineitem.tbl -agg l_extendedprice -dims l_orderkey,l_suppkey
//	aqppp-cli -demo tpcd -rows 200000 -agg l_extendedprice -dims l_orderkey,l_suppkey
//
// Shell commands:
//
//	SELECT ...;          answer approximately with AQP++
//	.aqp SELECT ...;     answer with plain AQP (same sample)
//	.exact SELECT ...;   answer exactly (full scan)
//	.progress SELECT ...; stream refining estimates (online aggregation)
//	.stats               preprocessing statistics
//	.schema              table schema
//	.help                this help
//	.quit
//
// With -max-rel-error and/or -max-abs-error set, default-mode
// statements answer under an a-priori error contract: the planner
// picks the cheapest strategy that provably meets the bound and the
// shell prints which one served; an unreachable bound fails with kind
// contract-infeasible (exit code 2 under -e) unless -allow-exact
// permits escalation to a full scan.
//
// With -e the shell is skipped: the semicolon-separated statements run
// in order (".exact"/".aqp" prefixes work as in the shell) and the
// process exits with a code that classifies the first failure —
// 0 success, 2 parse/unsupported/unknown-table, 3 budget-exceeded or
// canceled, 1 anything else. The same classification applies when
// preparation itself fails.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"aqppp"
	"aqppp/internal/dataset"
	"aqppp/internal/engine"
	"aqppp/internal/repl"
)

// interrupter turns SIGINT into per-query cancellation: Ctrl-C aborts
// the statement (or preparation) in flight instead of killing the
// shell. With nothing in flight the signal is dropped.
type interrupter struct {
	mu      sync.Mutex
	current context.CancelFunc
}

func newInterrupter() *interrupter {
	it := &interrupter{}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt)
	go func() {
		for range sigs {
			it.mu.Lock()
			if it.current != nil {
				it.current()
			}
			it.mu.Unlock()
		}
	}()
	return it
}

// NewContext returns a fresh context that the next SIGINT cancels; its
// cancel detaches it again.
func (it *interrupter) NewContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	it.mu.Lock()
	it.current = cancel
	it.mu.Unlock()
	return ctx, func() {
		it.mu.Lock()
		if it.current != nil {
			it.current = nil
		}
		it.mu.Unlock()
		cancel()
	}
}

// exitCode folds the error taxonomy into stable process exit codes so
// scripts can tell "fix the statement" (2) from "raise the budget or
// retry" (3) from "file a bug" (1). The kinds are the same wire-stable
// set internal/server maps onto HTTP statuses.
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	switch aqppp.ErrorKindOf(err) {
	case aqppp.ErrParse, aqppp.ErrUnsupported, aqppp.ErrUnknownTable, aqppp.ErrContractInfeasible:
		return 2
	case aqppp.ErrBudgetExceeded, aqppp.ErrCanceled:
		return 3
	default:
		return 1
	}
}

func main() {
	load := flag.String("load", "", "binary table file to load (from aqppp-gen)")
	csvPath := flag.String("csv", "", "CSV table file to load")
	demo := flag.String("demo", "", "generate a demo dataset: tpcd | bigbench | tlctrip")
	rows := flag.Int("rows", 200000, "rows for -demo")
	agg := flag.String("agg", "", "aggregation attribute for the prepared template")
	dims := flag.String("dims", "", "comma-separated condition attributes")
	rate := flag.Float64("sample-rate", 0.01, "uniform sample rate")
	k := flag.Int("k", 5000, "BP-Cube cell budget")
	seed := flag.Uint64("seed", 42, "random seed")
	withMinMax := flag.Bool("minmax", false, "also build exact MIN/MAX indexes")
	timeout := flag.Duration("timeout", 0, "per-statement wall-time bound (0 = unlimited)")
	maxRel := flag.Float64("max-rel-error", 0, "error contract: max relative half-width, e.g. 0.01 = ±1% (0 = none)")
	maxAbs := flag.Float64("max-abs-error", 0, "error contract: max absolute half-width (0 = none)")
	contractConf := flag.Float64("contract-confidence", 0, "CI level the contract holds at (0 = 0.95)")
	allowExact := flag.Bool("allow-exact", false, "permit contract escalation to a full exact scan")
	script := flag.String("e", "", "run semicolon-separated statements non-interactively and exit")
	flag.Parse()

	tbl, err := loadTable(*load, *csvPath, *demo, *rows, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitCode(err))
	}
	db := aqppp.NewDB()
	if err := db.Register(tbl); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitCode(err))
	}
	if *agg == "" || *dims == "" {
		fmt.Fprintln(os.Stderr, "need -agg and -dims to prepare AQP++ (e.g. -agg l_extendedprice -dims l_orderkey,l_suppkey)")
		os.Exit(2)
	}
	it := newInterrupter()

	fmt.Printf("preparing AQP++ for [%s; %s] (rate %.3g, k %d)...\n", *agg, *dims, *rate, *k)
	t0 := time.Now()
	prepCtx, prepCancel := it.NewContext()
	prep, err := db.PrepareContext(prepCtx, aqppp.PrepareOptions{
		Table: tbl.Name, Aggregate: *agg,
		Dimensions: strings.Split(*dims, ","),
		SampleRate: *rate, CellBudget: *k, Seed: *seed,
		WithMinMax: *withMinMax,
	})
	prepCancel()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitCode(err))
	}
	fmt.Printf("ready in %v. Table %q, %d rows. Type .help for commands.\n",
		time.Since(t0).Round(time.Millisecond), tbl.Name, tbl.NumRows())

	session := repl.NewSession(db, tbl, prep)
	session.Timeout = *timeout
	session.NewContext = it.NewContext
	if *maxRel > 0 || *maxAbs > 0 {
		session.Contract = &aqppp.Contract{
			MaxRelError: *maxRel,
			MaxAbsError: *maxAbs,
			Confidence:  *contractConf,
			AllowExact:  *allowExact,
		}
	}
	if *script != "" {
		if err := session.RunScript(*script, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitCode(err))
		}
		return
	}
	if err := session.Run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func loadTable(load, csvPath, demo string, rows int, seed uint64) (*engine.Table, error) {
	switch {
	case load != "":
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return engine.ReadBinary(f)
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		base := csvPath
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		base = strings.TrimSuffix(base, ".csv")
		return engine.ReadCSV(base, f)
	case demo == "tpcd":
		return dataset.TPCDSkew(dataset.TPCDConfig{Rows: rows, Seed: seed}), nil
	case demo == "bigbench":
		return dataset.BigBenchUserVisits(dataset.BigBenchConfig{Rows: rows, Seed: seed}), nil
	case demo == "tlctrip":
		return dataset.TLCTrip(dataset.TLCTripConfig{Rows: rows, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("need one of -load, -csv, or -demo")
	}
}
