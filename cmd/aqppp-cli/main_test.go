package main

import (
	"errors"
	"testing"

	"aqppp"
)

// TestExitCode pins the taxonomy→exit-code contract scripts rely on:
// 2 means fix the statement, 3 means raise the budget or retry, 1 means
// something unexpected broke.
func TestExitCode(t *testing.T) {
	mk := func(k aqppp.ErrorKind) error {
		return &aqppp.Error{Kind: k, Op: "test", Err: errors.New("boom")}
	}
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{mk(aqppp.ErrParse), 2},
		{mk(aqppp.ErrUnsupported), 2},
		{mk(aqppp.ErrUnknownTable), 2},
		{mk(aqppp.ErrBudgetExceeded), 3},
		{mk(aqppp.ErrCanceled), 3},
		{mk(aqppp.ErrInternal), 1},
		{errors.New("untyped"), 1},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
