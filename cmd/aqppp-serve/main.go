// Command aqppp-serve exposes one table behind the HTTP query API in
// internal/server: exact SQL over POST /v1/query, AQP++ approximate
// answers over POST /v1/approx, handle management over /v1/prepare and
// DELETE /v1/prepared/{name}, plus /healthz, /readyz, /statusz, and a
// Prometheus /metrics endpoint. Responses are cached (tune with
// -cache-bytes/-cache-ttl) and per-client quotas are available with
// -quota-rps.
//
// Usage:
//
//	aqppp-serve -demo tpcd -rows 200000 -agg l_extendedprice -dims l_orderkey,l_suppkey
//	aqppp-serve -load lineitem.tbl -addr :8080
//	aqppp-serve -data lineitem.aqps
//
// With -agg and -dims the server pre-builds one prepared handle (named
// by -prepare, default "default") before accepting traffic; otherwise
// handles are built on demand through POST /v1/prepare. Add -save to
// persist the table and startup handle as a store container once the
// build finishes; a later -data run (pointing at that file, or at a
// directory of .aqps files) restores tables and handles at startup
// without rebuilding anything — data blocks fault in lazily as queries
// touch them.
//
// The binary also serves as one process of a distributed fleet. With
// -replica h/N it loads the table, keeps only shard h of an N-way
// layout on -shard-col, and serves the fleet-internal GET /v1/shard
// and POST /v1/partial endpoints alongside the public API. With
// -coordinator -peers url,url it loads nothing: it dials every
// replica, assembles the fleet's schema and shared handles, and
// answers public queries by fanning partials out over the network —
// bit-identical to an in-process -shards N run over the same data.
// Replicas given -quota-authority lease per-client quota tokens from
// the coordinator so the whole fleet drains one logical bucket.
//
// SIGTERM or SIGINT starts a graceful drain: /readyz flips to 503,
// in-flight queries finish within -drain-timeout, stragglers are
// hard-canceled. Exit status 0 means a clean drain, 1 a forced one.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"aqppp"
	"aqppp/internal/dataset"
	"aqppp/internal/dist"
	"aqppp/internal/engine"
	"aqppp/internal/server"
	"aqppp/internal/shard"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	load := flag.String("load", "", "binary table file to load (from aqppp-gen)")
	csvPath := flag.String("csv", "", "CSV table file to load")
	data := flag.String("data", "", "store container (.aqps file or directory of them) to serve from disk, with persisted prepared handles")
	save := flag.String("save", "", "persist the table and startup handle to this store container after preparing")
	demo := flag.String("demo", "", "generate a demo dataset: tpcd | bigbench | tlctrip")
	rows := flag.Int("rows", 200000, "rows for -demo")
	seed := flag.Uint64("seed", 42, "random seed")
	agg := flag.String("agg", "", "aggregation attribute for the startup prepared handle")
	dims := flag.String("dims", "", "comma-separated condition attributes for the startup handle")
	rate := flag.Float64("sample-rate", 0.01, "uniform sample rate for the startup handle")
	k := flag.Int("k", 5000, "BP-Cube cell budget for the startup handle")
	withMinMax := flag.Bool("minmax", false, "also build exact MIN/MAX indexes on the startup handle")
	handle := flag.String("prepare", "default", "name of the startup prepared handle")
	maxConc := flag.Int("max-concurrent", 0, "max queries executing at once (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "max queries waiting for a slot (0 = 4x max-concurrent)")
	defTimeout := flag.Duration("default-timeout", 30*time.Second, "per-request deadline when the request has no timeout_ms (0 = unlimited)")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on any request's timeout (0 = no cap)")
	maxResamples := flag.Int("max-resamples", 100000, "cap on bootstrap resamples per request (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a shutdown waits for in-flight queries")
	drainPause := flag.Duration("drain-pause", 0, "keep accepting this long after /readyz flips to 503")
	cacheBytes := flag.Int64("cache-bytes", 0, "response cache size in bytes (0 = 32 MiB default, negative = disable)")
	cacheTTL := flag.Duration("cache-ttl", 0, "response cache entry TTL (0 = 60s default, negative = no age expiry)")
	quotaRPS := flag.Float64("quota-rps", 0, "per-client sustained requests/second for cache-missing requests (0 = no quotas)")
	quotaBurst := flag.Int("quota-burst", 0, "per-client burst depth (0 = 2x quota-rps, min 1)")
	quotaMaxClients := flag.Int("quota-max-clients", 0, "max tracked client buckets (0 = 4096)")
	quiet := flag.Bool("quiet", false, "suppress the per-request access log")
	shards := flag.Int("shards", 1, "partition the table into N shards for scatter-gather execution (1 = unsharded)")
	shardCol := flag.String("shard-col", "", "clustering column for -shards / -replica (default: first of -dims)")
	replicaSpec := flag.String("replica", "", "serve as shard replica h/N of the table (e.g. 0/2), keeping only that slice")
	coordinator := flag.Bool("coordinator", false, "serve as fleet coordinator: load nothing, fan queries out over -peers")
	peers := flag.String("peers", "", "comma-separated replica base URLs for -coordinator (http://host:port,...)")
	degradedApprox := flag.Bool("degraded-approx", false, "coordinator: answer approximate queries from surviving shards when a replica is lost (partial answers, widened intervals)")
	quotaAuthority := flag.String("quota-authority", "", "lease per-client quota tokens from this URL's /v1/quota/lease instead of a local bucket")
	replicaTimeout := flag.Duration("replica-timeout", 5*time.Second, "coordinator: per-attempt timeout for one replica partial")
	replicaRetries := flag.Int("replica-retries", 2, "coordinator: retries per replica on transient failure")
	hedge := flag.Duration("hedge", 0, "coordinator: duplicate a slow partial to the same replica after this delay (0 = off)")
	dialTimeout := flag.Duration("dial-timeout", 30*time.Second, "coordinator: how long to keep retrying the -peers handshake at startup")
	flag.Parse()

	if *coordinator && *replicaSpec != "" {
		fmt.Fprintln(os.Stderr, "-coordinator and -replica are exclusive roles")
		return 1
	}
	if *coordinator && (*load != "" || *csvPath != "" || *demo != "" || *data != "" || *shards > 1 || *save != "" || *agg != "" || *dims != "") {
		fmt.Fprintln(os.Stderr, "-coordinator loads and prepares nothing; it fronts the data and handles the -peers replicas own")
		return 1
	}
	if *replicaSpec != "" && (*data != "" || *shards > 1 || *save != "") {
		fmt.Fprintln(os.Stderr, "-replica needs a resident table to slice; it excludes -data, -shards, and -save")
		return 1
	}

	db := aqppp.NewDB()
	defer db.CloseStores()

	var tbl *engine.Table
	var storedPreps []aqppp.NamedPrep
	if *coordinator {
		// The replicas own the data; the coordinator loads nothing.
	} else if *data != "" {
		if *load != "" || *csvPath != "" || *demo != "" {
			fmt.Fprintln(os.Stderr, "-data replaces -load/-csv/-demo; pick one source")
			return 1
		}
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "-shards does not apply to store-served tables")
			return 1
		}
		paths, err := storePaths(*data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, p := range paths {
			t0 := time.Now()
			preps, err := db.OpenStore(p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "open %s: %v\n", p, err)
				return 1
			}
			storedPreps = append(storedPreps, preps...)
			fmt.Fprintf(os.Stderr, "opened %s: %d prepared handle(s) in %v (no rebuild)\n",
				p, len(preps), time.Since(t0).Round(time.Millisecond))
		}
		if names := db.TableNames(); len(names) == 1 {
			tbl, _ = db.LookupTable(names[0])
		}
	} else {
		var err error
		tbl, err = loadTable(*load, *csvPath, *demo, *rows, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	// prepSeed/prepBudget feed the startup handle; a replica derives
	// them per shard so its build is bit-identical to the matching
	// stratum of an in-process -shards run.
	prepSeed, prepBudget := *seed, *k
	var coord *dist.Coordinator
	var replicaRole *server.ReplicaRole
	switch {
	case *coordinator:
		urls := splitPeers(*peers)
		if len(urls) == 0 {
			fmt.Fprintln(os.Stderr, "-coordinator needs -peers with at least one replica URL")
			return 1
		}
		dcfg := dist.Config{
			Timeout:        *replicaTimeout,
			Retries:        *replicaRetries,
			Hedge:          *hedge,
			DegradedApprox: *degradedApprox,
		}
		fmt.Fprintf(os.Stderr, "dialing %d replica(s) (handshake timeout %v)...\n", len(urls), *dialTimeout)
		dctx, dcancel := context.WithTimeout(context.Background(), *dialTimeout)
		c, err := dist.Dial(dctx, urls, dcfg)
		dcancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		coord = c
		if err := db.RegisterDistributed(coord.SchemaTable(), coord); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "fleet assembled: table %q across %d replicas, %d shared handle(s)\n",
			coord.Table(), len(urls), len(coord.Handles()))
	case *replicaSpec != "":
		index, count, err := parseReplicaSpec(*replicaSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		col := *shardCol
		if col == "" && *dims != "" {
			col = strings.Split(*dims, ",")[0]
		}
		if col == "" {
			fmt.Fprintln(os.Stderr, "-replica needs -shard-col (or -dims to default from)")
			return 1
		}
		layout := shard.Layout{Strategy: shard.ByRange, Column: col, N: count}
		slice, ident, err := dist.SliceTable(tbl, layout, index)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		tbl = slice
		if err := db.Register(tbl); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		prepSeed = shard.DeriveSeed(*seed, index)
		prepBudget = shard.SplitBudget(*k, count)
		replicaRole = &server.ReplicaRole{Table: tbl.Name, Ident: ident}
		fmt.Fprintf(os.Stderr, "serving shard %d/%d of %q on %s: %d rows\n",
			index, count, tbl.Name, col, ident.Rows)
	case *data != "":
		// Tables and handles came from the store; nothing to register here.
	case *shards > 1:
		col := *shardCol
		if col == "" && *dims != "" {
			col = strings.Split(*dims, ",")[0]
		}
		if col == "" {
			fmt.Fprintln(os.Stderr, "-shards needs -shard-col (or -dims to default from)")
			return 1
		}
		fmt.Fprintf(os.Stderr, "partitioning %q into %d shards on %s...\n", tbl.Name, *shards, col)
		if err := db.RegisterSharded(tbl, aqppp.ShardOptions{Column: col, Shards: *shards}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	default:
		if err := db.Register(tbl); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	cfg := server.Config{
		MaxConcurrent:   *maxConc,
		MaxQueue:        *maxQueue,
		DefaultTimeout:  *defTimeout,
		MaxTimeout:      *maxTimeout,
		MaxResamples:    *maxResamples,
		DrainPause:      *drainPause,
		CacheMaxBytes:   *cacheBytes,
		CacheTTL:        *cacheTTL,
		QuotaRate:       *quotaRPS,
		QuotaBurst:      *quotaBurst,
		QuotaMaxClients: *quotaMaxClients,
		Replica:         replicaRole,
		Coordinator:     coord,
	}
	if *quotaAuthority != "" {
		cfg.QuotaLease = dist.NewQuotaLease(*quotaAuthority, 0, nil)
		fmt.Fprintf(os.Stderr, "leasing per-client quota from %s\n", *quotaAuthority)
	}
	if !*quiet {
		cfg.AccessLog = os.Stderr
	}
	srv := server.New(db, cfg)

	if coord != nil {
		for _, h := range coord.Handles() {
			prep, err := db.DistPrepared(coord.Table(), h.Name, h.Confidence, h.SampleRows)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if err := srv.RegisterPrepared(h.Name, prep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "handle %q shared by every replica\n", h.Name)
		}
	}

	for _, np := range storedPreps {
		if err := srv.RegisterPrepared(np.Name, np.Prep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "handle %q restored from store\n", np.Name)
	}

	var startupPrep *aqppp.Prepared
	if *agg != "" && *dims != "" {
		if tbl == nil {
			fmt.Fprintln(os.Stderr, "-agg/-dims need a single table; the -data directory holds several")
			return 1
		}
		fmt.Fprintf(os.Stderr, "preparing handle %q for [%s; %s] (rate %.3g, k %d)...\n",
			*handle, *agg, *dims, *rate, *k)
		t0 := time.Now()
		prep, err := db.Prepare(aqppp.PrepareOptions{
			Table: tbl.Name, Aggregate: *agg,
			Dimensions: strings.Split(*dims, ","),
			SampleRate: *rate, CellBudget: prepBudget, Seed: prepSeed,
			WithMinMax: *withMinMax,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := srv.RegisterPrepared(*handle, prep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		startupPrep = prep
		fmt.Fprintf(os.Stderr, "handle %q ready in %v\n", *handle, time.Since(t0).Round(time.Millisecond))
	}

	if *save != "" {
		if *data != "" {
			fmt.Fprintln(os.Stderr, "-save needs a resident table; -data tables are already persisted")
			return 1
		}
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "-save does not support sharded tables")
			return 1
		}
		t0 := time.Now()
		var named []aqppp.NamedPrep
		if startupPrep != nil {
			named = append(named, aqppp.NamedPrep{Name: *handle, Prep: startupPrep})
		}
		if err := db.SaveStore(*save, tbl.Name, named...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "saved store %s in %v\n", *save, time.Since(t0).Round(time.Millisecond))
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The smoke test (and port-0 users generally) parse this line for the
	// bound address; keep it on stdout and keep its shape stable.
	fmt.Printf("listening on %s\n", l.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "%v: draining (timeout %v)\n", sig, *drainTimeout)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "forced shutdown: %v\n", err)
		<-serveErr
		return 1
	}
	if err := <-serveErr; err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "drained cleanly")
	return 0
}

// parseReplicaSpec parses -replica's "h/N" shard assignment.
func parseReplicaSpec(spec string) (index, count int, err error) {
	n, err := fmt.Sscanf(spec, "%d/%d", &index, &count)
	if err != nil || n != 2 || count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("-replica wants h/N with 0 <= h < N, got %q", spec)
	}
	return index, count, nil
}

// splitPeers parses -peers' comma-separated URL list.
func splitPeers(peers string) []string {
	var urls []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			urls = append(urls, p)
		}
	}
	return urls
}

// storePaths resolves -data: a .aqps file is served as is; a directory
// serves every *.aqps inside it, in name order.
func storePaths(data string) ([]string, error) {
	fi, err := os.Stat(data)
	if err != nil {
		return nil, err
	}
	if !fi.IsDir() {
		return []string{data}, nil
	}
	matches, err := filepath.Glob(filepath.Join(data, "*.aqps"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no .aqps store containers in %s", data)
	}
	sort.Strings(matches)
	return matches, nil
}

func loadTable(load, csvPath, demo string, rows int, seed uint64) (*engine.Table, error) {
	switch {
	case load != "":
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return engine.ReadBinary(f)
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		base := csvPath
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		base = strings.TrimSuffix(base, ".csv")
		return engine.ReadCSV(base, f)
	case demo == "tpcd":
		return dataset.TPCDSkew(dataset.TPCDConfig{Rows: rows, Seed: seed}), nil
	case demo == "bigbench":
		return dataset.BigBenchUserVisits(dataset.BigBenchConfig{Rows: rows, Seed: seed}), nil
	case demo == "tlctrip":
		return dataset.TLCTrip(dataset.TLCTripConfig{Rows: rows, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("need one of -load, -csv, or -demo")
	}
}
