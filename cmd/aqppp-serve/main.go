// Command aqppp-serve exposes one table behind the HTTP query API in
// internal/server: exact SQL over POST /v1/query, AQP++ approximate
// answers over POST /v1/approx, handle management over /v1/prepare and
// DELETE /v1/prepared/{name}, plus /healthz, /readyz, /statusz, and a
// Prometheus /metrics endpoint. Responses are cached (tune with
// -cache-bytes/-cache-ttl) and per-client quotas are available with
// -quota-rps.
//
// Usage:
//
//	aqppp-serve -demo tpcd -rows 200000 -agg l_extendedprice -dims l_orderkey,l_suppkey
//	aqppp-serve -load lineitem.tbl -addr :8080
//	aqppp-serve -data lineitem.aqps
//
// With -agg and -dims the server pre-builds one prepared handle (named
// by -prepare, default "default") before accepting traffic; otherwise
// handles are built on demand through POST /v1/prepare. Add -save to
// persist the table and startup handle as a store container once the
// build finishes; a later -data run (pointing at that file, or at a
// directory of .aqps files) restores tables and handles at startup
// without rebuilding anything — data blocks fault in lazily as queries
// touch them.
//
// SIGTERM or SIGINT starts a graceful drain: /readyz flips to 503,
// in-flight queries finish within -drain-timeout, stragglers are
// hard-canceled. Exit status 0 means a clean drain, 1 a forced one.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"aqppp"
	"aqppp/internal/dataset"
	"aqppp/internal/engine"
	"aqppp/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	load := flag.String("load", "", "binary table file to load (from aqppp-gen)")
	csvPath := flag.String("csv", "", "CSV table file to load")
	data := flag.String("data", "", "store container (.aqps file or directory of them) to serve from disk, with persisted prepared handles")
	save := flag.String("save", "", "persist the table and startup handle to this store container after preparing")
	demo := flag.String("demo", "", "generate a demo dataset: tpcd | bigbench | tlctrip")
	rows := flag.Int("rows", 200000, "rows for -demo")
	seed := flag.Uint64("seed", 42, "random seed")
	agg := flag.String("agg", "", "aggregation attribute for the startup prepared handle")
	dims := flag.String("dims", "", "comma-separated condition attributes for the startup handle")
	rate := flag.Float64("sample-rate", 0.01, "uniform sample rate for the startup handle")
	k := flag.Int("k", 5000, "BP-Cube cell budget for the startup handle")
	withMinMax := flag.Bool("minmax", false, "also build exact MIN/MAX indexes on the startup handle")
	handle := flag.String("prepare", "default", "name of the startup prepared handle")
	maxConc := flag.Int("max-concurrent", 0, "max queries executing at once (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "max queries waiting for a slot (0 = 4x max-concurrent)")
	defTimeout := flag.Duration("default-timeout", 30*time.Second, "per-request deadline when the request has no timeout_ms (0 = unlimited)")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on any request's timeout (0 = no cap)")
	maxResamples := flag.Int("max-resamples", 100000, "cap on bootstrap resamples per request (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a shutdown waits for in-flight queries")
	drainPause := flag.Duration("drain-pause", 0, "keep accepting this long after /readyz flips to 503")
	cacheBytes := flag.Int64("cache-bytes", 0, "response cache size in bytes (0 = 32 MiB default, negative = disable)")
	cacheTTL := flag.Duration("cache-ttl", 0, "response cache entry TTL (0 = 60s default, negative = no age expiry)")
	quotaRPS := flag.Float64("quota-rps", 0, "per-client sustained requests/second for cache-missing requests (0 = no quotas)")
	quotaBurst := flag.Int("quota-burst", 0, "per-client burst depth (0 = 2x quota-rps, min 1)")
	quotaMaxClients := flag.Int("quota-max-clients", 0, "max tracked client buckets (0 = 4096)")
	quiet := flag.Bool("quiet", false, "suppress the per-request access log")
	shards := flag.Int("shards", 1, "partition the table into N shards for scatter-gather execution (1 = unsharded)")
	shardCol := flag.String("shard-col", "", "clustering column for -shards (default: first of -dims)")
	flag.Parse()

	db := aqppp.NewDB()
	defer db.CloseStores()

	var tbl *engine.Table
	var storedPreps []aqppp.NamedPrep
	if *data != "" {
		if *load != "" || *csvPath != "" || *demo != "" {
			fmt.Fprintln(os.Stderr, "-data replaces -load/-csv/-demo; pick one source")
			return 1
		}
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "-shards does not apply to store-served tables")
			return 1
		}
		paths, err := storePaths(*data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, p := range paths {
			t0 := time.Now()
			preps, err := db.OpenStore(p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "open %s: %v\n", p, err)
				return 1
			}
			storedPreps = append(storedPreps, preps...)
			fmt.Fprintf(os.Stderr, "opened %s: %d prepared handle(s) in %v (no rebuild)\n",
				p, len(preps), time.Since(t0).Round(time.Millisecond))
		}
		if names := db.TableNames(); len(names) == 1 {
			tbl, _ = db.LookupTable(names[0])
		}
	} else {
		var err error
		tbl, err = loadTable(*load, *csvPath, *demo, *rows, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *data != "" {
		// Tables and handles came from the store; nothing to register here.
	} else if *shards > 1 {
		col := *shardCol
		if col == "" && *dims != "" {
			col = strings.Split(*dims, ",")[0]
		}
		if col == "" {
			fmt.Fprintln(os.Stderr, "-shards needs -shard-col (or -dims to default from)")
			return 1
		}
		fmt.Fprintf(os.Stderr, "partitioning %q into %d shards on %s...\n", tbl.Name, *shards, col)
		if err := db.RegisterSharded(tbl, aqppp.ShardOptions{Column: col, Shards: *shards}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else if err := db.Register(tbl); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	cfg := server.Config{
		MaxConcurrent:   *maxConc,
		MaxQueue:        *maxQueue,
		DefaultTimeout:  *defTimeout,
		MaxTimeout:      *maxTimeout,
		MaxResamples:    *maxResamples,
		DrainPause:      *drainPause,
		CacheMaxBytes:   *cacheBytes,
		CacheTTL:        *cacheTTL,
		QuotaRate:       *quotaRPS,
		QuotaBurst:      *quotaBurst,
		QuotaMaxClients: *quotaMaxClients,
	}
	if !*quiet {
		cfg.AccessLog = os.Stderr
	}
	srv := server.New(db, cfg)

	for _, np := range storedPreps {
		if err := srv.RegisterPrepared(np.Name, np.Prep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "handle %q restored from store\n", np.Name)
	}

	var startupPrep *aqppp.Prepared
	if *agg != "" && *dims != "" {
		if tbl == nil {
			fmt.Fprintln(os.Stderr, "-agg/-dims need a single table; the -data directory holds several")
			return 1
		}
		fmt.Fprintf(os.Stderr, "preparing handle %q for [%s; %s] (rate %.3g, k %d)...\n",
			*handle, *agg, *dims, *rate, *k)
		t0 := time.Now()
		prep, err := db.Prepare(aqppp.PrepareOptions{
			Table: tbl.Name, Aggregate: *agg,
			Dimensions: strings.Split(*dims, ","),
			SampleRate: *rate, CellBudget: *k, Seed: *seed,
			WithMinMax: *withMinMax,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := srv.RegisterPrepared(*handle, prep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		startupPrep = prep
		fmt.Fprintf(os.Stderr, "handle %q ready in %v\n", *handle, time.Since(t0).Round(time.Millisecond))
	}

	if *save != "" {
		if *data != "" {
			fmt.Fprintln(os.Stderr, "-save needs a resident table; -data tables are already persisted")
			return 1
		}
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "-save does not support sharded tables")
			return 1
		}
		t0 := time.Now()
		var named []aqppp.NamedPrep
		if startupPrep != nil {
			named = append(named, aqppp.NamedPrep{Name: *handle, Prep: startupPrep})
		}
		if err := db.SaveStore(*save, tbl.Name, named...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "saved store %s in %v\n", *save, time.Since(t0).Round(time.Millisecond))
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The smoke test (and port-0 users generally) parse this line for the
	// bound address; keep it on stdout and keep its shape stable.
	fmt.Printf("listening on %s\n", l.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "%v: draining (timeout %v)\n", sig, *drainTimeout)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "forced shutdown: %v\n", err)
		<-serveErr
		return 1
	}
	if err := <-serveErr; err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "drained cleanly")
	return 0
}

// storePaths resolves -data: a .aqps file is served as is; a directory
// serves every *.aqps inside it, in name order.
func storePaths(data string) ([]string, error) {
	fi, err := os.Stat(data)
	if err != nil {
		return nil, err
	}
	if !fi.IsDir() {
		return []string{data}, nil
	}
	matches, err := filepath.Glob(filepath.Join(data, "*.aqps"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no .aqps store containers in %s", data)
	}
	sort.Strings(matches)
	return matches, nil
}

func loadTable(load, csvPath, demo string, rows int, seed uint64) (*engine.Table, error) {
	switch {
	case load != "":
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return engine.ReadBinary(f)
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		base := csvPath
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		base = strings.TrimSuffix(base, ".csv")
		return engine.ReadCSV(base, f)
	case demo == "tpcd":
		return dataset.TPCDSkew(dataset.TPCDConfig{Rows: rows, Seed: seed}), nil
	case demo == "bigbench":
		return dataset.BigBenchUserVisits(dataset.BigBenchConfig{Rows: rows, Seed: seed}), nil
	case demo == "tlctrip":
		return dataset.TLCTrip(dataset.TLCTripConfig{Rows: rows, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("need one of -load, -csv, or -demo")
	}
}
