package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// The smoke server's traffic shape, named so the assertions below can
// reason about them instead of repeating magic numbers: smokeBurst
// concurrent heavy queries against a smokeConcurrent-slot gate with a
// smokeQueue-seat queue must shed, and a single client gets
// smokeQuotaBurst immediate cache-missing requests before its bucket
// runs dry (refill is smokeQuotaRPS, slow enough that a sequential
// loop cannot sneak extra tokens).
const (
	smokeConcurrent = 1
	smokeQueue      = 1
	smokeBurst      = 8
	smokeQuotaRPS   = 0.2
	smokeQuotaBurst = 2
)

// TestServeBinarySmoke builds the real binary and exercises the serving
// path end to end: startup, exact + approx answers, a cached repeat, a
// shed burst against the capacity gate (429 "overloaded"), a per-client
// quota exhaustion (429 "quota-exceeded" — a different failure than
// capacity), a /metrics scrape, and a clean SIGTERM drain (exit 0). It
// is the scripted smoke in scripts/check.sh; set AQPPP_SERVER_SMOKE=1
// to run it.
func TestServeBinarySmoke(t *testing.T) {
	if os.Getenv("AQPPP_SERVER_SMOKE") == "" {
		t.Skip("set AQPPP_SERVER_SMOKE=1 to run the binary smoke test")
	}

	bin := filepath.Join(t.TempDir(), "aqppp-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// -shards 2 partitions the demo table (range layout on l_orderkey,
	// the first -dims column), so every query below — exact, approx,
	// bootstrap burst — exercises the scatter-gather path end to end.
	cmd := exec.Command(bin,
		"-demo", "tpcd", "-rows", "5000", "-seed", "9",
		"-addr", "127.0.0.1:0", "-shards", "2",
		"-agg", "l_extendedprice", "-dims", "l_orderkey,l_suppkey",
		"-sample-rate", "0.2", "-k", "500",
		"-max-concurrent", fmt.Sprint(smokeConcurrent),
		"-max-queue", fmt.Sprint(smokeQueue),
		"-quota-rps", fmt.Sprint(smokeQuotaRPS),
		"-quota-burst", fmt.Sprint(smokeQuotaBurst),
		"-max-resamples", "0",
		"-drain-timeout", "10s", "-quiet",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}()

	// The first stdout line announces the bound address.
	var addr string
	lines := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	got := make(chan string, 1)
	go func() {
		for lines.Scan() {
			line := lines.Text()
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				got <- rest
				return
			}
		}
		got <- ""
	}()
	select {
	case addr = <-got:
	case <-deadline:
		t.Fatal("server never announced its address")
	}
	if addr == "" {
		t.Fatal("no listening line on stdout")
	}
	base := "http://" + addr

	// post sends one JSON request as the named client (the X-Client-Id
	// header is the quota key) and returns status, body, and headers.
	post := func(client, path string, body any) (int, map[string]any, http.Header) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-Id", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out, resp.Header
	}
	kindOf := func(body map[string]any) string {
		e, _ := body["error"].(map[string]any)
		k, _ := e["kind"].(string)
		return k
	}

	type queryReq struct {
		SQL       string `json:"sql,omitempty"`
		Prepared  string `json:"prepared,omitempty"`
		TimeoutMS int64  `json:"timeout_ms,omitempty"`
		Resamples int    `json:"resamples,omitempty"`
	}

	stmt := "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 100 AND 4000"
	if code, body, _ := post("setup-exact", "/v1/query", queryReq{SQL: stmt}); code != http.StatusOK {
		t.Fatalf("exact query = %d (%v)", code, body)
	}
	code, body, _ := post("setup-approx", "/v1/approx", queryReq{Prepared: "default", SQL: stmt})
	if code != http.StatusOK {
		t.Fatalf("approx query = %d (%v)", code, body)
	}
	if _, ok := body["half_width"]; !ok {
		t.Errorf("approx body missing half_width: %v", body)
	}

	// A repeat of the exact statement — from a different client — is a
	// cache hit: marked in the body and header, and free of quota.
	code, body, hdr := post("repeat-reader", "/v1/query", queryReq{SQL: stmt})
	if code != http.StatusOK {
		t.Fatalf("cached repeat = %d (%v)", code, body)
	}
	if body["cached"] != true || hdr.Get("X-Cache") != "hit" {
		t.Errorf("repeat not served from cache: cached=%v X-Cache=%q", body["cached"], hdr.Get("X-Cache"))
	}

	// Capacity burst: smokeBurst concurrent heavy bootstrap queries,
	// each a distinct statement from a distinct client so neither the
	// cache nor any single quota bucket can absorb the load — only the
	// smokeConcurrent-slot gate sheds, and it sheds "overloaded".
	var mu sync.Mutex
	counts := map[int]int{}
	kinds := map[string]int{}
	var wg sync.WaitGroup
	for i := 0; i < smokeBurst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			burstStmt := fmt.Sprintf(
				"SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN %d AND 4000", 100+i)
			code, body, _ := post(fmt.Sprintf("burst-%d", i), "/v1/approx", queryReq{
				Prepared: "default", SQL: burstStmt, Resamples: 2000, TimeoutMS: 30000,
			})
			mu.Lock()
			counts[code]++
			if code == http.StatusTooManyRequests {
				kinds[kindOf(body)]++
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if counts[http.StatusTooManyRequests] == 0 {
		t.Errorf("burst of %d against capacity %d+%d shed nothing: %v",
			smokeBurst, smokeConcurrent, smokeQueue, counts)
	}
	if counts[http.StatusOK] == 0 {
		t.Errorf("burst of %d all failed: %v", smokeBurst, counts)
	}
	for code := range counts {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Errorf("unexpected status %d in burst: %v", code, counts)
		}
	}
	if kinds["overloaded"] == 0 || kinds["quota-exceeded"] != 0 {
		t.Errorf("capacity burst shed kinds = %v, want only overloaded", kinds)
	}

	// Quota exhaustion: one hog sends sequential distinct cheap queries,
	// so the gate (which only sheds under concurrency) never fires — the
	// 429s past the burst allowance are the quota's, and they say so.
	quotaSheds := 0
	for i := 0; i < smokeQuotaBurst+3; i++ {
		hogStmt := fmt.Sprintf("SELECT COUNT(*) FROM lineitem WHERE l_orderkey BETWEEN %d AND 500", i+1)
		code, body, hdr := post("hog", "/v1/query", queryReq{SQL: hogStmt})
		switch code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			quotaSheds++
			if k := kindOf(body); k != "quota-exceeded" {
				t.Errorf("hog shed kind = %q, want quota-exceeded (distinct from capacity)", k)
			}
			if hdr.Get("Retry-After") == "" {
				t.Error("quota shed missing Retry-After")
			}
		default:
			t.Errorf("hog request %d: status %d (%v)", i, code, body)
		}
	}
	if quotaSheds == 0 {
		t.Errorf("hog was never quota-shed after its burst of %d", smokeQuotaBurst)
	}

	// The scrape surface is up and carries the counters just exercised.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mdata, err := io.ReadAll(mresp.Body)
	_ = mresp.Body.Close()
	if err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d err %v", mresp.StatusCode, err)
	}
	metrics := string(mdata)
	for _, series := range []string{
		"aqppp_cache_hits_total", "aqppp_quota_shed_total",
		"aqppp_gate_shed_total", "aqppp_http_request_duration_seconds_bucket",
		"aqppp_shard_rows", "aqppp_shards_pruned_total",
		"aqppp_shard_scan_duration_seconds_bucket",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	// SIGTERM drains cleanly: exit status 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("drain exit: %v (want status 0)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	fmt.Fprintln(os.Stderr, "smoke: burst outcome", counts, "quota sheds", quotaSheds)
}

// syncBuffer is a bytes.Buffer safe for the write-from-copier /
// read-from-test pattern in the restart smoke.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeStoreRestartSmoke is the persistence leg of the binary smoke:
// a first server builds a handle and -saves the store container, a second
// server restarts from -data alone, and the answers must line up — the
// exact SUM bit-identically, and the approx point estimate bit-identically
// too, because the estimate is pre(D) + (q̂(S) − prê(S)) over the persisted
// sample and cube (only the bootstrap CI is randomized). The restart must
// be a metadata load: no rebuild, and store cache metrics visible.
func TestServeStoreRestartSmoke(t *testing.T) {
	if os.Getenv("AQPPP_SERVER_SMOKE") == "" {
		t.Skip("set AQPPP_SERVER_SMOKE=1 to run the binary smoke test")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "aqppp-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	storePath := filepath.Join(dir, "lineitem.aqps")

	// start launches the binary with args, waits for the address line on
	// stdout, and returns the process + base URL + captured stderr. The
	// buffer is locked because exec's pipe copier writes it from its own
	// goroutine while the test reads.
	start := func(args ...string) (*exec.Cmd, string, *syncBuffer) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		errBuf := &syncBuffer{}
		cmd.Stderr = io.MultiWriter(os.Stderr, errBuf)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		got := make(chan string, 1)
		go func() {
			lines := bufio.NewScanner(stdout)
			for lines.Scan() {
				if rest, ok := strings.CutPrefix(lines.Text(), "listening on "); ok {
					got <- rest
					return
				}
			}
			got <- ""
		}()
		var addr string
		select {
		case addr = <-got:
		case <-time.After(60 * time.Second):
			_ = cmd.Process.Kill()
			t.Fatal("server never announced its address")
		}
		if addr == "" {
			_ = cmd.Process.Kill()
			t.Fatalf("no listening line; stderr:\n%s", errBuf.String())
		}
		return cmd, "http://" + addr, errBuf
	}
	stop := func(cmd *exec.Cmd) {
		t.Helper()
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("drain exit: %v (want status 0)", err)
			}
		case <-time.After(30 * time.Second):
			_ = cmd.Process.Kill()
			t.Fatal("server did not exit after SIGTERM")
		}
	}
	post := func(base, path string, body any) (int, map[string]any) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	type queryReq struct {
		SQL      string `json:"sql,omitempty"`
		Prepared string `json:"prepared,omitempty"`
	}
	exactStmt := "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 100 AND 4000"

	// Leg 1: build, answer, save, drain.
	cmd1, base1, _ := start(
		"-demo", "tpcd", "-rows", "5000", "-seed", "9",
		"-addr", "127.0.0.1:0",
		"-agg", "l_extendedprice", "-dims", "l_orderkey,l_suppkey",
		"-sample-rate", "0.2", "-k", "500",
		"-save", storePath,
		"-drain-timeout", "10s", "-quiet",
	)
	code, body := post(base1, "/v1/query", queryReq{SQL: exactStmt})
	if code != http.StatusOK {
		t.Fatalf("exact query = %d (%v)", code, body)
	}
	exactBefore, ok := body["value"].(float64)
	if !ok {
		t.Fatalf("exact body missing value: %v", body)
	}
	code, body = post(base1, "/v1/approx", queryReq{Prepared: "default", SQL: exactStmt})
	if code != http.StatusOK {
		t.Fatalf("approx query = %d (%v)", code, body)
	}
	approxBefore, ok := body["value"].(float64)
	if !ok {
		t.Fatalf("approx body missing value: %v", body)
	}
	stop(cmd1)
	if _, err := os.Stat(storePath); err != nil {
		t.Fatalf("store container not written: %v", err)
	}

	// Leg 2: restart from the container alone. The stderr log must show
	// the handle restored (not rebuilt), and both answers must match.
	cmd2, base2, errBuf := start(
		"-data", storePath, "-addr", "127.0.0.1:0",
		"-drain-timeout", "10s", "-quiet",
	)
	defer func() {
		if cmd2.Process != nil {
			_ = cmd2.Process.Kill()
		}
	}()
	code, body = post(base2, "/v1/query", queryReq{SQL: exactStmt})
	if code != http.StatusOK {
		t.Fatalf("restarted exact query = %d (%v)", code, body)
	}
	if got := body["value"].(float64); got != exactBefore {
		t.Errorf("exact answer drifted across restart: %v != %v", got, exactBefore)
	}
	code, body = post(base2, "/v1/approx", queryReq{Prepared: "default", SQL: exactStmt})
	if code != http.StatusOK {
		t.Fatalf("restarted approx query = %d (%v)", code, body)
	}
	if got := body["value"].(float64); got != approxBefore {
		t.Errorf("approx estimate drifted across restart: %v != %v", got, approxBefore)
	}
	if hw, ok := body["half_width"].(float64); !ok || !(hw > 0) {
		t.Errorf("restarted approx missing positive half_width: %v", body["half_width"])
	}

	// The restart log proves no rebuild happened and the handle survived.
	logs := errBuf.String()
	if !strings.Contains(logs, "no rebuild") {
		t.Errorf("restart log missing open-store line:\n%s", logs)
	}
	if !strings.Contains(logs, `handle "default" restored from store`) {
		t.Errorf("restart log missing restored-handle line:\n%s", logs)
	}
	if strings.Contains(logs, "preparing handle") {
		t.Errorf("restart rebuilt a handle it should have restored:\n%s", logs)
	}

	// Store metrics are exposed once a store-backed table is serving.
	mresp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mdata, err := io.ReadAll(mresp.Body)
	_ = mresp.Body.Close()
	if err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d err %v", mresp.StatusCode, err)
	}
	for _, series := range []string{
		"aqppp_store_cache_hits_total", "aqppp_store_cache_misses_total",
		"aqppp_store_cache_resident_bytes", "aqppp_store_file_bytes",
	} {
		if !strings.Contains(string(mdata), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	stop(cmd2)
}

// TestServeContractSmoke is the error-contract leg of the binary smoke:
// a feasible contract must answer 200 inside its own stated bound, an
// impossible one must be rejected 422 with the tightest achievable
// error in the body (no scan work spent), /v1/progressive must stream
// well-formed SSE rounds ending in a terminal "done" event, and a
// client that walks away mid-stream must surface as a "canceled" error
// in /metrics alongside the contract counters.
func TestServeContractSmoke(t *testing.T) {
	if os.Getenv("AQPPP_SERVER_SMOKE") == "" {
		t.Skip("set AQPPP_SERVER_SMOKE=1 to run the binary smoke test")
	}

	bin := filepath.Join(t.TempDir(), "aqppp-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin,
		"-demo", "tpcd", "-rows", "5000", "-seed", "9",
		"-addr", "127.0.0.1:0",
		"-agg", "l_extendedprice", "-dims", "l_orderkey,l_suppkey",
		"-sample-rate", "0.2", "-k", "500",
		"-drain-timeout", "10s", "-quiet",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}()
	got := make(chan string, 1)
	go func() {
		lines := bufio.NewScanner(stdout)
		for lines.Scan() {
			if rest, ok := strings.CutPrefix(lines.Text(), "listening on "); ok {
				got <- rest
				return
			}
		}
		got <- ""
	}()
	var addr string
	select {
	case addr = <-got:
	case <-time.After(30 * time.Second):
		t.Fatal("server never announced its address")
	}
	if addr == "" {
		t.Fatal("no listening line on stdout")
	}
	base := "http://" + addr

	post := func(path string, body any) (int, map[string]any) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	type contractReq struct {
		SQL         string  `json:"sql"`
		Prepared    string  `json:"prepared"`
		MaxRelError float64 `json:"max_rel_error,omitempty"`
		StepRows    int     `json:"step_rows,omitempty"`
		MaxRounds   int     `json:"max_rounds,omitempty"`
	}
	stmt := "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 100 AND 4000"

	// A feasible contract answers within its own bound. COUNT over the
	// Zipf head (keys 1-10 hold ~94% of the rows) is the stable query at
	// this sample rate; the heavy-tailed SUM over the sparse key tail is
	// what the infeasible leg below rejects.
	countStmt := "SELECT COUNT(*) FROM lineitem WHERE l_orderkey BETWEEN 1 AND 10"
	code, body := post("/v1/contract", contractReq{Prepared: "default", SQL: countStmt, MaxRelError: 0.2})
	if code != http.StatusOK {
		t.Fatalf("contract = %d (%v)", code, body)
	}
	val, _ := body["value"].(float64)
	hw, _ := body["half_width"].(float64)
	if val == 0 || hw > 0.2*val {
		t.Errorf("contract answer outside its bound: %v ± %v", val, hw)
	}
	if strat, _ := body["strategy"].(string); strat == "" {
		t.Errorf("contract answer carries no strategy: %v", body)
	}

	// An impossible bound is rejected 422 with retry guidance.
	code, body = post("/v1/contract", contractReq{Prepared: "default", SQL: stmt, MaxRelError: 1e-10})
	if code != 422 {
		t.Fatalf("impossible contract = %d (%v), want 422", code, body)
	}
	e, _ := body["error"].(map[string]any)
	if k, _ := e["kind"].(string); k != "contract-infeasible" {
		t.Errorf("rejection kind = %q, want contract-infeasible", k)
	}
	ta, _ := e["tightest_achievable"].(map[string]any)
	if abs, _ := ta["abs"].(float64); abs <= 0 {
		t.Errorf("422 body missing positive tightest_achievable.abs: %v", body)
	}

	// The progressive stream frames as SSE and terminates with "done".
	raw, err := json.Marshal(contractReq{Prepared: "default", SQL: stmt, MaxRelError: 0.2, StepRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/progressive", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		_ = resp.Body.Close()
		t.Fatalf("progressive = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("progressive Content-Type = %q, want text/event-stream", ct)
	}
	stream, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(stream)
	if !strings.Contains(text, "event: round\n") {
		t.Errorf("stream has no round events:\n%s", text)
	}
	// The final event must be a well-formed done carrying a stop reason.
	idx := strings.LastIndex(text, "event: done\ndata: ")
	if idx < 0 {
		t.Fatalf("stream has no done event:\n%s", text)
	}
	doneLine := text[idx+len("event: done\ndata: "):]
	doneLine = strings.TrimRight(doneLine, "\n")
	var done map[string]any
	if err := json.Unmarshal([]byte(doneLine), &done); err != nil {
		t.Fatalf("done event is not JSON (%q): %v", doneLine, err)
	}
	if r, _ := done["reason"].(string); r == "" {
		t.Errorf("done event missing reason: %v", done)
	}
	if _, ok := done["value"].(float64); !ok {
		t.Errorf("done event missing value: %v", done)
	}

	// A client that disconnects mid-stream must be counted as canceled.
	raw, err = json.Marshal(contractReq{Prepared: "default", SQL: stmt, StepRows: 64, MaxRounds: 1000})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/progressive", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 64)
	if _, err := resp.Body.Read(one); err != nil {
		t.Fatalf("never saw the first streamed byte: %v", err)
	}
	_ = resp.Body.Close() // walk away mid-stream

	deadline := time.Now().Add(10 * time.Second)
	for {
		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		mdata, err := io.ReadAll(mresp.Body)
		_ = mresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		metrics := string(mdata)
		if strings.Contains(metrics, `aqppp_errors_total{kind="canceled"}`) {
			for _, series := range []string{
				"aqppp_contract_met_total", "aqppp_contract_infeasible_total",
				"aqppp_progressive_round_duration_seconds_bucket",
			} {
				if !strings.Contains(metrics, series) {
					t.Errorf("/metrics missing %s", series)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("mid-stream disconnect never surfaced as canceled in /metrics")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Clean SIGTERM drain.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- cmd.Wait() }()
	select {
	case err := <-done2:
		if err != nil {
			t.Errorf("drain exit: %v (want status 0)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}

// TestServeFleetSmoke is the multi-process distributed smoke: two real
// replica processes each owning one range slice of the demo table, a
// coordinator process that dials them and fronts /v1/query, and a
// single -shards 2 process as the oracle. The coordinator's exact and
// approximate answers must be bit-identical to the oracle's (the
// replicas derive the same per-shard prepare seeds and budgets the
// in-process path uses), /statusz must render the fleet, and killing a
// replica must turn full-range queries into typed 503 "unavailable"
// sheds — never silent partial sums. Gated like the other binary
// smokes behind AQPPP_SERVER_SMOKE=1.
func TestServeFleetSmoke(t *testing.T) {
	if os.Getenv("AQPPP_SERVER_SMOKE") == "" {
		t.Skip("set AQPPP_SERVER_SMOKE=1 to run the binary smoke test")
	}

	bin := filepath.Join(t.TempDir(), "aqppp-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	start := func(args ...string) (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			if cmd.Process != nil {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}
		})
		got := make(chan string, 1)
		go func() {
			lines := bufio.NewScanner(stdout)
			for lines.Scan() {
				if rest, ok := strings.CutPrefix(lines.Text(), "listening on "); ok {
					got <- rest
					return
				}
			}
			got <- ""
		}()
		var addr string
		select {
		case addr = <-got:
		case <-time.After(60 * time.Second):
			t.Fatal("server never announced its address")
		}
		if addr == "" {
			t.Fatal("no listening line on stdout")
		}
		return cmd, "http://" + addr
	}
	stop := func(cmd *exec.Cmd, role string) {
		t.Helper()
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s drain exit: %v (want status 0)", role, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not exit after SIGTERM", role)
		}
	}
	post := func(base, path string, body any) (int, map[string]any, http.Header) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out, resp.Header
	}

	// Every data-owning process loads the identical deterministic demo
	// table; the replicas differ only in which slice they keep.
	dataArgs := []string{
		"-demo", "tpcd", "-rows", "5000", "-seed", "9",
		"-agg", "l_extendedprice", "-dims", "l_orderkey,l_suppkey",
		"-sample-rate", "0.2", "-k", "500",
		"-addr", "127.0.0.1:0", "-drain-timeout", "10s", "-quiet",
	}
	rep0, base0 := start(append([]string{"-replica", "0/2"}, dataArgs...)...)
	rep1, base1 := start(append([]string{"-replica", "1/2"}, dataArgs...)...)
	oracleCmd, oracleBase := start(append([]string{"-shards", "2"}, dataArgs...)...)
	coordCmd, coordBase := start(
		"-coordinator", "-peers", base0+","+base1,
		"-replica-timeout", "10s", "-replica-retries", "1",
		"-addr", "127.0.0.1:0", "-drain-timeout", "10s", "-quiet",
	)

	type queryReq struct {
		SQL      string `json:"sql,omitempty"`
		Prepared string `json:"prepared,omitempty"`
	}
	valueOf := func(body map[string]any, key string) float64 {
		t.Helper()
		v, ok := body[key].(float64)
		if !ok {
			t.Fatalf("body missing %s: %v", key, body)
		}
		return v
	}
	kindOf := func(body map[string]any) string {
		e, _ := body["error"].(map[string]any)
		k, _ := e["kind"].(string)
		return k
	}

	// Exact and approximate answers over the network must equal the
	// in-process sharded oracle's bit for bit.
	for _, stmt := range []string{
		"SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 100 AND 4000",
		"SELECT COUNT(*) FROM lineitem WHERE l_orderkey BETWEEN 700 AND 2600",
		"SELECT AVG(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 40 AND 4900",
	} {
		code, want, _ := post(oracleBase, "/v1/query", queryReq{SQL: stmt})
		if code != http.StatusOK {
			t.Fatalf("oracle exact %q = %d (%v)", stmt, code, want)
		}
		code, got, _ := post(coordBase, "/v1/query", queryReq{SQL: stmt})
		if code != http.StatusOK {
			t.Fatalf("coordinator exact %q = %d (%v)", stmt, code, got)
		}
		if gv, wv := valueOf(got, "value"), valueOf(want, "value"); gv != wv {
			t.Errorf("exact %q: coordinator %v != oracle %v", stmt, gv, wv)
		}
	}
	approxStmt := "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 100 AND 4000"
	code, want, _ := post(oracleBase, "/v1/approx", queryReq{Prepared: "default", SQL: approxStmt})
	if code != http.StatusOK {
		t.Fatalf("oracle approx = %d (%v)", code, want)
	}
	code, got, _ := post(coordBase, "/v1/approx", queryReq{Prepared: "default", SQL: approxStmt})
	if code != http.StatusOK {
		t.Fatalf("coordinator approx = %d (%v)", code, got)
	}
	if gv, wv := valueOf(got, "value"), valueOf(want, "value"); gv != wv {
		t.Errorf("approx value: coordinator %v != oracle %v", gv, wv)
	}
	if gh, wh := valueOf(got, "half_width"), valueOf(want, "half_width"); gh != wh {
		t.Errorf("approx half_width: coordinator %v != oracle %v", gh, wh)
	}

	// The coordinator's /statusz renders fleet topology.
	sresp, err := http.Get(coordBase + "/statusz")
	if err != nil {
		t.Fatalf("GET /statusz: %v", err)
	}
	sdata, err := io.ReadAll(sresp.Body)
	_ = sresp.Body.Close()
	if err != nil || sresp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz status %d err %v", sresp.StatusCode, err)
	}
	for _, needle := range []string{`"dist"`, `"topology_generation"`, `"replicas"`} {
		if !strings.Contains(string(sdata), needle) {
			t.Errorf("/statusz missing %s:\n%s", needle, sdata)
		}
	}

	// Kill one replica outright (no drain). A fresh full-range query
	// needs its stratum, so the coordinator must shed 503 "unavailable"
	// rather than return a sum over half the table.
	if err := rep1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = rep1.Wait()
	lossStmt := "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 1 AND 5000"
	code, body, _ := post(coordBase, "/v1/query", queryReq{SQL: lossStmt})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("exact after replica kill = %d (%v), want 503", code, body)
	}
	if k := kindOf(body); k != "unavailable" {
		t.Errorf("replica-loss kind = %q, want unavailable", k)
	}

	stop(coordCmd, "coordinator")
	stop(rep0, "replica 0")
	stop(oracleCmd, "oracle")
}
