package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestServeBinarySmoke builds the real binary and exercises the serving
// path end to end: startup, exact + approx answers, a shed burst
// against a capacity-1 gate, and a clean SIGTERM drain (exit 0). It is
// the scripted smoke in scripts/check.sh; set AQPPP_SERVER_SMOKE=1 to
// run it.
func TestServeBinarySmoke(t *testing.T) {
	if os.Getenv("AQPPP_SERVER_SMOKE") == "" {
		t.Skip("set AQPPP_SERVER_SMOKE=1 to run the binary smoke test")
	}

	bin := filepath.Join(t.TempDir(), "aqppp-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-demo", "tpcd", "-rows", "5000", "-seed", "9",
		"-addr", "127.0.0.1:0",
		"-agg", "l_extendedprice", "-dims", "l_orderkey,l_suppkey",
		"-sample-rate", "0.2", "-k", "500",
		"-max-concurrent", "1", "-max-queue", "1",
		"-max-resamples", "0",
		"-drain-timeout", "10s", "-quiet",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}()

	// The first stdout line announces the bound address.
	var addr string
	lines := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	got := make(chan string, 1)
	go func() {
		for lines.Scan() {
			line := lines.Text()
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				got <- rest
				return
			}
		}
		got <- ""
	}()
	select {
	case addr = <-got:
	case <-deadline:
		t.Fatal("server never announced its address")
	}
	if addr == "" {
		t.Fatal("no listening line on stdout")
	}
	base := "http://" + addr

	post := func(path string, body any) (int, map[string]any) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	type queryReq struct {
		SQL       string `json:"sql,omitempty"`
		Prepared  string `json:"prepared,omitempty"`
		TimeoutMS int64  `json:"timeout_ms,omitempty"`
		Resamples int    `json:"resamples,omitempty"`
	}

	stmt := "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey BETWEEN 100 AND 4000"
	if code, body := post("/v1/query", queryReq{SQL: stmt}); code != http.StatusOK {
		t.Fatalf("exact query = %d (%v)", code, body)
	}
	code, body := post("/v1/approx", queryReq{Prepared: "default", SQL: stmt})
	if code != http.StatusOK {
		t.Fatalf("approx query = %d (%v)", code, body)
	}
	if _, ok := body["half_width"]; !ok {
		t.Errorf("approx body missing half_width: %v", body)
	}

	// Burst 8 heavy bootstrap queries at a 1-slot/1-seat gate: at least
	// one must come back 429.
	var mu sync.Mutex
	counts := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _ := post("/v1/approx", queryReq{
				Prepared: "default", SQL: stmt, Resamples: 2000, TimeoutMS: 30000,
			})
			mu.Lock()
			counts[code]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if counts[http.StatusTooManyRequests] == 0 {
		t.Errorf("burst of 8 against capacity 2 shed nothing: %v", counts)
	}
	if counts[http.StatusOK] == 0 {
		t.Errorf("burst of 8 all failed: %v", counts)
	}
	for code := range counts {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Errorf("unexpected status %d in burst: %v", code, counts)
		}
	}

	// SIGTERM drains cleanly: exit status 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("drain exit: %v (want status 0)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	fmt.Fprintln(os.Stderr, "smoke: burst outcome", counts)
}
