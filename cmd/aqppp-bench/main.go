// Command aqppp-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	aqppp-bench [flags] [experiment ...]
//
// Experiments: table1, figure7, figure8, figure9, figure10a, figure10b,
// figure11a, figure11b, ablations, wavelet, shard, or "all" (the
// default). The shard experiment measures scatter-gather scaling over
// the counts given by -shards.
//
// Flags override the AQPPP_* environment scale knobs:
//
//	aqppp-bench -tpcd-rows 2000000 -queries 1000 -k 50000 table1
//
// Ctrl-C (SIGINT) cancels the run: the active experiment unwinds at its
// next cancellation check (one hill-climb step or cube stage) and the
// command exits nonzero. -timeout bounds the whole run the same way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"aqppp/internal/experiments"
)

func main() {
	sc := experiments.FromEnv()
	flag.IntVar(&sc.TPCDRows, "tpcd-rows", sc.TPCDRows, "TPCD-Skew lineitem rows")
	flag.IntVar(&sc.BigBenchRows, "bigbench-rows", sc.BigBenchRows, "BigBench UserVisits rows")
	flag.IntVar(&sc.TLCRows, "tlc-rows", sc.TLCRows, "TLCTrip rows")
	flag.IntVar(&sc.Queries, "queries", sc.Queries, "queries per workload")
	flag.Float64Var(&sc.SampleRate, "sample-rate", sc.SampleRate, "uniform sample rate")
	flag.IntVar(&sc.K, "k", sc.K, "BP-Cube cell budget")
	seed := flag.Uint64("seed", sc.Seed, "random seed")
	maxDims := flag.Int("max-dims", 0, "cap on #dimensions for figure7/figure11b (0 = all ten)")
	timeout := flag.Duration("timeout", 0, "bound the whole run's wall time (0 = unlimited)")
	shardCounts := flag.String("shards", "1,2,4,8", "comma-separated shard counts for the shard experiment")
	flag.Parse()
	sc.Seed = *seed

	counts, err := parseCounts(*shardCounts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	experimentsToRun := flag.Args()
	if len(experimentsToRun) == 0 {
		experimentsToRun = []string{"all"}
	}
	all := map[string]func(context.Context) (fmt.Stringer, error){
		"table1":    func(ctx context.Context) (fmt.Stringer, error) { return experiments.RunTable1(ctx, sc) },
		"figure7":   func(ctx context.Context) (fmt.Stringer, error) { return experiments.RunFigure7(ctx, sc, *maxDims) },
		"figure8":   func(ctx context.Context) (fmt.Stringer, error) { return experiments.RunFigure8(ctx, sc) },
		"figure9":   func(ctx context.Context) (fmt.Stringer, error) { return experiments.RunFigure9(ctx, sc, 0) },
		"figure10a": func(ctx context.Context) (fmt.Stringer, error) { return experiments.RunFigure10a(ctx, sc, nil) },
		"figure10b": func(ctx context.Context) (fmt.Stringer, error) { return experiments.RunFigure10b(ctx, sc) },
		"figure11a": func(ctx context.Context) (fmt.Stringer, error) { return experiments.RunFigure11a(ctx, sc, nil) },
		"figure11b": func(ctx context.Context) (fmt.Stringer, error) { return experiments.RunFigure11b(ctx, sc, *maxDims) },
		"ablations": func(ctx context.Context) (fmt.Stringer, error) { return experiments.RunAblations(ctx, sc) },
		"wavelet":   func(ctx context.Context) (fmt.Stringer, error) { return experiments.RunWaveletStudy(ctx, sc, nil) },
		"shard":     func(ctx context.Context) (fmt.Stringer, error) { return experiments.RunShard(ctx, sc, counts) },
	}
	order := []string{"table1", "figure7", "figure8", "figure9", "figure10a", "figure10b", "figure11a", "figure11b", "ablations", "wavelet", "shard"}

	var names []string
	for _, arg := range experimentsToRun {
		if arg == "all" {
			names = order
			break
		}
		if _, ok := all[arg]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from %v or all\n", arg, order)
			os.Exit(2)
		}
		names = append(names, arg)
	}

	fmt.Printf("aqppp-bench: scale = %+v\n\n", sc)
	failed := false
	for _, name := range names {
		start := time.Now()
		rep, err := all[name](ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failed = true
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				break
			}
			continue
		}
		fmt.Printf("=== %s (ran in %v) ===\n%s\n", name, time.Since(start).Round(time.Millisecond), rep)
	}
	if failed {
		os.Exit(1)
	}
}

// parseCounts parses the -shards list ("1,2,4,8") into shard counts.
func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-shards: bad count %q (want positive integers, e.g. 1,2,4,8)", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}
