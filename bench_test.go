package aqppp

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (§7). Each benchmark runs the corresponding
// experiment at the environment-configured scale (AQPPP_* variables, see
// internal/experiments.FromEnv) and reports the headline accuracy numbers
// as custom benchmark metrics, printing the full table/series once.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Scale up toward the paper's setting:
//
//	AQPPP_TPCD_ROWS=2000000 AQPPP_QUERIES=1000 AQPPP_K=50000 \
//	  go test -bench=BenchmarkTable1 -benchtime=1x
import (
	"context"
	"fmt"
	"sync"
	"testing"

	"aqppp/internal/experiments"
)

// benchScale caches the scale so every benchmark sees the same datasets.
var benchScale = struct {
	once sync.Once
	sc   experiments.Scale
}{}

func scale() experiments.Scale {
	benchScale.once.Do(func() {
		benchScale.sc = experiments.FromEnv()
	})
	return benchScale.sc
}

// printOnce guards each report so -benchtime multipliers do not spam.
var printOnce sync.Map

func report(b *testing.B, key, text string) {
	b.Helper()
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		fmt.Printf("\n%s\n", text)
	}
}

// BenchmarkTable1 regenerates Table 1: overall comparison of AQP, AggPre,
// AQP++, AQP(large) and APA+ on TPCD-Skew.
func BenchmarkTable1(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunTable1(context.Background(), sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rep.Rows {
			switch row.System {
			case "AQP":
				b.ReportMetric(100*row.MdnErr, "aqp-mdn-%")
			case "AQP++":
				b.ReportMetric(100*row.MdnErr, "aqppp-mdn-%")
			}
		}
		report(b, "table1", rep.String())
	}
}

// BenchmarkFigure7a regenerates Figure 7(a): preprocessing time vs the
// number of dimensions. (7a/7b/7c share one run per iteration; each
// benchmark reports its own panel's metric.)
func BenchmarkFigure7a(b *testing.B) {
	benchFigure7(b, "figure7a", func(b *testing.B, rep *experiments.Figure7Report) {
		last := rep.Points[len(rep.Points)-1]
		b.ReportMetric(last.PreprocessAQPPP.Seconds(), "prep-s@maxd")
	})
}

// BenchmarkFigure7b regenerates Figure 7(b): response time vs dimensions.
func BenchmarkFigure7b(b *testing.B) {
	benchFigure7(b, "figure7b", func(b *testing.B, rep *experiments.Figure7Report) {
		last := rep.Points[len(rep.Points)-1]
		b.ReportMetric(float64(last.RespAQPPP.Microseconds()), "resp-us@maxd")
	})
}

// BenchmarkFigure7c regenerates Figure 7(c): median error vs dimensions.
func BenchmarkFigure7c(b *testing.B) {
	benchFigure7(b, "figure7c", func(b *testing.B, rep *experiments.Figure7Report) {
		first := rep.Points[0]
		b.ReportMetric(first.MdnErrAQP/first.MdnErrAQPPP, "gain@1d")
	})
}

func benchFigure7(b *testing.B, key string, metric func(*testing.B, *experiments.Figure7Report)) {
	sc := scale()
	maxDims := 6 // full ten at paper scale is a long run; raise via code if needed
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunFigure7(context.Background(), sc, maxDims)
		if err != nil {
			b.Fatal(err)
		}
		metric(b, rep)
		report(b, "figure7", rep.String())
	}
}

// BenchmarkFigure8 regenerates Figure 8: hill-climb global vs local
// convergence on correlated attributes.
func BenchmarkFigure8(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunFigure8(context.Background(), sc)
		if err != nil {
			b.Fatal(err)
		}
		d0 := rep.Dims[0]
		g := d0.GlobalTrace[len(d0.GlobalTrace)-1]
		l := d0.LocalTrace[len(d0.LocalTrace)-1]
		if g > 0 {
			b.ReportMetric(l/g, "local/global-errup")
		}
		report(b, "figure8", rep.String())
	}
}

// BenchmarkFigure9 regenerates Figure 9: changing condition-attribute
// sets with a single precomputed BP-Cube.
func BenchmarkFigure9(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunFigure9(context.Background(), sc, 0)
		if err != nil {
			b.Fatal(err)
		}
		q3 := rep.Points[2]
		if q3.MdnErrAQPPP > 0 {
			b.ReportMetric(q3.MdnErrAQP/q3.MdnErrAQPPP, "gain@q3")
		}
		report(b, "figure9", rep.String())
	}
}

// BenchmarkFigure10a regenerates Figure 10(a): measure-biased sampling,
// error vs cube size.
func BenchmarkFigure10a(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunFigure10a(context.Background(), sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		last := rep.Points[len(rep.Points)-1]
		if last.MdnErrAQPPP > 0 {
			b.ReportMetric(last.MdnErrAQP/last.MdnErrAQPPP, "gain@maxk")
		}
		report(b, "figure10a", rep.String())
	}
}

// BenchmarkFigure10b regenerates Figure 10(b): stratified sampling,
// per-group errors.
func BenchmarkFigure10b(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunFigure10b(context.Background(), sc)
		if err != nil {
			b.Fatal(err)
		}
		worstGain := 0.0
		for _, g := range rep.Groups {
			if g.MdnErrAQPPP > 0 {
				if gain := g.MdnErrAQP / g.MdnErrAQPPP; worstGain == 0 || gain < worstGain {
					worstGain = gain
				}
			}
		}
		b.ReportMetric(worstGain, "min-group-gain")
		report(b, "figure10b", rep.String())
	}
}

// BenchmarkFigure11a regenerates Figure 11(a): BigBench, error vs k.
func BenchmarkFigure11a(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunFigure11a(context.Background(), sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		last := rep.Points[len(rep.Points)-1]
		if last.MdnErrAQPPP > 0 {
			b.ReportMetric(last.MdnErrAQP/last.MdnErrAQPPP, "gain@maxk")
		}
		report(b, "figure11a", rep.String())
	}
}

// BenchmarkFigure11b regenerates Figure 11(b): TLCTrip, error vs
// dimensions.
func BenchmarkFigure11b(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunFigure11b(context.Background(), sc, 6)
		if err != nil {
			b.Fatal(err)
		}
		first := rep.Points[0]
		if first.MdnErrAQPPP > 0 {
			b.ReportMetric(first.MdnErrAQP/first.MdnErrAQPPP, "gain@1d")
		}
		report(b, "figure11b", rep.String())
	}
}

// BenchmarkAblations runs the design-choice studies (equal partition vs
// hill climbing, P⁻ vs brute force, subsample-rate sweep).
func BenchmarkAblations(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunAblations(context.Background(), sc)
		if err != nil {
			b.Fatal(err)
		}
		if rep.MdnErrHillClimb > 0 {
			b.ReportMetric(rep.MdnErrEqual/rep.MdnErrHillClimb, "equal/hillclimb-err")
		}
		b.ReportMetric(100*rep.BruteAgreeRate, "brute-agree-%")
		report(b, "ablations", rep.String())
	}
}

// BenchmarkWaveletStudy compares the wavelet-compressed cube (approximate
// AggPre) against AQP++ at matched storage (§8 "cube approximation").
func BenchmarkWaveletStudy(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunWaveletStudy(context.Background(), sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		last := rep.Points[len(rep.Points)-1]
		if last.MdnDevAQPPP > 0 {
			b.ReportMetric(last.MdnDevWavelet/last.MdnDevAQPPP, "wavelet/aqppp-dev")
		}
		report(b, "wavelet", rep.String())
	}
}
