package engine

import (
	"testing"

	"aqppp/internal/stats"
)

// zonedTable builds a table big enough to trigger zone-mapped filtering,
// with one clustered column (sorted: zones skip aggressively) and one
// shuffled column (zones barely help but must stay correct).
func zonedTable(n int, seed uint64) *Table {
	r := stats.NewRNG(seed)
	clustered := make([]int64, n)
	shuffled := make([]int64, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		clustered[i] = int64(i)
		shuffled[i] = int64(r.Intn(n))
		vals[i] = r.Float64() * 100
	}
	return MustNewTable("z",
		NewIntColumn("clustered", clustered),
		NewIntColumn("shuffled", shuffled),
		NewFloatColumn("v", vals),
	)
}

func TestZonedFilterMatchesUnzoned(t *testing.T) {
	tbl := zonedTable(3*zoneBlockSize+17, 1)
	r := stats.NewRNG(2)
	for trial := 0; trial < 30; trial++ {
		col := "clustered"
		if trial%2 == 1 {
			col = "shuffled"
		}
		lo := float64(r.Intn(tbl.NumRows()))
		hi := lo + float64(r.Intn(tbl.NumRows()/2))
		rng := Range{Col: col, Lo: lo, Hi: hi}
		c := tbl.MustColumn(col)
		zoned := NewBitset(tbl.NumRows())
		applyRangeZoned(c, rng, zoned)
		plain := NewBitset(tbl.NumRows())
		applyRange(c, rng, plain)
		if zoned.Count() != plain.Count() {
			t.Fatalf("trial %d: zoned %d rows != plain %d", trial, zoned.Count(), plain.Count())
		}
		for i := 0; i < tbl.NumRows(); i++ {
			if zoned.Get(i) != plain.Get(i) {
				t.Fatalf("trial %d row %d: zoned %v plain %v", trial, i, zoned.Get(i), plain.Get(i))
			}
		}
	}
}

func TestZoneMapEdgeBlocks(t *testing.T) {
	// Exactly one partial tail block.
	n := zoneBlockSize*2 + 1
	tbl := zonedTable(n, 3)
	c := tbl.MustColumn("clustered")
	out := NewBitset(n)
	applyRangeZoned(c, Range{Col: "clustered", Lo: float64(n - 1), Hi: float64(n + 10)}, out)
	if out.Count() != 1 || !out.Get(n-1) {
		t.Errorf("tail block filtering wrong: count=%d", out.Count())
	}
}

// TestZoneMapBlockSummaries checks the per-block min/max directly,
// including the partial tail block.
func TestZoneMapBlockSummaries(t *testing.T) {
	n := 2*zoneBlockSize + 7 // two full blocks + a 7-row tail
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	c := NewIntColumn("c", vals)
	z := c.zonesFor()
	if len(z.mins) != 3 || len(z.maxs) != 3 {
		t.Fatalf("blocks = %d, want 3", len(z.mins))
	}
	wantBounds := [][2]float64{
		{0, float64(zoneBlockSize - 1)},
		{float64(zoneBlockSize), float64(2*zoneBlockSize - 1)},
		{float64(2 * zoneBlockSize), float64(n - 1)}, // 7-row tail
	}
	for b, w := range wantBounds {
		if z.mins[b] != w[0] || z.maxs[b] != w[1] {
			t.Errorf("block %d: [%v, %v], want [%v, %v]", b, z.mins[b], z.maxs[b], w[0], w[1])
		}
	}
}

// TestZoneMapPruningBoundaries probes ranges that touch block summaries
// exactly: a range ending at a block's min or starting at its max must
// keep the block (bounds are inclusive), while one ordinal beyond must
// prune it.
func TestZoneMapPruningBoundaries(t *testing.T) {
	n := 3 * zoneBlockSize
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	c := NewIntColumn("c", vals)
	cases := []struct {
		name   string
		lo, hi float64
		want   int
	}{
		{"exactly block 1", float64(zoneBlockSize), float64(2*zoneBlockSize - 1), zoneBlockSize},
		{"hi == block 1 min", 0, float64(zoneBlockSize), zoneBlockSize + 1},
		{"lo == block 0 max", float64(zoneBlockSize - 1), float64(zoneBlockSize - 1), 1},
		{"between ordinals", float64(zoneBlockSize) - 0.5, float64(zoneBlockSize) - 0.5, 0},
		{"below all data", -100, -1, 0},
		{"above all data", float64(n), float64(n + 100), 0},
		{"everything", 0, float64(n - 1), n},
	}
	for _, tc := range cases {
		out := NewBitset(n)
		applyRangeZoned(c, Range{Col: "c", Lo: tc.lo, Hi: tc.hi}, out)
		if got := out.Count(); got != tc.want {
			t.Errorf("%s: %d rows, want %d", tc.name, got, tc.want)
		}
		// The zoned result must agree with the plain scan bit for bit.
		plain := NewBitset(n)
		applyRange(c, Range{Col: "c", Lo: tc.lo, Hi: tc.hi}, plain)
		for i := 0; i < n; i++ {
			if out.Get(i) != plain.Get(i) {
				t.Fatalf("%s: row %d zoned %v plain %v", tc.name, i, out.Get(i), plain.Get(i))
			}
		}
	}
}

// TestZoneMapEmptyColumn: a zero-row column must filter to an empty
// selection without building zones or panicking.
func TestZoneMapEmptyColumn(t *testing.T) {
	c := NewIntColumn("c", nil)
	out := NewBitset(0)
	applyRangeZoned(c, Range{Col: "c", Lo: 0, Hi: 100}, out)
	if out.Count() != 0 {
		t.Errorf("empty column selected %d rows", out.Count())
	}
	z := c.zonesFor()
	if len(z.mins) != 0 || z.rows != 0 {
		t.Errorf("empty column zone map: %d blocks, rows=%d", len(z.mins), z.rows)
	}
}

func TestZoneMapInvalidatedByAppend(t *testing.T) {
	n := 3 * zoneBlockSize
	tbl := zonedTable(n, 4)
	q := Query{Func: Count, Ranges: []Range{{Col: "clustered", Lo: float64(n), Hi: float64(n + 100)}}}
	res, err := tbl.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("rows beyond domain matched: %v", res.Value)
	}
	// Append a row landing inside the previously-empty range; the zone
	// map must pick it up.
	if err := tbl.AppendRow(int64(n+5), int64(0), 1.5); err != nil {
		t.Fatal(err)
	}
	res, err = tbl.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 {
		t.Errorf("appended row invisible to zoned filter: %v", res.Value)
	}
}

func TestAppendRowValidation(t *testing.T) {
	tbl := MustNewTable("t",
		NewIntColumn("i", []int64{1}),
		NewFloatColumn("f", []float64{1}),
		NewStringColumn("s", []string{"a"}),
	)
	if err := tbl.AppendRow(int64(2), 2.5); err == nil {
		t.Error("short row accepted")
	}
	if err := tbl.AppendRow("x", 2.5, "b"); err == nil {
		t.Error("wrong type accepted")
	}
	if tbl.NumRows() != 1 {
		t.Fatalf("failed appends mutated the table: %d rows", tbl.NumRows())
	}
	if err := tbl.AppendRow(2, 2.5, "b"); err != nil { // plain int accepted
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
	if got := tbl.MustColumn("s").StringAt(1); got != "b" {
		t.Errorf("appended string = %q", got)
	}
}

func BenchmarkFilterZonedClustered(b *testing.B) {
	tbl := zonedTable(200000, 5)
	rng := []Range{{Col: "clustered", Lo: 50000, Hi: 52000}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Filter(rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterShuffled(b *testing.B) {
	tbl := zonedTable(200000, 6)
	rng := []Range{{Col: "shuffled", Lo: 50000, Hi: 52000}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Filter(rng); err != nil {
			b.Fatal(err)
		}
	}
}
