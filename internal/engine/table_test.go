package engine

import (
	"testing"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("sales",
		NewIntColumn("id", []int64{1, 2, 3, 4, 5}),
		NewFloatColumn("amount", []float64{10, 20, 30, 40, 50}),
		NewStringColumn("region", []string{"west", "east", "west", "north", "east"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewTableValidation(t *testing.T) {
	_, err := NewTable("t",
		NewIntColumn("a", []int64{1, 2}),
		NewIntColumn("a", []int64{3, 4}),
	)
	if err == nil {
		t.Error("duplicate column name accepted")
	}
	_, err = NewTable("t",
		NewIntColumn("a", []int64{1, 2}),
		NewIntColumn("b", []int64{3}),
	)
	if err == nil {
		t.Error("ragged columns accepted")
	}
}

func TestTableAccessors(t *testing.T) {
	tbl := sampleTable(t)
	if tbl.NumRows() != 5 || tbl.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if !tbl.HasColumn("region") || tbl.HasColumn("nope") {
		t.Error("HasColumn wrong")
	}
	if _, err := tbl.Column("nope"); err == nil {
		t.Error("missing column did not error")
	}
	names := tbl.ColumnNames()
	if names[0] != "id" || names[2] != "region" {
		t.Errorf("ColumnNames = %v", names)
	}
	s := tbl.Schema()
	if s.Types[0] != Int64 || s.Types[1] != Float64 || s.Types[2] != String {
		t.Errorf("Schema types = %v", s.Types)
	}
}

func TestStringOrdinalAlphabetical(t *testing.T) {
	tbl := sampleTable(t)
	c := tbl.MustColumn("region")
	// Alphabetical: east=0, north=1, west=2 regardless of insertion order.
	wantByValue := map[string]float64{"east": 0, "north": 1, "west": 2}
	for i := 0; i < tbl.NumRows(); i++ {
		if got := c.Ordinal(i); got != wantByValue[c.StringAt(i)] {
			t.Errorf("row %d (%s): ordinal %v", i, c.StringAt(i), got)
		}
	}
}

func TestOrdinalDomain(t *testing.T) {
	tbl := sampleTable(t)
	lo, hi := tbl.MustColumn("id").OrdinalDomain()
	if lo != 1 || hi != 5 {
		t.Errorf("id domain = [%v, %v]", lo, hi)
	}
	lo, hi = tbl.MustColumn("region").OrdinalDomain()
	if lo != 0 || hi != 2 {
		t.Errorf("region domain = [%v, %v]", lo, hi)
	}
	empty := NewIntColumn("x", nil)
	lo, hi = empty.OrdinalDomain()
	if lo != 0 || hi != -1 {
		t.Errorf("empty domain = [%v, %v]", lo, hi)
	}
}

func TestGather(t *testing.T) {
	tbl := sampleTable(t)
	sub := tbl.Gather("sub", []int{4, 0, 2})
	if sub.NumRows() != 3 {
		t.Fatalf("gathered rows = %d", sub.NumRows())
	}
	if got := sub.MustColumn("id").Ints; got[0] != 5 || got[1] != 1 || got[2] != 3 {
		t.Errorf("gathered ids = %v", got)
	}
	if got := sub.MustColumn("region").StringAt(0); got != "east" {
		t.Errorf("gathered region[0] = %q", got)
	}
}

func TestSortedIndexByOrdinal(t *testing.T) {
	tbl := MustNewTable("t",
		NewIntColumn("c", []int64{3, 1, 2, 1, 3}),
		NewFloatColumn("a", []float64{30, 10, 20, 11, 31}),
	)
	idx, err := tbl.SortedIndexByOrdinal("c")
	if err != nil {
		t.Fatal(err)
	}
	c := tbl.MustColumn("c")
	for i := 1; i < len(idx); i++ {
		if c.Ordinal(idx[i-1]) > c.Ordinal(idx[i]) {
			t.Fatalf("not sorted at %d", i)
		}
	}
	// Stability: equal keys preserve row order.
	if idx[0] != 1 || idx[1] != 3 {
		t.Errorf("ties not stable: %v", idx)
	}
	if _, err := tbl.SortedIndexByOrdinal("nope"); err == nil {
		t.Error("missing column did not error")
	}
}

func TestSizeBytes(t *testing.T) {
	tbl := sampleTable(t)
	// 5*8 (ints) + 5*8 (floats) + 5*4 (codes) + len("west east north")
	want := int64(40 + 40 + 20 + 13)
	if got := tbl.SizeBytes(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}

func TestAppendFrom(t *testing.T) {
	src := NewStringColumn("s", []string{"b", "a"})
	dst := NewStringColumn("s", nil)
	dst.AppendFrom(src, 0)
	dst.AppendFrom(src, 1)
	dst.AppendFrom(src, 0)
	if dst.Len() != 3 || dst.StringAt(0) != "b" || dst.StringAt(1) != "a" || dst.StringAt(2) != "b" {
		t.Errorf("AppendFrom produced %v / %v", dst.Dict, dst.Codes)
	}
	// Ordinals reflect alphabetical ranks in the destination dictionary.
	if dst.Ordinal(0) != 1 || dst.Ordinal(1) != 0 {
		t.Errorf("ordinals = %v, %v", dst.Ordinal(0), dst.Ordinal(1))
	}
}
