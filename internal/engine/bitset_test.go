package engine

import (
	"testing"
	"testing/quick"
)

func TestBitsetSetGetClear(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Errorf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Get(i) {
			t.Errorf("bit %d still set after Clear", i)
		}
	}
}

func TestBitsetSetAllCount(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		b := NewBitset(n)
		b.SetAll()
		if got := b.Count(); got != n {
			t.Errorf("n=%d: Count after SetAll = %d", n, got)
		}
	}
}

func TestBitsetAndOr(t *testing.T) {
	a := NewBitset(100)
	b := NewBitset(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	and := a.Clone()
	and.And(b)
	or := a.Clone()
	or.Or(b)
	for i := 0; i < 100; i++ {
		wantAnd := i%2 == 0 && i%3 == 0
		wantOr := i%2 == 0 || i%3 == 0
		if and.Get(i) != wantAnd {
			t.Errorf("And bit %d = %v", i, and.Get(i))
		}
		if or.Get(i) != wantOr {
			t.Errorf("Or bit %d = %v", i, or.Get(i))
		}
	}
}

func TestBitsetForEachOrdered(t *testing.T) {
	b := NewBitset(200)
	want := []int{3, 64, 65, 120, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("visit %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestBitsetWordBoundaryLengths exercises the word-boundary sizes where
// the tail word is empty (n=0), one short of full (63), exactly full
// (64), and one bit into a new word (65).
func TestBitsetWordBoundaryLengths(t *testing.T) {
	for _, n := range []int{0, 63, 64, 65} {
		b := NewBitset(n)
		if b.Len() != n {
			t.Errorf("n=%d: Len = %d", n, b.Len())
		}
		if got := b.Count(); got != 0 {
			t.Errorf("n=%d: fresh Count = %d", n, got)
		}
		b.SetAll()
		if got := b.Count(); got != n {
			t.Errorf("n=%d: Count after SetAll = %d", n, got)
		}
		// trim must have zeroed everything beyond n: And/Or with a full
		// bitset of the same size cannot change the count.
		full := NewBitset(n)
		full.SetAll()
		b.Or(full)
		if got := b.Count(); got != n {
			t.Errorf("n=%d: Count after Or full = %d", n, got)
		}
		if n == 0 {
			b.ForEach(func(i int) { t.Errorf("n=0: ForEach visited %d", i) })
			continue
		}
		// Clear the last valid bit and the first; count tracks exactly.
		b.Clear(n - 1)
		b.Clear(0)
		want := n - 2
		if n == 1 {
			want = 0
		}
		if got := b.Count(); got != want {
			t.Errorf("n=%d: Count after clearing ends = %d, want %d", n, got, want)
		}
		b.Set(n - 1)
		if !b.Get(n - 1) {
			t.Errorf("n=%d: last bit lost", n)
		}
		c := b.Clone()
		if c.Count() != b.Count() || c.Len() != b.Len() {
			t.Errorf("n=%d: clone diverges", n)
		}
		c.Clear(n - 1) // clone must be independent
		if !b.Get(n - 1) {
			t.Errorf("n=%d: clearing clone mutated original", n)
		}
	}
}

func TestBitsetLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	NewBitset(10).And(NewBitset(20))
}

func TestBitsetCountMatchesForEach(t *testing.T) {
	f := func(seed uint16, n16 uint16) bool {
		n := int(n16)%300 + 1
		b := NewBitset(n)
		s := uint32(seed)
		for i := 0; i < n; i++ {
			s = s*1664525 + 1013904223
			if s&1 == 1 {
				b.Set(i)
			}
		}
		visits := 0
		b.ForEach(func(int) { visits++ })
		return visits == b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
