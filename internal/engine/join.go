package engine

import "fmt"

// HashJoinFK performs a foreign-key equi-join: every fact row is extended
// with the dimension table's attributes via a hash lookup on
// fact.fkCol = dim.keyCol. The key must be unique in the dimension table
// and every fact key must resolve (a true FK), so the join is 1:1 per
// fact row and the result has exactly the fact table's row count.
//
// This is the footnote-2 extension of the paper: AQP++ handles foreign-key
// joins the way BlinkDB [6] does, because FK joins commute with uniform
// fact-table sampling — joining a sample of the fact table equals sampling
// the joined table (asserted by the engine's property tests). Denormalize
// with this helper either before building (ground truth + cube) or after
// sampling (cheap per-sample join); the estimators are identical.
//
// Dimension columns are added with the dimension table's name as a
// prefix ("dim.col") to avoid collisions; the key column is not
// duplicated.
func HashJoinFK(fact *Table, fkCol string, dim *Table, keyCol string) (*Table, error) {
	fk, err := fact.Column(fkCol)
	if err != nil {
		return nil, err
	}
	pk, err := dim.Column(keyCol)
	if err != nil {
		return nil, err
	}
	if fk.Type == String || pk.Type == String {
		return nil, fmt.Errorf("engine: string join keys are not supported (use integer surrogate keys)")
	}
	// Build the hash index over the dimension keys.
	index := make(map[int64]int, dim.NumRows())
	for i := 0; i < dim.NumRows(); i++ {
		k := keyAsInt(pk, i)
		if _, dup := index[k]; dup {
			return nil, fmt.Errorf("engine: duplicate key %d in dimension %q (not a primary key)", k, dim.Name)
		}
		index[k] = i
	}
	// Resolve every fact row.
	n := fact.NumRows()
	mapping := make([]int, n)
	for i := 0; i < n; i++ {
		k := keyAsInt(fk, i)
		j, ok := index[k]
		if !ok {
			return nil, fmt.Errorf("engine: fact row %d has dangling foreign key %d", i, k)
		}
		mapping[i] = j
	}
	// Assemble: all fact columns, then the dimension's non-key columns
	// gathered through the mapping.
	out := &Table{Name: fact.Name + "_" + dim.Name, byName: make(map[string]int)}
	for _, c := range fact.Columns {
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	for _, c := range dim.Columns {
		if c.Name == keyCol {
			continue
		}
		joined := c.Gather(mapping)
		joined.Name = dim.Name + "." + c.Name
		if err := out.AddColumn(joined); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// keyAsInt reads a numeric join key as int64 (floats must be integral;
// enforced by truncation — FK columns are surrogate keys in practice).
func keyAsInt(c *Column, row int) int64 {
	if c.Type == Int64 {
		return c.intAt(row)
	}
	return int64(c.floatAt(row))
}
