package engine

import (
	"runtime"
	"sync"
)

// ExecuteParallel runs a scalar (non-group-by) query with the given
// worker count (<= 0 selects GOMAXPROCS), splitting the table into row
// chunks that are filtered and aggregated independently and merged with
// the parallel Welford-style combination. Results are bit-identical to
// Execute for SUM/COUNT/MIN/MAX and agree to floating-point
// reassociation for AVG/VAR.
func (t *Table) ExecuteParallel(q Query, workers int) (Result, error) {
	if len(q.GroupBy) > 0 {
		return t.Execute(q) // group-by stays on the serial path
	}
	n := t.NumRows()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 4096 {
		return t.Execute(q)
	}
	var col *Column
	if q.Func != Count {
		var err error
		col, err = t.Column(q.Col)
		if err != nil {
			return Result{}, err
		}
	}
	rangeCols := make([]*Column, len(q.Ranges))
	for i, r := range q.Ranges {
		c, err := t.Column(r.Col)
		if err != nil {
			return Result{}, err
		}
		rangeCols[i] = c
	}
	// Ordinal lazily rebuilds the string rank cache; warm it here so the
	// goroutines below only ever read it (rebuilding inside them races).
	for _, c := range rangeCols {
		c.warmOrdinals()
	}
	if col != nil {
		col.warmOrdinals()
	}
	states := make([]aggState, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// Accumulate into a stack-local state and publish once at the
			// end: adjacent states[w] entries share cache lines, and
			// writing them per-row from different cores is false sharing.
			var st aggState
			for row := lo; row < hi; row++ {
				in := true
				for i, r := range q.Ranges {
					v := rangeCols[i].Ordinal(row)
					if v < r.Lo || v > r.Hi {
						in = false
						break
					}
				}
				if !in {
					continue
				}
				if col != nil {
					st.add(col.Float(row))
				} else {
					st.add(0)
				}
			}
			states[w] = st
		}(w, lo, hi)
	}
	wg.Wait()
	var total aggState
	for w := range states {
		total.merge(&states[w])
	}
	v, err := total.finish(q.Func)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: v}, nil
}

// merge combines another accumulator into a.
func (a *aggState) merge(o *aggState) {
	if o.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *o
		return
	}
	a.n += o.n
	a.sum += o.sum
	a.sum2 += o.sum2
	if o.min < a.min {
		a.min = o.min
	}
	if o.max > a.max {
		a.max = o.max
	}
}
