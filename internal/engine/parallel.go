package engine

import (
	"context"
	"runtime"
	"sync"
)

// ExecuteParallel runs a query with the given worker count (<= 0 selects
// GOMAXPROCS), splitting the table into zone-block-aligned row chunks
// that run the same block-at-a-time kernels as Execute and are merged
// deterministically. Scalar results are bit-identical to Execute for
// COUNT/MIN/MAX, and agree to floating-point reassociation for
// SUM/AVG/VAR (each worker folds its chunk with one accumulator; the
// merge re-associates across chunk boundaries). Group-by queries are
// parallelized too: each worker fills a private group table and tables
// are merged in worker (= row) order, so group keys, their first-seen
// order and their row counts match the serial path exactly.
func (t *Table) ExecuteParallel(q Query, workers int) (Result, error) {
	return t.ExecuteParallelContext(context.Background(), q, workers)
}

// ExecuteParallelContext is ExecuteParallel with cancellation: every
// worker polls a shared flag once per zone block, so a canceled (or
// expired) ctx unwinds the whole scan within about one block chunk and
// returns ctx's error. An uncancelable context costs nothing.
func (t *Table) ExecuteParallelContext(ctx context.Context, q Query, workers int) (Result, error) {
	n := t.NumRows()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Chunks are aligned to zone blocks so workers classify and skip
	// blocks exactly like the serial path.
	nblocks := (n + zoneBlockSize - 1) / zoneBlockSize
	if workers > nblocks {
		workers = nblocks
	}
	if workers <= 1 {
		return t.ExecuteContext(ctx, q)
	}
	e, err := t.newBlockExec(q.Ranges)
	if err != nil {
		return Result{}, err
	}
	release := e.watch(ctx)
	defer release()
	var col *Column
	if q.Func != Count {
		col, err = t.Column(q.Col)
		if err != nil {
			return Result{}, err
		}
		col.warmOrdinals()
	}
	bper := (nblocks + workers - 1) / workers
	chunk := bper * zoneBlockSize
	if len(q.GroupBy) > 0 {
		return t.parallelGroup(ctx, q, e, workers, chunk)
	}
	fam := familyOf(q.Func)
	states := make([]aggState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// scalarOver accumulates in a local aggState and the result
			// is published once, so adjacent states entries are not
			// written per-row from different cores (no false sharing).
			states[w] = scalarOver(e, col, fam, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	var total aggState
	for w := range states {
		total.merge(&states[w])
	}
	v, err := total.finish(q.Func)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: v}, nil
}

// parallelGroup fans a group-by query out over block-aligned chunks.
// The group-key strategy (dictionary codes, small-domain ints, or the
// map fallback) is resolved once and cloned per worker; the per-worker
// tables are merged in worker order, which concatenates the chunks'
// first-seen orders back into the serial first-seen order.
func (t *Table) parallelGroup(ctx context.Context, q Query, e *blockExec, workers, chunk int) (Result, error) {
	proto, err := newGroupSink(t, q)
	if err != nil {
		return Result{}, err
	}
	n := t.NumRows()
	sinks := make([]*groupSink, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			g := proto.cloneEmpty()
			e.run(lo, hi, g.addRange, g.addWords)
			sinks[w] = g
		}(w, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	for _, g := range sinks {
		if g == nil {
			continue
		}
		proto.mergeFrom(g)
	}
	rows, err := proto.rows()
	if err != nil {
		return Result{}, err
	}
	return Result{Groups: rows}, nil
}

// merge combines another accumulator into a.
func (a *aggState) merge(o *aggState) {
	if o.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *o
		return
	}
	a.n += o.n
	a.sum += o.sum
	a.sum2 += o.sum2
	if o.min < a.min {
		a.min = o.min
	}
	if o.max > a.max {
		a.max = o.max
	}
}
