package engine

import (
	"context"
	"runtime"
	"sync"
)

// ExecuteParallel runs a query with the given worker count (<= 0 selects
// GOMAXPROCS), splitting the table into zone-block-aligned row chunks
// that run the same block-at-a-time kernels as Execute and are merged
// deterministically. Scalar results are bit-identical to Execute for
// COUNT/MIN/MAX, and agree to floating-point reassociation for
// SUM/AVG/VAR (each worker folds its chunk with one accumulator; the
// merge re-associates across chunk boundaries). Group-by queries are
// parallelized too: each worker fills a private group table and tables
// are merged in worker (= row) order, so group keys, their first-seen
// order and their row counts match the serial path exactly.
func (t *Table) ExecuteParallel(q Query, workers int) (Result, error) {
	return t.ExecuteParallelContext(context.Background(), q, workers)
}

// ExecuteParallelContext is ExecuteParallel with cancellation: every
// worker polls a shared flag once per zone block, so a canceled (or
// expired) ctx unwinds the whole scan within about one block chunk and
// returns ctx's error. An uncancelable context costs nothing.
func (t *Table) ExecuteParallelContext(ctx context.Context, q Query, workers int) (Result, error) {
	n := t.NumRows()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Chunks are aligned to zone blocks so workers classify and skip
	// blocks exactly like the serial path.
	nblocks := (n + zoneBlockSize - 1) / zoneBlockSize
	if workers > nblocks {
		workers = nblocks
	}
	if workers <= 1 {
		return t.ExecuteContext(ctx, q)
	}
	e, err := t.newBlockExec(q.Ranges)
	if err != nil {
		return Result{}, err
	}
	release := e.watch(ctx)
	defer release()
	var col *Column
	if q.Func != Count {
		col, err = t.Column(q.Col)
		if err != nil {
			return Result{}, err
		}
		col.warmOrdinals()
	}
	bounds := chunkBounds(nblocks, workers, n)
	if len(q.GroupBy) > 0 {
		return t.parallelGroup(ctx, q, e, bounds)
	}
	fam := familyOf(q.Func)
	states := make([]aggState, len(bounds))
	errs := make([]error, len(bounds))
	var wg sync.WaitGroup
	for w, bd := range bounds {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// scalarOver accumulates in a local aggState and the result
			// is published once, so adjacent states entries are not
			// written per-row from different cores (no false sharing).
			states[w], errs[w] = scalarOver(e, col, fam, lo, hi)
		}(w, bd[0], bd[1])
	}
	wg.Wait()
	for _, werr := range errs {
		if werr != nil {
			return Result{}, werr
		}
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	var total aggState
	for w := range states {
		total.merge(&states[w])
	}
	v, err := total.finish(q.Func)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: v}, nil
}

// chunkBounds splits nblocks zone blocks across workers as evenly as
// block granularity allows: the first nblocks%workers workers take one
// extra block, so no worker's chunk exceeds another's by more than one
// block. (The previous ceil-divide scheme gave every worker
// ceil(nblocks/workers) blocks, which could leave the last worker a
// fraction of the others' work — a visible straggler imbalance on
// shard-sized tables.) Bounds stay zone-block-aligned as run requires;
// the final bound is clamped to n rows.
func chunkBounds(nblocks, workers, n int) [][2]int {
	q, rem := nblocks/workers, nblocks%workers
	bounds := make([][2]int, 0, workers)
	lo := 0
	for w := 0; w < workers; w++ {
		b := q
		if w < rem {
			b++
		}
		if b == 0 {
			continue
		}
		hi := lo + b*zoneBlockSize
		if hi > n {
			hi = n
		}
		if lo < hi {
			bounds = append(bounds, [2]int{lo, hi})
		}
		lo = hi
	}
	return bounds
}

// parallelGroup fans a group-by query out over block-aligned chunks.
// The group-key strategy (dictionary codes, small-domain ints, or the
// map fallback) is resolved once and cloned per worker; the per-worker
// tables are merged in worker order, which concatenates the chunks'
// first-seen orders back into the serial first-seen order. Worker
// clones draw their slot tables from the sink pool and return them
// after the merge, so repeated queries stop reallocating per-worker
// group tables.
func (t *Table) parallelGroup(ctx context.Context, q Query, e *blockExec, bounds [][2]int) (Result, error) {
	proto, err := newGroupSink(t, q)
	if err != nil {
		return Result{}, err
	}
	sinks := make([]*groupSink, len(bounds))
	errs := make([]error, len(bounds))
	var wg sync.WaitGroup
	for w, bd := range bounds {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			g := proto.cloneEmpty()
			errs[w] = e.run(lo, hi, g.addRange, g.addWords)
			sinks[w] = g
		}(w, bd[0], bd[1])
	}
	wg.Wait()
	var runErr error
	for _, werr := range errs {
		if werr != nil {
			runErr = werr
			break
		}
	}
	if err := ctx.Err(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		// The scan was abandoned mid-chunk; still recycle the worker
		// tables before unwinding.
		for _, g := range sinks {
			if g != nil {
				g.release()
			}
		}
		return Result{}, runErr
	}
	for _, g := range sinks {
		if g == nil {
			continue
		}
		proto.mergeFrom(g)
		g.release()
	}
	rows, err := proto.rows()
	if err != nil {
		return Result{}, err
	}
	return Result{Groups: rows}, nil
}

// merge combines another accumulator into a.
func (a *aggState) merge(o *aggState) {
	if o.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *o
		return
	}
	a.n += o.n
	a.sum += o.sum
	a.sum2 += o.sum2
	if o.min < a.min {
		a.min = o.min
	}
	if o.max > a.max {
		a.max = o.max
	}
}
