package engine

import (
	"math"
	"testing"

	"aqppp/internal/stats"
)

func parallelFixture(n int) *Table {
	r := stats.NewRNG(31)
	k := make([]int64, n)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		k[i] = int64(r.Intn(1000) + 1)
		v[i] = r.NormFloat64() * 100
	}
	return MustNewTable("p",
		NewIntColumn("k", k),
		NewFloatColumn("v", v),
	)
}

func TestExecuteParallelMatchesSerial(t *testing.T) {
	tbl := parallelFixture(50000)
	queries := []Query{
		{Func: Sum, Col: "v"},
		{Func: Count},
		{Func: Avg, Col: "v"},
		{Func: Var, Col: "v"},
		{Func: Min, Col: "v"},
		{Func: Max, Col: "v"},
		{Func: Sum, Col: "v", Ranges: []Range{{Col: "k", Lo: 100, Hi: 700}}},
		{Func: Count, Ranges: []Range{{Col: "k", Lo: 5000, Hi: 6000}}}, // empty
	}
	for _, q := range queries {
		serial, err := tbl.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 7} {
			par, err := tbl.ExecuteParallel(q, workers)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", q, workers, err)
			}
			tol := 1e-9 * math.Max(math.Abs(serial.Value), 1)
			if math.Abs(par.Value-serial.Value) > tol {
				t.Errorf("%v workers=%d: parallel %v != serial %v", q, workers, par.Value, serial.Value)
			}
		}
	}
}

func TestExecuteParallelGroupByFallsBack(t *testing.T) {
	tbl := MustNewTable("g",
		NewStringColumn("s", []string{"a", "b", "a"}),
		NewFloatColumn("v", []float64{1, 2, 3}),
	)
	res, err := tbl.ExecuteParallel(Query{Func: Sum, Col: "v", GroupBy: []string{"s"}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Errorf("groups = %+v", res.Groups)
	}
}

// TestExecuteParallelStress hammers ExecuteParallel with fresh tables
// (so the string rank cache starts cold every iteration, exercising the
// warm-before-fan-out path) across varying worker counts. Run under
// `go test -race -count=N` to shake out scheduling-dependent races; the
// results are also checked against the serial path each time.
func TestExecuteParallelStress(t *testing.T) {
	const n = 8192
	r := stats.NewRNG(97)
	regions := []string{"east", "west", "north", "south", "center"}
	for iter := 0; iter < 2; iter++ {
		k := make([]int64, n)
		v := make([]float64, n)
		s := make([]string, n)
		for i := 0; i < n; i++ {
			k[i] = int64(r.Intn(1000))
			v[i] = r.NormFloat64() * 10
			s[i] = regions[r.Intn(len(regions))]
		}
		q := Query{Func: Sum, Col: "v", Ranges: []Range{
			{Col: "k", Lo: 100, Hi: 900},
			{Col: "region", Lo: 1, Hi: 3}, // string ranges go through Ordinal
		}}
		for _, workers := range []int{2, 3, 5, 8, 16} {
			// A fresh table per run, queried in parallel FIRST: the string
			// rank cache is still cold when the workers fan out, so every
			// run exercises the pre-fan-out warming. (A serial query first
			// would warm the cache and mask a missing warm-up.)
			tbl := MustNewTable("stress",
				NewIntColumn("k", k),
				NewFloatColumn("v", v),
				NewStringColumn("region", s),
			)
			par, err := tbl.ExecuteParallel(q, workers)
			if err != nil {
				t.Fatalf("iter=%d workers=%d: %v", iter, workers, err)
			}
			serial, err := tbl.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			tol := 1e-9 * math.Max(math.Abs(serial.Value), 1)
			if math.Abs(par.Value-serial.Value) > tol {
				t.Errorf("iter=%d workers=%d: parallel %v != serial %v",
					iter, workers, par.Value, serial.Value)
			}
		}
	}
}

func TestExecuteParallelErrors(t *testing.T) {
	tbl := parallelFixture(10000)
	if _, err := tbl.ExecuteParallel(Query{Func: Sum, Col: "nope"}, 4); err == nil {
		t.Error("bad column accepted")
	}
	if _, err := tbl.ExecuteParallel(Query{Func: Sum, Col: "v", Ranges: []Range{{Col: "nope"}}}, 4); err == nil {
		t.Error("bad range column accepted")
	}
}

func BenchmarkExecuteSerial(b *testing.B) {
	tbl := parallelFixture(500000)
	q := Query{Func: Sum, Col: "v", Ranges: []Range{{Col: "k", Lo: 100, Hi: 900}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteParallel(b *testing.B) {
	tbl := parallelFixture(500000)
	q := Query{Func: Sum, Col: "v", Ranges: []Range{{Col: "k", Lo: 100, Hi: 900}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.ExecuteParallel(q, 0); err != nil {
			b.Fatal(err)
		}
	}
}
