package engine

import (
	"sync"
	"testing"

	"aqppp/internal/stats"
)

func TestBitsetSetRange(t *testing.T) {
	const n = 200
	for _, span := range [][2]int{
		{0, 0}, {0, 1}, {0, 63}, {0, 64}, {0, 65}, {0, n},
		{63, 64}, {63, 65}, {64, 128}, {64, 129}, {1, 199}, {127, 128},
		{190, 200}, {5, 5},
	} {
		got := NewBitset(n)
		got.SetRange(span[0], span[1])
		want := NewBitset(n)
		for i := span[0]; i < span[1]; i++ {
			want.Set(i)
		}
		for i := 0; i < n; i++ {
			if got.Get(i) != want.Get(i) {
				t.Fatalf("SetRange(%d, %d): bit %d = %v, want %v",
					span[0], span[1], i, got.Get(i), want.Get(i))
			}
		}
	}
	// SetRange must OR into existing bits, not overwrite them.
	b := NewBitset(n)
	b.Set(3)
	b.SetRange(100, 110)
	if !b.Get(3) || b.Count() != 11 {
		t.Errorf("SetRange clobbered existing bits: count=%d", b.Count())
	}
}

func TestBitsetSetRangePanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds SetRange did not panic")
		}
	}()
	NewBitset(10).SetRange(5, 11)
}

func TestBitsetClearAllAndWords(t *testing.T) {
	b := NewBitset(130)
	b.SetAll()
	b.ClearAll()
	if b.Count() != 0 {
		t.Fatalf("ClearAll left %d bits", b.Count())
	}
	b.SetRange(0, 130)
	mask := make([]uint64, len(b.Words()))
	mask[0] = 0xF0
	mask[2] = ^uint64(0)
	b.AndWords(mask)
	// 4 bits from word 0, plus rows 128..129 from word 2.
	if b.Count() != 6 {
		t.Errorf("AndWords count = %d, want 6", b.Count())
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched AndWords did not panic")
		}
	}()
	b.AndWords(make([]uint64, 1))
}

// cmpBlock dispatches the typed compare kernels over global rows
// [lo, hi) of a resident column — the shape the production code now
// reaches through per-block views (cmpView); the test drives the
// kernels directly over unaligned windows.
func cmpBlock(c *Column, rlo, rhi float64, lo, hi int, out []uint64, and bool) {
	switch c.Type {
	case Int64:
		cmpInt64(c.Ints, rlo, rhi, lo, hi, out, and)
	case Float64:
		cmpFloat64(c.Floats, rlo, rhi, lo, hi, out, and)
	default:
		cmpCodes(c.Codes, c.ranks(), rlo, rhi, lo, hi, out, and)
	}
}

// TestCmpBlockMatchesOrdinal cross-checks the type-specialized compare
// kernels (store and AND variants) against the per-row Ordinal test,
// over aligned and tail-partial windows.
func TestCmpBlockMatchesOrdinal(t *testing.T) {
	r := stats.NewRNG(11)
	n := 300
	ints := make([]int64, n)
	floats := make([]float64, n)
	strs := make([]string, n)
	pool := []string{"ant", "bee", "cat", "dog", "elk", "fox", "gnu"}
	for i := 0; i < n; i++ {
		ints[i] = int64(r.Intn(100))
		floats[i] = r.Float64() * 100
		strs[i] = pool[r.Intn(len(pool))]
	}
	cols := []*Column{
		NewIntColumn("i", ints),
		NewFloatColumn("f", floats),
		NewStringColumn("s", strs),
	}
	for _, c := range cols {
		for trial := 0; trial < 40; trial++ {
			rlo := r.Float64()*120 - 10
			rhi := rlo + r.Float64()*60
			lo := 64 * r.Intn(3)
			hi := lo + 1 + r.Intn(n-lo-1)
			nw := (hi - lo + 63) / 64
			got := make([]uint64, nw)
			cmpBlock(c, rlo, rhi, lo, hi, got, false)
			for i := lo; i < hi; i++ {
				want := c.Ordinal(i) >= rlo && c.Ordinal(i) <= rhi
				bit := got[(i-lo)>>6]&(1<<(uint(i-lo)&63)) != 0
				if bit != want {
					t.Fatalf("%s cmpBlock [%g,%g] rows [%d,%d): row %d = %v, want %v",
						c.Name, rlo, rhi, lo, hi, i, bit, want)
				}
			}
			// Tail bits beyond hi-lo must stay zero.
			if rem := uint(hi-lo) & 63; rem != 0 {
				if got[nw-1]&^((1<<rem)-1) != 0 {
					t.Fatalf("%s cmpBlock: tail bits set beyond row %d", c.Name, hi)
				}
			}
			// AND variant intersects into pre-set words.
			and := make([]uint64, nw)
			for k := range and {
				and[k] = r.Uint64()
			}
			before := append([]uint64(nil), and...)
			cmpBlock(c, rlo, rhi, lo, hi, and, true)
			for k := range and {
				if and[k] != before[k]&got[k] {
					t.Fatalf("%s cmpBlock and=true word %d: %x, want %x",
						c.Name, k, and[k], before[k]&got[k])
				}
			}
		}
	}
}

func TestGroupModeResolution(t *testing.T) {
	n := 10
	small := make([]int64, n)
	wide := make([]int64, n)
	huge := make([]int64, n)
	f := make([]float64, n)
	s := make([]string, n)
	for i := 0; i < n; i++ {
		small[i] = int64(i % 3)
		wide[i] = int64(i) * (maxDirectGroupDomain / 2)
		huge[i] = (int64(1) << 60) + int64(i) // beyond 2^53: float ordinals round
		f[i] = float64(i)
		s[i] = []string{"x", "y"}[i%2]
	}
	tbl := MustNewTable("t",
		NewIntColumn("small", small),
		NewIntColumn("wide", wide),
		NewIntColumn("huge", huge),
		NewFloatColumn("f", f),
		NewStringColumn("s", s),
	)
	cases := []struct {
		groupBy []string
		want    groupMode
	}{
		{[]string{"s"}, gmCodes},
		{[]string{"small"}, gmInts},
		{[]string{"huge"}, gmInts}, // narrow width at a huge offset still indexes directly
		{[]string{"wide"}, gmMap},
		{[]string{"f"}, gmMap},
		{[]string{"s", "small"}, gmMap},
	}
	for _, tc := range cases {
		g, err := newGroupSink(tbl, Query{Func: Sum, Col: "f", GroupBy: tc.groupBy})
		if err != nil {
			t.Fatal(err)
		}
		if g.mode != tc.want {
			t.Errorf("group mode for %v = %d, want %d", tc.groupBy, g.mode, tc.want)
		}
	}
	// The huge-offset direct mode must also render keys exactly.
	res, err := tbl.Execute(Query{Func: Count, GroupBy: []string{"huge"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != n || res.Groups[0].Key != "1152921504606846976" {
		t.Errorf("huge-int group keys wrong: %d groups, first %q",
			len(res.Groups), res.Groups[0].Key)
	}
}

// TestFilterColdCachesRace hammers a freshly built table with concurrent
// Filter/Execute calls so the zone maps and string rank tables are built
// lazily under contention. Run under -race this fails if the lazy builds
// are unguarded (the hazard class the PR 1 ranks race belonged to).
func TestFilterColdCachesRace(t *testing.T) {
	const n = 3*zoneBlockSize + 100
	r := stats.NewRNG(23)
	ints := make([]int64, n)
	strs := make([]string, n)
	vals := make([]float64, n)
	pool := []string{"aa", "bb", "cc", "dd"}
	for i := 0; i < n; i++ {
		ints[i] = int64(i)
		strs[i] = pool[r.Intn(len(pool))]
		vals[i] = r.Float64()
	}
	for iter := 0; iter < 3; iter++ {
		// A fresh table per iteration: zone maps and rank tables start
		// cold, so every goroutine below races to build them.
		tbl := MustNewTable("cold",
			NewIntColumn("k", ints),
			NewStringColumn("s", strs),
			NewFloatColumn("v", vals),
		)
		ranges := []Range{{Col: "k", Lo: 100, Hi: float64(n) - 100}, {Col: "s", Lo: 1, Hi: 2}}
		var wg sync.WaitGroup
		counts := make([]int, 8)
		sums := make([]float64, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				sel, err := tbl.Filter(ranges)
				if err != nil {
					t.Error(err)
					return
				}
				counts[g] = sel.Count()
				res, err := tbl.Execute(Query{Func: Sum, Col: "v", Ranges: ranges})
				if err != nil {
					t.Error(err)
					return
				}
				sums[g] = res.Value
			}(g)
		}
		wg.Wait()
		for g := 1; g < 8; g++ {
			if counts[g] != counts[0] {
				t.Fatalf("goroutine %d count %d != %d", g, counts[g], counts[0])
			}
			if !stats.ExactEqual(sums[g], sums[0]) {
				t.Fatalf("goroutine %d sum %v != %v", g, sums[g], sums[0])
			}
		}
	}
}
