package engine

import (
	"context"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file is the engine's vectorized kernel layer. Instead of walking
// rows one at a time through Ordinal/Float calls and per-row closures,
// query execution proceeds one zone block (4096 rows) at a time:
//
//  1. each block is classified against every range via the zone map
//     (skip / full / straddle, see zonemap.go);
//  2. straddling ranges run a type-specialized compare kernel that
//     stores whole selection words into a 512-byte block scratch;
//  3. the surviving rows feed a type-specialized aggregation kernel —
//     full blocks fuse filter and aggregate with no selection
//     materialized at all, so a single-range SUM on clustered data
//     touches only the measure column.
//
// Execute and ExecuteParallel both drive this layer (a parallel worker
// is just the same block loop over an aligned sub-range), which keeps
// the two paths trivially consistent.

// ---------------------------------------------------------------------
// Compare kernels
// ---------------------------------------------------------------------

// cmpView evaluates rlo <= ord(row) <= rhi for the n rows of one block
// view and writes the resulting selection words into out: bit 0 of
// out[0] is the view's row 0 (block-local). Bits beyond n stay zero.
// With and=false the words are stored (out's previous contents are
// ignored); with and=true they are intersected into out. ranks is the
// column's rank table for String columns (nil otherwise).
func cmpView(typ ColType, v BlockBuf, ranks []int32, rlo, rhi float64, n int, out []uint64, and bool) {
	switch typ {
	case Int64:
		cmpInt64(v.Ints, rlo, rhi, 0, n, out, and)
	case Float64:
		cmpFloat64(v.Floats, rlo, rhi, 0, n, out, and)
	default:
		cmpCodes(v.Codes, ranks, rlo, rhi, 0, n, out, and)
	}
}

func cmpInt64(vals []int64, rlo, rhi float64, lo, hi int, out []uint64, and bool) {
	wi := 0
	for i := lo; i < hi; wi++ {
		end := i + 64
		if end > hi {
			end = hi
		}
		var w uint64
		// Ranging over the word's subslice keeps the inner loop free of
		// bounds checks; float64(v) matches the row-at-a-time semantics
		// exactly, including values beyond 2^53 that round on conversion.
		for b, v := range vals[i:end] {
			if f := float64(v); f >= rlo && f <= rhi {
				w |= 1 << uint(b)
			}
		}
		i = end
		if and {
			out[wi] &= w
		} else {
			out[wi] = w
		}
	}
}

func cmpFloat64(vals []float64, rlo, rhi float64, lo, hi int, out []uint64, and bool) {
	wi := 0
	for i := lo; i < hi; wi++ {
		end := i + 64
		if end > hi {
			end = hi
		}
		var w uint64
		for b, v := range vals[i:end] {
			if v >= rlo && v <= rhi {
				w |= 1 << uint(b)
			}
		}
		i = end
		if and {
			out[wi] &= w
		} else {
			out[wi] = w
		}
	}
}

func cmpCodes(codes []int32, ranks []int32, rlo, rhi float64, lo, hi int, out []uint64, and bool) {
	wi := 0
	for i := lo; i < hi; wi++ {
		end := i + 64
		if end > hi {
			end = hi
		}
		var w uint64
		for b, code := range codes[i:end] {
			if v := float64(ranks[code]); v >= rlo && v <= rhi {
				w |= 1 << uint(b)
			}
		}
		i = end
		if and {
			out[wi] &= w
		} else {
			out[wi] = w
		}
	}
}

// ---------------------------------------------------------------------
// Aggregation kernels
// ---------------------------------------------------------------------

// aggFamily selects which aggState fields a scalar kernel maintains, so
// a SUM never pays for min/max bookkeeping and a COUNT never touches
// column data. finish reads only the family's fields.
type aggFamily uint8

const (
	// famCount maintains n only (COUNT).
	famCount aggFamily = iota
	// famSum maintains n and sum (SUM, AVG).
	famSum
	// famVar maintains n, sum and sum2 (VAR).
	famVar
	// famMinMax maintains n, min and max (MIN, MAX).
	famMinMax
)

func familyOf(f AggFunc) aggFamily {
	switch f {
	case Count:
		return famCount
	case Var:
		return famVar
	case Min, Max:
		return famMinMax
	default:
		return famSum
	}
}

// accView folds the n rows of one block view into st — the fused kernel
// for blocks that passed every range wholesale. Accumulation is in row
// order with a single accumulator, so serial results stay bit-identical
// to a row-at-a-time loop. The view may be zero only for famCount, which
// never touches column data. ranks is the aggregate column's rank table
// for String columns.
func accView(typ ColType, v BlockBuf, ranks []int32, fam aggFamily, n int, st *aggState) {
	if n <= 0 {
		return
	}
	switch fam {
	case famCount:
		st.n += int64(n)
	case famSum:
		s := st.sum
		switch typ {
		case Int64:
			for _, x := range v.Ints[:n] {
				s += float64(x)
			}
		case Float64:
			for _, x := range v.Floats[:n] {
				s += x
			}
		default:
			for _, code := range v.Codes[:n] {
				s += float64(ranks[code])
			}
		}
		st.sum = s
		st.n += int64(n)
	case famVar:
		s, s2 := st.sum, st.sum2
		switch typ {
		case Int64:
			for _, val := range v.Ints[:n] {
				x := float64(val)
				s += x
				s2 += x * x
			}
		case Float64:
			for _, x := range v.Floats[:n] {
				s += x
				s2 += x * x
			}
		default:
			for _, code := range v.Codes[:n] {
				x := float64(ranks[code])
				s += x
				s2 += x * x
			}
		}
		st.sum, st.sum2 = s, s2
		st.n += int64(n)
	case famMinMax:
		switch typ {
		case Int64:
			for _, x := range v.Ints[:n] {
				st.observe(float64(x))
			}
		case Float64:
			for _, x := range v.Floats[:n] {
				st.observe(x)
			}
		default:
			for _, code := range v.Codes[:n] {
				st.observe(float64(ranks[code]))
			}
		}
	}
}

// accWordsView folds the view rows selected by words (bit 0 of words[0]
// = the view's row 0) into st — the kernel for straddling blocks. The
// view may be zero only for famCount.
func accWordsView(typ ColType, v BlockBuf, ranks []int32, fam aggFamily, words []uint64, st *aggState) {
	switch fam {
	case famCount:
		n := int64(0)
		for _, w := range words {
			n += int64(bits.OnesCount64(w))
		}
		st.n += n
	case famSum:
		s := st.sum
		n := int64(0)
		switch typ {
		case Int64:
			vals := v.Ints
			for wi, w := range words {
				o := wi << 6
				for w != 0 {
					s += float64(vals[o+bits.TrailingZeros64(w)])
					w &= w - 1
					n++
				}
			}
		case Float64:
			vals := v.Floats
			for wi, w := range words {
				o := wi << 6
				for w != 0 {
					s += vals[o+bits.TrailingZeros64(w)]
					w &= w - 1
					n++
				}
			}
		default:
			codes := v.Codes
			for wi, w := range words {
				o := wi << 6
				for w != 0 {
					s += float64(ranks[codes[o+bits.TrailingZeros64(w)]])
					w &= w - 1
					n++
				}
			}
		}
		st.sum = s
		st.n += n
	case famVar:
		s, s2 := st.sum, st.sum2
		n := int64(0)
		switch typ {
		case Int64:
			vals := v.Ints
			for wi, w := range words {
				o := wi << 6
				for w != 0 {
					x := float64(vals[o+bits.TrailingZeros64(w)])
					s += x
					s2 += x * x
					w &= w - 1
					n++
				}
			}
		case Float64:
			vals := v.Floats
			for wi, w := range words {
				o := wi << 6
				for w != 0 {
					x := vals[o+bits.TrailingZeros64(w)]
					s += x
					s2 += x * x
					w &= w - 1
					n++
				}
			}
		default:
			codes := v.Codes
			for wi, w := range words {
				o := wi << 6
				for w != 0 {
					x := float64(ranks[codes[o+bits.TrailingZeros64(w)]])
					s += x
					s2 += x * x
					w &= w - 1
					n++
				}
			}
		}
		st.sum, st.sum2 = s, s2
		st.n += n
	case famMinMax:
		switch typ {
		case Int64:
			vals := v.Ints
			for wi, w := range words {
				o := wi << 6
				for w != 0 {
					st.observe(float64(vals[o+bits.TrailingZeros64(w)]))
					w &= w - 1
				}
			}
		case Float64:
			vals := v.Floats
			for wi, w := range words {
				o := wi << 6
				for w != 0 {
					st.observe(vals[o+bits.TrailingZeros64(w)])
					w &= w - 1
				}
			}
		default:
			codes := v.Codes
			for wi, w := range words {
				o := wi << 6
				for w != 0 {
					st.observe(float64(ranks[codes[o+bits.TrailingZeros64(w)]]))
					w &= w - 1
				}
			}
		}
	}
}

// observe updates the min/max family the same way aggState.add does,
// keeping MIN/MAX bit-identical with the row-at-a-time path.
func (a *aggState) observe(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
}

// ---------------------------------------------------------------------
// Block executor
// ---------------------------------------------------------------------

// blockExec drives block-at-a-time evaluation of a conjunction of
// ranges. It is built once per query (resolving columns, zone maps and
// rank tables up front) and is safe for concurrent run calls over
// disjoint row ranges — parallel workers share one executor.
type blockExec struct {
	ranges []Range
	cols   []*Column
	zones  []*zoneMap // nil entry: column below the zone threshold
	ranks  [][]int32  // nil entry: non-string column
	// stop, when non-nil, is polled once per zone block; a true load
	// aborts the run early (cancellation). It is armed by watch before
	// any worker starts, so concurrent runs only ever read it.
	stop *atomic.Bool
}

// watch arms the executor's cancellation flag against ctx and returns a
// release function that detaches the watcher. Background-style contexts
// (Done() == nil) cost nothing: no flag is armed and the per-block check
// stays a nil test.
func (e *blockExec) watch(ctx context.Context) func() {
	if ctx.Done() == nil {
		return func() {}
	}
	var flag atomic.Bool
	e.stop = &flag
	stop := context.AfterFunc(ctx, func() { flag.Store(true) })
	return func() { stop() }
}

// newBlockExec resolves the query's range columns and warms their
// derived caches so the block loop (and any parallel workers) only ever
// read them.
func (t *Table) newBlockExec(ranges []Range) (*blockExec, error) {
	e := &blockExec{
		ranges: ranges,
		cols:   make([]*Column, len(ranges)),
		zones:  make([]*zoneMap, len(ranges)),
		ranks:  make([][]int32, len(ranges)),
	}
	for i, r := range ranges {
		c, err := t.Column(r.Col)
		if err != nil {
			return nil, err
		}
		e.cols[i] = c
		c.warmOrdinals()
		if c.Type == String {
			e.ranks[i] = c.ranks()
		}
		if c.useZones() {
			e.zones[i] = c.zonesFor()
		}
	}
	return e, nil
}

// run evaluates the ranges over rows [lo, hi) — lo must be a multiple
// of zoneBlockSize — calling full(blo, bhi) for blocks every row of
// which matches, and partial(blo, bhi, words) for blocks with a partial
// selection (words holds the block-local selection, bit 0 of words[0]
// being row blo). Blocks the zone maps prove empty are skipped without
// touching row data — for source-backed columns they are never even
// read from the source. A callback or block-read error aborts the run
// and is returned; concurrent runs over disjoint row ranges stay safe
// because the per-run read buffers live on this frame.
func (e *blockExec) run(lo, hi int, full func(blo, bhi int) error, partial func(blo, bhi int, words []uint64) error) error {
	var scratch [blockWords]uint64
	straddle := make([]int, 0, len(e.ranges))
	var bufs []BlockBuf
	if len(e.ranges) > 0 {
		bufs = make([]BlockBuf, len(e.ranges))
	}
	// Hoist the stop flag: it is armed (or left nil) before run starts
	// and never reassigned mid-run, so the per-block poll stays a
	// register nil-test instead of a field load the callbacks could
	// invalidate.
	stop := e.stop
	for blo := lo; blo < hi; blo += zoneBlockSize {
		if stop != nil && stop.Load() {
			return nil
		}
		bhi := blo + zoneBlockSize
		if bhi > hi {
			bhi = hi
		}
		b := blo / zoneBlockSize
		straddle = straddle[:0]
		skip := false
		for i := range e.ranges {
			cls := blockStraddle
			if z := e.zones[i]; z != nil {
				cls = z.classify(b, e.ranges[i].Lo, e.ranges[i].Hi)
			}
			if cls == blockSkip {
				skip = true
				break
			}
			if cls == blockStraddle {
				straddle = append(straddle, i)
			}
		}
		if skip {
			continue
		}
		if len(straddle) == 0 {
			if err := full(blo, bhi); err != nil {
				return err
			}
			continue
		}
		sw := scratch[:(bhi-blo+63)/64]
		for k, i := range straddle {
			c := e.cols[i]
			v, err := c.view(b, &bufs[i])
			if err != nil {
				return err
			}
			cmpView(c.Type, v, e.ranks[i], e.ranges[i].Lo, e.ranges[i].Hi, bhi-blo, sw, k > 0)
		}
		if err := partial(blo, bhi, sw); err != nil {
			return err
		}
	}
	return nil
}

// scalarOver runs a scalar aggregate over rows [lo, hi) of the
// executor's table. col may be nil only for famCount, which never
// fetches column data — a COUNT over pruned-or-full blocks reads
// nothing from a source-backed measure column.
func scalarOver(e *blockExec, col *Column, fam aggFamily, lo, hi int) (aggState, error) {
	var st aggState
	var buf BlockBuf
	var ranks []int32
	if col != nil && col.Type == String {
		ranks = col.ranks()
	}
	err := e.run(lo, hi,
		func(blo, bhi int) error {
			if fam == famCount {
				st.n += int64(bhi - blo)
				return nil
			}
			v, err := col.view(blo/zoneBlockSize, &buf)
			if err != nil {
				return err
			}
			accView(col.Type, v, ranks, fam, bhi-blo, &st)
			return nil
		},
		func(blo, _ int, words []uint64) error {
			if fam == famCount {
				accWordsView(Int64, BlockBuf{}, nil, fam, words, &st)
				return nil
			}
			v, err := col.view(blo/zoneBlockSize, &buf)
			if err != nil {
				return err
			}
			accWordsView(col.Type, v, ranks, fam, words, &st)
			return nil
		},
	)
	return st, err
}

// ---------------------------------------------------------------------
// Group-by kernels
// ---------------------------------------------------------------------

// maxDirectGroupDomain bounds the ordinal width of a single Int64
// group-by column that still gets a slice-indexed group table; wider
// domains fall back to the string-keyed map.
const maxDirectGroupDomain = 1 << 16

// groupMode selects the group-key strategy.
type groupMode uint8

const (
	// gmCodes: one String group column; slots indexed by dictionary code.
	gmCodes groupMode = iota
	// gmInts: one small-domain Int64 group column; slots indexed by
	// value minus the domain minimum.
	gmInts
	// gmMap: multi-column or wide/float keys; string-keyed map fallback.
	gmMap
)

// groupSlot is one group's accumulator in the direct (slice-indexed)
// modes; seen gates the first-touch bookkeeping.
type groupSlot struct {
	seen bool
	st   aggState
}

type mapSlot struct{ st aggState }

// aggKind tags the aggregate column's access path, hoisted out of the
// per-row loops.
type aggKind uint8

const (
	aggNone  aggKind = iota // COUNT: contribute 0, matching aggState.add(0)
	aggInt                  // Int64 column
	aggFloat                // Float64 column
	aggCode                 // String column: rank of the code
)

// groupSink accumulates per-group aggregates. One sink per worker; a
// prototype resolves the mode once and cloneEmpty stamps out workers.
// The row loops run block-at-a-time: setBlock fetches the aggregate and
// key columns' views for the current zone block (a subslice for resident
// columns, a cache read for source-backed ones), and addRow indexes them
// block-locally.
type groupSink struct {
	mode groupMode
	fun  AggFunc

	// aggregate access; views fetched per block by setBlock
	kind     aggKind
	aggCol   *Column // nil for COUNT
	aggRanks []int32
	aggView  BlockBuf
	aggBuf   BlockBuf

	// direct modes
	keyCol  *Column // the single group column (gmCodes / gmInts)
	keyView BlockBuf
	keyBuf  BlockBuf
	dict    []string
	base    int64
	slots   []groupSlot
	order   []int32      // first-seen slot indices
	buf     *sinkBuffers // non-nil on pooled clones; returned by release

	// blockBase is the global row index of the current views' block
	// start, set by setBlock.
	blockBase int

	// map mode
	cols   []*Column
	m      map[string]*mapSlot
	morder []string
}

// newGroupSink resolves the group-by strategy for the query: dictionary
// codes or small-domain ints index a pre-sized slot slice; everything
// else keeps the string-keyed map.
func newGroupSink(t *Table, q Query) (*groupSink, error) {
	g := &groupSink{fun: q.Func, mode: gmMap}
	if q.Func != Count {
		col, err := t.Column(q.Col)
		if err != nil {
			return nil, err
		}
		g.aggCol = col
		switch col.Type {
		case Int64:
			g.kind = aggInt
		case Float64:
			g.kind = aggFloat
		default:
			g.kind, g.aggRanks = aggCode, col.ranks()
		}
	}
	g.cols = make([]*Column, len(q.GroupBy))
	for i, name := range q.GroupBy {
		c, err := t.Column(name)
		if err != nil {
			return nil, err
		}
		g.cols[i] = c
		c.warmOrdinals() // map-mode keys and parallel workers read ranks
	}
	if len(g.cols) == 1 {
		switch c := g.cols[0]; c.Type {
		case String:
			g.mode = gmCodes
			g.keyCol = c
			g.dict = c.Dict
			g.slots = make([]groupSlot, len(c.Dict))
		case Int64:
			// The domain bounds stay in int64: converting through float
			// ordinals would round values beyond 2^53 and corrupt the
			// slot index base. Source-backed columns answer from their
			// persisted exact bounds, or decline and fall back to the map.
			if mn, mx, ok := c.intBounds(); ok {
				if width := uint64(mx) - uint64(mn); width < maxDirectGroupDomain {
					g.mode = gmInts
					g.keyCol = c
					g.base = mn
					g.slots = make([]groupSlot, int(width)+1)
				}
			}
		}
	}
	if g.mode == gmMap {
		g.m = make(map[string]*mapSlot)
	}
	return g, nil
}

// setBlock fetches the views for zone block b and records its base row.
// The full/partial callbacks always stay within one zone block, so one
// fetch per callback suffices.
func (g *groupSink) setBlock(b int) error {
	if g.aggCol != nil {
		v, err := g.aggCol.view(b, &g.aggBuf)
		if err != nil {
			return err
		}
		g.aggView = v
	}
	if g.keyCol != nil {
		v, err := g.keyCol.view(b, &g.keyBuf)
		if err != nil {
			return err
		}
		g.keyView = v
	}
	g.blockBase = b * zoneBlockSize
	return nil
}

// sinkBuffers is the recyclable part of a direct-mode worker sink: the
// slot table and first-seen order list. Pooled entries keep an all-zero
// slot invariant — release resets exactly the slots its order list
// touched — so cloneEmpty can hand a pooled table out without an O(domain)
// clear. This is the allocation that used to dominate the GroupByString
// parallel profile (one fresh slot table per worker per query).
type sinkBuffers struct {
	slots []groupSlot
	order []int32
}

var sinkPool = sync.Pool{New: func() any { return new(sinkBuffers) }}

// cloneEmpty returns a sink with the same resolved strategy and no
// accumulated state; parallel workers each get one. Direct-mode clones
// draw their slot tables from sinkPool; callers hand them back with
// release once merged.
func (g *groupSink) cloneEmpty() *groupSink {
	c := *g
	c.order = nil
	c.morder = nil
	c.buf = nil
	// Views and decode buffers are per-worker state: sharing them would
	// race when a source decodes into the buffer.
	c.aggView, c.aggBuf = BlockBuf{}, BlockBuf{}
	c.keyView, c.keyBuf = BlockBuf{}, BlockBuf{}
	if g.slots != nil {
		b := sinkPool.Get().(*sinkBuffers)
		if cap(b.slots) < len(g.slots) {
			b.slots = make([]groupSlot, len(g.slots))
		}
		c.buf = b
		c.slots = b.slots[:len(g.slots)]
		c.order = b.order[:0]
	}
	if g.m != nil {
		c.m = make(map[string]*mapSlot)
	}
	return &c
}

// release re-zeroes the slots this clone touched (keeping the pool's
// all-zero invariant at cost proportional to groups seen, not domain
// size) and returns the buffers to the pool. The sink must not be used
// afterwards. No-op for map-mode or prototype sinks.
func (g *groupSink) release() {
	b := g.buf
	if b == nil {
		return
	}
	for _, gi := range g.order {
		g.slots[gi] = groupSlot{}
	}
	b.slots = g.slots
	b.order = g.order[:0]
	g.buf = nil
	g.slots = nil
	g.order = nil
	sinkPool.Put(b)
}

// value returns the aggregate contribution of global row i, read from
// the current block's view (setBlock must cover i).
func (g *groupSink) value(i int) float64 {
	switch g.kind {
	case aggInt:
		return float64(g.aggView.Ints[i-g.blockBase])
	case aggFloat:
		return g.aggView.Floats[i-g.blockBase]
	case aggCode:
		return float64(g.aggRanks[g.aggView.Codes[i-g.blockBase]])
	default:
		return 0
	}
}

// addRow folds global row i into its group; setBlock must cover i. Map
// mode renders keys through the row accessors (StringAt), which read the
// source's block cache for backed columns.
func (g *groupSink) addRow(i int) {
	var s *aggState
	switch g.mode {
	case gmCodes:
		gi := int(g.keyView.Codes[i-g.blockBase])
		sl := &g.slots[gi]
		if !sl.seen {
			sl.seen = true
			g.order = append(g.order, int32(gi))
		}
		s = &sl.st
	case gmInts:
		gi := int(g.keyView.Ints[i-g.blockBase] - g.base)
		sl := &g.slots[gi]
		if !sl.seen {
			sl.seen = true
			g.order = append(g.order, int32(gi))
		}
		s = &sl.st
	default:
		key := groupKey(g.cols, i)
		sl, ok := g.m[key]
		if !ok {
			sl = &mapSlot{}
			g.m[key] = sl
			g.morder = append(g.morder, key)
		}
		s = &sl.st
	}
	s.add(g.value(i))
}

// addRange folds rows [lo, hi) — the full-block sink. [lo, hi) always
// lies within one zone block (run calls it per block).
func (g *groupSink) addRange(lo, hi int) error {
	if err := g.setBlock(lo / zoneBlockSize); err != nil {
		return err
	}
	for i := lo; i < hi; i++ {
		g.addRow(i)
	}
	return nil
}

// addWords folds the rows selected by the block-local words.
func (g *groupSink) addWords(blo, _ int, words []uint64) error {
	if err := g.setBlock(blo / zoneBlockSize); err != nil {
		return err
	}
	for wi, w := range words {
		o := blo + wi<<6
		for w != 0 {
			g.addRow(o + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return nil
}

// mergeFrom folds another sink of the same strategy into g, appending
// groups g has not seen in o's first-seen order. Merging chunked
// workers in row order therefore reproduces the serial first-seen group
// order exactly, and never iterates a map (determinism).
func (g *groupSink) mergeFrom(o *groupSink) {
	switch g.mode {
	case gmMap:
		for _, key := range o.morder {
			sl, ok := g.m[key]
			if !ok {
				sl = &mapSlot{}
				g.m[key] = sl
				g.morder = append(g.morder, key)
			}
			sl.st.merge(&o.m[key].st)
		}
	default:
		for _, gi := range o.order {
			sl := &g.slots[gi]
			if !sl.seen {
				sl.seen = true
				g.order = append(g.order, gi)
			}
			sl.st.merge(&o.slots[gi].st)
		}
	}
}

// rows materializes the result in first-seen order, rendering direct-
// mode keys exactly as Column.StringAt would.
func (g *groupSink) rows() ([]GroupRow, error) {
	var out []GroupRow
	switch g.mode {
	case gmMap:
		out = make([]GroupRow, 0, len(g.morder))
		for _, key := range g.morder {
			sl := g.m[key]
			v, err := sl.st.finish(g.fun)
			if err != nil {
				return nil, err
			}
			out = append(out, GroupRow{Key: key, Value: v, Rows: int(sl.st.n)})
		}
	default:
		out = make([]GroupRow, 0, len(g.order))
		for _, gi := range g.order {
			sl := &g.slots[gi]
			v, err := sl.st.finish(g.fun)
			if err != nil {
				return nil, err
			}
			out = append(out, GroupRow{Key: g.slotKey(gi), Value: v, Rows: int(sl.st.n)})
		}
	}
	return out, nil
}

// slotKey renders a direct-mode slot index as the group key, exactly as
// Column.StringAt would.
func (g *groupSink) slotKey(gi int32) string {
	if g.mode == gmCodes {
		return g.dict[gi]
	}
	return strconv.FormatInt(g.base+int64(gi), 10)
}
