package engine

import "fmt"

// AppendRow appends one row to the table. vals must have one entry per
// column, in schema order, with types matching the columns: int64 (or
// int) for Int64 columns, float64 for Float64 columns, string for String
// columns. It is the ingestion path for the data-update extension
// (Appendix C): AQP++ maintains its sample and BP-Cube incrementally as
// rows arrive.
func (t *Table) AppendRow(vals ...interface{}) error {
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("engine: AppendRow got %d values for %d columns", len(vals), len(t.Columns))
	}
	if t.Backed() {
		return fmt.Errorf("engine: table %q is backend-served and immutable", t.Name)
	}
	// Validate all values before mutating anything so a failed append
	// leaves the table consistent.
	for i, c := range t.Columns {
		switch c.Type {
		case Int64:
			switch vals[i].(type) {
			case int64, int:
			default:
				return fmt.Errorf("engine: column %q wants int64, got %T", c.Name, vals[i])
			}
		case Float64:
			if _, ok := vals[i].(float64); !ok {
				return fmt.Errorf("engine: column %q wants float64, got %T", c.Name, vals[i])
			}
		case String:
			if _, ok := vals[i].(string); !ok {
				return fmt.Errorf("engine: column %q wants string, got %T", c.Name, vals[i])
			}
		}
	}
	for i, c := range t.Columns {
		switch c.Type {
		case Int64:
			switch v := vals[i].(type) {
			case int64:
				c.Ints = append(c.Ints, v)
			case int:
				c.Ints = append(c.Ints, int64(v))
			}
		case Float64:
			c.Floats = append(c.Floats, vals[i].(float64))
		case String:
			c.appendString(vals[i].(string))
		}
		c.invalidateZoneMap()
	}
	return nil
}
