package engine

import (
	"context"
	"fmt"
)

// AggFunc enumerates supported aggregation functions. MIN and MAX are
// exact-only (the paper notes AQP cannot estimate them; AggPre can).
type AggFunc uint8

const (
	// Sum aggregates SUM(col).
	Sum AggFunc = iota
	// Count aggregates COUNT(*) (the column is ignored).
	Count
	// Avg aggregates AVG(col).
	Avg
	// Var aggregates the population variance VAR(col).
	Var
	// Min aggregates MIN(col).
	Min
	// Max aggregates MAX(col).
	Max
)

// String implements fmt.Stringer.
func (f AggFunc) String() string {
	switch f {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Avg:
		return "AVG"
	case Var:
		return "VAR"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// Range is an inclusive range condition on a column's ordinal axis:
// Lo <= ord(col) <= Hi. Equality and one-sided conditions are expressed by
// collapsing or extending the endpoints (paper footnote 2).
type Range struct {
	Col    string
	Lo, Hi float64
}

// Query is an aggregation query: SELECT f(col) FROM t WHERE ranges...
// [GROUP BY groupBy...]. Ranges on the same column intersect.
type Query struct {
	Func    AggFunc
	Col     string
	Ranges  []Range
	GroupBy []string
}

// String renders the query in the paper's abbreviated SUM(x1:y1, ...) form.
func (q Query) String() string {
	s := fmt.Sprintf("%s(%s)[", q.Func, q.Col)
	for i, r := range q.Ranges {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s:%g..%g", r.Col, r.Lo, r.Hi)
	}
	s += "]"
	if len(q.GroupBy) > 0 {
		s += " GROUP BY "
		for i, g := range q.GroupBy {
			if i > 0 {
				s += ","
			}
			s += g
		}
	}
	return s
}

// Filter evaluates the conjunction of ranges and returns the selection
// bitset. A query with no ranges selects every row. The first range is
// evaluated directly into the result; further ranges share one scratch
// bitset, so a k-range filter allocates two bitsets instead of k+1.
func (t *Table) Filter(ranges []Range) (*Bitset, error) {
	n := t.NumRows()
	sel := NewBitset(n)
	if len(ranges) == 0 {
		sel.SetAll()
		return sel, nil
	}
	c, err := t.Column(ranges[0].Col)
	if err != nil {
		return nil, err
	}
	if err := applyRangeZoned(c, ranges[0], sel); err != nil {
		return nil, err
	}
	var scratch *Bitset
	for _, r := range ranges[1:] {
		c, err := t.Column(r.Col)
		if err != nil {
			return nil, err
		}
		if scratch == nil {
			scratch = NewBitset(n)
		} else {
			scratch.ClearAll()
		}
		if err := applyRangeZoned(c, r, scratch); err != nil {
			return nil, err
		}
		sel.And(scratch)
	}
	return sel, nil
}

// Result is the output of an exact query: the scalar answer, or one row
// per group for group-by queries.
type Result struct {
	Value  float64
	Groups []GroupRow
}

// GroupRow is one group's key and aggregate value.
type GroupRow struct {
	Key   string
	Value float64
	Rows  int
}

// Execute runs the query exactly over the full table. This is the "ground
// truth" path (and the full-scan baseline the paper times DBX on). It is
// built on the block-at-a-time kernel layer (kernels.go): zone-map block
// classification feeds fused, type-specialized filter+aggregate kernels,
// so a single-range scan never materializes a full selection bitset.
func (t *Table) Execute(q Query) (Result, error) {
	return t.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute with cancellation: a canceled (or expired)
// ctx aborts the scan at the next zone block and returns ctx's error.
// An uncancelable context costs nothing on the block path.
func (t *Table) ExecuteContext(ctx context.Context, q Query) (Result, error) {
	e, err := t.newBlockExec(q.Ranges)
	if err != nil {
		return Result{}, err
	}
	release := e.watch(ctx)
	defer release()
	n := t.NumRows()
	if len(q.GroupBy) == 0 {
		var col *Column
		if q.Func != Count {
			col, err = t.Column(q.Col)
			if err != nil {
				return Result{}, err
			}
		}
		st, err := scalarOver(e, col, familyOf(q.Func), 0, n)
		if err != nil {
			return Result{}, err
		}
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		v, err := st.finish(q.Func)
		return Result{Value: v}, err
	}
	g, err := newGroupSink(t, q)
	if err != nil {
		return Result{}, err
	}
	if err := e.run(0, n, g.addRange, g.addWords); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	rows, err := g.rows()
	if err != nil {
		return Result{}, err
	}
	return Result{Groups: rows}, nil
}

// GroupKey renders the group-by key for row i, matching the keys produced
// by Execute on group-by queries.
func GroupKey(cols []*Column, row int) string { return groupKey(cols, row) }

func groupKey(cols []*Column, row int) string {
	key := ""
	for j, g := range cols {
		if j > 0 {
			key += "|"
		}
		key += g.StringAt(row)
	}
	return key
}

// aggState accumulates one group's running aggregate.
type aggState struct {
	n         int64
	sum, sum2 float64
	min, max  float64
}

func (a *aggState) add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	a.sum += x
	a.sum2 += x * x
}

func (a *aggState) finish(f AggFunc) (float64, error) {
	switch f {
	case Sum:
		return a.sum, nil
	case Count:
		return float64(a.n), nil
	case Avg:
		if a.n == 0 {
			return 0, nil
		}
		return a.sum / float64(a.n), nil
	case Var:
		if a.n == 0 {
			return 0, nil
		}
		m := a.sum / float64(a.n)
		return a.sum2/float64(a.n) - m*m, nil
	case Min:
		return a.min, nil
	case Max:
		return a.max, nil
	default:
		return 0, fmt.Errorf("engine: unsupported aggregate %v", f)
	}
}
