package engine

import "math"

// Thin wrappers keep the io hot loops free of package-qualified calls that
// the inliner occasionally refuses; they also document that bit-exact
// round-tripping of floats (including NaN payloads) is intentional.

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
