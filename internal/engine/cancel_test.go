package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// waitForGoroutines retries until the live goroutine count falls back
// to at most base+slack. context.AfterFunc fires its callback on a
// transient goroutine, so an instant exact check would flake.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	const slack = 2
	for i := 0; i < 200; i++ {
		if runtime.NumGoroutine() <= base+slack {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d live, started with %d", runtime.NumGoroutine(), base)
}

// TestCancelExecutePreCanceled: an already-canceled context fails both
// scan paths with context.Canceled and leaks no goroutines.
func TestCancelExecutePreCanceled(t *testing.T) {
	base := runtime.NumGoroutine()
	tbl := parallelFixture(20000)
	q := Query{Func: Sum, Col: "v", Ranges: []Range{{Col: "k", Lo: 100, Hi: 900}}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tbl.ExecuteContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecuteContext err = %v, want context.Canceled", err)
	}
	if _, err := tbl.ExecuteParallelContext(ctx, q, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecuteParallelContext err = %v, want context.Canceled", err)
	}
	waitForGoroutines(t, base)
}

// TestCancelExecuteGroupByPreCanceled covers the group-by path, which
// returns rows through a different tail than the scalar kernels.
func TestCancelExecuteGroupByPreCanceled(t *testing.T) {
	tbl := MustNewTable("g",
		NewStringColumn("s", []string{"a", "b", "a", "c"}),
		NewFloatColumn("v", []float64{1, 2, 3, 4}),
	)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := Query{Func: Sum, Col: "v", GroupBy: []string{"s"}}
	if _, err := tbl.ExecuteContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("group-by err = %v, want context.Canceled", err)
	}
	if _, err := tbl.ExecuteParallelContext(ctx, q, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("parallel group-by err = %v, want context.Canceled", err)
	}
}

// TestCancelExecuteParallelMidFlight cancels while workers are scanning
// a table large enough that the scan cannot finish first, and checks
// the call unwinds promptly (the per-block stop flag, not the full
// scan) without leaking worker goroutines.
func TestCancelExecuteParallelMidFlight(t *testing.T) {
	base := runtime.NumGoroutine()
	tbl := parallelFixture(2_000_000)
	q := Query{Func: Sum, Col: "v", Ranges: []Range{{Col: "k", Lo: 100, Hi: 900}}}
	// Warm derived caches so the timed run measures only the scan.
	if _, err := tbl.ExecuteParallel(q, 4); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Microsecond)
		cancel()
	}()
	start := time.Now()
	_, err := tbl.ExecuteParallelContext(ctx, q, 4)
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want nil or context.Canceled", err)
	}
	// Generous bound: a 2M-row scan plus scheduling noise stays far
	// under this; a path that ignored cancellation would too, so the
	// real teeth are the error identity above and the race detector.
	if elapsed > 5*time.Second {
		t.Errorf("cancelation took %v", elapsed)
	}
	cancel()
	waitForGoroutines(t, base)
}

// TestCancelExecuteSerialMidFlight does the same for the serial path.
func TestCancelExecuteSerialMidFlight(t *testing.T) {
	tbl := parallelFixture(2_000_000)
	q := Query{Func: Sum, Col: "v", Ranges: []Range{{Col: "k", Lo: 100, Hi: 900}}}
	if _, err := tbl.Execute(q); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Microsecond)
		cancel()
	}()
	if _, err := tbl.ExecuteContext(ctx, q); err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want nil or context.Canceled", err)
	}
}

// TestCancelBackgroundUnaffected: the background-context fast path must
// not regress plain Execute results (the stop flag stays nil).
func TestCancelBackgroundUnaffected(t *testing.T) {
	tbl := parallelFixture(50000)
	q := Query{Func: Sum, Col: "v", Ranges: []Range{{Col: "k", Lo: 100, Hi: 900}}}
	want, err := tbl.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tbl.ExecuteContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value {
		t.Errorf("ExecuteContext(Background) = %v, Execute = %v", got.Value, want.Value)
	}
}
