package engine

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"aqppp/internal/stats"
)

// memBackend serves a resident table through the Backend interface,
// counting every block actually requested — the reference backend the
// equivalence and pruning tests drive.
type memBackend struct {
	tbl     *Table
	sources []*memSource
}

type memSource struct {
	c          *Column
	rows       int
	mins, maxs []float64
	reads      atomic.Int64
	failBlock  int // block index that errors; -1 for none
}

func newMemBackend(tbl *Table) *memBackend {
	b := &memBackend{tbl: tbl}
	n := tbl.NumRows()
	nb := (n + zoneBlockSize - 1) / zoneBlockSize
	for _, c := range tbl.Columns {
		s := &memSource{c: c, rows: n, failBlock: -1}
		s.mins = make([]float64, nb)
		s.maxs = make([]float64, nb)
		for blk := 0; blk < nb; blk++ {
			lo := blk * zoneBlockSize
			hi := lo + zoneBlockSize
			if hi > n {
				hi = n
			}
			mn := c.Ordinal(lo)
			mx := mn
			for i := lo + 1; i < hi; i++ {
				v := c.Ordinal(i)
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			s.mins[blk], s.maxs[blk] = mn, mx
		}
		b.sources = append(b.sources, s)
	}
	return b
}

func (b *memBackend) TableName() string           { return b.tbl.Name + "_backed" }
func (b *memBackend) Schema() Schema              { return b.tbl.Schema() }
func (b *memBackend) NumRows() int                { return b.tbl.NumRows() }
func (b *memBackend) Source(col int) ColumnSource { return b.sources[col] }
func (b *memBackend) Dict(col int) []string {
	if b.tbl.Columns[col].Type != String {
		return nil
	}
	return b.tbl.Columns[col].Dict
}

func (s *memSource) ReadBlock(blk int, buf *BlockBuf) (BlockBuf, error) {
	if blk == s.failBlock {
		return BlockBuf{}, fmt.Errorf("memSource: injected failure at block %d", blk)
	}
	s.reads.Add(1)
	lo := blk * zoneBlockSize
	hi := lo + zoneBlockSize
	if hi > s.rows {
		hi = s.rows
	}
	// Decode into the caller's buffer when one is offered, exercising
	// the reusable-buffer half of the contract (the store's cached
	// source exercises the shared-view half).
	switch s.c.Type {
	case Int64:
		if buf == nil {
			return BlockBuf{Ints: s.c.Ints[lo:hi]}, nil
		}
		buf.Ints = append(buf.Ints[:0], s.c.Ints[lo:hi]...)
		return BlockBuf{Ints: buf.Ints}, nil
	case Float64:
		if buf == nil {
			return BlockBuf{Floats: s.c.Floats[lo:hi]}, nil
		}
		buf.Floats = append(buf.Floats[:0], s.c.Floats[lo:hi]...)
		return BlockBuf{Floats: buf.Floats}, nil
	default:
		if buf == nil {
			return BlockBuf{Codes: s.c.Codes[lo:hi]}, nil
		}
		buf.Codes = append(buf.Codes[:0], s.c.Codes[lo:hi]...)
		return BlockBuf{Codes: buf.Codes}, nil
	}
}

func (s *memSource) BlockZones() (mins, maxs []float64) { return s.mins, s.maxs }

func (s *memSource) IntBounds() (int64, int64, bool) {
	if s.c.Type != Int64 || len(s.c.Ints) == 0 {
		return 0, 0, false
	}
	lo, hi := s.c.Ints[0], s.c.Ints[0]
	for _, v := range s.c.Ints[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, true
}

// backendTestTable builds a multi-block table clustered on "key" so zone
// pruning has teeth: key rises monotonically, so a narrow key range hits
// a contiguous handful of blocks.
func backendTestTable(t *testing.T, n int) *Table {
	t.Helper()
	r := stats.NewRNG(7)
	keys := make([]int64, n)
	vals := make([]float64, n)
	cats := make([]string, n)
	pool := []string{"north", "south", "east", "west", "delta"}
	for i := 0; i < n; i++ {
		keys[i] = int64(i / 3)
		vals[i] = r.Float64()*1000 - 500
		cats[i] = pool[r.Intn(len(pool))]
	}
	return MustNewTable("bt",
		NewIntColumn("key", keys),
		NewFloatColumn("val", vals),
		NewStringColumn("cat", cats),
	)
}

// TestBackendEquivalence pins every answer path over an OpenBackend
// table bit-identical to the resident oracle: scalar aggregates, filtered
// scans, group-by in all three modes, parallel execution, partials.
func TestBackendEquivalence(t *testing.T) {
	n := 5*zoneBlockSize + 123
	tbl := backendTestTable(t, n)
	bt, err := OpenBackend(newMemBackend(tbl))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bt.NumRows(), n; got != want {
		t.Fatalf("NumRows = %d, want %d", got, want)
	}
	queries := []Query{
		{Func: Sum, Col: "val"},
		{Func: Count},
		{Func: Avg, Col: "val", Ranges: []Range{{Col: "key", Lo: 100, Hi: 900}}},
		{Func: Var, Col: "key", Ranges: []Range{{Col: "val", Lo: -100, Hi: 250}}},
		{Func: Min, Col: "val", Ranges: []Range{{Col: "key", Lo: 0, Hi: 2000}, {Col: "cat", Lo: 1, Hi: 3}}},
		{Func: Max, Col: "cat", Ranges: []Range{{Col: "key", Lo: 500, Hi: 1500}}},
		{Func: Sum, Col: "val", GroupBy: []string{"cat"}},
		{Func: Count, GroupBy: []string{"cat"}, Ranges: []Range{{Col: "key", Lo: 300, Hi: 700}}},
		{Func: Avg, Col: "val", GroupBy: []string{"cat", "key"}, Ranges: []Range{{Col: "key", Lo: 10, Hi: 40}}},
	}
	for _, q := range queries {
		want, err := tbl.Execute(q)
		if err != nil {
			t.Fatalf("%v (resident): %v", q, err)
		}
		got, err := bt.Execute(q)
		if err != nil {
			t.Fatalf("%v (backed): %v", q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: backed %+v != resident %+v", q, got, want)
		}
		gotP, err := bt.ExecuteParallel(q, 4)
		if err != nil {
			t.Fatalf("%v (backed parallel): %v", q, err)
		}
		wantP, err := tbl.ExecuteParallel(q, 4)
		if err != nil {
			t.Fatalf("%v (resident parallel): %v", q, err)
		}
		if !reflect.DeepEqual(gotP, wantP) {
			t.Errorf("%v parallel: backed %+v != resident %+v", q, gotP, wantP)
		}
	}
	// Filter bitsets must agree too (the 2-bitset zoned path).
	ranges := []Range{{Col: "key", Lo: 77, Hi: 1234}, {Col: "cat", Lo: 0, Hi: 2}}
	selWant, err := tbl.Filter(ranges)
	if err != nil {
		t.Fatal(err)
	}
	selGot, err := bt.Filter(ranges)
	if err != nil {
		t.Fatal(err)
	}
	if selGot.Count() != selWant.Count() {
		t.Fatalf("Filter count = %d, want %d", selGot.Count(), selWant.Count())
	}
	// Row accessors and gathers route through the source.
	for _, row := range []int{0, 1, zoneBlockSize - 1, zoneBlockSize, 3*zoneBlockSize + 17, n - 1} {
		for _, col := range []string{"key", "val", "cat"} {
			if g, w := bt.MustColumn(col).StringAt(row), tbl.MustColumn(col).StringAt(row); g != w {
				t.Fatalf("StringAt(%s, %d) = %q, want %q", col, row, g, w)
			}
		}
	}
	idx := []int{5, zoneBlockSize + 2, n - 1, 0}
	if g, w := bt.Gather("g", idx), tbl.Gather("g", idx); !reflect.DeepEqual(g.MustColumn("val").Floats, w.MustColumn("val").Floats) {
		t.Fatal("Gather mismatch")
	}
	// Domain queries answer from zone metadata.
	for _, col := range []string{"key", "val", "cat"} {
		glo, ghi := bt.MustColumn(col).OrdinalDomain()
		wlo, whi := tbl.MustColumn(col).OrdinalDomain()
		if !stats.ExactEqual(glo, wlo) || !stats.ExactEqual(ghi, whi) {
			t.Fatalf("OrdinalDomain(%s) = [%g,%g], want [%g,%g]", col, glo, ghi, wlo, whi)
		}
	}
}

// TestBackendPruning asserts the acceptance criterion at the engine
// layer: blocks the zone maps prune are never requested from the source.
func TestBackendPruning(t *testing.T) {
	n := 8 * zoneBlockSize
	tbl := backendTestTable(t, n)
	mb := newMemBackend(tbl)
	bt, err := OpenBackend(mb)
	if err != nil {
		t.Fatal(err)
	}
	// key = row/3 is clustered: rows with key in [0, 1365] live in
	// block 0 only. A SUM over that range must touch exactly one key
	// block and one val block.
	q := Query{Func: Sum, Col: "val", Ranges: []Range{{Col: "key", Lo: 0, Hi: float64(zoneBlockSize/3 - 10)}}}
	want, err := tbl.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bt.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ExactEqual(got.Value, want.Value) {
		t.Fatalf("value = %g, want %g", got.Value, want.Value)
	}
	keyReads := mb.sources[0].reads.Load()
	valReads := mb.sources[1].reads.Load()
	catReads := mb.sources[2].reads.Load()
	if keyReads > 1 {
		t.Errorf("key column: %d block reads for a 1-block range (pruning failed)", keyReads)
	}
	if valReads > 1 {
		t.Errorf("val column: %d block reads for a 1-block range (pruning failed)", valReads)
	}
	if catReads != 0 {
		t.Errorf("cat column read %d blocks; not referenced by the query", catReads)
	}
	// A COUNT over a full-classified range reads no data blocks at all.
	mb.sources[0].reads.Store(0)
	cnt := Query{Func: Count, Ranges: []Range{{Col: "key", Lo: -1, Hi: float64(n)}}}
	if _, err := bt.Execute(cnt); err != nil {
		t.Fatal(err)
	}
	if r := mb.sources[0].reads.Load(); r != 0 {
		t.Errorf("COUNT over full-range read %d blocks; zone maps should classify all full", r)
	}
}

// TestBackendErrors pins the failure surface: scan paths return source
// errors (no panic), and backed tables refuse mutation and legacy
// serialization.
func TestBackendErrors(t *testing.T) {
	n := 3 * zoneBlockSize
	tbl := backendTestTable(t, n)
	mb := newMemBackend(tbl)
	bt, err := OpenBackend(mb)
	if err != nil {
		t.Fatal(err)
	}
	mb.sources[1].failBlock = 1 // val column, second block
	q := Query{Func: Sum, Col: "val"}
	if _, err := bt.Execute(q); err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("Execute over failing source: got %v, want injected failure", err)
	}
	if _, err := bt.ExecuteParallel(q, 3); err == nil {
		t.Fatal("ExecuteParallel over failing source: want error")
	}
	if _, err := bt.ExecutePartialContext(context.Background(), q); err == nil {
		t.Fatal("ExecutePartial over failing source: want error")
	}
	if _, err := bt.Execute(Query{Func: Sum, Col: "val", GroupBy: []string{"cat"}}); err == nil {
		t.Fatal("group-by over failing source: want error")
	}
	if _, err := bt.Filter([]Range{{Col: "val", Lo: 0, Hi: 1}}); err == nil {
		t.Fatal("Filter over failing source: want error")
	}
	mb.sources[1].failBlock = -1
	if err := bt.AppendRow(int64(1), 2.0, "x"); err == nil {
		t.Fatal("AppendRow on backed table: want error")
	}
	if err := bt.WriteBinary(discardWriter{}); err == nil {
		t.Fatal("WriteBinary on backed table: want error")
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
