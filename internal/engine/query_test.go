package engine

import (
	"math"
	"testing"
)

func execVal(t *testing.T, tbl *Table, q Query) float64 {
	t.Helper()
	res, err := tbl.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Value
}

func TestExecuteAggregates(t *testing.T) {
	tbl := sampleTable(t)
	all := []Range(nil)
	if got := execVal(t, tbl, Query{Func: Sum, Col: "amount", Ranges: all}); got != 150 {
		t.Errorf("SUM = %v", got)
	}
	if got := execVal(t, tbl, Query{Func: Count, Ranges: all}); got != 5 {
		t.Errorf("COUNT = %v", got)
	}
	if got := execVal(t, tbl, Query{Func: Avg, Col: "amount", Ranges: all}); got != 30 {
		t.Errorf("AVG = %v", got)
	}
	if got := execVal(t, tbl, Query{Func: Var, Col: "amount", Ranges: all}); got != 200 {
		t.Errorf("VAR = %v", got)
	}
	if got := execVal(t, tbl, Query{Func: Min, Col: "amount", Ranges: all}); got != 10 {
		t.Errorf("MIN = %v", got)
	}
	if got := execVal(t, tbl, Query{Func: Max, Col: "amount", Ranges: all}); got != 50 {
		t.Errorf("MAX = %v", got)
	}
}

func TestExecuteRangeFilter(t *testing.T) {
	tbl := sampleTable(t)
	q := Query{Func: Sum, Col: "amount", Ranges: []Range{{Col: "id", Lo: 2, Hi: 4}}}
	if got := execVal(t, tbl, q); got != 90 {
		t.Errorf("filtered SUM = %v, want 90", got)
	}
	// Conjunction of two ranges.
	q.Ranges = append(q.Ranges, Range{Col: "amount", Lo: 25, Hi: 100})
	if got := execVal(t, tbl, q); got != 70 {
		t.Errorf("double-filtered SUM = %v, want 70", got)
	}
	// Empty range.
	q.Ranges = []Range{{Col: "id", Lo: 10, Hi: 20}}
	if got := execVal(t, tbl, q); got != 0 {
		t.Errorf("empty-range SUM = %v, want 0", got)
	}
}

func TestExecuteStringRange(t *testing.T) {
	tbl := sampleTable(t)
	// east=0, north=1, west=2; ordinal range [0,1] selects east+north rows.
	q := Query{Func: Sum, Col: "amount", Ranges: []Range{{Col: "region", Lo: 0, Hi: 1}}}
	if got := execVal(t, tbl, q); got != 110 {
		t.Errorf("string-range SUM = %v, want 110 (20+50+40)", got)
	}
}

func TestExecuteGroupBy(t *testing.T) {
	tbl := sampleTable(t)
	res, err := tbl.Execute(Query{Func: Sum, Col: "amount", GroupBy: []string{"region"}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"west": 40, "east": 70, "north": 40}
	if len(res.Groups) != 3 {
		t.Fatalf("got %d groups", len(res.Groups))
	}
	for _, g := range res.Groups {
		if want[g.Key] != g.Value {
			t.Errorf("group %q = %v, want %v", g.Key, g.Value, want[g.Key])
		}
	}
	// Groups appear in first-seen order.
	if res.Groups[0].Key != "west" || res.Groups[1].Key != "east" {
		t.Errorf("group order = %v, %v", res.Groups[0].Key, res.Groups[1].Key)
	}
}

func TestExecuteGroupByMultiKeyAndFilter(t *testing.T) {
	tbl := MustNewTable("t",
		NewStringColumn("a", []string{"x", "x", "y", "y"}),
		NewStringColumn("b", []string{"1", "2", "1", "2"}),
		NewFloatColumn("v", []float64{1, 2, 3, 4}),
		NewIntColumn("k", []int64{1, 2, 3, 4}),
	)
	res, err := tbl.Execute(Query{
		Func: Sum, Col: "v",
		Ranges:  []Range{{Col: "k", Lo: 2, Hi: 4}},
		GroupBy: []string{"a", "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"x|2": 2, "y|1": 3, "y|2": 4}
	if len(res.Groups) != len(want) {
		t.Fatalf("groups = %+v", res.Groups)
	}
	for _, g := range res.Groups {
		if want[g.Key] != g.Value {
			t.Errorf("group %q = %v, want %v", g.Key, g.Value, want[g.Key])
		}
		if g.Rows != 1 {
			t.Errorf("group %q rows = %d", g.Key, g.Rows)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	tbl := sampleTable(t)
	if _, err := tbl.Execute(Query{Func: Sum, Col: "nope"}); err == nil {
		t.Error("bad agg column accepted")
	}
	if _, err := tbl.Execute(Query{Func: Sum, Col: "amount", Ranges: []Range{{Col: "nope"}}}); err == nil {
		t.Error("bad range column accepted")
	}
	if _, err := tbl.Execute(Query{Func: Sum, Col: "amount", GroupBy: []string{"nope"}}); err == nil {
		t.Error("bad group column accepted")
	}
}

func TestCountIgnoresColumn(t *testing.T) {
	tbl := sampleTable(t)
	if got := execVal(t, tbl, Query{Func: Count, Col: "whatever"}); got != 5 {
		t.Errorf("COUNT with bogus column = %v", got)
	}
}

func TestVarMatchesDefinition(t *testing.T) {
	tbl := MustNewTable("t", NewFloatColumn("v", []float64{2, 4, 4, 4, 5, 5, 7, 9}))
	if got := execVal(t, tbl, Query{Func: Var, Col: "v"}); math.Abs(got-4) > 1e-12 {
		t.Errorf("VAR = %v, want 4", got)
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Func: Sum, Col: "a", Ranges: []Range{{Col: "c", Lo: 1, Hi: 9}}, GroupBy: []string{"g"}}
	s := q.String()
	for _, want := range []string{"SUM(a)", "c:1..9", "GROUP BY g"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
