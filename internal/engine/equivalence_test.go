package engine

import (
	"strings"
	"testing"

	"aqppp/internal/stats"
)

// This file cross-checks the kernel layer end to end: Execute (serial
// kernels), ExecuteParallel (chunked kernels) and Filter are compared
// against a deliberately naive row-at-a-time reference over randomized
// tables, queries and group-by clauses. Guarantees verified:
//
//   - Execute is bit-identical to the reference for SUM/COUNT/MIN/MAX
//     (same additions in the same order) and within ApproxEqual
//     tolerance for AVG/VAR;
//   - ExecuteParallel is bit-identical for COUNT/MIN/MAX and within
//     ApproxEqual tolerance for SUM/AVG/VAR (worker merges re-associate
//     float additions across chunk boundaries);
//   - group-by results match on keys, first-seen order and row counts
//     exactly, with per-group values compared as above.

// refSelect returns the matching rows via per-row Ordinal tests.
func refSelect(t *Table, ranges []Range) []int {
	n := t.NumRows()
	var rows []int
	for i := 0; i < n; i++ {
		in := true
		for _, r := range ranges {
			c := t.MustColumn(r.Col)
			if v := c.Ordinal(i); v < r.Lo || v > r.Hi {
				in = false
				break
			}
		}
		if in {
			rows = append(rows, i)
		}
	}
	return rows
}

// refExecute is the row-at-a-time reference implementation (the engine's
// pre-kernel semantics, kept here as the test oracle).
func refExecute(t *Table, q Query) Result {
	rows := refSelect(t, q.Ranges)
	var col *Column
	if q.Func != Count {
		col = t.MustColumn(q.Col)
	}
	val := func(i int) float64 {
		if col != nil {
			return col.Float(i)
		}
		return 0
	}
	if len(q.GroupBy) == 0 {
		var st aggState
		for _, i := range rows {
			st.add(val(i))
		}
		v, err := st.finish(q.Func)
		if err != nil {
			panic(err)
		}
		return Result{Value: v}
	}
	groupCols := make([]*Column, len(q.GroupBy))
	for j, g := range q.GroupBy {
		groupCols[j] = t.MustColumn(g)
	}
	states := make(map[string]*aggState)
	var order []string
	for _, i := range rows {
		key := groupKey(groupCols, i)
		st, ok := states[key]
		if !ok {
			st = &aggState{}
			states[key] = st
			order = append(order, key)
		}
		st.add(val(i))
	}
	out := make([]GroupRow, 0, len(order))
	for _, key := range order {
		st := states[key]
		v, err := st.finish(q.Func)
		if err != nil {
			panic(err)
		}
		out = append(out, GroupRow{Key: key, Value: v, Rows: int(st.n)})
	}
	return Result{Groups: out}
}

// equivalenceTable builds a randomized fixture covering every column
// type and both group-key strategies (plus the map fallback).
func equivalenceTable(n int, r *stats.RNG) *Table {
	clustered := make([]int64, n)
	smallInt := make([]int64, n)
	wideInt := make([]int64, n)
	f := make([]float64, n)
	lowStr := make([]string, n)
	highStr := make([]string, n)
	low := []string{"east", "west", "north", "south", "mid"}
	for i := 0; i < n; i++ {
		clustered[i] = int64(i / 2) // sorted with duplicates
		smallInt[i] = int64(r.Intn(40) - 20)
		wideInt[i] = r.Int63n(1 << 40)
		f[i] = r.NormFloat64() * 50
		lowStr[i] = low[r.Intn(len(low))]
		highStr[i] = "g" + strings.Repeat("x", r.Intn(3)) + low[r.Intn(len(low))]
	}
	return MustNewTable("equiv",
		NewIntColumn("clustered", clustered),
		NewIntColumn("small", smallInt),
		NewIntColumn("wide", wideInt),
		NewFloatColumn("f", f),
		NewStringColumn("cat", lowStr),
		NewStringColumn("hcat", highStr),
	)
}

// randomRange draws a range over col with a randomized shape: empty,
// point, full-domain, straddling a zone-block boundary, or generic.
func randomRange(t *Table, col string, r *stats.RNG) Range {
	c := t.MustColumn(col)
	lo, hi := c.OrdinalDomain()
	switch r.Intn(5) {
	case 0: // empty (disjoint from the domain)
		return Range{Col: col, Lo: hi + 10, Hi: hi + 20}
	case 1: // point
		p := c.Ordinal(r.Intn(c.Len()))
		return Range{Col: col, Lo: p, Hi: p}
	case 2: // full domain
		return Range{Col: col, Lo: lo - 1, Hi: hi + 1}
	case 3: // straddle a zone-block boundary on the clustered axis
		edge := float64(zoneBlockSize/2) + float64(zoneBlockSize*r.Intn(2))
		return Range{Col: col, Lo: edge - float64(r.Intn(200)), Hi: edge + float64(r.Intn(200))}
	default:
		a := lo + r.Float64()*(hi-lo)
		b := a + r.Float64()*(hi-lo)/4
		return Range{Col: col, Lo: a, Hi: b}
	}
}

func randomQuery(t *Table, r *stats.RNG) Query {
	funcs := []AggFunc{Sum, Count, Avg, Var, Min, Max}
	aggCols := []string{"f", "small", "wide", "cat"}
	rangeCols := []string{"clustered", "small", "wide", "f", "cat", "hcat"}
	groupCols := []string{"cat", "hcat", "small", "wide", "f"}
	q := Query{Func: funcs[r.Intn(len(funcs))]}
	if q.Func != Count {
		q.Col = aggCols[r.Intn(len(aggCols))]
	}
	for k := r.Intn(4); k > 0; k-- {
		q.Ranges = append(q.Ranges, randomRange(t, rangeCols[r.Intn(len(rangeCols))], r))
	}
	switch r.Intn(3) {
	case 1:
		q.GroupBy = []string{groupCols[r.Intn(len(groupCols))]}
	case 2:
		a := groupCols[r.Intn(len(groupCols))]
		b := groupCols[r.Intn(len(groupCols))]
		if a != b {
			q.GroupBy = []string{a, b}
		} else {
			q.GroupBy = []string{a}
		}
	}
	return q
}

// exactFuncs are bit-identical on the serial path; the rest are subject
// to floating-point reassociation tolerances.
func serialExact(f AggFunc) bool { return f == Sum || f == Count || f == Min || f == Max }

// parallelExact: worker merges re-associate sums, so only the
// order-independent aggregates stay bit-identical across chunkings.
func parallelExact(f AggFunc) bool { return f == Count || f == Min || f == Max }

func checkValue(t *testing.T, ctx string, got, want float64, exact bool) {
	t.Helper()
	if exact {
		if !stats.ExactEqual(got, want) {
			t.Errorf("%s: got %v, want %v (exact)", ctx, got, want)
		}
	} else if !stats.ApproxEqual(got, want, 1e-9) {
		t.Errorf("%s: got %v, want %v (approx)", ctx, got, want)
	}
}

func checkResult(t *testing.T, ctx string, q Query, got, want Result, exact bool) {
	t.Helper()
	if len(q.GroupBy) == 0 {
		checkValue(t, ctx, got.Value, want.Value, exact)
		return
	}
	if len(got.Groups) != len(want.Groups) {
		t.Errorf("%s: %d groups, want %d", ctx, len(got.Groups), len(want.Groups))
		return
	}
	for i := range got.Groups {
		g, w := got.Groups[i], want.Groups[i]
		if g.Key != w.Key {
			t.Errorf("%s: group %d key %q, want %q (first-seen order must match)", ctx, i, g.Key, w.Key)
			continue
		}
		if g.Rows != w.Rows {
			t.Errorf("%s: group %q rows %d, want %d", ctx, g.Key, g.Rows, w.Rows)
		}
		checkValue(t, ctx+" group "+g.Key, g.Value, w.Value, exact)
	}
}

func TestKernelEquivalenceRandomized(t *testing.T) {
	r := stats.NewRNG(20260806)
	// Three table sizes: below the zone threshold, above it with a
	// partial tail block, and exactly block-aligned.
	for _, n := range []int{97, 2*zoneBlockSize + 401, 3 * zoneBlockSize} {
		tbl := equivalenceTable(n, r)
		trials := 40
		if testing.Short() {
			trials = 10
		}
		for trial := 0; trial < trials; trial++ {
			q := randomQuery(tbl, r)
			want := refExecute(tbl, q)
			got, err := tbl.Execute(q)
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, q, err)
			}
			checkResult(t, q.String()+" serial", q, got, want, serialExact(q.Func))
			for _, workers := range []int{2, 3, 8} {
				par, err := tbl.ExecuteParallel(q, workers)
				if err != nil {
					t.Fatalf("n=%d %v workers=%d: %v", n, q, workers, err)
				}
				checkResult(t, q.String()+" parallel", q, par, want, parallelExact(q.Func))
			}
		}
	}
}

// TestFilterEquivalenceRandomized bit-compares Filter (zone-mapped
// word-store kernels, scratch reuse) against the reference row test.
func TestFilterEquivalenceRandomized(t *testing.T) {
	r := stats.NewRNG(77)
	for _, n := range []int{64, 130, 2*zoneBlockSize + 401, 3 * zoneBlockSize} {
		tbl := equivalenceTable(n, r)
		cols := []string{"clustered", "small", "wide", "f", "cat", "hcat"}
		for trial := 0; trial < 25; trial++ {
			var ranges []Range
			for k := r.Intn(4); k > 0; k-- {
				ranges = append(ranges, randomRange(tbl, cols[r.Intn(len(cols))], r))
			}
			sel, err := tbl.Filter(ranges)
			if err != nil {
				t.Fatal(err)
			}
			want := refSelect(tbl, ranges)
			if sel.Count() != len(want) {
				t.Fatalf("n=%d ranges=%v: count %d, want %d", n, ranges, sel.Count(), len(want))
			}
			for _, i := range want {
				if !sel.Get(i) {
					t.Fatalf("n=%d ranges=%v: row %d missing", n, ranges, i)
				}
			}
		}
	}
}
