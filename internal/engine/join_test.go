package engine

import (
	"testing"

	"aqppp/internal/stats"
)

func joinFixture(t *testing.T, n int, seed uint64) (*Table, *Table) {
	t.Helper()
	r := stats.NewRNG(seed)
	const suppliers = 50
	// Dimension: suppliers with a region and a rating.
	ids := make([]int64, suppliers)
	region := make([]string, suppliers)
	rating := make([]int64, suppliers)
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < suppliers; i++ {
		ids[i] = int64(i + 1)
		region[i] = regions[r.Intn(len(regions))]
		rating[i] = int64(r.Intn(5) + 1)
	}
	dim := MustNewTable("supplier",
		NewIntColumn("s_id", ids),
		NewStringColumn("region", region),
		NewIntColumn("rating", rating),
	)
	// Fact: orders pointing at suppliers.
	fk := make([]int64, n)
	amount := make([]float64, n)
	for i := 0; i < n; i++ {
		fk[i] = int64(r.Intn(suppliers) + 1)
		amount[i] = 10 + 5*r.NormFloat64()
	}
	fact := MustNewTable("orders",
		NewIntColumn("o_supp", fk),
		NewFloatColumn("amount", amount),
	)
	return fact, dim
}

func TestHashJoinFKBasic(t *testing.T) {
	fact, dim := joinFixture(t, 2000, 1)
	joined, err := HashJoinFK(fact, "o_supp", dim, "s_id")
	if err != nil {
		t.Fatal(err)
	}
	if joined.NumRows() != 2000 {
		t.Fatalf("joined rows = %d", joined.NumRows())
	}
	for _, col := range []string{"o_supp", "amount", "supplier.region", "supplier.rating"} {
		if !joined.HasColumn(col) {
			t.Errorf("missing column %q", col)
		}
	}
	if joined.HasColumn("supplier.s_id") || joined.HasColumn("s_id") {
		t.Error("key column duplicated into the join result")
	}
	// Spot-check the attribution: every row's region must match its
	// supplier's.
	fk := joined.MustColumn("o_supp")
	reg := joined.MustColumn("supplier.region")
	dimReg := dim.MustColumn("region")
	for i := 0; i < 100; i++ {
		want := dimReg.StringAt(int(fk.Ints[i] - 1))
		if got := reg.StringAt(i); got != want {
			t.Fatalf("row %d: region %q, want %q", i, got, want)
		}
	}
}

func TestHashJoinFKAggregation(t *testing.T) {
	fact, dim := joinFixture(t, 5000, 2)
	joined, err := HashJoinFK(fact, "o_supp", dim, "s_id")
	if err != nil {
		t.Fatal(err)
	}
	// SUM over a dimension-attribute condition equals the brute-force
	// two-table computation.
	q := Query{Func: Sum, Col: "amount",
		Ranges: []Range{{Col: "supplier.rating", Lo: 4, Hi: 5}}}
	res, err := joined.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	fk := fact.MustColumn("o_supp").Ints
	amount := fact.MustColumn("amount").Floats
	rating := dim.MustColumn("rating").Ints
	for i := range fk {
		if r := rating[fk[i]-1]; r >= 4 {
			want += amount[i]
		}
	}
	if res.Value != want {
		t.Errorf("joined SUM = %v, want %v", res.Value, want)
	}
}

func TestJoinCommutesWithSampling(t *testing.T) {
	// The footnote-2 property: a uniform sample of the fact table, joined,
	// equals the same uniform sample drawn from the joined table (same
	// rows, same attributes), because the FK join is 1:1 per fact row.
	fact, dim := joinFixture(t, 3000, 3)
	joinedFull, err := HashJoinFK(fact, "o_supp", dim, "s_id")
	if err != nil {
		t.Fatal(err)
	}
	// "Sample" = a fixed subset of row indices (what sample.NewUniform
	// produces for a given seed); gather from both sides.
	r := stats.NewRNG(4)
	idx := make([]int, 0, 300)
	for i := 0; i < 3000; i++ {
		if r.Float64() < 0.1 {
			idx = append(idx, i)
		}
	}
	sampledThenJoined, err := HashJoinFK(fact.Gather("orders", idx), "o_supp", dim, "s_id")
	if err != nil {
		t.Fatal(err)
	}
	joinedThenSampled := joinedFull.Gather("orders_supplier", idx)
	if sampledThenJoined.NumRows() != joinedThenSampled.NumRows() {
		t.Fatalf("row counts differ: %d vs %d",
			sampledThenJoined.NumRows(), joinedThenSampled.NumRows())
	}
	for _, col := range []string{"o_supp", "amount", "supplier.region", "supplier.rating"} {
		a := sampledThenJoined.MustColumn(col)
		b := joinedThenSampled.MustColumn(col)
		for i := 0; i < sampledThenJoined.NumRows(); i++ {
			if a.StringAt(i) != b.StringAt(i) {
				t.Fatalf("column %q row %d: %q vs %q", col, i, a.StringAt(i), b.StringAt(i))
			}
		}
	}
}

func TestHashJoinFKErrors(t *testing.T) {
	fact, dim := joinFixture(t, 100, 5)
	if _, err := HashJoinFK(fact, "nope", dim, "s_id"); err == nil {
		t.Error("bad fk column accepted")
	}
	if _, err := HashJoinFK(fact, "o_supp", dim, "nope"); err == nil {
		t.Error("bad key column accepted")
	}
	if _, err := HashJoinFK(fact, "o_supp", dim, "region"); err == nil {
		t.Error("string key accepted")
	}
	// Duplicate keys in the dimension.
	dup := MustNewTable("d",
		NewIntColumn("k", []int64{1, 1}),
		NewFloatColumn("x", []float64{1, 2}),
	)
	if _, err := HashJoinFK(fact, "o_supp", dup, "k"); err == nil {
		t.Error("duplicate dimension key accepted")
	}
	// Dangling foreign key.
	tiny := MustNewTable("d2",
		NewIntColumn("k", []int64{1}),
		NewFloatColumn("x", []float64{1}),
	)
	if _, err := HashJoinFK(fact, "o_supp", tiny, "k"); err == nil {
		t.Error("dangling FK accepted")
	}
}
