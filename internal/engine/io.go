package engine

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ioBatchRows is the cancellation granularity of the context-aware
// readers: one ctx poll per this many rows, so a canceled load unwinds
// within a batch without putting a branch on every row's hot path. It
// matches the engine's zone-block size so load and scan share one
// latency story.
const ioBatchRows = 4096

// magic identifies the binary table format; version follows it.
var magic = [4]byte{'A', 'Q', 'P', 'T'}

const formatVersion = 1

// WriteBinary serializes the table to w in a compact little-endian binary
// format (the on-disk layout a column store would use for samples and
// cubes).
//
// Deprecated: the AQPT stream is the legacy row-batch format, kept for
// samples embedded in store containers and for old files. New table
// persistence should use the block-structured store format
// (internal/store, aqppp.SaveStore); convert old files once with
// `aqppp-gen -convert`.
func (t *Table) WriteBinary(w io.Writer) error {
	if t.Backed() {
		return fmt.Errorf("engine: table %q is backend-served; persist it with the store format", t.Name)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := writeUvarint(bw, formatVersion); err != nil {
		return err
	}
	if err := writeString(bw, t.Name); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(len(t.Columns))); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(t.NumRows())); err != nil {
		return err
	}
	for _, c := range t.Columns {
		if err := writeColumn(bw, c); err != nil {
			return fmt.Errorf("engine: write column %q: %w", c.Name, err)
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a table previously written with WriteBinary.
func ReadBinary(r io.Reader) (*Table, error) {
	return ReadBinaryContext(context.Background(), r)
}

// ReadBinaryContext is ReadBinary with cancellation: the reader checks
// ctx once per row batch (ioBatchRows rows) inside each column, so a
// canceled context unwinds a large load within one batch. The returned
// error is ctx.Err() when the cancel landed mid-load.
func ReadBinaryContext(ctx context.Context, r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("engine: bad magic %q", m)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("engine: unsupported format version %d", ver)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	nrows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, byName: make(map[string]int)}
	for i := uint64(0); i < ncols; i++ {
		c, err := readColumn(ctx, br, int(nrows))
		if err != nil {
			return nil, fmt.Errorf("engine: read column %d: %w", i, err)
		}
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func writeColumn(w *bufio.Writer, c *Column) error {
	if err := writeString(w, c.Name); err != nil {
		return err
	}
	if err := w.WriteByte(byte(c.Type)); err != nil {
		return err
	}
	var buf [8]byte
	switch c.Type {
	case Int64:
		for _, v := range c.Ints {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	case Float64:
		for _, v := range c.Floats {
			binary.LittleEndian.PutUint64(buf[:], mathFloat64bits(v))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	case String:
		if err := writeUvarint(w, uint64(len(c.Dict))); err != nil {
			return err
		}
		for _, s := range c.Dict {
			if err := writeString(w, s); err != nil {
				return err
			}
		}
		for _, code := range c.Codes {
			binary.LittleEndian.PutUint32(buf[:4], uint32(code))
			if _, err := w.Write(buf[:4]); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown column type %v", c.Type)
	}
	return nil
}

func readColumn(ctx context.Context, r *bufio.Reader, nrows int) (*Column, error) {
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	tb, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	c := &Column{Name: name, Type: ColType(tb)}
	var buf [8]byte
	switch c.Type {
	case Int64:
		c.Ints = make([]int64, nrows)
		for i := range c.Ints {
			if i&(ioBatchRows-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return nil, err
			}
			c.Ints[i] = int64(binary.LittleEndian.Uint64(buf[:]))
		}
	case Float64:
		c.Floats = make([]float64, nrows)
		for i := range c.Floats {
			if i&(ioBatchRows-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return nil, err
			}
			c.Floats[i] = mathFloat64frombits(binary.LittleEndian.Uint64(buf[:]))
		}
	case String:
		ndict, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		c.Dict = make([]string, ndict)
		for i := range c.Dict {
			if c.Dict[i], err = readString(r); err != nil {
				return nil, err
			}
		}
		c.Codes = make([]int32, nrows)
		for i := range c.Codes {
			if i&(ioBatchRows-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if _, err := io.ReadFull(r, buf[:4]); err != nil {
				return nil, err
			}
			c.Codes[i] = int32(binary.LittleEndian.Uint32(buf[:4]))
			if int(c.Codes[i]) >= len(c.Dict) || c.Codes[i] < 0 {
				return nil, fmt.Errorf("dictionary code %d out of range", c.Codes[i])
			}
		}
	default:
		return nil, fmt.Errorf("unknown column type byte %d", tb)
	}
	return c, nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("string length %d too large", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// WriteCSV writes the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, len(t.Columns))
	for i := 0; i < t.NumRows(); i++ {
		for j, c := range t.Columns {
			rec[j] = c.StringAt(i)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a CSV with a header row into a table, inferring column
// types from the first data row: int64 if it parses as an integer, float64
// if it parses as a float, else string. An empty file yields an error.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	return ReadCSVContext(context.Background(), name, r)
}

// ReadCSVContext is ReadCSV with cancellation: both the record-reading
// loop and the per-column parse loops check ctx once per row batch
// (ioBatchRows rows), so a canceled context unwinds a large load within
// one batch. The returned error is ctx.Err() when the cancel landed
// mid-load.
func ReadCSVContext(ctx context.Context, name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("engine: read CSV header: %w", err)
	}
	var records [][]string
	for {
		if len(records)&(ioBatchRows-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		records = append(records, rec)
	}
	types := make([]ColType, len(header))
	for j := range header {
		types[j] = String
		if len(records) > 0 {
			v := records[0][j]
			if _, err := strconv.ParseInt(v, 10, 64); err == nil {
				types[j] = Int64
			} else if _, err := strconv.ParseFloat(v, 64); err == nil {
				types[j] = Float64
			}
		}
	}
	cols := make([]*Column, len(header))
	for j, h := range header {
		switch types[j] {
		case Int64:
			vals := make([]int64, len(records))
			for i, rec := range records {
				if i&(ioBatchRows-1) == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				v, err := strconv.ParseInt(rec[j], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("engine: row %d column %q: %w", i, h, err)
				}
				vals[i] = v
			}
			cols[j] = NewIntColumn(h, vals)
		case Float64:
			vals := make([]float64, len(records))
			for i, rec := range records {
				if i&(ioBatchRows-1) == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				v, err := strconv.ParseFloat(rec[j], 64)
				if err != nil {
					return nil, fmt.Errorf("engine: row %d column %q: %w", i, h, err)
				}
				vals[i] = v
			}
			cols[j] = NewFloatColumn(h, vals)
		default:
			vals := make([]string, len(records))
			for i, rec := range records {
				vals[i] = rec[j]
			}
			cols[j] = NewStringColumn(h, vals)
		}
	}
	return NewTable(name, cols...)
}
