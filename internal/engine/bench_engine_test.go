package engine

import (
	"testing"

	"aqppp/internal/stats"
)

// benchEngineTable builds the microbenchmark fixture: 1M rows with a
// clustered int column (sorted, so zone maps skip aggressively), a
// shuffled int column (zones never skip), a float measure, a low-card
// string dimension and a small-domain int dimension.
func benchEngineTable(n int) *Table {
	r := stats.NewRNG(0xbe7c)
	clustered := make([]int64, n)
	shuffled := make([]int64, n)
	v := make([]float64, n)
	cat := make([]string, n)
	bucket := make([]int64, n)
	cats := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
	for i := 0; i < n; i++ {
		clustered[i] = int64(i)
		shuffled[i] = int64(r.Intn(n))
		v[i] = r.NormFloat64() * 100
		cat[i] = cats[r.Intn(len(cats))]
		bucket[i] = int64(r.Intn(16))
	}
	return MustNewTable("bench",
		NewIntColumn("clustered", clustered),
		NewIntColumn("shuffled", shuffled),
		NewFloatColumn("v", v),
		NewStringColumn("cat", cat),
		NewIntColumn("bucket", bucket),
	)
}

const benchRows = 1 << 20

// selectiveRange covers ~2% of the fixture's row domain.
func selectiveRange(col string) []Range {
	return []Range{{Col: col, Lo: benchRows / 2, Hi: benchRows/2 + benchRows/50}}
}

func benchFilter(b *testing.B, col string) {
	tbl := benchEngineTable(benchRows)
	rng := selectiveRange(col)
	if _, err := tbl.Filter(rng); err != nil { // warm zone maps
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Filter(rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineFilterClustered(b *testing.B) { benchFilter(b, "clustered") }
func BenchmarkEngineFilterShuffled(b *testing.B)  { benchFilter(b, "shuffled") }

func benchExecute(b *testing.B, q Query) {
	tbl := benchEngineTable(benchRows)
	if _, err := tbl.Execute(q); err != nil { // warm caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineFusedSumClustered(b *testing.B) {
	benchExecute(b, Query{Func: Sum, Col: "v", Ranges: selectiveRange("clustered")})
}

func BenchmarkEngineFusedSumShuffled(b *testing.B) {
	benchExecute(b, Query{Func: Sum, Col: "v", Ranges: selectiveRange("shuffled")})
}

func BenchmarkEngineFusedSumFull(b *testing.B) {
	benchExecute(b, Query{Func: Sum, Col: "v"})
}

func BenchmarkEngineMultiRangeCount(b *testing.B) {
	benchExecute(b, Query{Func: Count, Ranges: []Range{
		{Col: "clustered", Lo: 0, Hi: benchRows / 2},
		{Col: "shuffled", Lo: 0, Hi: benchRows / 2},
	}})
}

func BenchmarkEngineGroupByString(b *testing.B) {
	benchExecute(b, Query{Func: Sum, Col: "v", GroupBy: []string{"cat"}})
}

func BenchmarkEngineGroupByInt(b *testing.B) {
	benchExecute(b, Query{Func: Sum, Col: "v", GroupBy: []string{"bucket"}})
}

func BenchmarkEngineGroupByFiltered(b *testing.B) {
	benchExecute(b, Query{
		Func: Sum, Col: "v",
		Ranges:  []Range{{Col: "clustered", Lo: 0, Hi: benchRows / 4}},
		GroupBy: []string{"cat"},
	})
}

func BenchmarkEngineGroupByParallel(b *testing.B) {
	tbl := benchEngineTable(benchRows)
	q := Query{Func: Sum, Col: "v", GroupBy: []string{"cat"}}
	if _, err := tbl.ExecuteParallel(q, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.ExecuteParallel(q, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineParallelSum measures the parallel scalar path end to end.
func BenchmarkEngineParallelSum(b *testing.B) {
	tbl := benchEngineTable(benchRows)
	q := Query{Func: Sum, Col: "v", Ranges: selectiveRange("shuffled")}
	if _, err := tbl.ExecuteParallel(q, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.ExecuteParallel(q, 0); err != nil {
			b.Fatal(err)
		}
	}
}
