package engine

import "fmt"

// This file is the engine's pluggable-storage seam. The scan/aggregate
// layer (kernels.go) reads column data one zone block at a time; Backend
// and ColumnSource expose exactly that surface — column metadata,
// per-block zone summaries, and typed block reads into reusable buffers —
// so the vectorized kernels, skip/full/straddle classification, and
// everything above them (exec Plan IR, shard coordinator, AQP++ layers)
// run unchanged whether a column's rows live in a resident slice or
// behind a block cache over an on-disk file (internal/store).
//
// A backend-bound table is produced by OpenBackend: its columns carry a
// ColumnSource instead of data slices, zone maps come from the source's
// persisted summaries instead of a build scan, and every block the zone
// maps prune is never requested from the source at all.

// BlockBuf is a typed block of column values. It serves two roles:
//
//   - as the view returned by ColumnSource.ReadBlock: exactly one slice
//     is populated, matching the column type, holding the rows of one
//     zone block (block-local indexing, row 0 = first row of the block);
//   - as the reusable decode target passed to ReadBlock: a source that
//     materializes blocks on every call may decode into the buffer's
//     slices (growing them as needed) to avoid per-block allocation.
//
// Sources that cache decoded blocks (internal/store) ignore the buffer
// and return shared immutable views; callers must therefore never write
// through a returned view.
type BlockBuf struct {
	Ints   []int64
	Floats []float64
	Codes  []int32
}

// ColumnSource supplies one column's rows block-at-a-time. Implementations
// must be safe for concurrent ReadBlock calls (parallel workers share a
// table), except that a single *BlockBuf must not be passed from two
// goroutines at once — each worker owns its buffers.
type ColumnSource interface {
	// ReadBlock returns the rows of zone block b (rows
	// [b*4096, min((b+1)*4096, NumRows))) as a typed view. buf may be
	// nil; when non-nil the source may use it as the decode target. The
	// returned view stays valid until the next ReadBlock call with the
	// same buf (cached sources return views that stay valid forever).
	ReadBlock(b int, buf *BlockBuf) (BlockBuf, error)

	// BlockZones returns the column's per-block [min, max] ordinal
	// summaries — exact bounds over each block's rows, in the same
	// ordinal space as Column.Ordinal (numeric value, or lexicographic
	// dictionary rank for strings). len(mins) == len(maxs) == number of
	// blocks. The engine uses these for skip/full/straddle classification
	// without reading any block data, so they must be available without
	// I/O beyond what Open already did.
	BlockZones() (mins, maxs []float64)
}

// IntBoundsSource is an optional ColumnSource extension for Int64
// columns: exact int64 min/max over all rows. The group-by planner needs
// exact integer bounds to size a slice-indexed group table (float zone
// summaries round beyond 2^53); sources that do not implement it fall
// back to the map-based group path, which is always correct.
type IntBoundsSource interface {
	IntBounds() (lo, hi int64, ok bool)
}

// Backend is the narrow storage surface a table can be served from:
// schema, row count, resident dictionaries, and one ColumnSource per
// column. Implementations must keep all metadata resident — the engine
// consults schema, dictionaries and zone summaries at plan time and
// expects no I/O there.
type Backend interface {
	TableName() string
	Schema() Schema
	NumRows() int
	// Dict returns the dictionary for String column i (nil otherwise).
	// Dictionaries stay fully resident: rank tables, SQL literal
	// binding, and group keys all read them directly.
	Dict(col int) []string
	// Source returns the block source for column i.
	Source(col int) ColumnSource
}

// OpenBackend binds a Backend into a *Table whose columns fault blocks
// from the backend on demand. The returned table supports the full read
// surface (Execute, Filter, group-by, joins, row accessors) but is
// immutable: AppendRow fails. No block data is read here — only
// metadata, so opening is O(schema).
func OpenBackend(b Backend) (*Table, error) {
	s := b.Schema()
	if len(s.Names) != len(s.Types) {
		return nil, fmt.Errorf("engine: backend %q schema has %d names but %d types",
			b.TableName(), len(s.Names), len(s.Types))
	}
	n := b.NumRows()
	t := &Table{Name: b.TableName(), byName: make(map[string]int, len(s.Names))}
	for i, name := range s.Names {
		c := &Column{Name: name, Type: s.Types[i], src: b.Source(i), srcRows: n}
		if c.src == nil {
			return nil, fmt.Errorf("engine: backend %q has no source for column %q", b.TableName(), name)
		}
		if s.Types[i] == String {
			c.Dict = b.Dict(i)
		}
		nb := (n + zoneBlockSize - 1) / zoneBlockSize
		if mins, maxs := c.src.BlockZones(); len(mins) != nb || len(maxs) != nb {
			return nil, fmt.Errorf("engine: backend %q column %q has %d zone entries for %d blocks",
				b.TableName(), name, len(mins), nb)
		}
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Backed reports whether any of the table's columns is served by a
// ColumnSource (i.e. the table came from OpenBackend). Backed tables are
// immutable and must not be written with WriteBinary.
func (t *Table) Backed() bool {
	for _, c := range t.Columns {
		if c.src != nil {
			return true
		}
	}
	return false
}

// view returns the typed values of zone block b. Resident columns
// subslice their data arrays (zero cost); source-backed columns fault
// the block through the ColumnSource, using buf as the decode target
// when the source wants one.
func (c *Column) view(b int, buf *BlockBuf) (BlockBuf, error) {
	if c.src != nil {
		return c.src.ReadBlock(b, buf)
	}
	lo := b * zoneBlockSize
	hi := lo + zoneBlockSize
	if n := c.Len(); hi > n {
		hi = n
	}
	switch c.Type {
	case Int64:
		return BlockBuf{Ints: c.Ints[lo:hi]}, nil
	case Float64:
		return BlockBuf{Floats: c.Floats[lo:hi]}, nil
	default:
		return BlockBuf{Codes: c.Codes[lo:hi]}, nil
	}
}

// sourceBlock is the row-at-a-time fallback fetch: Ordinal, StringAt,
// Gather and friends have no error return, so a source failure here is
// a panic. Scan paths (Execute, Filter) never take this route — they
// propagate I/O errors properly; the row accessors are used by
// prepare-time code (sampling, cube construction, sorting) where a
// failing store is unrecoverable anyway. Sources cache decoded blocks,
// so sequential row access costs one fault per 4096 rows.
func (c *Column) sourceBlock(row int) (BlockBuf, int) {
	v, err := c.src.ReadBlock(row/zoneBlockSize, nil)
	if err != nil {
		panic(fmt.Sprintf("engine: column %q: reading block %d: %v", c.Name, row/zoneBlockSize, err))
	}
	return v, row % zoneBlockSize
}

// intAt returns row's Int64 value regardless of backing.
func (c *Column) intAt(row int) int64 {
	if c.src == nil {
		return c.Ints[row]
	}
	v, i := c.sourceBlock(row)
	return v.Ints[i]
}

// floatAt returns row's Float64 value regardless of backing.
func (c *Column) floatAt(row int) float64 {
	if c.src == nil {
		return c.Floats[row]
	}
	v, i := c.sourceBlock(row)
	return v.Floats[i]
}

// codeAt returns row's dictionary code regardless of backing.
func (c *Column) codeAt(row int) int32 {
	if c.src == nil {
		return c.Codes[row]
	}
	v, i := c.sourceBlock(row)
	return v.Codes[i]
}

// intBounds returns the exact int64 [min, max] of an Int64 column, used
// to size direct-indexed group tables. Resident columns scan; backed
// columns ask the source (ok=false when the source cannot answer
// exactly, which routes the group-by to the map fallback).
func (c *Column) intBounds() (lo, hi int64, ok bool) {
	if c.src != nil {
		if s, isb := c.src.(IntBoundsSource); isb {
			return s.IntBounds()
		}
		return 0, 0, false
	}
	if len(c.Ints) == 0 {
		return 0, 0, false
	}
	lo, hi = c.Ints[0], c.Ints[0]
	for _, v := range c.Ints[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, true
}
