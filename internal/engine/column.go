// Package engine is an in-memory columnar OLAP engine: typed columns,
// tables, vectorized range predicates, exact aggregation (with group-by),
// and binary/CSV persistence.
//
// It plays the role of the commercial column-store ("DBX") that the AQP++
// paper runs on: the AQP++ layers above only need filtered scans, exact
// aggregates for cube construction and ground truth, and a place to store
// samples as tables.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ColType enumerates the supported column types.
type ColType uint8

const (
	// Int64 is a 64-bit signed integer column.
	Int64 ColType = iota
	// Float64 is a 64-bit float column.
	Float64
	// String is a dictionary-encoded string column. Its ordinal order is
	// lexicographic, matching the paper's footnote 3 ("if C does not have
	// a natural ordering, we use an alphabetical ordering").
	String
)

// String implements fmt.Stringer.
func (t ColType) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// Column is a single typed column. Exactly one of the data slices is
// populated, according to Type. Strings are dictionary-encoded: Codes
// holds per-row dictionary indices into Dict.
type Column struct {
	Name string
	Type ColType

	Ints   []int64
	Floats []float64
	Codes  []int32
	Dict   []string

	dictIndex map[string]int32

	// src, when non-nil, serves the column's rows block-at-a-time from a
	// Backend (see backend.go) and the data slices above stay empty;
	// srcRows is then the row count. Source-backed columns are immutable.
	src     ColumnSource
	srcRows int

	// domLo/domHi, when hasDom is set, override OrdinalDomain with an
	// externally supplied bound: a schema-only column (see
	// NewSchemaColumn) holds no rows but must still answer plan-time
	// domain queries for data that lives elsewhere.
	domLo, domHi float64
	hasDom       bool

	// The rank table (code → lexicographic rank) and zone map (per-block
	// min/max) are derived caches, built lazily on first use and rebuilt
	// after appends. Both are published through atomic pointers with
	// lazyMu serializing builds, so concurrent readers (Filter/Execute on
	// a shared table) are race-free even when the caches are cold.
	// Appends still require external synchronization against readers:
	// only the caches are concurrency-safe, not the data slices.
	lazyMu sync.Mutex
	rankP  atomic.Pointer[rankTable]
	zoneP  atomic.Pointer[zoneMap]
}

// rankTable snapshots the code→rank mapping for one dictionary length;
// a stale snapshot (dictionary grew) is detected by dictLen and rebuilt.
type rankTable struct {
	dictLen int
	rank    []int32
}

// NewIntColumn creates an Int64 column with the given values.
func NewIntColumn(name string, vals []int64) *Column {
	return &Column{Name: name, Type: Int64, Ints: vals}
}

// NewSchemaColumn creates a zero-row column that still answers
// plan-time questions — type, dictionary ranks, and OrdinalDomain —
// for data that lives elsewhere (a remote replica fleet). lo/hi is the
// inclusive ordinal domain of the remote data; dict, for String
// columns, must be the remote dictionary verbatim so literal ranks
// resolve identically on both sides.
func NewSchemaColumn(name string, typ ColType, dict []string, lo, hi float64) *Column {
	return &Column{Name: name, Type: typ, Dict: dict, domLo: lo, domHi: hi, hasDom: true}
}

// NewFloatColumn creates a Float64 column with the given values.
func NewFloatColumn(name string, vals []float64) *Column {
	return &Column{Name: name, Type: Float64, Floats: vals}
}

// NewStringColumn creates a dictionary-encoded String column from raw
// values.
func NewStringColumn(name string, vals []string) *Column {
	c := &Column{Name: name, Type: String, dictIndex: make(map[string]int32)}
	for _, v := range vals {
		c.appendString(v)
	}
	return c
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	if c.src != nil {
		return c.srcRows
	}
	switch c.Type {
	case Int64:
		return len(c.Ints)
	case Float64:
		return len(c.Floats)
	default:
		return len(c.Codes)
	}
}

func (c *Column) appendString(v string) {
	if c.dictIndex == nil {
		c.dictIndex = make(map[string]int32, len(c.Dict))
		for i, s := range c.Dict {
			c.dictIndex[s] = int32(i)
		}
	}
	code, ok := c.dictIndex[v]
	if !ok {
		code = int32(len(c.Dict))
		c.Dict = append(c.Dict, v)
		c.dictIndex[v] = code
		c.rankP.Store(nil) // invalidate rank cache
	}
	c.Codes = append(c.Codes, code)
}

// ranks returns the code→lexicographic-rank table, rebuilding it if the
// dictionary changed since the last call. Concurrent callers are safe:
// the build is serialized under lazyMu and published atomically, so two
// goroutines filtering a cold shared column race neither on the build
// nor on the publication.
func (c *Column) ranks() []int32 {
	if rt := c.rankP.Load(); rt != nil && rt.dictLen == len(c.Dict) {
		return rt.rank
	}
	c.lazyMu.Lock()
	defer c.lazyMu.Unlock()
	if rt := c.rankP.Load(); rt != nil && rt.dictLen == len(c.Dict) {
		return rt.rank
	}
	order := make([]int32, len(c.Dict))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return c.Dict[order[i]] < c.Dict[order[j]] })
	rank := make([]int32, len(c.Dict))
	for r, code := range order {
		rank[code] = int32(r)
	}
	c.rankP.Store(&rankTable{dictLen: len(c.Dict), rank: rank})
	return rank
}

// warmOrdinals forces the lazy rank cache so that subsequent Ordinal
// calls hit the published snapshot. Lazy builds are race-safe either
// way; warming before fanning out just keeps workers from serializing
// on the build mutex.
func (c *Column) warmOrdinals() {
	if c.Type == String {
		c.ranks()
	}
}

// Ordinal returns the row's value mapped onto a totally ordered numeric
// axis: the value itself for numeric columns, and the lexicographic rank
// (0-based) for string columns. Every condition attribute in the AQP++
// layers is addressed through this ordinal view.
func (c *Column) Ordinal(row int) float64 {
	switch c.Type {
	case Int64:
		return float64(c.intAt(row))
	case Float64:
		return c.floatAt(row)
	default:
		return float64(c.ranks()[c.codeAt(row)])
	}
}

// Float returns the row's numeric value; for string columns it is the
// ordinal. Aggregation attributes use this accessor.
func (c *Column) Float(row int) float64 { return c.Ordinal(row) }

// StringAt returns the row's string value; for numeric columns it formats
// the number.
func (c *Column) StringAt(row int) string {
	switch c.Type {
	case Int64:
		return fmt.Sprintf("%d", c.intAt(row))
	case Float64:
		return fmt.Sprintf("%g", c.floatAt(row))
	default:
		return c.Dict[c.codeAt(row)]
	}
}

// OrdinalDomain returns the inclusive [min, max] ordinal range present in
// the column, or (0, -1) for an empty column.
func (c *Column) OrdinalDomain() (float64, float64) {
	if c.hasDom {
		return c.domLo, c.domHi
	}
	n := c.Len()
	if n == 0 {
		return 0, -1
	}
	if c.Type == String {
		return 0, float64(len(c.Dict) - 1)
	}
	if c.src != nil {
		// Source-backed columns answer from the persisted per-block zone
		// summaries — exact per-block min/max of the same ordinals the
		// resident scan below would visit — so plan-time domain queries
		// (SQL unbounded range sides) fault no block data.
		mins, maxs := c.src.BlockZones()
		lo, hi := mins[0], maxs[0]
		for b := 1; b < len(mins); b++ {
			if mins[b] < lo {
				lo = mins[b]
			}
			if maxs[b] > hi {
				hi = maxs[b]
			}
		}
		return lo, hi
	}
	lo, hi := c.Ordinal(0), c.Ordinal(0)
	for i := 1; i < n; i++ {
		v := c.Ordinal(i)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Gather returns a new column containing the rows of c at the given
// indices, in order. Dictionary columns share the dictionary.
func (c *Column) Gather(idx []int) *Column {
	out := &Column{Name: c.Name, Type: c.Type}
	switch c.Type {
	case Int64:
		out.Ints = make([]int64, len(idx))
		for i, r := range idx {
			out.Ints[i] = c.intAt(r)
		}
	case Float64:
		out.Floats = make([]float64, len(idx))
		for i, r := range idx {
			out.Floats[i] = c.floatAt(r)
		}
	default:
		out.Dict = c.Dict
		out.Codes = make([]int32, len(idx))
		for i, r := range idx {
			out.Codes[i] = c.codeAt(r)
		}
	}
	return out
}

// AppendFrom appends row r of src (a column of the same type) to c.
func (c *Column) AppendFrom(src *Column, r int) {
	if c.Type != src.Type {
		panic("engine: AppendFrom type mismatch")
	}
	switch c.Type {
	case Int64:
		c.Ints = append(c.Ints, src.intAt(r))
	case Float64:
		c.Floats = append(c.Floats, src.floatAt(r))
	default:
		c.appendString(src.Dict[src.codeAt(r)])
	}
}
