package engine

import (
	"fmt"
	"sort"
)

// Table is a named collection of equal-length columns.
type Table struct {
	Name    string
	Columns []*Column
	byName  map[string]int
}

// NewTable creates a table from columns. All columns must have the same
// length and distinct names.
func NewTable(name string, cols ...*Column) (*Table, error) {
	t := &Table{Name: name, byName: make(map[string]int, len(cols))}
	for _, c := range cols {
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustNewTable is NewTable that panics on error; for tests and generators
// with statically correct schemas.
func MustNewTable(name string, cols ...*Column) *Table {
	t, err := NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// AddColumn appends a column to the table's schema.
func (t *Table) AddColumn(c *Column) error {
	if _, dup := t.byName[c.Name]; dup {
		return fmt.Errorf("engine: duplicate column %q in table %q", c.Name, t.Name)
	}
	if len(t.Columns) > 0 && c.Len() != t.NumRows() {
		return fmt.Errorf("engine: column %q has %d rows, table %q has %d",
			c.Name, c.Len(), t.Name, t.NumRows())
	}
	if t.byName == nil {
		t.byName = make(map[string]int)
	}
	t.byName[c.Name] = len(t.Columns)
	t.Columns = append(t.Columns, c)
	return nil
}

// NumRows returns the row count (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Columns) }

// Column returns the column with the given name, or an error naming the
// table for diagnostics.
func (t *Table) Column(name string) (*Column, error) {
	i, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("engine: no column %q in table %q", name, t.Name)
	}
	return t.Columns[i], nil
}

// MustColumn is Column that panics on missing columns.
func (t *Table) MustColumn(name string) *Column {
	c, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// ColumnNames returns the schema's column names in order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// Gather returns a new table with the rows at idx, in order.
func (t *Table) Gather(name string, idx []int) *Table {
	cols := make([]*Column, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = c.Gather(idx)
	}
	out, err := NewTable(name, cols...)
	if err != nil {
		panic(err) // gather preserves schema invariants
	}
	return out
}

// SortedIndexByOrdinal returns row indices sorted ascending by the ordinal
// value of the named column (ties broken by row index, making the order
// deterministic). The AQP++ precomputation layer uses this to view the
// aggregation attribute "ordered by C".
func (t *Table) SortedIndexByOrdinal(col string) ([]int, error) {
	c, err := t.Column(col)
	if err != nil {
		return nil, err
	}
	n := t.NumRows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return c.Ordinal(idx[a]) < c.Ordinal(idx[b])
	})
	return idx, nil
}

// Schema describes a table's column names and types; used by persistence
// and the SQL layer.
type Schema struct {
	Names []string
	Types []ColType
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema {
	s := Schema{Names: make([]string, len(t.Columns)), Types: make([]ColType, len(t.Columns))}
	for i, c := range t.Columns {
		s.Names[i] = c.Name
		s.Types[i] = c.Type
	}
	return s
}

// SizeBytes estimates the in-memory footprint of the table's data arrays;
// used for the paper's preprocessing-space accounting (Table 1).
func (t *Table) SizeBytes() int64 {
	var total int64
	for _, c := range t.Columns {
		switch c.Type {
		case Int64:
			total += int64(len(c.Ints)) * 8
		case Float64:
			total += int64(len(c.Floats)) * 8
		default:
			total += int64(len(c.Codes)) * 4
			for _, s := range c.Dict {
				total += int64(len(s))
			}
		}
	}
	return total
}
