package engine

// Zone maps: per-block [min, max] summaries of a column's ordinals that
// let range filters skip whole blocks without touching row data — the
// standard column-store trick (small materialized aggregates / data
// skipping). They are built lazily on first filtered scan and invalidated
// by appends.

// zoneBlockSize is the number of rows summarized per zone. 4096 rows per
// zone keeps the map tiny (~0.02% of column size) while skipping
// effectively on clustered data.
const zoneBlockSize = 4096

// zoneMap summarizes one column.
type zoneMap struct {
	mins, maxs []float64
	rows       int
}

func (c *Column) invalidateZoneMap() { c.zones = nil }

// zonesFor returns the column's zone map, building it if stale.
func (c *Column) zonesFor() *zoneMap {
	n := c.Len()
	if c.zones != nil && c.zones.rows == n {
		return c.zones
	}
	nb := (n + zoneBlockSize - 1) / zoneBlockSize
	z := &zoneMap{
		mins: make([]float64, nb),
		maxs: make([]float64, nb),
		rows: n,
	}
	for b := 0; b < nb; b++ {
		lo := b * zoneBlockSize
		hi := lo + zoneBlockSize
		if hi > n {
			hi = n
		}
		mn := c.Ordinal(lo)
		mx := mn
		for i := lo + 1; i < hi; i++ {
			v := c.Ordinal(i)
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		z.mins[b] = mn
		z.maxs[b] = mx
	}
	c.zones = z
	return z
}

// applyRangeZoned is applyRange with block skipping: blocks entirely
// outside [r.Lo, r.Hi] are skipped; blocks entirely inside are set
// wholesale; straddling blocks fall back to the per-row test.
func applyRangeZoned(c *Column, r Range, out *Bitset) {
	n := c.Len()
	if n < 2*zoneBlockSize {
		applyRange(c, r, out)
		return
	}
	z := c.zonesFor()
	for b := range z.mins {
		lo := b * zoneBlockSize
		hi := lo + zoneBlockSize
		if hi > n {
			hi = n
		}
		if z.maxs[b] < r.Lo || z.mins[b] > r.Hi {
			continue // block disjoint from the range
		}
		if z.mins[b] >= r.Lo && z.maxs[b] <= r.Hi {
			for i := lo; i < hi; i++ {
				out.Set(i)
			}
			continue
		}
		applyRangeRows(c, r, out, lo, hi)
	}
}

// applyRangeRows tests rows [lo, hi) individually.
func applyRangeRows(c *Column, r Range, out *Bitset, lo, hi int) {
	switch c.Type {
	case Int64:
		for i := lo; i < hi; i++ {
			f := float64(c.Ints[i])
			if f >= r.Lo && f <= r.Hi {
				out.Set(i)
			}
		}
	case Float64:
		for i := lo; i < hi; i++ {
			v := c.Floats[i]
			if v >= r.Lo && v <= r.Hi {
				out.Set(i)
			}
		}
	default:
		ranks := c.ranks()
		for i := lo; i < hi; i++ {
			f := float64(ranks[c.Codes[i]])
			if f >= r.Lo && f <= r.Hi {
				out.Set(i)
			}
		}
	}
}
