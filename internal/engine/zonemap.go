package engine

// Zone maps: per-block [min, max] summaries of a column's ordinals that
// let range filters skip whole blocks without touching row data — the
// standard column-store trick (small materialized aggregates / data
// skipping). They are built lazily on first filtered scan and invalidated
// by appends. The block size doubles as the engine's vectorization unit:
// the kernels in kernels.go process one zone block at a time, so a block
// classification (skip / full / straddle) maps directly onto a kernel
// choice.

// zoneBlockSize is the number of rows summarized per zone. 4096 rows per
// zone keeps the map tiny (~0.02% of column size) while skipping
// effectively on clustered data. It must stay a multiple of 64 so block
// boundaries are Bitset word boundaries and compare kernels can store
// whole words.
const zoneBlockSize = 4096

// blockWords is the number of Bitset words covering one zone block.
const blockWords = zoneBlockSize / 64

// zoneMap summarizes one column.
type zoneMap struct {
	mins, maxs []float64
	rows       int
}

func (c *Column) invalidateZoneMap() { c.zoneP.Store(nil) }

// zonesFor returns the column's zone map, building it if stale. Like
// ranks, the lazy build is race-safe: concurrent Filter calls on a
// shared table with a cold zone map serialize the build under lazyMu
// and read the atomically published result.
func (c *Column) zonesFor() *zoneMap {
	n := c.Len()
	if z := c.zoneP.Load(); z != nil && z.rows == n {
		return z
	}
	if c.src != nil {
		// Source-backed columns never scan: the source persisted exact
		// per-block summaries, so "building" the zone map is a metadata
		// copy. Racing stores publish identical content.
		mins, maxs := c.src.BlockZones()
		z := &zoneMap{mins: mins, maxs: maxs, rows: n}
		c.zoneP.Store(z)
		return z
	}
	// The build below reads ordinals, which for string columns consult
	// the rank table. Build that table first, outside the lock: ranks()
	// takes lazyMu itself and re-entering would deadlock.
	c.warmOrdinals()
	c.lazyMu.Lock()
	defer c.lazyMu.Unlock()
	if z := c.zoneP.Load(); z != nil && z.rows == n {
		return z
	}
	nb := (n + zoneBlockSize - 1) / zoneBlockSize
	z := &zoneMap{
		mins: make([]float64, nb),
		maxs: make([]float64, nb),
		rows: n,
	}
	for b := 0; b < nb; b++ {
		lo := b * zoneBlockSize
		hi := lo + zoneBlockSize
		if hi > n {
			hi = n
		}
		mn := c.Ordinal(lo)
		mx := mn
		for i := lo + 1; i < hi; i++ {
			v := c.Ordinal(i)
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		z.mins[b] = mn
		z.maxs[b] = mx
	}
	c.zoneP.Store(z)
	return z
}

// useZones reports whether the column is large enough for zone-mapped
// scans; below the threshold the map overhead outweighs the skipping.
// Source-backed columns always use zones: their summaries are free
// (persisted) and pruning saves real I/O, not just compares.
func (c *Column) useZones() bool { return c.src != nil || c.Len() >= 2*zoneBlockSize }

// blockClass is the zone-map classification of one block against one
// range: the fused kernels dispatch on it directly.
type blockClass uint8

const (
	// blockSkip: the block is disjoint from the range; no row can match.
	blockSkip blockClass = iota
	// blockFull: the block lies entirely inside the range; every row
	// matches and the per-row test is unnecessary.
	blockFull
	// blockStraddle: the block overlaps the range boundary; rows must be
	// tested individually (by a compare kernel).
	blockStraddle
)

// classify compares block b's summary against [lo, hi].
func (z *zoneMap) classify(b int, lo, hi float64) blockClass {
	if z.maxs[b] < lo || z.mins[b] > hi {
		return blockSkip
	}
	if z.mins[b] >= lo && z.maxs[b] <= hi {
		return blockFull
	}
	return blockStraddle
}

// applyRangeZoned is applyRange with block skipping: skipped blocks are
// untouched, full blocks are set with word-level stores, and straddling
// blocks run the type-specialized compare kernel. out must be all-zero
// on entry (straddling blocks store whole words rather than OR-ing bits).
func applyRangeZoned(c *Column, r Range, out *Bitset) error {
	n := c.Len()
	if !c.useZones() {
		applyRange(c, r, out)
		return nil
	}
	z := c.zonesFor()
	var ranks []int32
	if c.Type == String {
		ranks = c.ranks()
	}
	var buf BlockBuf
	for b := range z.mins {
		lo := b * zoneBlockSize
		hi := lo + zoneBlockSize
		if hi > n {
			hi = n
		}
		switch z.classify(b, r.Lo, r.Hi) {
		case blockSkip:
		case blockFull:
			out.SetRange(lo, hi)
		default:
			v, err := c.view(b, &buf)
			if err != nil {
				return err
			}
			cmpView(c.Type, v, ranks, r.Lo, r.Hi, hi-lo, out.words[lo>>6:], false)
		}
	}
	return nil
}

// applyRange tests rows [0, n) with the compare kernel (no zone map).
// out must be all-zero on entry. Only resident columns take this path —
// source-backed columns always use zones.
func applyRange(c *Column, r Range, out *Bitset) {
	n := c.Len()
	if n == 0 {
		return
	}
	switch c.Type {
	case Int64:
		cmpInt64(c.Ints, r.Lo, r.Hi, 0, n, out.words, false)
	case Float64:
		cmpFloat64(c.Floats, r.Lo, r.Hi, 0, n, out.words, false)
	default:
		cmpCodes(c.Codes, c.ranks(), r.Lo, r.Hi, 0, n, out.words, false)
	}
}
