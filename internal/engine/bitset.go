package engine

import "math/bits"

// Bitset is a fixed-size dense bitmap used as the selection vector for
// predicate evaluation. Vectorized filters produce a Bitset; aggregation
// consumes it.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an all-zero bitset over n rows.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of rows the bitset covers.
func (b *Bitset) Len() int { return b.n }

// Set marks row i as selected.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear unmarks row i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether row i is selected.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// SetAll selects every row.
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// ClearAll unselects every row, making the bitset reusable as a scratch
// buffer without reallocating.
func (b *Bitset) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// SetRange selects rows [lo, hi) with word-level stores: interior words
// are written wholesale, so selecting a zone-map "full" block touches 64
// rows per instruction instead of one. It panics on an out-of-bounds
// range (programmer error).
func (b *Bitset) SetRange(lo, hi int) {
	if lo >= hi {
		return
	}
	if lo < 0 || hi > b.n {
		panic("engine: Bitset.SetRange out of bounds")
	}
	fw, lw := lo>>6, (hi-1)>>6
	fm := ^uint64(0) << (uint(lo) & 63)
	lm := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if fw == lw {
		b.words[fw] |= fm & lm
		return
	}
	b.words[fw] |= fm
	for w := fw + 1; w < lw; w++ {
		b.words[w] = ^uint64(0)
	}
	b.words[lw] |= lm
}

// trim zeroes the tail bits beyond n in the last word.
func (b *Bitset) trim() {
	if rem := uint(b.n) & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// And intersects o into b in place. The two bitsets must have equal length.
func (b *Bitset) And(o *Bitset) {
	if b.n != o.n {
		panic("engine: Bitset length mismatch in And")
	}
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// AndWords intersects a raw word slice into b in place. The slice must
// have exactly b's word count; block kernels use it to merge per-range
// selections without wrapping scratch buffers in a Bitset.
func (b *Bitset) AndWords(words []uint64) {
	if len(words) != len(b.words) {
		panic("engine: Bitset word-count mismatch in AndWords")
	}
	for i := range b.words {
		b.words[i] &= words[i]
	}
}

// Words exposes the backing word slice (bit i of word w is row w*64+i).
// It is the block-at-a-time read path: hot loops iterate words and peel
// set bits with bits.TrailingZeros64 instead of paying a closure call
// per row through ForEach. Callers must treat the slice as read-only.
func (b *Bitset) Words() []uint64 { return b.words }

// Or unions o into b in place. The two bitsets must have equal length.
func (b *Bitset) Or(o *Bitset) {
	if b.n != o.n {
		panic("engine: Bitset length mismatch in Or")
	}
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// Count returns the number of selected rows.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls f with each selected row index in ascending order.
func (b *Bitset) ForEach(f func(i int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}
