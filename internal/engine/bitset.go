package engine

import "math/bits"

// Bitset is a fixed-size dense bitmap used as the selection vector for
// predicate evaluation. Vectorized filters produce a Bitset; aggregation
// consumes it.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an all-zero bitset over n rows.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of rows the bitset covers.
func (b *Bitset) Len() int { return b.n }

// Set marks row i as selected.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear unmarks row i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether row i is selected.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// SetAll selects every row.
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// trim zeroes the tail bits beyond n in the last word.
func (b *Bitset) trim() {
	if rem := uint(b.n) & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// And intersects o into b in place. The two bitsets must have equal length.
func (b *Bitset) And(o *Bitset) {
	if b.n != o.n {
		panic("engine: Bitset length mismatch in And")
	}
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or unions o into b in place. The two bitsets must have equal length.
func (b *Bitset) Or(o *Bitset) {
	if b.n != o.n {
		panic("engine: Bitset length mismatch in Or")
	}
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// Count returns the number of selected rows.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls f with each selected row index in ascending order.
func (b *Bitset) ForEach(f func(i int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}
