package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	tbl := sampleTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, tbl, got)
}

func TestBinaryRoundTripSpecialFloats(t *testing.T) {
	tbl := MustNewTable("f", NewFloatColumn("v",
		[]float64{0, -0, math.Inf(1), math.Inf(-1), math.NaN(), 1e-300, -1e300}))
	var buf bytes.Buffer
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tbl.MustColumn("v").Floats
	have := got.MustColumn("v").Floats
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(have[i]) {
			t.Errorf("row %d: %v != %v", i, want[i], have[i])
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("XXXXjunk")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	tbl := sampleTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)/2])); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	// Fractional floats so type inference recovers Float64 (integral floats
	// legitimately round-trip as Int64).
	tbl := MustNewTable("sales",
		NewIntColumn("id", []int64{1, 2, 3}),
		NewFloatColumn("amount", []float64{10.5, 20.25, 30.125}),
		NewStringColumn("region", []string{"west", "east", "west"}),
	)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("sales", &buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, tbl, got)
}

func TestCSVTypeInference(t *testing.T) {
	in := "i,f,s\n1,1.5,hello\n2,2.5,world\n"
	tbl, err := ReadCSV("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.Schema()
	if s.Types[0] != Int64 || s.Types[1] != Float64 || s.Types[2] != String {
		t.Errorf("inferred types = %v", s.Types)
	}
}

func TestCSVEmptyFails(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
}

func TestCSVHeaderOnly(t *testing.T) {
	tbl, err := ReadCSV("t", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 || tbl.NumCols() != 2 {
		t.Errorf("shape = %dx%d", tbl.NumRows(), tbl.NumCols())
	}
}

// bigIOTable spans many ioBatchRows batches so a pre-canceled context
// must be observed mid-load, not just at the end.
func bigIOTable(rows int) *Table {
	ints := make([]int64, rows)
	floats := make([]float64, rows)
	strs := make([]string, rows)
	for i := range ints {
		ints[i] = int64(i)
		floats[i] = float64(i) + 0.5
		strs[i] = [3]string{"red", "green", "blue"}[i%3]
	}
	return MustNewTable("big",
		NewIntColumn("i", ints),
		NewFloatColumn("f", floats),
		NewStringColumn("s", strs),
	)
}

func TestBinaryContextCanceled(t *testing.T) {
	tbl := bigIOTable(3 * ioBatchRows)
	var buf bytes.Buffer
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ReadBinaryContext(ctx, &buf); !errors.Is(err, context.Canceled) {
		t.Errorf("ReadBinaryContext with canceled ctx: err = %v, want context.Canceled", err)
	}

	// A background context must load the whole thing unchanged.
	buf.Reset()
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryContext(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, tbl, got)
}

func TestCSVContextCanceled(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("i,f\n")
	for i := 0; i < 3*ioBatchRows; i++ {
		fmt.Fprintf(&sb, "%d,%d.5\n", i, i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ReadCSVContext(ctx, "t", strings.NewReader(sb.String())); !errors.Is(err, context.Canceled) {
		t.Errorf("ReadCSVContext with canceled ctx: err = %v, want context.Canceled", err)
	}
	tbl, err := ReadCSVContext(context.Background(), "t", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3*ioBatchRows {
		t.Errorf("rows = %d, want %d", tbl.NumRows(), 3*ioBatchRows)
	}
}

func assertTablesEqual(t *testing.T, want, got *Table) {
	t.Helper()
	if got.Name != want.Name {
		t.Errorf("name %q != %q", got.Name, want.Name)
	}
	if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
		t.Fatalf("shape %dx%d != %dx%d", got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for j, wc := range want.Columns {
		gc := got.Columns[j]
		if gc.Name != wc.Name || gc.Type != wc.Type {
			t.Fatalf("column %d schema mismatch", j)
		}
		for i := 0; i < want.NumRows(); i++ {
			if gc.StringAt(i) != wc.StringAt(i) {
				t.Errorf("col %q row %d: %q != %q", wc.Name, i, gc.StringAt(i), wc.StringAt(i))
			}
		}
	}
}
