package engine

import "context"

// This file exports mergeable partial aggregates for scatter-gather
// execution (internal/shard). A coordinator runs the same fused block
// kernels as Execute on each horizontal partition, ships back one
// Partial (or one per group), and folds them algebraically: SUM/COUNT
// add, MIN/MAX fold, AVG and VAR finish from the merged (n, sum, sum2)
// moments. Because Partial mirrors the serial accumulator exactly, a
// merge across partitions that preserve row order reproduces the
// unsharded answer bit-for-bit whenever the additions themselves are
// exact (integer-valued data), and to reassociation otherwise.

// Partial is the exported snapshot of one aggregate accumulator. The
// zero value is the identity for Merge: N == 0 means "no rows", and
// Min/Max are only meaningful when N > 0 (matching the engine's
// internal accumulator semantics).
type Partial struct {
	N         int64
	Sum, Sum2 float64
	Min, Max  float64
}

// Merge folds another partial into p. Merging in partition (= row)
// order reproduces the serial fold's associativity pattern.
func (p *Partial) Merge(o Partial) {
	if o.N == 0 {
		return
	}
	if p.N == 0 {
		*p = o
		return
	}
	p.N += o.N
	p.Sum += o.Sum
	p.Sum2 += o.Sum2
	if o.Min < p.Min {
		p.Min = o.Min
	}
	if o.Max > p.Max {
		p.Max = o.Max
	}
}

// Finish produces the final aggregate value, with the same zero-row
// semantics as the serial path (SUM/COUNT/AVG/VAR of nothing are 0;
// MIN/MAX of nothing are 0 too, mirroring aggState).
func (p Partial) Finish(f AggFunc) (float64, error) {
	st := p.state()
	return st.finish(f)
}

func (p Partial) state() aggState {
	return aggState{n: p.N, sum: p.Sum, sum2: p.Sum2, min: p.Min, max: p.Max}
}

func (a aggState) partial() Partial {
	return Partial{N: a.n, Sum: a.sum, Sum2: a.sum2, Min: a.min, Max: a.max}
}

// GroupPartial is one group's key and partial accumulator.
type GroupPartial struct {
	Key string
	Partial
}

// PartialResult carries either a scalar partial or one partial per
// group (first-seen order), mirroring Result.
type PartialResult struct {
	Scalar Partial
	Groups []GroupPartial
}

// ExecutePartial runs the query over the full table but stops short of
// finishing the aggregate, returning the raw mergeable moments instead.
func (t *Table) ExecutePartial(q Query) (PartialResult, error) {
	return t.ExecutePartialContext(context.Background(), q)
}

// ExecutePartialContext is ExecutePartial with cancellation, with the
// same per-zone-block abort granularity as ExecuteContext.
func (t *Table) ExecutePartialContext(ctx context.Context, q Query) (PartialResult, error) {
	e, err := t.newBlockExec(q.Ranges)
	if err != nil {
		return PartialResult{}, err
	}
	release := e.watch(ctx)
	defer release()
	n := t.NumRows()
	if len(q.GroupBy) == 0 {
		var col *Column
		if q.Func != Count {
			col, err = t.Column(q.Col)
			if err != nil {
				return PartialResult{}, err
			}
		}
		st, err := scalarOver(e, col, familyOf(q.Func), 0, n)
		if err != nil {
			return PartialResult{}, err
		}
		if err := ctx.Err(); err != nil {
			return PartialResult{}, err
		}
		return PartialResult{Scalar: st.partial()}, nil
	}
	g, err := newGroupSink(t, q)
	if err != nil {
		return PartialResult{}, err
	}
	if err := e.run(0, n, g.addRange, g.addWords); err != nil {
		return PartialResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return PartialResult{}, err
	}
	return PartialResult{Groups: g.partials()}, nil
}

// partials materializes per-group accumulators in first-seen order,
// rendering keys exactly as rows() would.
func (g *groupSink) partials() []GroupPartial {
	var out []GroupPartial
	switch g.mode {
	case gmMap:
		out = make([]GroupPartial, 0, len(g.morder))
		for _, key := range g.morder {
			out = append(out, GroupPartial{Key: key, Partial: g.m[key].st.partial()})
		}
	default:
		out = make([]GroupPartial, 0, len(g.order))
		for _, gi := range g.order {
			out = append(out, GroupPartial{Key: g.slotKey(gi), Partial: g.slots[gi].st.partial()})
		}
	}
	return out
}
