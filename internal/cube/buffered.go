package cube

import (
	"fmt"
	"sort"
)

// Buffered wraps a BP-Cube with a delta buffer so that inserts cost O(d)
// instead of O(∏k_i): new rows land in an unmerged log, queries combine
// the cube's answer with a scan of the log, and when the log exceeds its
// threshold it is folded into the cells with one batched prefix pass
// (O(∏k_i + |log|)). This is the update-friendly organization the dynamic
// range-sum cube literature the paper cites ([21], [47]) advocates,
// recast as an LSM-style buffer.
type Buffered struct {
	Cube *BPCube
	// MergeThreshold triggers a compaction when the log reaches it
	// (default 4096 entries).
	MergeThreshold int

	logOrds [][]float64
	logVals []float64
}

// NewBuffered wraps an existing cube.
func NewBuffered(c *BPCube, mergeThreshold int) *Buffered {
	if mergeThreshold <= 0 {
		mergeThreshold = 4096
	}
	return &Buffered{Cube: c, MergeThreshold: mergeThreshold}
}

// PendingRows returns the unmerged log size.
func (b *Buffered) PendingRows() int { return len(b.logVals) }

// Insert logs one row in O(d) and compacts if the threshold is reached.
func (b *Buffered) Insert(ordinals []float64, value float64) error {
	d := b.Cube.Dims()
	if len(ordinals) != d {
		return fmt.Errorf("cube: Buffered.Insert got %d ordinals for %d dims", len(ordinals), d)
	}
	for i, ord := range ordinals {
		b.Cube.ExtendDomain(i, ord)
	}
	b.logOrds = append(b.logOrds, append([]float64(nil), ordinals...))
	b.logVals = append(b.logVals, value)
	b.Cube.SourceRows++
	if len(b.logVals) >= b.MergeThreshold {
		b.Compact()
	}
	return nil
}

// Compact folds the log into the cells: bucket every logged row into a
// delta grid, prefix-sum the delta along each axis, and add it to the
// cells. One pass over the grid regardless of the log size.
func (b *Buffered) Compact() {
	if len(b.logVals) == 0 {
		return
	}
	c := b.Cube
	delta := make([]float64, len(c.Cells))
	idx := make([]int, c.Dims())
	for li, ords := range b.logOrds {
		for i, ord := range ords {
			j := sort.SearchFloat64s(c.Points[i], ord)
			if j == len(c.Points[i]) {
				j = len(c.Points[i]) - 1 // guarded by ExtendDomain at insert
			}
			idx[i] = j
		}
		delta[c.cellIndex(idx)] += b.logVals[li]
	}
	// Prefix-sum the delta grid along each axis, then merge. The delta is
	// prefixed in place (never swapped into c.Cells) so the cube stays
	// consistent at every point of the pass.
	for axis := 0; axis < c.Dims(); axis++ {
		c.prefixAxisInto(delta, axis)
	}
	for i, v := range delta {
		c.Cells[i] += v
	}
	b.logOrds = b.logOrds[:0]
	b.logVals = b.logVals[:0]
}

// RangeSum answers like BPCube.RangeSum but also counts the unmerged
// log's rows that fall inside the region.
func (b *Buffered) RangeSum(lo, hi []int) float64 {
	total := b.Cube.RangeSum(lo, hi)
	if len(b.logVals) == 0 {
		return total
	}
	for i := range lo {
		if lo[i] == hi[i] {
			return total // empty region: 0 from the cube, nothing to scan
		}
	}
	c := b.Cube
	for li, ords := range b.logOrds {
		in := true
		for i, ord := range ords {
			var loOrd float64
			hasLo := lo[i] >= 0
			if hasLo {
				loOrd = c.Points[i][lo[i]]
			}
			hiOrd := c.Points[i][hi[i]]
			if ord > hiOrd || (hasLo && ord <= loOrd) {
				in = false
				break
			}
		}
		if in {
			total += b.logVals[li]
		}
	}
	return total
}

// TotalSum returns the full-domain aggregate including pending rows.
func (b *Buffered) TotalSum() float64 {
	t := b.Cube.TotalSum()
	for _, v := range b.logVals {
		t += v
	}
	return t
}
