package cube

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

var minMaxMagic = [4]byte{'A', 'Q', 'P', 'M'}

const minMaxFormatVersion = 1

// WriteBinary serializes the index in a compact little-endian format.
// Only the sorted (ordinal, value) pairs are written; the sparse-table
// levels are derived data and are rebuilt on read.
func (m *MinMaxIndex) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(minMaxMagic[:]); err != nil {
		return err
	}
	if err := wuv(bw, minMaxFormatVersion); err != nil {
		return err
	}
	if err := wstr(bw, m.Dim); err != nil {
		return err
	}
	if err := wstr(bw, m.Agg); err != nil {
		return err
	}
	if err := wuv(bw, uint64(len(m.ords))); err != nil {
		return err
	}
	for _, o := range m.ords {
		if err := wf64(bw, o); err != nil {
			return err
		}
	}
	for _, v := range m.vals {
		if err := wf64(bw, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMinMax deserializes an index written with WriteBinary and rebuilds
// its sparse-table levels.
func ReadMinMax(r io.Reader) (*MinMaxIndex, error) {
	br := bufio.NewReader(r)
	var mg [4]byte
	if _, err := io.ReadFull(br, mg[:]); err != nil {
		return nil, err
	}
	if mg != minMaxMagic {
		return nil, fmt.Errorf("cube: bad minmax magic %q", mg)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ver != minMaxFormatVersion {
		return nil, fmt.Errorf("cube: unsupported minmax version %d", ver)
	}
	dim, err := rstr(br)
	if err != nil {
		return nil, err
	}
	agg, err := rstr(br)
	if err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<32 {
		return nil, fmt.Errorf("cube: minmax length %d too large", n)
	}
	ords := make([]float64, n)
	for i := range ords {
		if ords[i], err = rf64(br); err != nil {
			return nil, err
		}
	}
	vals := make([]float64, n)
	for i := range vals {
		if vals[i], err = rf64(br); err != nil {
			return nil, err
		}
	}
	for i := 1; i < len(ords); i++ {
		if ords[i] < ords[i-1] {
			return nil, fmt.Errorf("cube: minmax ordinals not sorted at %d", i)
		}
	}
	return newMinMaxFrom(dim, agg, ords, vals), nil
}
