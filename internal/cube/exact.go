package cube

import (
	"fmt"
	"sort"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// BuildFull constructs the complete P-Cube (Definition 2): the partition
// points of every dimension are all of its distinct ordinal values, so any
// range query over the template is answered exactly. This is the AggPre
// baseline of Table 1; its cell count is ∏|dom(C_i)|, which is why the
// paper reports ">10 TB / >1 day" at their scale.
func BuildFull(tbl *engine.Table, tmpl Template) (*BPCube, error) {
	points := make([][]float64, len(tmpl.Dims))
	for i, d := range tmpl.Dims {
		col, err := tbl.Column(d)
		if err != nil {
			return nil, err
		}
		points[i] = distinctOrdinals(col)
	}
	c, err := Build(tbl, tmpl, points)
	if err != nil {
		return nil, err
	}
	c.Full = true
	return c, nil
}

// distinctOrdinals returns the sorted distinct ordinals of a column.
func distinctOrdinals(col *engine.Column) []float64 {
	n := col.Len()
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = col.Ordinal(i)
	}
	sort.Float64s(vals)
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || !stats.ExactEqual(v, out[len(out)-1]) {
			out = append(out, v)
		}
	}
	return out
}

// AnswerExact answers a range query exactly from the cube, or reports
// ok=false when the query's endpoints do not align with partition points
// (a BP-Cube can only answer the aligned subset; the full P-Cube answers
// everything). Dimensions of the template absent from the query are
// treated as unrestricted. Extra query dimensions outside the template
// make the query unanswerable.
func (c *BPCube) AnswerExact(q engine.Query) (float64, bool) {
	if q.Func != engine.Sum && q.Func != engine.Count {
		return 0, false
	}
	if q.Func == engine.Count && c.Template.Agg != "" {
		return 0, false
	}
	if q.Func == engine.Sum && q.Col != c.Template.Agg {
		return 0, false
	}
	d := c.Dims()
	lo := make([]int, d)
	hi := make([]int, d)
	for i := range hi {
		lo[i] = -1
		hi[i] = len(c.Points[i]) - 1
	}
	for _, r := range q.Ranges {
		dim := -1
		for i, name := range c.Template.Dims {
			if name == r.Col {
				dim = i
				break
			}
		}
		if dim < 0 {
			return 0, false
		}
		// The region (t_lo, t_hi] must equal [r.Lo, r.Hi] restricted to
		// the data. On a full P-Cube every distinct ordinal is a point,
		// so nothing can hide between points and arbitrary endpoints
		// resolve by rounding inward. On a blocked cube we require exact
		// alignment in the paper's integer-domain sense: r.Lo-1 and r.Hi
		// must be partition points (pre = SUM(t+1 : t')), with r.Hi
		// beyond the last point clamping to it.
		var loIdx, hiIdx int
		if c.Full {
			p := c.Points[dim]
			hiIdx = sort.Search(len(p), func(i int) bool { return p[i] > r.Hi }) - 1 // largest point <= Hi
			if hiIdx < 0 {
				return 0, true // no data at or below Hi
			}
			loIdx = sort.SearchFloat64s(p, r.Lo) - 1 // largest point < Lo
		} else {
			p := c.Points[dim]
			var ok bool
			hiIdx, ok = c.PointIndex(dim, r.Hi)
			if !ok {
				if r.Hi >= p[len(p)-1] {
					hiIdx = len(p) - 1
				} else {
					return 0, false
				}
			}
			loIdx, ok = c.PointIndex(dim, r.Lo-1)
			if !ok {
				return 0, false
			}
		}
		if loIdx > lo[dim] {
			lo[dim] = loIdx
		}
		if hiIdx < hi[dim] {
			hi[dim] = hiIdx
		}
		if lo[dim] > hi[dim] {
			return 0, true // provably empty intersection
		}
	}
	return c.RangeSum(lo, hi), true
}

// ExtendDomain raises dimension dim's last partition point to cover ord
// (a no-op when ord is already covered). Growing data can exceed the
// domain the cube was built over; because the last point always carries
// the full-domain prefix (footnote 5), sliding it outward preserves every
// cell's meaning.
func (c *BPCube) ExtendDomain(dim int, ord float64) {
	p := c.Points[dim]
	if ord > p[len(p)-1] {
		p[len(p)-1] = ord
	}
}

// Insert incrementally maintains the cube for one new row (Appendix C,
// "Data Updates"): the row's aggregate value is added to every prefix
// cell whose corner dominates the row's ordinals. Cost is O(∏ k_i) in the
// worst case but proportional to the dominated sub-grid in practice.
func (c *BPCube) Insert(ordinals []float64, value float64) error {
	d := c.Dims()
	if len(ordinals) != d {
		return fmt.Errorf("cube: Insert got %d ordinals for %d dims", len(ordinals), d)
	}
	start := make([]int, d)
	for i, ord := range ordinals {
		j := sort.SearchFloat64s(c.Points[i], ord) // first point >= ord
		if j == len(c.Points[i]) {
			return fmt.Errorf("cube: ordinal %v above dim %d's last partition point", ord, i)
		}
		start[i] = j
	}
	// Walk the dominated sub-grid [start_i, k_i) in odometer order.
	idx := make([]int, d)
	copy(idx, start)
	for {
		c.Cells[c.cellIndex(idx)] += value
		a := d - 1
		for a >= 0 {
			idx[a]++
			if idx[a] < len(c.Points[a]) {
				break
			}
			idx[a] = start[a]
			a--
		}
		if a < 0 {
			break
		}
	}
	c.SourceRows++
	return nil
}
