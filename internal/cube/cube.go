// Package cube implements aggregate precomputation: the prefix cube
// (P-Cube) and blocked prefix cube (BP-Cube) of Ho et al. [34] that the
// paper builds its AggPre side on.
//
// A BP-Cube over a template [SUM(A), C1..Cd] stores, for every grid point
// (t_1,...,t_d) drawn from per-dimension partition-point lists, the exact
// prefix aggregate SUM over all rows with ord(C_i) <= t_i for every i.
// Any range whose endpoints align with partition points is then answered
// exactly from at most 2^d cells by inclusion-exclusion (§3, Figure 1).
package cube

import (
	"fmt"
	"sort"

	"aqppp/internal/stats"

	"aqppp/internal/engine"
)

// Template names the aggregation column and the condition (dimension)
// columns of a query template. An empty Agg means COUNT: each row
// contributes 1 (the paper's virtual all-ones attribute, Appendix C).
type Template struct {
	Agg  string
	Dims []string
}

// String implements fmt.Stringer in the paper's [SUM(A), C1, ...] style.
func (t Template) String() string {
	agg := t.Agg
	if agg == "" {
		agg = "*"
	}
	s := "[SUM(" + agg + ")"
	for _, d := range t.Dims {
		s += ", " + d
	}
	return s + "]"
}

// BPCube is a blocked prefix cube: dense prefix sums over a
// k_1 × k_2 × ... × k_d grid of partition points.
type BPCube struct {
	Template Template
	// Points[i] is dimension i's ascending partition-point list (the
	// paper's dom(C_i)_small). The last point is always >= the dimension's
	// maximum ordinal so the full-domain prefix is representable
	// (footnote 5: t_k = |dom(C)|).
	Points [][]float64
	// Cells is the dense row-major prefix-sum array of size Πk_i:
	// Cells[idx(j_1..j_d)] = SUM over rows with ord(C_i) <= Points[i][j_i].
	Cells []float64
	// SourceRows is the number of rows the cube was built over.
	SourceRows int
	// Full records that the cube is a complete P-Cube (every distinct
	// ordinal is a partition point), which lets AnswerExact resolve
	// arbitrary endpoints: no data value can hide between points.
	Full bool
	// strides caches the row-major strides for cell addressing.
	strides []int
}

// Dims returns the number of dimensions.
func (c *BPCube) Dims() int { return len(c.Points) }

// Shape returns k_i per dimension.
func (c *BPCube) Shape() []int {
	s := make([]int, len(c.Points))
	for i, p := range c.Points {
		s[i] = len(p)
	}
	return s
}

// NumCells returns the number of precomputed cells |P|.
func (c *BPCube) NumCells() int { return len(c.Cells) }

// SizeBytes returns the cube's storage footprint: cells plus partition
// points (the paper's preprocessing-space metric).
func (c *BPCube) SizeBytes() int64 {
	n := int64(len(c.Cells)) * 8
	for _, p := range c.Points {
		n += int64(len(p)) * 8
	}
	return n
}

// TotalSum returns the full-domain aggregate (the last cell).
func (c *BPCube) TotalSum() float64 {
	if len(c.Cells) == 0 {
		return 0
	}
	return c.Cells[len(c.Cells)-1]
}

func (c *BPCube) computeStrides() {
	d := len(c.Points)
	c.strides = make([]int, d)
	stride := 1
	for i := d - 1; i >= 0; i-- {
		c.strides[i] = stride
		stride *= len(c.Points[i])
	}
}

// cellIndex converts per-dimension indices to the flat cell offset.
func (c *BPCube) cellIndex(idx []int) int {
	off := 0
	for i, j := range idx {
		off += j * c.strides[i]
	}
	return off
}

// Build constructs a BP-Cube over tbl with the given per-dimension
// partition points, using the Ho et al. algorithm: one scan to bucket
// every row into the grid, then one prefix-sum pass along each axis.
// Partition points must be strictly ascending per dimension; a final
// point covering the dimension's max ordinal is appended if missing.
func Build(tbl *engine.Table, tmpl Template, points [][]float64) (*BPCube, error) {
	if len(points) != len(tmpl.Dims) {
		return nil, fmt.Errorf("cube: %d point lists for %d dims", len(points), len(tmpl.Dims))
	}
	if len(tmpl.Dims) == 0 {
		return nil, fmt.Errorf("cube: template needs at least one dimension")
	}
	var aggCol *engine.Column
	if tmpl.Agg != "" {
		var err error
		aggCol, err = tbl.Column(tmpl.Agg)
		if err != nil {
			return nil, err
		}
	}
	dimCols := make([]*engine.Column, len(tmpl.Dims))
	for i, d := range tmpl.Dims {
		col, err := tbl.Column(d)
		if err != nil {
			return nil, err
		}
		dimCols[i] = col
	}
	c := &BPCube{Template: tmpl, SourceRows: tbl.NumRows()}
	c.Points = make([][]float64, len(points))
	for i, p := range points {
		cp := make([]float64, len(p))
		copy(cp, p)
		for j := 1; j < len(cp); j++ {
			if cp[j] <= cp[j-1] {
				return nil, fmt.Errorf("cube: dim %d points not strictly ascending at %d", i, j)
			}
		}
		_, hi := dimCols[i].OrdinalDomain()
		if len(cp) == 0 || cp[len(cp)-1] < hi {
			cp = append(cp, hi)
		}
		c.Points[i] = cp
	}
	c.computeStrides()
	total := 1
	for _, p := range c.Points {
		total *= len(p)
	}
	c.Cells = make([]float64, total)

	// Pass 1: bucket each row into its owning grid cell.
	idx := make([]int, len(c.Points))
	n := tbl.NumRows()
	for row := 0; row < n; row++ {
		ok := true
		for i, col := range dimCols {
			ord := col.Ordinal(row)
			j := sort.SearchFloat64s(c.Points[i], ord) // first point >= ord
			if j == len(c.Points[i]) {
				ok = false // above the last point (cannot happen after clamping)
				break
			}
			idx[i] = j
		}
		if !ok {
			continue
		}
		v := 1.0
		if aggCol != nil {
			v = aggCol.Float(row)
		}
		c.Cells[c.cellIndex(idx)] += v
	}

	// Pass 2: prefix-sum along each axis (d passes).
	for axis := 0; axis < len(c.Points); axis++ {
		c.prefixAxis(axis)
	}
	return c, nil
}

// prefixAxis accumulates running sums along one axis of the dense array.
func (c *BPCube) prefixAxis(axis int) {
	c.prefixAxisInto(c.Cells, axis)
}

// prefixAxisInto runs the axis prefix pass over an arbitrary grid with
// this cube's shape. Taking the slice as a parameter lets callers (e.g.
// Buffered.Compact) prefix a scratch grid without temporarily swapping
// it into c.Cells, which would expose a half-built cube to concurrent
// readers and corrupt the cube if the pass ever panicked midway.
func (c *BPCube) prefixAxisInto(cells []float64, axis int) {
	k := len(c.Points[axis])
	stride := c.strides[axis]
	// Iterate all "lines" along the axis: the flat array decomposes into
	// outer-block × axis × inner-stride.
	outer := len(cells) / (k * stride)
	for o := 0; o < outer; o++ {
		base := o * k * stride
		for inner := 0; inner < stride; inner++ {
			off := base + inner
			for j := 1; j < k; j++ {
				cells[off+j*stride] += cells[off+(j-1)*stride]
			}
		}
	}
}

// PrefixSum returns the prefix aggregate at per-dimension point indices
// idx (idx[i] in [-1, k_i)); index -1 denotes the empty prefix along that
// dimension and yields 0 for the whole lookup.
func (c *BPCube) PrefixSum(idx []int) float64 {
	off := 0
	for i, j := range idx {
		if j < 0 {
			return 0
		}
		if j >= len(c.Points[i]) {
			panic(fmt.Sprintf("cube: prefix index %d out of range for dim %d", j, i))
		}
		off += j * c.strides[i]
	}
	return c.Cells[off]
}

// RangeSum returns the exact aggregate over the half-open region
// ∏(Points[i][lo[i]], Points[i][hi[i]]] by 2^d-corner inclusion-exclusion.
// lo[i] = -1 extends the region to the start of dimension i. It requires
// lo[i] <= hi[i]; an empty region (lo[i] == hi[i]) returns 0.
func (c *BPCube) RangeSum(lo, hi []int) float64 {
	d := len(c.Points)
	if len(lo) != d || len(hi) != d {
		panic("cube: RangeSum dimension mismatch")
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("cube: RangeSum lo > hi on dim %d", i))
		}
		if lo[i] == hi[i] {
			return 0
		}
	}
	corner := make([]int, d)
	total := 0.0
	for mask := 0; mask < 1<<uint(d); mask++ {
		sign := 1.0
		for i := 0; i < d; i++ {
			if mask&(1<<uint(i)) != 0 {
				corner[i] = lo[i]
				sign = -sign
			} else {
				corner[i] = hi[i]
			}
		}
		total += sign * c.PrefixSum(corner)
	}
	return total
}

// PointIndex returns the index of the partition point exactly equal to
// ord on the given dimension, or (-1, false).
func (c *BPCube) PointIndex(dim int, ord float64) (int, bool) {
	p := c.Points[dim]
	j := sort.SearchFloat64s(p, ord)
	if j < len(p) && stats.ExactEqual(p[j], ord) {
		return j, true
	}
	return -1, false
}

// BracketLeft returns the candidate partition-point indices for a query's
// left endpoint x on dim: the largest point strictly below x (or -1,
// meaning the region extends from the start) and the smallest point >= x.
// These are the paper's l_x and h_x (§5.1), adapted to ordinal axes.
func (c *BPCube) BracketLeft(dim int, x float64) (lo, hi int) {
	p := c.Points[dim]
	j := sort.SearchFloat64s(p, x) // first >= x
	lo = j - 1
	hi = j
	if hi >= len(p) {
		hi = len(p) - 1
	}
	return lo, hi
}

// BracketRight returns the candidate indices for a query's right endpoint
// y on dim: the largest point <= y (or -1 if none) and the smallest point
// strictly above y (clamped to the last point). These are the paper's l_y
// and h_y.
func (c *BPCube) BracketRight(dim int, y float64) (lo, hi int) {
	p := c.Points[dim]
	j := sort.Search(len(p), func(i int) bool { return p[i] > y }) // first > y
	lo = j - 1
	hi = j
	if hi >= len(p) {
		hi = len(p) - 1
	}
	return lo, hi
}
