package cube

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"aqppp/internal/engine"
)

// MinMaxIndex answers exact MIN/MAX range queries over one condition
// attribute. The paper's §8 notes that MIN and MAX are easy for AggPre
// but impossible for sampling-based AQP; prefix cubes cannot serve them
// either (extrema do not subtract), so this index uses the classic
// sparse-table (doubling) structure over the rows sorted by the condition
// ordinal: O(N log N) space, O(1) per query after two binary searches.
type MinMaxIndex struct {
	// Dim and Agg name the condition and aggregate columns.
	Dim, Agg string
	// ords holds the sorted condition ordinals; vals the corresponding
	// aggregate values.
	ords []float64
	vals []float64
	// mins[l][i] / maxs[l][i] summarize vals[i : i+2^l].
	mins, maxs [][]float64
}

// BuildMinMax constructs the index for (aggCol, dimCol) over tbl.
func BuildMinMax(tbl *engine.Table, aggCol, dimCol string) (*MinMaxIndex, error) {
	acol, err := tbl.Column(aggCol)
	if err != nil {
		return nil, err
	}
	dcol, err := tbl.Column(dimCol)
	if err != nil {
		return nil, err
	}
	idx, err := tbl.SortedIndexByOrdinal(dimCol)
	if err != nil {
		return nil, err
	}
	n := len(idx)
	ords := make([]float64, n)
	vals := make([]float64, n)
	for i, row := range idx {
		ords[i] = dcol.Ordinal(row)
		vals[i] = acol.Float(row)
	}
	return newMinMaxFrom(dimCol, aggCol, ords, vals), nil
}

// newMinMaxFrom assembles an index from already-sorted (ordinal, value)
// pairs, rebuilding the sparse-table levels. It is the shared tail of
// BuildMinMax and the binary reader: the levels are derived data, so the
// serialized form carries only ords and vals.
func newMinMaxFrom(dim, agg string, ords, vals []float64) *MinMaxIndex {
	n := len(vals)
	m := &MinMaxIndex{Dim: dim, Agg: agg, ords: ords, vals: vals}
	levels := 1
	if n > 1 {
		levels = bits.Len(uint(n)) // floor(log2 n) + 1
	}
	m.mins = make([][]float64, levels)
	m.maxs = make([][]float64, levels)
	m.mins[0] = m.vals
	m.maxs[0] = m.vals
	for l := 1; l < levels; l++ {
		span := 1 << uint(l)
		cnt := n - span + 1
		if cnt <= 0 {
			m.mins = m.mins[:l]
			m.maxs = m.maxs[:l]
			break
		}
		m.mins[l] = make([]float64, cnt)
		m.maxs[l] = make([]float64, cnt)
		half := span / 2
		for i := 0; i < cnt; i++ {
			m.mins[l][i] = math.Min(m.mins[l-1][i], m.mins[l-1][i+half])
			m.maxs[l][i] = math.Max(m.maxs[l-1][i], m.maxs[l-1][i+half])
		}
	}
	return m
}

// SizeBytes reports the index footprint.
func (m *MinMaxIndex) SizeBytes() int64 {
	total := int64(len(m.ords)+len(m.vals)) * 8
	for l := 1; l < len(m.mins); l++ {
		total += int64(len(m.mins[l])+len(m.maxs[l])) * 8
	}
	return total
}

// Min returns the exact minimum of the aggregate over rows with ordinal
// in [lo, hi]; ok is false when the range holds no rows.
func (m *MinMaxIndex) Min(lo, hi float64) (float64, bool) {
	i, j := m.span(lo, hi)
	if i >= j {
		return 0, false
	}
	l := bits.Len(uint(j-i)) - 1
	return math.Min(m.mins[l][i], m.mins[l][j-(1<<uint(l))]), true
}

// Max returns the exact maximum over [lo, hi]; ok is false for empty
// ranges.
func (m *MinMaxIndex) Max(lo, hi float64) (float64, bool) {
	i, j := m.span(lo, hi)
	if i >= j {
		return 0, false
	}
	l := bits.Len(uint(j-i)) - 1
	return math.Max(m.maxs[l][i], m.maxs[l][j-(1<<uint(l))]), true
}

// span converts an inclusive ordinal range into a half-open row span.
func (m *MinMaxIndex) span(lo, hi float64) (int, int) {
	i := sort.SearchFloat64s(m.ords, lo)
	j := sort.Search(len(m.ords), func(k int) bool { return m.ords[k] > hi })
	return i, j
}

// Answer answers MIN/MAX queries whose only restriction (if any) is a
// range on this index's dimension.
func (m *MinMaxIndex) Answer(q engine.Query) (float64, error) {
	if q.Func != engine.Min && q.Func != engine.Max {
		return 0, fmt.Errorf("cube: MinMaxIndex answers MIN/MAX, got %v", q.Func)
	}
	if q.Col != m.Agg {
		return 0, fmt.Errorf("cube: index is over %q, query aggregates %q", m.Agg, q.Col)
	}
	lo, hi := math.Inf(-1), math.Inf(1)
	for _, r := range q.Ranges {
		if r.Col != m.Dim {
			return 0, fmt.Errorf("cube: index covers dimension %q, query restricts %q", m.Dim, r.Col)
		}
		if r.Lo > lo {
			lo = r.Lo
		}
		if r.Hi < hi {
			hi = r.Hi
		}
	}
	var v float64
	var ok bool
	if q.Func == engine.Min {
		v, ok = m.Min(lo, hi)
	} else {
		v, ok = m.Max(lo, hi)
	}
	if !ok {
		return 0, fmt.Errorf("cube: empty range [%v, %v] on %q", lo, hi, m.Dim)
	}
	return v, nil
}
