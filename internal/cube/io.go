package cube

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

var cubeMagic = [4]byte{'A', 'Q', 'P', 'C'}

const cubeFormatVersion = 1

// WriteBinary serializes the cube in a compact little-endian format so a
// precomputed BP-Cube can be stored alongside its sample.
func (c *BPCube) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(cubeMagic[:]); err != nil {
		return err
	}
	if err := wuv(bw, cubeFormatVersion); err != nil {
		return err
	}
	if err := wstr(bw, c.Template.Agg); err != nil {
		return err
	}
	if err := wuv(bw, uint64(len(c.Template.Dims))); err != nil {
		return err
	}
	for _, d := range c.Template.Dims {
		if err := wstr(bw, d); err != nil {
			return err
		}
	}
	if err := wuv(bw, uint64(c.SourceRows)); err != nil {
		return err
	}
	for _, pts := range c.Points {
		if err := wuv(bw, uint64(len(pts))); err != nil {
			return err
		}
		for _, p := range pts {
			if err := wf64(bw, p); err != nil {
				return err
			}
		}
	}
	if err := wuv(bw, uint64(len(c.Cells))); err != nil {
		return err
	}
	for _, v := range c.Cells {
		if err := wf64(bw, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a cube written with WriteBinary.
func ReadBinary(r io.Reader) (*BPCube, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != cubeMagic {
		return nil, fmt.Errorf("cube: bad magic %q", m)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ver != cubeFormatVersion {
		return nil, fmt.Errorf("cube: unsupported version %d", ver)
	}
	c := &BPCube{}
	if c.Template.Agg, err = rstr(br); err != nil {
		return nil, err
	}
	nd, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	c.Template.Dims = make([]string, nd)
	for i := range c.Template.Dims {
		if c.Template.Dims[i], err = rstr(br); err != nil {
			return nil, err
		}
	}
	sr, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	c.SourceRows = int(sr)
	c.Points = make([][]float64, nd)
	expectCells := 1
	for i := range c.Points {
		np, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		c.Points[i] = make([]float64, np)
		for j := range c.Points[i] {
			if c.Points[i][j], err = rf64(br); err != nil {
				return nil, err
			}
		}
		expectCells *= int(np)
	}
	nc, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if int(nc) != expectCells {
		return nil, fmt.Errorf("cube: %d cells but shape implies %d", nc, expectCells)
	}
	c.Cells = make([]float64, nc)
	for i := range c.Cells {
		if c.Cells[i], err = rf64(br); err != nil {
			return nil, err
		}
	}
	c.computeStrides()
	return c, nil
}

func wuv(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func wstr(w *bufio.Writer, s string) error {
	if err := wuv(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func wf64(w *bufio.Writer, f float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	_, err := w.Write(buf[:])
	return err
}

func rstr(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("cube: string length %d too large", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func rf64(r *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}
