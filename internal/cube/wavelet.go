package cube

import (
	"fmt"
	"math"
	"sort"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// WaveletCube is an approximate data cube compressed with an orthonormal
// Haar wavelet synopsis — the cube-approximation line of work the paper
// cites (Vitter & Wang [68]) and names in §8 as worth revisiting under
// AQP++. The d-dimensional bucket array over the partition grid is
// Haar-transformed along every axis; only the largest-magnitude
// coefficients are kept. Range sums are answered from the retained
// coefficients alone in O(kept · d): each coefficient's contribution to a
// prefix sum is the product of per-axis prefix integrals of its basis
// function, available in closed form.
//
// Unlike the BP-Cube this gives approximate answers with no probabilistic
// error bound, which is exactly the weakness (§2: "not good at answering
// ad-hoc queries ... deterministic guarantees") that motivates AQP++'s
// hybrid; the wavelet study in internal/experiments quantifies it.
type WaveletCube struct {
	Template Template
	// Points mirrors BPCube.Points (per-axis partition ordinals), padded
	// conceptually to pow2 sizes for the transform.
	Points [][]float64
	// size[i] is the padded (power-of-two) length of axis i.
	size []int
	// coeffPos/coeffVal hold the retained coefficients as parallel
	// slices sorted by flat padded index: iteration order (and therefore
	// the float summation order in PrefixSum) is deterministic, and the
	// hot loop scans contiguously instead of hashing.
	coeffPos []int
	coeffVal []float64
	// strides over the padded grid.
	strides []int
	// SourceRows is the row count the cube was built over.
	SourceRows int
}

// BuildWavelet constructs a wavelet cube over the same grid a BP-Cube
// would use, keeping at most keepCoeffs coefficients.
func BuildWavelet(tbl *engine.Table, tmpl Template, points [][]float64, keepCoeffs int) (*WaveletCube, error) {
	if keepCoeffs < 1 {
		return nil, fmt.Errorf("cube: keepCoeffs = %d", keepCoeffs)
	}
	// Reuse the BP-Cube build for validation and bucketing, then undo the
	// prefix pass to recover raw bucket sums.
	bp, err := Build(tbl, tmpl, points)
	if err != nil {
		return nil, err
	}
	w := &WaveletCube{
		Template:   tmpl,
		Points:     bp.Points,
		SourceRows: bp.SourceRows,
	}
	d := len(bp.Points)
	w.size = make([]int, d)
	for i, p := range bp.Points {
		w.size[i] = nextPow2(len(p))
	}
	w.strides = make([]int, d)
	stride := 1
	for i := d - 1; i >= 0; i-- {
		w.strides[i] = stride
		stride *= w.size[i]
	}
	// Copy bucket sums (differenced prefix values) into the padded array.
	buckets := make([]float64, stride)
	idx := make([]int, d)
	var walk func(axis int)
	walk = func(axis int) {
		if axis == d {
			off := 0
			for i, j := range idx {
				off += j * w.strides[i]
			}
			buckets[off] = bucketValue(bp, idx)
			return
		}
		for j := 0; j < len(bp.Points[axis]); j++ {
			idx[axis] = j
			walk(axis + 1)
		}
	}
	walk(0)

	// Full orthonormal Haar transform along each axis.
	for axis := 0; axis < d; axis++ {
		w.transformAxis(buckets, axis)
	}
	// Threshold: keep the top coefficients by magnitude.
	type kv struct {
		pos int
		abs float64
	}
	all := make([]kv, 0, len(buckets))
	for pos, c := range buckets {
		if c != 0 {
			all = append(all, kv{pos, math.Abs(c)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if !stats.ExactEqual(all[i].abs, all[j].abs) {
			return all[i].abs > all[j].abs
		}
		return all[i].pos < all[j].pos // break magnitude ties stably
	})
	if keepCoeffs > len(all) {
		keepCoeffs = len(all)
	}
	kept := all[:keepCoeffs]
	sort.Slice(kept, func(i, j int) bool { return kept[i].pos < kept[j].pos })
	w.coeffPos = make([]int, len(kept))
	w.coeffVal = make([]float64, len(kept))
	for i, e := range kept {
		w.coeffPos[i] = e.pos
		w.coeffVal[i] = buckets[e.pos]
	}
	return w, nil
}

// bucketValue recovers the raw bucket sum at grid cell idx from the
// prefix cube by local inclusion-exclusion.
func bucketValue(bp *BPCube, idx []int) float64 {
	d := len(idx)
	total := 0.0
	corner := make([]int, d)
	for mask := 0; mask < 1<<uint(d); mask++ {
		sign := 1.0
		for i := 0; i < d; i++ {
			corner[i] = idx[i]
			if mask&(1<<uint(i)) != 0 {
				corner[i]--
				sign = -sign
			}
		}
		valid := true
		for i := 0; i < d; i++ {
			if corner[i] < -1 {
				valid = false
				break
			}
		}
		if !valid {
			continue
		}
		total += sign * bp.PrefixSum(corner)
	}
	return total
}

// transformAxis applies the full orthonormal Haar transform along one
// axis of the padded array (averages land in the front half at each
// level).
func (w *WaveletCube) transformAxis(data []float64, axis int) {
	n := w.size[axis]
	stride := w.strides[axis]
	outer := len(data) / (n * stride)
	buf := make([]float64, n)
	inv := 1 / math.Sqrt2
	for o := 0; o < outer; o++ {
		base := o * n * stride
		for inner := 0; inner < stride; inner++ {
			off := base + inner
			// Gather the line.
			for j := 0; j < n; j++ {
				buf[j] = data[off+j*stride]
			}
			for length := n; length > 1; length /= 2 {
				half := length / 2
				tmp := make([]float64, length)
				for j := 0; j < half; j++ {
					a, b := buf[2*j], buf[2*j+1]
					tmp[j] = (a + b) * inv
					tmp[half+j] = (a - b) * inv
				}
				copy(buf[:length], tmp)
			}
			for j := 0; j < n; j++ {
				data[off+j*stride] = buf[j]
			}
		}
	}
}

// KeptCoeffs returns the number of retained coefficients.
func (w *WaveletCube) KeptCoeffs() int { return len(w.coeffPos) }

// SizeBytes reports the synopsis footprint: one (index, value) pair per
// kept coefficient plus the partition points.
func (w *WaveletCube) SizeBytes() int64 {
	total := int64(len(w.coeffPos)) * 16
	for _, p := range w.Points {
		total += int64(len(p)) * 8
	}
	return total
}

// PrefixSum approximates the prefix aggregate at per-axis point indices
// idx (same semantics as BPCube.PrefixSum; -1 yields 0).
func (w *WaveletCube) PrefixSum(idx []int) float64 {
	for _, j := range idx {
		if j < 0 {
			return 0
		}
	}
	total := 0.0
	for i, pos := range w.coeffPos {
		contrib := w.coeffVal[i]
		rem := pos
		for axis := 0; axis < len(w.size); axis++ {
			p := rem / w.strides[axis]
			rem %= w.strides[axis]
			contrib *= haarPrefixIntegral(w.size[axis], p, idx[axis])
			if contrib == 0 {
				break
			}
		}
		total += contrib
	}
	return total
}

// RangeSum approximates the aggregate over ∏(Points[lo], Points[hi]] by
// inclusion-exclusion, mirroring BPCube.RangeSum.
func (w *WaveletCube) RangeSum(lo, hi []int) float64 {
	d := len(w.size)
	corner := make([]int, d)
	total := 0.0
	for mask := 0; mask < 1<<uint(d); mask++ {
		sign := 1.0
		for i := 0; i < d; i++ {
			if mask&(1<<uint(i)) != 0 {
				corner[i] = lo[i]
				sign = -sign
			} else {
				corner[i] = hi[i]
			}
		}
		total += sign * w.PrefixSum(corner)
	}
	return total
}

// haarPrefixIntegral returns Σ_{t=0..i} B_p(t) for the orthonormal Haar
// basis function at transform position p over a length-n axis.
//
// Position 0 is the scaling function φ ≡ 1/√n. Positions [2^j, 2^{j+1})
// for j = 0..log2(n)−1 hold the level-j wavelets: position 2^j + k has
// support s = n/2^j starting at k·s, value +1/√s on the first half and
// −1/√s on the second.
func haarPrefixIntegral(n, p, i int) float64 {
	if i < 0 {
		return 0
	}
	if i >= n {
		i = n - 1
	}
	if p == 0 {
		return float64(i+1) / math.Sqrt(float64(n))
	}
	// Decompose p into level and shift.
	j := 0
	for (1 << uint(j+1)) <= p {
		j++
	}
	k := p - (1 << uint(j))
	s := n >> uint(j)
	start := k * s
	if i < start {
		return 0
	}
	if i >= start+s {
		return 0 // the two halves cancel exactly
	}
	h := 1 / math.Sqrt(float64(s))
	within := i - start + 1 // covered positions within the support
	half := s / 2
	if within <= half {
		return float64(within) * h
	}
	return float64(s-within) * h
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
