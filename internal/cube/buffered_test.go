package cube

import (
	"math"
	"testing"

	"aqppp/internal/stats"
)

func TestBufferedMatchesEagerInsert(t *testing.T) {
	tbl := randomTable(2, 1000, 20, 40)
	tmpl := Template{Agg: "a", Dims: dims(2)}
	points := [][]float64{{5, 10, 15, 20}, {7, 14, 20}}
	eager, err := Build(tbl, tmpl, points)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Build(tbl, tmpl, points)
	if err != nil {
		t.Fatal(err)
	}
	buf := NewBuffered(base, 1000) // threshold above insert count: stays buffered
	r := stats.NewRNG(41)
	for i := 0; i < 200; i++ {
		ords := []float64{float64(r.Intn(20) + 1), float64(r.Intn(20) + 1)}
		v := r.Float64() * 10
		if err := eager.Insert(ords, v); err != nil {
			t.Fatal(err)
		}
		if err := buf.Insert(ords, v); err != nil {
			t.Fatal(err)
		}
	}
	if buf.PendingRows() != 200 {
		t.Fatalf("pending = %d", buf.PendingRows())
	}
	// Compare answers across random regions while the log is unmerged.
	compareRegions(t, eager, buf, 30, 42)
	// And again after compaction.
	buf.Compact()
	if buf.PendingRows() != 0 {
		t.Fatal("compaction left pending rows")
	}
	compareRegions(t, eager, buf, 30, 43)
	for i := range eager.Cells {
		if math.Abs(eager.Cells[i]-buf.Cube.Cells[i]) > 1e-9 {
			t.Fatalf("cell %d: eager %v != compacted %v", i, eager.Cells[i], buf.Cube.Cells[i])
		}
	}
	if eager.SourceRows != buf.Cube.SourceRows {
		t.Errorf("SourceRows %d != %d", eager.SourceRows, buf.Cube.SourceRows)
	}
}

func compareRegions(t *testing.T, eager *BPCube, buf *Buffered, trials int, seed uint64) {
	t.Helper()
	r := stats.NewRNG(seed)
	d := eager.Dims()
	for q := 0; q < trials; q++ {
		lo := make([]int, d)
		hi := make([]int, d)
		for i := 0; i < d; i++ {
			k := len(eager.Points[i])
			lo[i] = r.Intn(k+1) - 1
			hi[i] = lo[i] + r.Intn(k-lo[i])
			if hi[i] < 0 {
				hi[i] = 0
				lo[i] = 0
			}
		}
		want := eager.RangeSum(lo, hi)
		got := buf.RangeSum(lo, hi)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("region %v-%v: buffered %v != eager %v", lo, hi, got, want)
		}
	}
}

func TestBufferedAutoCompact(t *testing.T) {
	tbl := randomTable(1, 500, 10, 44)
	base, err := Build(tbl, Template{Agg: "a", Dims: dims(1)}, [][]float64{{5, 10}})
	if err != nil {
		t.Fatal(err)
	}
	buf := NewBuffered(base, 50)
	for i := 0; i < 120; i++ {
		if err := buf.Insert([]float64{float64(i%10 + 1)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Two compactions happened; at most threshold-1 rows remain.
	if buf.PendingRows() >= 50 {
		t.Errorf("pending = %d, threshold 50", buf.PendingRows())
	}
	truth := base.TotalSum() // already includes compacted rows
	for range buf.logVals {
		truth++
	}
	_ = truth
	if got := buf.TotalSum(); got != base.TotalSum()+float64(buf.PendingRows()) {
		t.Errorf("TotalSum = %v", got)
	}
}

func TestBufferedDomainGrowth(t *testing.T) {
	tbl := randomTable(1, 100, 10, 45)
	base, err := Build(tbl, Template{Agg: "a", Dims: dims(1)}, [][]float64{{5, 10}})
	if err != nil {
		t.Fatal(err)
	}
	buf := NewBuffered(base, 10)
	// Ordinal beyond the old domain must be absorbed, not dropped.
	before := buf.TotalSum()
	if err := buf.Insert([]float64{99}, 7); err != nil {
		t.Fatal(err)
	}
	buf.Compact()
	if got := buf.TotalSum(); math.Abs(got-(before+7)) > 1e-9 {
		t.Errorf("TotalSum = %v, want %v", got, before+7)
	}
}

func TestBufferedInsertValidation(t *testing.T) {
	tbl := randomTable(2, 50, 10, 46)
	base, _ := Build(tbl, Template{Agg: "a", Dims: dims(2)}, [][]float64{{5, 10}, {5, 10}})
	buf := NewBuffered(base, 10)
	if err := buf.Insert([]float64{1}, 1); err == nil {
		t.Error("wrong arity accepted")
	}
}

// BenchmarkEagerInsert vs BenchmarkBufferedInsert quantify the update
// cost gap the buffer exists for.
func BenchmarkEagerInsert(b *testing.B) {
	tbl := randomTable(2, 1000, 100, 47)
	c, _ := Build(tbl, Template{Agg: "a", Dims: dims(2)},
		[][]float64{equalSpaced(64, 100), equalSpaced(64, 100)})
	ords := []float64{3, 3} // worst case: dominates nearly every cell
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Insert(ords, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferedInsert(b *testing.B) {
	tbl := randomTable(2, 1000, 100, 48)
	c, _ := Build(tbl, Template{Agg: "a", Dims: dims(2)},
		[][]float64{equalSpaced(64, 100), equalSpaced(64, 100)})
	buf := NewBuffered(c, 4096)
	ords := []float64{3, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := buf.Insert(ords, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func equalSpaced(k, dom int) []float64 {
	pts := make([]float64, k)
	for i := range pts {
		pts[i] = float64((i + 1) * dom / k)
	}
	return pts
}
