package cube

import (
	"math"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

func TestWaveletExactWhenAllCoefficientsKept(t *testing.T) {
	// With every coefficient retained, the synopsis is a lossless
	// orthonormal transform: prefix sums must match the BP-Cube exactly.
	for _, d := range []int{1, 2, 3} {
		tbl := randomTable(d, 500, 16, uint64(60+d))
		points := make([][]float64, d)
		for i := range points {
			points[i] = []float64{4, 8, 12, 16}
		}
		tmpl := Template{Agg: "a", Dims: dims(d)}
		bp, err := Build(tbl, tmpl, points)
		if err != nil {
			t.Fatal(err)
		}
		w, err := BuildWavelet(tbl, tmpl, points, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		idx := make([]int, d)
		var walk func(axis int)
		var fail bool
		walk = func(axis int) {
			if fail {
				return
			}
			if axis == d {
				want := bp.PrefixSum(idx)
				got := w.PrefixSum(idx)
				if math.Abs(got-want) > 1e-6*math.Max(math.Abs(want), 1) {
					t.Errorf("d=%d prefix %v: wavelet %v != exact %v", d, idx, got, want)
					fail = true
				}
				return
			}
			for j := 0; j < len(bp.Points[axis]); j++ {
				idx[axis] = j
				walk(axis + 1)
			}
		}
		walk(0)
	}
}

func TestWaveletRangeSumLossless(t *testing.T) {
	tbl := randomTable(2, 800, 20, 64)
	points := [][]float64{{5, 10, 15, 20}, {4, 8, 12, 16, 20}}
	tmpl := Template{Agg: "a", Dims: dims(2)}
	bp, err := Build(tbl, tmpl, points)
	if err != nil {
		t.Fatal(err)
	}
	w, err := BuildWavelet(tbl, tmpl, points, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(65)
	for trial := 0; trial < 40; trial++ {
		lo := make([]int, 2)
		hi := make([]int, 2)
		for i := 0; i < 2; i++ {
			k := len(bp.Points[i])
			lo[i] = r.Intn(k) - 1
			hi[i] = lo[i] + 1 + r.Intn(k-lo[i]-1)
		}
		want := bp.RangeSum(lo, hi)
		got := w.RangeSum(lo, hi)
		if math.Abs(got-want) > 1e-6*math.Max(math.Abs(want), 1) {
			t.Fatalf("range %v-%v: wavelet %v != exact %v", lo, hi, got, want)
		}
	}
}

func TestWaveletCompressionDegradesGracefully(t *testing.T) {
	// Smooth data compresses well: a heavily truncated synopsis should
	// still answer wide ranges with modest relative error, and error
	// should shrink as more coefficients are kept.
	n := 20000
	r := stats.NewRNG(66)
	c := make([]int64, n)
	a := make([]float64, n)
	for i := 0; i < n; i++ {
		c[i] = int64(r.Intn(256) + 1)
		a[i] = 100 + 0.2*float64(c[i]) + r.NormFloat64()
	}
	tbl := engine.MustNewTable("t",
		engine.NewFloatColumn("a", a),
		engine.NewIntColumn("c", c),
	)
	pts := make([]float64, 64)
	for i := range pts {
		pts[i] = float64((i + 1) * 4)
	}
	tmpl := Template{Agg: "a", Dims: []string{"c"}}
	bp, err := Build(tbl, tmpl, [][]float64{pts})
	if err != nil {
		t.Fatal(err)
	}
	var prevErr float64
	for ki, keep := range []int{8, 16, 32, 64} {
		w, err := BuildWavelet(tbl, tmpl, [][]float64{pts}, keep)
		if err != nil {
			t.Fatal(err)
		}
		if w.KeptCoeffs() > keep {
			t.Fatalf("kept %d > budget %d", w.KeptCoeffs(), keep)
		}
		// Average relative error over wide ranges.
		var relSum float64
		trials := 0
		for lo := -1; lo < 40; lo += 8 {
			hi := lo + 16
			want := bp.RangeSum([]int{lo}, []int{hi})
			got := w.RangeSum([]int{lo}, []int{hi})
			if want != 0 {
				relSum += math.Abs(got-want) / math.Abs(want)
				trials++
			}
		}
		rel := relSum / float64(trials)
		if ki == 0 && rel > 0.5 {
			t.Errorf("keep=%d: error %v too large even for the smallest synopsis", keep, rel)
		}
		if ki > 0 && rel > prevErr*1.25+1e-12 {
			t.Errorf("keep=%d: error %v grew from %v", keep, rel, prevErr)
		}
		prevErr = rel
	}
	if prevErr > 1e-6 {
		t.Errorf("full-coefficient synopsis still lossy: %v", prevErr)
	}
}
