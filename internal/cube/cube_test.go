package cube

import (
	"math"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// randomTable builds a d-dimensional table with integer dims in [1, dom]
// and a float measure.
func randomTable(d, n, dom int, seed uint64) *engine.Table {
	r := stats.NewRNG(seed)
	cols := make([]*engine.Column, 0, d+1)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Floor(r.Float64()*100) / 10
	}
	cols = append(cols, engine.NewFloatColumn("a", vals))
	for j := 0; j < d; j++ {
		dim := make([]int64, n)
		for i := range dim {
			dim[i] = int64(r.Intn(dom) + 1)
		}
		cols = append(cols, engine.NewIntColumn(dimName(j), dim))
	}
	return engine.MustNewTable("t", cols...)
}

func dimName(j int) string { return string(rune('c' + j)) }

func dims(d int) []string {
	out := make([]string, d)
	for j := 0; j < d; j++ {
		out[j] = dimName(j)
	}
	return out
}

// bruteRange computes SUM(a) over rows with ord(dim_i) in (lo_i, hi_i].
func bruteRange(tbl *engine.Table, dimNames []string, lo, hi []float64) float64 {
	n := tbl.NumRows()
	acc := 0.0
	a := tbl.MustColumn("a")
	cols := make([]*engine.Column, len(dimNames))
	for i, d := range dimNames {
		cols[i] = tbl.MustColumn(d)
	}
	for row := 0; row < n; row++ {
		in := true
		for i := range cols {
			v := cols[i].Ordinal(row)
			if !(v > lo[i] && v <= hi[i]) {
				in = false
				break
			}
		}
		if in {
			acc += a.Float(row)
		}
	}
	return acc
}

func TestBuild1DPrefixMatchesBrute(t *testing.T) {
	tbl := randomTable(1, 500, 50, 1)
	c, err := Build(tbl, Template{Agg: "a", Dims: dims(1)}, [][]float64{{10, 20, 30, 40, 50}})
	if err != nil {
		t.Fatal(err)
	}
	for j, p := range c.Points[0] {
		want := bruteRange(tbl, dims(1), []float64{math.Inf(-1)}, []float64{p})
		if got := c.PrefixSum([]int{j}); math.Abs(got-want) > 1e-9 {
			t.Errorf("prefix[%d] = %v, want %v", j, got, want)
		}
	}
}

func TestRangeSumMatchesBruteForceProperty(t *testing.T) {
	// Property test over random cubes and ranges in 1-4 dims.
	r := stats.NewRNG(99)
	for trial := 0; trial < 40; trial++ {
		d := r.Intn(4) + 1
		dom := r.Intn(20) + 5
		tbl := randomTable(d, 300, dom, uint64(trial))
		points := make([][]float64, d)
		for i := range points {
			k := r.Intn(4) + 2
			set := map[int]bool{}
			for len(set) < k {
				set[r.Intn(dom)+1] = true
			}
			var pts []float64
			for v := range set {
				pts = append(pts, float64(v))
			}
			sortFloats(pts)
			points[i] = pts
		}
		c, err := Build(tbl, Template{Agg: "a", Dims: dims(d)}, points)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 20; q++ {
			lo := make([]int, d)
			hi := make([]int, d)
			loOrd := make([]float64, d)
			hiOrd := make([]float64, d)
			for i := range lo {
				k := len(c.Points[i])
				lo[i] = r.Intn(k+1) - 1 // -1..k-1
				hi[i] = lo[i] + r.Intn(k-lo[i]-1+1)
				if hi[i] < lo[i] {
					hi[i] = lo[i]
				}
				if lo[i] < 0 {
					loOrd[i] = math.Inf(-1)
				} else {
					loOrd[i] = c.Points[i][lo[i]]
				}
				hiOrd[i] = c.Points[i][max0(hi[i])]
				if hi[i] < 0 {
					hiOrd[i] = math.Inf(-1)
				}
			}
			valid := true
			for i := range lo {
				if hi[i] < 0 {
					valid = false
				}
			}
			if !valid {
				continue
			}
			got := c.RangeSum(lo, hi)
			want := bruteRange(tbl, dims(d), loOrd, hiOrd)
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("trial %d d=%d: RangeSum(%v,%v) = %v, want %v", trial, d, lo, hi, got, want)
			}
		}
	}
}

func max0(x int) int {
	if x < 0 {
		return 0
	}
	return x
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestBuildValidation(t *testing.T) {
	tbl := randomTable(2, 50, 10, 3)
	tmpl := Template{Agg: "a", Dims: dims(2)}
	if _, err := Build(tbl, tmpl, [][]float64{{1, 2}}); err == nil {
		t.Error("wrong point-list count accepted")
	}
	if _, err := Build(tbl, tmpl, [][]float64{{2, 1}, {5}}); err == nil {
		t.Error("descending points accepted")
	}
	if _, err := Build(tbl, Template{Agg: "nope", Dims: dims(2)}, [][]float64{{5}, {5}}); err == nil {
		t.Error("missing agg column accepted")
	}
	if _, err := Build(tbl, Template{Agg: "a", Dims: []string{"nope", "c"}}, [][]float64{{5}, {5}}); err == nil {
		t.Error("missing dim column accepted")
	}
	if _, err := Build(tbl, Template{Agg: "a"}, nil); err == nil {
		t.Error("zero-dimension template accepted")
	}
}

func TestBuildAppendsDomainMax(t *testing.T) {
	tbl := randomTable(1, 100, 30, 4)
	c, err := Build(tbl, Template{Agg: "a", Dims: dims(1)}, [][]float64{{10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points[0]) != 2 {
		t.Fatalf("points = %v, expected domain max appended", c.Points[0])
	}
	truth, _ := tbl.Execute(engine.Query{Func: engine.Sum, Col: "a"})
	if math.Abs(c.TotalSum()-truth.Value) > 1e-9 {
		t.Errorf("TotalSum = %v, want %v", c.TotalSum(), truth.Value)
	}
}

func TestCountCube(t *testing.T) {
	tbl := randomTable(1, 200, 20, 5)
	c, err := Build(tbl, Template{Agg: "", Dims: dims(1)}, [][]float64{{5, 10, 15, 20}})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalSum() != 200 {
		t.Errorf("COUNT cube total = %v, want 200", c.TotalSum())
	}
}

func TestBracketLeftRight(t *testing.T) {
	tbl := randomTable(1, 100, 100, 6)
	c, err := Build(tbl, Template{Agg: "a", Dims: dims(1)}, [][]float64{{10, 20, 30, 100}})
	if err != nil {
		t.Fatal(err)
	}
	// x=15 falls between 10 and 20.
	lo, hi := c.BracketLeft(0, 15)
	if lo != 0 || hi != 1 {
		t.Errorf("BracketLeft(15) = %d,%d", lo, hi)
	}
	// x=10: the point 10 counts as "smallest >= x"; lo is the region start.
	lo, hi = c.BracketLeft(0, 10)
	if lo != -1 || hi != 0 {
		t.Errorf("BracketLeft(10) = %d,%d", lo, hi)
	}
	// x=5 below all points.
	lo, hi = c.BracketLeft(0, 5)
	if lo != -1 || hi != 0 {
		t.Errorf("BracketLeft(5) = %d,%d", lo, hi)
	}
	// y=25 falls between 20 and 30.
	lo, hi = c.BracketRight(0, 25)
	if lo != 1 || hi != 2 {
		t.Errorf("BracketRight(25) = %d,%d", lo, hi)
	}
	// y=20 aligns exactly: lo is that point.
	lo, hi = c.BracketRight(0, 20)
	if lo != 1 || hi != 2 {
		t.Errorf("BracketRight(20) = %d,%d", lo, hi)
	}
	// y above all points clamps.
	lo, hi = c.BracketRight(0, 500)
	if lo != 3 || hi != 3 {
		t.Errorf("BracketRight(500) = %d,%d", lo, hi)
	}
}

func TestShapeAndSize(t *testing.T) {
	tbl := randomTable(2, 100, 10, 7)
	c, err := Build(tbl, Template{Agg: "a", Dims: dims(2)}, [][]float64{{5, 10}, {3, 6, 10}})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Shape()
	if s[0] != 2 || s[1] != 3 {
		t.Errorf("shape = %v", s)
	}
	if c.NumCells() != 6 {
		t.Errorf("cells = %d", c.NumCells())
	}
	if c.SizeBytes() != 6*8+5*8 {
		t.Errorf("SizeBytes = %d", c.SizeBytes())
	}
	if c.Dims() != 2 {
		t.Errorf("dims = %d", c.Dims())
	}
}

func TestTemplateString(t *testing.T) {
	tm := Template{Agg: "price", Dims: []string{"x", "y"}}
	if got := tm.String(); got != "[SUM(price), x, y]" {
		t.Errorf("String = %q", got)
	}
	cnt := Template{Dims: []string{"x"}}
	if got := cnt.String(); got != "[SUM(*), x]" {
		t.Errorf("count String = %q", got)
	}
}

func TestRangeSumPanics(t *testing.T) {
	tbl := randomTable(1, 50, 10, 8)
	c, _ := Build(tbl, Template{Agg: "a", Dims: dims(1)}, [][]float64{{5, 10}})
	for _, f := range []func(){
		func() { c.RangeSum([]int{0}, []int{0, 1}) },
		func() { c.RangeSum([]int{1}, []int{0}) },
		func() { c.PrefixSum([]int{7}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	// Empty region returns 0 without panicking.
	if got := c.RangeSum([]int{0}, []int{0}); got != 0 {
		t.Errorf("empty region = %v", got)
	}
}
