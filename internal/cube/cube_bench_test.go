package cube

import (
	"testing"
)

func benchCube(b *testing.B, d, n, k int) (*BPCube, [][]int) {
	b.Helper()
	tbl := randomTable(d, n, 1000, 42)
	points := make([][]float64, d)
	for i := range points {
		pts := make([]float64, k)
		for j := range pts {
			pts[j] = float64((j + 1) * 1000 / k)
		}
		points[i] = pts
	}
	c, err := Build(tbl, Template{Agg: "a", Dims: dims(d)}, points)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-generate query corner index pairs.
	queries := make([][]int, 200)
	for qi := range queries {
		lohi := make([]int, 2*d)
		for i := 0; i < d; i++ {
			lo := qi % (k - 1)
			hi := lo + 1 + (qi % (k - lo - 1))
			lohi[i] = lo
			lohi[d+i] = hi
		}
		queries[qi] = lohi
	}
	return c, queries
}

// BenchmarkCubeBuild2D measures the Ho et al. construction: one scan plus
// d prefix passes.
func BenchmarkCubeBuild2D(b *testing.B) {
	tbl := randomTable(2, 100000, 1000, 42)
	points := make([][]float64, 2)
	for i := range points {
		pts := make([]float64, 64)
		for j := range pts {
			pts[j] = float64((j + 1) * 1000 / 64)
		}
		points[i] = pts
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(tbl, Template{Agg: "a", Dims: dims(2)}, points); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeSum measures the 2^d-corner lookup at several
// dimensionalities.
func BenchmarkRangeSum2D(b *testing.B) { benchRangeSum(b, 2) }

// BenchmarkRangeSum4D is the 16-corner case.
func BenchmarkRangeSum4D(b *testing.B) { benchRangeSum(b, 4) }

func benchRangeSum(b *testing.B, d int) {
	c, queries := benchCube(b, d, 20000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		_ = c.RangeSum(q[:d], q[d:])
	}
}

// BenchmarkCubeInsert measures incremental maintenance cost per row.
func BenchmarkCubeInsert(b *testing.B) {
	c, _ := benchCube(b, 2, 20000, 16)
	ords := []float64{500, 500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Insert(ords, 1); err != nil {
			b.Fatal(err)
		}
	}
}
