package cube

import (
	"math"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

func TestMinMaxMatchesBruteForce(t *testing.T) {
	r := stats.NewRNG(7)
	tbl := randomTable(1, 2000, 200, 7)
	idx, err := BuildMinMax(tbl, "a", dimName(0))
	if err != nil {
		t.Fatal(err)
	}
	acol := tbl.MustColumn("a")
	dcol := tbl.MustColumn(dimName(0))
	for trial := 0; trial < 100; trial++ {
		lo := float64(r.Intn(200) + 1)
		hi := lo + float64(r.Intn(60))
		wantMin, wantMax := math.Inf(1), math.Inf(-1)
		found := false
		for row := 0; row < tbl.NumRows(); row++ {
			v := dcol.Ordinal(row)
			if v >= lo && v <= hi {
				found = true
				wantMin = math.Min(wantMin, acol.Float(row))
				wantMax = math.Max(wantMax, acol.Float(row))
			}
		}
		gotMin, okMin := idx.Min(lo, hi)
		gotMax, okMax := idx.Max(lo, hi)
		if okMin != found || okMax != found {
			t.Fatalf("trial %d: ok=%v/%v, want %v", trial, okMin, okMax, found)
		}
		if found {
			if gotMin != wantMin {
				t.Fatalf("trial %d: Min(%v,%v) = %v, want %v", trial, lo, hi, gotMin, wantMin)
			}
			if gotMax != wantMax {
				t.Fatalf("trial %d: Max(%v,%v) = %v, want %v", trial, lo, hi, gotMax, wantMax)
			}
		}
	}
}

func TestMinMaxAnswerQuery(t *testing.T) {
	tbl := randomTable(1, 500, 50, 8)
	idx, err := BuildMinMax(tbl, "a", dimName(0))
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Func: engine.Min, Col: "a",
		Ranges: []engine.Range{{Col: dimName(0), Lo: 10, Hi: 30}}}
	truth, _ := tbl.Execute(q)
	got, err := idx.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != truth.Value {
		t.Errorf("MIN = %v, want %v", got, truth.Value)
	}
	q.Func = engine.Max
	truth, _ = tbl.Execute(q)
	got, err = idx.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != truth.Value {
		t.Errorf("MAX = %v, want %v", got, truth.Value)
	}
	// Unrestricted query = global extrema.
	full := engine.Query{Func: engine.Max, Col: "a"}
	truth, _ = tbl.Execute(full)
	got, err = idx.Answer(full)
	if err != nil {
		t.Fatal(err)
	}
	if got != truth.Value {
		t.Errorf("global MAX = %v, want %v", got, truth.Value)
	}
}

func TestMinMaxAnswerErrors(t *testing.T) {
	tbl := randomTable(2, 100, 20, 9)
	idx, err := BuildMinMax(tbl, "a", dimName(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Answer(engine.Query{Func: engine.Sum, Col: "a"}); err == nil {
		t.Error("SUM accepted")
	}
	if _, err := idx.Answer(engine.Query{Func: engine.Min, Col: "other"}); err == nil {
		t.Error("wrong aggregate column accepted")
	}
	q := engine.Query{Func: engine.Min, Col: "a",
		Ranges: []engine.Range{{Col: dimName(1), Lo: 1, Hi: 5}}}
	if _, err := idx.Answer(q); err == nil {
		t.Error("foreign dimension accepted")
	}
	empty := engine.Query{Func: engine.Min, Col: "a",
		Ranges: []engine.Range{{Col: dimName(0), Lo: 1000, Hi: 2000}}}
	if _, err := idx.Answer(empty); err == nil {
		t.Error("empty range produced a value")
	}
}

func TestMinMaxValidation(t *testing.T) {
	tbl := randomTable(1, 50, 10, 10)
	if _, err := BuildMinMax(tbl, "nope", dimName(0)); err == nil {
		t.Error("bad aggregate column accepted")
	}
	if _, err := BuildMinMax(tbl, "a", "nope"); err == nil {
		t.Error("bad dimension column accepted")
	}
	idx, err := BuildMinMax(tbl, "a", dimName(0))
	if err != nil {
		t.Fatal(err)
	}
	if idx.SizeBytes() <= 0 {
		t.Error("SizeBytes = 0")
	}
}

func TestMinMaxSingleRow(t *testing.T) {
	tbl := engine.MustNewTable("one",
		engine.NewFloatColumn("a", []float64{42}),
		engine.NewIntColumn("c", []int64{7}),
	)
	idx, err := BuildMinMax(tbl, "a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := idx.Min(7, 7); !ok || v != 42 {
		t.Errorf("Min = %v ok=%v", v, ok)
	}
	if _, ok := idx.Min(8, 9); ok {
		t.Error("empty range reported a value")
	}
}
