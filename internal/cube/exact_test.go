package cube

import (
	"bytes"
	"math"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

func TestBuildFullAnswersEverything(t *testing.T) {
	r := stats.NewRNG(11)
	tbl := randomTable(2, 400, 15, 11)
	c, err := BuildFull(tbl, Template{Agg: "a", Dims: dims(2)})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		var ranges []engine.Range
		for _, d := range dims(2) {
			lo := float64(r.Intn(15) + 1)
			hi := lo + float64(r.Intn(15))
			ranges = append(ranges, engine.Range{Col: d, Lo: lo, Hi: hi})
		}
		q := engine.Query{Func: engine.Sum, Col: "a", Ranges: ranges}
		truth, _ := tbl.Execute(q)
		got, ok := c.AnswerExact(q)
		if !ok {
			t.Fatalf("full cube failed to answer %v", q)
		}
		if math.Abs(got-truth.Value) > 1e-6 {
			t.Fatalf("AnswerExact = %v, want %v for %v", got, truth.Value, q)
		}
	}
}

func TestAnswerExactPartialDims(t *testing.T) {
	tbl := randomTable(2, 300, 10, 12)
	c, err := BuildFull(tbl, Template{Agg: "a", Dims: dims(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Restrict only the first dimension; the second is unrestricted.
	q := engine.Query{Func: engine.Sum, Col: "a", Ranges: []engine.Range{{Col: dimName(0), Lo: 3, Hi: 7}}}
	truth, _ := tbl.Execute(q)
	got, ok := c.AnswerExact(q)
	if !ok {
		t.Fatal("partial-dim query rejected")
	}
	if math.Abs(got-truth.Value) > 1e-6 {
		t.Errorf("AnswerExact = %v, want %v", got, truth.Value)
	}
}

func TestAnswerExactRejectsMisaligned(t *testing.T) {
	tbl := randomTable(1, 200, 100, 13)
	c, err := Build(tbl, Template{Agg: "a", Dims: dims(1)}, [][]float64{{20, 40, 60, 80, 100}})
	if err != nil {
		t.Fatal(err)
	}
	// Right endpoint 50 is not a partition point.
	q := engine.Query{Func: engine.Sum, Col: "a", Ranges: []engine.Range{{Col: dimName(0), Lo: 21, Hi: 50}}}
	if _, ok := c.AnswerExact(q); ok {
		t.Error("misaligned query answered")
	}
	// Aligned: (20, 60] == [21, 60] for integer ordinals.
	q.Ranges[0].Hi = 60
	got, ok := c.AnswerExact(q)
	if !ok {
		t.Fatal("aligned query rejected")
	}
	truth, _ := tbl.Execute(q)
	if math.Abs(got-truth.Value) > 1e-6 {
		t.Errorf("aligned answer = %v, want %v", got, truth.Value)
	}
}

func TestAnswerExactRejectsWrongQueries(t *testing.T) {
	tbl := randomTable(1, 100, 10, 14)
	c, _ := BuildFull(tbl, Template{Agg: "a", Dims: dims(1)})
	if _, ok := c.AnswerExact(engine.Query{Func: engine.Avg, Col: "a"}); ok {
		t.Error("AVG answered by SUM cube")
	}
	if _, ok := c.AnswerExact(engine.Query{Func: engine.Sum, Col: "other"}); ok {
		t.Error("wrong measure answered")
	}
	if _, ok := c.AnswerExact(engine.Query{Func: engine.Count}); ok {
		t.Error("COUNT answered by SUM cube")
	}
	q := engine.Query{Func: engine.Sum, Col: "a", Ranges: []engine.Range{{Col: "unknown", Lo: 1, Hi: 2}}}
	if _, ok := c.AnswerExact(q); ok {
		t.Error("unknown dimension answered")
	}
}

func TestAnswerExactEmptyIntersection(t *testing.T) {
	tbl := randomTable(1, 100, 10, 15)
	c, _ := BuildFull(tbl, Template{Agg: "a", Dims: dims(1)})
	q := engine.Query{Func: engine.Sum, Col: "a", Ranges: []engine.Range{
		{Col: dimName(0), Lo: 1, Hi: 3},
		{Col: dimName(0), Lo: 8, Hi: 10},
	}}
	got, ok := c.AnswerExact(q)
	if !ok || got != 0 {
		t.Errorf("contradictory ranges: got %v ok=%v, want 0 true", got, ok)
	}
}

func TestInsertMatchesRebuild(t *testing.T) {
	tbl := randomTable(2, 200, 10, 16)
	tmpl := Template{Agg: "a", Dims: dims(2)}
	points := [][]float64{{3, 6, 10}, {5, 10}}
	c, err := Build(tbl, tmpl, points)
	if err != nil {
		t.Fatal(err)
	}
	// Insert 30 new rows incrementally, then rebuild from an extended
	// table and compare cells.
	r := stats.NewRNG(17)
	newA := append([]float64(nil), tbl.MustColumn("a").Floats...)
	newC := append([]int64(nil), tbl.MustColumn(dimName(0)).Ints...)
	newD := append([]int64(nil), tbl.MustColumn(dimName(1)).Ints...)
	for i := 0; i < 30; i++ {
		v := math.Floor(r.Float64()*100) / 10
		o1 := int64(r.Intn(10) + 1)
		o2 := int64(r.Intn(10) + 1)
		if err := c.Insert([]float64{float64(o1), float64(o2)}, v); err != nil {
			t.Fatal(err)
		}
		newA = append(newA, v)
		newC = append(newC, o1)
		newD = append(newD, o2)
	}
	tbl2 := engine.MustNewTable("t2",
		engine.NewFloatColumn("a", newA),
		engine.NewIntColumn(dimName(0), newC),
		engine.NewIntColumn(dimName(1), newD),
	)
	c2, err := Build(tbl2, tmpl, points)
	if err != nil {
		t.Fatal(err)
	}
	if c.SourceRows != c2.SourceRows {
		t.Errorf("SourceRows %d != %d", c.SourceRows, c2.SourceRows)
	}
	for i := range c.Cells {
		if math.Abs(c.Cells[i]-c2.Cells[i]) > 1e-9 {
			t.Fatalf("cell %d: %v != %v", i, c.Cells[i], c2.Cells[i])
		}
	}
}

func TestInsertValidation(t *testing.T) {
	tbl := randomTable(1, 50, 10, 18)
	c, _ := Build(tbl, Template{Agg: "a", Dims: dims(1)}, [][]float64{{5, 10}})
	if err := c.Insert([]float64{1, 2}, 1); err == nil {
		t.Error("wrong ordinal count accepted")
	}
	if err := c.Insert([]float64{99}, 1); err == nil {
		t.Error("out-of-domain ordinal accepted")
	}
}

func TestCubeBinaryRoundTrip(t *testing.T) {
	tbl := randomTable(3, 300, 8, 19)
	c, err := Build(tbl, Template{Agg: "a", Dims: dims(3)}, [][]float64{{4, 8}, {2, 5, 8}, {8}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Template.Agg != c.Template.Agg || len(got.Template.Dims) != 3 {
		t.Error("template lost")
	}
	if got.SourceRows != c.SourceRows {
		t.Error("source rows lost")
	}
	for i := range c.Cells {
		if got.Cells[i] != c.Cells[i] {
			t.Fatalf("cell %d differs", i)
		}
	}
	// Strides must be usable after deserialization.
	lo := []int{-1, 0, -1}
	hi := []int{1, 2, 0}
	if got.RangeSum(lo, hi) != c.RangeSum(lo, hi) {
		t.Error("RangeSum differs after round trip")
	}
}

func TestCubeBinaryCorruption(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Error("bad magic accepted")
	}
	tbl := randomTable(1, 50, 10, 20)
	c, _ := Build(tbl, Template{Agg: "a", Dims: dims(1)}, [][]float64{{5, 10}})
	var buf bytes.Buffer
	if err := c.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-5])); err == nil {
		t.Error("truncated cube accepted")
	}
}
