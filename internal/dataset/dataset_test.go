package dataset

import (
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

func colFloats(t *testing.T, tbl *engine.Table, name string) []float64 {
	t.Helper()
	c, err := tbl.Column(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, tbl.NumRows())
	for i := range out {
		out[i] = c.Float(i)
	}
	return out
}

func TestTPCDSkewShape(t *testing.T) {
	tbl := TPCDSkew(TPCDConfig{Rows: 20000, Seed: 1})
	if tbl.NumRows() != 20000 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	for _, col := range []string{
		"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity",
		"l_extendedprice", "l_discount", "l_tax", "l_returnflag",
		"l_linestatus", "l_shipdate", "l_commitdate", "l_receiptdate",
	} {
		if !tbl.HasColumn(col) {
			t.Errorf("missing column %s", col)
		}
	}
}

func TestTPCDSkewDeterministic(t *testing.T) {
	a := TPCDSkew(TPCDConfig{Rows: 1000, Seed: 7})
	b := TPCDSkew(TPCDConfig{Rows: 1000, Seed: 7})
	pa := colFloats(t, a, "l_extendedprice")
	pb := colFloats(t, b, "l_extendedprice")
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("row %d differs: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestTPCDSkewZipfHead(t *testing.T) {
	tbl := TPCDSkew(TPCDConfig{Rows: 50000, Seed: 3, Zipf: 2})
	keys := colFloats(t, tbl, "l_orderkey")
	ones := 0
	for _, k := range keys {
		if k == 1 {
			ones++
		}
	}
	// With z=2 the top key should absorb a large fraction of rows.
	if frac := float64(ones) / float64(len(keys)); frac < 0.3 {
		t.Errorf("top orderkey share = %v, expected heavy Zipf head", frac)
	}
}

func TestTPCDSkewCorrelations(t *testing.T) {
	tbl := TPCDSkew(TPCDConfig{Rows: 50000, Seed: 5})
	price := colFloats(t, tbl, "l_extendedprice")
	qty := colFloats(t, tbl, "l_quantity")
	ship := colFloats(t, tbl, "l_shipdate")
	commit := colFloats(t, tbl, "l_commitdate")
	if c := stats.Correlation(price, qty); c < 0.5 {
		t.Errorf("corr(price, quantity) = %v, want strong positive", c)
	}
	if c := stats.Correlation(price, ship); c < 0.1 {
		t.Errorf("corr(price, shipdate) = %v, want positive (seasonal trend)", c)
	}
	if c := stats.Correlation(ship, commit); c < 0.95 {
		t.Errorf("corr(shipdate, commitdate) = %v, want near 1", c)
	}
}

func TestTPCDSkewValueDomains(t *testing.T) {
	tbl := TPCDSkew(TPCDConfig{Rows: 10000, Seed: 11})
	qty := tbl.MustColumn("l_quantity")
	for i := 0; i < tbl.NumRows(); i++ {
		if v := qty.Ints[i]; v < 1 || v > 50 {
			t.Fatalf("quantity %d out of TPC-D domain", v)
		}
	}
	disc := tbl.MustColumn("l_discount")
	for i := 0; i < tbl.NumRows(); i++ {
		if v := disc.Floats[i]; v < 0 || v > 0.10001 {
			t.Fatalf("discount %v out of domain", v)
		}
	}
	flags := tbl.MustColumn("l_returnflag")
	if len(flags.Dict) != 3 {
		t.Errorf("returnflag dict = %v", flags.Dict)
	}
}

func TestTPCDSkewRareGroup(t *testing.T) {
	tbl := TPCDSkew(TPCDConfig{Rows: 100000, Seed: 13})
	res, err := tbl.Execute(engine.Query{Func: Count, GroupBy: []string{"l_returnflag", "l_linestatus"}})
	if err != nil {
		t.Fatal(err)
	}
	var nf int
	for _, g := range res.Groups {
		if g.Key == "N|F" {
			nf = g.Rows
		}
	}
	if nf == 0 {
		t.Error("expected a small but nonempty N|F group")
	}
	if frac := float64(nf) / 100000; frac > 0.01 {
		t.Errorf("N|F group share = %v, expected rare", frac)
	}
}

// Count is re-exported for readability in this test file.
const Count = engine.Count

func TestBigBenchShape(t *testing.T) {
	tbl := BigBenchUserVisits(BigBenchConfig{Rows: 20000, Seed: 2})
	if tbl.NumRows() != 20000 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	for _, col := range []string{"sourceIP", "visitDate", "adRevenue", "duration"} {
		if !tbl.HasColumn(col) {
			t.Errorf("missing column %s", col)
		}
	}
}

func TestBigBenchHeavyTail(t *testing.T) {
	tbl := BigBenchUserVisits(BigBenchConfig{Rows: 100000, Seed: 4})
	rev := colFloats(t, tbl, "adRevenue")
	mean := stats.Mean(rev)
	med := stats.Median(rev)
	if mean < med*1.1 {
		t.Errorf("mean %v vs median %v: expected right-skewed revenue", mean, med)
	}
	mx := rev[0]
	for _, v := range rev {
		if v > mx {
			mx = v
		}
	}
	if mx < 20*mean {
		t.Errorf("max %v vs mean %v: expected heavy tail", mx, mean)
	}
}

func TestBigBenchDurationRevenueCorrelation(t *testing.T) {
	tbl := BigBenchUserVisits(BigBenchConfig{Rows: 50000, Seed: 6})
	rev := colFloats(t, tbl, "adRevenue")
	dur := colFloats(t, tbl, "duration")
	if c := stats.Correlation(rev, dur); c < 0.2 {
		t.Errorf("corr(revenue, duration) = %v, want positive", c)
	}
}

func TestTLCTripShape(t *testing.T) {
	tbl := TLCTrip(TLCTripConfig{Rows: 20000, Seed: 8})
	for _, col := range []string{
		"Pickup_Date", "Pickup_Time", "vendor_name", "Fare_Amt", "Rate_Code",
		"Passenger_Count", "Dropoff_Date", "Dropoff_Time", "surcharge",
		"Tip_Amt", "Distance",
	} {
		if !tbl.HasColumn(col) {
			t.Errorf("missing column %s", col)
		}
	}
}

func TestTLCTripCorrelations(t *testing.T) {
	tbl := TLCTrip(TLCTripConfig{Rows: 50000, Seed: 9})
	dist := colFloats(t, tbl, "Distance")
	fare := colFloats(t, tbl, "Fare_Amt")
	tip := colFloats(t, tbl, "Tip_Amt")
	if c := stats.Correlation(dist, fare); c < 0.8 {
		t.Errorf("corr(distance, fare) = %v, want strong", c)
	}
	if c := stats.Correlation(fare, tip); c < 0.3 {
		t.Errorf("corr(fare, tip) = %v, want positive", c)
	}
}

func TestTLCTripInvariants(t *testing.T) {
	tbl := TLCTrip(TLCTripConfig{Rows: 10000, Seed: 10})
	pd := tbl.MustColumn("Pickup_Date").Ints
	dd := tbl.MustColumn("Dropoff_Date").Ints
	pt := tbl.MustColumn("Pickup_Time").Ints
	dt := tbl.MustColumn("Dropoff_Time").Ints
	fare := tbl.MustColumn("Fare_Amt").Floats
	for i := range pd {
		if dd[i] < pd[i] {
			t.Fatalf("row %d: dropoff date before pickup", i)
		}
		if dd[i] == pd[i] && dt[i] < pt[i] {
			t.Fatalf("row %d: dropoff time before pickup same day", i)
		}
		if fare[i] < 2.5 {
			t.Fatalf("row %d: fare %v below flag drop", i, fare[i])
		}
		if pt[i] < 0 || pt[i] >= 24*60 {
			t.Fatalf("row %d: pickup time %d out of range", i, pt[i])
		}
	}
}

func TestTLCTripNightSurcharge(t *testing.T) {
	tbl := TLCTrip(TLCTripConfig{Rows: 10000, Seed: 12})
	pt := tbl.MustColumn("Pickup_Time").Ints
	sur := tbl.MustColumn("surcharge").Floats
	for i := range pt {
		night := pt[i] >= 20*60 || pt[i] < 6*60
		if night && sur[i] != 0.5 {
			t.Fatalf("row %d: night trip without surcharge", i)
		}
		if !night && sur[i] != 0 {
			t.Fatalf("row %d: day trip with surcharge", i)
		}
	}
}
