package dataset

import (
	"math"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// BigBenchConfig configures the BigBench UserVisits generator.
type BigBenchConfig struct {
	// Rows is the number of visits.
	Rows int
	// Seed makes generation deterministic.
	Seed uint64
	// IPs is the number of distinct source IPs. Defaults to Rows/8.
	IPs int
}

// BigBenchUserVisits generates the UserVisits table of the AMPLab Big Data
// Benchmark: per-visit ad revenue with a heavy (Pareto-like) tail, a
// visit-date axis with weekly periodicity and a growth trend, visit
// durations correlated with revenue, and Zipf-popular source IPs.
// The paper's Figure 11(a) template is [SUM(adRevenue), visitDate,
// duration, sourceIP].
func BigBenchUserVisits(cfg BigBenchConfig) *engine.Table {
	n := cfg.Rows
	if cfg.IPs == 0 {
		cfg.IPs = maxInt(n/8, 1)
	}
	r := stats.NewRNG(cfg.Seed)
	zIP := stats.NewZipf(cfg.IPs, 1.2)

	sourceIP := make([]int64, n)
	visitDate := make([]int64, n)
	adRevenue := make([]float64, n)
	duration := make([]int64, n)
	agent := make([]string, n)
	countryCode := make([]string, n)

	agents := []string{"chrome", "firefox", "safari", "edge", "opera"}
	countries := []string{"USA", "CHN", "IND", "BRA", "DEU", "GBR", "JPN", "CAN"}

	const days = 365 * 2
	for i := 0; i < n; i++ {
		sourceIP[i] = int64(zIP.Draw(r))
		// Traffic grows over time: later days are more likely.
		d := int64(float64(days) * pow(r.Float64(), 0.7))
		if d >= days {
			d = days - 1
		}
		visitDate[i] = d + 1

		// Revenue: lognormal body with a Pareto tail, scaled up on
		// weekends (visitDate%7 in {5,6}) — this couples adRevenue to
		// visitDate so precomputation placement matters.
		rev := math.Exp(0.5 * r.NormFloat64())
		if r.Float64() < 0.005 {
			rev *= 20 / math.Max(r.Float64(), 0.05) // heavy tail
		}
		if visitDate[i]%7 >= 5 {
			rev *= 1.8
		}
		adRevenue[i] = rev

		// Longer visits tend to earn more.
		duration[i] = int64(10 + 30*rev*r.Float64())
		if duration[i] > 3600 {
			duration[i] = 3600
		}
		agent[i] = agents[r.Intn(len(agents))]
		countryCode[i] = countries[r.Intn(len(countries))]
	}

	return engine.MustNewTable("uservisits",
		engine.NewIntColumn("sourceIP", sourceIP),
		engine.NewIntColumn("visitDate", visitDate),
		engine.NewFloatColumn("adRevenue", adRevenue),
		engine.NewIntColumn("duration", duration),
		engine.NewStringColumn("userAgent", agent),
		engine.NewStringColumn("countryCode", countryCode),
	)
}

func pow(x, p float64) float64 { return math.Pow(x, p) }
