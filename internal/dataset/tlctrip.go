package dataset

import (
	"math"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// TLCTripConfig configures the synthetic NYC yellow-taxi generator.
type TLCTripConfig struct {
	// Rows is the number of trips.
	Rows int
	// Seed makes generation deterministic.
	Seed uint64
	// Days is the span of pickup dates (paper: 2009-2016 ≈ 2900 days).
	// Defaults to 2900.
	Days int
}

// TLCTrip generates a trip table with the columns the paper's ten TLCTrip
// templates use: Pickup_Date, Pickup_Time, vendor_name, Fare_Amt,
// Rate_Code, Passenger_Count, Dropoff_Date, Dropoff_Time, surcharge,
// Tip_Amt, and the measure Distance. Correlations mirror the real data:
// fares and tips scale with distance, dropoff time trails pickup time by
// the trip duration, night pickups carry a surcharge, and distances are
// heavy-tailed (many short Manhattan hops, occasional airport runs).
func TLCTrip(cfg TLCTripConfig) *engine.Table {
	n := cfg.Rows
	if cfg.Days == 0 {
		cfg.Days = 2900
	}
	r := stats.NewRNG(cfg.Seed)

	pickupDate := make([]int64, n)
	pickupTime := make([]int64, n) // minutes since midnight
	vendor := make([]string, n)
	fare := make([]float64, n)
	rateCode := make([]int64, n)
	passengers := make([]int64, n)
	dropoffDate := make([]int64, n)
	dropoffTime := make([]int64, n)
	surcharge := make([]float64, n)
	tip := make([]float64, n)
	distance := make([]float64, n)

	vendors := []string{"CMT", "VTS", "DDS"}
	for i := 0; i < n; i++ {
		pickupDate[i] = int64(r.Intn(cfg.Days)) + 1
		// Bimodal pickup times: morning and evening rush hours.
		var minute float64
		if r.Float64() < 0.5 {
			minute = 8.5*60 + 90*r.NormFloat64()
		} else {
			minute = 18*60 + 150*r.NormFloat64()
		}
		if minute < 0 {
			minute += 24 * 60
		}
		pickupTime[i] = int64(math.Mod(minute, 24*60))

		// Distance: lognormal with an airport-run tail.
		d := math.Exp(0.8*r.NormFloat64() + 0.5)
		if r.Float64() < 0.02 {
			d += 12 + 5*r.Float64() // JFK/LGA runs
		}
		distance[i] = d

		// Fare: metered base + per-mile, with noise; later years cost
		// more (fare hikes), correlating Fare_Amt with Pickup_Date.
		yearFactor := 1 + 0.3*float64(pickupDate[i])/float64(cfg.Days)
		fare[i] = (2.5 + 2.5*d + 0.5*r.NormFloat64()) * yearFactor
		if fare[i] < 2.5 {
			fare[i] = 2.5
		}

		// Trips average ~12 mph in traffic.
		durMin := int64(d*5 + 3 + 4*r.Float64())
		dropT := pickupTime[i] + durMin
		dropoffDate[i] = pickupDate[i] + dropT/(24*60)
		dropoffTime[i] = dropT % (24 * 60)

		rateCode[i] = 1
		if distance[i] > 12 {
			rateCode[i] = 2 // JFK flat rate
		} else if r.Float64() < 0.01 {
			rateCode[i] = int64(r.Intn(4)) + 3
		}
		passengers[i] = int64(r.Intn(4)) + 1
		if r.Float64() < 0.1 {
			passengers[i] += int64(r.Intn(3))
		}

		// Night surcharge 20:00-06:00.
		if pickupTime[i] >= 20*60 || pickupTime[i] < 6*60 {
			surcharge[i] = 0.5
		}

		// Tips: ~60% of riders tip, mostly 15-25% of fare.
		if r.Float64() < 0.6 {
			tip[i] = fare[i] * (0.15 + 0.1*r.Float64())
		}
		vendor[i] = vendors[r.Intn(len(vendors))]
	}

	return engine.MustNewTable("tlctrip",
		engine.NewIntColumn("Pickup_Date", pickupDate),
		engine.NewIntColumn("Pickup_Time", pickupTime),
		engine.NewStringColumn("vendor_name", vendor),
		engine.NewFloatColumn("Fare_Amt", fare),
		engine.NewIntColumn("Rate_Code", rateCode),
		engine.NewIntColumn("Passenger_Count", passengers),
		engine.NewIntColumn("Dropoff_Date", dropoffDate),
		engine.NewIntColumn("Dropoff_Time", dropoffTime),
		engine.NewFloatColumn("surcharge", surcharge),
		engine.NewFloatColumn("Tip_Amt", tip),
		engine.NewFloatColumn("Distance", distance),
	)
}
