// Package dataset generates the three datasets of the paper's evaluation
// at configurable scale: TPCD-Skew lineitem (Zipf-skewed TPC-D), BigBench
// UserVisits, and a TLCTrip-like NYC yellow-taxi table.
//
// The paper runs on 100-200 GB extracts (0.6-1.4 billion rows). Absolute
// scale does not change which method wins — the error behaviour is driven
// by selectivity, value skew, and attribute correlation — so these
// generators reproduce the schemas, the Zipf z=2 skew, the heavy tails,
// and the cross-attribute correlations at laptop-friendly row counts
// (documented as substitution #2 in DESIGN.md).
package dataset

import (
	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// TPCDConfig configures the TPCD-Skew lineitem generator.
type TPCDConfig struct {
	// Rows is the number of lineitem rows to generate.
	Rows int
	// Seed makes generation deterministic.
	Seed uint64
	// Zipf is the skew parameter z of the TPCD-Skew benchmark (the paper
	// uses z = 2).
	Zipf float64
	// Orders is the number of distinct l_orderkey values (scaled from the
	// paper's 1.5e8). Defaults to Rows/4 when zero.
	Orders int
	// Parts is the number of distinct l_partkey values. Defaults to
	// Rows/5 when zero.
	Parts int
	// Suppliers is the number of distinct l_suppkey values (paper:
	// 7.5e4). Defaults to Rows/40 when zero.
	Suppliers int
}

func (c *TPCDConfig) fillDefaults() {
	if c.Zipf == 0 {
		c.Zipf = 2
	}
	if c.Orders == 0 {
		c.Orders = maxInt(c.Rows/4, 1)
	}
	if c.Parts == 0 {
		c.Parts = maxInt(c.Rows/5, 1)
	}
	if c.Suppliers == 0 {
		c.Suppliers = maxInt(c.Rows/40, 1)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TPCDSkew generates a lineitem table following the TPCD-Skew benchmark:
// key columns are Zipf(z)-distributed, quantities/discounts/taxes follow
// the TPC-D value domains, prices are correlated with quantity and carry a
// seasonal trend over l_shipdate (so that ship/commit dates are the
// "strongly correlated" attributes the paper picks for Figure 8), and the
// commit/receipt dates trail the ship date.
func TPCDSkew(cfg TPCDConfig) *engine.Table {
	cfg.fillDefaults()
	n := cfg.Rows
	r := stats.NewRNG(cfg.Seed)
	zOrder := stats.NewZipf(cfg.Orders, cfg.Zipf)
	zPart := stats.NewZipf(cfg.Parts, cfg.Zipf)
	zSupp := stats.NewZipf(cfg.Suppliers, cfg.Zipf)

	orderkey := make([]int64, n)
	partkey := make([]int64, n)
	suppkey := make([]int64, n)
	linenumber := make([]int64, n)
	quantity := make([]int64, n)
	extendedprice := make([]float64, n)
	discount := make([]float64, n)
	tax := make([]float64, n)
	returnflag := make([]string, n)
	linestatus := make([]string, n)
	shipdate := make([]int64, n)
	commitdate := make([]int64, n)
	receiptdate := make([]int64, n)

	const days = 2526 // TPC-D: 1992-01-01 .. 1998-12-01
	for i := 0; i < n; i++ {
		orderkey[i] = int64(zOrder.Draw(r))
		partkey[i] = int64(zPart.Draw(r))
		suppkey[i] = int64(zSupp.Draw(r))
		linenumber[i] = int64(r.Intn(7) + 1)
		quantity[i] = int64(r.Intn(50) + 1)

		ship := int64(r.Intn(days)) + 1
		shipdate[i] = ship
		commitdate[i] = ship + int64(r.Intn(61)) - 30 // commit within ±30 days
		if commitdate[i] < 1 {
			commitdate[i] = 1
		}
		receiptdate[i] = ship + int64(r.Intn(30)) + 1

		// Base price per unit drawn lognormal-ish; a seasonal multiplier
		// over the ship date injects the price↔date correlation used by
		// the hill-climbing experiment, and a heavy tail creates the
		// outliers that measure-biased sampling targets.
		unit := 900 + 100*r.NormFloat64()
		if unit < 1 {
			unit = 1
		}
		season := 1 + 0.5*float64(ship)/days // prices drift upward over time
		price := float64(quantity[i]) * unit * season
		if r.Float64() < 0.001 { // rare outliers, ~10x
			price *= 10
		}
		extendedprice[i] = price

		discount[i] = float64(r.Intn(11)) / 100 // 0.00 .. 0.10
		tax[i] = float64(r.Intn(9)) / 100       // 0.00 .. 0.08

		switch r.Intn(3) {
		case 0:
			returnflag[i] = "R"
		case 1:
			returnflag[i] = "A"
		default:
			returnflag[i] = "N"
		}
		// Make one (flag, status) combination rare so stratified sampling
		// has a tiny group to protect, mirroring the paper's "<N,F>" note.
		if returnflag[i] == "N" && r.Float64() < 0.995 {
			linestatus[i] = "O"
		} else if r.Intn(2) == 0 {
			linestatus[i] = "F"
		} else {
			linestatus[i] = "O"
		}
	}

	return engine.MustNewTable("lineitem",
		engine.NewIntColumn("l_orderkey", orderkey),
		engine.NewIntColumn("l_partkey", partkey),
		engine.NewIntColumn("l_suppkey", suppkey),
		engine.NewIntColumn("l_linenumber", linenumber),
		engine.NewIntColumn("l_quantity", quantity),
		engine.NewFloatColumn("l_extendedprice", extendedprice),
		engine.NewFloatColumn("l_discount", discount),
		engine.NewFloatColumn("l_tax", tax),
		engine.NewStringColumn("l_returnflag", returnflag),
		engine.NewStringColumn("l_linestatus", linestatus),
		engine.NewIntColumn("l_shipdate", shipdate),
		engine.NewIntColumn("l_commitdate", commitdate),
		engine.NewIntColumn("l_receiptdate", receiptdate),
	)
}
