package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
)

// The experiment runners are exercised at Small scale so the suite stays
// fast; the full-scale runs live in bench_test.go and cmd/aqppp-bench.

func TestRunTable1Small(t *testing.T) {
	rep, err := RunTable1(context.Background(), Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (AQP, AggPre, AQP++, AQP(large), APA+)", len(rep.Rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rep.Rows {
		byName[r.System] = r
	}
	aqpRow := byName["AQP"]
	ppRow := byName["AQP++"]
	aggRow := byName["AggPre"]
	if ppRow.MdnErr >= aqpRow.MdnErr {
		t.Errorf("AQP++ mdn %.3f%% not better than AQP %.3f%%", 100*ppRow.MdnErr, 100*aqpRow.MdnErr)
	}
	if !aggRow.Estimated {
		t.Error("AggPre row should be estimated")
	}
	if aggRow.SpaceBytes <= ppRow.SpaceBytes {
		t.Error("full P-Cube not bigger than BP-Cube")
	}
	if aggRow.MdnErr != 0 {
		t.Error("AggPre is exact")
	}
	if rep.FullCubeCells <= int64(rep.Scale.K) {
		t.Errorf("full cube cells %d suspiciously small", rep.FullCubeCells)
	}
	out := rep.String()
	for _, want := range []string{"AQP++", "AggPre", "APA+", "mdn err"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigure7Small(t *testing.T) {
	rep, err := RunFigure7(context.Background(), Small(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	for i, p := range rep.Points {
		if p.Dims != i+1 {
			t.Errorf("point %d has dims %d", i, p.Dims)
		}
		if p.PreprocessAQPPP <= p.PreprocessAQP {
			t.Errorf("d=%d: AQP++ preprocessing not above AQP's", p.Dims)
		}
		if p.MdnErrAQP <= 0 {
			t.Errorf("d=%d: AQP error zero", p.Dims)
		}
		// AQP++ can legitimately reach 0 when most queries align exactly
		// with partition points (k approaches the sample's resolution).
		if p.MdnErrAQPPP < 0 {
			t.Errorf("d=%d: negative AQP++ error", p.Dims)
		}
	}
	// 1D should show the largest improvement (fixed k spreads thin as d
	// grows) — allow slack but require 1D to beat AQP.
	if rep.Points[0].MdnErrAQPPP >= rep.Points[0].MdnErrAQP {
		t.Error("1D AQP++ not better than AQP")
	}
	if !strings.Contains(rep.String(), "Figure 7") {
		t.Error("report header missing")
	}
}

func TestRunFigure8Small(t *testing.T) {
	rep, err := RunFigure8(context.Background(), Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dims) != 2 {
		t.Fatalf("dims = %d", len(rep.Dims))
	}
	for _, d := range rep.Dims {
		if len(d.GlobalTrace) == 0 || len(d.LocalTrace) == 0 {
			t.Fatal("empty trace")
		}
		gFinal := d.GlobalTrace[len(d.GlobalTrace)-1]
		lFinal := d.LocalTrace[len(d.LocalTrace)-1]
		if gFinal > lFinal*1.0001 {
			t.Errorf("%s: global (%v) worse than local (%v)", d.Dim, gFinal, lFinal)
		}
		// Both start from the same equal partition.
		if d.GlobalTrace[0] != d.LocalTrace[0] {
			t.Errorf("%s: traces start differently", d.Dim)
		}
	}
	if !strings.Contains(rep.String(), "global") {
		t.Error("report missing traces")
	}
}

func TestRunFigure9Small(t *testing.T) {
	rep, err := RunFigure9(context.Background(), Small(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	// Q3 (the cube's own template) should show a clear improvement.
	q3 := rep.Points[2]
	if q3.MdnErrAQPPP >= q3.MdnErrAQP {
		t.Errorf("Q3: AQP++ %.2f%% not better than AQP %.2f%%",
			100*q3.MdnErrAQPPP, 100*q3.MdnErrAQP)
	}
	if !strings.Contains(rep.String(), "Q3") {
		t.Error("report missing rows")
	}
}

func TestRunFigure10aSmall(t *testing.T) {
	rep, err := RunFigure10a(context.Background(), Small(), []int{20, 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	if rep.Queries == 0 {
		t.Fatal("no outlier-covering queries")
	}
	// Larger cubes should not be (much) worse.
	if rep.Points[1].MdnErrAQPPP > rep.Points[0].MdnErrAQPPP*1.5 {
		t.Errorf("error grew with k: %v -> %v",
			rep.Points[0].MdnErrAQPPP, rep.Points[1].MdnErrAQPPP)
	}
	if !strings.Contains(rep.String(), "measure-biased") {
		t.Error("report header missing")
	}
}

func TestRunFigure10bSmall(t *testing.T) {
	rep, err := RunFigure10b(context.Background(), Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) < 3 {
		t.Fatalf("groups = %d", len(rep.Groups))
	}
	fullySampledSeen := false
	for _, g := range rep.Groups {
		if g.FullySampled {
			fullySampledSeen = true
			if g.MdnErrAQP > 1e-9 || g.MdnErrAQPPP > 1e-9 {
				t.Errorf("fully sampled group %q has nonzero errors", g.Key)
			}
		}
	}
	_ = fullySampledSeen // rare group may or may not be fully covered at tiny scale
	if !strings.Contains(rep.String(), "stratified") {
		t.Error("report header missing")
	}
}

func TestRunFigure11aSmall(t *testing.T) {
	rep, err := RunFigure11a(context.Background(), Small(), []int{30, 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.MdnErrAQP <= 0 {
			t.Error("AQP error zero")
		}
	}
	if !strings.Contains(rep.String(), "BigBench") {
		t.Error("report header missing")
	}
}

func TestRunFigure11bSmall(t *testing.T) {
	rep, err := RunFigure11b(context.Background(), Small(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	if rep.Points[0].MdnErrAQPPP >= rep.Points[0].MdnErrAQP {
		t.Error("1D TLC: AQP++ not better than AQP")
	}
	if !strings.Contains(rep.String(), "TLCTrip") {
		t.Error("report header missing")
	}
}

func TestScales(t *testing.T) {
	d := Default()
	s := Small()
	if s.TPCDRows >= d.TPCDRows {
		t.Error("Small not smaller than Default")
	}
	t.Setenv("AQPPP_TPCD_ROWS", "777")
	t.Setenv("AQPPP_SAMPLE_RATE", "0.5")
	t.Setenv("AQPPP_SEED", "9")
	sc := FromEnv()
	if sc.TPCDRows != 777 || sc.SampleRate != 0.5 || sc.Seed != 9 {
		t.Errorf("env overrides ignored: %+v", sc)
	}
	t.Setenv("AQPPP_SAMPLE_RATE", "nonsense")
	sc = FromEnv()
	if sc.SampleRate != Default().SampleRate {
		t.Error("bad env value not ignored")
	}
}

func TestComparisonHelpers(t *testing.T) {
	c := Comparison{MedianErrAQP: 0.1, MedianErrAQPPP: 0.02}
	if got := c.Improvement(); got != 5 {
		t.Errorf("Improvement = %v", got)
	}
	exact := Comparison{MedianErrAQP: 0.1}
	if !strings.Contains(exact.String(), "AQP") {
		t.Error("String broken")
	}
	if clampErr(math.Inf(1)) != 10 {
		t.Error("clampErr did not clamp Inf")
	}
	if clampErr(math.NaN()) != 10 {
		t.Error("clampErr did not clamp NaN")
	}
}

func TestRunAblationsSmall(t *testing.T) {
	rep, err := RunAblations(context.Background(), Small())
	if err != nil {
		t.Fatal(err)
	}
	// Hill climbing must not lose to the equal partition on correlated
	// data (it starts from it and only accepts improvements).
	if rep.MdnErrHillClimb > rep.MdnErrEqual*1.1 {
		t.Errorf("hill climb %.3f%% worse than equal partition %.3f%%",
			100*rep.MdnErrHillClimb, 100*rep.MdnErrEqual)
	}
	if rep.BruteAgreeRate < 0.9 {
		t.Errorf("P⁻ matched brute force on only %.0f%% of queries", 100*rep.BruteAgreeRate)
	}
	if rep.CandidatesBrute <= rep.CandidatesFast {
		t.Error("brute force considered no more candidates than P⁻")
	}
	if len(rep.SubsampleRates) != 4 {
		t.Fatalf("subsample sweep has %d points", len(rep.SubsampleRates))
	}
	if !strings.Contains(rep.String(), "identification") {
		t.Error("report text broken")
	}
}

func TestRunWaveletStudySmall(t *testing.T) {
	rep, err := RunWaveletStudy(context.Background(), Small(), []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	// The wavelet synopsis should improve with budget; AQP++ should beat
	// the approximate cube at the larger budget (the hybrid's point).
	if rep.Points[1].MdnDevWavelet > rep.Points[0].MdnDevWavelet*1.5 {
		t.Errorf("wavelet deviation grew with budget: %v -> %v",
			rep.Points[0].MdnDevWavelet, rep.Points[1].MdnDevWavelet)
	}
	// The deterministic synopsis can be competitive on smooth 1-D data;
	// what must hold is that AQP++ at any budget beats the *small*
	// synopsis (the hybrid degrades gracefully, the pure approximation
	// does not) and that AQP++ carries a CI while the wavelet cannot.
	last := rep.Points[len(rep.Points)-1]
	if last.MdnDevAQPPP >= rep.Points[0].MdnDevWavelet {
		t.Errorf("AQP++ dev %v not better than the small synopsis's %v",
			last.MdnDevAQPPP, rep.Points[0].MdnDevWavelet)
	}
	if !strings.Contains(rep.String(), "Wavelet") {
		t.Error("report header missing")
	}
}

func TestAblationsWorkloadDriven(t *testing.T) {
	rep, err := RunAblations(context.Background(), Small())
	if err != nil {
		t.Fatal(err)
	}
	if rep.UniformWorkloadErr <= 0 || rep.DrivenWorkloadErr <= 0 {
		t.Fatalf("workload study missing: %+v vs %+v", rep.UniformWorkloadErr, rep.DrivenWorkloadErr)
	}
	// Workload-driven sampling should not be dramatically worse on the
	// workload it was built for (it usually wins; small scales are noisy).
	if rep.DrivenWorkloadErr > rep.UniformWorkloadErr*1.5 {
		t.Errorf("workload-driven %.2f%% much worse than uniform %.2f%%",
			100*rep.DrivenWorkloadErr, 100*rep.UniformWorkloadErr)
	}
	if !strings.Contains(rep.String(), "workload-driven") {
		t.Error("report missing workload section")
	}
}
