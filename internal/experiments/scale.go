// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the synthetic datasets: Table 1, Figures 7(a-c), 8,
// 9, 10(a-b) and 11(a-b). Each experiment has a Run function returning a
// typed report whose String method prints the same rows/series the paper
// reports.
//
// The paper runs 100-200 GB datasets on a commercial OLAP server; this
// harness defaults to laptop scale (see DESIGN.md substitution #2) and
// scales sample rates and cube budgets so that sample sizes and
// cells-per-query stay in the paper's regime. Absolute numbers differ;
// the comparisons' shape is what EXPERIMENTS.md tracks.
package experiments

import (
	"os"
	"strconv"
)

// Scale bundles the dataset and workload sizes of a harness run.
type Scale struct {
	// TPCDRows, BigBenchRows, TLCRows size the three datasets (paper:
	// 600M / 752M / 1400M).
	TPCDRows, BigBenchRows, TLCRows int
	// Queries is the workload size per experiment (paper: 1000).
	Queries int
	// SampleRate is the default sampling rate (paper: 0.05%; scaled up
	// so the sample keeps >= ~1000 rows at laptop row counts).
	SampleRate float64
	// K is the default BP-Cube cell budget (paper: 50000).
	K int
	// Seed drives every random choice.
	Seed uint64
}

// Default returns the laptop-scale defaults used by `go test -bench` and
// the examples.
func Default() Scale {
	return Scale{
		TPCDRows:     150000,
		BigBenchRows: 120000,
		TLCRows:      150000,
		Queries:      100,
		SampleRate:   0.01,
		K:            2000,
		Seed:         42,
	}
}

// Small returns a fast scale for unit tests.
func Small() Scale {
	return Scale{
		TPCDRows:     20000,
		BigBenchRows: 15000,
		TLCRows:      20000,
		Queries:      12,
		SampleRate:   0.02,
		K:            200,
		Seed:         42,
	}
}

// FromEnv starts from Default and applies AQPPP_* environment overrides:
// AQPPP_TPCD_ROWS, AQPPP_BIGBENCH_ROWS, AQPPP_TLC_ROWS, AQPPP_QUERIES,
// AQPPP_SAMPLE_RATE, AQPPP_K, AQPPP_SEED.
func FromEnv() Scale {
	sc := Default()
	intEnv := func(name string, dst *int) {
		if v := os.Getenv(name); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				*dst = n
			}
		}
	}
	intEnv("AQPPP_TPCD_ROWS", &sc.TPCDRows)
	intEnv("AQPPP_BIGBENCH_ROWS", &sc.BigBenchRows)
	intEnv("AQPPP_TLC_ROWS", &sc.TLCRows)
	intEnv("AQPPP_QUERIES", &sc.Queries)
	intEnv("AQPPP_K", &sc.K)
	if v := os.Getenv("AQPPP_SAMPLE_RATE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 && f <= 1 {
			sc.SampleRate = f
		}
	}
	if v := os.Getenv("AQPPP_SEED"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			sc.Seed = n
		}
	}
	return sc
}
