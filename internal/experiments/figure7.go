package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/dataset"
	"aqppp/internal/sample"
	"aqppp/internal/workload"
)

// tpcdDimOrder is the paper's ten lineitem condition attributes, in the
// order the nested templates of §7.3 add them.
var tpcdDimOrder = []string{
	"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity",
	"l_discount", "l_tax", "l_shipdate", "l_commitdate", "l_receiptdate",
}

// Figure7Point is one template's measurements.
type Figure7Point struct {
	Dims int
	// PreprocessAQP / PreprocessAQPPP are Figure 7(a): sample creation
	// vs sample + profiles + hill climbing + cube build.
	PreprocessAQP, PreprocessAQPPP time.Duration
	// RespAQP / RespAQPPP are Figure 7(b).
	RespAQP, RespAQPPP time.Duration
	// MdnErrAQP / MdnErrAQPPP are Figure 7(c).
	MdnErrAQP, MdnErrAQPPP float64
	// MdnDevAQP / MdnDevAQPPP are the realized deviations (see
	// Comparison.MedianDev*).
	MdnDevAQP, MdnDevAQPPP float64
}

// Figure7Report reproduces Figures 7(a), 7(b) and 7(c): AQP vs AQP++ as
// the number of condition dimensions grows from 1 to MaxDims.
type Figure7Report struct {
	Scale  Scale
	Points []Figure7Point
}

// String renders all three panels as one table.
func (r *Figure7Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7: varying #dimensions (TPCD-Skew %d rows, k=%d, %.3g%% sample)\n",
		r.Scale.TPCDRows, r.Scale.K, 100*r.Scale.SampleRate)
	fmt.Fprintf(&sb, "%4s | %12s %12s | %12s %12s | %9s %9s %6s | %9s %9s\n",
		"d", "prep AQP", "prep AQP++", "resp AQP", "resp AQP++", "mdn AQP", "mdn AQP++", "gain", "dev AQP", "dev AQP++")
	for _, p := range r.Points {
		gain := 0.0
		if p.MdnErrAQPPP > 0 {
			gain = p.MdnErrAQP / p.MdnErrAQPPP
		}
		fmt.Fprintf(&sb, "%4d | %12v %12v | %12v %12v | %8.2f%% %8.2f%% %5.1fx | %8.2f%% %8.2f%%\n",
			p.Dims,
			p.PreprocessAQP.Round(time.Millisecond), p.PreprocessAQPPP.Round(time.Millisecond),
			p.RespAQP.Round(10*time.Microsecond), p.RespAQPPP.Round(10*time.Microsecond),
			100*p.MdnErrAQP, 100*p.MdnErrAQPPP, gain,
			100*p.MdnDevAQP, 100*p.MdnDevAQPPP)
	}
	return sb.String()
}

// RunFigure7 builds the d = 1..maxDims nested templates and measures
// preprocessing time, response time, and median error for AQP and AQP++.
// maxDims <= 0 runs all ten.
func RunFigure7(ctx context.Context, sc Scale, maxDims int) (*Figure7Report, error) {
	if maxDims <= 0 || maxDims > len(tpcdDimOrder) {
		maxDims = len(tpcdDimOrder)
	}
	tbl := dataset.TPCDSkew(dataset.TPCDConfig{Rows: sc.TPCDRows, Seed: sc.Seed})
	report := &Figure7Report{Scale: sc}

	// One shared sample: AQP's preprocessing is its creation time and is
	// independent of d (Figure 7a's flat line).
	t0 := time.Now()
	s, err := sample.NewUniform(tbl, sc.SampleRate, sc.Seed+2)
	if err != nil {
		return nil, err
	}
	sampleTime := time.Since(t0)

	for d := 1; d <= maxDims; d++ {
		tmpl := cube.Template{Agg: "l_extendedprice", Dims: tpcdDimOrder[:d]}
		queries, err := workload.Generate(tbl, workload.Config{
			Template: tmpl, Count: sc.Queries, Seed: sc.Seed + uint64(10+d),
		})
		if err != nil {
			return nil, err
		}
		proc, bst, err := core.Build(ctx, tbl, core.BuildConfig{
			Template: tmpl, CellBudget: sc.K, Seed: sc.Seed + uint64(20+d),
			PrebuiltSample: s,
		})
		if err != nil {
			return nil, err
		}
		cmp, err := CompareOnWorkload(tbl, proc, queries)
		if err != nil {
			return nil, err
		}
		report.Points = append(report.Points, Figure7Point{
			Dims:            d,
			PreprocessAQP:   sampleTime,
			PreprocessAQPPP: sampleTime + bst.OptimizeTime + bst.CubeTime,
			RespAQP:         cmp.RespAQP,
			RespAQPPP:       cmp.RespAQPPP,
			MdnErrAQP:       cmp.MedianErrAQP,
			MdnErrAQPPP:     cmp.MedianErrAQPPP,
			MdnDevAQP:       cmp.MedianDevAQP,
			MdnDevAQPPP:     cmp.MedianDevAQPPP,
		})
	}
	return report, nil
}
