package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"aqppp/internal/aqp"
	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/dataset"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
	"aqppp/internal/workload"
)

// Figure10aPoint is one cube size's result on the measure-biased sample.
type Figure10aPoint struct {
	K           int
	MdnErrAQP   float64
	MdnErrAQPPP float64
}

// Figure10aReport reproduces Figure 10(a): AQP vs AQP++ on a
// measure-biased sample over outlier-covering queries, varying the
// BP-Cube size.
type Figure10aReport struct {
	Scale   Scale
	Queries int
	Points  []Figure10aPoint
}

// String renders the series.
func (r *Figure10aReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 10(a): measure-biased sampling, %d outlier-covering queries (TPCD-Skew %d rows)\n",
		r.Queries, r.Scale.TPCDRows)
	fmt.Fprintf(&sb, "%8s %10s %10s %6s\n", "k", "mdn AQP", "mdn AQP++", "gain")
	for _, p := range r.Points {
		gain := 0.0
		if p.MdnErrAQPPP > 0 {
			gain = p.MdnErrAQP / p.MdnErrAQPPP
		}
		fmt.Fprintf(&sb, "%8d %9.2f%% %9.2f%% %5.1fx\n", p.K, 100*p.MdnErrAQP, 100*p.MdnErrAQPPP, gain)
	}
	return sb.String()
}

// RunFigure10a draws a measure-biased sample on l_extendedprice, filters
// the workload to outlier-covering queries (median + 3·SD, §7.4), and
// sweeps the cube budget over ks (nil selects the paper-shaped sweep
// k/20 … k/2 relative to sc.K·10, mirroring 1000…10000 vs k=50000).
func RunFigure10a(ctx context.Context, sc Scale, ks []int) (*Figure10aReport, error) {
	if len(ks) == 0 {
		base := sc.K
		ks = []int{base / 20, base / 10, base / 5, base / 2}
		for i := range ks {
			if ks[i] < 4 {
				ks[i] = 4 + i
			}
		}
	}
	tbl := dataset.TPCDSkew(dataset.TPCDConfig{Rows: sc.TPCDRows, Seed: sc.Seed})
	tmpl := cube.Template{Agg: "l_extendedprice", Dims: []string{"l_orderkey", "l_suppkey"}}
	raw, err := workload.Generate(tbl, workload.Config{
		Template: tmpl, Count: sc.Queries * 2, Seed: sc.Seed + 41,
	})
	if err != nil {
		return nil, err
	}
	queries, err := workload.FilterOutlierCovering(tbl, raw, "l_extendedprice")
	if err != nil {
		return nil, err
	}
	if len(queries) > sc.Queries {
		queries = queries[:sc.Queries]
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("experiments: no outlier-covering queries generated")
	}
	s, err := sample.NewMeasureBiased(tbl, "l_extendedprice", sc.SampleRate, sc.Seed+42)
	if err != nil {
		return nil, err
	}
	report := &Figure10aReport{Scale: sc, Queries: len(queries)}
	for _, k := range ks {
		proc, _, err := core.Build(ctx, tbl, core.BuildConfig{
			Template: tmpl, CellBudget: k, Seed: sc.Seed + 43,
			PrebuiltSample: s,
		})
		if err != nil {
			return nil, err
		}
		cmp, err := CompareOnWorkload(tbl, proc, queries)
		if err != nil {
			return nil, err
		}
		report.Points = append(report.Points, Figure10aPoint{
			K: k, MdnErrAQP: cmp.MedianErrAQP, MdnErrAQPPP: cmp.MedianErrAQPPP,
		})
	}
	return report, nil
}

// Figure10bGroup is one group's median errors.
type Figure10bGroup struct {
	Key         string
	MdnErrAQP   float64
	MdnErrAQPPP float64
	// FullySampled marks strata the stratified sample covered entirely
	// (both systems answer such groups exactly — the paper's "<N,F>"
	// observation).
	FullySampled bool
}

// Figure10bReport reproduces Figure 10(b): per-group median errors of
// group-by queries on a stratified sample.
type Figure10bReport struct {
	Scale   Scale
	Queries int
	Groups  []Figure10bGroup
}

// String renders the per-group bars.
func (r *Figure10bReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 10(b): stratified sampling, %d group-by queries (TPCD-Skew %d rows, k=%d)\n",
		r.Queries, r.Scale.TPCDRows, r.Scale.K)
	fmt.Fprintf(&sb, "%-8s %10s %10s %6s %s\n", "group", "mdn AQP", "mdn AQP++", "gain", "")
	for _, g := range r.Groups {
		gain := 0.0
		if g.MdnErrAQPPP > 0 {
			gain = g.MdnErrAQP / g.MdnErrAQPPP
		}
		note := ""
		if g.FullySampled {
			note = "(fully sampled: exact)"
		}
		fmt.Fprintf(&sb, "%-8s %9.2f%% %9.2f%% %5.1fx %s\n",
			"<"+g.Key+">", 100*g.MdnErrAQP, 100*g.MdnErrAQPPP, gain, note)
	}
	return sb.String()
}

// RunFigure10b draws a stratified sample on (l_returnflag, l_linestatus),
// generates group-by range queries over (l_orderkey, l_suppkey), and
// compares per-group median errors. The BP-Cube treats the group-by
// attributes as extra cube dimensions (Appendix C).
func RunFigure10b(ctx context.Context, sc Scale) (*Figure10bReport, error) {
	tbl := dataset.TPCDSkew(dataset.TPCDConfig{Rows: sc.TPCDRows, Seed: sc.Seed})
	groupBy := []string{"l_returnflag", "l_linestatus"}
	tmpl := cube.Template{Agg: "l_extendedprice", Dims: []string{"l_orderkey", "l_suppkey"}}
	queries, err := workload.Generate(tbl, workload.Config{
		Template: tmpl, Count: sc.Queries / 2, Seed: sc.Seed + 51,
		GroupBy: groupBy,
	})
	if err != nil {
		return nil, err
	}
	s, err := sample.NewStratified(tbl, groupBy, sc.SampleRate, 100, sc.Seed+52)
	if err != nil {
		return nil, err
	}
	// Cube dims: condition attributes plus the group-by attributes.
	cubeTmpl := cube.Template{Agg: tmpl.Agg, Dims: append(append([]string(nil), tmpl.Dims...), groupBy...)}
	proc, _, err := core.Build(ctx, tbl, core.BuildConfig{
		Template: cubeTmpl, CellBudget: sc.K, Seed: sc.Seed + 53,
		PrebuiltSample: s,
	})
	if err != nil {
		return nil, err
	}
	perGroupAQP := map[string][]float64{}
	perGroupPP := map[string][]float64{}
	for _, q := range queries {
		truthRes, err := tbl.Execute(q)
		if err != nil {
			return nil, err
		}
		truth := map[string]float64{}
		for _, g := range truthRes.Groups {
			truth[g.Key] = g.Value
		}
		aqpGroups, err := aqp.EstimateGroups(s, q, 0.95)
		if err != nil {
			return nil, err
		}
		for _, ge := range aqpGroups {
			if tv, ok := truth[ge.Key]; ok {
				perGroupAQP[ge.Key] = append(perGroupAQP[ge.Key], clampErr(ge.Est.RelativeError(tv)))
			}
		}
		ppGroups, err := proc.AnswerGroups(ctx, q)
		if err != nil {
			return nil, err
		}
		for _, ga := range ppGroups {
			if tv, ok := truth[ga.Key]; ok {
				perGroupPP[ga.Key] = append(perGroupPP[ga.Key], clampErr(ga.Answer.Estimate.RelativeError(tv)))
			}
		}
	}
	fully := map[string]bool{}
	for _, st := range s.Strata {
		fully[st.Key] = st.SampleRows == st.SourceRows
	}
	report := &Figure10bReport{Scale: sc, Queries: len(queries)}
	keys := make([]string, 0, len(perGroupAQP))
	for k := range perGroupAQP {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		report.Groups = append(report.Groups, Figure10bGroup{
			Key:          strings.ReplaceAll(k, "|", ","),
			MdnErrAQP:    stats.Median(perGroupAQP[k]),
			MdnErrAQPPP:  stats.Median(perGroupPP[k]),
			FullySampled: fully[k],
		})
	}
	return report, nil
}
