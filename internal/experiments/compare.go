package experiments

import (
	"fmt"
	"math"
	"time"

	"aqppp/internal/aqp"
	"aqppp/internal/core"
	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// Comparison aggregates a workload's error and latency for AQP and AQP++
// on the same sample (the paper's head-to-head setting).
type Comparison struct {
	Queries int
	// Median/average relative error (ε/truth at 95%): the §7.1 metric.
	MedianErrAQP, MedianErrAQPPP float64
	AvgErrAQP, AvgErrAQPPP       float64
	// Median actual deviation |est − truth|/truth. The paper reports
	// only the CI-based metric; we track the realized deviation too
	// because at laptop scale a BP-Cube can approach the sample's
	// resolution, where the sample-estimated CI under-reports residual
	// misalignment on the full data.
	MedianDevAQP, MedianDevAQPPP float64
	// Average per-query response time.
	RespAQP, RespAQPPP time.Duration
	// PreUseRate is the fraction of queries where AQP++ chose a non-φ
	// pre.
	PreUseRate float64
}

// Improvement returns the median-error ratio AQP/AQP++ (the paper's
// headline "10x more accurate" style number).
func (c Comparison) Improvement() float64 {
	if c.MedianErrAQPPP == 0 {
		return math.Inf(1)
	}
	return c.MedianErrAQP / c.MedianErrAQPPP
}

// String renders a one-line summary.
func (c Comparison) String() string {
	return fmt.Sprintf("AQP mdn %.3f%% avg %.3f%% (%v) | AQP++ mdn %.3f%% avg %.3f%% (%v) | %.1fx",
		100*c.MedianErrAQP, 100*c.AvgErrAQP, c.RespAQP.Round(time.Microsecond),
		100*c.MedianErrAQPPP, 100*c.AvgErrAQPPP, c.RespAQPPP.Round(time.Microsecond),
		c.Improvement())
}

// CompareOnWorkload answers every query with plain AQP (on the
// processor's sample) and with AQP++, measuring relative error against
// the exact answer and wall-clock response time.
func CompareOnWorkload(tbl *engine.Table, proc *core.Processor, queries []engine.Query) (Comparison, error) {
	var cmp Comparison
	var aqpErrs, ppErrs, aqpDevs, ppDevs []float64
	var aqpTime, ppTime time.Duration
	preUsed := 0
	for _, q := range queries {
		truth, err := tbl.Execute(q)
		if err != nil {
			return cmp, err
		}
		t0 := time.Now()
		plain, err := aqp.EstimateQuery(proc.Sample, q, 0.95)
		if err != nil {
			return cmp, err
		}
		aqpTime += time.Since(t0)
		t1 := time.Now()
		ans, err := proc.Answer(q)
		if err != nil {
			return cmp, err
		}
		ppTime += time.Since(t1)
		aqpErrs = append(aqpErrs, clampErr(plain.RelativeError(truth.Value)))
		ppErrs = append(ppErrs, clampErr(ans.Estimate.RelativeError(truth.Value)))
		aqpDevs = append(aqpDevs, clampErr(relDev(plain.Value, truth.Value)))
		ppDevs = append(ppDevs, clampErr(relDev(ans.Estimate.Value, truth.Value)))
		if !ans.Pre.IsPhi() {
			preUsed++
		}
	}
	n := len(queries)
	cmp.Queries = n
	cmp.MedianErrAQP = stats.Median(aqpErrs)
	cmp.MedianErrAQPPP = stats.Median(ppErrs)
	cmp.AvgErrAQP = stats.Mean(aqpErrs)
	cmp.AvgErrAQPPP = stats.Mean(ppErrs)
	cmp.MedianDevAQP = stats.Median(aqpDevs)
	cmp.MedianDevAQPPP = stats.Median(ppDevs)
	if n > 0 {
		cmp.RespAQP = aqpTime / time.Duration(n)
		cmp.RespAQPPP = ppTime / time.Duration(n)
		cmp.PreUseRate = float64(preUsed) / float64(n)
	}
	return cmp, nil
}

// relDev is the realized relative deviation |est − truth| / |truth|.
func relDev(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// clampErr replaces infinities (truth == 0) with a large sentinel so
// medians stay finite.
func clampErr(e float64) float64 {
	if math.IsInf(e, 0) || math.IsNaN(e) {
		return 10 // 1000% relative error
	}
	return e
}
