package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"aqppp/internal/aqp"
	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/dataset"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
	"aqppp/internal/workload"
)

// WaveletPoint compares the three systems at one storage budget.
type WaveletPoint struct {
	// Budget is the comparable storage unit: BP-Cube cells on one side,
	// wavelet coefficients sized to the same bytes on the other.
	BudgetCells int
	// MdnErrAQP / MdnDevWavelet / MdnErrAQPPP are median errors: AQP and
	// AQP++ report the §7.1 CI metric; the wavelet cube has no
	// probabilistic bound, so its realized deviation is reported.
	MdnErrAQP     float64
	MdnDevWavelet float64
	MdnErrAQPPP   float64
	MdnDevAQPPP   float64
}

// WaveletReport is the §8 "cube approximation under AQP++" study: at
// matched storage, a wavelet-compressed cube answered alone (approximate
// AggPre, Vitter & Wang [68]) versus AQP++'s sample + exact BP-Cube
// hybrid.
type WaveletReport struct {
	Scale  Scale
	Points []WaveletPoint
}

// String renders the study.
func (r *WaveletReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Wavelet study: approximate cube vs AQP++ at matched storage (TPCD-Skew %d rows)\n", r.Scale.TPCDRows)
	fmt.Fprintf(&sb, "%8s %10s %14s %22s\n", "cells", "mdn AQP", "wavelet dev", "AQP++ (CI | dev)")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%8d %9.2f%% %13.2f%% %12.2f%% | %6.2f%%\n",
			p.BudgetCells, 100*p.MdnErrAQP, 100*p.MdnDevWavelet,
			100*p.MdnErrAQPPP, 100*p.MdnDevAQPPP)
	}
	return sb.String()
}

// RunWaveletStudy sweeps storage budgets on the TPCD-Skew 1-D template.
func RunWaveletStudy(ctx context.Context, sc Scale, budgets []int) (*WaveletReport, error) {
	if len(budgets) == 0 {
		budgets = []int{sc.K / 20, sc.K / 5, sc.K}
		for i := range budgets {
			if budgets[i] < 8 {
				budgets[i] = 8 + i
			}
		}
	}
	tbl := dataset.TPCDSkew(dataset.TPCDConfig{Rows: sc.TPCDRows, Seed: sc.Seed})
	tmpl := cube.Template{Agg: "l_extendedprice", Dims: []string{"l_orderkey"}}
	queries, err := workload.Generate(tbl, workload.Config{
		Template: tmpl, Count: sc.Queries, Seed: sc.Seed + 201,
	})
	if err != nil {
		return nil, err
	}
	s, err := sample.NewUniform(tbl, sc.SampleRate, sc.Seed+202)
	if err != nil {
		return nil, err
	}
	report := &WaveletReport{Scale: sc}
	for _, cells := range budgets {
		proc, _, err := core.Build(ctx, tbl, core.BuildConfig{
			Template: tmpl, CellBudget: cells, Seed: sc.Seed + 203,
			PrebuiltSample: s,
		})
		if err != nil {
			return nil, err
		}
		// The wavelet synopsis gets the same byte budget: a cell is 8
		// bytes, a kept coefficient 16 (index + value).
		keep := cells / 2
		if keep < 2 {
			keep = 2
		}
		w, err := cube.BuildWavelet(tbl, tmpl, [][]float64{densePoints(tbl, tmpl.Dims[0], cells)}, keep)
		if err != nil {
			return nil, err
		}
		var aqpErrs, wavDevs, ppErrs, ppDevs []float64
		for _, q := range queries {
			truth, err := tbl.Execute(q)
			if err != nil {
				return nil, err
			}
			plain, err := aqp.EstimateSum(s, q, 0.95)
			if err != nil {
				return nil, err
			}
			ans, err := proc.Answer(q)
			if err != nil {
				return nil, err
			}
			wv := waveletAnswer(w, q.Ranges[0].Lo, q.Ranges[0].Hi)
			aqpErrs = append(aqpErrs, clampErr(plain.RelativeError(truth.Value)))
			ppErrs = append(ppErrs, clampErr(ans.Estimate.RelativeError(truth.Value)))
			ppDevs = append(ppDevs, clampErr(relDev(ans.Estimate.Value, truth.Value)))
			wavDevs = append(wavDevs, clampErr(relDev(wv, truth.Value)))
		}
		report.Points = append(report.Points, WaveletPoint{
			BudgetCells:   cells,
			MdnErrAQP:     stats.Median(aqpErrs),
			MdnDevWavelet: stats.Median(wavDevs),
			MdnErrAQPPP:   stats.Median(ppErrs),
			MdnDevAQPPP:   stats.Median(ppDevs),
		})
	}
	return report, nil
}

// densePoints returns k equal-frequency partition points for the wavelet
// grid (the synopsis compresses a bucket array; equal-frequency buckets
// are the standard choice).
func densePoints(tbl *engine.Table, col string, k int) []float64 {
	c := tbl.MustColumn(col)
	n := c.Len()
	ords := make([]float64, n)
	for i := 0; i < n; i++ {
		ords[i] = c.Ordinal(i)
	}
	sort.Float64s(ords)
	pts := make([]float64, 0, k)
	for i := 1; i <= k; i++ {
		p := ords[minI(i*n/k, n-1)]
		if len(pts) == 0 || p > pts[len(pts)-1] {
			pts = append(pts, p)
		}
	}
	return pts
}

// waveletAnswer answers [lo, hi] from the synopsis alone by rounding to
// the nearest grid boundaries (the bucketing error is part of the
// approximate-cube deal).
func waveletAnswer(w *cube.WaveletCube, lo, hi float64) float64 {
	loIdx := nearestBoundary(w.Points[0], lo-0.5)
	hiIdx := nearestBoundary(w.Points[0], hi+0.5)
	if hiIdx <= loIdx {
		hiIdx = loIdx + 1
		if hiIdx >= len(w.Points[0]) {
			hiIdx = len(w.Points[0]) - 1
			loIdx = hiIdx - 1
		}
	}
	return w.RangeSum([]int{loIdx}, []int{hiIdx})
}

// nearestBoundary returns the index of the partition point closest to
// ord, or -1 when ord sits below the first point's midpoint.
func nearestBoundary(points []float64, ord float64) int {
	best := -1
	bestDist := math.Abs(ord - virtualStart(points))
	for i, p := range points {
		if d := math.Abs(ord - p); d < bestDist {
			best = i
			bestDist = d
		}
	}
	return best
}

func virtualStart(points []float64) float64 {
	if len(points) > 1 {
		return points[0] - (points[len(points)-1]-points[0])/float64(len(points)-1)
	}
	return points[0] - 1
}
