package experiments

import (
	"context"
	"fmt"
	"strings"

	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/dataset"
	"aqppp/internal/sample"
	"aqppp/internal/workload"
)

// figure9DimOrder is §7.3's six condition attributes for Q1..Q6.
var figure9DimOrder = []string{
	"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity", "l_discount",
}

// Figure9Point is one template's errors.
type Figure9Point struct {
	Template    int // i of Q_i
	MdnErrAQP   float64
	MdnErrAQPPP float64
}

// Figure9Report reproduces Figure 9: the set of condition attributes
// changes across queries (Q1..Q6) while only Q3 has a precomputed
// BP-Cube; AQP++ reuses it via query rewriting (§7.3).
type Figure9Report struct {
	Scale    Scale
	CubeDims int
	Points   []Figure9Point
}

// String renders the series.
func (r *Figure9Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 9: changing condition attributes; only Q%d has a BP-Cube (TPCD-Skew %d rows, k=%d)\n",
		r.CubeDims, r.Scale.TPCDRows, r.Scale.K)
	fmt.Fprintf(&sb, "%4s %10s %10s %6s\n", "Q_i", "mdn AQP", "mdn AQP++", "gain")
	for _, p := range r.Points {
		gain := 0.0
		if p.MdnErrAQPPP > 0 {
			gain = p.MdnErrAQP / p.MdnErrAQPPP
		}
		fmt.Fprintf(&sb, "Q%-3d %9.2f%% %9.2f%% %5.1fx\n",
			p.Template, 100*p.MdnErrAQP, 100*p.MdnErrAQPPP, gain)
	}
	return sb.String()
}

// RunFigure9 builds a BP-Cube only for Q3's template and answers
// workloads generated from Q1..Q6 with it. Queries from Q1 and Q2 leave
// some cube dimensions unrestricted (the rewrite to the full domain);
// queries from Q4..Q6 carry conditions on columns outside the cube, which
// the pre simply cannot restrict (the k1×k2×1 view of §7.3). maxDims <= 0
// runs all six templates.
func RunFigure9(ctx context.Context, sc Scale, maxDims int) (*Figure9Report, error) {
	if maxDims <= 0 || maxDims > len(figure9DimOrder) {
		maxDims = len(figure9DimOrder)
	}
	tbl := dataset.TPCDSkew(dataset.TPCDConfig{Rows: sc.TPCDRows, Seed: sc.Seed})
	s, err := sample.NewUniform(tbl, sc.SampleRate, sc.Seed+2)
	if err != nil {
		return nil, err
	}
	cubeTmpl := cube.Template{Agg: "l_extendedprice", Dims: figure9DimOrder[:3]}
	proc, _, err := core.Build(ctx, tbl, core.BuildConfig{
		Template: cubeTmpl, CellBudget: sc.K, Seed: sc.Seed + 3,
		PrebuiltSample: s,
	})
	if err != nil {
		return nil, err
	}
	report := &Figure9Report{Scale: sc, CubeDims: 3}
	for d := 1; d <= maxDims; d++ {
		qTmpl := cube.Template{Agg: "l_extendedprice", Dims: figure9DimOrder[:d]}
		queries, err := workload.Generate(tbl, workload.Config{
			Template: qTmpl, Count: sc.Queries, Seed: sc.Seed + uint64(30+d),
		})
		if err != nil {
			return nil, err
		}
		cmp, err := CompareOnWorkload(tbl, proc, queries)
		if err != nil {
			return nil, err
		}
		report.Points = append(report.Points, Figure9Point{
			Template:    d,
			MdnErrAQP:   cmp.MedianErrAQP,
			MdnErrAQPPP: cmp.MedianErrAQPPP,
		})
	}
	return report, nil
}
