package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"aqppp/internal/aqp"
	"aqppp/internal/baseline"
	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/dataset"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
	"aqppp/internal/workload"
)

// Table1Row is one system's row in Table 1.
type Table1Row struct {
	System string
	// SpaceBytes and PreprocessTime are the preprocessing costs;
	// Estimated marks rows (AggPre's full P-Cube) that are computed
	// analytically rather than built, exactly as the paper reports
	// "> 10 TB / > 1 day".
	SpaceBytes     int64
	PreprocessTime time.Duration
	Estimated      bool
	// Resp is the mean per-query response time.
	Resp time.Duration
	// AvgErr and MdnErr are the §7.1 relative errors (0 for exact).
	AvgErr, MdnErr float64
}

// Table1Report reproduces Table 1 plus the §7.2 extras: AQP(large) and
// the APA+ comparison.
type Table1Report struct {
	Scale Scale
	Rows  []Table1Row
	// FullCubeCells is the complete P-Cube's cell count for the
	// template (the reason AggPre is estimated, not built).
	FullCubeCells int64
}

// String renders the table.
func (r *Table1Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: overall comparison (TPCD-Skew %d rows, k=%d, %.3g%% uniform sample)\n",
		r.Scale.TPCDRows, r.Scale.K, 100*r.Scale.SampleRate)
	fmt.Fprintf(&sb, "full P-Cube would hold %d cells\n", r.FullCubeCells)
	fmt.Fprintf(&sb, "%-12s %14s %14s %12s %9s %9s\n",
		"system", "space", "preprocess", "response", "avg err", "mdn err")
	for _, row := range r.Rows {
		space := formatBytes(row.SpaceBytes)
		pre := row.PreprocessTime.Round(time.Millisecond).String()
		if row.Estimated {
			space = "> " + space
			pre = "> " + pre
		}
		fmt.Fprintf(&sb, "%-12s %14s %14s %12s %8.2f%% %8.2f%%\n",
			row.System, space, pre, row.Resp.Round(10*time.Microsecond),
			100*row.AvgErr, 100*row.MdnErr)
	}
	return sb.String()
}

func formatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// RunTable1 reproduces Table 1: AQP vs AggPre vs AQP++ on TPCD-Skew with
// the template [SUM(l_extendedprice), l_orderkey, l_suppkey], plus the
// AQP(large) and APA+ rows discussed in §7.2.
func RunTable1(ctx context.Context, sc Scale) (*Table1Report, error) {
	tbl := dataset.TPCDSkew(dataset.TPCDConfig{Rows: sc.TPCDRows, Seed: sc.Seed})
	tmpl := cube.Template{Agg: "l_extendedprice", Dims: []string{"l_orderkey", "l_suppkey"}}
	queries, err := workload.Generate(tbl, workload.Config{
		Template: tmpl, Count: sc.Queries, Seed: sc.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	report := &Table1Report{Scale: sc}

	// Shared uniform sample (AQP and AQP++ use the same one, §7.1).
	t0 := time.Now()
	s, err := sample.NewUniform(tbl, sc.SampleRate, sc.Seed+2)
	if err != nil {
		return nil, err
	}
	sampleTime := time.Since(t0)

	// --- AQP ---
	aqpRow, aqpErrs, err := runAQPRow(tbl, s, queries, "AQP")
	if err != nil {
		return nil, err
	}
	aqpRow.PreprocessTime = sampleTime
	report.Rows = append(report.Rows, aqpRow)
	_ = aqpErrs

	// --- AggPre (estimated, as in the paper) ---
	fullCells, err := baseline.FullCubeCells(tbl, tmpl)
	if err != nil {
		return nil, err
	}
	report.FullCubeCells = fullCells
	// Estimate build time by extrapolating from a small measured build:
	// one full-data scan plus d prefix passes over the cells.
	smallPoints := [][]float64{equalSpacedPoints(tbl, "l_orderkey", 64), equalSpacedPoints(tbl, "l_suppkey", 16)}
	tc := time.Now()
	smallCube, err := cube.Build(tbl, tmpl, smallPoints)
	if err != nil {
		return nil, err
	}
	smallTime := time.Since(tc)
	perCell := smallTime / time.Duration(maxI(smallCube.NumCells(), 1))
	report.Rows = append(report.Rows, Table1Row{
		System:         "AggPre",
		SpaceBytes:     fullCells * 8,
		PreprocessTime: time.Duration(fullCells) * perCell,
		Estimated:      true,
		Resp:           respOfExactCube(smallCube, queries),
		AvgErr:         0, MdnErr: 0,
	})

	// --- AQP++ ---
	proc, bst, err := core.Build(ctx, tbl, core.BuildConfig{
		Template: tmpl, CellBudget: sc.K, Seed: sc.Seed + 3,
		PrebuiltSample: s,
	})
	if err != nil {
		return nil, err
	}
	cmp, err := CompareOnWorkload(tbl, proc, queries)
	if err != nil {
		return nil, err
	}
	report.Rows = append(report.Rows, Table1Row{
		System:         "AQP++",
		SpaceBytes:     bst.TotalBytes(),
		PreprocessTime: sampleTime + bst.OptimizeTime + bst.CubeTime,
		Resp:           cmp.RespAQPPP,
		AvgErr:         cmp.AvgErrAQPPP, MdnErr: cmp.MedianErrAQPPP,
	})

	// --- AQP(large): a sample big enough to approach AQP++'s accuracy
	// (the paper uses 80x; we use 20x to stay laptop-friendly). ---
	largeRate := sc.SampleRate * 20
	if largeRate > 1 {
		largeRate = 1
	}
	tL := time.Now()
	sLarge, err := sample.NewUniform(tbl, largeRate, sc.Seed+4)
	if err != nil {
		return nil, err
	}
	largeTime := time.Since(tL)
	largeRow, _, err := runAQPRow(tbl, sLarge, queries, "AQP(large)")
	if err != nil {
		return nil, err
	}
	largeRow.PreprocessTime = largeTime
	report.Rows = append(report.Rows, largeRow)

	// --- APA+ ---
	apa, err := baseline.NewAPA(tbl, s, baseline.APAConfig{
		Measure: tmpl.Agg, Dims: tmpl.Dims, FactsPerDim: 16,
		Resamples: 30, Seed: sc.Seed + 5,
	})
	if err != nil {
		return nil, err
	}
	var apaErrs []float64
	var apaTime time.Duration
	for _, q := range queries {
		truth, err := tbl.Execute(q)
		if err != nil {
			return nil, err
		}
		ta := time.Now()
		est, err := apa.Answer(q)
		if err != nil {
			return nil, err
		}
		apaTime += time.Since(ta)
		apaErrs = append(apaErrs, clampErr(est.RelativeError(truth.Value)))
	}
	report.Rows = append(report.Rows, Table1Row{
		System:         "APA+",
		SpaceBytes:     s.SizeBytes(),
		PreprocessTime: sampleTime,
		Resp:           apaTime / time.Duration(maxI(len(queries), 1)),
		AvgErr:         stats.Mean(apaErrs), MdnErr: stats.Median(apaErrs),
	})
	return report, nil
}

// runAQPRow measures plain AQP on a sample.
func runAQPRow(tbl *engine.Table, s *sample.Sample, queries []engine.Query, name string) (Table1Row, []float64, error) {
	var errs []float64
	var total time.Duration
	for _, q := range queries {
		truth, err := tbl.Execute(q)
		if err != nil {
			return Table1Row{}, nil, err
		}
		t0 := time.Now()
		est, err := aqp.EstimateQuery(s, q, 0.95)
		if err != nil {
			return Table1Row{}, nil, err
		}
		total += time.Since(t0)
		errs = append(errs, clampErr(est.RelativeError(truth.Value)))
	}
	return Table1Row{
		System:     name,
		SpaceBytes: s.SizeBytes(),
		Resp:       total / time.Duration(maxI(len(queries), 1)),
		AvgErr:     stats.Mean(errs),
		MdnErr:     stats.Median(errs),
	}, errs, nil
}

// respOfExactCube times aligned cube lookups as a proxy for AggPre's
// response time (cube lookups cost the same regardless of cube size).
func respOfExactCube(c *cube.BPCube, queries []engine.Query) time.Duration {
	d := c.Dims()
	lo := make([]int, d)
	hi := make([]int, d)
	t0 := time.Now()
	n := 0
	for range queries {
		for i := 0; i < d; i++ {
			lo[i] = -1
			hi[i] = len(c.Points[i]) - 1
		}
		_ = c.RangeSum(lo, hi)
		n++
	}
	if n == 0 {
		return 0
	}
	return time.Since(t0) / time.Duration(n)
}

// equalSpacedPoints returns k equally spaced ordinals over the column's
// domain.
func equalSpacedPoints(tbl *engine.Table, col string, k int) []float64 {
	c := tbl.MustColumn(col)
	lo, hi := c.OrdinalDomain()
	pts := make([]float64, 0, k)
	for i := 1; i <= k; i++ {
		p := lo + (hi-lo)*float64(i)/float64(k)
		if len(pts) == 0 || p > pts[len(pts)-1] {
			pts = append(pts, p)
		}
	}
	return pts
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
