package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"aqppp/internal/aqp"
	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/dataset"
	"aqppp/internal/ident"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
	"aqppp/internal/workload"
)

// AblationReport collects the design-choice studies that back the paper's
// algorithmic decisions beyond its headline figures:
//
//   - equal partition vs hill climbing (the §6.1.2 refinement);
//   - P⁻ candidate scoring vs brute force over P⁺ (the §5.1 reduction:
//     same chosen error, exponentially fewer candidates);
//   - identification subsample rate (accuracy/latency trade-off, §5.2).
type AblationReport struct {
	Scale Scale

	// Equal-partition vs hill-climbing median errors on the correlated
	// template (where the difference should appear).
	MdnErrEqual, MdnErrHillClimb float64

	// P⁻ vs brute force: agreement rate of the selected error and the
	// average candidate counts.
	BruteAgreeRate         float64
	CandidatesFast         float64
	CandidatesBrute        float64
	FastSelectTime         time.Duration
	BruteSelectTime        time.Duration
	SubsampleRates         []float64
	SubsampleMdnErr        []float64
	SubsampleSelectLatency []time.Duration

	// Workload-driven vs uniform sampling (§8 future work): median error
	// of plain AQP on the hot workload under each sample.
	UniformWorkloadErr, DrivenWorkloadErr float64
}

// String renders the studies.
func (r *AblationReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablations (TPCD-Skew %d rows, k=%d)\n", r.Scale.TPCDRows, r.Scale.K)
	fmt.Fprintf(&sb, "[partitioning] equal-partition mdn err %.2f%% vs hill-climb %.2f%%\n",
		100*r.MdnErrEqual, 100*r.MdnErrHillClimb)
	fmt.Fprintf(&sb, "[identification] P⁻ matched brute-force error on %.0f%% of queries; "+
		"%.1f vs %.1f candidates; %v vs %v per selection\n",
		100*r.BruteAgreeRate, r.CandidatesFast, r.CandidatesBrute,
		r.FastSelectTime.Round(time.Microsecond), r.BruteSelectTime.Round(time.Microsecond))
	fmt.Fprintf(&sb, "[subsample rate] ")
	for i, rate := range r.SubsampleRates {
		if i > 0 {
			fmt.Fprintf(&sb, "; ")
		}
		fmt.Fprintf(&sb, "%.2g → mdn %.2f%%, %v", rate, 100*r.SubsampleMdnErr[i],
			r.SubsampleSelectLatency[i].Round(time.Microsecond))
	}
	fmt.Fprintf(&sb, "\n[workload-driven sampling] uniform mdn %.2f%% vs workload-driven %.2f%%\n",
		100*r.UniformWorkloadErr, 100*r.DrivenWorkloadErr)
	return sb.String()
}

// RunAblations runs the three studies on TPCD-Skew.
func RunAblations(ctx context.Context, sc Scale) (*AblationReport, error) {
	rep := &AblationReport{Scale: sc}
	tbl := dataset.TPCDSkew(dataset.TPCDConfig{Rows: sc.TPCDRows, Seed: sc.Seed})
	s, err := sample.NewUniform(tbl, sc.SampleRate, sc.Seed+101)
	if err != nil {
		return nil, err
	}

	// --- equal partition vs hill climbing on a correlated attribute ---
	// l_shipdate correlates with l_extendedprice by construction.
	tmpl := cube.Template{Agg: "l_extendedprice", Dims: []string{"l_shipdate"}}
	queries, err := workload.Generate(tbl, workload.Config{
		Template: tmpl, Count: sc.Queries, Seed: sc.Seed + 102,
	})
	if err != nil {
		return nil, err
	}
	k1 := sc.K / 20
	if k1 < 10 {
		k1 = 10
	}
	for _, eqOnly := range []bool{true, false} {
		proc, _, err := core.Build(ctx, tbl, core.BuildConfig{
			Template: tmpl, CellBudget: k1, Seed: sc.Seed + 103,
			PrebuiltSample: s, EqualPartitionOnly: eqOnly,
		})
		if err != nil {
			return nil, err
		}
		cmp, err := CompareOnWorkload(tbl, proc, queries)
		if err != nil {
			return nil, err
		}
		if eqOnly {
			rep.MdnErrEqual = cmp.MedianErrAQPPP
		} else {
			rep.MdnErrHillClimb = cmp.MedianErrAQPPP
		}
	}

	// --- P⁻ vs brute force over P⁺ (small 1-D cube so P⁺ is tractable) ---
	smallCube, _, err := core.Build(ctx, tbl, core.BuildConfig{
		Template:   cube.Template{Agg: "l_extendedprice", Dims: []string{"l_orderkey"}},
		CellBudget: 8, Seed: sc.Seed + 104, PrebuiltSample: s,
	})
	if err != nil {
		return nil, err
	}
	idQueries, err := workload.Generate(tbl, workload.Config{
		Template: cube.Template{Agg: "l_extendedprice", Dims: []string{"l_orderkey"}},
		Count:    minI(sc.Queries, 40), Seed: sc.Seed + 105,
	})
	if err != nil {
		return nil, err
	}
	sub := s.Subsample(0.25, sc.Seed+106)
	agree := 0
	var fastN, bruteN float64
	var fastT, bruteT time.Duration
	for _, q := range idQueries {
		t0 := time.Now()
		fast, err := ident.SelectBest(smallCube.Cube, q, sub, 0.95)
		if err != nil {
			return nil, err
		}
		fastT += time.Since(t0)
		t1 := time.Now()
		brute, err := ident.BruteForceBest(smallCube.Cube, q, sub, 0.95)
		if err != nil {
			return nil, err
		}
		bruteT += time.Since(t1)
		fastN += float64(fast.Considered)
		bruteN += float64(brute.Considered)
		if fast.SubsampleError <= brute.SubsampleError*1.0001+1e-9 {
			agree++
		}
	}
	nq := len(idQueries)
	rep.BruteAgreeRate = float64(agree) / float64(nq)
	rep.CandidatesFast = fastN / float64(nq)
	rep.CandidatesBrute = bruteN / float64(nq)
	rep.FastSelectTime = fastT / time.Duration(nq)
	rep.BruteSelectTime = bruteT / time.Duration(nq)

	// --- subsample-rate sweep ---
	tmpl2 := cube.Template{Agg: "l_extendedprice", Dims: []string{"l_orderkey", "l_suppkey"}}
	queries2, err := workload.Generate(tbl, workload.Config{
		Template: tmpl2, Count: minI(sc.Queries, 50), Seed: sc.Seed + 107,
	})
	if err != nil {
		return nil, err
	}
	for _, rate := range []float64{0.02, 0.0625, 0.25, 1.0} {
		proc, _, err := core.Build(ctx, tbl, core.BuildConfig{
			Template: tmpl2, CellBudget: sc.K, Seed: sc.Seed + 108,
			PrebuiltSample: s, SubsampleRate: rate,
		})
		if err != nil {
			return nil, err
		}
		var errs []float64
		var selT time.Duration
		for _, q := range queries2 {
			truth, err := tbl.Execute(q)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			ans, err := proc.Answer(q)
			if err != nil {
				return nil, err
			}
			selT += time.Since(t0)
			errs = append(errs, clampErr(ans.Estimate.RelativeError(truth.Value)))
		}
		rep.SubsampleRates = append(rep.SubsampleRates, rate)
		rep.SubsampleMdnErr = append(rep.SubsampleMdnErr, stats.Median(errs))
		rep.SubsampleSelectLatency = append(rep.SubsampleSelectLatency, selT/time.Duration(len(queries2)))
	}
	// --- workload-driven vs uniform sampling on a hot workload ---
	hotTmpl := cube.Template{Agg: "l_extendedprice", Dims: []string{"l_orderkey"}}
	hot, err := workload.Generate(tbl, workload.Config{
		Template: hotTmpl, Count: minI(sc.Queries, 30), Seed: sc.Seed + 109,
	})
	if err != nil {
		return nil, err
	}
	driven, err := sample.NewWorkloadDriven(tbl, hot, sc.SampleRate, 1, sc.Seed+110)
	if err != nil {
		return nil, err
	}
	uniErrs := make([]float64, 0, len(hot))
	drvErrs := make([]float64, 0, len(hot))
	for _, q := range hot {
		truth, err := tbl.Execute(q)
		if err != nil {
			return nil, err
		}
		ue, err := aqp.EstimateSum(s, q, 0.95)
		if err != nil {
			return nil, err
		}
		de, err := aqp.EstimateSum(driven, q, 0.95)
		if err != nil {
			return nil, err
		}
		uniErrs = append(uniErrs, clampErr(ue.RelativeError(truth.Value)))
		drvErrs = append(drvErrs, clampErr(de.RelativeError(truth.Value)))
	}
	rep.UniformWorkloadErr = stats.Median(uniErrs)
	rep.DrivenWorkloadErr = stats.Median(drvErrs)
	return rep, nil
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
