package experiments

import (
	"context"
	"fmt"
	"strings"

	"aqppp/internal/dataset"
	"aqppp/internal/precompute"
	"aqppp/internal/sample"
)

// Figure8Dim is one dimension's pair of convergence traces.
type Figure8Dim struct {
	Dim string
	// GlobalTrace / LocalTrace hold error_up(Q, P) per hill-climbing
	// iteration (index 0 = the initial equal partition).
	GlobalTrace, LocalTrace []float64
}

// Figure8Report reproduces Figure 8: Hill Climb (global) vs Hill Climb
// (local) on the price-correlated date attributes.
type Figure8Report struct {
	Scale Scale
	K     int
	Dims  []Figure8Dim
}

// String renders each dimension's traces.
func (r *Figure8Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 8: hill-climb adjustment, global vs local (TPCD-Skew %d rows, k1=k2=%d)\n",
		r.Scale.TPCDRows, r.K)
	for _, d := range r.Dims {
		fmt.Fprintf(&sb, "[%s]\n", d.Dim)
		fmt.Fprintf(&sb, "  global: %d iters, %s\n", len(d.GlobalTrace)-1, traceString(d.GlobalTrace))
		fmt.Fprintf(&sb, "  local : %d iters, %s\n", len(d.LocalTrace)-1, traceString(d.LocalTrace))
		gFinal := d.GlobalTrace[len(d.GlobalTrace)-1]
		lFinal := d.LocalTrace[len(d.LocalTrace)-1]
		fmt.Fprintf(&sb, "  final error_up: global %.4g vs local %.4g\n", gFinal, lFinal)
	}
	return sb.String()
}

func traceString(tr []float64) string {
	var sb strings.Builder
	for i, v := range tr {
		if i > 0 {
			sb.WriteString(" → ")
		}
		fmt.Fprintf(&sb, "%.3g", v)
		if i >= 11 && i < len(tr)-1 {
			fmt.Fprintf(&sb, " → … (%d more)", len(tr)-i-2)
			fmt.Fprintf(&sb, " → %.3g", tr[len(tr)-1])
			break
		}
	}
	return sb.String()
}

// RunFigure8 compares the two adjustment strategies on the template
// [SUM(l_extendedprice), l_shipdate, l_commitdate] — the attributes the
// generator correlates with price — with k1 = k2 = k per dimension
// (paper: 200, scaled by sc.K/10 here, min 25).
func RunFigure8(ctx context.Context, sc Scale) (*Figure8Report, error) {
	k := sc.K / 10
	if k < 25 {
		k = 25
	}
	if k > 200 {
		k = 200
	}
	tbl := dataset.TPCDSkew(dataset.TPCDConfig{Rows: sc.TPCDRows, Seed: sc.Seed})
	s, err := sample.NewUniform(tbl, sc.SampleRate, sc.Seed+2)
	if err != nil {
		return nil, err
	}
	report := &Figure8Report{Scale: sc, K: k}
	for _, dim := range []string{"l_shipdate", "l_commitdate"} {
		v, err := precompute.NewView(s, "l_extendedprice", dim, 0.95)
		if err != nil {
			return nil, err
		}
		init, err := precompute.EqualPartition(v, k)
		if err != nil {
			return nil, err
		}
		global, err := precompute.HillClimb(ctx, v, init, precompute.ClimbConfig{
			Mode: precompute.Global, MaxIterations: 100,
		})
		if err != nil {
			return nil, err
		}
		local, err := precompute.HillClimb(ctx, v, init, precompute.ClimbConfig{
			Mode: precompute.Local, MaxIterations: 100,
		})
		if err != nil {
			return nil, err
		}
		report.Dims = append(report.Dims, Figure8Dim{
			Dim:         dim,
			GlobalTrace: global.Trace,
			LocalTrace:  local.Trace,
		})
	}
	return report, nil
}
