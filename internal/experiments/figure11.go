package experiments

import (
	"context"
	"fmt"
	"strings"

	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/dataset"
	"aqppp/internal/sample"
	"aqppp/internal/workload"
)

// Figure11aPoint is one cube budget's errors on BigBench.
type Figure11aPoint struct {
	K           int
	MdnErrAQP   float64
	MdnErrAQPPP float64
}

// Figure11aReport reproduces Figure 11(a): BigBench UserVisits, median
// error vs BP-Cube size for the template
// [SUM(adRevenue), visitDate, duration, sourceIP].
type Figure11aReport struct {
	Scale  Scale
	Points []Figure11aPoint
}

// String renders the series.
func (r *Figure11aReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 11(a): BigBench (%d rows), median error vs k\n", r.Scale.BigBenchRows)
	fmt.Fprintf(&sb, "%8s %10s %10s %6s\n", "k", "mdn AQP", "mdn AQP++", "gain")
	for _, p := range r.Points {
		gain := 0.0
		if p.MdnErrAQPPP > 0 {
			gain = p.MdnErrAQP / p.MdnErrAQPPP
		}
		fmt.Fprintf(&sb, "%8d %9.2f%% %9.2f%% %5.1fx\n", p.K, 100*p.MdnErrAQP, 100*p.MdnErrAQPPP, gain)
	}
	return sb.String()
}

// RunFigure11a sweeps the cube budget on BigBench (nil ks selects a
// geometric sweep up to 2·sc.K, mirroring the paper's 10k…100k around
// k=50000).
func RunFigure11a(ctx context.Context, sc Scale, ks []int) (*Figure11aReport, error) {
	if len(ks) == 0 {
		ks = []int{sc.K / 4, sc.K / 2, sc.K, sc.K * 2}
		for i := range ks {
			if ks[i] < 8 {
				ks[i] = 8 + i
			}
		}
	}
	tbl := dataset.BigBenchUserVisits(dataset.BigBenchConfig{Rows: sc.BigBenchRows, Seed: sc.Seed})
	tmpl := cube.Template{Agg: "adRevenue", Dims: []string{"visitDate", "duration", "sourceIP"}}
	queries, err := workload.Generate(tbl, workload.Config{
		Template: tmpl, Count: sc.Queries, Seed: sc.Seed + 61,
	})
	if err != nil {
		return nil, err
	}
	s, err := sample.NewUniform(tbl, sc.SampleRate, sc.Seed+62)
	if err != nil {
		return nil, err
	}
	report := &Figure11aReport{Scale: sc}
	for _, k := range ks {
		proc, _, err := core.Build(ctx, tbl, core.BuildConfig{
			Template: tmpl, CellBudget: k, Seed: sc.Seed + 63,
			PrebuiltSample: s,
		})
		if err != nil {
			return nil, err
		}
		cmp, err := CompareOnWorkload(tbl, proc, queries)
		if err != nil {
			return nil, err
		}
		report.Points = append(report.Points, Figure11aPoint{
			K: k, MdnErrAQP: cmp.MedianErrAQP, MdnErrAQPPP: cmp.MedianErrAQPPP,
		})
	}
	return report, nil
}

// tlcDimOrder is the paper's ten TLCTrip condition attributes.
var tlcDimOrder = []string{
	"Pickup_Date", "Pickup_Time", "vendor_name", "Fare_Amt", "Rate_Code",
	"Passenger_Count", "Dropoff_Date", "Dropoff_Time", "surcharge", "Tip_Amt",
}

// Figure11bPoint is one template's errors on TLCTrip.
type Figure11bPoint struct {
	Dims        int
	MdnErrAQP   float64
	MdnErrAQPPP float64
	MdnDevAQP   float64
	MdnDevAQPPP float64
}

// Figure11bReport reproduces Figure 11(b): TLCTrip, median error vs the
// number of dimensions with the measure SUM(Distance).
type Figure11bReport struct {
	Scale  Scale
	Points []Figure11bPoint
}

// String renders the series.
func (r *Figure11bReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 11(b): TLCTrip (%d rows, k=%d), median error vs #dimensions\n",
		r.Scale.TLCRows, r.Scale.K)
	fmt.Fprintf(&sb, "%4s %10s %10s %6s | %9s %9s\n", "d", "mdn AQP", "mdn AQP++", "gain", "dev AQP", "dev AQP++")
	for _, p := range r.Points {
		gain := 0.0
		if p.MdnErrAQPPP > 0 {
			gain = p.MdnErrAQP / p.MdnErrAQPPP
		}
		fmt.Fprintf(&sb, "%4d %9.2f%% %9.2f%% %5.1fx | %8.2f%% %8.2f%%\n",
			p.Dims, 100*p.MdnErrAQP, 100*p.MdnErrAQPPP, gain,
			100*p.MdnDevAQP, 100*p.MdnDevAQPPP)
	}
	return sb.String()
}

// RunFigure11b runs the nested TLCTrip templates d = 1..maxDims
// (maxDims <= 0 runs all ten).
func RunFigure11b(ctx context.Context, sc Scale, maxDims int) (*Figure11bReport, error) {
	if maxDims <= 0 || maxDims > len(tlcDimOrder) {
		maxDims = len(tlcDimOrder)
	}
	tbl := dataset.TLCTrip(dataset.TLCTripConfig{Rows: sc.TLCRows, Seed: sc.Seed})
	s, err := sample.NewUniform(tbl, sc.SampleRate, sc.Seed+71)
	if err != nil {
		return nil, err
	}
	report := &Figure11bReport{Scale: sc}
	for d := 1; d <= maxDims; d++ {
		tmpl := cube.Template{Agg: "Distance", Dims: tlcDimOrder[:d]}
		queries, err := workload.Generate(tbl, workload.Config{
			Template: tmpl, Count: sc.Queries, Seed: sc.Seed + uint64(80+d),
		})
		if err != nil {
			return nil, err
		}
		proc, _, err := core.Build(ctx, tbl, core.BuildConfig{
			Template: tmpl, CellBudget: sc.K, Seed: sc.Seed + uint64(90+d),
			PrebuiltSample: s,
		})
		if err != nil {
			return nil, err
		}
		cmp, err := CompareOnWorkload(tbl, proc, queries)
		if err != nil {
			return nil, err
		}
		report.Points = append(report.Points, Figure11bPoint{
			Dims: d, MdnErrAQP: cmp.MedianErrAQP, MdnErrAQPPP: cmp.MedianErrAQPPP,
			MdnDevAQP: cmp.MedianDevAQP, MdnDevAQPPP: cmp.MedianDevAQPPP,
		})
	}
	return report, nil
}
