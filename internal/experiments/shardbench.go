package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"aqppp/internal/dataset"
	"aqppp/internal/engine"
	"aqppp/internal/shard"
)

// ShardPoint is one shard count's measurement.
type ShardPoint struct {
	Shards int
	// NSOp is the per-query wall time in nanoseconds.
	NSOp float64
	// Pruned counts shard scans skipped by range-bound pruning across
	// the timed iterations.
	Pruned uint64
	// Speedup is the 1-shard time divided by this configuration's.
	Speedup float64
}

// ShardReport measures scatter-gather scaling on a straddle-heavy
// workload: a selective range predicate on a column uncorrelated with
// row order (zone maps cannot skip blocks, so the unsharded scan reads
// everything; a range layout on that column re-clusters the rows and
// prunes the non-overlapping shards outright).
type ShardReport struct {
	Scale  Scale
	Column string
	Points []ShardPoint
}

// String renders the scaling table.
func (r *ShardReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sharded scatter-gather: SUM over a %s range (TPCD-Skew %d rows, range layout on %s)\n",
		r.Column, r.Scale.TPCDRows, r.Column)
	fmt.Fprintf(&sb, "%8s %14s %10s %8s\n", "shards", "ns/op", "pruned", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%8d %14.0f %10d %7.2fx\n", p.Shards, p.NSOp, p.Pruned, p.Speedup)
	}
	return sb.String()
}

// RunShard times one straddle-heavy exact query at each shard count,
// checking every sharded answer against the unsharded scan. The range
// spans ~2% of l_shipdate's domain, mirroring the selective-filter
// benchmarks in internal/engine.
func RunShard(ctx context.Context, sc Scale, counts []int) (*ShardReport, error) {
	tbl := dataset.TPCDSkew(dataset.TPCDConfig{Rows: sc.TPCDRows, Seed: sc.Seed})
	q := engine.Query{
		Func: engine.Sum, Col: "l_extendedprice",
		Ranges: []engine.Range{{Col: "l_shipdate", Lo: 1200, Hi: 1250}},
	}
	oracle, err := tbl.ExecuteContext(ctx, q)
	if err != nil {
		return nil, err
	}
	report := &ShardReport{Scale: sc, Column: "l_shipdate"}
	var base float64
	for _, n := range counts {
		s, err := shard.Partition(tbl, shard.Layout{Strategy: shard.ByRange, Column: "l_shipdate", N: n})
		if err != nil {
			return nil, err
		}
		res, err := s.ExecuteContext(ctx, q, 0)
		if err != nil {
			return nil, err
		}
		if relDiff(res.Value, oracle.Value) > 1e-9 {
			return nil, fmt.Errorf("shards=%d: merged %v differs from unsharded %v", n, res.Value, oracle.Value)
		}
		prunedBefore := s.PrunedCount()
		iters := 0
		start := time.Now()
		for time.Since(start) < 300*time.Millisecond || iters < 5 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if _, err := s.ExecuteContext(ctx, q, 0); err != nil {
				return nil, err
			}
			iters++
		}
		nsOp := float64(time.Since(start).Nanoseconds()) / float64(iters)
		if n == counts[0] {
			base = nsOp
		}
		report.Points = append(report.Points, ShardPoint{
			Shards: n, NSOp: nsOp,
			Pruned:  s.PrunedCount() - prunedBefore,
			Speedup: base / nsOp,
		})
	}
	return report, nil
}

// relDiff is the relative difference |a−b| / max(|a|, |b|, 1).
func relDiff(a, b float64) float64 {
	den := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / den
}
