package aqp

import (
	"context"
	"math"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/sample"
)

func TestBootstrapSumAgreesWithClosedForm(t *testing.T) {
	tbl := buildTable(20000, 20)
	q := engine.Query{Func: engine.Sum, Col: "v", Ranges: []engine.Range{{Col: "k", Lo: 100, Hi: 500}}}
	s, _ := sample.NewUniform(tbl, 0.05, 21)
	closed, err := EstimateSum(s, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	boot, err := Bootstrap(context.Background(), s, q, 0.95, 300, 22)
	if err != nil {
		t.Fatal(err)
	}
	if boot.Value != closed.Value {
		t.Errorf("bootstrap point %v != closed form %v", boot.Value, closed.Value)
	}
	// The widths should agree within a modest factor.
	ratio := boot.HalfWidth / closed.HalfWidth
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("bootstrap ε %v vs closed-form ε %v (ratio %v)", boot.HalfWidth, closed.HalfWidth, ratio)
	}
}

func TestBootstrapVar(t *testing.T) {
	tbl := buildTable(20000, 23)
	q := engine.Query{Func: engine.Var, Col: "v", Ranges: []engine.Range{{Col: "k", Lo: 1, Hi: 800}}}
	truth, _ := tbl.Execute(q)
	s, _ := sample.NewUniform(tbl, 0.05, 24)
	boot, err := Bootstrap(context.Background(), s, q, 0.95, 200, 25)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(boot.Value-truth.Value) / truth.Value; rel > 0.15 {
		t.Errorf("VAR plug-in off by %v", rel)
	}
	if boot.HalfWidth <= 0 {
		t.Error("VAR bootstrap ε = 0")
	}
}

func TestBootstrapRejectsGroupBy(t *testing.T) {
	tbl := buildTable(100, 26)
	s, _ := sample.NewUniform(tbl, 0.5, 27)
	q := engine.Query{Func: engine.Sum, Col: "v", GroupBy: []string{"g"}}
	if _, err := Bootstrap(context.Background(), s, q, 0.95, 10, 1); err == nil {
		t.Error("GROUP BY accepted")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	tbl := buildTable(2000, 28)
	s, _ := sample.NewUniform(tbl, 0.1, 29)
	q := engine.Query{Func: engine.Sum, Col: "v"}
	a, _ := Bootstrap(context.Background(), s, q, 0.95, 50, 7)
	b, _ := Bootstrap(context.Background(), s, q, 0.95, 50, 7)
	if a != b {
		t.Errorf("same seed gave %+v and %+v", a, b)
	}
}
