package aqp

import (
	"context"
	"fmt"

	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

// Bootstrap computes an empirical confidence interval for an arbitrary
// aggregate by resampling the sample (§4.1's second approach). It supports
// every engine.AggFunc that can be evaluated on a resample, including VAR,
// for which no closed-form interval is implemented.
//
// The returned Estimate's Value is the plug-in estimate on the full sample
// and its interval is the percentile-bootstrap interval recentred on the
// plug-in value (so HalfWidth is half the percentile interval's width).
//
// ctx is checked once per resample, so a canceled caller unwinds within
// one replicate and receives ctx's error.
func Bootstrap(ctx context.Context, s *sample.Sample, q engine.Query, confidence float64, resamples int, seed uint64) (Estimate, error) {
	if len(q.GroupBy) > 0 {
		return Estimate{}, fmt.Errorf("aqp: Bootstrap does not handle GROUP BY")
	}
	plug, err := plugInEstimate(s, q)
	if err != nil {
		return Estimate{}, err
	}
	n := s.Size()
	if resamples <= 0 {
		resamples = 200
	}
	r := stats.NewRNG(seed)
	reps := make([]float64, 0, resamples)
	idx := make([]int, n)
	for rep := 0; rep < resamples; rep++ {
		if err := ctx.Err(); err != nil {
			return Estimate{}, err
		}
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		rs := ResampleRows(s, idx)
		v, err := plugInEstimate(rs, q)
		if err != nil {
			return Estimate{}, err
		}
		reps = append(reps, v)
	}
	alpha := (1 - confidence) / 2
	lo := stats.Quantile(reps, alpha)
	hi := stats.Quantile(reps, 1-alpha)
	return Estimate{
		Value:      plug,
		HalfWidth:  (hi - lo) / 2,
		Confidence: confidence,
		SampleRows: n,
	}, nil
}

// plugInEstimate evaluates the query on the sample with the appropriate
// scaling: SUM and COUNT scale by inverse probabilities; AVG and VAR are
// scale-free plug-ins.
func plugInEstimate(s *sample.Sample, q engine.Query) (float64, error) {
	switch q.Func {
	case engine.Sum, engine.Count:
		vals, err := ConditionVector(s, q)
		if err != nil {
			return 0, err
		}
		return SumOfValues(s, vals, 0.95).Value, nil
	case engine.Avg, engine.Var, engine.Min, engine.Max:
		res, err := s.Table.Execute(q)
		if err != nil {
			return 0, err
		}
		return res.Value, nil
	default:
		return 0, fmt.Errorf("aqp: unsupported aggregate %v", q.Func)
	}
}

// ResampleRows builds a with-replacement resample of s at the given
// sample row indices, carrying weights and stratum labels along. It backs
// the bootstrap paths here and in internal/core.
func ResampleRows(s *sample.Sample, idx []int) *sample.Sample {
	out := &sample.Sample{
		Kind:       s.Kind,
		Table:      s.Table.Gather(s.Table.Name+"_boot", idx),
		SourceRows: s.SourceRows,
	}
	if s.InvP != nil {
		out.InvP = make([]float64, len(idx))
		for i, j := range idx {
			out.InvP[i] = s.InvP[j]
		}
	}
	if s.Strata != nil {
		out.Strata = make([]sample.Stratum, len(s.Strata))
		copy(out.Strata, s.Strata)
		for i := range out.Strata {
			out.Strata[i].SampleRows = 0
		}
		out.StratumOf = make([]int, len(idx))
		for i, j := range idx {
			si := s.StratumOf[j]
			out.StratumOf[i] = si
			out.Strata[si].SampleRows++
		}
	}
	return out
}
