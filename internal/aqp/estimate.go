// Package aqp implements sampling-based approximate query processing
// (Equation 3 of the paper): point estimates and confidence intervals for
// SUM, COUNT and AVG over uniform, measure-biased and stratified samples,
// plus bootstrap intervals for aggregates without a closed form.
//
// The central primitive is SumOfValues: an unbiased estimate of a
// population total Σ_D v from per-sample-row contributions v_i. Both plain
// AQP (v_i = a_i·cond(i)) and AQP++ (v_i = a_i·(cond_q(i) − cond_pre(i)))
// are built on it, which is exactly how the paper frames the connection
// (Equation 4 treats Equation 3 as a black box).
package aqp

import (
	"fmt"
	"math"
	"math/bits"

	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

// Estimate is a point estimate with a symmetric confidence interval.
type Estimate struct {
	// Value is the point estimate.
	Value float64
	// HalfWidth is ε, half the width of the confidence interval; the
	// paper's query error (§3).
	HalfWidth float64
	// Confidence is the interval's confidence level (e.g. 0.95).
	Confidence float64
	// SampleRows is the number of sample rows that backed the estimate.
	SampleRows int
}

// RelativeError returns ε/|truth|, the paper's §7.1 error metric. It
// returns +Inf when truth is zero and ε is not.
func (e Estimate) RelativeError(truth float64) float64 {
	if truth == 0 {
		if e.HalfWidth == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(e.HalfWidth / truth)
}

// Low returns the interval's lower bound.
func (e Estimate) Low() float64 { return e.Value - e.HalfWidth }

// High returns the interval's upper bound.
func (e Estimate) High() float64 { return e.Value + e.HalfWidth }

// SumOfValues estimates the population total Σ_D v from the per-sample-row
// contributions vals (vals[i] belongs to sample row i; rows outside the
// query's condition contribute 0). It dispatches on the sample's kind:
//
//   - uniform / measure-biased: the per-draw pseudo-values x_i = v_i/p_i
//     are (approximately) i.i.d., so the estimate is mean(x) and the CLT
//     interval is λ·sqrt(Var(x)/n) — the paper's Example 1 generalized to
//     unequal probabilities.
//   - stratified: Σ_h (N_h/n_h)·Σ_{i∈h} v_i with variance
//     Σ_h N_h²·Var_h(v)/n_h.
func SumOfValues(s *sample.Sample, vals []float64, confidence float64) Estimate {
	if len(vals) != s.Size() {
		panic(fmt.Sprintf("aqp: %d values for %d sample rows", len(vals), s.Size()))
	}
	lambda := stats.ZScore(confidence)
	switch s.Kind {
	case sample.Stratified:
		return stratifiedSum(s, vals, confidence, lambda)
	default:
		n := len(vals)
		if n == 0 {
			return Estimate{Confidence: confidence}
		}
		var m stats.Moments
		for i, v := range vals {
			m.Add(v * s.InvP[i])
		}
		return Estimate{
			Value:      m.Mean(),
			HalfWidth:  lambda * math.Sqrt(m.Variance()/float64(n)),
			Confidence: confidence,
			SampleRows: n,
		}
	}
}

func stratifiedSum(s *sample.Sample, vals []float64, confidence, lambda float64) Estimate {
	perStratum := make([]stats.Moments, len(s.Strata))
	for i, v := range vals {
		perStratum[s.StratumOf[i]].Add(v)
	}
	est := 0.0
	varTotal := 0.0
	for h, st := range s.Strata {
		m := &perStratum[h]
		if m.Count() == 0 {
			continue
		}
		scale := float64(st.SourceRows) / float64(m.Count())
		est += scale * m.Sum()
		// Finite-population correction when a stratum is fully sampled
		// drives its variance to zero (the paper's "<N,F>" observation).
		fpc := 1 - float64(m.Count())/float64(st.SourceRows)
		if fpc < 0 {
			fpc = 0
		}
		nh := float64(m.Count())
		varTotal += float64(st.SourceRows) * float64(st.SourceRows) * m.Variance() / nh * fpc
	}
	return Estimate{
		Value:      est,
		HalfWidth:  lambda * math.Sqrt(varTotal),
		Confidence: confidence,
		SampleRows: len(vals),
	}
}

// ConditionVector returns per-sample-row contributions a_i·1[cond(i)] for
// the query's aggregate column and range conditions. COUNT queries use
// a_i = 1. Group-by clauses are rejected here; use EstimateGroups.
func ConditionVector(s *sample.Sample, q engine.Query) ([]float64, error) {
	if len(q.GroupBy) > 0 {
		return nil, fmt.Errorf("aqp: ConditionVector does not handle GROUP BY")
	}
	sel, err := s.Table.Filter(q.Ranges)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, s.Size())
	var col *engine.Column
	if q.Func != engine.Count {
		col, err = s.Table.Column(q.Col)
		if err != nil {
			return nil, err
		}
	}
	// Iterate the selection word-at-a-time (peeling set bits with
	// TrailingZeros64) instead of paying a closure call per row.
	for wi, w := range sel.Words() {
		base := wi << 6
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			w &= w - 1
			if col != nil {
				vals[i] = col.Float(i)
			} else {
				vals[i] = 1
			}
		}
	}
	return vals, nil
}

// EstimateSum answers a SUM or COUNT query with a CLT confidence interval
// (plain AQP, Equation 3).
func EstimateSum(s *sample.Sample, q engine.Query, confidence float64) (Estimate, error) {
	if q.Func != engine.Sum && q.Func != engine.Count {
		return Estimate{}, fmt.Errorf("aqp: EstimateSum supports SUM/COUNT, got %v", q.Func)
	}
	vals, err := ConditionVector(s, q)
	if err != nil {
		return Estimate{}, err
	}
	return SumOfValues(s, vals, confidence), nil
}

// EstimateAvg answers an AVG query as the ratio of a SUM and a COUNT
// estimate, with a delta-method (linearization) confidence interval: the
// variance of R̂ = Â/t̂ is approximated by the variance of the residual
// total Σ w·(a − R̂)·cond divided by t̂².
func EstimateAvg(s *sample.Sample, q engine.Query, confidence float64) (Estimate, error) {
	if q.Func != engine.Avg {
		return Estimate{}, fmt.Errorf("aqp: EstimateAvg needs AVG, got %v", q.Func)
	}
	sumQ := q
	sumQ.Func = engine.Sum
	cntQ := q
	cntQ.Func = engine.Count
	sumVals, err := ConditionVector(s, sumQ)
	if err != nil {
		return Estimate{}, err
	}
	cntVals, err := ConditionVector(s, cntQ)
	if err != nil {
		return Estimate{}, err
	}
	sumEst := SumOfValues(s, sumVals, confidence)
	cntEst := SumOfValues(s, cntVals, confidence)
	if cntEst.Value == 0 {
		return Estimate{Confidence: confidence, SampleRows: s.Size()}, nil
	}
	r := sumEst.Value / cntEst.Value
	resid := make([]float64, len(sumVals))
	for i := range resid {
		resid[i] = sumVals[i] - r*cntVals[i]
	}
	residEst := SumOfValues(s, resid, confidence)
	return Estimate{
		Value:      r,
		HalfWidth:  residEst.HalfWidth / math.Abs(cntEst.Value),
		Confidence: confidence,
		SampleRows: s.Size(),
	}, nil
}

// EstimateQuery answers SUM, COUNT or AVG queries; other aggregates need
// the bootstrap (Bootstrap) or exact processing.
func EstimateQuery(s *sample.Sample, q engine.Query, confidence float64) (Estimate, error) {
	switch q.Func {
	case engine.Sum, engine.Count:
		return EstimateSum(s, q, confidence)
	case engine.Avg:
		return EstimateAvg(s, q, confidence)
	default:
		return Estimate{}, fmt.Errorf("aqp: no closed-form estimator for %v; use Bootstrap", q.Func)
	}
}

// GroupEstimate is one group's estimate.
type GroupEstimate struct {
	Key string
	Est Estimate
}

// EstimateGroups answers a group-by SUM/COUNT/AVG query, producing one
// estimate per group observed in the sample. With a stratified sample
// whose strata align with the group-by columns, each group's estimate uses
// exactly its stratum (the paper's §7.4 setting).
func EstimateGroups(s *sample.Sample, q engine.Query, confidence float64) ([]GroupEstimate, error) {
	if len(q.GroupBy) == 0 {
		return nil, fmt.Errorf("aqp: EstimateGroups needs GROUP BY")
	}
	cols := make([]*engine.Column, len(q.GroupBy))
	for i, g := range q.GroupBy {
		c, err := s.Table.Column(g)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	scalar := q
	scalar.GroupBy = nil
	keys := make([]string, s.Size())
	seen := make(map[string]bool)
	var order []string
	for i := 0; i < s.Size(); i++ {
		keys[i] = engine.GroupKey(cols, i)
		if !seen[keys[i]] {
			seen[keys[i]] = true
			order = append(order, keys[i])
		}
	}
	out := make([]GroupEstimate, 0, len(order))
	for _, key := range order {
		gq := scalar
		est, err := estimateForGroup(s, gq, keys, key, confidence)
		if err != nil {
			return nil, err
		}
		out = append(out, GroupEstimate{Key: key, Est: est})
	}
	return out, nil
}

func estimateForGroup(s *sample.Sample, q engine.Query, keys []string, key string, confidence float64) (Estimate, error) {
	switch q.Func {
	case engine.Sum, engine.Count:
		vals, err := ConditionVector(s, q)
		if err != nil {
			return Estimate{}, err
		}
		for i := range vals {
			if keys[i] != key {
				vals[i] = 0
			}
		}
		return SumOfValues(s, vals, confidence), nil
	case engine.Avg:
		sumQ, cntQ := q, q
		sumQ.Func = engine.Sum
		cntQ.Func = engine.Count
		sv, err := ConditionVector(s, sumQ)
		if err != nil {
			return Estimate{}, err
		}
		cv, err := ConditionVector(s, cntQ)
		if err != nil {
			return Estimate{}, err
		}
		for i := range sv {
			if keys[i] != key {
				sv[i], cv[i] = 0, 0
			}
		}
		se := SumOfValues(s, sv, confidence)
		ce := SumOfValues(s, cv, confidence)
		if ce.Value == 0 {
			return Estimate{Confidence: confidence}, nil
		}
		r := se.Value / ce.Value
		resid := make([]float64, len(sv))
		for i := range resid {
			resid[i] = sv[i] - r*cv[i]
		}
		re := SumOfValues(s, resid, confidence)
		return Estimate{
			Value: r, HalfWidth: re.HalfWidth / math.Abs(ce.Value),
			Confidence: confidence, SampleRows: s.Size(),
		}, nil
	default:
		return Estimate{}, fmt.Errorf("aqp: unsupported group aggregate %v", q.Func)
	}
}
