package aqp

import (
	"math"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

// buildTable builds a deterministic table with a key, a value correlated
// with the key, and a small group column.
func buildTable(n int, seed uint64) *engine.Table {
	r := stats.NewRNG(seed)
	keys := make([]int64, n)
	vals := make([]float64, n)
	grp := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = int64(r.Intn(1000) + 1)
		vals[i] = 50 + 0.1*float64(keys[i]) + 10*r.NormFloat64()
		if i%3 == 0 {
			grp[i] = "a"
		} else {
			grp[i] = "b"
		}
	}
	return engine.MustNewTable("t",
		engine.NewIntColumn("k", keys),
		engine.NewFloatColumn("v", vals),
		engine.NewStringColumn("g", grp),
	)
}

func TestEstimateSumCloseToTruth(t *testing.T) {
	tbl := buildTable(50000, 1)
	q := engine.Query{Func: engine.Sum, Col: "v", Ranges: []engine.Range{{Col: "k", Lo: 100, Hi: 400}}}
	truth, err := tbl.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sample.NewUniform(tbl, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateSum(s, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-truth.Value) > 3*est.HalfWidth/1.96*4 {
		t.Errorf("estimate %v too far from truth %v (ε=%v)", est.Value, truth.Value, est.HalfWidth)
	}
	if est.HalfWidth <= 0 {
		t.Error("zero half-width for a nontrivial query")
	}
	if est.Low() >= est.High() {
		t.Error("degenerate interval")
	}
}

func TestEstimateCount(t *testing.T) {
	tbl := buildTable(20000, 2)
	q := engine.Query{Func: engine.Count, Ranges: []engine.Range{{Col: "k", Lo: 1, Hi: 500}}}
	truth, _ := tbl.Execute(q)
	s, _ := sample.NewUniform(tbl, 0.1, 7)
	est, err := EstimateSum(s, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est.Value-truth.Value) / truth.Value; rel > 0.1 {
		t.Errorf("COUNT estimate off by %v", rel)
	}
}

func TestEstimateSumRejectsAvg(t *testing.T) {
	tbl := buildTable(100, 3)
	s, _ := sample.NewUniform(tbl, 0.5, 1)
	if _, err := EstimateSum(s, engine.Query{Func: engine.Avg, Col: "v"}, 0.95); err == nil {
		t.Error("AVG accepted by EstimateSum")
	}
}

func TestCoverageCalibration(t *testing.T) {
	// The 95% CI should cover the truth close to 95% of the time; we
	// tolerate [85%, 100%] over 100 trials to keep the test fast and
	// non-flaky.
	tbl := buildTable(20000, 4)
	q := engine.Query{Func: engine.Sum, Col: "v", Ranges: []engine.Range{{Col: "k", Lo: 200, Hi: 700}}}
	truth, _ := tbl.Execute(q)
	covered := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		s, err := sample.NewUniform(tbl, 0.02, uint64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateSum(s, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if est.Low() <= truth.Value && truth.Value <= est.High() {
			covered++
		}
	}
	if covered < 85 {
		t.Errorf("95%% CI covered truth in %d/%d trials", covered, trials)
	}
}

func TestUnbiasednessAcrossSeeds(t *testing.T) {
	// Lemma 2's premise: the plain AQP estimator is unbiased. Average the
	// estimate over many independent samples and compare to the truth.
	tbl := buildTable(10000, 5)
	q := engine.Query{Func: engine.Sum, Col: "v", Ranges: []engine.Range{{Col: "k", Lo: 1, Hi: 300}}}
	truth, _ := tbl.Execute(q)
	var mean stats.Moments
	for i := 0; i < 60; i++ {
		s, _ := sample.NewUniform(tbl, 0.02, uint64(2000+i))
		est, _ := EstimateSum(s, q, 0.95)
		mean.Add(est.Value)
	}
	if rel := math.Abs(mean.Mean()-truth.Value) / truth.Value; rel > 0.03 {
		t.Errorf("mean estimate off truth by %v; estimator looks biased", rel)
	}
}

func TestMeasureBiasedEstimator(t *testing.T) {
	tbl := buildTable(30000, 6)
	q := engine.Query{Func: engine.Sum, Col: "v", Ranges: []engine.Range{{Col: "k", Lo: 100, Hi: 600}}}
	truth, _ := tbl.Execute(q)
	s, err := sample.NewMeasureBiased(tbl, "v", 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateSum(s, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est.Value-truth.Value) / truth.Value; rel > 0.1 {
		t.Errorf("measure-biased estimate off by %v", rel)
	}
}

func TestStratifiedEstimator(t *testing.T) {
	tbl := buildTable(30000, 7)
	q := engine.Query{Func: engine.Sum, Col: "v", Ranges: []engine.Range{{Col: "k", Lo: 100, Hi: 600}}}
	truth, _ := tbl.Execute(q)
	s, err := sample.NewStratified(tbl, []string{"g"}, 0.05, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateSum(s, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est.Value-truth.Value) / truth.Value; rel > 0.1 {
		t.Errorf("stratified estimate off by %v", rel)
	}
	if est.HalfWidth <= 0 {
		t.Error("stratified half-width zero")
	}
}

func TestStratifiedFullySampledStratumExact(t *testing.T) {
	// A fully sampled stratum must contribute zero variance; with every
	// stratum fully sampled, the estimate is exact and ε = 0.
	tbl := buildTable(500, 8)
	s, err := sample.NewStratified(tbl, []string{"g"}, 1.0, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Func: engine.Sum, Col: "v", Ranges: []engine.Range{{Col: "k", Lo: 1, Hi: 1000}}}
	truth, _ := tbl.Execute(q)
	est, err := EstimateSum(s, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-truth.Value) > 1e-6*math.Abs(truth.Value) {
		t.Errorf("full sample estimate %v != truth %v", est.Value, truth.Value)
	}
	if est.HalfWidth != 0 {
		t.Errorf("full sample ε = %v, want 0", est.HalfWidth)
	}
}

func TestEstimateAvg(t *testing.T) {
	tbl := buildTable(40000, 9)
	q := engine.Query{Func: engine.Avg, Col: "v", Ranges: []engine.Range{{Col: "k", Lo: 100, Hi: 800}}}
	truth, _ := tbl.Execute(q)
	s, _ := sample.NewUniform(tbl, 0.05, 13)
	est, err := EstimateAvg(s, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est.Value-truth.Value) / truth.Value; rel > 0.05 {
		t.Errorf("AVG estimate off by %v", rel)
	}
	if est.HalfWidth <= 0 || est.HalfWidth > truth.Value {
		t.Errorf("AVG ε = %v implausible", est.HalfWidth)
	}
}

func TestEstimateAvgEmptyCondition(t *testing.T) {
	tbl := buildTable(1000, 10)
	s, _ := sample.NewUniform(tbl, 0.1, 14)
	q := engine.Query{Func: engine.Avg, Col: "v", Ranges: []engine.Range{{Col: "k", Lo: 5000, Hi: 6000}}}
	est, err := EstimateAvg(s, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 || est.HalfWidth != 0 {
		t.Errorf("empty AVG = %+v, want zero estimate", est)
	}
}

func TestEstimateQueryDispatch(t *testing.T) {
	tbl := buildTable(1000, 11)
	s, _ := sample.NewUniform(tbl, 0.2, 15)
	for _, f := range []engine.AggFunc{engine.Sum, engine.Count, engine.Avg} {
		if _, err := EstimateQuery(s, engine.Query{Func: f, Col: "v"}, 0.95); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
	if _, err := EstimateQuery(s, engine.Query{Func: engine.Min, Col: "v"}, 0.95); err == nil {
		t.Error("MIN accepted by EstimateQuery")
	}
}

func TestEstimateGroups(t *testing.T) {
	tbl := buildTable(30000, 12)
	q := engine.Query{Func: engine.Sum, Col: "v", GroupBy: []string{"g"},
		Ranges: []engine.Range{{Col: "k", Lo: 1, Hi: 700}}}
	truthRes, _ := tbl.Execute(q)
	truth := map[string]float64{}
	for _, g := range truthRes.Groups {
		truth[g.Key] = g.Value
	}
	s, _ := sample.NewStratified(tbl, []string{"g"}, 0.05, 100, 16)
	ests, err := EstimateGroups(s, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 2 {
		t.Fatalf("groups = %d", len(ests))
	}
	for _, ge := range ests {
		want := truth[ge.Key]
		if rel := math.Abs(ge.Est.Value-want) / want; rel > 0.15 {
			t.Errorf("group %q off by %v", ge.Key, rel)
		}
	}
}

func TestEstimateGroupsRequiresGroupBy(t *testing.T) {
	tbl := buildTable(100, 13)
	s, _ := sample.NewUniform(tbl, 0.5, 17)
	if _, err := EstimateGroups(s, engine.Query{Func: engine.Sum, Col: "v"}, 0.95); err == nil {
		t.Error("missing GROUP BY accepted")
	}
}

func TestConditionVectorValues(t *testing.T) {
	tbl := engine.MustNewTable("t",
		engine.NewIntColumn("k", []int64{1, 2, 3, 4}),
		engine.NewFloatColumn("v", []float64{10, 20, 30, 40}),
	)
	s, _ := sample.NewUniform(tbl, 1.0, 1)
	vals, err := ConditionVector(s, engine.Query{Func: engine.Sum, Col: "v",
		Ranges: []engine.Range{{Col: "k", Lo: 2, Hi: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	// The full-rate sample preserves row order (indices sorted).
	want := []float64{0, 20, 30, 0}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestSumOfValuesLengthPanic(t *testing.T) {
	tbl := buildTable(100, 14)
	s, _ := sample.NewUniform(tbl, 0.5, 18)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	SumOfValues(s, []float64{1, 2}, 0.95)
}

func TestRelativeError(t *testing.T) {
	e := Estimate{Value: 100, HalfWidth: 5}
	if got := e.RelativeError(50); got != 0.1 {
		t.Errorf("RelativeError = %v", got)
	}
	if got := e.RelativeError(0); !math.IsInf(got, 1) {
		t.Errorf("RelativeError(0) = %v", got)
	}
	zero := Estimate{}
	if got := zero.RelativeError(0); got != 0 {
		t.Errorf("zero/zero RelativeError = %v", got)
	}
}

func TestStratifiedCoverageCalibration(t *testing.T) {
	// The stratified CI should also cover the truth ~95% of the time.
	tbl := buildTable(20000, 40)
	q := engine.Query{Func: engine.Sum, Col: "v", Ranges: []engine.Range{{Col: "k", Lo: 200, Hi: 700}}}
	truth, _ := tbl.Execute(q)
	covered := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		s, err := sample.NewStratified(tbl, []string{"g"}, 0.02, 50, uint64(3000+i))
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateSum(s, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if est.Low() <= truth.Value && truth.Value <= est.High() {
			covered++
		}
	}
	if covered < trials*80/100 {
		t.Errorf("stratified 95%% CI covered truth in %d/%d trials", covered, trials)
	}
}

func TestMeasureBiasedCoverageCalibration(t *testing.T) {
	tbl := buildTable(20000, 41)
	q := engine.Query{Func: engine.Sum, Col: "v", Ranges: []engine.Range{{Col: "k", Lo: 100, Hi: 600}}}
	truth, _ := tbl.Execute(q)
	covered := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		s, err := sample.NewMeasureBiased(tbl, "v", 0.02, uint64(4000+i))
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateSum(s, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if est.Low() <= truth.Value && truth.Value <= est.High() {
			covered++
		}
	}
	if covered < trials*80/100 {
		t.Errorf("measure-biased 95%% CI covered truth in %d/%d trials", covered, trials)
	}
}

func TestStratifiedBeatsUniformOnSmallGroups(t *testing.T) {
	// The reason stratified sampling exists: group estimates for rare
	// strata are far better than a uniform sample's.
	r := stats.NewRNG(50)
	n := 30000
	keys := make([]int64, n)
	vals := make([]float64, n)
	grp := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = int64(r.Intn(1000) + 1)
		vals[i] = 100 + 10*r.NormFloat64()
		if i%200 == 0 {
			grp[i] = "rare"
		} else {
			grp[i] = "common"
		}
	}
	tbl := engine.MustNewTable("t",
		engine.NewIntColumn("k", keys),
		engine.NewFloatColumn("v", vals),
		engine.NewStringColumn("g", grp),
	)
	q := engine.Query{Func: engine.Sum, Col: "v", GroupBy: []string{"g"},
		Ranges: []engine.Range{{Col: "k", Lo: 1, Hi: 1000}}}
	truthRes, _ := tbl.Execute(q)
	truth := map[string]float64{}
	for _, g := range truthRes.Groups {
		truth[g.Key] = g.Value
	}
	var uniErr, strErr stats.Moments
	for i := 0; i < 10; i++ {
		su, err := sample.NewUniform(tbl, 0.01, uint64(6000+i))
		if err != nil {
			t.Fatal(err)
		}
		ss, err := sample.NewStratified(tbl, []string{"g"}, 0.01, 100, uint64(7000+i))
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range []struct {
			s   *sample.Sample
			acc *stats.Moments
		}{{su, &uniErr}, {ss, &strErr}} {
			groups, err := EstimateGroups(pair.s, q, 0.95)
			if err != nil {
				t.Fatal(err)
			}
			for _, ge := range groups {
				if ge.Key == "rare" {
					pair.acc.Add(math.Abs(ge.Est.Value-truth["rare"]) / truth["rare"])
				}
			}
		}
	}
	if strErr.Mean() >= uniErr.Mean() {
		t.Errorf("stratified rare-group error %v not better than uniform %v",
			strErr.Mean(), uniErr.Mean())
	}
}
