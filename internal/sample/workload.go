package sample

import (
	"fmt"
	"math/bits"
	"sort"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// NewWorkloadDriven draws a sample biased toward the regions a historical
// workload actually touches — the "workload-driven sample creation"
// direction the paper's §8 names. Each row's sampling mass is
// baseWeight + (number of workload queries selecting it); rows are drawn
// with replacement proportionally to mass and carry Horvitz-Thompson
// weights, so every estimator stays unbiased for arbitrary queries while
// variance drops on workload-like ones. baseWeight > 0 keeps untouched
// rows reachable (default 1 when zero).
func NewWorkloadDriven(tbl *engine.Table, queries []engine.Query, rate, baseWeight float64, seed uint64) (*Sample, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("sample: workload-driven rate %v out of (0, 1]", rate)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("sample: workload-driven sampling needs at least one query")
	}
	if baseWeight == 0 {
		baseWeight = 1
	}
	if baseWeight < 0 {
		return nil, fmt.Errorf("sample: negative base weight %v", baseWeight)
	}
	n := tbl.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("sample: cannot sample empty table %q", tbl.Name)
	}
	mass := make([]float64, n)
	for i := range mass {
		mass[i] = baseWeight
	}
	for _, q := range queries {
		sel, err := tbl.Filter(q.Ranges)
		if err != nil {
			return nil, err
		}
		for wi, w := range sel.Words() {
			base := wi << 6
			for w != 0 {
				mass[base+bits.TrailingZeros64(w)]++
				w &= w - 1
			}
		}
	}
	cum := make([]float64, n)
	total := 0.0
	for i, m := range mass {
		total += m
		cum[i] = total
	}
	size := int(rate*float64(n) + 0.5)
	if size < 1 {
		size = 1
	}
	r := stats.NewRNG(seed)
	idx := make([]int, size)
	invp := make([]float64, size)
	for d := 0; d < size; d++ {
		u := r.Float64() * total
		i := sort.SearchFloat64s(cum, u)
		if i >= n {
			i = n - 1
		}
		idx[d] = i
		invp[d] = total / mass[i]
	}
	st := tbl.Gather(tbl.Name+"_wdsample", idx)
	return &Sample{Kind: MeasureBiased, Table: st, SourceRows: n, InvP: invp}, nil
}
