package sample

import (
	"math"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

func makeTable(t *testing.T, n int, seed uint64) *engine.Table {
	t.Helper()
	r := stats.NewRNG(seed)
	vals := make([]float64, n)
	keys := make([]int64, n)
	grp := make([]string, n)
	for i := range vals {
		vals[i] = 10 + 5*r.NormFloat64()
		if vals[i] < 0.1 {
			vals[i] = 0.1
		}
		keys[i] = int64(i + 1)
		if i%100 == 0 {
			grp[i] = "rare"
		} else if i%2 == 0 {
			grp[i] = "even"
		} else {
			grp[i] = "odd"
		}
	}
	return engine.MustNewTable("t",
		engine.NewIntColumn("k", keys),
		engine.NewFloatColumn("v", vals),
		engine.NewStringColumn("g", grp),
	)
}

func TestUniformBasics(t *testing.T) {
	tbl := makeTable(t, 10000, 1)
	s, err := NewUniform(tbl, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != Uniform {
		t.Error("wrong kind")
	}
	if got := s.Size(); got != 500 {
		t.Errorf("size = %d, want 500", got)
	}
	if s.SourceRows != 10000 {
		t.Errorf("source rows = %d", s.SourceRows)
	}
	if math.Abs(s.Rate()-0.05) > 1e-9 {
		t.Errorf("rate = %v", s.Rate())
	}
	for _, w := range s.InvP {
		if w != 10000 {
			t.Fatalf("uniform InvP = %v, want N", w)
		}
	}
}

func TestUniformNoDuplicates(t *testing.T) {
	tbl := makeTable(t, 1000, 2)
	s, err := NewUniform(tbl, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	keys := s.Table.MustColumn("k").Ints
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %d in without-replacement sample", k)
		}
		seen[k] = true
	}
}

func TestUniformDeterministic(t *testing.T) {
	tbl := makeTable(t, 1000, 3)
	a, _ := NewUniform(tbl, 0.1, 9)
	b, _ := NewUniform(tbl, 0.1, 9)
	ka, kb := a.Table.MustColumn("k").Ints, b.Table.MustColumn("k").Ints
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	c, _ := NewUniform(tbl, 0.1, 10)
	kc := c.Table.MustColumn("k").Ints
	diff := false
	for i := range ka {
		if ka[i] != kc[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical samples")
	}
}

func TestUniformRateValidation(t *testing.T) {
	tbl := makeTable(t, 10, 4)
	for _, r := range []float64{0, -0.5, 1.5} {
		if _, err := NewUniform(tbl, r, 1); err == nil {
			t.Errorf("rate %v accepted", r)
		}
	}
	empty := engine.MustNewTable("e", engine.NewIntColumn("x", nil))
	if _, err := NewUniform(empty, 0.5, 1); err == nil {
		t.Error("empty table accepted")
	}
}

func TestUniformTinyRateGivesAtLeastOne(t *testing.T) {
	tbl := makeTable(t, 100, 5)
	s, err := NewUniform(tbl, 0.0001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() < 1 {
		t.Error("empty sample")
	}
}

func TestMeasureBiasedFavorsLargeValues(t *testing.T) {
	n := 10000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1
	}
	vals[0] = 1000 // one huge outlier
	tbl := engine.MustNewTable("t", engine.NewFloatColumn("v", vals))
	s, err := NewMeasureBiased(tbl, "v", 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < s.Size(); i++ {
		if s.Table.MustColumn("v").Floats[i] == 1000 {
			hits++
		}
	}
	// The outlier holds 1000/10999 ≈ 9% of mass; in 500 draws expect ~45.
	if hits < 10 {
		t.Errorf("outlier drawn %d times, expected heavy representation", hits)
	}
}

func TestMeasureBiasedWeights(t *testing.T) {
	tbl := engine.MustNewTable("t", engine.NewFloatColumn("v", []float64{1, 2, 3, 4}))
	s, err := NewMeasureBiased(tbl, "v", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// InvP must equal T/a_i = 10/a_i for every draw.
	for i := 0; i < s.Size(); i++ {
		a := s.Table.MustColumn("v").Floats[i]
		if got := s.InvP[i]; math.Abs(got-10/a) > 1e-9 {
			t.Errorf("draw %d: InvP = %v, want %v", i, got, 10/a)
		}
	}
}

func TestMeasureBiasedSumEstimateUnbiasedish(t *testing.T) {
	tbl := makeTable(t, 5000, 6)
	truth := 0.0
	for _, v := range tbl.MustColumn("v").Floats {
		truth += v
	}
	var errs []float64
	for trial := uint64(0); trial < 20; trial++ {
		s, err := NewMeasureBiased(tbl, "v", 0.02, 100+trial)
		if err != nil {
			t.Fatal(err)
		}
		est := 0.0
		for i := 0; i < s.Size(); i++ {
			est += s.Table.MustColumn("v").Floats[i] * s.InvP[i]
		}
		est /= float64(s.Size())
		errs = append(errs, (est-truth)/truth)
	}
	if m := stats.Mean(errs); math.Abs(m) > 0.02 {
		t.Errorf("mean relative bias = %v, want ~0", m)
	}
}

func TestMeasureBiasedErrors(t *testing.T) {
	tbl := makeTable(t, 10, 7)
	if _, err := NewMeasureBiased(tbl, "nope", 0.5, 1); err == nil {
		t.Error("missing measure column accepted")
	}
	zero := engine.MustNewTable("z", engine.NewFloatColumn("v", []float64{0, 0, -1}))
	if _, err := NewMeasureBiased(zero, "v", 0.5, 1); err == nil {
		t.Error("non-positive measure accepted")
	}
}

func TestMeasureBiasedSkipsZeroMass(t *testing.T) {
	tbl := engine.MustNewTable("t", engine.NewFloatColumn("v", []float64{0, 5, 0, 0, 5, 0}))
	s, err := NewMeasureBiased(tbl, "v", 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Size(); i++ {
		if s.Table.MustColumn("v").Floats[i] <= 0 {
			t.Fatal("zero-mass row drawn")
		}
	}
}

func TestStratifiedMinRows(t *testing.T) {
	tbl := makeTable(t, 10000, 8)
	s, err := NewStratified(tbl, []string{"g"}, 0.01, 50, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Strata) != 3 {
		t.Fatalf("strata = %+v", s.Strata)
	}
	for _, st := range s.Strata {
		if st.Key == "rare" {
			// 100 source rows; 1% would be 1 row, but minRows lifts it to 50.
			if st.SampleRows != 50 {
				t.Errorf("rare stratum sampled %d rows, want 50", st.SampleRows)
			}
		} else if st.SampleRows < 40 {
			t.Errorf("stratum %q sampled %d rows", st.Key, st.SampleRows)
		}
		if st.SampleRows > st.SourceRows {
			t.Errorf("stratum %q oversampled", st.Key)
		}
	}
}

func TestStratifiedFullSmallGroup(t *testing.T) {
	tbl := makeTable(t, 1000, 9)
	s, err := NewStratified(tbl, []string{"g"}, 0.01, 100, 22)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range s.Strata {
		if st.Key == "rare" && st.SampleRows != st.SourceRows {
			t.Errorf("rare group: %d/%d sampled, want all", st.SampleRows, st.SourceRows)
		}
	}
}

func TestStratifiedStratumOfConsistent(t *testing.T) {
	tbl := makeTable(t, 2000, 10)
	s, err := NewStratified(tbl, []string{"g"}, 0.05, 10, 23)
	if err != nil {
		t.Fatal(err)
	}
	gcol := s.Table.MustColumn("g")
	counts := make([]int, len(s.Strata))
	for i := 0; i < s.Size(); i++ {
		si := s.StratumOf[i]
		if s.Strata[si].Key != gcol.StringAt(i) {
			t.Fatalf("row %d: stratum key %q but value %q", i, s.Strata[si].Key, gcol.StringAt(i))
		}
		counts[si]++
	}
	for si, st := range s.Strata {
		if counts[si] != st.SampleRows {
			t.Errorf("stratum %q: %d rows present, SampleRows=%d", st.Key, counts[si], st.SampleRows)
		}
	}
}

func TestStratifiedValidation(t *testing.T) {
	tbl := makeTable(t, 10, 11)
	if _, err := NewStratified(tbl, nil, 0.5, 1, 1); err == nil {
		t.Error("no stratify columns accepted")
	}
	if _, err := NewStratified(tbl, []string{"nope"}, 0.5, 1, 1); err == nil {
		t.Error("bad column accepted")
	}
}

func TestSubsamplePreservesWeights(t *testing.T) {
	tbl := makeTable(t, 5000, 12)
	s, _ := NewUniform(tbl, 0.1, 31)
	sub := s.Subsample(0.25, 32)
	if sub.Size() != 125 {
		t.Errorf("subsample size = %d, want 125", sub.Size())
	}
	for _, w := range sub.InvP {
		if w != 5000 {
			t.Fatalf("subsample InvP = %v", w)
		}
	}
	if sub.SourceRows != 5000 {
		t.Errorf("subsample SourceRows = %d", sub.SourceRows)
	}
}

func TestSubsampleStratifiedStructure(t *testing.T) {
	tbl := makeTable(t, 5000, 13)
	s, _ := NewStratified(tbl, []string{"g"}, 0.1, 20, 33)
	sub := s.Subsample(0.5, 34)
	total := 0
	for _, st := range sub.Strata {
		total += st.SampleRows
	}
	if total != sub.Size() {
		t.Errorf("stratum rows %d != size %d", total, sub.Size())
	}
	gcol := sub.Table.MustColumn("g")
	for i := 0; i < sub.Size(); i++ {
		if sub.Strata[sub.StratumOf[i]].Key != gcol.StringAt(i) {
			t.Fatal("subsample stratum mapping broken")
		}
	}
}

func TestSubsampleMinimumTwoRows(t *testing.T) {
	tbl := makeTable(t, 100, 14)
	s, _ := NewUniform(tbl, 0.1, 35)
	sub := s.Subsample(0.0001, 36)
	if sub.Size() < 2 {
		t.Errorf("subsample size = %d, want >= 2", sub.Size())
	}
}

func TestKindString(t *testing.T) {
	if Uniform.String() != "uniform" || MeasureBiased.String() != "measure-biased" || Stratified.String() != "stratified" {
		t.Error("Kind.String wrong")
	}
}

func TestWorkloadDrivenUnbiased(t *testing.T) {
	tbl := makeTable(t, 10000, 20)
	hot := engine.Query{Func: engine.Sum, Col: "v",
		Ranges: []engine.Range{{Col: "k", Lo: 1000, Hi: 2000}}}
	truth := 0.0
	for _, v := range tbl.MustColumn("v").Floats {
		truth += v
	}
	var errs []float64
	for trial := uint64(0); trial < 20; trial++ {
		s, err := NewWorkloadDriven(tbl, []engine.Query{hot}, 0.05, 1, 500+trial)
		if err != nil {
			t.Fatal(err)
		}
		est := 0.0
		for i := 0; i < s.Size(); i++ {
			est += s.Table.MustColumn("v").Floats[i] * s.InvP[i]
		}
		est /= float64(s.Size())
		errs = append(errs, (est-truth)/truth)
	}
	if m := stats.Mean(errs); math.Abs(m) > 0.03 {
		t.Errorf("mean relative bias = %v on full-table SUM", m)
	}
}

func TestWorkloadDrivenOversamplesHotRegion(t *testing.T) {
	tbl := makeTable(t, 10000, 21)
	hot := engine.Query{Func: engine.Sum, Col: "v",
		Ranges: []engine.Range{{Col: "k", Lo: 1, Hi: 500}}} // 5% of rows
	s, err := NewWorkloadDriven(tbl, []engine.Query{hot, hot, hot}, 0.05, 1, 22)
	if err != nil {
		t.Fatal(err)
	}
	inHot := 0
	kcol := s.Table.MustColumn("k")
	for i := 0; i < s.Size(); i++ {
		if kcol.Ints[i] <= 500 {
			inHot++
		}
	}
	// The hot 5% of rows carry mass 4 vs 1: expect ~17% of draws, far
	// above the uniform 5%.
	frac := float64(inHot) / float64(s.Size())
	if frac < 0.10 {
		t.Errorf("hot-region share = %v, want oversampled", frac)
	}
}

func TestWorkloadDrivenValidation(t *testing.T) {
	tbl := makeTable(t, 100, 23)
	q := engine.Query{Func: engine.Sum, Col: "v"}
	if _, err := NewWorkloadDriven(tbl, nil, 0.1, 1, 1); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := NewWorkloadDriven(tbl, []engine.Query{q}, 0, 1, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewWorkloadDriven(tbl, []engine.Query{q}, 0.1, -1, 1); err == nil {
		t.Error("negative base weight accepted")
	}
	bad := engine.Query{Func: engine.Sum, Col: "v", Ranges: []engine.Range{{Col: "nope"}}}
	if _, err := NewWorkloadDriven(tbl, []engine.Query{bad}, 0.1, 1, 1); err == nil {
		t.Error("bad workload query accepted")
	}
}
