// Package sample implements the three sampling schemes of the paper's
// evaluation — uniform, measure-biased [Ding et al., Sample+Seek], and
// stratified [BlinkDB] — plus the subsampling used by AQP++'s aggregate
// identification step.
//
// A Sample stores the sampled rows as an engine.Table (the paper stores
// its sample into DBX as a table) together with the per-row
// inverse-inclusion-probability weights that the estimators in
// internal/aqp need.
package sample

import (
	"fmt"
	"sort"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// Kind identifies a sampling scheme.
type Kind uint8

const (
	// Uniform samples each row with equal probability.
	Uniform Kind = iota
	// MeasureBiased samples rows with probability proportional to a
	// measure attribute (with replacement).
	MeasureBiased
	// Stratified samples each stratum (group) at its own rate,
	// guaranteeing a minimum number of rows per stratum.
	Stratified
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case MeasureBiased:
		return "measure-biased"
	case Stratified:
		return "stratified"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Stratum describes one group of a stratified sample.
type Stratum struct {
	Key        string
	SourceRows int
	SampleRows int
}

// Sample is a materialized sample of a source table.
type Sample struct {
	Kind       Kind
	Table      *engine.Table
	SourceRows int
	// InvP[i] is 1/p_i, the inverse of sample row i's per-draw inclusion
	// probability: N for uniform rows, T/a_i for measure-biased rows
	// (T = total measure). Nil for stratified samples, which carry their
	// weights in Strata.
	InvP []float64
	// Strata and StratumOf describe a stratified sample's structure:
	// StratumOf[i] is the stratum index of sample row i.
	Strata    []Stratum
	StratumOf []int
}

// Size returns the number of rows in the sample.
func (s *Sample) Size() int { return s.Table.NumRows() }

// Rate returns the effective sampling rate.
func (s *Sample) Rate() float64 {
	if s.SourceRows == 0 {
		return 0
	}
	return float64(s.Size()) / float64(s.SourceRows)
}

// SizeBytes returns the bytes of sample payload, for preprocessing-space
// accounting.
func (s *Sample) SizeBytes() int64 {
	b := s.Table.SizeBytes()
	b += int64(len(s.InvP)) * 8
	b += int64(len(s.StratumOf)) * 8
	return b
}

// NewUniform draws a uniform sample without replacement of size
// round(rate*N) (at least 1 when the table is nonempty). It is
// deterministic given seed.
func NewUniform(tbl *engine.Table, rate float64, seed uint64) (*Sample, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("sample: uniform rate %v out of (0, 1]", rate)
	}
	n := tbl.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("sample: cannot sample empty table %q", tbl.Name)
	}
	size := int(rate*float64(n) + 0.5)
	if size < 1 {
		size = 1
	}
	if size > n {
		size = n
	}
	r := stats.NewRNG(seed)
	idx := pickDistinct(r, n, size)
	st := tbl.Gather(tbl.Name+"_sample", idx)
	invp := make([]float64, size)
	for i := range invp {
		invp[i] = float64(n)
	}
	return &Sample{Kind: Uniform, Table: st, SourceRows: n, InvP: invp}, nil
}

// pickDistinct returns `size` distinct indices from [0,n) in ascending
// order, via a partial Fisher-Yates over a lazily materialized index map
// (O(size) memory).
func pickDistinct(r *stats.RNG, n, size int) []int {
	swapped := make(map[int]int, size*2)
	at := func(i int) int {
		if v, ok := swapped[i]; ok {
			return v
		}
		return i
	}
	out := make([]int, size)
	for i := 0; i < size; i++ {
		j := i + r.Intn(n-i)
		out[i] = at(j)
		swapped[j] = at(i)
	}
	sort.Ints(out)
	return out
}

// NewMeasureBiased draws size = round(rate*N) rows with replacement, each
// draw selecting row i with probability a_i/T where a_i is the (clamped
// nonnegative) value of measureCol and T its total. Rows with
// a_i <= 0 are never drawn; they contribute nothing to SUM(measure)
// estimates, which is the query class this scheme targets (§7.4).
func NewMeasureBiased(tbl *engine.Table, measureCol string, rate float64, seed uint64) (*Sample, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("sample: measure-biased rate %v out of (0, 1]", rate)
	}
	c, err := tbl.Column(measureCol)
	if err != nil {
		return nil, err
	}
	n := tbl.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("sample: cannot sample empty table %q", tbl.Name)
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		v := c.Float(i)
		if v > 0 {
			total += v
		}
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("sample: measure column %q has no positive mass", measureCol)
	}
	size := int(rate*float64(n) + 0.5)
	if size < 1 {
		size = 1
	}
	r := stats.NewRNG(seed)
	idx := make([]int, size)
	invp := make([]float64, size)
	for d := 0; d < size; d++ {
		u := r.Float64() * total
		i := sort.SearchFloat64s(cum, u)
		if i >= n {
			i = n - 1
		}
		// SearchFloat64s finds the first cum[i] >= u; rows with zero
		// measure have cum[i] == cum[i-1] and are never the first such
		// index for u > cum[i-1], except at exact boundaries; skip ahead
		// to the owning positive-mass row.
		for c.Float(i) <= 0 && i+1 < n {
			i++
		}
		idx[d] = i
		invp[d] = total / c.Float(i)
	}
	st := tbl.Gather(tbl.Name+"_mbsample", idx)
	return &Sample{Kind: MeasureBiased, Table: st, SourceRows: n, InvP: invp}, nil
}

// NewStratified stratifies the table by the group key of stratifyCols and
// samples each stratum uniformly without replacement at rate `rate`, but
// never fewer than minRows rows (or the whole stratum if smaller). This is
// the BlinkDB-style disproportionate allocation of §7.4: small groups are
// fully (or heavily) sampled.
func NewStratified(tbl *engine.Table, stratifyCols []string, rate float64, minRows int, seed uint64) (*Sample, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("sample: stratified rate %v out of (0, 1]", rate)
	}
	if len(stratifyCols) == 0 {
		return nil, fmt.Errorf("sample: stratified sampling needs at least one column")
	}
	n := tbl.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("sample: cannot sample empty table %q", tbl.Name)
	}
	cols := make([]*engine.Column, len(stratifyCols))
	for i, name := range stratifyCols {
		c, err := tbl.Column(name)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	rowsByKey := make(map[string][]int)
	var keyOrder []string
	for i := 0; i < n; i++ {
		k := engine.GroupKey(cols, i)
		if _, ok := rowsByKey[k]; !ok {
			keyOrder = append(keyOrder, k)
		}
		rowsByKey[k] = append(rowsByKey[k], i)
	}
	r := stats.NewRNG(seed)
	var idx []int
	var strata []Stratum
	var stratumOf []int
	for si, k := range keyOrder {
		rows := rowsByKey[k]
		want := int(rate*float64(len(rows)) + 0.5)
		if want < minRows {
			want = minRows
		}
		if want > len(rows) {
			want = len(rows)
		}
		if want < 1 {
			want = 1
		}
		picked := pickDistinct(r, len(rows), want)
		for _, p := range picked {
			idx = append(idx, rows[p])
			stratumOf = append(stratumOf, si)
		}
		strata = append(strata, Stratum{Key: k, SourceRows: len(rows), SampleRows: want})
	}
	st := tbl.Gather(tbl.Name+"_stsample", idx)
	return &Sample{
		Kind: Stratified, Table: st, SourceRows: n,
		Strata: strata, StratumOf: stratumOf,
	}, nil
}

// Subsample returns a uniform subset of the sample at the given rate (at
// least 2 rows when available), preserving kind, weights and stratum
// structure. AQP++ uses it to score the P⁻ candidates cheaply (§5.2).
func (s *Sample) Subsample(rate float64, seed uint64) *Sample {
	n := s.Size()
	size := int(rate*float64(n) + 0.5)
	if size < 2 {
		size = 2
	}
	if size > n {
		size = n
	}
	r := stats.NewRNG(seed)
	idx := pickDistinct(r, n, size)
	out := &Sample{
		Kind:       s.Kind,
		Table:      s.Table.Gather(s.Table.Name+"_sub", idx),
		SourceRows: s.SourceRows,
	}
	if s.InvP != nil {
		out.InvP = make([]float64, size)
		for i, j := range idx {
			out.InvP[i] = s.InvP[j]
		}
	}
	if s.Strata != nil {
		out.Strata = make([]Stratum, len(s.Strata))
		copy(out.Strata, s.Strata)
		for i := range out.Strata {
			out.Strata[i].SampleRows = 0
		}
		out.StratumOf = make([]int, size)
		for i, j := range idx {
			si := s.StratumOf[j]
			out.StratumOf[i] = si
			out.Strata[si].SampleRows++
		}
	}
	return out
}
