package sample

import (
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// benchTable builds a sampling fixture without *testing.T plumbing.
func benchTable(n int) *engine.Table {
	r := stats.NewRNG(99)
	vals := make([]float64, n)
	keys := make([]int64, n)
	grp := make([]string, n)
	for i := range vals {
		vals[i] = 10 + 5*r.NormFloat64()
		if vals[i] < 0.1 {
			vals[i] = 0.1
		}
		keys[i] = int64(i + 1)
		switch {
		case i%100 == 0:
			grp[i] = "rare"
		case i%2 == 0:
			grp[i] = "even"
		default:
			grp[i] = "odd"
		}
	}
	return engine.MustNewTable("t",
		engine.NewIntColumn("k", keys),
		engine.NewFloatColumn("v", vals),
		engine.NewStringColumn("g", grp),
	)
}

func BenchmarkUniformSample(b *testing.B) {
	tbl := benchTable(200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewUniform(tbl, 0.01, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeasureBiasedSample(b *testing.B) {
	tbl := benchTable(200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewMeasureBiased(tbl, "v", 0.01, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStratifiedSample(b *testing.B) {
	tbl := benchTable(200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewStratified(tbl, []string{"g"}, 0.01, 100, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
