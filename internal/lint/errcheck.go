package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DroppedErrorRule flags statements that call a function returning an
// error and silently drop it: plain call statements, defers, and go
// statements. A dropped error in the engine or cube I/O paths turns a
// failed read into a silently wrong aggregate — worse than a crash in a
// system whose whole contract is bounded error. Handle it, return it,
// or (when the discard is genuinely intended) assign it to _ so the
// intent is visible at the call site.
//
// Commands (package main) are exempt: top-level CLIs report through
// their own exit paths and the extra ceremony buys nothing. Also exempt
// are writes that are documented to never fail — the Write* methods of
// strings.Builder and bytes.Buffer, and fmt.Fprint* targeting one of
// them — because "handling" an impossible error only buries the calls
// that can actually fail.
type DroppedErrorRule struct{}

// Name implements Rule.
func (DroppedErrorRule) Name() string { return "dropped-error" }

// Check implements Rule.
func (DroppedErrorRule) Check(pkg *Package, report func(pos token.Pos, msg string)) {
	if pkg.IsCommand() {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			kind := "call"
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
				kind = "deferred call"
			case *ast.GoStmt:
				call = n.Call
				kind = "go'd call"
			default:
				return true
			}
			if call == nil || !returnsError(pkg.Info, call) || neverFails(pkg.Info, call) {
				return true
			}
			report(call.Pos(), kind+" drops its error result; handle it or assign to _ explicitly")
			return true
		})
	}
}

// returnsError reports whether call's (last) result is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.IsType() {
		return false // conversion, not a call
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

// neverFails reports whether call's error result is documented to
// always be nil: Write* on strings.Builder/bytes.Buffer, or fmt.Fprint*
// into one of those.
func neverFails(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		if tv, ok := info.Types[call.Args[0]]; ok && isMemWriter(tv.Type) {
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return strings.HasPrefix(fn.Name(), "Write") && isMemWriter(sig.Recv().Type())
	}
	return false
}

// isMemWriter reports whether t is (a pointer to) strings.Builder or
// bytes.Buffer.
func isMemWriter(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	full := n.Obj().Pkg().Path() + "." + n.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// PanicRule flags panic(...) in library packages. Panics are reserved
// for programmer-error invariants (documented in the allowlist, one
// entry per file, so every new site is a conscious decision); anything
// reachable from user input or data files must return an error instead,
// because a panic inside a query path takes the whole serving process
// down with it.
type PanicRule struct{}

// Name implements Rule.
func (PanicRule) Name() string { return "panic" }

// Check implements Rule.
func (PanicRule) Check(pkg *Package, report func(pos token.Pos, msg string)) {
	if pkg.IsCommand() {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, ok := pkg.Info.Uses[id].(*types.Builtin); !ok {
				return true // shadowed
			}
			report(call.Pos(), "panic in library package; return an error unless this is a documented invariant (then allowlist it)")
			return true
		})
	}
}
