package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkInvariants asserts the structural properties every graph must
// satisfy: entry at index 0, indices match positions, succ/pred edge
// lists mirror each other, Exit and Panic have no successors, and
// every block is reachable from entry or reported by Unreachable().
func checkInvariants(t *testing.T, g *Graph, label string) {
	t.Helper()
	if len(g.Blocks) == 0 {
		t.Fatalf("%s: graph has no blocks", label)
	}
	if g.Exit == nil {
		t.Fatalf("%s: graph has no exit block", label)
	}
	for i, b := range g.Blocks {
		if b.Index != i {
			t.Fatalf("%s: block %d has Index %d", label, i, b.Index)
		}
		for _, n := range b.Nodes {
			if n == nil {
				t.Fatalf("%s: b%d holds a nil node", label, i)
			}
		}
		for _, s := range b.Succs {
			if !containsBlock(s.Preds, b) {
				t.Fatalf("%s: edge b%d->b%d missing from preds", label, b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !containsBlock(p.Succs, b) {
				t.Fatalf("%s: pred edge b%d<-b%d missing from succs", label, b.Index, p.Index)
			}
		}
	}
	if len(g.Exit.Succs) != 0 {
		t.Fatalf("%s: exit block has successors", label)
	}
	if g.Panic != nil && len(g.Panic.Succs) != 0 {
		t.Fatalf("%s: panic block has successors", label)
	}
	// Reachable-or-reported: Unreachable() must account for exactly
	// the blocks a DFS from entry cannot reach.
	dead := make(map[int]bool)
	for _, b := range g.Unreachable() {
		dead[b.Index] = true
	}
	reached := map[int]bool{0: true}
	stack := []*Block{g.Blocks[0]}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reached[s.Index] {
				reached[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	for _, b := range g.Blocks {
		if b == g.Exit || b == g.Panic {
			continue
		}
		if !reached[b.Index] && !dead[b.Index] {
			t.Fatalf("%s: b%d(%s) neither reachable nor reported unreachable", label, b.Index, b.Kind)
		}
		if reached[b.Index] && dead[b.Index] {
			t.Fatalf("%s: b%d(%s) both reachable and reported unreachable", label, b.Index, b.Kind)
		}
	}
}

func containsBlock(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

// buildAll parses src and builds a CFG for every function declaration
// and function literal, running the invariant checks on each.
func buildAll(t *testing.T, src, label string) []*Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, label+".go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	return buildAllFromFile(t, f, label)
}

func buildAllFromFile(t *testing.T, f *ast.File, label string) []*Graph {
	t.Helper()
	var graphs []*Graph
	i := 0
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		default:
			return true
		}
		g := New(body)
		checkInvariants(t, g, label+"#"+string(rune('0'+i%10)))
		graphs = append(graphs, g)
		i++
		return true
	})
	return graphs
}

// pathological holds the table-driven shapes the issue calls out:
// labeled breaks, gotos, select, deferred closures — plus the other
// corners that have historically broken CFG builders.
var pathological = []struct {
	name string
	src  string
}{
	{"labeled_break_continue", `package p
func f(xs [][]int) int {
	total := 0
outer:
	for i := range xs {
		for j := range xs[i] {
			if xs[i][j] < 0 {
				break outer
			}
			if xs[i][j] == 0 {
				continue outer
			}
			total += xs[i][j]
			_ = j
		}
	}
	return total
}`},
	{"goto_forward_backward", `package p
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		if i == 7 {
			goto done
		}
		goto loop
	}
done:
	return i
}`},
	{"goto_into_dead_code", `package p
func f() int {
	goto skip
	println("dead")
skip:
	return 1
}`},
	{"select_all_forms", `package p
func f(a, b chan int, done chan struct{}) int {
	for {
		select {
		case v := <-a:
			return v
		case b <- 1:
		case <-done:
			break
		default:
			return 0
		}
	}
}`},
	{"select_empty", `package p
func f() {
	select {}
}`},
	{"labeled_select_break", `package p
func f(c chan int) {
sel:
	select {
	case <-c:
		break sel
	}
}`},
	{"deferred_closures", `package p
import "sync"
func f(mu *sync.Mutex, xs []int) (n int) {
	mu.Lock()
	defer func() {
		mu.Unlock()
		n++
	}()
	for _, x := range xs {
		defer func(v int) { n += v }(x)
	}
	return
}`},
	{"switch_fallthrough_chain", `package p
func f(x int) int {
	switch x {
	case 0:
		fallthrough
	case 1:
		x++
		fallthrough
	case 2:
		x++
	default:
		x--
	}
	return x
}`},
	{"typeswitch_no_default", `package p
func f(v any) int {
	switch v := v.(type) {
	case int:
		return v
	case string:
		return len(v)
	}
	return 0
}`},
	{"infinite_loop_no_exit", `package p
func f(c chan int) {
	for {
		<-c
	}
}`},
	{"panic_paths", `package p
func f(x int) int {
	if x < 0 {
		panic("negative")
	}
	defer println("bye")
	if x == 0 {
		panic(x)
	}
	return x
}`},
	{"dead_after_return", `package p
func f() int {
	return 1
	println("never")
	return 2
}`},
	{"range_over_func_body_breaks", `package p
func f(m map[string]int) int {
	total := 0
	for k, v := range m {
		if k == "stop" {
			break
		}
		if v == 0 {
			continue
		}
		total += v
	}
	return total
}`},
	{"nested_labeled_switch_in_loop", `package p
func f(xs []int) int {
	n := 0
loop:
	for _, x := range xs {
	sw:
		switch {
		case x < 0:
			break loop
		case x == 0:
			break sw
		default:
			n += x
		}
		n++
	}
	return n
}`},
	{"for_with_post_and_continue", `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			continue
		}
		s += i
	}
	return s
}`},
	{"goroutine_and_send", `package p
func f(c chan int) {
	go func() {
		c <- 1
	}()
	c <- 2
}`},
	{"empty_body", `package p
func f() {}`},
	{"labeled_plain_statement", `package p
func f(x int) int {
here:
	x++
	if x < 10 {
		goto here
	}
	return x
}`},
}

func TestPathologicalShapes(t *testing.T) {
	for _, tc := range pathological {
		t.Run(tc.name, func(t *testing.T) {
			graphs := buildAll(t, tc.src, tc.name)
			if len(graphs) == 0 {
				t.Fatal("no functions built")
			}
		})
	}
}

// TestEdgesPinned pins the macro shape of a few graphs: the number of
// predecessors of Exit (return sites + implicit fall-off) and whether
// a Panic block exists, so edge-wiring regressions surface as diffs
// rather than only as rule misbehavior.
func TestEdgesPinned(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		wantPanic bool
	}{
		{"panic_paths", `package p
func f(x int) int {
	if x < 0 {
		panic("no")
	}
	return x
}`, true},
		{"plain", `package p
func f() { println() }`, false},
	}
	for _, tc := range cases {
		graphs := buildAll(t, tc.src, tc.name)
		g := graphs[0]
		if (g.Panic != nil) != tc.wantPanic {
			t.Errorf("%s: panic block present=%v, want %v", tc.name, g.Panic != nil, tc.wantPanic)
		}
		if len(g.Exit.Preds) == 0 {
			t.Errorf("%s: exit has no predecessors", tc.name)
		}
	}
}

// TestDataflowReachingCount exercises the Forward framework with a
// trivial may-analysis (count of nodes seen on the longest-converged
// path is not meaningful; instead we track "a call to mark() has been
// seen on some path") over a diamond, checking merge behavior.
func TestDataflowReachingCount(t *testing.T) {
	src := `package p
func f(c bool) {
	if c {
		mark()
	}
	sink()
}
func mark() {}
func sink() {}`
	g := buildAll(t, src, "dataflow")[0]
	fwd := &Forward[bool]{
		Entry: false,
		Merge: func(a, b bool) bool { return a || b },
		Equal: func(a, b bool) bool { return a == b },
		TransferNode: func(n ast.Node, in bool) bool {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
						return true
					}
				}
			}
			return in
		},
	}
	res := fwd.Run(g)
	if !res.Has[g.Exit.Index] {
		t.Fatal("exit not reached by dataflow")
	}
	if !res.In[g.Exit.Index] {
		t.Error("may-analysis lost the mark() fact at exit")
	}
	if res.In[0] {
		t.Error("entry fact corrupted")
	}
}

// TestMustAnalysisIntersection checks that an intersection merge only
// keeps facts true on every path.
func TestMustAnalysisIntersection(t *testing.T) {
	src := `package p
func f(c bool) {
	if c {
		mark()
	} else {
		other()
	}
	sink()
}
func mark() {}
func other() {}
func sink() {}`
	g := buildAll(t, src, "must")[0]
	fwd := &Forward[bool]{
		Entry: false,
		Merge: func(a, b bool) bool { return a && b },
		Equal: func(a, b bool) bool { return a == b },
		TransferNode: func(n ast.Node, in bool) bool {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
						return true
					}
				}
			}
			return in
		},
	}
	res := fwd.Run(g)
	if res.In[g.Exit.Index] {
		t.Error("must-analysis kept a fact true on only one path")
	}
}

// TestRepoWideCFG builds a CFG for every function in the repository's
// own source tree (tests included) — the property test the issue asks
// for: no panics, and every block reachable-or-reported.
func TestRepoWideCFG(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found at %s", root)
	}
	fset := token.NewFileSet()
	files := 0
	funcs := 0
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") || name == "testdata" {
				// The lint testdata module is still valid Go; include
				// it — seeded rule violations must not break the CFG.
				if name != "testdata" {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return nil // generated or intentionally broken files are not CFG's problem
		}
		files++
		rel, _ := filepath.Rel(root, path)
		funcs += len(buildAllFromFile(t, f, rel))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if files < 50 || funcs < 200 {
		t.Fatalf("repo-wide sweep looks wrong: %d files, %d functions", files, funcs)
	}
	t.Logf("built CFGs for %d functions across %d files", funcs, files)
}

// FuzzCFG feeds arbitrary source through the builder: anything the
// parser accepts must produce a well-formed graph without panicking.
func FuzzCFG(f *testing.F) {
	for _, tc := range pathological {
		f.Add(tc.src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("builder panicked: %v\nsource:\n%s", r, src)
			}
		}()
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			g := New(body)
			// Structural sanity without *testing.T plumbing: edges
			// symmetric, unreachable-or-reached partition holds.
			for _, b := range g.Blocks {
				for _, s := range b.Succs {
					if !containsBlock(s.Preds, b) {
						t.Fatalf("asymmetric edge b%d->b%d", b.Index, s.Index)
					}
				}
			}
			g.Unreachable()
			return true
		})
	})
}
