// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and provides a small forward dataflow framework on
// top of them. It is the flow-sensitive substrate for aqppp-lint's
// path-aware rules (lock-balance, cancel-leak, guarded-field): the
// AST walkers from PR 1 can see *sites*, but only a CFG can see the
// early return between a Lock and its Unlock.
//
// The graph is purely syntactic (no go/types): blocks hold the
// statements and control-flow condition expressions in execution
// order, and edges cover structured control flow (if/for/range/
// switch/type-switch/select), branch statements (break/continue/goto/
// fallthrough, labeled or not), returns, and panics. Defer and go
// statements appear as ordinary nodes — their flow interpretation
// (e.g. "defer mu.Unlock() discharges the obligation on every later
// return") is rule policy, not graph structure, so it lives in the
// rules.
//
// Two synthetic blocks terminate every function: Exit, reached by
// every return statement and by falling off the end of the body, and
// Panic, reached by calls to the panic builtin. Rules that only care
// about clean completion (a leaked lock on a panicking path is moot —
// the process is dying) analyze paths into Exit and ignore Panic.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: a maximal straight-line sequence of nodes
// with edges only at the end.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable across
	// identical inputs, so analyses ordering by Index are
	// deterministic).
	Index int
	// Kind labels why the block exists ("entry", "if.then", "for.body",
	// "exit", ...) for debugging and tests.
	Kind string
	// Nodes holds the block's statements and control-flow condition
	// expressions in execution order.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks holds every block; Blocks[0] is the entry block.
	Blocks []*Block
	// Exit is the synthetic normal-completion block: every return
	// statement and the fall-off-the-end path lead here. It has no
	// successors and no nodes.
	Exit *Block
	// Panic is the synthetic abnormal-completion block reached by
	// calls to the panic builtin. Nil if the body cannot panic
	// explicitly.
	Panic *Block
}

// New builds the control-flow graph of body. A nil body (a function
// declared without one, e.g. implemented in assembly) yields a graph
// whose entry connects straight to Exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: make(map[string]*labelInfo),
	}
	entry := b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	// Falling off the end of the body is an implicit return.
	b.edgeTo(b.g.Exit)
	b.resolveGotos()
	b.connectPreds()
	return b.g
}

// Unreachable returns the blocks not reachable from the entry block,
// excluding the synthetic Exit/Panic blocks (those are "reachable" by
// construction of the analyses that consult them). Dead blocks arise
// naturally from code after return/panic/branch statements; analyses
// skip them, and the CFG property tests assert that every block is
// reachable or reported here — never silently lost.
func (g *Graph) Unreachable() []*Block {
	reached := make([]bool, len(g.Blocks))
	var stack []*Block
	if len(g.Blocks) > 0 {
		stack = append(stack, g.Blocks[0])
		reached[0] = true
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reached[s.Index] {
				reached[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	var dead []*Block
	for _, b := range g.Blocks {
		if !reached[b.Index] && b != g.Exit && b != g.Panic {
			dead = append(dead, b)
		}
	}
	return dead
}

// String renders the graph for debugging: one line per block with its
// kind, node count, and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s) %d nodes ->", b.Index, b.Kind, len(b.Nodes))
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// labelInfo tracks one label: the block a goto jumps to, plus the
// break/continue targets while the labeled statement is being built.
type labelInfo struct {
	target   *Block // first block of the labeled statement (goto target)
	breakTo  *Block
	contTo   *Block
	resolved bool
}

// builder accumulates blocks while walking the body.
type builder struct {
	g   *Graph
	cur *Block
	// breakTo/contTo are the innermost unlabeled break/continue
	// targets.
	breakTo *Block
	contTo  *Block
	// fallTo is the target of a fallthrough in the current case body.
	fallTo *Block
	labels map[string]*labelInfo
	// curLabel is the label naming the statement about to be built,
	// so "L: for ..." can bind L's break/continue targets to that
	// loop's done/post blocks.
	curLabel *labelInfo
	// pendingGotos are forward gotos awaiting their label.
	pendingGotos []pendingGoto
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edgeTo appends an edge cur -> to (if cur is still open) without
// changing cur.
func (b *builder) edgeTo(to *Block) {
	if b.cur == nil || to == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs, to)
}

// jump closes the current block with an edge to target; subsequent
// nodes land in a fresh (initially unreachable) block so that code
// after a return/branch is still represented. A nil target (a branch
// the source cannot legally write, e.g. break outside any loop, which
// the parser nonetheless accepts) conservatively exits the function.
func (b *builder) jump(target *Block, deadKind string) {
	if target == nil {
		target = b.g.Exit
	}
	b.edgeTo(target)
	b.cur = b.newBlock(deadKind)
}

// add appends a node to the current block.
func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) panicBlock() *Block {
	if b.g.Panic == nil {
		b.g.Panic = b.newBlock("panic")
	}
	return b.g.Panic
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt translates one statement into blocks and edges.
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		condBlk.Succs = append(condBlk.Succs, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edgeTo(done)
		if s.Else != nil {
			els := b.newBlock("if.else")
			condBlk.Succs = append(condBlk.Succs, els)
			b.cur = els
			b.stmt(s.Else)
			b.edgeTo(done)
		} else {
			condBlk.Succs = append(condBlk.Succs, done)
		}
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.bindLabel(done, post)
		b.edgeTo(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			head.Succs = append(head.Succs, body, done)
		} else {
			head.Succs = append(head.Succs, body)
		}
		b.withTargets(done, post, s, func() {
			b.cur = body
			b.stmtList(s.Body.List)
			b.edgeTo(post)
		})
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edgeTo(head)
		}
		b.cur = done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.bindLabel(done, head)
		b.edgeTo(head)
		// Only the range expression is a head node — the body hangs
		// off its own blocks, and adding the whole RangeStmt would
		// make transfer functions walk the body twice.
		head.Nodes = append(head.Nodes, s.X)
		head.Succs = append(head.Succs, body, done)
		b.withTargets(done, head, s, func() {
			b.cur = body
			b.stmtList(s.Body.List)
			b.edgeTo(head)
		})
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s, s.Body.List, "switch")

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s, s.Body.List, "typeswitch")

	case *ast.SelectStmt:
		sel := b.cur
		done := b.newBlock("select.done")
		b.bindLabel(done, nil)
		b.withTargets(done, nil, s, func() {
			for _, c := range s.Body.List {
				comm := c.(*ast.CommClause)
				body := b.newBlock("select.case")
				sel.Succs = append(sel.Succs, body)
				b.cur = body
				if comm.Comm != nil {
					b.stmt(comm.Comm)
				}
				b.stmtList(comm.Body)
				b.edgeTo(done)
			}
		})
		// A select with no cases blocks forever: done stays
		// unreachable, which Unreachable() reports and analyses treat
		// as no normal completion.
		b.cur = done

	case *ast.LabeledStmt:
		li := b.labelFor(s.Label.Name)
		// The label's target block: control falls into it, and gotos
		// jump to it.
		target := b.newBlock("label." + s.Label.Name)
		b.edgeTo(target)
		b.cur = target
		li.target = target
		li.resolved = true
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// The statement's builder binds li's break/continue
			// targets when it creates its done/post blocks.
			b.curLabel = li
			b.stmt(s.Stmt)
			b.curLabel = nil
		default:
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				b.jump(b.labelFor(s.Label.Name).breakTo, "dead.break")
			} else {
				b.jump(b.breakTo, "dead.break")
			}
		case token.CONTINUE:
			if s.Label != nil {
				b.jump(b.labelFor(s.Label.Name).contTo, "dead.continue")
			} else {
				b.jump(b.contTo, "dead.continue")
			}
		case token.GOTO:
			if s.Label == nil {
				// Parser error recovery can yield a bare "goto";
				// treat it as an exit so the graph stays well-formed.
				b.jump(b.g.Exit, "dead.goto")
				return
			}
			li := b.labelFor(s.Label.Name)
			if li.resolved {
				b.jump(li.target, "dead.goto")
			} else {
				from := b.cur
				b.pendingGotos = append(b.pendingGotos, pendingGoto{from: from, label: s.Label.Name})
				b.cur = b.newBlock("dead.goto")
			}
		case token.FALLTHROUGH:
			b.jump(b.fallTo, "dead.fallthrough")
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit, "dead.return")

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.jump(b.panicBlock(), "dead.panic")
		}

	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, DeferStmt,
		// GoStmt, EmptyStmt: straight-line nodes. Defer/go semantics
		// are interpreted by the rules.
		if _, ok := s.(*ast.EmptyStmt); !ok {
			b.add(s)
		}
	}
}

// caseClauses builds the shared switch/type-switch shape: the tag
// block branches to every case body (and past them when no default
// exists); fallthrough chains case bodies; break exits to done.
func (b *builder) caseClauses(sw ast.Stmt, clauses []ast.Stmt, kind string) {
	tag := b.cur
	done := b.newBlock(kind + ".done")
	b.bindLabel(done, nil)
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock(kind + ".case")
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	for _, body := range bodies {
		tag.Succs = append(tag.Succs, body)
	}
	if !hasDefault {
		tag.Succs = append(tag.Succs, done)
	}
	b.withTargets(done, nil, sw, func() {
		for i, c := range clauses {
			cc := c.(*ast.CaseClause)
			b.cur = bodies[i]
			savedFall := b.fallTo
			if i+1 < len(bodies) {
				b.fallTo = bodies[i+1]
			} else {
				b.fallTo = done
			}
			for _, e := range cc.List {
				b.add(e)
			}
			b.stmtList(cc.Body)
			b.fallTo = savedFall
			b.edgeTo(done)
		}
	})
	b.cur = done
}

// withTargets runs fn with the unlabeled break/continue targets set
// (contTo nil leaves the continue target unchanged: switch/select
// capture break but not continue), and re-binds any label currently
// naming stmt so labeled break/continue resolve too.
func (b *builder) withTargets(breakTo, contTo *Block, _ ast.Stmt, fn func()) {
	savedBreak, savedCont := b.breakTo, b.contTo
	b.breakTo = breakTo
	if contTo != nil {
		b.contTo = contTo
	}
	fn()
	b.breakTo, b.contTo = savedBreak, savedCont
}

// bindLabel, when the statement being built is directly named by a
// label ("L: for { ... }"), records the label's break target (and
// continue target, for loops) so "break L" / "continue L" resolve.
func (b *builder) bindLabel(breakTo, contTo *Block) {
	if b.curLabel == nil {
		return
	}
	b.curLabel.breakTo = breakTo
	b.curLabel.contTo = contTo
	b.curLabel = nil
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// labelFor returns (creating if needed) the info for a label name.
func (b *builder) labelFor(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

// resolveGotos wires forward gotos now that all labels are known.
// A goto to an undeclared label (illegal Go, but the parser accepts
// it) falls through to Exit so the graph stays well-formed.
func (b *builder) resolveGotos() {
	for _, pg := range b.pendingGotos {
		li := b.labels[pg.label]
		if li != nil && li.resolved {
			pg.from.Succs = append(pg.from.Succs, li.target)
		} else {
			pg.from.Succs = append(pg.from.Succs, b.g.Exit)
		}
	}
}

// connectPreds fills in predecessor edges from the successor lists.
func (b *builder) connectPreds() {
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
}
