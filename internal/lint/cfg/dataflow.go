package cfg

import "go/ast"

// Forward is a forward iterative dataflow analysis over a Graph. The
// caller supplies the lattice as three functions; Run computes the
// fixed point with a worklist over reverse post-order.
//
// Merge must be a commutative, associative join (union for may-
// analyses like "a lock may still be held here", intersection for
// must-analyses like "the mutex is guaranteed held here"). Blocks are
// initialized optimistically: a block's in-fact merges only the
// out-facts of predecessors processed so far, which yields the
// greatest fixed point — the standard choice for must-analyses and
// harmless for may-analyses since iteration continues to stability.
//
// Transfer is applied node by node (TransferNode) or block at a time
// (Transfer); exactly one must be set. Facts must be treated as
// immutable: Transfer receives the in-fact and returns a fresh (or
// unchanged) out-fact, never mutating its argument, because in-facts
// are shared across successor edges.
type Forward[T any] struct {
	// Entry is the fact at function entry.
	Entry T
	// Merge joins two facts at a control-flow merge point.
	Merge func(a, b T) T
	// Equal reports whether two facts are equal (fixed-point test).
	Equal func(a, b T) bool
	// TransferNode advances the fact across one node of a block.
	TransferNode func(n ast.Node, in T) T
	// Transfer advances the fact across a whole block; overrides
	// TransferNode when non-nil.
	Transfer func(b *Block, in T) T
}

// Result holds the per-block facts computed by Run.
type Result[T any] struct {
	// In[i] is the fact at entry to Blocks[i]; Has[i] reports whether
	// the block was reached (unreachable blocks have no meaningful
	// fact and must be skipped by consumers).
	In  []T
	Has []bool
	g   *Graph
	fwd *Forward[T]
}

// Run computes the fixed point over g and returns the per-block
// in-facts. Unreachable blocks are not visited.
func (f *Forward[T]) Run(g *Graph) *Result[T] {
	res := &Result[T]{
		In:  make([]T, len(g.Blocks)),
		Has: make([]bool, len(g.Blocks)),
		g:   g,
		fwd: f,
	}
	if len(g.Blocks) == 0 {
		return res
	}
	out := make([]T, len(g.Blocks))
	hasOut := make([]bool, len(g.Blocks))

	res.In[0] = f.Entry
	res.Has[0] = true

	// Worklist seeded with the entry block; blocks enter the list
	// when a predecessor's out-fact changes.
	work := []*Block{g.Blocks[0]}
	inWork := make([]bool, len(g.Blocks))
	inWork[0] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		if b.Index != 0 {
			merged, any := f.mergePreds(b, out, hasOut)
			if !any {
				continue
			}
			res.In[b.Index] = merged
			res.Has[b.Index] = true
		}
		o := f.transferBlock(b, res.In[b.Index])
		if hasOut[b.Index] && f.Equal(out[b.Index], o) {
			continue
		}
		out[b.Index] = o
		hasOut[b.Index] = true
		for _, s := range b.Succs {
			if !inWork[s.Index] {
				inWork[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return res
}

// AtNode replays the block's transfer up to (but not including) node
// i of block b, returning the fact in force just before that node.
// Only valid for reached blocks with TransferNode set.
func (r *Result[T]) AtNode(b *Block, i int) T {
	fact := r.In[b.Index]
	for j := 0; j < i && j < len(b.Nodes); j++ {
		fact = r.fwd.TransferNode(b.Nodes[j], fact)
	}
	return fact
}

func (f *Forward[T]) mergePreds(b *Block, out []T, hasOut []bool) (T, bool) {
	var merged T
	any := false
	for _, p := range b.Preds {
		if !hasOut[p.Index] {
			continue
		}
		if !any {
			merged = out[p.Index]
			any = true
		} else {
			merged = f.Merge(merged, out[p.Index])
		}
	}
	return merged, any
}

func (f *Forward[T]) transferBlock(b *Block, in T) T {
	if f.Transfer != nil {
		return f.Transfer(b, in)
	}
	fact := in
	for _, n := range b.Nodes {
		fact = f.TransferNode(n, fact)
	}
	return fact
}
