package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"aqppp/internal/lint/cfg"
)

// GuardedFieldRule reports struct fields that the code treats as
// mutex-guarded in some methods but touches bare in others. A field
// written at least once with the receiver's mutex held, and accessed
// under that mutex in two or more distinct methods, establishes a
// guarding convention; any access outside the mutex then reads or
// writes racy state, and those bare sites are flagged.
//
// Guardedness is a must-analysis over each method's CFG: the access
// counts as guarded only when a lock rooted at the receiver
// (recv.mu.Lock(), or recv.Lock() for an embedded mutex) is held on
// EVERY path reaching it; a deferred Unlock keeps the lock held until
// return. RLock counts as guarding for reads and writes alike (the
// mix of RLock-write is a different bug, left to the race detector).
//
// One-hop interprocedural refinement via the module call graph: a
// method whose every static call site sits in another method of the
// same type with the lock held (and which never escapes as a value)
// is a locked-section helper — its accesses are guarded, not bare.
// The "...Locked" naming convention is honored the same way.
//
// Accesses inside go-statement closures are classified bare (they run
// concurrently by construction); other function literals are skipped
// as unknown. Mutex, WaitGroup, Once, and sync/atomic-typed fields
// are never candidates. See DESIGN.md §11 for the false-positive
// policy.
type GuardedFieldRule struct {
	mu     sync.Mutex
	module *Module
	// heldCache memoizes per-function must-analyses used when
	// checking call sites of locked-section helpers.
	heldCache map[*ast.FuncDecl]*heldResult
}

type heldResult struct {
	g   *cfg.Graph
	res *cfg.Result[lockFacts]
}

// Name implements Rule.
func (*GuardedFieldRule) Name() string { return "guarded-field" }

// Prepare implements ModuleRule.
func (r *GuardedFieldRule) Prepare(m *Module) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.module = m
	r.heldCache = make(map[*ast.FuncDecl]*heldResult)
}

// fieldAccess is one receiver-field touch inside a method.
type fieldAccess struct {
	method string // method name
	decl   *ast.FuncDecl
	pos    token.Pos
	held   bool
	write  bool
}

// Check implements Rule.
func (r *GuardedFieldRule) Check(pkg *Package, report func(pos token.Pos, msg string)) {
	for _, tname := range structsWithMutex(pkg) {
		r.checkType(pkg, tname, report)
	}
}

// structsWithMutex returns the package's named struct types that
// carry a sync.Mutex or sync.RWMutex field (named or embedded).
func structsWithMutex(pkg *Package) []*types.TypeName {
	var out []*types.TypeName
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isSyncMutexType(st.Field(i).Type()) {
				out = append(out, tn)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

func isSyncMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// excludedFieldType reports field types that are synchronization
// primitives themselves: guarded-field does not apply to them.
func excludedFieldType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync":
		return true
	case "sync/atomic":
		return true
	}
	return false
}

func (r *GuardedFieldRule) checkType(pkg *Package, tname *types.TypeName, report func(pos token.Pos, msg string)) {
	st := tname.Type().Underlying().(*types.Struct)
	fieldSet := make(map[*types.Var]bool)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !excludedFieldType(f.Type()) {
			fieldSet[f] = true
		}
	}
	// Collect accesses method by method.
	accesses := make(map[*types.Var][]fieldAccess)
	methodDecls := make(map[string]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if receiverTypeName(pkg, fd) != tname {
				continue
			}
			methodDecls[fd.Name.Name] = fd
			r.collectAccesses(pkg, fd, fieldSet, accesses)
		}
	}
	// Aggregate and report per field, in declaration order for
	// deterministic output.
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		accs := accesses[f]
		if len(accs) == 0 {
			continue
		}
		guardedMethods := make(map[string]bool)
		heldWrite := false
		for _, a := range accs {
			if a.held {
				guardedMethods[a.method] = true
				if a.write {
					heldWrite = true
				}
			}
		}
		if len(guardedMethods) < 2 || !heldWrite {
			continue // no established guarding convention
		}
		exempt := make(map[string]bool)
		for _, a := range accs {
			if !a.held && !exempt[a.method] && r.lockedSectionHelper(pkg, tname, a.decl) {
				exempt[a.method] = true
			}
		}
		mu := mutexFieldLabel(st)
		for _, a := range accs {
			if a.held || exempt[a.method] {
				continue
			}
			report(a.pos, fmt.Sprintf("field %s.%s is guarded by %s in %d methods (%s) but accessed here without holding it",
				tname.Name(), f.Name(), mu, len(guardedMethods), joinSorted(guardedMethods)))
		}
	}
}

// receiverTypeName resolves a method declaration's receiver to the
// named type it belongs to, or nil.
func receiverTypeName(pkg *Package, fd *ast.FuncDecl) *types.TypeName {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// collectAccesses walks one method, recording every receiver-field
// access with its must-held state.
func (r *GuardedFieldRule) collectAccesses(pkg *Package, fd *ast.FuncDecl, fields map[*types.Var]bool, out map[*types.Var][]fieldAccess) {
	recv := receiverIdentObj(pkg, fd)
	if recv == nil {
		return
	}
	hr := r.heldAnalysis(pkg, fd)
	writes := writeTargets(fd.Body)
	for _, b := range hr.g.Blocks {
		if !hr.res.Has[b.Index] {
			continue
		}
		fact := hr.res.In[b.Index]
		for _, n := range b.Nodes {
			held := recvLockHeld(fact, recv.Name())
			visitRecvFields(pkg, n, recv, fields, func(sel *ast.SelectorExpr, f *types.Var, inGo bool) {
				h := held && !inGo
				out[f] = append(out[f], fieldAccess{
					method: fd.Name.Name,
					decl:   fd,
					pos:    sel.Sel.Pos(),
					held:   h,
					write:  writes[sel],
				})
			})
			fact = lockTransfer(pkg, n, fact)
		}
	}
}

// heldAnalysis memoizes the per-method must-held dataflow.
func (r *GuardedFieldRule) heldAnalysis(pkg *Package, fd *ast.FuncDecl) *heldResult {
	r.mu.Lock()
	if hr, ok := r.heldCache[fd]; ok {
		r.mu.Unlock()
		return hr
	}
	r.mu.Unlock()
	g, res := lockAnalysis(pkg, fd.Body, true)
	hr := &heldResult{g: g, res: res}
	r.mu.Lock()
	r.heldCache[fd] = hr
	r.mu.Unlock()
	return hr
}

// recvLockHeld reports whether any lock rooted at the receiver name
// is held: "r", "r.mu", "r.mu#r", ...
func recvLockHeld(fact lockFacts, recvName string) bool {
	for k := range fact {
		k = strings.TrimSuffix(k, "#r")
		if k == recvName || strings.HasPrefix(k, recvName+".") {
			return true
		}
	}
	return false
}

// receiverIdentObj returns the receiver variable's object (nil for
// unnamed or blank receivers).
func receiverIdentObj(pkg *Package, fd *ast.FuncDecl) *types.Var {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	v, _ := pkg.Info.Defs[names[0]].(*types.Var)
	return v
}

// visitRecvFields finds selector expressions recv.f for candidate
// fields under n. Function literals are skipped except go-statement
// closures, whose accesses are visited with inGo=true.
func visitRecvFields(pkg *Package, n ast.Node, recv *types.Var, fields map[*types.Var]bool, visit func(sel *ast.SelectorExpr, f *types.Var, inGo bool)) {
	var walk func(n ast.Node, inGo bool)
	walk = func(n ast.Node, inGo bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
					for _, arg := range x.Call.Args {
						walk(arg, inGo)
					}
					walk(lit.Body, true)
					return false
				}
				return true
			case *ast.FuncLit:
				return false // runs at an unknown time; skip
			case *ast.SelectorExpr:
				id, ok := ast.Unparen(x.X).(*ast.Ident)
				if !ok || pkg.Info.Uses[id] != recv {
					return true
				}
				if f, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && fields[f] {
					visit(x, f, inGo)
				}
				return true
			}
			return true
		})
	}
	walk(n, false)
}

// writeTargets returns the selector expressions that are written:
// assignment LHS, ++/--, and address-taken operands (a pointer to a
// field can be written through, so & counts as a write).
func writeTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	writes := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		// Peel index and dereference layers: s.data[k] = v mutates
		// the map behind s.data, so the field access is a write.
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				writes[x] = true
				return
			default:
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return writes
}

// lockedSectionHelper reports whether every known call site of the
// method has the caller's receiver lock held — i.e. the method is a
// within-locked-section helper like flushLocked. The "...Locked"
// suffix convention short-circuits the graph walk.
func (r *GuardedFieldRule) lockedSectionHelper(pkg *Package, tname *types.TypeName, fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") || strings.HasSuffix(fd.Name.Name, "locked") {
		return true
	}
	r.mu.Lock()
	m := r.module
	r.mu.Unlock()
	if m == nil {
		return false
	}
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	graph := m.Graph()
	sites := graph.SitesOf(fn)
	if len(sites) == 0 || graph.HasDynamic(fn) {
		return false
	}
	for _, site := range sites {
		if !r.callSiteHeld(tname, site) {
			return false
		}
	}
	return true
}

// callSiteHeld reports whether the lock of the callee's type is held
// at one call site: the caller must be a method of the same type,
// the call must not sit in a function literal, and the must-analysis
// fact at the call node must hold a receiver-rooted lock.
func (r *GuardedFieldRule) callSiteHeld(tname *types.TypeName, site CallSite) bool {
	if site.InFuncLit || site.CallerDecl == nil || site.CallerDecl.Body == nil {
		return false
	}
	if receiverTypeName(site.Pkg, site.CallerDecl) != tname {
		return false
	}
	recv := receiverIdentObj(site.Pkg, site.CallerDecl)
	if recv == nil {
		return false
	}
	// The callee must be invoked on the caller's own receiver
	// (x.helper(), not other.helper()).
	if sel, ok := ast.Unparen(site.Call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); !ok || site.Pkg.Info.Uses[id] != recv {
			return false
		}
	}
	hr := r.heldAnalysis(site.Pkg, site.CallerDecl)
	for _, b := range hr.g.Blocks {
		if !hr.res.Has[b.Index] {
			continue
		}
		fact := hr.res.In[b.Index]
		for _, n := range b.Nodes {
			if n.Pos() <= site.Call.Pos() && site.Call.End() <= n.End() {
				return recvLockHeld(fact, recv.Name())
			}
			fact = lockTransfer(site.Pkg, n, fact)
		}
	}
	return false
}

// mutexFieldLabel names the struct's mutex field(s) for messages.
func mutexFieldLabel(st *types.Struct) string {
	var names []string
	for i := 0; i < st.NumFields(); i++ {
		if isSyncMutexType(st.Field(i).Type()) {
			names = append(names, st.Field(i).Name())
		}
	}
	return strings.Join(names, "/")
}

// joinSorted renders a method-name set deterministically.
func joinSorted(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 4 {
		names = append(names[:4], "...")
	}
	return strings.Join(names, ", ")
}
