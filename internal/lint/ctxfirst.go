package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFirstRule enforces the repo's cancellation-plumbing convention:
// a context.Context travels as the first parameter of the function that
// uses it, and is never stored in a struct field. A context in any
// other parameter slot hides the cancellation path from readers; a
// stored context outlives the call it was scoped to, silently pinning
// an old deadline (or an old SIGINT registration) to every later use.
// Types that must trigger work per statement hold a factory
// (func() (context.Context, context.CancelFunc)) instead — see
// repl.Session.
type CtxFirstRule struct{}

// Name implements Rule.
func (CtxFirstRule) Name() string { return "ctx-first" }

// Check implements Rule.
func (CtxFirstRule) Check(pkg *Package, report func(pos token.Pos, msg string)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				// Covers FuncDecl and FuncLit signatures, interface
				// methods, and func type declarations alike.
				checkCtxParams(pkg, n.Params, report)
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if isContextExpr(pkg, field.Type) {
						report(field.Type.Pos(),
							"struct field stores a context.Context; pass it per call (or hold a context factory)")
					}
				}
			}
			return true
		})
	}
}

// checkCtxParams reports context.Context parameters that are not the
// function's first parameter.
func checkCtxParams(pkg *Package, params *ast.FieldList, report func(pos token.Pos, msg string)) {
	if params == nil {
		return
	}
	idx := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies one slot
		}
		if isContextExpr(pkg, field.Type) && idx != 0 {
			report(field.Type.Pos(), "context.Context must be the first parameter")
		}
		idx += n
	}
}

// isContextExpr reports whether the expression's type is exactly
// context.Context.
func isContextExpr(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
