package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineCaptureRule flags go-statement closures that reference a
// variable declared by an enclosing for or range statement instead of
// receiving it as an argument. Under the pre-1.22 loop semantics every
// such closure shares one variable — the classic fan-out bug where all
// workers see the final index — and even under per-iteration semantics
// the explicit-argument form (as in engine.ExecuteParallel) keeps the
// data flow visible and the analyzer's guarantee toolchain-independent.
type GoroutineCaptureRule struct{}

// Name implements Rule.
func (GoroutineCaptureRule) Name() string { return "goroutine-capture" }

// Check implements Rule.
func (GoroutineCaptureRule) Check(pkg *Package, report func(pos token.Pos, msg string)) {
	for _, f := range pkg.Files {
		ast.Walk(&captureVisitor{pkg: pkg, report: report, active: nil}, f)
	}
}

// captureVisitor walks with the set of loop variables currently in
// scope. Entering a loop returns a child visitor with the loop's
// variables added, so object identity does the scoping for us.
type captureVisitor struct {
	pkg    *Package
	report func(pos token.Pos, msg string)
	active map[types.Object]bool
}

// Visit implements ast.Visitor.
func (v *captureVisitor) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.RangeStmt:
		if n.Tok == token.DEFINE {
			return v.extended(loopVarObjects(v.pkg.Info, n.Key, n.Value))
		}
	case *ast.ForStmt:
		if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
			return v.extended(loopVarObjects(v.pkg.Info, init.Lhs...))
		}
	case *ast.GoStmt:
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && len(v.active) > 0 {
			v.scanClosure(lit)
		}
	}
	return v
}

// extended returns a child visitor whose active set includes objs.
func (v *captureVisitor) extended(objs []types.Object) *captureVisitor {
	if len(objs) == 0 {
		return v
	}
	child := &captureVisitor{pkg: v.pkg, report: v.report, active: make(map[types.Object]bool, len(v.active)+len(objs))}
	for o := range v.active {
		child.active[o] = true
	}
	for _, o := range objs {
		child.active[o] = true
	}
	return child
}

// scanClosure reports the first capture of each active loop variable
// inside lit's body (arguments to the go call are evaluated at spawn
// time and are safe, so only the body is scanned).
func (v *captureVisitor) scanClosure(lit *ast.FuncLit) {
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := v.pkg.Info.Uses[id]
		if obj == nil || !v.active[obj] || seen[obj] {
			return true
		}
		seen[obj] = true
		v.report(id.Pos(), "goroutine closure captures loop variable "+id.Name+"; pass it as an argument instead")
		return true
	})
}

// loopVarObjects resolves the defined objects of loop variable exprs.
func loopVarObjects(info *types.Info, exprs ...ast.Expr) []types.Object {
	var out []types.Object
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			out = append(out, obj)
		}
	}
	return out
}
