package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// want is one expected diagnostic: a rule name at a file:line.
type want struct {
	file string
	line int
	rule string
}

// parseWants scans every .go file under dir (recursively) for trailing
// "// want rule1 rule2" comments and returns the expectations keyed the
// way diagnostics report them (module-relative file paths).
func parseWants(t *testing.T, modDir string) map[want]int {
	t.Helper()
	wants := make(map[want]int)
	err := filepath.WalkDir(modDir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(modDir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, after, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			for _, rule := range strings.Fields(after) {
				wants[want{file: rel, line: line, rule: rule}]++
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestRulesOnTestdata loads every seeded-violation package and checks
// the diagnostics match the want comments exactly: nothing missing,
// nothing extra.
func TestRulesOnTestdata(t *testing.T) {
	modDir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load("testdata", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 6 {
		t.Fatalf("loaded %d testdata packages, want >= 6", len(pkgs))
	}
	diags := Run(pkgs, Rules(), nil)
	wants := parseWants(t, modDir)
	if len(wants) == 0 {
		t.Fatal("no want comments found in testdata")
	}
	rulesSeen := make(map[string]bool)
	for _, d := range diags {
		w := want{file: d.File, line: d.Line, rule: d.Rule}
		if wants[w] == 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[w]--
		rulesSeen[d.Rule] = true
	}
	for w, n := range wants {
		if n > 0 {
			t.Errorf("missing diagnostic (x%d): %s:%d [%s]", n, w.file, w.line, w.rule)
		}
	}
	for _, r := range Rules() {
		if !rulesSeen[r.Name()] {
			t.Errorf("rule %s produced no diagnostic on testdata", r.Name())
		}
	}
}

// TestAllowlistFiltering checks entry matching: rule, glob, substring,
// and wildcard forms.
func TestAllowlistFiltering(t *testing.T) {
	a, err := ParseAllowlist([]byte(`
# comment
panic internal/engine/bitset.go
float-eq internal/cube/*.go
determinism internal/core/build.go time.Now
* internal/experiments/table1.go
`))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		d     Diagnostic
		allow bool
	}{
		{Diagnostic{Rule: "panic", File: "internal/engine/bitset.go"}, true},
		{Diagnostic{Rule: "panic", File: "internal/engine/table.go"}, false},
		{Diagnostic{Rule: "float-eq", File: "internal/cube/exact.go"}, true},
		{Diagnostic{Rule: "float-eq", File: "internal/cube/sub/exact.go"}, false},
		{Diagnostic{Rule: "determinism", File: "internal/core/build.go", Message: "calls time.Now"}, true},
		{Diagnostic{Rule: "determinism", File: "internal/core/build.go", Message: "ranges over a map"}, false},
		{Diagnostic{Rule: "mutex-copy", File: "internal/experiments/table1.go"}, true},
	}
	for _, c := range cases {
		if got := a.Allows(c.d); got != c.allow {
			t.Errorf("Allows(%+v) = %v, want %v", c.d, got, c.allow)
		}
	}
}

func TestParseAllowlistErrors(t *testing.T) {
	if _, err := ParseAllowlist([]byte("panic")); err == nil {
		t.Error("one-field line accepted")
	}
	if _, err := ParseAllowlist([]byte("panic [bad")); err == nil {
		t.Error("malformed glob accepted")
	}
}

// TestRepoIsLintClean runs the full default rule set over the real
// repository under its checked-in allowlist — the same gate
// scripts/check.sh enforces — so a rule regression or a new violation
// fails here first.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	allow, err := LoadAllowlist(filepath.Join(root, "lint.allow"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pkgs, Rules(), allow) {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

func ExampleDiagnostic_String() {
	fmt.Println(Diagnostic{Rule: "panic", File: "internal/engine/table.go", Line: 32, Col: 3, Message: "panic in library package"})
	// Output: internal/engine/table.go:32:3: [panic] panic in library package
}
