package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// want is one expected diagnostic: a rule name at a file:line.
type want struct {
	file string
	line int
	rule string
}

// parseWants scans every .go file under dir (recursively) for trailing
// "// want rule1 rule2" comments and returns the expectations keyed the
// way diagnostics report them (module-relative file paths).
func parseWants(t *testing.T, modDir string) map[want]int {
	t.Helper()
	wants := make(map[want]int)
	err := filepath.WalkDir(modDir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(modDir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, after, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			for _, rule := range strings.Fields(after) {
				wants[want{file: rel, line: line, rule: rule}]++
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestRulesOnTestdata loads every seeded-violation package and checks
// the diagnostics match the want comments exactly: nothing missing,
// nothing extra.
func TestRulesOnTestdata(t *testing.T) {
	modDir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load("testdata", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 13 {
		t.Fatalf("loaded %d testdata packages, want >= 13 (one per rule)", len(pkgs))
	}
	diags := Run(pkgs, Rules(), nil)
	wants := parseWants(t, modDir)
	if len(wants) == 0 {
		t.Fatal("no want comments found in testdata")
	}
	rulesSeen := make(map[string]bool)
	for _, d := range diags {
		w := want{file: d.File, line: d.Line, rule: d.Rule}
		if wants[w] == 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[w]--
		rulesSeen[d.Rule] = true
	}
	for w, n := range wants {
		if n > 0 {
			t.Errorf("missing diagnostic (x%d): %s:%d [%s]", n, w.file, w.line, w.rule)
		}
	}
	for _, r := range Rules() {
		if !rulesSeen[r.Name()] {
			t.Errorf("rule %s produced no diagnostic on testdata", r.Name())
		}
	}
}

// TestAllowlistFiltering checks entry matching: rule, glob, substring,
// and wildcard forms.
func TestAllowlistFiltering(t *testing.T) {
	a, err := ParseAllowlist([]byte(`
# comment
panic internal/engine/bitset.go
float-eq internal/cube/*.go
determinism internal/core/build.go time.Now
* internal/experiments/table1.go
`))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		d     Diagnostic
		allow bool
	}{
		{Diagnostic{Rule: "panic", File: "internal/engine/bitset.go"}, true},
		{Diagnostic{Rule: "panic", File: "internal/engine/table.go"}, false},
		{Diagnostic{Rule: "float-eq", File: "internal/cube/exact.go"}, true},
		{Diagnostic{Rule: "float-eq", File: "internal/cube/sub/exact.go"}, false},
		{Diagnostic{Rule: "determinism", File: "internal/core/build.go", Message: "calls time.Now"}, true},
		{Diagnostic{Rule: "determinism", File: "internal/core/build.go", Message: "ranges over a map"}, false},
		{Diagnostic{Rule: "mutex-copy", File: "internal/experiments/table1.go"}, true},
	}
	for _, c := range cases {
		if got := a.Allows(c.d); got != c.allow {
			t.Errorf("Allows(%+v) = %v, want %v", c.d, got, c.allow)
		}
	}
}

// TestAllowlistStaleness checks used-entry tracking and the loaded-file
// scoping: an unused entry is stale only when its pattern matched files
// that were actually linted.
func TestAllowlistStaleness(t *testing.T) {
	pkgs, err := Load("testdata", []string{"./lockbalance"})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ParseAllowlist([]byte(`
# live: suppresses the seeded lock-balance findings
lock-balance lockbalance/lockbalance.go
# stale: matches a loaded file but no diagnostic
determinism lockbalance/lockbalance.go
# out of scope: its files were not loaded in this run
panic internal/engine/bitset.go
`))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Rules(), a)
	for _, d := range diags {
		if d.Rule == "lock-balance" {
			t.Errorf("allowlisted diagnostic survived: %s", d)
		}
	}
	stale := a.Stale(pkgs)
	if len(stale) != 1 {
		t.Fatalf("Stale() = %q, want exactly the determinism entry", stale)
	}
	if !strings.Contains(stale[0], "determinism lockbalance/lockbalance.go") {
		t.Errorf("stale report %q does not name the dead entry", stale[0])
	}
	if !strings.Contains(stale[0], "line 5:") {
		t.Errorf("stale report %q does not carry the source line", stale[0])
	}
}

func TestParseAllowlistErrors(t *testing.T) {
	if _, err := ParseAllowlist([]byte("panic")); err == nil {
		t.Error("one-field line accepted")
	}
	if _, err := ParseAllowlist([]byte("panic [bad")); err == nil {
		t.Error("malformed glob accepted")
	}
}

// TestRepoIsLintClean runs the full default rule set over the real
// repository under its checked-in allowlist — the same gate
// scripts/check.sh enforces — so a rule regression or a new violation
// fails here first.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	allow, err := LoadAllowlist(filepath.Join(root, "lint.allow"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pkgs, Rules(), allow) {
		t.Errorf("repo not lint-clean: %s", d)
	}
	for _, s := range allow.Stale(pkgs) {
		t.Errorf("stale lint.allow entry: %s", s)
	}
}

func ExampleDiagnostic_String() {
	fmt.Println(Diagnostic{Rule: "panic", File: "internal/engine/table.go", Line: 32, Col: 3, Message: "panic in library package"})
	// Output: internal/engine/table.go:32:3: [panic] panic in library package
}
