package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEqRule flags == and != between floating-point expressions.
// Exact float equality is almost always a latent bug in an estimator
// codebase: two mathematically equal quantities computed along different
// reassociation paths differ in the last ulp, and a comparison that
// "works" on today's inputs silently flips on tomorrow's. Compare
// against an epsilon (see the tolerance helpers in the packages this
// rule forced into existence) or restructure to avoid the comparison.
//
// Three idioms are exempt because exact comparison is the point:
// x != x (the NaN test), comparisons where both operands are
// compile-time constants (evaluated exactly, once), and comparisons
// against the constant 0 — zero is exactly representable and ==0 guards
// (division guards, unset-config sentinels) ask precisely "is this the
// exact zero value", which a tolerance would get wrong.
type FloatEqRule struct{}

// Name implements Rule.
func (FloatEqRule) Name() string { return "float-eq" }

// Check implements Rule.
func (FloatEqRule) Check(pkg *Package, report func(pos token.Pos, msg string)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			lt, lok := pkg.Info.Types[be.X]
			rt, rok := pkg.Info.Types[be.Y]
			if !lok || !rok || (!isFloat(lt.Type) && !isFloat(rt.Type)) {
				return true
			}
			if lt.Value != nil && rt.Value != nil {
				return true // constant-folded, exact
			}
			if isZeroConst(lt.Value) || isZeroConst(rt.Value) {
				return true // exact-zero guard or sentinel
			}
			if sameExpr(be.X, be.Y) {
				return true // x != x is the NaN test
			}
			report(be.OpPos, "floating-point "+be.Op.String()+" comparison; use a tolerance or restructure")
			return true
		})
	}
}

// isZeroConst reports whether v is a numeric constant equal to zero.
func isZeroConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}

// isFloat reports whether t's underlying type is a float kind.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameExpr reports whether two expressions are the same simple
// ident/selector chain (enough to recognize x != x and a.b != a.b).
func sameExpr(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameExpr(a.X, b.X)
	}
	return false
}
