package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Load expands the patterns (a directory, or a directory followed by
// "/..." for its whole subtree, relative to dir or absolute) and returns
// the parsed, type-checked packages. Each package is resolved against
// the nearest enclosing go.mod, so the analyzer's own testdata modules
// load the same way the repo module does. Test files and directories
// named "testdata" below a pattern root are skipped, matching the go
// tool's conventions.
func Load(dir string, patterns []string) ([]*Package, error) {
	l := &loader{
		fset:   token.NewFileSet(),
		pkgs:   make(map[string]*Package),
		mods:   make(map[string]string),
		parsed: make(map[string][]*ast.File),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)

	var roots []string
	for _, pat := range patterns {
		recursive := false
		p := pat
		if strings.HasSuffix(p, "/...") || p == "..." {
			recursive = true
			p = strings.TrimSuffix(p, "...")
			p = strings.TrimSuffix(p, "/")
			if p == "" {
				p = "."
			}
		}
		if !filepath.IsAbs(p) {
			p = filepath.Join(dir, p)
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			return nil, err
		}
		if st, err := os.Stat(abs); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: not a directory", pat)
		}
		if recursive {
			if err := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				roots = append(roots, path)
				return nil
			}); err != nil {
				return nil, err
			}
		} else {
			roots = append(roots, abs)
		}
	}

	// Parsing dominates load time and is embarrassingly parallel
	// (token.FileSet is safe for concurrent AddFile), so fan it out one
	// goroutine per root directory up front. Type-checking stays serial
	// below: the importer recursion shares loader state, and serial
	// checking in sorted root order keeps diagnostics deterministic.
	var goRoots []string
	for _, root := range roots {
		if hasGoFiles(root) {
			goRoots = append(goRoots, root)
		}
	}
	sort.Strings(goRoots)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs = make(map[string]error)
		sem  = make(chan struct{}, runtime.GOMAXPROCS(0))
	)
	for _, root := range goRoots {
		wg.Add(1)
		go func(dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			files, err := l.parseDir(dir)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[dir] = err
				return
			}
			l.parsed[dir] = files
		}(root)
	}
	wg.Wait()
	for _, root := range goRoots { // first error in sorted order, deterministically
		if err := errs[root]; err != nil {
			return nil, err
		}
	}

	var out []*Package
	for _, root := range goRoots {
		pkg, err := l.load(root)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// loader parses and type-checks packages on demand. It doubles as the
// types.Importer: imports inside a loaded module resolve to local
// directories; everything else (the stdlib) goes through the source
// importer.
type loader struct {
	fset *token.FileSet
	std  types.Importer
	// pkgs memoizes loaded packages by absolute directory.
	pkgs map[string]*Package
	// mods maps a module path to its absolute root directory, for every
	// module seen so far.
	mods map[string]string
	// parsed holds pre-parsed files by absolute directory, filled
	// concurrently by Load before any type-checking starts. Dirs reached
	// only through imports are parsed lazily in load instead.
	parsed map[string][]*ast.File
	// loading guards against import cycles.
	loading []string
}

// parseDir parses the non-test Go files in dir, in directory order.
// Build constraints (//go:build lines and _GOOS/_GOARCH suffixes) are
// evaluated for the host platform, so a package split across platform
// files (e.g. mmap_unix.go / mmap_other.go) type-checks with exactly
// one side, the same view `go build` takes.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// load returns the type-checked package in dir (nil if dir holds no
// non-test Go files).
func (l *loader) load(dir string) (*Package, error) {
	if pkg, ok := l.pkgs[dir]; ok {
		return pkg, nil
	}
	for _, d := range l.loading {
		if d == dir {
			return nil, fmt.Errorf("lint: import cycle through %s", dir)
		}
	}
	modDir, modPath, err := l.moduleFor(dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel, err := filepath.Rel(modDir, dir); err == nil && rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}

	files, ok := l.parsed[dir]
	if !ok {
		files, err = l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		l.parsed[dir] = files
	}
	if len(files) == 0 {
		l.pkgs[dir] = nil
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	l.loading = append(l.loading, dir)
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	l.loading = l.loading[:len(l.loading)-1]
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:   importPath,
		Dir:    dir,
		ModDir: modDir,
		Fset:   l.fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
	l.pkgs[dir] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-local paths load from source
// here, everything else defers to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	for modPath, modDir := range l.mods {
		if path == modPath || strings.HasPrefix(path, modPath+"/") {
			dir := filepath.Join(modDir, filepath.FromSlash(strings.TrimPrefix(path, modPath)))
			pkg, err := l.load(dir)
			if err != nil {
				return nil, err
			}
			if pkg == nil {
				return nil, fmt.Errorf("lint: no Go files in %s", dir)
			}
			return pkg.Types, nil
		}
	}
	return l.std.Import(path)
}

// moduleFor finds the nearest enclosing go.mod and returns its directory
// and module path, registering it for import resolution.
func (l *loader) moduleFor(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			path, perr := parseModulePath(data)
			if perr != nil {
				return "", "", fmt.Errorf("lint: %s/go.mod: %w", d, perr)
			}
			l.mods[path] = d
			return d, path, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// parseModulePath extracts the module path from go.mod contents.
func parseModulePath(data []byte) (string, error) {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("no module directive")
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
