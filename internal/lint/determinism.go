package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// NumericPackages lists the package-path suffixes forming the numeric
// core of the system: everything whose outputs feed the confidence
// intervals of Equations 3-5. Inside them, all randomness must flow
// through the seeded PCG RNG in internal/stats/rng.go and no result may
// depend on wall-clock time or map iteration order — otherwise the
// error bounds stop being reproducible run-to-run.
var NumericPackages = []string{
	"internal/stats",
	"internal/aqp",
	"internal/core",
	"internal/cube",
	"internal/sample",
	"internal/precompute",
	"internal/linalg",
}

// isNumericPackage reports whether path belongs to the numeric core.
func isNumericPackage(path string) bool {
	for _, s := range NumericPackages {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// DeterminismRule flags the three nondeterminism vectors in numeric
// packages: math/rand imports (its stream is not ours to seed and
// version), time.Now/time.Since calls, and ranging over a map (the
// runtime randomizes iteration order).
type DeterminismRule struct{}

// Name implements Rule.
func (DeterminismRule) Name() string { return "determinism" }

// Check implements Rule.
func (DeterminismRule) Check(pkg *Package, report func(pos token.Pos, msg string)) {
	if !isNumericPackage(pkg.Path) {
		return
	}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "math/rand" || p == "math/rand/v2" {
				report(imp.Pos(), fmt.Sprintf("numeric package imports %s; use the seeded stats.RNG instead", p))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := timeFuncCall(pkg.Info, n); ok {
					report(n.Pos(), fmt.Sprintf("numeric package calls time.%s; results must not depend on wall-clock time", name))
				}
			case *ast.RangeStmt:
				if tv, ok := pkg.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						report(n.Pos(), "numeric package ranges over a map; iteration order is nondeterministic — iterate sorted keys instead")
					}
				}
			}
			return true
		})
	}
}

// timeFuncCall reports whether call is time.Now or time.Since (the two
// wall-clock reads; Since calls Now internally).
func timeFuncCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Now" && sel.Sel.Name != "Since" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "time" {
		return "", false
	}
	return sel.Sel.Name, true
}
