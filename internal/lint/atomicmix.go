package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMixRule reports struct fields touched both through sync/atomic
// operations (atomic.LoadInt64(&s.n), atomic.AddUint32(&s.hits), ...)
// and through plain reads or writes. Mixing the two is a data race
// the race detector only catches when the schedule cooperates: the
// plain access tears or reorders against the atomic one. The fix is
// to make every access atomic (or migrate the field to the typed
// atomic.Int64-style wrappers, which make bare access impossible).
//
// Scope is the package: the atomic sites establish the field's
// discipline, then every plain access of the same field is flagged —
// including reads, because a torn or stale read is exactly the bug.
// Accesses whose address is taken for an atomic call are the
// sanctioned sites; taking the address for any other purpose is
// flagged too (a pointer escape defeats atomicity tracking).
type AtomicMixRule struct{}

// Name implements Rule.
func (AtomicMixRule) Name() string { return "atomic-mix" }

// Check implements Rule.
func (AtomicMixRule) Check(pkg *Package, report func(pos token.Pos, msg string)) {
	// Pass 1: find fields accessed via sync/atomic functions, and
	// remember the exact selector nodes that are sanctioned.
	atomicFields := make(map[*types.Var]token.Pos) // field -> first atomic site
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pkg, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := selectedField(pkg, sel); fv != nil {
					if _, seen := atomicFields[fv]; !seen {
						atomicFields[fv] = call.Pos()
					}
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: flag every other access of those fields.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			fv := selectedField(pkg, sel)
			if fv == nil {
				return true
			}
			first, isAtomic := atomicFields[fv]
			if !isAtomic {
				return true
			}
			line := pkg.Fset.Position(first).Line
			report(sel.Sel.Pos(), fmt.Sprintf("field %s is accessed with sync/atomic (e.g. line %d) but read/written directly here; make every access atomic",
				fv.Name(), line))
			return true
		})
	}
}

// isAtomicCall reports calls into sync/atomic's function API.
func isAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// selectedField resolves a selector to the struct field it reads, or
// nil for methods, package selectors, and non-field selections.
func selectedField(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	if v == nil || !v.IsField() {
		return nil
	}
	return v
}
