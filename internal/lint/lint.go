// Package lint is aqppp's custom static analyzer. It enforces the
// repo-specific invariants that the AQP++ correctness story rests on:
// reproducible confidence intervals require every sampler, bootstrap,
// and prefix-cube computation to be deterministic under the seeded PCG
// RNG (internal/stats), and the concurrent engine paths to be race-free.
//
// The analyzer is a small rule framework: each rule lives in its own
// file and implements the Rule interface; the driver in cmd/aqppp-lint
// loads packages with go/parser + go/types (stdlib only, honoring the
// repo's no-external-deps constraint), runs every rule, filters the
// diagnostics through an allowlist, and reports the rest.
//
// Rules shipped today:
//
//   - determinism:       math/rand imports, time.Now/time.Since calls, and
//     map-order-dependent iteration in the numeric packages
//   - float-eq:          ==/!= between floating-point expressions
//   - dropped-error:     discarded error return values
//   - panic:             panic(...) in library (non-main) packages
//   - goroutine-capture: go-closures capturing enclosing loop variables
//   - mutex-copy:        by-value copies of types containing sync locks
//   - ctx-first:         context.Context parameters that are not first,
//     and contexts stored in struct fields
//   - lock-balance:      a path from Lock()/RLock() to a return without
//     the matching Unlock (flow-sensitive, over internal/lint/cfg)
//   - cancel-leak:       context cancel funcs not called or deferred on
//     every path
//   - body-close:        *http.Response bodies not closed on every path
//     once the response is used (armed at first use, so the idiomatic
//     nil-on-error return stays clean)
//   - guarded-field:     struct fields accessed under the receiver's
//     mutex in some methods but bare in others (uses the module call
//     graph to recognize locked-section helpers)
//   - atomic-mix:        the same field touched via sync/atomic and by
//     plain read/write
//   - ctx-propagation:   a ctx-holding function calling a sibling whose
//     ...Context variant exists in the same package
//
// The first seven are AST walkers from PR 1; the last six are
// flow-aware, built on the CFG + dataflow framework in
// internal/lint/cfg and the module-wide call graph in callgraph.go.
//
// To add a rule, create a new file implementing Rule and append it in
// Rules. Rules needing cross-package context implement ModuleRule.
// To suppress a finding, add a line to the allowlist file (see
// Allowlist) with a comment explaining why — unused entries fail the
// staleness check, so suppressions cannot outlive their findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding, positioned in module-relative file
// coordinates so allowlists stay stable across checkouts.
type Diagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Package is one loaded, type-checked package ready for rules to walk.
type Package struct {
	// Path is the package's import path (module path + relative dir).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// ModDir is the absolute root of the package's module; diagnostics
	// are reported relative to it.
	ModDir string
	Fset   *token.FileSet
	// Files holds the package's non-test files. Test files are excluded
	// from analysis: every rule's contract is about library code.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// IsCommand reports whether the package is a main package (commands and
// examples get looser error-discipline rules than libraries).
func (p *Package) IsCommand() bool {
	return p.Types != nil && p.Types.Name() == "main"
}

// Rule checks one package and reports findings through report.
type Rule interface {
	// Name is the stable identifier used in output and allowlists.
	Name() string
	// Check walks pkg and calls report for each violation.
	Check(pkg *Package, report func(pos token.Pos, msg string))
}

// Rules returns the default rule set in reporting order.
func Rules() []Rule {
	return []Rule{
		DeterminismRule{},
		FloatEqRule{},
		DroppedErrorRule{},
		PanicRule{},
		GoroutineCaptureRule{},
		MutexCopyRule{},
		CtxFirstRule{},
		LockBalanceRule{},
		CancelLeakRule{},
		BodyCloseRule{},
		&GuardedFieldRule{},
		AtomicMixRule{},
		CtxPropRule{},
	}
}

// Run applies rules to every package and returns the diagnostics that
// survive the allowlist (nil allow means keep everything), sorted by
// file, line, then rule. Analysis fans out across per-package
// goroutines; the final sort (plus per-package collection before the
// shared dedup pass) keeps output deterministic regardless of
// scheduling.
func Run(pkgs []*Package, rules []Rule, allow *Allowlist) []Diagnostic {
	module := &Module{Pkgs: pkgs}
	for _, r := range rules {
		if mr, ok := r.(ModuleRule); ok {
			mr.Prepare(module)
		}
	}
	// Fan out: one goroutine per package, diagnostics collected
	// per-package so the merge below is scheduling-independent.
	perPkg := make([][]Diagnostic, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var local []Diagnostic
			for _, r := range rules {
				name := r.Name()
				r.Check(pkg, func(pos token.Pos, msg string) {
					p := pkg.Fset.Position(pos)
					local = append(local, Diagnostic{
						Rule:    name,
						File:    relPath(pkg.ModDir, p.Filename),
						Line:    p.Line,
						Col:     p.Column,
						Message: msg,
					})
				})
			}
			perPkg[i] = local
		}(i, pkg)
	}
	wg.Wait()

	var out []Diagnostic
	seen := make(map[Diagnostic]bool)
	for _, local := range perPkg {
		for _, d := range local {
			if seen[d] || (allow != nil && allow.Allows(d)) {
				continue
			}
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return out
}

// relPath returns file relative to root in slash form, or file unchanged
// when it does not sit under root.
func relPath(root, file string) string {
	root = strings.TrimSuffix(root, "/")
	if root != "" && strings.HasPrefix(file, root+"/") {
		return strings.TrimPrefix(file, root+"/")
	}
	return file
}

// pathHasSuffix reports whether path ends with the given slash-separated
// suffix on a path-segment boundary ("a/b/c" has suffix "b/c" but not
// "/c" spelled as "c" unless c is a full segment).
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}
