package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"aqppp/internal/lint/cfg"
)

// This file holds the shared lock-tracking dataflow used by the
// lock-balance and guarded-field rules: classifying sync lock method
// calls, naming locks by their receiver expression, and a transfer
// function over CFG nodes that models Lock/Unlock/defer-Unlock.

// lockOp classifies one sync lock call.
type lockOp int

const (
	opNone lockOp = iota
	opLock        // Lock
	opRLock
	opUnlock
	opRUnlock
	opTryLock // TryLock/TryRLock: acquisition is conditional, modeled as a no-op
)

// lockState distinguishes a live obligation from one discharged by a
// pending defer: heldDefer still means "held until return" (the
// guarded-field view) but no longer "leaks at return" (the
// lock-balance view).
type lockState uint8

const (
	stateHeld lockState = iota + 1
	stateHeldDefer
)

// lockInfo is the per-lock dataflow fact.
type lockInfo struct {
	state lockState
	// pos is where the lock was taken, for reporting.
	pos token.Pos
	// read marks an RLock (key also carries the #r suffix; the bit is
	// kept for messages).
	read bool
}

// lockFacts maps lock keys (canonical receiver expression, "#r"
// suffixed for read locks) to their state. Facts are immutable: the
// transfer function copies on write.
type lockFacts map[string]lockInfo

func (f lockFacts) clone() lockFacts {
	out := make(lockFacts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func lockFactsEqual(a, b lockFacts) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

// mergeUnion keeps a lock held if it is held on ANY incoming path
// (may-analysis: right for leak detection). On state conflict the
// plain-held state wins: a path that still owes an Unlock outweighs
// one that deferred it.
func mergeUnion(a, b lockFacts) lockFacts {
	out := a.clone()
	for k, v := range b {
		if w, ok := out[k]; !ok || v.state == stateHeld && w.state == stateHeldDefer {
			out[k] = v
		}
	}
	return out
}

// mergeIntersect keeps a lock held only if it is held on EVERY
// incoming path (must-analysis: right for guardedness).
func mergeIntersect(a, b lockFacts) lockFacts {
	out := make(lockFacts)
	for k, v := range a {
		if w, ok := b[k]; ok {
			if w.state == stateHeldDefer {
				v.state = stateHeldDefer
			}
			out[k] = v
		}
	}
	return out
}

// classifyLockCall returns the operation and lock key for a call, or
// opNone. Methods of sync.Mutex, sync.RWMutex (including promoted
// embeds — the selection still resolves into package sync) and the
// sync.Locker interface are recognized; RWMutex.RLocker() is not
// followed.
func classifyLockCall(pkg *Package, call *ast.CallExpr) (lockOp, string, token.Pos) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, "", token.NoPos
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, "", token.NoPos
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return opNone, "", token.NoPos
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		return opLock, key, call.Pos()
	case "RLock":
		return opRLock, key + "#r", call.Pos()
	case "Unlock":
		return opUnlock, key, call.Pos()
	case "RUnlock":
		return opRUnlock, key + "#r", call.Pos()
	case "TryLock", "TryRLock":
		return opTryLock, key, call.Pos()
	}
	return opNone, "", token.NoPos
}

// lockTransfer is the shared transfer function: it scans the node
// (without descending into function literals, whose bodies run at
// another time) for lock operations and returns the updated facts.
// defer mu.Unlock() — directly or inside a deferred literal — moves
// the lock to stateHeldDefer rather than releasing it: the lock stays
// held until return, but the return owes nothing.
func lockTransfer(pkg *Package, n ast.Node, in lockFacts) lockFacts {
	out := in
	mutated := false
	mutate := func() lockFacts {
		if !mutated {
			out = in.clone()
			mutated = true
		}
		return out
	}
	if d, ok := n.(*ast.DeferStmt); ok {
		for _, key := range deferredUnlocks(pkg, d) {
			if info, held := out[key]; held && info.state == stateHeld {
				o := mutate()
				info.state = stateHeldDefer
				o[key] = info
			}
		}
		return out
	}
	walkCallsNoFuncLit(n, func(call *ast.CallExpr) {
		op, key, pos := classifyLockCall(pkg, call)
		switch op {
		case opLock, opRLock:
			o := mutate()
			o[key] = lockInfo{state: stateHeld, pos: pos, read: op == opRLock}
		case opUnlock, opRUnlock:
			if _, held := out[key]; held {
				delete(mutate(), key)
			}
		}
	})
	return out
}

// deferredUnlocks returns the lock keys a defer statement discharges:
// "defer mu.Unlock()" and "defer func() { ...; mu.Unlock(); ... }()".
func deferredUnlocks(pkg *Package, d *ast.DeferStmt) []string {
	var keys []string
	if op, key, _ := classifyLockCall(pkg, d.Call); op == opUnlock || op == opRUnlock {
		return []string{key}
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op, key, _ := classifyLockCall(pkg, call); op == opUnlock || op == opRUnlock {
					keys = append(keys, key)
				}
			}
			return true
		})
	}
	return keys
}

// walkCallsNoFuncLit visits every CallExpr under n in source order,
// skipping function literal bodies.
func walkCallsNoFuncLit(n ast.Node, fn func(*ast.CallExpr)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// lockAnalysis runs the lock dataflow over one function body.
// must selects the merge: true → intersection (guardedness), false →
// union (leak detection).
func lockAnalysis(pkg *Package, body *ast.BlockStmt, must bool) (*cfg.Graph, *cfg.Result[lockFacts]) {
	g := cfg.New(body)
	merge := mergeUnion
	if must {
		merge = mergeIntersect
	}
	fwd := &cfg.Forward[lockFacts]{
		Entry: lockFacts{},
		Merge: merge,
		Equal: lockFactsEqual,
		TransferNode: func(n ast.Node, in lockFacts) lockFacts {
			return lockTransfer(pkg, n, in)
		},
	}
	return g, fwd.Run(g)
}

// funcBodies yields every function body in the file — declarations
// and literals — with a printable name for diagnostics.
func funcBodies(f *ast.File, visit func(name string, decl *ast.FuncDecl, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Name.Name, n, n.Body)
			}
			// Literals inside are visited by the continued walk.
		case *ast.FuncLit:
			visit("func literal", nil, n.Body)
		}
		return true
	})
}

// sortedKeys returns the map's keys sorted, for deterministic
// reporting order.
func sortedKeys(m lockFacts) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// displayKey strips the internal read-lock suffix for messages.
func displayKey(key string) string {
	return strings.TrimSuffix(key, "#r")
}
