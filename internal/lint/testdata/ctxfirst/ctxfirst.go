// Package ctxfirst is seeded testdata for the ctx-first rule.
package ctxfirst

import "context"

// Lookup takes its context in the middle of the parameter list.
func Lookup(name string, ctx context.Context) error { // want ctx-first
	return ctx.Err()
}

// Trailer takes its context last, after two value parameters.
func Trailer(a, b int, ctx context.Context) int { // want ctx-first
	_ = ctx
	return a + b
}

// Handler is a func type with a misplaced context.
type Handler func(msg string, ctx context.Context) // want ctx-first

// Doer is an interface whose method hides the context mid-signature.
type Doer interface {
	Do(id int, ctx context.Context) error // want ctx-first
}

// Session stores a context in a struct field, pinning one deadline to
// every later call.
type Session struct {
	ctx  context.Context // want ctx-first
	name string
}

// Run closes over a funclit with a misplaced context.
func Run() {
	f := func(n int, ctx context.Context) { _ = ctx } // want ctx-first
	f(1, context.Background())
}

// Good is the accepted form: context first, nothing stored.
func Good(ctx context.Context, name string) error {
	return ctx.Err()
}

// Factory is the accepted alternative to a stored context: the struct
// holds a constructor, so every call gets a fresh context.
type Factory struct {
	newContext func() (context.Context, context.CancelFunc)
}
