// Package panicrule is seeded testdata for the panic rule.
package panicrule

import "fmt"

// Checked panics in a library package without an allowlist entry.
func Checked(n int) int {
	if n < 0 {
		panic("panicrule: negative n") // want panic
	}
	return n
}

// Formatted panics through fmt.Sprintf; still a panic call.
func Formatted(n int) {
	panic(fmt.Sprintf("panicrule: bad %d", n)) // want panic
}

// Errored is the accepted form.
func Errored(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("panicrule: negative %d", n)
	}
	return n, nil
}
