// Package mutexcopy is seeded testdata for the mutex-copy rule.
package mutexcopy

import "sync"

// Counter guards n with an embedded mutex; copying it forks the lock.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Snapshot takes the counter by value.
func Snapshot(c Counter) int { // want mutex-copy
	return c.n
}

// Value uses a value receiver.
func (c Counter) Value() int { // want mutex-copy
	return c.n
}

// Fork dereferences and assigns, copying the lock.
func Fork(c *Counter) int {
	clone := *c // want mutex-copy
	return clone.n
}

// Each ranges over counters by value.
func Each(cs []Counter) int {
	total := 0
	for _, c := range cs { // want mutex-copy
		total += c.n
	}
	return total
}

// Grow copies a bare WaitGroup out of a struct field.
type pool struct {
	wg sync.WaitGroup
}

func Grow(p *pool) sync.WaitGroup {
	wg := p.wg // want mutex-copy
	return wg
}

// Inc is the accepted form: pointer receiver, pointer iteration.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// EachPtr iterates by index and takes addresses; no copies.
func EachPtr(cs []Counter) int {
	total := 0
	for i := range cs {
		total += (&cs[i]).n
	}
	return total
}
