// Package guardedfield is seeded testdata for the guarded-field rule.
package guardedfield

import "sync"

// Counter establishes a guarding convention: n and last are written
// and read under mu in several methods — then touched bare elsewhere.
type Counter struct {
	mu   sync.Mutex
	n    int
	last string
	// immutable is set at construction and read everywhere without
	// the lock; it is never written under mu, so no convention forms
	// and bare reads are fine.
	immutable int
}

// Inc writes n under the lock.
func (c *Counter) Inc(who string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.last = who
}

// Get reads n under the lock.
func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Last reads last under the lock, establishing the convention for it
// alongside Inc's write.
func (c *Counter) Last() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Peek reads n without the lock — the racy site.
func (c *Counter) Peek() int {
	return c.n // want guarded-field
}

// Reset writes both fields bare.
func (c *Counter) Reset() {
	c.n = 0     // want guarded-field
	c.last = "" // want guarded-field
}

// Scale reads the immutable config bare: fine, no held writes ever.
func (c *Counter) Scale() int {
	return c.immutable * 2
}

// resetLocked is a locked-section helper by naming convention: its
// bare accesses are the caller's responsibility.
func (c *Counter) resetLocked() {
	c.n = 0
	c.last = ""
}

// Clear uses the helper correctly.
func (c *Counter) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetLocked()
}

// drain is a helper WITHOUT the naming convention, but every static
// call site holds the lock — the call graph proves it, so its bare
// accesses are exempt.
func (c *Counter) drain() int {
	v := c.n
	c.n = 0
	return v
}

// Flush calls drain with the lock held.
func (c *Counter) Flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drain()
}

// Gauge mixes a read-write lock with a goroutine touching state bare.
type Gauge struct {
	mu  sync.RWMutex
	val float64
}

// Set writes under the write lock.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

// Read reads under the read lock.
func (g *Gauge) Read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

// Watch spawns a goroutine that reads val with no lock at all: the
// classic background-poller race.
func (g *Gauge) Watch(out chan<- float64) {
	go func() {
		out <- g.val // want guarded-field
	}()
}
