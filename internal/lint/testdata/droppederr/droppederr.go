// Package droppederr is seeded testdata for the dropped-error rule.
package droppederr

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

// MayFail returns an error.
func MayFail() error { return errors.New("boom") }

// Pair returns a value and an error.
func Pair() (int, error) { return 0, errors.New("boom") }

// DropAll discards errors every way the rule covers.
func DropAll() {
	MayFail()       // want dropped-error
	defer MayFail() // want dropped-error
	go MayFail()    // want dropped-error
}

// Handled shows the accepted forms: handled, returned, or explicitly
// discarded with _.
func Handled() error {
	if err := MayFail(); err != nil {
		return err
	}
	_ = MayFail()
	_, _ = Pair()
	return MayFail()
}

// NoError calls a function with no error result; not flagged.
func NoError() {
	clean()
}

func clean() {}

// InMemory writes to strings.Builder and bytes.Buffer, whose errors are
// documented to always be nil; exempt.
func InMemory() string {
	var sb strings.Builder
	var buf bytes.Buffer
	sb.WriteString("a")
	sb.WriteByte('b')
	buf.WriteRune('c')
	fmt.Fprintf(&sb, "%d", 1)
	fmt.Fprintln(&buf, "x")
	return sb.String() + buf.String()
}
