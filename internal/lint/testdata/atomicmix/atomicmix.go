// Package atomicmix is seeded testdata for the atomic-mix rule.
package atomicmix

import "sync/atomic"

// Stats counts events; hits is accessed atomically in the hot path
// but read bare in Snapshot and reset bare in Reset — both races.
type Stats struct {
	hits  int64
	total int64
}

// Record is the sanctioned atomic path.
func (s *Stats) Record() {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.total, 1)
}

// Load is also sanctioned.
func (s *Stats) Load() int64 {
	return atomic.LoadInt64(&s.hits)
}

// Snapshot reads hits directly, racing Record.
func (s *Stats) Snapshot() int64 {
	return s.hits // want atomic-mix
}

// Reset writes both fields directly.
func (s *Stats) Reset() {
	s.hits = 0  // want atomic-mix
	s.total = 0 // want atomic-mix
}

// Escape leaks the field's address outside the atomic API, which
// defeats the discipline just as surely.
func (s *Stats) Escape() *int64 {
	return &s.hits // want atomic-mix
}

// Clean uses typed atomics: bare access is impossible, nothing fires.
type Clean struct {
	hits atomic.Int64
}

// Record bumps the typed atomic.
func (c *Clean) Record() { c.hits.Add(1) }

// Load reads the typed atomic.
func (c *Clean) Load() int64 { return c.hits.Load() }

// Plain never uses atomics at all: bare access everywhere is fine.
type Plain struct {
	n int
}

// Bump increments without any atomics in sight.
func (p *Plain) Bump() { p.n++ }
