// Package cancelleak is seeded testdata for the cancel-leak rule.
package cancelleak

import (
	"context"
	"time"
)

// EarlyReturn drops the cancel on the error branch.
func EarlyReturn(ctx context.Context, bad bool) error {
	ctx, cancel := context.WithCancel(ctx) // want cancel-leak
	if bad {
		return context.Canceled
	}
	defer cancel()
	<-ctx.Done()
	return nil
}

// NeverCalled obtains a timeout context and forgets the cancel
// entirely.
func NeverCalled(ctx context.Context) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second) // want cancel-leak
	_ = cancel
	return waitOn(tctx)
}

// Discarded blanks the cancel func outright.
func Discarded(ctx context.Context) context.Context {
	dctx, _ := context.WithDeadline(ctx, time.Now().Add(time.Second)) // want cancel-leak
	return dctx
}

// DeferOK is the accepted pattern.
func DeferOK(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return waitOn(ctx)
}

// CalledOnEveryPath calls cancel explicitly on both branches.
func CalledOnEveryPath(ctx context.Context, fast bool) error {
	ctx, cancel := context.WithTimeout(ctx, time.Minute)
	if fast {
		cancel()
		return nil
	}
	err := waitOn(ctx)
	cancel()
	return err
}

// HandedOff passes the cancel onward: responsibility moves with it.
func HandedOff(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	register(cancel)
	return waitOn(ctx)
}

// CapturedOK hands the cancel to a closure.
func CapturedOK(ctx context.Context) func() {
	ctx, cancel := context.WithCancel(ctx)
	_ = ctx
	return func() { cancel() }
}

func waitOn(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

var registered func()

func register(f func()) { registered = f }
