// Package bodyclose is seeded testdata for the body-close rule.
package bodyclose

import (
	"io"
	"net/http"
)

// EarlyReturn closes on the happy path but leaks the body when the
// read fails.
func EarlyReturn(url string) ([]byte, error) {
	resp, err := http.Get(url) // want body-close
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	_ = resp.Body.Close()
	return data, nil
}

// NeverClosed uses the response and forgets Close entirely.
func NeverClosed(url string) (int, error) {
	resp, err := http.Get(url) // want body-close
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// Discarded throws the response away: nobody can ever reach the body.
func Discarded(url string) error {
	_, err := http.Get(url) // want body-close
	return err
}

// Rebound closes the first response, then leaks the second on the
// status branch.
func Rebound(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	_ = resp.Body.Close()
	resp, err = http.Get(url) // want body-close
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return http.ErrNotSupported
	}
	return resp.Body.Close()
}

// ErrCheckOnly never touches the response before handing its Close
// error back: the nil-on-error idiom stays clean.
func ErrCheckOnly(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// DeferOK defers the close right after the error check. (The bare
// defer drops Close's error, which is the neighboring rule's finding,
// not this one's.)
func DeferOK(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() // want dropped-error
	return io.ReadAll(resp.Body)
}

// DeferClosureOK wraps Close so the dropped error is explicit.
func DeferClosureOK(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	return io.ReadAll(resp.Body)
}

// ClosedOnEveryPath closes explicitly on both branches.
func ClosedOnEveryPath(url string, wantBody bool) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	if !wantBody {
		_ = resp.Body.Close()
		return nil, nil
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	return data, err
}

// HandedOff returns the response: responsibility for the body moves to
// the caller.
func HandedOff(url string) (*http.Response, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		_ = resp.Body.Close()
		return nil, http.ErrNotSupported
	}
	return resp, nil
}
