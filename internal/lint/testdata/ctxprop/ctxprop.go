// Package ctxprop is seeded testdata for the ctx-propagation rule.
package ctxprop

import "context"

// DB pairs ctx-less methods with ...Context variants, like the root
// aqppp API.
type DB struct{ n int }

// Query is the background-context convenience wrapper. Wrappers have
// no ctx parameter, so the rule never flags their delegation.
func (db *DB) Query(q string) (int, error) {
	return db.QueryContext(context.Background(), q)
}

// QueryContext is the real implementation.
func (db *DB) QueryContext(ctx context.Context, q string) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return db.n + len(q), nil
}

// Scan has no Context sibling; calling it from ctx-holding code is
// fine.
func (db *DB) Scan(q string) int { return len(q) }

// Load is a package function with a Context sibling.
func Load(path string) error { return LoadContext(context.Background(), path) }

// LoadContext is the real implementation.
func LoadContext(ctx context.Context, path string) error {
	_ = path
	return ctx.Err()
}

// Handler holds a ctx but calls the bare variants: both calls sever
// the cancellation chain.
func Handler(ctx context.Context, db *DB, q string) (int, error) {
	if err := Load(q); err != nil { // want ctx-propagation
		return 0, err
	}
	n, err := db.Query(q) // want ctx-propagation
	if err != nil {
		return 0, err
	}
	return n + db.Scan(q), nil
}

// Propagates is the accepted form.
func Propagates(ctx context.Context, db *DB, q string) (int, error) {
	if err := LoadContext(ctx, q); err != nil {
		return 0, err
	}
	return db.QueryContext(ctx, q)
}

// InsideClosure drops ctx from within a literal; the closure closes
// over ctx and could have passed it.
func InsideClosure(ctx context.Context, db *DB, q string) func() error {
	return func() error {
		return Load(q) // want ctx-propagation
	}
}

// NoCtx has no context at all, so bare calls are what it is for.
func NoCtx(db *DB, q string) (int, error) {
	return db.Query(q)
}
