// Package goroutinecap is seeded testdata for the goroutine-capture
// rule.
package goroutinecap

import "sync"

// FanOut spawns closures that capture the loop variables instead of
// receiving them as arguments.
func FanOut(out []int) {
	var wg sync.WaitGroup
	for i := 0; i < len(out); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = i * i // want goroutine-capture
		}()
	}
	wg.Wait()
}

// RangeFanOut captures a range value variable.
func RangeFanOut(in []int, out []int) {
	var wg sync.WaitGroup
	for j, v := range in {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[j] = v // want goroutine-capture goroutine-capture
		}()
	}
	wg.Wait()
}

// FanOutByArg is the accepted form: the loop variable enters the
// closure as an argument, so nothing is captured.
func FanOutByArg(out []int) {
	var wg sync.WaitGroup
	for i := 0; i < len(out); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i * i
		}(i)
	}
	wg.Wait()
}

// SyncClosure captures a loop variable in a plain (non-go) closure,
// which runs synchronously and is fine.
func SyncClosure(out []int) {
	for i := 0; i < len(out); i++ {
		func() { out[i] = i }()
	}
}
