// Package stats is seeded testdata: a numeric-core package (its import
// path ends in internal/stats) violating every determinism invariant.
package stats

import (
	"math/rand" // want determinism
	"time"
)

// Jitter draws from the global math/rand stream and stamps wall-clock
// time into a numeric result — both banned in the numeric core.
func Jitter() float64 {
	t := time.Now() // want determinism
	return rand.Float64() + float64(t.Nanosecond())
}

// Elapsed reads the wall clock through time.Since.
func Elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want determinism
}

// SumWeights folds a map in iteration order; with float addition the
// result depends on the (randomized) order.
func SumWeights(w map[string]float64) float64 {
	total := 0.0
	for _, v := range w { // want determinism
		total += v
	}
	return total
}
