// Package floateq is seeded testdata for the float-eq rule.
package floateq

// Converged compares floats exactly — the bug the rule exists for.
func Converged(prev, cur float64) bool {
	return prev == cur // want float-eq
}

// Changed is the != spelling of the same bug.
func Changed(prev, cur float64) bool {
	return prev != cur // want float-eq
}

// MixedWidth flags float32 operands too.
func MixedWidth(a float32, b float32) bool {
	return a == b // want float-eq
}

// IsNaN uses the self-comparison idiom, which is exempt.
func IsNaN(x float64) bool {
	return x != x
}

// constCompare compares two compile-time constants, which is exact and
// exempt.
func ConstCompare() bool {
	const a = 0.1
	return a == 0.1
}

// IntEq compares integers and must not be flagged.
func IntEq(a, b int) bool {
	return a == b
}

// ZeroGuard compares against the exact constant zero (division guard /
// unset sentinel), which is exempt.
func ZeroGuard(x float64) float64 {
	if x == 0 {
		return 0
	}
	return 1 / x
}

// NonZeroConst compares against a non-zero constant, which is flagged:
// the computed operand almost never lands on the constant exactly.
func NonZeroConst(x float64) bool {
	return x == 0.3 // want float-eq
}
