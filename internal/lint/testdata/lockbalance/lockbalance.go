// Package lockbalance is seeded testdata for the lock-balance rule.
package lockbalance

import (
	"errors"
	"sync"
)

// Store guards a map with a plain mutex.
type Store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// EarlyReturn leaks the lock on the error branch — the canonical bug
// the rule exists for.
func (s *Store) EarlyReturn(key string) (int, error) {
	s.mu.Lock() // want lock-balance
	v, ok := s.data[key]
	if !ok {
		return 0, errors.New("missing")
	}
	s.mu.Unlock()
	return v, nil
}

// MissingEntirely locks and never unlocks at all.
func (s *Store) MissingEntirely(key string, v int) {
	s.mu.Lock() // want lock-balance
	s.data[key] = v
}

// ReadLeak pairs RLock with a path that skips RUnlock.
func (s *Store) ReadLeak(key string) int {
	s.rw.RLock() // want lock-balance
	if key == "" {
		return -1
	}
	v := s.data[key]
	s.rw.RUnlock()
	return v
}

// WrongUnlock answers a write lock with a read unlock, which leaves
// the write lock owed forever.
func (s *Store) WrongUnlock(key string, v int) {
	s.rw.Lock() // want lock-balance
	s.data[key] = v
	s.rw.RUnlock()
}

// LoopLeak breaks out of the loop with the lock held.
func (s *Store) LoopLeak(keys []string) int {
	total := 0
	for _, k := range keys {
		s.mu.Lock() // want lock-balance
		v, ok := s.data[k]
		if !ok {
			break
		}
		total += v
		s.mu.Unlock()
	}
	return total
}

// DeferOK is the accepted pattern: defer discharges every path.
func (s *Store) DeferOK(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if key == "" {
		return 0
	}
	return s.data[key]
}

// DeferClosureOK discharges through a deferred closure.
func (s *Store) DeferClosureOK(key string) int {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return s.data[key]
}

// BalancedBranches unlocks explicitly on both paths.
func (s *Store) BalancedBranches(key string) int {
	s.mu.Lock()
	if v, ok := s.data[key]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

// PanicPathOK holds the lock into a panic — not this rule's business.
func (s *Store) PanicPathOK(key string) int {
	s.mu.Lock()
	v, ok := s.data[key]
	if !ok {
		panic("missing " + key) // want panic
	}
	s.mu.Unlock()
	return v
}

// Embedded locks via promotion; the leak is still visible.
type Embedded struct {
	sync.Mutex
	n int
}

// Bump leaks the embedded lock on one branch.
func (e *Embedded) Bump(ok bool) int {
	e.Lock() // want lock-balance
	if !ok {
		return -1
	}
	e.n++
	e.Unlock()
	return e.n
}
