package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MutexCopyRule flags by-value copies of types that contain a sync lock
// (sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once) — as a value
// receiver or parameter, as an assignment reading an existing value, or
// as a range value variable. A copied lock is a fork: both copies
// "work", each guarding nothing, which is exactly how the engine's
// parallel paths would pass the race detector today and deadlock or
// corrupt under production load tomorrow.
type MutexCopyRule struct{}

// Name implements Rule.
func (MutexCopyRule) Name() string { return "mutex-copy" }

// Check implements Rule.
func (MutexCopyRule) Check(pkg *Package, report func(pos token.Pos, msg string)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkFieldList(pkg, n.Recv, "receiver", report)
				}
				if n.Type.Params != nil {
					checkFieldList(pkg, n.Type.Params, "parameter", report)
				}
			case *ast.FuncLit:
				if n.Type.Params != nil {
					checkFieldList(pkg, n.Type.Params, "parameter", report)
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkValueCopy(pkg, rhs, report)
				}
			case *ast.ValueSpec:
				for _, rhs := range n.Values {
					checkValueCopy(pkg, rhs, report)
				}
			case *ast.RangeStmt:
				if n.Tok == token.DEFINE && n.Value != nil {
					if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
						if obj := pkg.Info.Defs[id]; obj != nil {
							if lock := lockInside(obj.Type()); lock != "" {
								report(id.Pos(), "range value copies "+typeLabel(obj.Type(), lock)+"; iterate by index instead")
							}
						}
					}
				}
			}
			return true
		})
	}
}

// checkFieldList reports non-pointer receiver/parameter types containing
// locks.
func checkFieldList(pkg *Package, fl *ast.FieldList, what string, report func(pos token.Pos, msg string)) {
	for _, field := range fl.List {
		tv, ok := pkg.Info.Types[field.Type]
		if !ok {
			continue
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if lock := lockInside(tv.Type); lock != "" {
			report(field.Type.Pos(), "value "+what+" copies "+typeLabel(tv.Type, lock)+"; use a pointer")
		}
	}
}

// checkValueCopy reports assignments whose right-hand side reads (and
// therefore copies) an existing lock-containing value. Composite
// literals and function calls are initial constructions, not copies,
// so only ident/selector/index/dereference reads are flagged.
func checkValueCopy(pkg *Package, rhs ast.Expr, report func(pos token.Pos, msg string)) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	tv, ok := pkg.Info.Types[rhs]
	if !ok || tv.IsType() {
		return
	}
	if lock := lockInside(tv.Type); lock != "" {
		report(rhs.Pos(), "assignment copies "+typeLabel(tv.Type, lock)+"; use a pointer")
	}
}

// syncLockTypes are the sync types whose by-value copy is always a bug.
var syncLockTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
}

// lockInside returns the name of the sync lock type contained (possibly
// transitively, through struct fields and array elements) in t, or ""
// if t is copy-safe.
func lockInside(t types.Type) string {
	return lockInsideSeen(t, make(map[types.Type]bool))
}

func lockInsideSeen(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
		return lockInsideSeen(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockInsideSeen(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockInsideSeen(u.Elem(), seen)
	}
	return ""
}

// typeLabel describes t and the lock it carries for a diagnostic.
func typeLabel(t types.Type, lock string) string {
	s := types.TypeString(t, nil)
	if s == lock {
		return s
	}
	return s + " (contains " + lock + ")"
}
