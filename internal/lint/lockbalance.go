package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// LockBalanceRule reports paths from a Lock()/RLock() to a normal
// return on which no matching Unlock()/RUnlock() — immediate or
// deferred — has run. This is the flow-aware upgrade over PR 1's
// site-level rules: the bug it catches is precisely the one an AST
// walker cannot see, an early `return err` threaded between Lock and
// Unlock.
//
// Mechanics: a union-merge (may-held) dataflow over the function's
// CFG. Lock/RLock raise an obligation keyed by the receiver
// expression (read locks tracked separately, so Lock answered by
// RUnlock stays a finding); Unlock/RUnlock cancel it; defer Unlock —
// directly or inside a deferred closure — downgrades it to
// "held-until-return", which no return owes. A lock still owed at any
// predecessor of the exit block is reported once, at the Lock site,
// naming the first offending return.
//
// Paths into the panic block are deliberately ignored: a lock held
// while the process unwinds to death is not the bug this rule hunts,
// and flagging it would force noise-suppressions on every
// precondition panic.
//
// Known accepted imprecision (see DESIGN.md §11): conditionally
// balanced locks ("if c { mu.Lock() } ... if c { mu.Unlock() }")
// report, because the two conditions are not correlated in the
// lattice; restructure or allowlist them. Functions that hand a
// locked mutex to their caller on purpose must be allowlisted.
type LockBalanceRule struct{}

// Name implements Rule.
func (LockBalanceRule) Name() string { return "lock-balance" }

// Check implements Rule.
func (LockBalanceRule) Check(pkg *Package, report func(pos token.Pos, msg string)) {
	for _, f := range pkg.Files {
		funcBodies(f, func(name string, _ *ast.FuncDecl, body *ast.BlockStmt) {
			checkLockBalance(pkg, name, body, report)
		})
	}
}

func checkLockBalance(pkg *Package, name string, body *ast.BlockStmt, report func(pos token.Pos, msg string)) {
	g, res := lockAnalysis(pkg, body, false)
	// One report per lock site, keyed by the Lock position, naming
	// the first return that leaks it.
	type leak struct {
		key     string
		retLine int
	}
	leaks := make(map[token.Pos]leak)
	for _, pred := range g.Exit.Preds {
		if !res.Has[pred.Index] {
			continue
		}
		// The fact after the block's last node is the fact at the
		// return (explicit ReturnStmt or implicit fall-off-the-end).
		fact := res.AtNode(pred, len(pred.Nodes))
		if len(fact) == 0 {
			continue
		}
		retLine := 0
		if n := len(pred.Nodes); n > 0 {
			if ret, ok := pred.Nodes[n-1].(*ast.ReturnStmt); ok {
				retLine = pkg.Fset.Position(ret.Pos()).Line
			}
		}
		for _, key := range sortedKeys(fact) {
			info := fact[key]
			if info.state != stateHeld {
				continue // discharged by a pending defer
			}
			if prev, ok := leaks[info.pos]; ok && (prev.retLine != 0 && (retLine == 0 || prev.retLine <= retLine)) {
				continue
			}
			leaks[info.pos] = leak{key: key, retLine: retLine}
		}
	}
	poss := make([]token.Pos, 0, len(leaks))
	for pos := range leaks {
		poss = append(poss, pos)
	}
	sortPos(poss)
	for _, pos := range poss {
		l := leaks[pos]
		verb := "Unlock"
		if fact := l.key; len(fact) > 2 && fact[len(fact)-2:] == "#r" {
			verb = "RUnlock"
		}
		where := "the end of " + name
		if l.retLine != 0 {
			where = fmt.Sprintf("the return at line %d", l.retLine)
		}
		report(pos, fmt.Sprintf("%s is locked here but not released by %s on the path to %s", displayKey(l.key), verb, where))
	}
}

// sortPos orders positions ascending for deterministic output.
func sortPos(poss []token.Pos) {
	for i := 1; i < len(poss); i++ {
		for j := i; j > 0 && poss[j] < poss[j-1]; j-- {
			poss[j], poss[j-1] = poss[j-1], poss[j]
		}
	}
}
