package lint

import (
	"go/ast"
	"go/types"
	"sync"
)

// Module aggregates every package loaded for one analyzer run plus
// the cross-package indexes rules share. Rules that need more than
// their own package (guarded-field's "is this method only ever called
// with the lock held?" question) implement ModuleRule and receive the
// Module before any Check call.
type Module struct {
	Pkgs []*Package

	graphOnce sync.Once
	graph     *CallGraph
}

// ModuleRule is implemented by rules that need module-wide context in
// addition to the per-package Check walk. Prepare is called exactly
// once, before any Check, with the full package set.
type ModuleRule interface {
	Rule
	Prepare(m *Module)
}

// Graph returns the module-wide call graph, built on first use.
func (m *Module) Graph() *CallGraph {
	m.graphOnce.Do(func() { m.graph = buildCallGraph(m.Pkgs) })
	return m.graph
}

// PackageOf returns the loaded Package whose type-checked package is
// tp, or nil.
func (m *Module) PackageOf(tp *types.Package) *Package {
	for _, p := range m.Pkgs {
		if p.Types == tp {
			return p
		}
	}
	return nil
}

// CallSite is one static call of a function or method.
type CallSite struct {
	// Pkg is the package containing the call.
	Pkg *Package
	// Caller is the declared function or method lexically enclosing
	// the call; nil for calls in package-level variable initializers.
	Caller *types.Func
	// CallerDecl is Caller's declaration (nil when Caller is nil).
	CallerDecl *ast.FuncDecl
	// Call is the call expression itself.
	Call *ast.CallExpr
	// InFuncLit reports that the call sits inside a function literal
	// under CallerDecl — it executes at some later time, so flow
	// facts computed at the literal's position do not apply to it.
	InFuncLit bool
	// Direct is true for static dispatch (named function, concrete
	// method); false for edges added by interface method-set
	// expansion, where the callee is one of possibly many
	// implementations.
	Direct bool
}

// CallGraph maps every module-declared function/method to its static
// call sites across the module. Dynamic dispatch through interfaces
// is expanded via go/types method sets: a call to an interface method
// adds an indirect site to every module type that implements the
// interface. Calls through plain function values are not tracked —
// rules treating "no known call sites" as "unknown callers" stay
// conservative for them by checking HasDynamic.
type CallGraph struct {
	sites map[*types.Func][]CallSite
	// dynamic records functions whose address is taken (assigned,
	// passed, or returned as a value), meaning the static site list
	// is incomplete.
	dynamic map[*types.Func]bool
}

// SitesOf returns the known static call sites of f.
func (g *CallGraph) SitesOf(f *types.Func) []CallSite {
	return g.sites[f]
}

// HasDynamic reports whether f escapes as a value (method value,
// function value), making its call-site list incomplete.
func (g *CallGraph) HasDynamic(f *types.Func) bool {
	return g.dynamic[f]
}

// buildCallGraph walks every package once, recording direct calls,
// interface-dispatch expansions, and value escapes.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		sites:   make(map[*types.Func][]CallSite),
		dynamic: make(map[*types.Func]bool),
	}
	// Collect the module's named types once for method-set expansion.
	var named []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if n, ok := tn.Type().(*types.Named); ok {
					named = append(named, n)
				}
			}
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, _ := decl.(*ast.FuncDecl)
				var caller *types.Func
				var callerDecl *ast.FuncDecl
				if fd != nil {
					caller, _ = pkg.Info.Defs[fd.Name].(*types.Func)
					callerDecl = fd
				}
				root := ast.Node(decl)
				depth := 0
				ast.Inspect(root, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncLit:
						depth++
						// Walk the literal manually so depth tracking
						// pairs push/pop correctly.
						ast.Inspect(n.Body, func(inner ast.Node) bool {
							if call, ok := inner.(*ast.CallExpr); ok {
								g.addCall(pkg, caller, callerDecl, call, true, named)
							}
							g.noteEscapes(pkg, inner)
							return true
						})
						depth--
						return false
					case *ast.CallExpr:
						g.addCall(pkg, caller, callerDecl, n, depth > 0, named)
					}
					g.noteEscapes(pkg, n)
					return true
				})
			}
		}
	}
	return g
}

// addCall resolves the call's callee and records the site.
func (g *CallGraph) addCall(pkg *Package, caller *types.Func, callerDecl *ast.FuncDecl, call *ast.CallExpr, inLit bool, named []*types.Named) {
	site := CallSite{Pkg: pkg, Caller: caller, CallerDecl: callerDecl, Call: call, InFuncLit: inLit, Direct: true}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			g.sites[fn] = append(g.sites[fn], site)
		}
	case *ast.SelectorExpr:
		sel, ok := pkg.Info.Selections[fun]
		if !ok {
			// Qualified identifier pkg.Func.
			if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				g.sites[fn] = append(g.sites[fn], site)
			}
			return
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			return
		}
		recv := sel.Recv()
		if types.IsInterface(recv) {
			// Interface dispatch: expand over the module's method
			// sets. The concrete target is unknown, so every
			// implementing type's method gains an indirect site.
			iface, _ := recv.Underlying().(*types.Interface)
			if iface == nil {
				return
			}
			indirect := site
			indirect.Direct = false
			for _, n := range named {
				impl := implementsVia(n, iface)
				if impl == nil {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(impl, true, n.Obj().Pkg(), fn.Name())
				if m, ok := obj.(*types.Func); ok {
					g.sites[m] = append(g.sites[m], indirect)
				}
			}
			return
		}
		g.sites[fn] = append(g.sites[fn], site)
	}
}

// implementsVia returns the receiver type (n or *n) through which n
// implements iface, or nil.
func implementsVia(n *types.Named, iface *types.Interface) types.Type {
	if types.Implements(n, iface) {
		return n
	}
	if p := types.NewPointer(n); types.Implements(p, iface) {
		return p
	}
	return nil
}

// noteEscapes records functions referenced as values (not in call
// position), which makes their call-site lists incomplete.
func (g *CallGraph) noteEscapes(pkg *Package, n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		for _, arg := range n.Args {
			g.markIfFunc(pkg, arg)
		}
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			g.markIfFunc(pkg, rhs)
		}
	case *ast.ValueSpec:
		for _, v := range n.Values {
			g.markIfFunc(pkg, v)
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			g.markIfFunc(pkg, r)
		}
	case *ast.CompositeLit:
		for _, e := range n.Elts {
			if kv, ok := e.(*ast.KeyValueExpr); ok {
				g.markIfFunc(pkg, kv.Value)
			} else {
				g.markIfFunc(pkg, e)
			}
		}
	}
}

func (g *CallGraph) markIfFunc(pkg *Package, e ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			g.dynamic[fn] = true
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			g.dynamic[fn] = true
		}
	}
}
