package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"aqppp/internal/lint/cfg"
)

// CancelLeakRule reports context.CancelFuncs that are not called on
// every path: a cancel obtained from context.WithCancel, WithTimeout,
// or WithDeadline (and their ...Cause variants) that some path to a
// normal return neither calls, defers, nor hands off. An uncalled
// cancel pins the child context's timer and goroutine until the
// parent dies — the serving layer's per-request contexts would leak
// one timer per request.
//
// The obligation is discharged by ANY use of the cancel variable
// other than its defining assignment: a call (cancel()), a defer, a
// capture by a closure, passing it onward, storing it, or returning
// it — one-sided in the caller's favor, because every such use moves
// responsibility somewhere this intraprocedural rule cannot follow.
// Assigning the cancel to the blank identifier is reported
// immediately. Paths into panic are ignored, matching lock-balance.
type CancelLeakRule struct{}

// Name implements Rule.
func (CancelLeakRule) Name() string { return "cancel-leak" }

// Check implements Rule.
func (CancelLeakRule) Check(pkg *Package, report func(pos token.Pos, msg string)) {
	for _, f := range pkg.Files {
		funcBodies(f, func(name string, _ *ast.FuncDecl, body *ast.BlockStmt) {
			checkCancelLeak(pkg, name, body, report)
		})
	}
}

// cancelFacts maps each undischarged cancel variable to the position
// and name of the context constructor that produced it.
type cancelFacts map[types.Object]cancelOrigin

type cancelOrigin struct {
	pos  token.Pos
	fn   string // "context.WithCancel" etc.
	name string // variable name
}

func checkCancelLeak(pkg *Package, fname string, body *ast.BlockStmt, report func(pos token.Pos, msg string)) {
	// Blank-assigned cancels are unconditional leaks; report them in
	// a plain pre-pass so the dataflow transfer stays pure.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals get their own funcBodies visit
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		if fn := contextWithFunc(pkg, as.Rhs[0]); fn != "" {
			if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
				report(as.Rhs[0].Pos(),
					fmt.Sprintf("the cancel func returned by %s is discarded; the context's resources leak until the parent is canceled", fn))
			}
		}
		return true
	})
	g := cfg.New(body)
	clone := func(f cancelFacts) cancelFacts {
		out := make(cancelFacts, len(f))
		for k, v := range f {
			out[k] = v
		}
		return out
	}
	fwd := &cfg.Forward[cancelFacts]{
		Entry: cancelFacts{},
		Merge: func(a, b cancelFacts) cancelFacts {
			out := clone(a)
			for k, v := range b {
				out[k] = v // union: undischarged on any path counts
			}
			return out
		},
		Equal: func(a, b cancelFacts) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || v != w {
					return false
				}
			}
			return true
		},
		TransferNode: func(n ast.Node, in cancelFacts) cancelFacts {
			out := in
			mutated := false
			mutate := func() cancelFacts {
				if !mutated {
					out = clone(in)
					mutated = true
				}
				return out
			}
			// New obligations: assignments whose RHS is a With*
			// context constructor. The cancel is the second LHS.
			var defined types.Object
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && len(as.Lhs) == 2 {
				if fn := contextWithFunc(pkg, as.Rhs[0]); fn != "" {
					if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
						obj := pkg.Info.Defs[id]
						if obj == nil {
							obj = pkg.Info.Uses[id]
						}
						if obj != nil {
							mutate()[obj] = cancelOrigin{pos: as.Rhs[0].Pos(), fn: fn, name: id.Name}
							defined = obj
						}
					}
				}
			}
			// Discharges: any use of a tracked cancel variable other
			// than the definition we just processed. Function
			// literals are scanned too — a closure capturing cancel
			// takes over the obligation. Exception: "_ = cancel"
			// hands responsibility to no one (it is the idiom that
			// silences the compiler around a real leak), so blank
			// assignments do not discharge.
			blankRHS := make(map[*ast.Ident]bool)
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
				for i, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
						if rid, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident); ok {
							blankRHS[rid] = true
						}
					}
				}
			}
			ast.Inspect(n, func(x ast.Node) bool {
				id, ok := x.(*ast.Ident)
				if !ok || blankRHS[id] {
					return true
				}
				obj := pkg.Info.Uses[id]
				if obj == nil || obj == defined {
					// The defining occurrence (a "=" rebind) is not a
					// discharge of the obligation it just created.
					return true
				}
				if _, tracked := out[obj]; tracked {
					delete(mutate(), obj)
				}
				return true
			})
			return out
		},
	}
	res := fwd.Run(g)
	type finding struct {
		origin  cancelOrigin
		retLine int
	}
	found := make(map[token.Pos]finding)
	for _, pred := range g.Exit.Preds {
		if !res.Has[pred.Index] {
			continue
		}
		fact := res.AtNode(pred, len(pred.Nodes))
		if len(fact) == 0 {
			continue
		}
		retLine := 0
		if n := len(pred.Nodes); n > 0 {
			if ret, ok := pred.Nodes[n-1].(*ast.ReturnStmt); ok {
				retLine = pkg.Fset.Position(ret.Pos()).Line
			}
		}
		for _, origin := range fact {
			if prev, ok := found[origin.pos]; ok && prev.retLine != 0 && (retLine == 0 || prev.retLine <= retLine) {
				continue
			}
			found[origin.pos] = finding{origin: origin, retLine: retLine}
		}
	}
	poss := make([]token.Pos, 0, len(found))
	for pos := range found {
		poss = append(poss, pos)
	}
	sortPos(poss)
	for _, pos := range poss {
		f := found[pos]
		where := "the end of " + fname
		if f.retLine != 0 {
			where = fmt.Sprintf("the return at line %d", f.retLine)
		}
		report(pos, fmt.Sprintf("%s returned by %s is not called or deferred on the path to %s",
			f.origin.name, f.origin.fn, where))
	}
}

// contextWithFunc reports whether e is a call to a context
// constructor returning a CancelFunc, and which one.
func contextWithFunc(pkg *Package, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	switch fn.Name() {
	case "WithCancel", "WithTimeout", "WithDeadline",
		"WithCancelCause", "WithTimeoutCause", "WithDeadlineCause":
		return "context." + fn.Name()
	}
	return ""
}
