package lint

import (
	"fmt"
	"os"
	"path"
	"strings"
)

// Allowlist suppresses known, reviewed findings. The file format is one
// entry per line:
//
//	<rule> <file-pattern> [message-substring]
//
// where <rule> is a rule name or "*", <file-pattern> is a module-relative
// path (path.Match globs allowed, e.g. internal/engine/*.go), and the
// optional remainder of the line must appear inside the diagnostic's
// message for the entry to apply. Blank lines and lines starting with
// '#' are comments — every entry is expected to carry one explaining why
// the finding is acceptable.
type Allowlist struct {
	entries []allowEntry
}

type allowEntry struct {
	rule    string
	pattern string
	substr  string
}

// ParseAllowlist parses allowlist text.
func ParseAllowlist(data []byte) (*Allowlist, error) {
	a := &Allowlist{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("allowlist line %d: need \"<rule> <file-pattern> [substring]\", got %q", i+1, line)
		}
		e := allowEntry{rule: fields[0], pattern: fields[1]}
		if len(fields) > 2 {
			e.substr = strings.Join(fields[2:], " ")
		}
		if _, err := path.Match(e.pattern, ""); err != nil {
			return nil, fmt.Errorf("allowlist line %d: bad pattern %q: %v", i+1, e.pattern, err)
		}
		a.entries = append(a.entries, e)
	}
	return a, nil
}

// LoadAllowlist reads and parses the allowlist at file.
func LoadAllowlist(file string) (*Allowlist, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	a, err := ParseAllowlist(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	return a, nil
}

// Allows reports whether d matches an allowlist entry.
func (a *Allowlist) Allows(d Diagnostic) bool {
	for _, e := range a.entries {
		if e.rule != "*" && e.rule != d.Rule {
			continue
		}
		if ok, _ := path.Match(e.pattern, d.File); !ok && e.pattern != d.File {
			continue
		}
		if e.substr != "" && !strings.Contains(d.Message, e.substr) {
			continue
		}
		return true
	}
	return false
}
