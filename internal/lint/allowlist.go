package lint

import (
	"fmt"
	"os"
	"path"
	"strings"
)

// Allowlist suppresses known, reviewed findings. The file format is one
// entry per line:
//
//	<rule> <file-pattern> [message-substring]
//
// where <rule> is a rule name or "*", <file-pattern> is a module-relative
// path (path.Match globs allowed, e.g. internal/engine/*.go), and the
// optional remainder of the line must appear inside the diagnostic's
// message for the entry to apply. Blank lines and lines starting with
// '#' are comments — every entry is expected to carry one explaining why
// the finding is acceptable.
//
// Entries record whether they matched anything during a Run; Stale
// returns the ones that suppressed nothing, so suppressions cannot
// outlive the findings they were written for. Allows mutates that state,
// so an Allowlist must not be shared across concurrent Runs — Run calls
// it only from its serial merge phase.
type Allowlist struct {
	entries []allowEntry
}

type allowEntry struct {
	rule    string
	pattern string
	substr  string
	// line is the 1-based line number in the source file, raw its
	// original text — both only for reporting stale entries.
	line int
	raw  string
	// used is set by Allows when the entry suppresses a diagnostic.
	used bool
}

// ParseAllowlist parses allowlist text.
func ParseAllowlist(data []byte) (*Allowlist, error) {
	a := &Allowlist{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("allowlist line %d: need \"<rule> <file-pattern> [substring]\", got %q", i+1, line)
		}
		e := allowEntry{rule: fields[0], pattern: fields[1], line: i + 1, raw: line}
		if len(fields) > 2 {
			e.substr = strings.Join(fields[2:], " ")
		}
		if _, err := path.Match(e.pattern, ""); err != nil {
			return nil, fmt.Errorf("allowlist line %d: bad pattern %q: %v", i+1, e.pattern, err)
		}
		a.entries = append(a.entries, e)
	}
	return a, nil
}

// LoadAllowlist reads and parses the allowlist at file.
func LoadAllowlist(file string) (*Allowlist, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	a, err := ParseAllowlist(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	return a, nil
}

// Allows reports whether d matches an allowlist entry, marking every
// matching entry used. Not safe for concurrent use.
func (a *Allowlist) Allows(d Diagnostic) bool {
	hit := false
	for i := range a.entries {
		e := &a.entries[i]
		if e.rule != "*" && e.rule != d.Rule {
			continue
		}
		if ok, _ := path.Match(e.pattern, d.File); !ok && e.pattern != d.File {
			continue
		}
		if e.substr != "" && !strings.Contains(d.Message, e.substr) {
			continue
		}
		e.used = true
		hit = true
	}
	return hit
}

// Stale returns a description of every entry that (a) was never marked
// used by Allows since parsing and (b) is in scope — its file pattern
// matches at least one file of the loaded packages. Condition (b) keeps
// subset lints honest: running the analyzer over one subtree (or over
// the testdata modules in the self-test) must not condemn entries whose
// files were simply not loaded. Call after Run.
func (a *Allowlist) Stale(pkgs []*Package) []string {
	var files []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			files = append(files, relPath(pkg.ModDir, pkg.Fset.Position(f.Pos()).Filename))
		}
	}
	var stale []string
	for i := range a.entries {
		e := &a.entries[i]
		if e.used {
			continue
		}
		inScope := false
		for _, file := range files {
			if ok, _ := path.Match(e.pattern, file); ok || e.pattern == file {
				inScope = true
				break
			}
		}
		if !inScope {
			continue
		}
		stale = append(stale, fmt.Sprintf("line %d: %q matches no current diagnostic", e.line, e.raw))
	}
	return stale
}
