package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// CtxPropRule enforces context propagation: a function that receives
// a ctx parameter must not call a context-less sibling when a
// "...Context" variant exists in the same package. Calling the bare
// variant silently severs the cancellation chain — the callee runs
// on context.Background(), outliving the request deadline the caller
// was given. PR 3 introduced the paired API convention
// (Query/QueryContext and friends); this rule keeps every layer
// honest about using it.
//
// The sibling lookup is exact: for a call to F (package function) or
// x.M (method), a function FContext / method MContext on the same
// type, in the same package, whose first parameter is a
// context.Context. Calls inside function literals count too — the
// literal closes over the ctx and could pass it. The wrappers
// themselves (Query delegating to QueryContext with
// context.Background()) have no ctx parameter, so they are never
// flagged.
type CtxPropRule struct{}

// Name implements Rule.
func (CtxPropRule) Name() string { return "ctx-propagation" }

// Check implements Rule.
func (CtxPropRule) Check(pkg *Package, report func(pos token.Pos, msg string)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasCtxParam(pkg, fd.Type.Params) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCtxCall(pkg, call, report)
				return true
			})
		}
	}
}

// hasCtxParam reports whether the parameter list contains a
// context.Context.
func hasCtxParam(pkg *Package, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, field := range params.List {
		if isContextExpr(pkg, field.Type) {
			return true
		}
	}
	return false
}

// checkCtxCall flags a call whose callee has a ...Context sibling.
func checkCtxCall(pkg *Package, call *ast.CallExpr, report func(pos token.Pos, msg string)) {
	fn := staticCallee(pkg, call)
	if fn == nil || fn.Pkg() != pkg.Types {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || signatureTakesCtx(sig) {
		return
	}
	sibling := contextSibling(pkg, fn)
	if sibling == nil {
		return
	}
	report(call.Pos(), fmt.Sprintf("call to %s drops the caller's ctx; use %s", fn.Name(), sibling.Name()))
}

// staticCallee resolves a call to a statically-known function or
// method declared somewhere (not a builtin, not a function value).
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// signatureTakesCtx reports whether any parameter is a
// context.Context.
func signatureTakesCtx(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if named, ok := params.At(i).Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				return true
			}
		}
	}
	return false
}

// contextSibling finds fn's ...Context variant: same package, same
// receiver type (for methods), name fn.Name()+"Context", first
// parameter a context.Context.
func contextSibling(pkg *Package, fn *types.Func) *types.Func {
	want := fn.Name() + "Context"
	sig := fn.Type().(*types.Signature)
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		obj, _, _ = types.LookupFieldOrMethod(t, true, pkg.Types, want)
	} else {
		obj = pkg.Types.Scope().Lookup(want)
	}
	sfn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	ssig, ok := sfn.Type().(*types.Signature)
	if !ok || ssig.Params().Len() == 0 {
		return nil
	}
	first, ok := ssig.Params().At(0).Type().(*types.Named)
	if !ok {
		return nil
	}
	o := first.Obj()
	if o.Pkg() == nil || o.Pkg().Path() != "context" || o.Name() != "Context" {
		return nil
	}
	return sfn
}
