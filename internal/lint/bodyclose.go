package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"aqppp/internal/lint/cfg"
)

// BodyCloseRule reports *http.Response bodies that are not closed on
// every path: a response obtained from http.Get, Client.Do, or any
// other call returning *net/http.Response whose Body some path to a
// normal return neither closes nor hands off. An unclosed body pins
// the underlying connection — the transport cannot reuse or release
// it — so the distributed coordinator's partial fan-out would leak one
// connection per replica call.
//
// The obligation arms at the response's first real use, not at the
// assignment: the idiomatic `resp, err := ...; if err != nil { return
// err }` leaves resp nil on the error path, so an untouched response
// owes nothing. Once armed, the obligation is discharged by a
// resp.Body.Close() call or defer, or by any bare (non-selector) use
// of resp — passing it onward, returning it, storing it, capturing it
// in a closure — because every such use moves responsibility
// somewhere this intraprocedural rule cannot follow. Assigning the
// response to the blank identifier is reported immediately: the body
// is unreachable from there. Paths into panic are ignored, matching
// lock-balance and cancel-leak.
type BodyCloseRule struct{}

// Name implements Rule.
func (BodyCloseRule) Name() string { return "body-close" }

// Check implements Rule.
func (BodyCloseRule) Check(pkg *Package, report func(pos token.Pos, msg string)) {
	for _, f := range pkg.Files {
		funcBodies(f, func(name string, _ *ast.FuncDecl, body *ast.BlockStmt) {
			checkBodyClose(pkg, name, body, report)
		})
	}
}

// bodyFacts maps each tracked response variable to its obligation
// state. A response is "pending" until its first selector use arms the
// obligation; only armed obligations report at exit.
type bodyFacts map[types.Object]bodyState

type bodyState struct {
	pos   token.Pos
	name  string // variable name
	armed bool   // a selector use proved the response is live
}

func checkBodyClose(pkg *Package, fname string, body *ast.BlockStmt, report func(pos token.Pos, msg string)) {
	// Blank-assigned responses are unconditional leaks (when the call
	// succeeds, nobody can reach the body); report them in a pre-pass
	// so the dataflow transfer stays pure.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals get their own funcBodies visit
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if _, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name != "_" {
				continue
			}
			if isHTTPResponsePtr(assignedType(pkg, as, i)) {
				report(as.Rhs[0].Pos(),
					"the *http.Response is discarded; its body can never be closed and the connection leaks")
			}
		}
		return true
	})
	g := cfg.New(body)
	clone := func(f bodyFacts) bodyFacts {
		out := make(bodyFacts, len(f))
		for k, v := range f {
			out[k] = v
		}
		return out
	}
	fwd := &cfg.Forward[bodyFacts]{
		Entry: bodyFacts{},
		Merge: func(a, b bodyFacts) bodyFacts {
			out := clone(a)
			for k, v := range b {
				if w, ok := out[k]; ok {
					v.armed = v.armed || w.armed // armed on any path counts
					if w.pos < v.pos {
						v.pos, v.name = w.pos, w.name
					}
				}
				out[k] = v
			}
			return out
		},
		Equal: func(a, b bodyFacts) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || v != w {
					return false
				}
			}
			return true
		},
		TransferNode: func(n ast.Node, in bodyFacts) bodyFacts {
			out := in
			mutated := false
			mutate := func() bodyFacts {
				if !mutated {
					out = clone(in)
					mutated = true
				}
				return out
			}
			// New obligations: assignments binding a *http.Response
			// from a call. Rebinds reset the variable's state — the
			// old response's fate was sealed by whatever the previous
			// statements did with it.
			defined := make(map[types.Object]bool)
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if _, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); isCall {
					for i, lhs := range as.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || id.Name == "_" || !isHTTPResponsePtr(assignedType(pkg, as, i)) {
							continue
						}
						obj := pkg.Info.Defs[id]
						if obj == nil {
							obj = pkg.Info.Uses[id]
						}
						if obj != nil {
							mutate()[obj] = bodyState{pos: id.Pos(), name: id.Name}
							defined[obj] = true
						}
					}
				}
			}
			// Uses: classify every occurrence of a tracked variable in
			// this node. Close and bare handoffs discharge; any other
			// selector use (resp.StatusCode, resp.Body, ...) arms the
			// obligation.
			closed := make(map[types.Object]bool)
			handoff := make(map[types.Object]bool)
			used := make(map[types.Object]bool)
			selBase := make(map[*ast.Ident]*ast.SelectorExpr)
			ast.Inspect(n, func(x ast.Node) bool {
				if sel, ok := x.(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						selBase[id] = sel
					}
				}
				if isBodyCloseCall(x) {
					if id := closeReceiver(x); id != nil {
						if obj := pkg.Info.Uses[id]; obj != nil {
							closed[obj] = true
						}
					}
				}
				return true
			})
			ast.Inspect(n, func(x ast.Node) bool {
				id, ok := x.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pkg.Info.Uses[id]
				if obj == nil || defined[obj] {
					return true
				}
				if _, tracked := out[obj]; !tracked {
					if _, tracked = in[obj]; !tracked {
						return true
					}
				}
				if sel := selBase[id]; sel != nil {
					used[obj] = true
				} else {
					handoff[obj] = true
				}
				return true
			})
			for obj := range closed {
				if _, tracked := out[obj]; tracked {
					delete(mutate(), obj)
				}
			}
			for obj := range handoff {
				if _, tracked := out[obj]; tracked {
					delete(mutate(), obj)
				}
			}
			for obj := range used {
				if st, tracked := out[obj]; tracked && !st.armed {
					st.armed = true
					mutate()[obj] = st
				}
			}
			return out
		},
	}
	res := fwd.Run(g)
	type finding struct {
		state   bodyState
		retLine int
	}
	found := make(map[token.Pos]finding)
	for _, pred := range g.Exit.Preds {
		if !res.Has[pred.Index] {
			continue
		}
		fact := res.AtNode(pred, len(pred.Nodes))
		retLine := 0
		if n := len(pred.Nodes); n > 0 {
			if ret, ok := pred.Nodes[n-1].(*ast.ReturnStmt); ok {
				retLine = pkg.Fset.Position(ret.Pos()).Line
			}
		}
		for _, st := range fact {
			if !st.armed {
				continue
			}
			if prev, ok := found[st.pos]; ok && prev.retLine != 0 && (retLine == 0 || prev.retLine <= retLine) {
				continue
			}
			found[st.pos] = finding{state: st, retLine: retLine}
		}
	}
	poss := make([]token.Pos, 0, len(found))
	for pos := range found {
		poss = append(poss, pos)
	}
	sortPos(poss)
	for _, pos := range poss {
		f := found[pos]
		where := "the end of " + fname
		if f.retLine != 0 {
			where = fmt.Sprintf("the return at line %d", f.retLine)
		}
		report(pos, fmt.Sprintf("%s.Body is not closed on the path to %s; the connection cannot be reused or released",
			f.state.name, where))
	}
}

// assignedType resolves the static type assignment as gives its i'th
// LHS: the call's i'th tuple component for a multi-value RHS, the
// call's type otherwise.
func assignedType(pkg *Package, as *ast.AssignStmt, i int) types.Type {
	tv, ok := pkg.Info.Types[as.Rhs[0]]
	if !ok {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		if i < tuple.Len() {
			return tuple.At(i).Type()
		}
		return nil
	}
	if i == 0 {
		return tv.Type
	}
	return nil
}

// isHTTPResponsePtr reports whether t is *net/http.Response.
func isHTTPResponsePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response"
}

// isBodyCloseCall reports whether x is a call of the form
// <ident>.Body.Close().
func isBodyCloseCall(x ast.Node) bool {
	return closeReceiver(x) != nil
}

// closeReceiver returns the receiver variable of an
// <ident>.Body.Close() call, or nil when x is not one.
func closeReceiver(x ast.Node) *ast.Ident {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return nil
	}
	closeSel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || closeSel.Sel.Name != "Close" {
		return nil
	}
	bodySel, ok := ast.Unparen(closeSel.X).(*ast.SelectorExpr)
	if !ok || bodySel.Sel.Name != "Body" {
		return nil
	}
	id, _ := ast.Unparen(bodySel.X).(*ast.Ident)
	return id
}
