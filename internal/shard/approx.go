package shard

import (
	"context"
	"fmt"
	"math"
	"sort"

	"aqppp/internal/aqp"
	"aqppp/internal/core"
	"aqppp/internal/engine"
	"aqppp/internal/ident"
	"aqppp/internal/stats"
)

// aqpEstimate builds an estimate literal (merge code constructs many).
func aqpEstimate(v, hw, conf float64, rows int) aqp.Estimate {
	return aqp.Estimate{Value: v, HalfWidth: hw, Confidence: conf, SampleRows: rows}
}

// Prepared holds per-shard AQP++ state: each non-empty shard owns its
// own sample, identification subsample and BP-cube slice, built in
// parallel by Prepare. Procs is index-aligned with S.Shards (nil for
// empty shards).
type Prepared struct {
	S     *Sharded
	Procs []*core.Processor
	// BuildStats is per-shard preprocessing cost, index-aligned.
	BuildStats []core.BuildStats
	// Confidence is the CI level every shard was built with.
	Confidence float64
}

// Prepare builds the per-shard processors under a bounded pool. The
// config's cell budget is split evenly across shards (each slice gets
// at least one cell), and each shard draws randomness from its own
// seeded stream (cfg.Seed advanced by shard index), so samples are
// independent across shards — the condition the stratified variance
// composition needs. cfg.PrebuiltSample cannot be used here: a global
// sample's rows span shards.
func Prepare(ctx context.Context, s *Sharded, cfg core.BuildConfig, workers int) (*Prepared, error) {
	if cfg.PrebuiltSample != nil {
		return nil, fmt.Errorf("shard: PrebuiltSample is not supported for sharded prepare (each shard draws its own)")
	}
	conf := cfg.Confidence
	if conf == 0 {
		conf = 0.95
	}
	n := len(s.Shards)
	p := &Prepared{
		S:          s,
		Procs:      make([]*core.Processor, n),
		BuildStats: make([]core.BuildStats, n),
		Confidence: conf,
	}
	errs := make([]error, n)
	forEach(ctx, workers, n, func(h int) {
		if s.Shards[h].Rows == 0 {
			return // empty shard: no sample to draw, contributes zero
		}
		shCfg := PerShardConfig(cfg, h, n)
		proc, st, err := core.Build(ctx, s.Shards[h].Table, shCfg)
		if err != nil {
			errs[h] = fmt.Errorf("shard %d: %w", h, err)
			return
		}
		p.Procs[h], p.BuildStats[h] = proc, st
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// SampleSize returns the total sample rows across shards (the budget
// accounting unit for bootstrap scratch).
func (p *Prepared) SampleSize() int {
	n := 0
	for _, proc := range p.Procs {
		if proc != nil {
			n += proc.Sample.Size()
		}
	}
	return n
}

// group builds the shared fan-out/merge engine over this preparation's
// shards and processors. Pruned and empty shards contribute nothing —
// for SUM/COUNT their true contribution is exactly zero, so pruning
// tightens the interval as well as the latency.
func (p *Prepared) group(workers int) *Group {
	return p.S.group(p.Procs, p.Confidence, workers)
}

// activeWithProc is activeShards filtered to shards that hold a
// processor.
func (p *Prepared) activeWithProc(q engine.Query) []int {
	active := p.S.activeShards(q.Ranges)
	out := active[:0]
	for _, h := range active {
		if p.Procs[h] != nil {
			out = append(out, h)
		}
	}
	return out
}

// mergeAdditive composes per-shard answers for an additive aggregate
// (SUM/COUNT): point estimates add; since shards are disjoint strata
// with independent samples, variances add too, so the merged half-width
// is λ·sqrt(Σ_h (hw_h/λ)²) — the per-stratum composition of
// internal/aqp's stratifiedSum with a shard as the stratum. PreValue
// adds (each shard anchors its own slice); Pre reports the first
// shard's non-φ identification for diagnostics.
func mergeAdditive(answers []core.Answer, conf float64) core.Answer {
	lambda := stats.ZScore(conf)
	merged := core.Answer{Pre: ident.Pre{Phi: true}}
	varSum := 0.0
	for _, a := range answers {
		merged.Estimate.Value += a.Estimate.Value
		w := a.Estimate.HalfWidth / lambda
		varSum += w * w
		merged.Estimate.SampleRows += a.Estimate.SampleRows
		merged.Candidates += a.Candidates
		merged.PreValue += a.PreValue
		if merged.Pre.IsPhi() && !a.Pre.IsPhi() {
			merged.Pre = a.Pre
		}
	}
	merged.Estimate.HalfWidth = lambda * math.Sqrt(varSum)
	merged.Estimate.Confidence = conf
	return merged
}

// Answer answers a scalar query across shards. SUM and COUNT merge
// additively with composed variance; AVG is answered as merged-SUM over
// merged-COUNT with a conservative interval (hw_S + |r|·hw_C)/|C|, an
// upper bound on the delta-method width since cross-terms are dropped;
// MIN/MAX fold per-shard exact index answers.
func (p *Prepared) Answer(ctx context.Context, q engine.Query, workers int) (core.Answer, error) {
	a, _, err := p.group(workers).Answer(ctx, q)
	return a, err
}

// ratioAnswer forms AVG = SUM/COUNT from two merged answers. The
// half-width (|hw_S| + |r|·hw_C)/|C| bounds the linearized interval:
// |d(S/C)| <= (|dS| + |r||dC|)/|C|.
func ratioAnswer(sumAns, cntAns core.Answer, conf float64) core.Answer {
	if cntAns.Estimate.Value == 0 {
		return core.Answer{
			Estimate: aqpEstimate(0, 0, conf, sumAns.Estimate.SampleRows),
			Pre:      sumAns.Pre,
		}
	}
	r := sumAns.Estimate.Value / cntAns.Estimate.Value
	c := math.Abs(cntAns.Estimate.Value)
	hw := (sumAns.Estimate.HalfWidth + math.Abs(r)*cntAns.Estimate.HalfWidth) / c
	return core.Answer{
		Estimate:   aqpEstimate(r, hw, conf, sumAns.Estimate.SampleRows),
		Pre:        sumAns.Pre,
		PreValue:   sumAns.PreValue,
		Candidates: sumAns.Candidates + cntAns.Candidates,
	}
}

// AnswerGroups answers a GROUP BY query across shards: each shard
// answers the groups its sample observed, and per-key answers merge
// with the same stratified composition as scalars. AVG groups merge as
// the ratio of merged SUM and COUNT group answers. Output is sorted by
// key (rows are redistributed across shards, so a global first-seen
// order does not exist).
func (p *Prepared) AnswerGroups(ctx context.Context, q engine.Query, workers int) ([]core.GroupAnswer, error) {
	groups, _, err := p.group(workers).AnswerGroups(ctx, q)
	return groups, err
}

// mergeGroupAnswers merges per-shard group answers by key (additive
// aggregates only), sorted by key.
func mergeGroupAnswers(perShard [][]core.GroupAnswer, conf float64) []core.GroupAnswer {
	byKey := make(map[string][]core.Answer)
	keys := make([]string, 0, 16)
	for _, groups := range perShard {
		for _, g := range groups {
			if _, ok := byKey[g.Key]; !ok {
				keys = append(keys, g.Key)
			}
			byKey[g.Key] = append(byKey[g.Key], g.Answer)
		}
	}
	sort.Strings(keys)
	out := make([]core.GroupAnswer, 0, len(keys))
	for _, key := range keys {
		out = append(out, core.GroupAnswer{Key: key, Answer: mergeAdditive(byKey[key], conf)})
	}
	return out
}

// AnswerBootstrap answers SUM/COUNT with per-shard empirical bootstrap
// intervals: every shard resamples its own sample under an independent
// seeded stream (seed advanced by shard index, so shard replicates
// never correlate), and the per-shard percentile half-widths compose as
// independent variances: hw = sqrt(Σ hw_h²). Points add exactly like
// the closed-form path.
func (p *Prepared) AnswerBootstrap(ctx context.Context, q engine.Query, resamples int, seed uint64, workers int) (core.Answer, error) {
	a, _, err := p.group(workers).AnswerBootstrap(ctx, q, resamples, seed)
	return a, err
}
