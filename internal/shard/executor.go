package shard

import (
	"context"
	"fmt"
	"math"
	"time"

	"aqppp/internal/core"
	"aqppp/internal/engine"
	"aqppp/internal/ident"
)

// ExecutorInfo describes one stratum of a Group: the shard index it
// occupies in the layout, its row count, and the layout column's
// observed bounds (meaningful only when Rows > 0) for range pruning.
type ExecutorInfo struct {
	Index  int
	Rows   int
	Lo, Hi float64
	// Approx reports whether the stratum can answer approximate
	// queries — it holds a sample and BP-cube slice, in process or
	// behind a replica endpoint.
	Approx bool
}

// Executor is one shard slice as the fan-out/merge engine sees it. The
// in-process Local executor and internal/dist's remote replicas both
// implement it, so the scatter-gather contract — pruning, bounded
// fan-out, algebraic exact merge, stratified CI merge — lives in
// exactly one place (Group) regardless of where the slice executes.
type Executor interface {
	Info() ExecutorInfo
	// ExactPartial runs an exact sub-plan and returns mergeable
	// algebraic moments.
	ExactPartial(ctx context.Context, q engine.Query) (engine.PartialResult, error)
	// ApproxAnswer answers a scalar approximate query from the
	// stratum's own sample + cube slice.
	ApproxAnswer(ctx context.Context, q engine.Query) (core.Answer, error)
	// ApproxGroups answers a GROUP BY approximate query.
	ApproxGroups(ctx context.Context, q engine.Query) ([]core.GroupAnswer, error)
	// ApproxBootstrap answers SUM/COUNT with an empirical bootstrap
	// interval under the given (already stride-derived) seed.
	ApproxBootstrap(ctx context.Context, q engine.Query, resamples int, seed uint64) (core.Answer, error)
}

// Local adapts one in-process shard (and optionally its per-shard
// processor) to the Executor interface.
type Local struct {
	Shard *Shard
	Proc  *core.Processor
}

// Info implements Executor.
func (e Local) Info() ExecutorInfo {
	return ExecutorInfo{
		Index: e.Shard.Index, Rows: e.Shard.Rows,
		Lo: e.Shard.Lo, Hi: e.Shard.Hi,
		Approx: e.Proc != nil,
	}
}

// ExactPartial implements Executor.
func (e Local) ExactPartial(ctx context.Context, q engine.Query) (engine.PartialResult, error) {
	return e.Shard.Table.ExecutePartialContext(ctx, q)
}

// ApproxAnswer implements Executor (local answers are cube + sample
// lookups; no per-block cancellation points to thread ctx into).
func (e Local) ApproxAnswer(_ context.Context, q engine.Query) (core.Answer, error) {
	return e.Proc.Answer(q)
}

// ApproxGroups implements Executor.
func (e Local) ApproxGroups(ctx context.Context, q engine.Query) ([]core.GroupAnswer, error) {
	return e.Proc.AnswerGroups(ctx, q)
}

// ApproxBootstrap implements Executor.
func (e Local) ApproxBootstrap(ctx context.Context, q engine.Query, resamples int, seed uint64) (core.Answer, error) {
	return e.Proc.AnswerBootstrap(ctx, q, resamples, seed, nil)
}

// DeriveSeed returns shard index's random stream: the caller's seed
// advanced by (index+1)·seedStride. Replicas must derive bootstrap and
// build seeds with this exact function for distributed answers to be
// bit-identical to in-process sharded ones.
func DeriveSeed(seed uint64, index int) uint64 {
	return seed + uint64(index+1)*seedStride
}

// SplitBudget returns the per-shard share of a cube cell budget under
// an n-way layout: an even split, floored at one cell per shard.
func SplitBudget(budget, n int) int {
	per := budget / n
	if per < 1 {
		per = 1
	}
	return per
}

// PerShardConfig derives the build config shard index receives under a
// count-way layout: the cell budget splits evenly across shards and
// the seed advances by the shard's stride — exactly what Prepare does
// in process, so a replica building its slice with this config grows a
// sample and BP-cube bit-identical to the corresponding in-process
// shard's.
func PerShardConfig(cfg core.BuildConfig, index, count int) core.BuildConfig {
	out := cfg
	out.CellBudget = SplitBudget(cfg.CellBudget, count)
	out.Seed = DeriveSeed(cfg.Seed, index)
	return out
}

// Degradation reports strata lost to a tolerated failure: an
// approximate answer was extrapolated from the survivors.
type Degradation struct {
	// Lost is the number of active strata that failed.
	Lost int
	// LostRows is the row mass of the lost strata.
	LostRows int
	// SurvivorRows is the row mass of the surviving active strata the
	// extrapolation scaled from.
	SurvivorRows int
}

// Group is the fan-out/merge engine: a set of Executors forming one
// logical table, plus the policy knobs the merge shares between the
// in-process path (Sharded/Prepared) and internal/dist's coordinator.
// Merge semantics are identical for both: exact partials fold in
// shard-index order, approximate answers compose per-stratum variances
// (see mergeAdditive), bootstrap half-widths compose in quadrature.
type Group struct {
	Layout     Layout
	Confidence float64
	Execs      []Executor
	// Workers bounds the fan-out pool (<= 0 selects GOMAXPROCS).
	Workers int
	// Observe, when non-nil, receives each stratum execution's index
	// into Execs and duration.
	Observe func(k int, d time.Duration)
	// OnPrune, when non-nil, is called with the index of each stratum
	// skipped by bound pruning.
	OnPrune func(k int)
	// Degrade, when non-nil, reports whether an approximate query may
	// tolerate losing the stratum that failed with err; the merged
	// answer is then extrapolated from survivors with a widened
	// interval. Exact queries and MIN/MAX never degrade — a lost
	// stratum could hold the true extremum or an unbounded exact
	// contribution.
	Degrade func(err error) bool
}

// active returns the Execs indices a query with the given ranges must
// touch, ascending. Empty strata are skipped outright; under a range
// layout, strata whose bounds miss a range on the layout column are
// pruned and reported to OnPrune.
func (g *Group) active(ranges []engine.Range, needApprox bool) []int {
	out := make([]int, 0, len(g.Execs))
	for k, e := range g.Execs {
		in := e.Info()
		if in.Rows == 0 {
			continue
		}
		if g.Layout.Strategy == ByRange && boundsPruned(in.Lo, in.Hi, g.Layout.Column, ranges) {
			if g.OnPrune != nil {
				g.OnPrune(k)
			}
			continue
		}
		if needApprox && !in.Approx {
			continue
		}
		out = append(out, k)
	}
	return out
}

// boundsPruned reports whether some range on the layout column excludes
// the whole [lo, hi] bound interval. Bounds are inclusive on both
// sides, so overlap requires r.Lo <= hi && r.Hi >= lo; adjacent strata
// that share a boundary value both stay active.
func boundsPruned(lo, hi float64, col string, ranges []engine.Range) bool {
	for _, r := range ranges {
		if r.Col != col {
			continue
		}
		if r.Hi < lo || r.Lo > hi {
			return true
		}
	}
	return false
}

// runActive fans fn out over the active strata under the bounded pool,
// then applies the degrade policy. It returns the positions j (into
// active) that succeeded and, when failures were tolerated, the
// Degradation describing the loss. A failure the policy rejects — or
// any failure when canDegrade is false, or a loss with no surviving
// row mass to extrapolate from — returns the first error in stratum
// order, preserving the in-process path's semantics.
func (g *Group) runActive(ctx context.Context, active []int, canDegrade bool, fn func(j, k int) error) ([]int, *Degradation, error) {
	errs := make([]error, len(active))
	forEach(ctx, g.Workers, len(active), func(j int) {
		k := active[j]
		t0 := time.Now()
		errs[j] = fn(j, k)
		if g.Observe != nil {
			g.Observe(k, time.Since(t0))
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	firstErr := func() error {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	ok := make([]int, 0, len(active))
	var deg *Degradation
	for j, err := range errs {
		if err == nil {
			ok = append(ok, j)
			continue
		}
		if !canDegrade || g.Degrade == nil || !g.Degrade(err) {
			return nil, nil, err
		}
		if deg == nil {
			deg = &Degradation{}
		}
		deg.Lost++
		deg.LostRows += g.Execs[active[j]].Info().Rows
	}
	if deg != nil {
		for _, j := range ok {
			deg.SurvivorRows += g.Execs[active[j]].Info().Rows
		}
		if deg.SurvivorRows == 0 {
			return nil, nil, firstErr()
		}
	}
	return ok, deg, nil
}

// Exact runs an exact query scatter-gather across the strata and
// merges algebraically: scalar partials fold in stratum order (SUM and
// COUNT add, MIN/MAX fold, AVG/VAR finish from merged moments), so
// results are deterministic for a fixed layout and bit-identical to
// the unsharded scan whenever the additions are exact. Group-by
// results are sorted by key. Exact queries never degrade: any stratum
// failure is the query's failure.
func (g *Group) Exact(ctx context.Context, q engine.Query) (engine.Result, error) {
	active := g.active(q.Ranges, false)
	partials := make([]engine.PartialResult, len(active))
	_, _, err := g.runActive(ctx, active, false, func(j, k int) error {
		var err error
		partials[j], err = g.Execs[k].ExactPartial(ctx, q)
		return err
	})
	if err != nil {
		return engine.Result{}, err
	}
	if len(q.GroupBy) == 0 {
		var total engine.Partial
		for j := range partials {
			total.Merge(partials[j].Scalar)
		}
		v, err := total.Finish(q.Func)
		if err != nil {
			return engine.Result{}, err
		}
		return engine.Result{Value: v}, nil
	}
	return mergeGroups(partials, q.Func)
}

// collect fans an approximate per-stratum answer function out and
// returns the surviving answers in stratum order, with any tolerated
// Degradation.
func (g *Group) collect(ctx context.Context, q engine.Query, canDegrade bool,
	run func(ctx context.Context, e Executor) (core.Answer, error)) ([]core.Answer, *Degradation, error) {
	active := g.active(q.Ranges, true)
	answers := make([]core.Answer, len(active))
	ok, deg, err := g.runActive(ctx, active, canDegrade, func(j, k int) error {
		var err error
		answers[j], err = run(ctx, g.Execs[k])
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	if deg == nil {
		return answers, nil, nil
	}
	kept := make([]core.Answer, 0, len(ok))
	for _, j := range ok {
		kept = append(kept, answers[j])
	}
	return kept, deg, nil
}

// degradeAnswer extrapolates a merged answer over lost strata: the
// survivors' total scales up by the lost-row fraction f (strata are
// near-equal row spans, so proportional mass is the natural prior),
// and the half-width widens by the scaled survivor interval plus the
// entire extrapolated contribution — the extrapolation itself is
// treated as fully uncertain, so the widened interval still covers the
// case where the lost stratum contributed nothing at all.
func degradeAnswer(a core.Answer, d *Degradation) core.Answer {
	if d == nil || d.LostRows == 0 {
		return a
	}
	f := float64(d.LostRows) / float64(d.SurvivorRows)
	v := a.Estimate.Value
	a.Estimate.Value = v * (1 + f)
	a.Estimate.HalfWidth = a.Estimate.HalfWidth*(1+f) + math.Abs(v)*f
	return a
}

// Answer answers a scalar approximate query across the strata. SUM and
// COUNT merge additively with composed variance; AVG is merged-SUM
// over merged-COUNT with a conservative ratio interval; MIN/MAX fold
// per-stratum exact index answers (and never degrade).
func (g *Group) Answer(ctx context.Context, q engine.Query) (core.Answer, *Degradation, error) {
	if len(q.GroupBy) > 0 {
		return core.Answer{}, nil, fmt.Errorf("shard: use AnswerGroups for GROUP BY queries")
	}
	switch q.Func {
	case engine.Sum, engine.Count:
		answers, deg, err := g.collect(ctx, q, true, func(ctx context.Context, e Executor) (core.Answer, error) {
			return e.ApproxAnswer(ctx, q)
		})
		if err != nil {
			return core.Answer{}, nil, err
		}
		return degradeAnswer(mergeAdditive(answers, g.Confidence), deg), deg, nil
	case engine.Avg:
		return g.answerAvg(ctx, q)
	case engine.Min, engine.Max:
		answers, _, err := g.collect(ctx, q, false, func(ctx context.Context, e Executor) (core.Answer, error) {
			return e.ApproxAnswer(ctx, q)
		})
		if err != nil {
			return core.Answer{}, nil, err
		}
		if len(answers) == 0 {
			return core.Answer{Estimate: aqpEstimate(0, 0, 1, 0), Pre: ident.Pre{Phi: true}}, nil, nil
		}
		best := answers[0]
		for _, a := range answers[1:] {
			v, bv := a.Estimate.Value, best.Estimate.Value
			if (q.Func == engine.Min && v < bv) || (q.Func == engine.Max && v > bv) {
				best = a
			}
		}
		return best, nil, nil
	default:
		return core.Answer{}, nil, fmt.Errorf("shard: %w aggregate %v", core.ErrUnsupported, q.Func)
	}
}

func (g *Group) answerAvg(ctx context.Context, q engine.Query) (core.Answer, *Degradation, error) {
	sumQ, cntQ := q, q
	sumQ.Func = engine.Sum
	cntQ.Func = engine.Count
	sumAns, sumDeg, err := g.Answer(ctx, sumQ)
	if err != nil {
		return core.Answer{}, nil, err
	}
	cntAns, cntDeg, err := g.Answer(ctx, cntQ)
	if err != nil {
		return core.Answer{}, nil, err
	}
	deg := sumDeg
	if deg == nil {
		deg = cntDeg
	}
	return ratioAnswer(sumAns, cntAns, g.Confidence), deg, nil
}

// AnswerGroups answers a GROUP BY approximate query: each stratum
// answers the groups its sample observed, and per-key answers merge
// with the same stratified composition as scalars, sorted by key. AVG
// groups merge as the ratio of merged SUM and COUNT group answers.
func (g *Group) AnswerGroups(ctx context.Context, q engine.Query) ([]core.GroupAnswer, *Degradation, error) {
	if len(q.GroupBy) == 0 {
		return nil, nil, fmt.Errorf("shard: AnswerGroups needs GROUP BY")
	}
	switch q.Func {
	case engine.Sum, engine.Count:
		perStratum, deg, err := g.collectGroups(ctx, q)
		if err != nil {
			return nil, nil, err
		}
		merged := mergeGroupAnswers(perStratum, g.Confidence)
		if deg != nil {
			for i := range merged {
				merged[i].Answer = degradeAnswer(merged[i].Answer, deg)
			}
		}
		return merged, deg, nil
	case engine.Avg:
		sumQ, cntQ := q, q
		sumQ.Func = engine.Sum
		cntQ.Func = engine.Count
		sums, sumDeg, err := g.AnswerGroups(ctx, sumQ)
		if err != nil {
			return nil, nil, err
		}
		cnts, cntDeg, err := g.AnswerGroups(ctx, cntQ)
		if err != nil {
			return nil, nil, err
		}
		byKey := make(map[string]core.Answer, len(cnts))
		for _, gr := range cnts {
			byKey[gr.Key] = gr.Answer
		}
		out := make([]core.GroupAnswer, 0, len(sums))
		for _, gr := range sums {
			cnt, ok := byKey[gr.Key]
			if !ok || cnt.Estimate.Value == 0 {
				continue // no mass estimate for the group: no ratio to form
			}
			out = append(out, core.GroupAnswer{Key: gr.Key, Answer: ratioAnswer(gr.Answer, cnt, g.Confidence)})
		}
		deg := sumDeg
		if deg == nil {
			deg = cntDeg
		}
		return out, deg, nil
	default:
		return nil, nil, fmt.Errorf("shard: %w GROUP BY aggregate %v", core.ErrUnsupported, q.Func)
	}
}

func (g *Group) collectGroups(ctx context.Context, q engine.Query) ([][]core.GroupAnswer, *Degradation, error) {
	active := g.active(q.Ranges, true)
	perStratum := make([][]core.GroupAnswer, len(active))
	ok, deg, err := g.runActive(ctx, active, true, func(j, k int) error {
		var err error
		perStratum[j], err = g.Execs[k].ApproxGroups(ctx, q)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	if deg == nil {
		return perStratum, nil, nil
	}
	kept := make([][]core.GroupAnswer, 0, len(ok))
	for _, j := range ok {
		kept = append(kept, perStratum[j])
	}
	return kept, deg, nil
}

// AnswerBootstrap answers SUM/COUNT with per-stratum empirical
// bootstrap intervals: every stratum resamples its own sample under an
// independent stride-derived seed, and the per-stratum percentile
// half-widths compose in quadrature: hw = sqrt(Σ hw_h²).
func (g *Group) AnswerBootstrap(ctx context.Context, q engine.Query, resamples int, seed uint64) (core.Answer, *Degradation, error) {
	if q.Func != engine.Sum && q.Func != engine.Count {
		return core.Answer{}, nil, fmt.Errorf("shard: AnswerBootstrap supports SUM/COUNT, got %v: %w", q.Func, core.ErrUnsupported)
	}
	if len(q.GroupBy) > 0 {
		return core.Answer{}, nil, fmt.Errorf("shard: AnswerBootstrap does not handle GROUP BY: %w", core.ErrUnsupported)
	}
	answers, deg, err := g.collect(ctx, q, true, func(ctx context.Context, e Executor) (core.Answer, error) {
		return e.ApproxBootstrap(ctx, q, resamples, DeriveSeed(seed, e.Info().Index))
	})
	if err != nil {
		return core.Answer{}, nil, err
	}
	return degradeAnswer(mergeBootstrap(answers, g.Confidence), deg), deg, nil
}

// mergeBootstrap composes per-stratum bootstrap answers: points add,
// half-widths add in quadrature.
func mergeBootstrap(answers []core.Answer, conf float64) core.Answer {
	merged := core.Answer{Pre: ident.Pre{Phi: true}}
	hw2 := 0.0
	for _, a := range answers {
		merged.Estimate.Value += a.Estimate.Value
		hw2 += a.Estimate.HalfWidth * a.Estimate.HalfWidth
		merged.Estimate.SampleRows += a.Estimate.SampleRows
		merged.Candidates += a.Candidates
		merged.PreValue += a.PreValue
		if merged.Pre.IsPhi() && !a.Pre.IsPhi() {
			merged.Pre = a.Pre
		}
	}
	merged.Estimate.HalfWidth = math.Sqrt(hw2)
	merged.Estimate.Confidence = conf
	return merged
}
