package shard

import (
	"sync"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// benchShardTable builds the scatter-gather microbenchmark fixture: 1M
// rows whose filter column is shuffled (uniform over the row domain, so
// every zone-map block straddles any selective range and the unsharded
// engine must scan end to end) plus a float measure. Range-partitioning
// on the shuffled column re-clusters it: a selective range then falls
// inside one shard's span and pruning skips the rest, which is where
// the sharded speedup on straddle-heavy workloads comes from.
func benchShardTable(n int) *engine.Table {
	r := stats.NewRNG(0x5a4d)
	shuffled := make([]int64, n)
	v := make([]float64, n)
	bucket := make([]int64, n)
	for i := 0; i < n; i++ {
		shuffled[i] = int64(r.Intn(n))
		v[i] = r.NormFloat64() * 100
		bucket[i] = int64(r.Intn(16))
	}
	return engine.MustNewTable("bench",
		engine.NewIntColumn("shuffled", shuffled),
		engine.NewFloatColumn("v", v),
		engine.NewIntColumn("bucket", bucket),
	)
}

const benchShardRows = 1 << 20

// Partitioning 1M rows is a non-trivial fixture cost, so every layout
// is built once and reused across benchmark runs (-count repetitions
// included; benchmarks never mutate the fixture).
var (
	benchMu    sync.Mutex
	benchBase  *engine.Table
	benchCache = map[string]*Sharded{}
)

func benchSharded(b *testing.B, layout Layout) *Sharded {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchBase == nil {
		benchBase = benchShardTable(benchShardRows)
	}
	key := layout.Signature()
	if s, ok := benchCache[key]; ok {
		return s
	}
	s, err := Partition(benchBase, layout)
	if err != nil {
		b.Fatal(err)
	}
	benchCache[key] = s
	return s
}

// benchShardQuery is the straddle-heavy workload: a ~2% selective SUM
// on the shuffled column, the same shape as the engine benchmark's
// FusedSumShuffled (its worst case). The interval is offset from the
// n/2 cut so it sits strictly inside one shard's span at every
// benchmarked shard count (8 divides the domain at multiples of n/8)
// without abutting a shard boundary: a range that starts exactly at a
// cut would make the surviving shard's lower-bound compare always-true
// and flatter the kernel with a perfectly predicted branch, crediting
// the layout for a speedup that is really query placement.
func benchShardQuery() engine.Query {
	lo := float64(benchShardRows/2 + benchShardRows/64)
	return engine.Query{Func: engine.Sum, Col: "v", Ranges: []engine.Range{{
		Col: "shuffled", Lo: lo, Hi: lo + benchShardRows/50,
	}}}
}

func benchShardSum(b *testing.B, layout Layout) {
	s := benchSharded(b, layout)
	q := benchShardQuery()
	if _, err := s.Execute(q, 0); err != nil { // warm zone maps
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Execute(q, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// The 1-shard config is the unsharded baseline with the scatter-gather
// machinery still on the path, so the 2/4/8 ratios isolate what the
// layout buys (pruning) from what the coordinator costs (merge).
func BenchmarkShardSumShuffled1(b *testing.B) {
	benchShardSum(b, Layout{Strategy: ByRange, Column: "shuffled", N: 1})
}

func BenchmarkShardSumShuffled2(b *testing.B) {
	benchShardSum(b, Layout{Strategy: ByRange, Column: "shuffled", N: 2})
}

func BenchmarkShardSumShuffled4(b *testing.B) {
	benchShardSum(b, Layout{Strategy: ByRange, Column: "shuffled", N: 4})
}

func BenchmarkShardSumShuffled8(b *testing.B) {
	benchShardSum(b, Layout{Strategy: ByRange, Column: "shuffled", N: 8})
}

// Hash sharding never prunes a range query, so this is the honest
// counterpoint: all 4 shards scan, and on a single visible core the
// fan-out can only cost. The recorded baseline pins that overhead.
func BenchmarkShardSumHashNoPrune4(b *testing.B) {
	benchShardSum(b, Layout{Strategy: ByHash, Column: "shuffled", N: 4})
}

// Group-by over the pruned layout: the merge path (map + sorted keys)
// rides on top of the same shard skip.
func BenchmarkShardGroupBy4(b *testing.B) {
	s := benchSharded(b, Layout{Strategy: ByRange, Column: "shuffled", N: 4})
	q := benchShardQuery()
	q.GroupBy = []string{"bucket"}
	if _, err := s.Execute(q, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Execute(q, 0); err != nil {
			b.Fatal(err)
		}
	}
}
