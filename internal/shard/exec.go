package shard

import (
	"context"
	"sort"

	"aqppp/internal/core"
	"aqppp/internal/engine"
)

// Execute runs an exact query scatter-gather across the shards with the
// given fan-out (<= 0 selects GOMAXPROCS).
func (s *Sharded) Execute(q engine.Query, workers int) (engine.Result, error) {
	return s.ExecuteContext(context.Background(), q, workers)
}

// ExecuteContext is Execute with cancellation: each shard scan polls
// the context once per zone block (the engine's standard granularity),
// and the pool stops launching new shards once the context dies.
//
// Merge semantics: scalar partials fold in shard-index order (SUM/COUNT
// add, MIN/MAX fold, AVG/VAR finish from merged moments), so results
// are deterministic for a fixed layout and bit-identical to the
// unsharded scan whenever the additions are exact (COUNT/MIN/MAX
// always; SUM/AVG/VAR for integer-valued data). Group-by results are
// returned sorted by group key — rows are redistributed across shards,
// so the serial first-seen order is not reconstructible; sorting makes
// the sharded order deterministic and layout-independent.
func (s *Sharded) ExecuteContext(ctx context.Context, q engine.Query, workers int) (engine.Result, error) {
	// Validate the query against the schema up front, so a query that
	// prunes every shard still reports unknown columns exactly like the
	// unsharded path would.
	if err := s.validate(q); err != nil {
		return engine.Result{}, err
	}
	return s.group(nil, 0, workers).Exact(ctx, q)
}

// group builds the fan-out/merge engine over the in-process shards.
// procs, when non-nil, is index-aligned with Shards (a Prepared's
// per-shard processors); conf is the CI level for approximate merges.
func (s *Sharded) group(procs []*core.Processor, conf float64, workers int) *Group {
	execs := make([]Executor, len(s.Shards))
	for h := range s.Shards {
		var proc *core.Processor
		if procs != nil {
			proc = procs[h]
		}
		execs[h] = Local{Shard: s.Shards[h], Proc: proc}
	}
	return &Group{
		Layout:     s.Layout,
		Confidence: conf,
		Execs:      execs,
		Workers:    workers,
		Observe:    s.recordScan,
		OnPrune:    func(int) { s.pruned.Add(1) },
	}
}

// validate resolves every column the query names against the shard
// schema (all shards share the source schema, so shard 0 stands in).
func (s *Sharded) validate(q engine.Query) error {
	t := s.Shards[0].Table
	if q.Func != engine.Count {
		if _, err := t.Column(q.Col); err != nil {
			return err
		}
	}
	for _, r := range q.Ranges {
		if _, err := t.Column(r.Col); err != nil {
			return err
		}
	}
	for _, g := range q.GroupBy {
		if _, err := t.Column(g); err != nil {
			return err
		}
	}
	return nil
}

// mergeGroups folds per-shard group partials by key and finishes each
// merged accumulator, emitting rows sorted by key.
func mergeGroups(partials []engine.PartialResult, f engine.AggFunc) (engine.Result, error) {
	acc := make(map[string]*engine.Partial)
	keys := make([]string, 0, 16)
	for k := range partials {
		for _, gp := range partials[k].Groups {
			p, ok := acc[gp.Key]
			if !ok {
				p = &engine.Partial{}
				acc[gp.Key] = p
				keys = append(keys, gp.Key)
			}
			p.Merge(gp.Partial)
		}
	}
	sort.Strings(keys)
	rows := make([]engine.GroupRow, 0, len(keys))
	for _, key := range keys {
		p := acc[key]
		v, err := p.Finish(f)
		if err != nil {
			return engine.Result{}, err
		}
		rows = append(rows, engine.GroupRow{Key: key, Value: v, Rows: int(p.N)})
	}
	return engine.Result{Groups: rows}, nil
}
