// Package shard implements in-process sharded scatter-gather execution:
// one logical table partitioned by range or hash into N shards, each
// owning its own engine columns (and therefore zone maps), its own
// sample and its own BP-cube slice. A coordinator plans once against
// the ordinary Plan IR, derives per-shard sub-work (range predicates
// pruned against shard bounds so non-overlapping shards are skipped
// entirely), fans out over a bounded worker pool, and merges partials:
// exact aggregates combine algebraically (engine.Partial), approximate
// answers combine via per-stratum variance composition — a shard is a
// stratum, so per-shard uniform estimates compose exactly like the
// stratified-sample math in internal/aqp — and bootstrap replicates
// run per-shard under independent seeded streams before the CI merge.
package shard

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// Strategy selects how rows are assigned to shards.
type Strategy uint8

const (
	// ByRange partitions on the layout column's sort order: shard h
	// holds the h-th quantile span of rows ordered by the column, so a
	// range predicate on that column overlaps few shards and the rest
	// are pruned without touching row data. This also re-clusters data
	// that is shuffled in row order — the straddle-heavy workloads zone
	// maps cannot help with.
	ByRange Strategy = iota
	// ByHash spreads rows by a hash of the layout column's ordinal,
	// balancing skewed inserts at the cost of no range pruning.
	ByHash
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case ByRange:
		return "range"
	case ByHash:
		return "hash"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Layout describes a partitioning: the strategy, the clustering column
// it keys on, and the shard count.
type Layout struct {
	Strategy Strategy
	Column   string
	N        int
}

// Signature renders the layout canonically for cache keys: two plans
// over different layouts must not share cached answers (float merges
// reassociate differently across layouts).
func (l Layout) Signature() string {
	return fmt.Sprintf("%s:%s:%d", l.Strategy, l.Column, l.N)
}

// Shard is one horizontal partition: a full-schema engine table holding
// its rows (in source row order), plus the layout column's observed
// ordinal bounds for pruning. Lo/Hi are meaningful only when Rows > 0.
type Shard struct {
	Index  int
	Table  *engine.Table
	Rows   int
	Lo, Hi float64
}

// shardObs is one shard's scan observability: how many sub-plans ran
// against it and their latency distribution (log10 microseconds, the
// same bucketing the serving layer's request histogram uses).
type shardObs struct {
	mu      sync.Mutex
	scans   uint64
	sumUS   float64
	latency *stats.Histogram
}

// Latency histogram domain: log10(µs) from 1µs to 1s, 24 buckets —
// matching the serving layer so the two histograms line up in /metrics.
const (
	latLogMin  = 0.0
	latLogMax  = 6.0
	latBuckets = 24
)

// Sharded is a partitioned table: the coordinator-side handle that
// executes queries scatter-gather across its shards.
type Sharded struct {
	// Name is the logical (source) table name.
	Name   string
	Layout Layout
	Shards []*Shard

	obs    []shardObs
	pruned atomic.Uint64
}

// seedStride separates per-shard random streams: shard h's seed is the
// caller's seed plus (h+1)·seedStride (the 64-bit golden ratio, so
// nearby seeds land in well-separated stream states).
const seedStride = 0x9e3779b97f4a7c15

// Partition splits tbl into layout.N shards. Range layouts order rows
// by the layout column (ties broken by row index, like the engine's
// sorted views) and cut the order into N near-equal spans; hash layouts
// assign each row by a mixed hash of the column's ordinal. Within every
// shard, rows keep their source order, so per-shard scans fold in the
// same order the unsharded scan would have folded that subset.
func Partition(tbl *engine.Table, layout Layout) (*Sharded, error) {
	if layout.N < 1 {
		return nil, fmt.Errorf("shard: layout needs N >= 1 shards, got %d", layout.N)
	}
	col, err := tbl.Column(layout.Column)
	if err != nil {
		return nil, err
	}
	n := tbl.NumRows()
	spans := make([][]int, layout.N)
	switch layout.Strategy {
	case ByRange:
		idx, err := tbl.SortedIndexByOrdinal(layout.Column)
		if err != nil {
			return nil, err
		}
		for h := 0; h < layout.N; h++ {
			lo := h * n / layout.N
			hi := (h + 1) * n / layout.N
			span := append([]int(nil), idx[lo:hi]...)
			sort.Ints(span) // restore source row order within the shard
			spans[h] = span
		}
	case ByHash:
		for i := 0; i < n; i++ {
			h := int(mix64(math.Float64bits(col.Ordinal(i))) % uint64(layout.N))
			spans[h] = append(spans[h], i)
		}
	default:
		return nil, fmt.Errorf("shard: unknown strategy %v", layout.Strategy)
	}
	s := &Sharded{Name: tbl.Name, Layout: layout, obs: make([]shardObs, layout.N)}
	for h, span := range spans {
		st := tbl.Gather(fmt.Sprintf("%s#%d", tbl.Name, h), span)
		sh := &Shard{Index: h, Table: st, Rows: len(span)}
		if len(span) > 0 {
			c := st.MustColumn(layout.Column)
			lo, hi := c.Ordinal(0), c.Ordinal(0)
			for i := 1; i < len(span); i++ {
				v := c.Ordinal(i)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			sh.Lo, sh.Hi = lo, hi
		}
		s.Shards = append(s.Shards, sh)
	}
	for h := range s.obs {
		s.obs[h].latency = stats.NewHistogram(latLogMin, latLogMax, latBuckets)
	}
	return s, nil
}

// mix64 is SplitMix64's finalizer: a cheap, well-distributed 64-bit
// mixer for hash placement.
func mix64(x uint64) uint64 {
	x += seedStride
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// activeShards returns the indices of shards a query with the given
// ranges must scan, in shard order. Empty shards are skipped outright;
// under a range layout, a shard whose bound interval misses any range
// on the layout column is pruned (every row would fail that conjunct)
// and counted in the pruned metric.
func (s *Sharded) activeShards(ranges []engine.Range) []int {
	out := make([]int, 0, len(s.Shards))
	for i, sh := range s.Shards {
		if sh.Rows == 0 {
			continue
		}
		if s.Layout.Strategy == ByRange && s.prunedBy(sh, ranges) {
			s.pruned.Add(1)
			continue
		}
		out = append(out, i)
	}
	return out
}

// prunedBy reports whether some range on the layout column excludes the
// whole shard. Bounds are inclusive on both sides, so overlap requires
// r.Lo <= sh.Hi && r.Hi >= sh.Lo; adjacent shards that share a boundary
// value both stay active (ties can land either side of a cut).
func (s *Sharded) prunedBy(sh *Shard, ranges []engine.Range) bool {
	for _, r := range ranges {
		if r.Col != s.Layout.Column {
			continue
		}
		if r.Hi < sh.Lo || r.Lo > sh.Hi {
			return true
		}
	}
	return false
}

// recordScan notes one sub-plan execution against shard h.
func (s *Sharded) recordScan(h int, d time.Duration) {
	us := d.Seconds() * 1e6
	if us < 1 {
		us = 1
	}
	o := &s.obs[h]
	o.mu.Lock()
	defer o.mu.Unlock()
	o.scans++
	o.sumUS += us
	o.latency.Add(math.Log10(us))
}

// ShardInfo is one shard's observable state. Latency holds the shard's
// scan-latency bucket counts (log10-µs buckets over [0, 6), 24
// buckets, the serving layer's scheme).
type ShardInfo struct {
	Index   int     `json:"index"`
	Rows    int     `json:"rows"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Scans   uint64  `json:"scans"`
	Latency []int64 `json:"-"`
	// LatencySumUS is the total scan time in microseconds (the _sum
	// series of the Prometheus histogram rendered from Latency).
	LatencySumUS float64 `json:"-"`
}

// Snapshot is a point-in-time view of a sharded table's layout and
// per-shard scan counters, for /statusz and /metrics.
type Snapshot struct {
	Table    string      `json:"table"`
	Strategy string      `json:"strategy"`
	Column   string      `json:"column"`
	Shards   []ShardInfo `json:"shards"`
	Pruned   uint64      `json:"pruned"`
}

// Snapshot captures the current layout and counters.
func (s *Sharded) Snapshot() Snapshot {
	snap := Snapshot{
		Table:    s.Name,
		Strategy: s.Layout.Strategy.String(),
		Column:   s.Layout.Column,
		Pruned:   s.pruned.Load(),
	}
	for i, sh := range s.Shards {
		o := &s.obs[i]
		o.mu.Lock()
		counts := append([]int64(nil), o.latency.Counts...)
		scans, sumUS := o.scans, o.sumUS
		o.mu.Unlock()
		snap.Shards = append(snap.Shards, ShardInfo{
			Index: sh.Index, Rows: sh.Rows, Lo: sh.Lo, Hi: sh.Hi,
			Scans: scans, Latency: counts, LatencySumUS: sumUS,
		})
	}
	return snap
}

// PrunedCount reports how many shard scans were skipped by bound
// pruning since construction.
func (s *Sharded) PrunedCount() uint64 { return s.pruned.Load() }

// NumRows returns the total row count across shards.
func (s *Sharded) NumRows() int {
	n := 0
	for _, sh := range s.Shards {
		n += sh.Rows
	}
	return n
}

// forEach runs fn(k) for k in [0, n) over a bounded worker pool.
// Workers pull indices from a shared counter, so a slow shard does not
// serialize the rest; a canceled ctx stops workers from *starting* new
// indices (work in flight unwinds through the engine's own per-block
// cancellation checks).
func forEach(ctx context.Context, workers, n int, fn func(k int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			if ctx.Err() != nil {
				return
			}
			fn(k)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= n || ctx.Err() != nil {
					return
				}
				fn(k)
			}
		}()
	}
	wg.Wait()
}
