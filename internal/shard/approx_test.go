package shard

import (
	"context"
	"math"
	"testing"

	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

func buildPrepared(t *testing.T, s *Sharded, cfg core.BuildConfig) *Prepared {
	t.Helper()
	p, err := Prepare(context.Background(), s, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func approxConfig() core.BuildConfig {
	return core.BuildConfig{
		Template:   cube.Template{Agg: "v", Dims: []string{"c"}},
		SampleRate: 0.2,
		CellBudget: 64,
		Seed:       7,
	}
}

func TestPrepareBasics(t *testing.T) {
	tbl := intTable(t, 10000, 11)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 4})
	p := buildPrepared(t, s, approxConfig())
	if p.Confidence != 0.95 {
		t.Errorf("default confidence = %v", p.Confidence)
	}
	if len(p.Procs) != 4 {
		t.Fatalf("%d procs, want 4", len(p.Procs))
	}
	total := 0
	for h, proc := range p.Procs {
		if proc == nil {
			t.Fatalf("shard %d (non-empty) has no processor", h)
		}
		total += proc.Sample.Size()
	}
	if total != p.SampleSize() {
		t.Errorf("SampleSize = %d, per-shard sum = %d", p.SampleSize(), total)
	}
	// Each shard drew ~rate·rows; the total should be near rate·n.
	if want := int(0.2 * 10000); total < want/2 || total > want*2 {
		t.Errorf("total sample rows = %d, want near %d", total, want)
	}

	// A prebuilt global sample cannot be split across shards.
	cfg := approxConfig()
	sm, err := sample.NewUniform(tbl, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PrebuiltSample = sm
	if _, err := Prepare(context.Background(), s, cfg, 1); err == nil {
		t.Error("PrebuiltSample was not rejected")
	}
}

// TestMergeFormula pins the stratified composition itself: the merged
// point estimate must equal the sum of per-shard answers and the merged
// half-width must equal λ·sqrt(Σ (hw_h/λ)²), both to ~1e-12 — the
// deterministic part of the CI merge, independent of whether any
// estimator is well calibrated.
func TestMergeFormula(t *testing.T) {
	tbl := intTable(t, 12000, 12)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 4})
	p := buildPrepared(t, s, approxConfig())
	q := engine.Query{Func: engine.Sum, Col: "v",
		Ranges: []engine.Range{{Col: "c", Lo: 5, Hi: 40}}}

	merged, err := p.Answer(context.Background(), q, 2)
	if err != nil {
		t.Fatal(err)
	}

	lambda := stats.ZScore(p.Confidence)
	var wantValue, varSum float64
	for _, h := range p.activeWithProc(q) {
		a, err := p.Procs[h].Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		wantValue += a.Estimate.Value
		w := a.Estimate.HalfWidth / lambda
		varSum += w * w
	}
	wantHW := lambda * math.Sqrt(varSum)

	if !stats.ApproxEqual(merged.Estimate.Value, wantValue, 1e-12) {
		t.Errorf("merged value %v, per-shard sum %v", merged.Estimate.Value, wantValue)
	}
	if !stats.ApproxEqual(merged.Estimate.HalfWidth, wantHW, 1e-12) {
		t.Errorf("merged hw %v, composed hw %v", merged.Estimate.HalfWidth, wantHW)
	}
	if merged.Estimate.Confidence != p.Confidence {
		t.Errorf("merged confidence = %v", merged.Estimate.Confidence)
	}
}

// TestAnswerVsSingleStratum compares the sharded estimator against the
// unsharded one on the same queries: the point estimates must agree to
// a few percent of the truth, the truth must be covered by (an inflated
// multiple of) each interval, and the merged half-width must be the
// same order of magnitude as the single-stratum one. The estimators
// differ legitimately — per-shard samples are independent draws and the
// stratified sum applies a finite-population correction the per-shard
// uniform CLT does not — so the width check is a factor band, not an
// equality.
func TestAnswerVsSingleStratum(t *testing.T) {
	tbl := intTable(t, 30000, 13)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 4})
	p := buildPrepared(t, s, approxConfig())

	single, _, err := core.Build(context.Background(), tbl, approxConfig())
	if err != nil {
		t.Fatal(err)
	}

	for _, q := range []engine.Query{
		{Func: engine.Sum, Col: "v", Ranges: []engine.Range{{Col: "c", Lo: 5, Hi: 40}}},
		{Func: engine.Count, Col: "", Ranges: []engine.Range{{Col: "c", Lo: 10, Hi: 30}}},
	} {
		truth, err := tbl.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := p.Answer(context.Background(), q, 2)
		if err != nil {
			t.Fatal(err)
		}
		base, err := single.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		scale := math.Max(math.Abs(truth.Value), 1)
		if rel := math.Abs(merged.Estimate.Value-truth.Value) / scale; rel > 0.05 {
			t.Errorf("%v: sharded estimate off truth by %v", q, rel)
		}
		if math.Abs(merged.Estimate.Value-truth.Value) > 4*merged.Estimate.HalfWidth+1e-9 {
			t.Errorf("%v: truth %v far outside sharded CI %v ± %v",
				q, truth.Value, merged.Estimate.Value, merged.Estimate.HalfWidth)
		}
		if base.Estimate.HalfWidth > 0 {
			ratio := merged.Estimate.HalfWidth / base.Estimate.HalfWidth
			if ratio < 0.1 || ratio > 10 {
				t.Errorf("%v: sharded hw %v vs single-stratum hw %v (ratio %v)",
					q, merged.Estimate.HalfWidth, base.Estimate.HalfWidth, ratio)
			}
		}
	}
}

func TestAnswerAvg(t *testing.T) {
	tbl := intTable(t, 20000, 14)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 4})
	p := buildPrepared(t, s, approxConfig())
	q := engine.Query{Func: engine.Avg, Col: "v",
		Ranges: []engine.Range{{Col: "c", Lo: 5, Hi: 45}}}
	truth, err := tbl.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := p.Answer(context.Background(), q, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The measure averages ~25 over a [-50, 150) support; a few units of
	// absolute error is the right scale here.
	if math.Abs(ans.Estimate.Value-truth.Value) > 5 {
		t.Errorf("AVG estimate %v, truth %v", ans.Estimate.Value, truth.Value)
	}
	if ans.Estimate.HalfWidth <= 0 {
		t.Errorf("AVG half-width = %v", ans.Estimate.HalfWidth)
	}
}

func TestAnswerMinMax(t *testing.T) {
	tbl := intTable(t, 8000, 15)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 4})
	cfg := approxConfig()
	cfg.WithMinMax = true
	p := buildPrepared(t, s, cfg)
	for _, f := range []engine.AggFunc{engine.Min, engine.Max} {
		q := engine.Query{Func: f, Col: "v",
			Ranges: []engine.Range{{Col: "c", Lo: 10, Hi: 35}}}
		truth, err := tbl.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := p.Answer(context.Background(), q, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Extrema answers are exact (served from per-shard indexes).
		if !stats.ExactEqual(ans.Estimate.Value, truth.Value) {
			t.Errorf("%v: sharded %v != exact %v", f, ans.Estimate.Value, truth.Value)
		}
	}
}

func TestAnswerGroups(t *testing.T) {
	tbl := intTable(t, 24000, 16)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 4})
	p := buildPrepared(t, s, approxConfig())
	q := engine.Query{Func: engine.Sum, Col: "v", GroupBy: []string{"g"},
		Ranges: []engine.Range{{Col: "c", Lo: 0, Hi: 45}}}
	truth, err := tbl.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]float64, len(truth.Groups))
	for _, g := range truth.Groups {
		byKey[g.Key] = g.Value
	}
	groups, err := p.AnswerGroups(context.Background(), q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Fatal("no group answers")
	}
	for i := 1; i < len(groups); i++ {
		if groups[i-1].Key >= groups[i].Key {
			t.Fatalf("group answers not sorted: %q before %q", groups[i-1].Key, groups[i].Key)
		}
	}
	for _, g := range groups {
		want, ok := byKey[g.Key]
		if !ok {
			t.Errorf("group %q not in truth", g.Key)
			continue
		}
		scale := math.Max(math.Abs(want), 1)
		if rel := math.Abs(g.Answer.Estimate.Value-want) / scale; rel > 0.25 {
			t.Errorf("group %q estimate %v, truth %v (rel %v)", g.Key, g.Answer.Estimate.Value, want, rel)
		}
	}

	// Answer refuses GROUP BY; AnswerGroups refuses its absence.
	if _, err := p.Answer(context.Background(), q, 1); err == nil {
		t.Error("Answer accepted a GROUP BY query")
	}
	scalar := q
	scalar.GroupBy = nil
	if _, err := p.AnswerGroups(context.Background(), scalar, 1); err == nil {
		t.Error("AnswerGroups accepted a scalar query")
	}
}

// TestBootstrapMerge pins the bootstrap composition: points add, widths
// compose as sqrt(Σ hw²) over per-shard bootstraps with independent
// seeded streams — recomputing each shard's bootstrap with the same
// derived seed must reproduce the merged answer exactly.
func TestBootstrapMerge(t *testing.T) {
	tbl := intTable(t, 12000, 17)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 3})
	p := buildPrepared(t, s, approxConfig())
	q := engine.Query{Func: engine.Sum, Col: "v",
		Ranges: []engine.Range{{Col: "c", Lo: 5, Hi: 40}}}
	const resamples = 200
	const seed = 0xfeed

	merged, err := p.AnswerBootstrap(context.Background(), q, resamples, seed, 2)
	if err != nil {
		t.Fatal(err)
	}

	var wantValue, hw2 float64
	for _, h := range p.activeWithProc(q) {
		a, err := p.Procs[h].AnswerBootstrap(context.Background(), q, resamples,
			seed+uint64(h+1)*seedStride, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantValue += a.Estimate.Value
		hw2 += a.Estimate.HalfWidth * a.Estimate.HalfWidth
	}
	if !stats.ApproxEqual(merged.Estimate.Value, wantValue, 1e-12) {
		t.Errorf("bootstrap merged value %v, per-shard sum %v", merged.Estimate.Value, wantValue)
	}
	if !stats.ApproxEqual(merged.Estimate.HalfWidth, math.Sqrt(hw2), 1e-12) {
		t.Errorf("bootstrap merged hw %v, composed %v", merged.Estimate.HalfWidth, math.Sqrt(hw2))
	}

	// Determinism: the same seed reproduces the same interval.
	again, err := p.AnswerBootstrap(context.Background(), q, resamples, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ExactEqual(merged.Estimate.Value, again.Estimate.Value) ||
		!stats.ExactEqual(merged.Estimate.HalfWidth, again.Estimate.HalfWidth) {
		t.Error("bootstrap answer not reproducible under a fixed seed")
	}

	// Coverage sanity against the exact answer.
	truth, err := tbl.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(merged.Estimate.Value-truth.Value) > 4*merged.Estimate.HalfWidth+1e-9 {
		t.Errorf("truth %v far outside bootstrap CI %v ± %v",
			truth.Value, merged.Estimate.Value, merged.Estimate.HalfWidth)
	}

	// Unsupported shapes refuse.
	if _, err := p.AnswerBootstrap(context.Background(), engine.Query{Func: engine.Avg, Col: "v"}, 10, 1, 1); err == nil {
		t.Error("bootstrap accepted AVG")
	}
	gq := q
	gq.GroupBy = []string{"g"}
	if _, err := p.AnswerBootstrap(context.Background(), gq, 10, 1, 1); err == nil {
		t.Error("bootstrap accepted GROUP BY")
	}
}

// TestPruningTightensCI: a query whose range prunes shards must not
// widen the interval — pruned shards contribute exactly zero, so the
// merged variance only drops.
func TestPruningTightensCI(t *testing.T) {
	tbl := intTable(t, 16000, 18)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 8})
	p := buildPrepared(t, s, approxConfig())
	q := engine.Query{Func: engine.Sum, Col: "v",
		Ranges: []engine.Range{{Col: "k", Lo: 100, Hi: 140}}}
	if got := len(p.activeWithProc(q)); got >= 8 {
		t.Fatalf("selective range kept %d of 8 shards active", got)
	}
	ans, err := p.Answer(context.Background(), q, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := tbl.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans.Estimate.Value-truth.Value) > 4*ans.Estimate.HalfWidth+math.Abs(truth.Value)*0.1+1e-9 {
		t.Errorf("pruned answer %v ± %v vs truth %v", ans.Estimate.Value, ans.Estimate.HalfWidth, truth.Value)
	}
}
