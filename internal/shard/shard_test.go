package shard

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// intTable builds a table whose measure column holds integer values, so
// SUM/AVG/VAR moments stay exactly representable in float64 and any
// association of the additions yields bit-identical results — the
// precondition for the ExactEqual assertions below. The k column is
// uncorrelated with row order (straddle-heavy for zone maps, and the
// interesting case for range re-clustering).
func intTable(t *testing.T, n int, seed uint64) *engine.Table {
	t.Helper()
	r := stats.NewRNG(seed)
	k := make([]int64, n)
	c := make([]int64, n)
	v := make([]float64, n)
	g := make([]string, n)
	groups := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < n; i++ {
		k[i] = int64(r.Intn(1000))
		c[i] = int64(r.Intn(50))
		v[i] = float64(r.Intn(200) - 50)
		g[i] = groups[r.Intn(len(groups))]
	}
	return engine.MustNewTable("t",
		engine.NewIntColumn("k", k),
		engine.NewIntColumn("c", c),
		engine.NewFloatColumn("v", v),
		engine.NewStringColumn("g", g),
	)
}

// floatTable is intTable with a continuous measure (additions round, so
// equivalence is only up to reassociation error).
func floatTable(t *testing.T, n int, seed uint64) *engine.Table {
	t.Helper()
	r := stats.NewRNG(seed)
	k := make([]int64, n)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		k[i] = int64(r.Intn(1000))
		v[i] = 100 + 15*r.NormFloat64()
	}
	return engine.MustNewTable("t",
		engine.NewIntColumn("k", k),
		engine.NewFloatColumn("v", v),
	)
}

func mustPartition(t *testing.T, tbl *engine.Table, layout Layout) *Sharded {
	t.Helper()
	s, err := Partition(tbl, layout)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPartitionInvariants(t *testing.T) {
	tbl := intTable(t, 5000, 1)
	for _, layout := range []Layout{
		{Strategy: ByRange, Column: "k", N: 1},
		{Strategy: ByRange, Column: "k", N: 4},
		{Strategy: ByRange, Column: "k", N: 7},
		{Strategy: ByHash, Column: "k", N: 4},
	} {
		s := mustPartition(t, tbl, layout)
		if got := len(s.Shards); got != layout.N {
			t.Fatalf("%v: %d shards, want %d", layout, got, layout.N)
		}
		if got := s.NumRows(); got != tbl.NumRows() {
			t.Errorf("%v: shards hold %d rows, table has %d", layout, got, tbl.NumRows())
		}
		for h, sh := range s.Shards {
			if sh.Index != h {
				t.Errorf("%v: shard %d has index %d", layout, h, sh.Index)
			}
			if sh.Rows != sh.Table.NumRows() {
				t.Errorf("%v: shard %d Rows=%d but table has %d", layout, h, sh.Rows, sh.Table.NumRows())
			}
			if sh.Rows == 0 {
				continue
			}
			col := sh.Table.MustColumn("k")
			for i := 0; i < sh.Rows; i++ {
				if v := col.Ordinal(i); v < sh.Lo || v > sh.Hi {
					t.Fatalf("%v: shard %d row %d value %v outside bounds [%v, %v]",
						layout, h, i, v, sh.Lo, sh.Hi)
				}
			}
		}
		// Range shards tile the column's sort order: bounds must not
		// interleave beyond boundary ties.
		if layout.Strategy == ByRange {
			for h := 1; h < layout.N; h++ {
				prev, cur := s.Shards[h-1], s.Shards[h]
				if prev.Rows == 0 || cur.Rows == 0 {
					continue
				}
				if cur.Lo < prev.Hi {
					t.Errorf("%v: shard %d Lo %v < shard %d Hi %v", layout, h, cur.Lo, h-1, prev.Hi)
				}
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	tbl := intTable(t, 100, 2)
	if _, err := Partition(tbl, Layout{Strategy: ByRange, Column: "k", N: 0}); err == nil {
		t.Error("N=0 did not fail")
	}
	if _, err := Partition(tbl, Layout{Strategy: ByRange, Column: "nope", N: 2}); err == nil {
		t.Error("unknown column did not fail")
	}
	if _, err := Partition(tbl, Layout{Strategy: Strategy(99), Column: "k", N: 2}); err == nil {
		t.Error("unknown strategy did not fail")
	}
}

func TestRangePruning(t *testing.T) {
	tbl := intTable(t, 8000, 3)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 8})

	// A narrow range on the layout column hits few shards.
	narrow := []engine.Range{{Col: "k", Lo: 500, Hi: 520}}
	active := s.activeShards(narrow)
	if len(active) == 0 || len(active) > 2 {
		t.Errorf("narrow range active shards = %v, want 1-2 of 8", active)
	}
	if s.PrunedCount() == 0 {
		t.Error("pruned counter did not move")
	}

	// A range on another column prunes nothing.
	if got := s.activeShards([]engine.Range{{Col: "c", Lo: 0, Hi: 10}}); len(got) != 8 {
		t.Errorf("off-column range pruned to %v", got)
	}

	// Hash layouts never prune.
	hs := mustPartition(t, tbl, Layout{Strategy: ByHash, Column: "k", N: 8})
	if got := hs.activeShards(narrow); len(got) != 8 {
		t.Errorf("hash layout pruned to %v", got)
	}
	if hs.PrunedCount() != 0 {
		t.Error("hash layout counted prunes")
	}

	// Pruned shards cannot change the answer: the pruned result must be
	// bit-identical to the unsharded scan.
	q := engine.Query{Func: engine.Sum, Col: "v", Ranges: narrow}
	want, err := tbl.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Execute(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ExactEqual(got.Value, want.Value) {
		t.Errorf("pruned scan = %v, unsharded = %v", got.Value, want.Value)
	}
}

// TestExactEquivalenceRandomized pins sharded exact answers bit-identical
// (stats.ExactEqual) to the unsharded scan across random queries, shard
// counts, strategies and fan-outs. The measure is integer-valued, so
// every aggregate's moments are exact under any summation order.
func TestExactEquivalenceRandomized(t *testing.T) {
	tbl := intTable(t, 12000, 4)
	r := stats.NewRNG(99)
	funcs := []engine.AggFunc{engine.Sum, engine.Count, engine.Avg, engine.Var, engine.Min, engine.Max}

	randQuery := func() engine.Query {
		q := engine.Query{Func: funcs[r.Intn(len(funcs))], Col: "v"}
		for _, col := range []string{"k", "c"} {
			if r.Intn(2) == 0 {
				continue
			}
			max := 1000.0
			if col == "c" {
				max = 50
			}
			lo := float64(r.Intn(int(max)))
			hi := lo + float64(r.Intn(int(max/4))+1)
			q.Ranges = append(q.Ranges, engine.Range{Col: col, Lo: lo, Hi: hi})
		}
		if r.Intn(3) == 0 {
			q.GroupBy = []string{"g"}
		}
		return q
	}

	layouts := []Layout{
		{Strategy: ByRange, Column: "k", N: 1},
		{Strategy: ByRange, Column: "k", N: 3},
		{Strategy: ByRange, Column: "k", N: 8},
		{Strategy: ByHash, Column: "k", N: 5},
	}
	sharded := make([]*Sharded, len(layouts))
	for i, layout := range layouts {
		sharded[i] = mustPartition(t, tbl, layout)
	}

	for trial := 0; trial < 60; trial++ {
		q := randQuery()
		want, err := tbl.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		// The sharded group order is sorted by key; sort the oracle's
		// first-seen order the same way.
		wantGroups := append([]engine.GroupRow(nil), want.Groups...)
		sort.Slice(wantGroups, func(i, j int) bool { return wantGroups[i].Key < wantGroups[j].Key })

		for i, s := range sharded {
			workers := 1 + trial%4
			got, err := s.Execute(q, workers)
			if err != nil {
				t.Fatalf("%v / %v: %v", layouts[i], q, err)
			}
			if len(q.GroupBy) == 0 {
				if !stats.ExactEqual(got.Value, want.Value) {
					t.Errorf("%v / %v: sharded %v != unsharded %v", layouts[i], q, got.Value, want.Value)
				}
				continue
			}
			if len(got.Groups) != len(wantGroups) {
				t.Fatalf("%v / %v: %d groups, want %d", layouts[i], q, len(got.Groups), len(wantGroups))
			}
			for j, gr := range got.Groups {
				w := wantGroups[j]
				if gr.Key != w.Key || !stats.ExactEqual(gr.Value, w.Value) || gr.Rows != w.Rows {
					t.Errorf("%v / %v: group %d = %+v, want %+v", layouts[i], q, j, gr, w)
				}
			}
		}
	}
}

// TestExactEquivalenceFloat covers a continuous measure, where sharded
// sums reassociate: equality holds to relative 1e-12, not bit-for-bit.
func TestExactEquivalenceFloat(t *testing.T) {
	tbl := floatTable(t, 10000, 5)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 4})
	for _, q := range []engine.Query{
		{Func: engine.Sum, Col: "v"},
		{Func: engine.Avg, Col: "v", Ranges: []engine.Range{{Col: "k", Lo: 100, Hi: 800}}},
		{Func: engine.Var, Col: "v"},
	} {
		want, err := tbl.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Execute(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.ApproxEqual(got.Value, want.Value, 1e-12) {
			t.Errorf("%v: sharded %v vs unsharded %v", q, got.Value, want.Value)
		}
	}
	// MIN/MAX stay bit-exact even for floats (folding, not summing).
	for _, f := range []engine.AggFunc{engine.Min, engine.Max} {
		q := engine.Query{Func: f, Col: "v"}
		want, _ := tbl.Execute(q)
		got, err := s.Execute(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.ExactEqual(got.Value, want.Value) {
			t.Errorf("%v: sharded %v != unsharded %v", q, got.Value, want.Value)
		}
	}
}

func TestExecuteValidates(t *testing.T) {
	tbl := intTable(t, 1000, 6)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 4})
	// Unknown columns fail even when the ranges would prune every shard.
	q := engine.Query{Func: engine.Sum, Col: "nope",
		Ranges: []engine.Range{{Col: "k", Lo: -100, Hi: -50}}}
	if _, err := s.Execute(q, 1); err == nil {
		t.Error("unknown measure column did not fail")
	}
	q = engine.Query{Func: engine.Sum, Col: "v",
		Ranges: []engine.Range{{Col: "nope", Lo: 0, Hi: 1}}}
	if _, err := s.Execute(q, 1); err == nil {
		t.Error("unknown range column did not fail")
	}
	q = engine.Query{Func: engine.Sum, Col: "v", GroupBy: []string{"nope"}}
	if _, err := s.Execute(q, 1); err == nil {
		t.Error("unknown group column did not fail")
	}
}

func TestExecuteContextCancel(t *testing.T) {
	tbl := intTable(t, 20000, 7)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.ExecuteContext(ctx, engine.Query{Func: engine.Sum, Col: "v"}, 2)
	if err == nil {
		t.Fatal("canceled context did not fail")
	}
}

func TestSnapshot(t *testing.T) {
	tbl := intTable(t, 4000, 8)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 4})
	q := engine.Query{Func: engine.Sum, Col: "v",
		Ranges: []engine.Range{{Col: "k", Lo: 0, Hi: 100}}}
	if _, err := s.Execute(q, 2); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Table != "t" || snap.Strategy != "range" || snap.Column != "k" {
		t.Errorf("snapshot header = %+v", snap)
	}
	if len(snap.Shards) != 4 {
		t.Fatalf("%d shard infos, want 4", len(snap.Shards))
	}
	if snap.Pruned == 0 {
		t.Error("selective query pruned nothing")
	}
	var scans uint64
	for _, sh := range snap.Shards {
		scans += sh.Scans
		if len(sh.Latency) != latBuckets {
			t.Errorf("shard %d latency has %d buckets, want %d", sh.Index, len(sh.Latency), latBuckets)
		}
	}
	if scans == 0 {
		t.Error("no scans recorded")
	}
	if int(scans)+int(snap.Pruned) != 4 {
		t.Errorf("scans %d + pruned %d != shard count 4", scans, snap.Pruned)
	}
}

func TestLayoutSignature(t *testing.T) {
	a := Layout{Strategy: ByRange, Column: "k", N: 4}
	b := Layout{Strategy: ByHash, Column: "k", N: 4}
	c := Layout{Strategy: ByRange, Column: "k", N: 8}
	if a.Signature() == b.Signature() || a.Signature() == c.Signature() {
		t.Errorf("signatures collide: %q %q %q", a.Signature(), b.Signature(), c.Signature())
	}
	if a.Signature() != "range:k:4" {
		t.Errorf("signature = %q", a.Signature())
	}
}

func TestShardNames(t *testing.T) {
	tbl := intTable(t, 100, 9)
	s := mustPartition(t, tbl, Layout{Strategy: ByRange, Column: "k", N: 2})
	for h, sh := range s.Shards {
		want := fmt.Sprintf("t#%d", h)
		if sh.Table.Name != want {
			t.Errorf("shard %d table name %q, want %q", h, sh.Table.Name, want)
		}
	}
}
