package exec

import (
	"context"
	"errors"
	"strings"
	"testing"

	"aqppp/internal/contract"
)

// TestContractCacheKey pins the contract fold: two contracts over one
// statement never collide, and an identical contract reproduces the
// key byte for byte.
func TestContractCacheKey(t *testing.T) {
	tbl := execTable(2000)
	proc := execProcessor(t, tbl)
	stmt := "SELECT SUM(v) FROM t WHERE k BETWEEN 50 AND 150"
	key := func(c contract.Contract) string {
		t.Helper()
		p, err := PlanContractStatement(proc, tbl, stmt, c, 7)
		if err != nil {
			t.Fatalf("plan (%+v): %v", c, err)
		}
		return p.CacheKey()
	}
	loose := key(contract.Contract{MaxRelError: 0.5})
	if again := key(contract.Contract{MaxRelError: 0.5}); again != loose {
		t.Errorf("same contract, different keys: %q vs %q", loose, again)
	}
	if tight := key(contract.Contract{MaxRelError: 0.25}); tight == loose {
		t.Errorf("distinct contracts share key %q", loose)
	}
	if !strings.Contains(loose, "|contract=") {
		t.Errorf("contract key %q does not carry the contract fold", loose)
	}
	// An ordinary approx plan of the same statement must not collide
	// with any contract plan.
	plain, err := PlanQueryStatement(proc, tbl, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.CacheKey() == loose {
		t.Error("plain approx plan shares a key with a contract plan")
	}
}

// TestContractPlanErrors pins the plan-time classification: infeasible
// contracts reject with kind ContractInfeasible before any run, bad
// contracts are Parse, GROUP BY is Unsupported.
func TestContractPlanErrors(t *testing.T) {
	tbl := execTable(2000)
	proc := execProcessor(t, tbl)
	_, err := PlanContractStatement(proc, tbl,
		"SELECT SUM(v) FROM t WHERE k BETWEEN 50 AND 150",
		contract.Contract{MaxRelError: 1e-12}, 7)
	if KindOf(err) != ContractInfeasible {
		t.Errorf("impossible bound: kind = %v, want ContractInfeasible", KindOf(err))
	}
	var inf *contract.InfeasibleError
	if !errors.As(err, &inf) {
		t.Error("ContractInfeasible error does not unwrap to *InfeasibleError")
	}
	_, err = PlanContractStatement(proc, tbl,
		"SELECT SUM(v) FROM t", contract.Contract{}, 7)
	if KindOf(err) != Parse {
		t.Errorf("empty contract: kind = %v, want Parse", KindOf(err))
	}
	_, err = PlanContractStatement(proc, tbl,
		"SELECT SUM(v) FROM t GROUP BY k", contract.Contract{MaxRelError: 0.5}, 7)
	if KindOf(err) != Unsupported {
		t.Errorf("GROUP BY contract: kind = %v, want Unsupported", KindOf(err))
	}
	if ContractInfeasible.String() != "contract-infeasible" {
		t.Errorf("kind string = %q, want wire-stable %q", ContractInfeasible.String(), "contract-infeasible")
	}
}

// TestContractRunMeetsBound runs accepted contracts end to end through
// the executor and requires the realized interval to honor the bound —
// the ladder's whole point is that acceptance is verified, not assumed.
func TestContractRunMeetsBound(t *testing.T) {
	tbl := execTable(20000)
	proc := execProcessor(t, tbl)
	ex := New()
	for _, rel := range []float64{0.5, 0.1, 0.05} {
		c := contract.Contract{MaxRelError: rel}
		p, err := PlanContractStatement(proc, tbl,
			"SELECT SUM(v) FROM t WHERE k BETWEEN 40 AND 160", c, 7)
		if err != nil {
			t.Fatalf("rel %v: %v", rel, err)
		}
		out, err := ex.Run(context.Background(), p, Budget{})
		if err != nil {
			t.Fatalf("rel %v: run: %v", rel, err)
		}
		if !c.Met(out.Answer.Estimate.Value, out.Answer.Estimate.HalfWidth) {
			t.Errorf("rel %v: realized hw %v at value %v misses the bound (strategy %s)",
				rel, out.Answer.Estimate.HalfWidth, out.Answer.Estimate.Value, out.ContractStrategy)
		}
		if out.ContractStrategy == "" {
			t.Errorf("rel %v: outcome carries no strategy", rel)
		}
	}
}

// TestContractExactRung drives a contract only an exact scan can meet
// and checks the exact rung answers with a zero-width interval matching
// the engine.
func TestContractExactRung(t *testing.T) {
	tbl := execTable(5000)
	proc := execProcessor(t, tbl)
	stmt := "SELECT SUM(v) FROM t WHERE k BETWEEN 50 AND 150"
	c := contract.Contract{MaxRelError: 1e-12, AllowExact: true}
	p, err := PlanContractStatement(proc, tbl, stmt, c, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Decision.Strategy != contract.StrategyExact {
		t.Fatalf("strategy = %v, want exact", p.Decision.Strategy)
	}
	out, err := New().Run(context.Background(), p, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if out.ContractStrategy != "exact" || out.Answer.Estimate.HalfWidth != 0 {
		t.Errorf("exact rung: strategy %q hw %v, want exact/0",
			out.ContractStrategy, out.Answer.Estimate.HalfWidth)
	}
	exact, err := tbl.Execute(p.Query)
	if err != nil {
		t.Fatal(err)
	}
	if out.Answer.Estimate.Value != exact.Value {
		t.Errorf("exact rung value %v != engine %v", out.Answer.Estimate.Value, exact.Value)
	}
}

// TestContractCanceled verifies the ladder honors context cancellation
// between rungs with the usual Canceled classification.
func TestContractCanceled(t *testing.T) {
	tbl := execTable(5000)
	proc := execProcessor(t, tbl)
	p, err := PlanContractStatement(proc, tbl,
		"SELECT SUM(v) FROM t WHERE k BETWEEN 50 AND 150",
		contract.Contract{MaxRelError: 0.5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = New().Run(ctx, p, Budget{})
	if KindOf(err) != Canceled {
		t.Errorf("pre-canceled run: kind = %v, want Canceled", KindOf(err))
	}
}
