package exec

import (
	"context"
	"math"

	"aqppp/internal/aqp"
	"aqppp/internal/contract"
	"aqppp/internal/core"
	"aqppp/internal/engine"
	"aqppp/internal/ident"
)

// dispatchContract runs a PlanContract plan's escalation ladder: the
// planner's chosen rung first, then strictly costlier rungs, until one
// rung's *realized* interval meets the contract (Decide predicted it
// would; the run verifies). Exhausting the ladder without meeting the
// bound returns the contract-infeasible kind — rare, since the planner
// already rejected contracts it could not predict a strategy for.
func (ex *Executor) dispatchContract(ctx context.Context, p *Plan, b Budget) (Outcome, error) {
	c := *p.Contract
	conf := c.ConfidenceOrDefault()
	full := p.Proc.Sample.Size()
	rungs := p.Decision.Ladder(full, c.AllowExact)
	bestHW := math.Inf(1)
	bestVal := 0.0
	for i, rung := range rungs {
		if err := ctx.Err(); err != nil {
			return Outcome{}, err
		}
		ans, err := ex.runRung(ctx, p, rung, conf, b)
		if err != nil {
			return Outcome{}, err
		}
		// A zero-width interval from a proper subsample is not evidence
		// of cube alignment — it usually means the subsample drew no
		// rows inside the unaligned remainder, so the diff estimator
		// silently degenerated. Such an answer would satisfy any
		// contract vacuously; escalate to the full-sample rung instead
		// of trusting it (and keep it out of the tightest-achievable
		// report for the same reason).
		if ans.Estimate.HalfWidth == 0 && rung.Strategy == contract.StrategyApprox && rung.Rows < full {
			continue
		}
		if ans.Estimate.HalfWidth < bestHW {
			bestHW, bestVal = ans.Estimate.HalfWidth, ans.Estimate.Value
		}
		if c.Met(ans.Estimate.Value, ans.Estimate.HalfWidth) {
			return Outcome{
				Answer:            ans,
				ContractStrategy:  rung.Strategy.String(),
				ContractEscalated: i > 0,
			}, nil
		}
	}
	rel := math.Inf(1)
	if bestVal != 0 {
		rel = bestHW / math.Abs(bestVal)
	}
	return Outcome{}, &contract.InfeasibleError{
		Contract:    c,
		TightestAbs: bestHW,
		TightestRel: rel,
		Reason:      "runtime: every permitted rung's realized interval missed the bound",
	}
}

// runRung executes one ladder rung.
func (ex *Executor) runRung(ctx context.Context, p *Plan, rung contract.Rung, conf float64, b Budget) (core.Answer, error) {
	switch rung.Strategy {
	case contract.StrategyCube, contract.StrategyApprox:
		return contract.AnswerAt(p.Proc, p.Query, rung.Rows, conf, p.Seed)

	case contract.StrategyBootstrap:
		resamples := p.Decision.Resamples
		if resamples <= 0 {
			resamples = core.DefaultResamples
		}
		if b.MaxResamples > 0 && resamples > b.MaxResamples {
			resamples = b.MaxResamples
		}
		sc, release, err := ex.scratchFor(p.Proc.Sample.Size(), b)
		if err != nil {
			return core.Answer{}, err
		}
		defer release()
		shadow := *p.Proc
		shadow.Confidence = conf
		return shadow.AnswerBootstrap(ctx, p.Query, resamples, p.Seed, sc)

	default: // contract.StrategyExact
		workers := p.Workers
		if workers == 0 {
			workers = ex.Workers
		}
		var res engine.Result
		var err error
		if workers > 1 {
			res, err = p.Table.ExecuteParallelContext(ctx, p.Query, workers)
		} else {
			res, err = p.Table.ExecuteContext(ctx, p.Query)
		}
		if err != nil {
			return core.Answer{}, err
		}
		// An exact scan is a zero-width interval at full confidence.
		return core.Answer{
			Estimate: aqp.Estimate{Value: res.Value, Confidence: 1},
			Pre:      ident.Pre{Phi: true},
			PreValue: res.Value,
		}, nil
	}
}
