// Package exec is the serving spine of aqppp: every public and internal
// query or prepare entry point compiles into a Plan (what to run) and
// hands it to an Executor (how to run it), which carries a
// context.Context and a per-query Budget down through the layers that
// actually loop — the engine's block kernels, the hill climber, the
// bootstrap resampler, and the progressive rounds — and maps every
// failure onto one small error taxonomy.
//
// The shape follows the middleware argument of VerdictDB (one request
// path for all AQP traffic) and PilotDB (the serving layer, not the
// caller, owns per-query guarantees): callers get cancellation,
// deadlines, resample caps and scratch-memory caps without any layer
// below knowing who is asking.
package exec

import (
	"context"
	"errors"
	"fmt"

	"aqppp/internal/contract"
	"aqppp/internal/core"
)

// Kind classifies an Error into the executor's unified taxonomy.
type Kind uint8

const (
	// Internal is the zero kind: an unexpected failure inside a lower
	// layer that the taxonomy does not model.
	Internal Kind = iota
	// Parse marks statements that do not parse or compile (bad syntax,
	// unknown columns, malformed literals).
	Parse
	// UnknownTable marks statements that target a table the resolver
	// does not know — including preparations invalidated by DB.Drop.
	UnknownTable
	// Unsupported marks well-formed requests the engine cannot serve
	// (e.g. an aggregate outside the plan kind's repertoire).
	Unsupported
	// Canceled marks queries unwound because the caller's context was
	// canceled or hit the caller's own deadline.
	Canceled
	// BudgetExceeded marks queries rejected or unwound by the per-query
	// Budget: its deadline fired, or a resample/scratch cap was blown.
	BudgetExceeded
	// Unavailable marks distributed queries that lost a required replica:
	// the replica was unreachable, timed out, or shed the partial request,
	// and the degraded-answer policy (if any) could not absorb the loss.
	Unavailable
	// ContractInfeasible marks contract queries no permitted strategy
	// can provably answer within the contracted error bound; the
	// wrapped *contract.InfeasibleError carries the tightest achievable
	// bound. Rejected at plan time, before any scan work.
	ContractInfeasible
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Parse:
		return "parse"
	case UnknownTable:
		return "unknown-table"
	case Unsupported:
		return "unsupported"
	case Canceled:
		return "canceled"
	case BudgetExceeded:
		return "budget-exceeded"
	case Unavailable:
		return "unavailable"
	case ContractInfeasible:
		return "contract-infeasible"
	default:
		return "internal"
	}
}

// Error is the executor's unified error: a Kind, the entry point that
// produced it, and the underlying cause. It unwraps to the cause, so
// errors.Is(err, context.Canceled) holds for Canceled-kind errors
// produced by a canceled context.
type Error struct {
	Kind Kind
	// Op names the entry point: "exact", "query", "bootstrap", "multi",
	// "prepare".
	Op string
	// Err is the underlying cause (never nil).
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("aqppp: %s: %s: %v", e.Op, e.Kind, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// KindOf extracts the Kind from an error produced by this package;
// other errors (including nil) report Internal.
func KindOf(err error) Kind {
	var e *Error
	if errors.As(err, &e) {
		return e.Kind
	}
	return Internal
}

// classify wraps a run error with the right kind. parent is the
// caller's context, run the (possibly budget-bounded) context the work
// actually ran under; budgeted says whether the executor imposed its
// own deadline on top.
func classify(parent, run context.Context, op string, budgeted bool, err error) error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return err // already classified at a lower level
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// The caller's context going bad is a cancellation; only a
		// deadline the budget itself imposed counts against the budget.
		if parent.Err() == nil && budgeted && run.Err() != nil {
			return &Error{Kind: BudgetExceeded, Op: op, Err: err}
		}
		return &Error{Kind: Canceled, Op: op, Err: err}
	}
	if errors.Is(err, core.ErrUnsupported) {
		return &Error{Kind: Unsupported, Op: op, Err: err}
	}
	var inf *contract.InfeasibleError
	if errors.As(err, &inf) {
		return &Error{Kind: ContractInfeasible, Op: op, Err: err}
	}
	return &Error{Kind: Internal, Op: op, Err: err}
}
