package exec

import (
	"context"
	"fmt"

	"aqppp/internal/core"
	"aqppp/internal/engine"
)

// Distributed answers plans over a replica fleet. internal/dist's
// coordinator implements it; exec defines it so the plan layer can
// route to remote shards without importing the network stack. The
// partial return reports that the answer was degraded — computed from
// surviving strata after a tolerated replica loss — and must never be
// cached.
type Distributed interface {
	// Signature renders the fleet's layout and topology generation
	// canonically for cache keys: answers computed under one topology
	// must never serve a plan running under another.
	Signature() string
	// Exact runs an exact query scatter-gather across the fleet.
	// Exact answers never degrade: a lost replica is an Unavailable
	// error.
	Exact(ctx context.Context, q engine.Query) (engine.Result, error)
	// Approx answers a scalar approximate query through the named
	// prepared handle on every active replica.
	Approx(ctx context.Context, handle string, q engine.Query) (core.Answer, bool, error)
	// ApproxGroups answers a GROUP BY approximate query.
	ApproxGroups(ctx context.Context, handle string, q engine.Query) ([]core.GroupAnswer, bool, error)
	// Bootstrap answers SUM/COUNT with per-replica bootstrap streams.
	Bootstrap(ctx context.Context, handle string, q engine.Query, resamples int, seed uint64) (core.Answer, bool, error)
}

// PlanDistQueryStatement compiles a statement against the fleet's
// schema table into a distributed AQP++ plan answered through the
// named prepared handle on every replica.
func PlanDistQueryStatement(d Distributed, handle string, tbl *engine.Table, statement string) (*Plan, error) {
	q, err := compileFor("query", tbl, statement)
	if err != nil {
		return nil, err
	}
	return &Plan{Kind: PlanApprox, Table: tbl, Query: q, Dist: d, DistHandle: handle}, nil
}

// PlanDistBootstrapStatement compiles a statement into a distributed
// bootstrap plan (independent seeded streams per replica, CI merge at
// the coordinator).
func PlanDistBootstrapStatement(d Distributed, handle string, tbl *engine.Table, statement string, resamples int, seed uint64) (*Plan, error) {
	q, err := compileFor("bootstrap", tbl, statement)
	if err != nil {
		return nil, err
	}
	return &Plan{Kind: PlanBootstrap, Table: tbl, Query: q, Dist: d, DistHandle: handle, Resamples: resamples, Seed: seed}, nil
}

// dispatchDist routes a plan to the fleet. The scratch and worker
// knobs do not apply — resampling happens on the replicas — but the
// resample cap does, enforced before any network round.
func (ex *Executor) dispatchDist(ctx context.Context, p *Plan, b Budget) (Outcome, error) {
	switch p.Kind {
	case PlanExact:
		res, err := p.Dist.Exact(ctx, p.Query)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Exact: res}, nil

	case PlanApprox:
		if len(p.Query.GroupBy) > 0 {
			groups, partial, err := p.Dist.ApproxGroups(ctx, p.DistHandle, p.Query)
			if err != nil {
				return Outcome{}, err
			}
			return Outcome{Groups: groups, Partial: partial}, nil
		}
		ans, partial, err := p.Dist.Approx(ctx, p.DistHandle, p.Query)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Answer: ans, Partial: partial}, nil

	case PlanBootstrap:
		resamples := p.Resamples
		if resamples <= 0 {
			resamples = core.DefaultResamples
		}
		if b.MaxResamples > 0 && resamples > b.MaxResamples {
			return Outcome{}, &Error{Kind: BudgetExceeded, Op: "bootstrap",
				Err: fmt.Errorf("%d resamples exceed the budget's cap of %d", resamples, b.MaxResamples)}
		}
		ans, partial, err := p.Dist.Bootstrap(ctx, p.DistHandle, p.Query, resamples, p.Seed)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Answer: ans, Partial: partial}, nil

	default:
		return Outcome{}, &Error{Kind: Unsupported, Op: "run",
			Err: fmt.Errorf("plan kind %v cannot run distributed", p.Kind)}
	}
}
