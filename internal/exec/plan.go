package exec

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"aqppp/internal/contract"
	"aqppp/internal/core"
	"aqppp/internal/engine"
	"aqppp/internal/shard"
	"aqppp/internal/sql"
)

// PlanKind selects the answer path a Plan runs.
type PlanKind uint8

const (
	// PlanExact scans the full table (serial by default; Workers > 1
	// parallelizes with block-aligned chunks).
	PlanExact PlanKind = iota
	// PlanApprox answers through one Prepared template's AQP++
	// processor (closed-form intervals).
	PlanApprox
	// PlanBootstrap answers through a processor with an empirical
	// bootstrap interval.
	PlanBootstrap
	// PlanMulti routes the query across a multi-template manager.
	PlanMulti
	// PlanContract answers under an a-priori error contract: the
	// planner's Decision names the cheapest strategy predicted to meet
	// the bound, and the executor runs the escalation ladder until a
	// rung's realized interval does.
	PlanContract
)

// String implements fmt.Stringer.
func (k PlanKind) String() string {
	switch k {
	case PlanExact:
		return "exact"
	case PlanApprox:
		return "query"
	case PlanBootstrap:
		return "bootstrap"
	case PlanMulti:
		return "multi"
	case PlanContract:
		return "contract"
	default:
		return fmt.Sprintf("PlanKind(%d)", uint8(k))
	}
}

// Plan is the executor's IR: what to run, fully resolved — the concrete
// table, the compiled predicate, and the processor or manager that will
// answer. Plans are built by the Plan* constructors (which own the
// parse/resolve/compile error classification) and run by Executor.Run.
type Plan struct {
	Kind  PlanKind
	Table *engine.Table
	Query engine.Query
	// Proc answers PlanApprox and PlanBootstrap plans.
	Proc *core.Processor
	// Mgr answers PlanMulti plans.
	Mgr *core.Manager
	// Resamples is the bootstrap replicate count (<= 0 selects the
	// default of 200); checked against Budget.MaxResamples at run time.
	Resamples int
	// Seed drives bootstrap resampling.
	Seed uint64
	// Workers bounds PlanExact parallelism; <= 1 runs the serial path
	// (bit-identical to Table.Execute). For sharded plans it bounds the
	// scatter-gather pool instead (<= 0 selects GOMAXPROCS).
	Workers int
	// Shards, when set, routes a PlanExact scan scatter-gather across
	// the table's partitions instead of the single-table path.
	Shards *shard.Sharded
	// ShardPrep, when set, answers PlanApprox/PlanBootstrap plans from
	// per-shard processors with a stratified CI merge (a shard is a
	// stratum); Proc is nil on such plans.
	ShardPrep *shard.Prepared
	// Dist, when set, routes the plan to a remote replica fleet (the
	// cross-process analogue of Shards/ShardPrep); Proc, Shards and
	// ShardPrep are nil on such plans.
	Dist Distributed
	// DistHandle names the prepared handle every replica answers
	// Dist-routed approx/bootstrap plans through.
	DistHandle string
	// Contract is the a-priori error bound of a PlanContract plan, and
	// Decision the planner's strategy choice for it (computed at plan
	// time from prepared state, so infeasible contracts never reach the
	// executor).
	Contract *contract.Contract
	Decision contract.Decision
}

// CacheKey renders the plan as a canonical string suitable for keying a
// response cache: the answer path (kind), the table, and the compiled
// query with its range conditions sorted, so two statements that parse
// and compile to the same work — regardless of WHERE-clause order,
// whitespace, or keyword case — share one key. Bootstrap plans fold the
// replicate count and seed in (they change the interval), and GROUP BY
// columns keep their order (it determines the group key rendering).
// The key deliberately excludes the Budget: a budget changes whether a
// plan completes, never what a completed plan answers.
func (p *Plan) CacheKey() string {
	var b strings.Builder
	b.WriteString(p.Kind.String())
	b.WriteByte('|')
	b.WriteString(p.Table.Name)
	b.WriteByte('|')
	b.WriteString(p.Query.Func.String())
	b.WriteByte('(')
	b.WriteString(p.Query.Col)
	b.WriteByte(')')
	// Ranges are rendered first and sorted as strings: range order in a
	// WHERE clause is semantically irrelevant (conjunction), and sorting
	// the rendered form avoids comparing floats. %x renders the exact
	// bits of each bound, so distinct bounds never collide.
	rendered := make([]string, len(p.Query.Ranges))
	for i, r := range p.Query.Ranges {
		rendered[i] = fmt.Sprintf("%s:%x..%x", r.Col, r.Lo, r.Hi)
	}
	sort.Strings(rendered)
	for _, r := range rendered {
		b.WriteByte('|')
		b.WriteString(r)
	}
	if len(p.Query.GroupBy) > 0 {
		b.WriteString("|by:")
		b.WriteString(strings.Join(p.Query.GroupBy, ","))
	}
	if p.Kind == PlanBootstrap {
		fmt.Fprintf(&b, "|n=%d|seed=%d", p.Resamples, p.Seed)
	}
	// The contract folds in whole: two requests with different bounds
	// (or escalation policies) may answer through different strategies,
	// so their answers cache independently.
	if p.Contract != nil {
		b.WriteString("|contract=")
		b.WriteString(p.Contract.Key())
	}
	// The shard layout folds into the key: merged float aggregates
	// reassociate differently across layouts, and per-shard samples
	// differ, so answers computed under one layout must never serve a
	// plan running under another. (Unsharded plans keep their exact
	// pre-sharding keys.)
	if p.Shards != nil {
		b.WriteString("|shards=")
		b.WriteString(p.Shards.Layout.Signature())
	} else if p.ShardPrep != nil {
		b.WriteString("|shards=")
		b.WriteString(p.ShardPrep.S.Layout.Signature())
	}
	// The fleet signature folds the replica topology generation in, so
	// cached answers die with the membership that computed them; the
	// handle distinguishes fleets serving several preparations.
	if p.Dist != nil {
		b.WriteString("|dist=")
		b.WriteString(p.Dist.Signature())
		if p.DistHandle != "" {
			b.WriteString("|dh=")
			b.WriteString(p.DistHandle)
		}
	}
	return b.String()
}

// TableSource resolves table names for PlanExact. *aqppp.DB implements
// it; any registry can.
type TableSource interface {
	LookupTable(name string) (*engine.Table, bool)
}

// PlanExactStatement parses a statement, resolves its table against src
// and compiles the predicate into an exact-scan plan.
func PlanExactStatement(src TableSource, statement string) (*Plan, error) {
	st, err := sql.Parse(statement)
	if err != nil {
		return nil, &Error{Kind: Parse, Op: "exact", Err: err}
	}
	tbl, ok := src.LookupTable(st.Table)
	if !ok {
		return nil, &Error{Kind: UnknownTable, Op: "exact", Err: fmt.Errorf("no table %q", st.Table)}
	}
	q, err := sql.Compile(st, tbl)
	if err != nil {
		return nil, &Error{Kind: Parse, Op: "exact", Err: err}
	}
	return &Plan{Kind: PlanExact, Table: tbl, Query: q}, nil
}

// PlanQueryStatement compiles a statement against a prepared
// processor's table into an AQP++ plan.
func PlanQueryStatement(proc *core.Processor, tbl *engine.Table, statement string) (*Plan, error) {
	q, err := compileFor("query", tbl, statement)
	if err != nil {
		return nil, err
	}
	return &Plan{Kind: PlanApprox, Table: tbl, Query: q, Proc: proc}, nil
}

// PlanQueryStruct wraps an already-compiled engine.Query into an AQP++
// plan (the advanced-use path that skips SQL).
func PlanQueryStruct(proc *core.Processor, tbl *engine.Table, q engine.Query) *Plan {
	return &Plan{Kind: PlanApprox, Table: tbl, Query: q, Proc: proc}
}

// PlanBootstrapStatement compiles a statement into a bootstrap plan.
func PlanBootstrapStatement(proc *core.Processor, tbl *engine.Table, statement string, resamples int, seed uint64) (*Plan, error) {
	q, err := compileFor("bootstrap", tbl, statement)
	if err != nil {
		return nil, err
	}
	return &Plan{Kind: PlanBootstrap, Table: tbl, Query: q, Proc: proc, Resamples: resamples, Seed: seed}, nil
}

// PlanShardedQueryStatement compiles a statement against a sharded
// preparation's source table into a scatter-gather AQP++ plan.
func PlanShardedQueryStatement(sp *shard.Prepared, tbl *engine.Table, statement string) (*Plan, error) {
	q, err := compileFor("query", tbl, statement)
	if err != nil {
		return nil, err
	}
	return &Plan{Kind: PlanApprox, Table: tbl, Query: q, ShardPrep: sp}, nil
}

// PlanShardedQueryStruct wraps an already-compiled engine.Query into a
// scatter-gather AQP++ plan.
func PlanShardedQueryStruct(sp *shard.Prepared, tbl *engine.Table, q engine.Query) *Plan {
	return &Plan{Kind: PlanApprox, Table: tbl, Query: q, ShardPrep: sp}
}

// PlanShardedBootstrapStatement compiles a statement into a per-shard
// bootstrap plan (independent seeded streams per shard, CI merge at the
// coordinator).
func PlanShardedBootstrapStatement(sp *shard.Prepared, tbl *engine.Table, statement string, resamples int, seed uint64) (*Plan, error) {
	q, err := compileFor("bootstrap", tbl, statement)
	if err != nil {
		return nil, err
	}
	return &Plan{Kind: PlanBootstrap, Table: tbl, Query: q, ShardPrep: sp, Resamples: resamples, Seed: seed}, nil
}

// PlanContractStatement compiles a statement against a prepared
// processor's table into a contract plan: the contract planner runs
// here, at plan time, so an infeasible contract fails fast (kind
// ContractInfeasible) before any cache, gate, or scan work.
func PlanContractStatement(proc *core.Processor, tbl *engine.Table, statement string, c contract.Contract, seed uint64) (*Plan, error) {
	q, err := compileFor("contract", tbl, statement)
	if err != nil {
		return nil, err
	}
	return PlanContractStruct(proc, tbl, q, c, seed)
}

// PlanContractStruct wraps an already-compiled engine.Query into a
// contract plan (the advanced-use path that skips SQL).
func PlanContractStruct(proc *core.Processor, tbl *engine.Table, q engine.Query, c contract.Contract, seed uint64) (*Plan, error) {
	d, err := contract.Decide(proc, q, c)
	if err != nil {
		var inf *contract.InfeasibleError
		if errors.As(err, &inf) {
			return nil, &Error{Kind: ContractInfeasible, Op: "contract", Err: err}
		}
		if errors.Is(err, core.ErrUnsupported) {
			return nil, &Error{Kind: Unsupported, Op: "contract", Err: err}
		}
		return nil, &Error{Kind: Parse, Op: "contract", Err: err}
	}
	cc := c
	return &Plan{Kind: PlanContract, Table: tbl, Query: q, Proc: proc,
		Contract: &cc, Decision: d, Seed: seed}, nil
}

// PlanMultiStatement compiles a statement into a multi-template plan.
func PlanMultiStatement(mgr *core.Manager, tbl *engine.Table, statement string) (*Plan, error) {
	q, err := compileFor("multi", tbl, statement)
	if err != nil {
		return nil, err
	}
	return &Plan{Kind: PlanMulti, Table: tbl, Query: q, Mgr: mgr}, nil
}

// CompileStatement parses and compiles a statement against a single
// known table with the executor's error classification. Exported for
// the root progressive path, which streams rounds outside the Plan IR
// but must classify compile failures identically.
func CompileStatement(tbl *engine.Table, op, statement string) (engine.Query, error) {
	return compileFor(op, tbl, statement)
}

// compileFor parses and compiles a statement against a single known
// table, classifying a table mismatch as UnknownTable and everything
// else the parser or compiler rejects as Parse.
func compileFor(op string, tbl *engine.Table, statement string) (engine.Query, error) {
	st, err := sql.Parse(statement)
	if err != nil {
		return engine.Query{}, &Error{Kind: Parse, Op: op, Err: err}
	}
	if st.Table != tbl.Name {
		return engine.Query{}, &Error{Kind: UnknownTable, Op: op,
			Err: fmt.Errorf("prepared for table %q, statement targets %q", tbl.Name, st.Table)}
	}
	q, err := sql.Compile(st, tbl)
	if err != nil {
		return engine.Query{}, &Error{Kind: Parse, Op: op, Err: err}
	}
	return q, nil
}
