package exec

import (
	"strings"
	"testing"
)

// TestCacheKeyCanonical pins the property the response cache depends
// on: statements that compile to the same work share one key, and
// statements that answer differently never do.
func TestCacheKeyCanonical(t *testing.T) {
	tbl := execTable(500)
	src := mapSource{"t": tbl}

	key := func(stmt string) string {
		t.Helper()
		p, err := PlanExactStatement(src, stmt)
		if err != nil {
			t.Fatalf("plan %q: %v", stmt, err)
		}
		return p.CacheKey()
	}

	base := key("SELECT SUM(v) FROM t WHERE k BETWEEN 10 AND 50 AND v BETWEEN 0 AND 100")

	// Whitespace, keyword case, and WHERE-conjunct order are all
	// surface syntax; the compiled plan — and the key — must not move.
	equivalents := []string{
		"select sum(v) from t where k between 10 and 50 and v between 0 and 100",
		"SELECT  SUM(v)  FROM t  WHERE k BETWEEN 10 AND 50 AND v BETWEEN 0 AND 100",
		"SELECT SUM(v) FROM t WHERE v BETWEEN 0 AND 100 AND k BETWEEN 10 AND 50",
	}
	for _, stmt := range equivalents {
		if got := key(stmt); got != base {
			t.Errorf("key(%q) = %q, want %q", stmt, got, base)
		}
	}

	// Anything that changes the answer must change the key.
	distinct := []string{
		"SELECT SUM(v) FROM t WHERE k BETWEEN 10 AND 51 AND v BETWEEN 0 AND 100",
		"SELECT SUM(v) FROM t WHERE k BETWEEN 10 AND 50",
		"SELECT COUNT(*) FROM t WHERE k BETWEEN 10 AND 50 AND v BETWEEN 0 AND 100",
		"SELECT SUM(v) FROM t",
	}
	seen := map[string]string{base: "base"}
	for _, stmt := range distinct {
		got := key(stmt)
		if prev, dup := seen[got]; dup {
			t.Errorf("key collision: %q and %q share %q", stmt, prev, got)
		}
		seen[got] = stmt
	}
}

// TestCacheKeyDiscriminatesAnswerPath verifies the kind, the group-by
// columns, and the bootstrap parameters are all part of the key: an
// exact scan, a closed-form approximation, and a bootstrap interval
// answer the same SQL with different results.
func TestCacheKeyDiscriminatesAnswerPath(t *testing.T) {
	tbl := execTable(500)
	proc := execProcessor(t, tbl)
	const stmt = "SELECT SUM(v) FROM t WHERE k BETWEEN 10 AND 50"

	exact, err := PlanExactStatement(mapSource{"t": tbl}, stmt)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := PlanQueryStatement(proc, tbl, stmt)
	if err != nil {
		t.Fatal(err)
	}
	boot100, err := PlanBootstrapStatement(proc, tbl, stmt, 100, 0xb007)
	if err != nil {
		t.Fatal(err)
	}
	boot200, err := PlanBootstrapStatement(proc, tbl, stmt, 200, 0xb007)
	if err != nil {
		t.Fatal(err)
	}
	bootSeed, err := PlanBootstrapStatement(proc, tbl, stmt, 100, 0xdead)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]string{}
	for name, p := range map[string]*Plan{
		"exact": exact, "approx": approx,
		"boot100": boot100, "boot200": boot200, "bootSeed": bootSeed,
	} {
		k := p.CacheKey()
		if prev, dup := keys[k]; dup {
			t.Errorf("key collision: %s and %s share %q", name, prev, k)
		}
		keys[k] = name
	}

	// Same plan twice → same key (determinism).
	if boot100.CacheKey() != boot100.CacheKey() {
		t.Error("CacheKey is not deterministic")
	}

	// Group-by columns appear in the key.
	g, err := PlanExactStatement(mapSource{"t": tbl}, "SELECT SUM(v) FROM t GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.CacheKey(), "by:k") {
		t.Errorf("group-by key %q missing by:k", g.CacheKey())
	}
}
