package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

func execTable(n int) *engine.Table {
	r := stats.NewRNG(7)
	k := make([]int64, n)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		k[i] = int64(r.Intn(200) + 1)
		v[i] = 10 + 0.3*float64(k[i]) + 5*r.NormFloat64()
	}
	return engine.MustNewTable("t",
		engine.NewIntColumn("k", k),
		engine.NewFloatColumn("v", v),
	)
}

func execProcessor(t *testing.T, tbl *engine.Table) *core.Processor {
	t.Helper()
	proc, _, err := core.Build(context.Background(), tbl, core.BuildConfig{
		Template:   cube.Template{Agg: "v", Dims: []string{"k"}},
		SampleRate: 0.2, CellBudget: 64, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

// mapSource is a trivial TableSource for tests.
type mapSource map[string]*engine.Table

func (m mapSource) LookupTable(name string) (*engine.Table, bool) {
	tbl, ok := m[name]
	return tbl, ok
}

func TestPlanErrorKinds(t *testing.T) {
	tbl := execTable(500)
	src := mapSource{"t": tbl}
	if _, err := PlanExactStatement(src, "garbage"); KindOf(err) != Parse {
		t.Errorf("garbage: kind = %v, want Parse", KindOf(err))
	}
	if _, err := PlanExactStatement(src, "SELECT COUNT(*) FROM missing"); KindOf(err) != UnknownTable {
		t.Errorf("missing table: kind = %v, want UnknownTable", KindOf(err))
	}
	proc := execProcessor(t, tbl)
	if _, err := PlanQueryStatement(proc, tbl, "SELECT SUM(v) FROM other"); KindOf(err) != UnknownTable {
		t.Errorf("table mismatch: kind = %v, want UnknownTable", KindOf(err))
	}
	if _, err := PlanQueryStatement(proc, tbl, "SELECT SUM(nope) FROM t"); KindOf(err) != Parse {
		t.Errorf("bad column: kind = %v, want Parse", KindOf(err))
	}
	if KindOf(nil) != Internal {
		t.Error("KindOf(nil) != Internal")
	}
	if KindOf(errors.New("plain")) != Internal {
		t.Error("KindOf(plain error) != Internal")
	}
}

func TestRunExactMatchesEngine(t *testing.T) {
	tbl := execTable(5000)
	src := mapSource{"t": tbl}
	p, err := PlanExactStatement(src, "SELECT SUM(v) FROM t WHERE k BETWEEN 50 AND 150")
	if err != nil {
		t.Fatal(err)
	}
	out, err := New().Run(context.Background(), p, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tbl.Execute(p.Query)
	if err != nil {
		t.Fatal(err)
	}
	// The executor's serial exact path must be bit-identical to
	// Table.Execute (same kernels, same accumulation order).
	if !stats.ExactEqual(out.Exact.Value, want.Value) {
		t.Errorf("executor %v != engine %v", out.Exact.Value, want.Value)
	}
}

func TestUnsupportedKind(t *testing.T) {
	tbl := execTable(2000)
	proc := execProcessor(t, tbl)
	p, err := PlanBootstrapStatement(proc, tbl, "SELECT AVG(v) FROM t", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New().Run(context.Background(), p, Budget{})
	if KindOf(err) != Unsupported {
		t.Errorf("bootstrap AVG: kind = %v, want Unsupported (err: %v)", KindOf(err), err)
	}
	if !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("errors.Is(err, core.ErrUnsupported) = false for %v", err)
	}
}

func TestBudgetMaxResamples(t *testing.T) {
	tbl := execTable(2000)
	proc := execProcessor(t, tbl)
	p, err := PlanBootstrapStatement(proc, tbl, "SELECT SUM(v) FROM t", 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	ex := New()
	_, err = ex.Run(context.Background(), p, Budget{MaxResamples: 100})
	if KindOf(err) != BudgetExceeded {
		t.Errorf("kind = %v, want BudgetExceeded (err: %v)", KindOf(err), err)
	}
	// At the cap it runs.
	if _, err := ex.Run(context.Background(), p, Budget{MaxResamples: 500}); err != nil {
		t.Errorf("at-cap run failed: %v", err)
	}
}

func TestBudgetScratchCap(t *testing.T) {
	tbl := execTable(2000)
	proc := execProcessor(t, tbl)
	p, err := PlanBootstrapStatement(proc, tbl, "SELECT SUM(v) FROM t", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	need := core.BootstrapScratchBytes(proc.Sample.Size())
	_, err = New().Run(context.Background(), p, Budget{MaxScratchBytes: need - 1})
	if KindOf(err) != BudgetExceeded {
		t.Errorf("kind = %v, want BudgetExceeded (err: %v)", KindOf(err), err)
	}
	if _, err := New().Run(context.Background(), p, Budget{MaxScratchBytes: need}); err != nil {
		t.Errorf("at-cap run failed: %v", err)
	}
}

// TestCancelVsBudgetDeadline pins the taxonomy split: the budget's own
// deadline reports BudgetExceeded, the caller's cancellation reports
// Canceled — even when both a budget and a canceled parent are present.
func TestCancelVsBudgetDeadline(t *testing.T) {
	tbl := execTable(2000)
	proc := execProcessor(t, tbl)
	p, err := PlanBootstrapStatement(proc, tbl, "SELECT SUM(v) FROM t", 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	ex := New()

	_, err = ex.Run(context.Background(), p, Budget{Timeout: time.Nanosecond})
	if KindOf(err) != BudgetExceeded {
		t.Errorf("budget deadline: kind = %v, want BudgetExceeded (err: %v)", KindOf(err), err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, DeadlineExceeded) = false for %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = ex.Run(ctx, p, Budget{Timeout: time.Hour})
	if KindOf(err) != Canceled {
		t.Errorf("parent cancel: kind = %v, want Canceled (err: %v)", KindOf(err), err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

// TestCancelPrepareClassified checks Prepare wraps a canceled build.
func TestCancelPrepareClassified(t *testing.T) {
	tbl := execTable(2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := New().Prepare(ctx, tbl, core.BuildConfig{
		Template:   cube.Template{Agg: "v", Dims: []string{"k"}},
		SampleRate: 0.2, CellBudget: 64, Seed: 3,
	}, Budget{})
	if KindOf(err) != Canceled || !errors.Is(err, context.Canceled) {
		t.Errorf("kind = %v, err = %v; want Canceled/context.Canceled", KindOf(err), err)
	}
}
