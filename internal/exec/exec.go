package exec

import (
	"context"
	"fmt"
	"sync"
	"time"

	"aqppp/internal/core"
	"aqppp/internal/engine"
	"aqppp/internal/shard"
)

// Budget bounds one query or preparation a priori. The zero Budget is
// unlimited. Budgets are enforced by the Executor, not by callers:
// exceeding any bound yields an Error of kind BudgetExceeded.
type Budget struct {
	// Timeout bounds wall time; the executor derives a deadline context
	// and a query that overruns unwinds at the next cancellation check
	// (one block chunk, climb step, or resample).
	Timeout time.Duration
	// MaxResamples caps bootstrap replicate counts. A plan requesting
	// more is rejected before any work runs.
	MaxResamples int
	// MaxScratchBytes caps the per-query scratch memory the executor
	// hands to the bootstrap path (index + replicate buffers, reused
	// across queries through a sync.Pool).
	MaxScratchBytes int64
}

// Outcome is the unified result of running a Plan.
type Outcome struct {
	// Exact holds the PlanExact result.
	Exact engine.Result
	// Answer holds the scalar answer for approx/bootstrap/multi plans.
	Answer core.Answer
	// Groups holds per-group answers for GROUP BY approx plans.
	Groups []core.GroupAnswer
	// Template is the template index a PlanMulti plan routed to.
	Template int
	// Partial reports a degraded distributed answer: one or more
	// replicas were lost, the opt-in policy tolerated it, and the
	// answer was extrapolated from surviving strata with a widened
	// interval. Partial outcomes must never be cached.
	Partial bool
	// ContractStrategy names the ladder rung that answered a
	// PlanContract plan ("cube", "approx", "bootstrap", "exact");
	// ContractEscalated reports that the planner's first choice missed
	// the bound and a costlier rung answered instead.
	ContractStrategy  string
	ContractEscalated bool
}

// Executor runs Plans. It is safe for concurrent use; scratch buffers
// are pooled across queries.
type Executor struct {
	// Workers bounds PlanExact parallelism when the plan itself does
	// not set one; <= 1 keeps exact scans serial (bit-identical to
	// Table.Execute).
	Workers int

	scratch sync.Pool // *core.BootstrapScratch
}

// New returns an Executor with serial exact scans.
func New() *Executor { return &Executor{} }

// Run executes a Plan under the context and budget, returning a
// classified error on any failure. Cancellation granularity is one
// zone-block chunk for exact scans, one resample for bootstrap plans,
// and one group for GROUP BY approx plans.
func (ex *Executor) Run(ctx context.Context, p *Plan, b Budget) (Outcome, error) {
	op := p.Kind.String()
	run, cancel, budgeted := b.bound(ctx)
	defer cancel()
	out, err := ex.dispatch(run, p, b)
	if err != nil {
		return Outcome{}, classify(ctx, run, op, budgeted, err)
	}
	return out, nil
}

// Prepare runs the preprocessing pipeline (sample, hill-climbed
// partition points, cube build) under the context and budget; a
// canceled context unwinds at the next climb step.
func (ex *Executor) Prepare(ctx context.Context, tbl *engine.Table, cfg core.BuildConfig, b Budget) (*core.Processor, core.BuildStats, error) {
	run, cancel, budgeted := b.bound(ctx)
	defer cancel()
	proc, st, err := core.Build(run, tbl, cfg)
	if err != nil {
		return nil, st, classify(ctx, run, "prepare", budgeted, err)
	}
	return proc, st, nil
}

// PrepareSharded builds per-shard processors (sample + BP-cube slice
// per shard, in parallel) under the context and budget.
func (ex *Executor) PrepareSharded(ctx context.Context, s *shard.Sharded, cfg core.BuildConfig, workers int, b Budget) (*shard.Prepared, error) {
	run, cancel, budgeted := b.bound(ctx)
	defer cancel()
	if workers == 0 {
		workers = ex.Workers
	}
	sp, err := shard.Prepare(run, s, cfg, workers)
	if err != nil {
		return nil, classify(ctx, run, "prepare", budgeted, err)
	}
	return sp, nil
}

// PrepareMulti builds a multi-template manager under the context and
// budget.
func (ex *Executor) PrepareMulti(ctx context.Context, tbl *engine.Table, cfg core.ManagerConfig, b Budget) (*core.Manager, error) {
	run, cancel, budgeted := b.bound(ctx)
	defer cancel()
	mgr, err := core.BuildManager(run, tbl, cfg)
	if err != nil {
		return nil, classify(ctx, run, "prepare", budgeted, err)
	}
	return mgr, nil
}

// bound applies the budget's deadline, reporting whether one was
// imposed. The returned cancel is never nil.
func (b Budget) bound(ctx context.Context) (context.Context, context.CancelFunc, bool) {
	if b.Timeout <= 0 {
		return ctx, func() {}, false
	}
	run, cancel := context.WithTimeout(ctx, b.Timeout)
	return run, cancel, true
}

func (ex *Executor) dispatch(ctx context.Context, p *Plan, b Budget) (Outcome, error) {
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	if p.Dist != nil {
		return ex.dispatchDist(ctx, p, b)
	}
	switch p.Kind {
	case PlanExact:
		workers := p.Workers
		if workers == 0 {
			workers = ex.Workers
		}
		var res engine.Result
		var err error
		switch {
		case p.Shards != nil:
			res, err = p.Shards.ExecuteContext(ctx, p.Query, workers)
		case workers > 1:
			res, err = p.Table.ExecuteParallelContext(ctx, p.Query, workers)
		default:
			res, err = p.Table.ExecuteContext(ctx, p.Query)
		}
		return Outcome{Exact: res}, err

	case PlanApprox:
		workers := p.Workers
		if workers == 0 {
			workers = ex.Workers
		}
		if len(p.Query.GroupBy) > 0 {
			var groups []core.GroupAnswer
			var err error
			if p.ShardPrep != nil {
				groups, err = p.ShardPrep.AnswerGroups(ctx, p.Query, workers)
			} else {
				groups, err = p.Proc.AnswerGroups(ctx, p.Query)
			}
			if err != nil {
				return Outcome{}, err
			}
			return Outcome{Groups: groups}, nil
		}
		var ans core.Answer
		var err error
		if p.ShardPrep != nil {
			ans, err = p.ShardPrep.Answer(ctx, p.Query, workers)
		} else {
			ans, err = p.Proc.Answer(p.Query)
		}
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Answer: ans}, nil

	case PlanBootstrap:
		resamples := p.Resamples
		if resamples <= 0 {
			resamples = core.DefaultResamples
		}
		if b.MaxResamples > 0 && resamples > b.MaxResamples {
			return Outcome{}, &Error{Kind: BudgetExceeded, Op: "bootstrap",
				Err: fmt.Errorf("%d resamples exceed the budget's cap of %d", resamples, b.MaxResamples)}
		}
		if p.ShardPrep != nil {
			// Per-shard bootstraps allocate their own scratch inside the
			// shard layer; enforce the budget's cap against the summed
			// footprint up front, same accounting as the single path.
			need := core.BootstrapScratchBytes(p.ShardPrep.SampleSize())
			if b.MaxScratchBytes > 0 && need > b.MaxScratchBytes {
				return Outcome{}, &Error{Kind: BudgetExceeded, Op: "bootstrap",
					Err: fmt.Errorf("bootstrap needs %d scratch bytes, budget caps at %d", need, b.MaxScratchBytes)}
			}
			workers := p.Workers
			if workers == 0 {
				workers = ex.Workers
			}
			ans, err := p.ShardPrep.AnswerBootstrap(ctx, p.Query, resamples, p.Seed, workers)
			if err != nil {
				return Outcome{}, err
			}
			return Outcome{Answer: ans}, nil
		}
		sc, release, err := ex.scratchFor(p.Proc.Sample.Size(), b)
		if err != nil {
			return Outcome{}, err
		}
		defer release()
		ans, err := p.Proc.AnswerBootstrap(ctx, p.Query, resamples, p.Seed, sc)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Answer: ans}, nil

	case PlanContract:
		return ex.dispatchContract(ctx, p, b)

	case PlanMulti:
		t := p.Mgr.Route(p.Query)
		ans, err := p.Mgr.Processors[t].Answer(p.Query)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Answer: ans, Template: t}, nil

	default:
		return Outcome{}, &Error{Kind: Unsupported, Op: "run", Err: fmt.Errorf("unknown plan kind %v", p.Kind)}
	}
}

// scratchFor hands out a pooled bootstrap scratch sized for an n-row
// sample, enforcing the budget's scratch cap. release returns the
// buffers to the pool.
func (ex *Executor) scratchFor(n int, b Budget) (*core.BootstrapScratch, func(), error) {
	need := core.BootstrapScratchBytes(n)
	if b.MaxScratchBytes > 0 && need > b.MaxScratchBytes {
		return nil, nil, &Error{Kind: BudgetExceeded, Op: "bootstrap",
			Err: fmt.Errorf("bootstrap needs %d scratch bytes, budget caps at %d", need, b.MaxScratchBytes)}
	}
	sc, _ := ex.scratch.Get().(*core.BootstrapScratch)
	if sc == nil {
		sc = &core.BootstrapScratch{}
	}
	sc.Grow(n)
	return sc, func() { ex.scratch.Put(sc) }, nil
}
