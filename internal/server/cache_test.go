package server

import (
	"net/http"
	"testing"
	"time"

	"aqppp"
)

// aqpppPrepareOptions is the standard preparation for the demo table.
func aqpppPrepareOptions() aqppp.PrepareOptions {
	return aqppp.PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.2, CellBudget: 100, Seed: 3,
	}
}

// TestCacheLRUByteBound pins the size accounting: inserting past
// maxBytes evicts from the least-recently-used tail, and a Get renews
// an entry's position.
func TestCacheLRUByteBound(t *testing.T) {
	resp := QueryResponse{Value: 1}
	one := cacheSizeOf("k0", resp)
	c := NewCache(3*one, 0)
	c.Put("k0", 1, resp)
	c.Put("k1", 1, resp)
	c.Put("k2", 1, resp)
	if st := c.Stats(); st.Entries != 3 || st.Bytes > st.MaxBytes {
		t.Fatalf("after 3 puts: %+v", st)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.Get("k0", 1); !ok {
		t.Fatal("k0 should hit")
	}
	c.Put("k3", 1, resp)
	if _, ok := c.Get("k1", 1); ok {
		t.Error("k1 should have been evicted as LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k, 1); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > st.MaxBytes {
		t.Errorf("bytes %d exceeds bound %d", st.Bytes, st.MaxBytes)
	}

	// A response that can never fit is simply not cached.
	var huge QueryResponse
	for i := 0; i < 1000; i++ {
		huge.Groups = append(huge.Groups, GroupJSON{Key: "group-key-long-enough"})
	}
	c.Put("huge", 1, huge)
	if _, ok := c.Get("huge", 1); ok {
		t.Error("over-sized response should not be cached")
	}
}

// TestCacheTTL verifies age-based expiry counts as an eviction, not an
// invalidation.
func TestCacheTTL(t *testing.T) {
	c := NewCache(1<<20, 10*time.Millisecond)
	c.Put("k", 1, QueryResponse{Value: 1})
	if _, ok := c.Get("k", 1); !ok {
		t.Fatal("fresh entry should hit")
	}
	time.Sleep(25 * time.Millisecond)
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("expired entry should miss")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Invalidations != 0 || st.Entries != 0 {
		t.Errorf("stats after expiry: %+v", st)
	}
}

// TestCacheGenerationInvalidation pins the churn defense: a lookup at a
// newer generation drops the entry and can never serve it.
func TestCacheGenerationInvalidation(t *testing.T) {
	c := NewCache(1<<20, 0)
	c.Put("k", 1, QueryResponse{Value: 1})
	if _, ok := c.Get("k", 2); ok {
		t.Fatal("generation mismatch must miss")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Entries != 0 {
		t.Errorf("stats after invalidation: %+v", st)
	}
	// The old generation cannot resurrect the entry either — it is gone.
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("invalidated entry must stay gone")
	}

	// A Put whose generation was captured before a churn (gen 1) while
	// the current generation is already 2 is stillborn: stored, but the
	// next current-generation lookup kills it.
	c.Put("k", 1, QueryResponse{Value: 1})
	if _, ok := c.Get("k", 2); ok {
		t.Fatal("stillborn entry must never serve")
	}
}

// TestCacheNilSafe verifies a disabled cache (nil receiver) is inert.
func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	c.Put("k", 1, QueryResponse{})
	if _, ok := c.Get("k", 1); ok {
		t.Error("nil cache should never hit")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Errorf("nil cache stats = %+v, want zeros", st)
	}
}

// TestServerCacheHitSkipsGate is the acceptance pin for the tentpole:
// a repeated identical query is served from the cache without passing
// the admission gate — the gate's served counter must not move on the
// hit — and the response says so (cached flag, X-Cache header).
func TestServerCacheHitSkipsGate(t *testing.T) {
	db := newTestDB(t, 3000)
	srv := New(db, Config{MaxConcurrent: 2, MaxQueue: 4})
	base := startServer(t, srv)
	c := burstClient()

	const stmt = "SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400"
	status, body, hdr := postJSON(t, c, base+"/v1/query", QueryRequest{SQL: stmt})
	if status != http.StatusOK {
		t.Fatalf("miss: status %d body %v", status, body)
	}
	if body["cached"] == true || hdr.Get("X-Cache") == "hit" {
		t.Fatal("first request must not be a cache hit")
	}
	servedAfterMiss := srv.Gate().Served()
	want := body["value"]

	// The same statement — modulo surface syntax — hits.
	for _, repeat := range []string{stmt, "select sum(v) from demo where k between 10 and 400"} {
		status, body, hdr = postJSON(t, c, base+"/v1/query", QueryRequest{SQL: repeat})
		if status != http.StatusOK {
			t.Fatalf("repeat %q: status %d body %v", repeat, status, body)
		}
		if body["cached"] != true {
			t.Errorf("repeat %q: cached = %v, want true", repeat, body["cached"])
		}
		if hdr.Get("X-Cache") != "hit" {
			t.Errorf("repeat %q: X-Cache = %q, want hit", repeat, hdr.Get("X-Cache"))
		}
		if body["value"] != want {
			t.Errorf("repeat %q: value = %v, want %v", repeat, body["value"], want)
		}
	}
	if got := srv.Gate().Served(); got != servedAfterMiss {
		t.Errorf("gate served moved %d -> %d on cache hits; hits must not pass the gate", servedAfterMiss, got)
	}
	if st := srv.cache.Stats(); st.Hits < 2 {
		t.Errorf("cache hits = %d, want >= 2", st.Hits)
	}

	// Request IDs stay fresh per request even on hits.
	if body["request_id"] == "" {
		t.Error("cached response lost its request id")
	}
}

// TestServerCacheApproxAndBootstrap verifies approximate answers cache
// alongside their CI half-widths, and that closed-form and bootstrap
// answers for the same SQL occupy distinct entries.
func TestServerCacheApproxAndBootstrap(t *testing.T) {
	db := newTestDB(t, 3000)
	prep, err := db.Prepare(aqpppPrepareOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{MaxConcurrent: 2, MaxQueue: 4})
	if err := srv.RegisterPrepared("h", prep); err != nil {
		t.Fatal(err)
	}
	base := startServer(t, srv)
	c := burstClient()

	const stmt = "SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400"
	ask := func(resamples int) (map[string]any, bool) {
		t.Helper()
		status, body, hdr := postJSON(t, c, base+"/v1/approx",
			QueryRequest{Prepared: "h", SQL: stmt, Resamples: resamples})
		if status != http.StatusOK {
			t.Fatalf("approx (n=%d): status %d body %v", resamples, status, body)
		}
		return body, hdr.Get("X-Cache") == "hit"
	}

	closed, hit := ask(0)
	if hit {
		t.Fatal("first closed-form request must miss")
	}
	if _, ok := closed["half_width"]; !ok {
		t.Fatal("approx answer missing half_width")
	}
	closed2, hit := ask(0)
	if !hit || closed2["cached"] != true {
		t.Error("repeated closed-form request should hit")
	}
	if closed2["half_width"] != closed["half_width"] {
		t.Errorf("cached half_width %v != original %v", closed2["half_width"], closed["half_width"])
	}

	boot, hit := ask(50)
	if hit {
		t.Error("bootstrap request must not hit the closed-form entry")
	}
	if _, ok := boot["half_width"]; !ok {
		t.Fatal("bootstrap answer missing half_width")
	}
	boot2, hit := ask(50)
	if !hit {
		t.Error("repeated bootstrap request should hit")
	}
	if boot2["half_width"] != boot["half_width"] {
		t.Errorf("cached bootstrap half_width %v != original %v", boot2["half_width"], boot["half_width"])
	}
}

// TestServerCacheDropRegisterInvalidates is the acceptance pin for
// invalidation: Drop + re-Register under the same name must never
// yield the old table's cached answer.
func TestServerCacheDropRegisterInvalidates(t *testing.T) {
	db := newTestDB(t, 2000)
	srv := New(db, Config{MaxConcurrent: 2, MaxQueue: 4})
	base := startServer(t, srv)
	c := burstClient()

	const stmt = "SELECT COUNT(*) FROM demo"
	status, body, _ := postJSON(t, c, base+"/v1/query", QueryRequest{SQL: stmt})
	if status != http.StatusOK {
		t.Fatalf("first query: status %d body %v", status, body)
	}
	if int(body["value"].(float64)) != 2000 {
		t.Fatalf("count = %v, want 2000", body["value"])
	}

	// Churn: drop the table and register a different one under the name.
	db.Drop("demo")
	if err := db.Register(serverDemoTable(500, 9)); err != nil {
		t.Fatal(err)
	}

	status, body, hdr := postJSON(t, c, base+"/v1/query", QueryRequest{SQL: stmt})
	if status != http.StatusOK {
		t.Fatalf("post-churn query: status %d body %v", status, body)
	}
	if body["cached"] == true || hdr.Get("X-Cache") == "hit" {
		t.Error("post-churn query served from cache; generation must have invalidated it")
	}
	if int(body["value"].(float64)) != 500 {
		t.Errorf("post-churn count = %v, want 500 (the new table)", body["value"])
	}
	if st := srv.cache.Stats(); st.Invalidations < 1 {
		t.Errorf("invalidations = %d, want >= 1", st.Invalidations)
	}
}

// TestServerCachePreparedEpoch verifies dropping a handle and building
// a new one under the same name never serves the old handle's cached
// approximations.
func TestServerCachePreparedEpoch(t *testing.T) {
	db := newTestDB(t, 3000)
	prep, err := db.Prepare(aqpppPrepareOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{MaxConcurrent: 2, MaxQueue: 4})
	if err := srv.RegisterPrepared("h", prep); err != nil {
		t.Fatal(err)
	}
	base := startServer(t, srv)
	c := burstClient()

	const stmt = "SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400"
	status, body, _ := postJSON(t, c, base+"/v1/approx", QueryRequest{Prepared: "h", SQL: stmt})
	if status != http.StatusOK {
		t.Fatalf("first approx: status %d body %v", status, body)
	}

	// Rebuild the handle under the same name (a different sample seed, so
	// the answer would genuinely differ).
	if !srv.dropPrepared("h") {
		t.Fatal("dropPrepared failed")
	}
	opts := aqpppPrepareOptions()
	opts.Seed = 99
	prep2, err := db.Prepare(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterPrepared("h", prep2); err != nil {
		t.Fatal(err)
	}

	status, body, hdr := postJSON(t, c, base+"/v1/approx", QueryRequest{Prepared: "h", SQL: stmt})
	if status != http.StatusOK {
		t.Fatalf("post-rebuild approx: status %d body %v", status, body)
	}
	if body["cached"] == true || hdr.Get("X-Cache") == "hit" {
		t.Error("rebuilt handle served its predecessor's cached answer")
	}
}

// TestServerCacheDisabled verifies negative CacheMaxBytes turns the
// cache off entirely: repeats recompute and pass the gate.
func TestServerCacheDisabled(t *testing.T) {
	db := newTestDB(t, 1000)
	srv := New(db, Config{MaxConcurrent: 2, MaxQueue: 4, CacheMaxBytes: -1})
	if srv.cache != nil {
		t.Fatal("negative CacheMaxBytes should disable the cache")
	}
	base := startServer(t, srv)
	c := burstClient()
	const stmt = "SELECT COUNT(*) FROM demo"
	for i := 0; i < 2; i++ {
		status, body, hdr := postJSON(t, c, base+"/v1/query", QueryRequest{SQL: stmt})
		if status != http.StatusOK {
			t.Fatalf("query %d: status %d", i, status)
		}
		if body["cached"] == true || hdr.Get("X-Cache") == "hit" {
			t.Error("disabled cache served a hit")
		}
	}
	if got := srv.Gate().Served(); got != 2 {
		t.Errorf("gate served = %d, want 2 (every request gated)", got)
	}
}
