package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"aqppp"
)

// This file serves the a-priori error-contract surface: POST
// /v1/contract (one answer, planned to provably meet the stated bound,
// 422 with the tightest achievable error when it cannot) and POST
// /v1/progressive (an SSE stream of refining estimates that terminates
// when the contract is met, the sample runs out, or the budget
// expires). Contract answers flow through the same cache → quota →
// admission-gate chain as /v1/approx; progressive streams skip the
// cache (a stream is not a cacheable value) and hold their admission
// slot for the whole stream.

// handleContract answers POST /v1/contract through a named prepared
// handle. Planning happens before the quota and the gate: an
// infeasible contract is rejected 422 without consuming a slot or a
// token — "no scan work" is part of the contract's promise.
func (s *Server) handleContract(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	var req ContractRequest
	if !s.decode(w, r, ri, &req) {
		return
	}
	if req.Prepared == "" {
		s.writeServerError(w, ri, http.StatusBadRequest, "parse",
			`missing "prepared": /v1/contract answers through a named handle (build one with /v1/prepare)`)
		return
	}
	if req.MaxRelError == 0 && req.MaxAbsError == 0 {
		s.writeServerError(w, ri, http.StatusBadRequest, "parse",
			`a contract needs "max_rel_error" and/or "max_abs_error"`)
		return
	}
	prep, epoch, found := s.lookupPrepared(req.Prepared)
	if !found {
		s.writeServerError(w, ri, http.StatusNotFound, "unknown-prepared",
			fmt.Sprintf("no prepared handle %q", req.Prepared))
		return
	}
	c := aqppp.Contract{
		MaxRelError: req.MaxRelError,
		MaxAbsError: req.MaxAbsError,
		Confidence:  req.Confidence,
		AllowExact:  req.AllowExact,
	}
	plan, err := prep.PlanContract(req.SQL, c)
	if err != nil {
		if aqppp.ErrorKindOf(err) == aqppp.ErrContractInfeasible {
			s.met.observeContract(false, false)
		}
		s.writeError(w, ri, err)
		return
	}
	// Same keying discipline as /v1/approx (handle name + epoch folded
	// in); the plan's own key already carries the contract's bounds, so
	// a loose and a tight contract over one statement never collide.
	key := fmt.Sprintf("%s|h=%s@%d", plan.CacheKey(), req.Prepared, epoch)
	gen := s.db.Generation(prep.TableName())
	if resp, hit := s.cache.Get(key, gen); hit {
		s.writeCached(w, ri, resp)
		return
	}
	if !s.allowQuota(w, r, ri) {
		return
	}
	release, budget, ok := s.admit(w, r, ri, req.TimeoutMS)
	if !ok {
		return
	}
	defer release()
	if h := s.hookGated; h != nil {
		h(r.Context())
	}
	t0 := time.Now()
	res, err := prep.RunContractPlan(r.Context(), plan, budget)
	if err != nil {
		if aqppp.ErrorKindOf(err) == aqppp.ErrContractInfeasible {
			// The ladder ran dry at run time (the planner's prediction
			// was too optimistic); same counter, same 422.
			s.met.observeContract(false, false)
		}
		s.writeError(w, ri, err)
		return
	}
	s.met.observeContract(true, res.Escalated)
	resp := contractResponse(ri.id, res, time.Since(t0))
	if !resp.Partial {
		s.cache.Put(key, gen, resp)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// sseEvent writes one Server-Sent Event and flushes it to the client.
func sseEvent(w http.ResponseWriter, event string, data any) error {
	payload, err := json.Marshal(data)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, payload); err != nil {
		return err
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	return nil
}

// handleProgressive answers POST /v1/progressive with an SSE stream:
// one "round" event per refinement (monotonically non-widening), then
// a terminal "done" event carrying the stop reason. Failures before
// the first event are ordinary JSON errors; once the stream has
// started the status is committed, so later failures become an "error"
// event (and a client disconnect mid-stream counts under the
// "canceled" kind, same as every other torn-down request).
func (s *Server) handleProgressive(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	var req ProgressiveRequest
	if !s.decode(w, r, ri, &req) {
		return
	}
	if req.Prepared == "" {
		s.writeServerError(w, ri, http.StatusBadRequest, "parse",
			`missing "prepared": /v1/progressive answers through a named handle (build one with /v1/prepare)`)
		return
	}
	prep, _, found := s.lookupPrepared(req.Prepared)
	if !found {
		s.writeServerError(w, ri, http.StatusNotFound, "unknown-prepared",
			fmt.Sprintf("no prepared handle %q", req.Prepared))
		return
	}
	opts := aqppp.ProgressiveOptions{
		StepRows:  req.StepRows,
		MaxRounds: req.MaxRounds,
		Seed:      req.Seed,
	}
	if req.MaxRelError != 0 || req.MaxAbsError != 0 {
		opts.Contract = &aqppp.Contract{
			MaxRelError: req.MaxRelError,
			MaxAbsError: req.MaxAbsError,
			Confidence:  req.Confidence,
		}
	}
	// Streams are never cached — every round is fresh work — so the
	// quota applies to each one; the admission slot is held until the
	// stream ends (a progressive stream is sustained engine work).
	if !s.allowQuota(w, r, ri) {
		return
	}
	release, budget, ok := s.admit(w, r, ri, req.TimeoutMS)
	if !ok {
		return
	}
	defer release()
	if h := s.hookGated; h != nil {
		h(r.Context())
	}

	started := false
	lastRound := time.Now()
	yield := func(round aqppp.ProgressiveRound) error {
		if !started {
			h := w.Header()
			h.Set("Content-Type", "text/event-stream")
			h.Set("Cache-Control", "no-cache")
			h.Set("X-Accel-Buffering", "no")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		now := time.Now()
		s.met.observeProgressiveRound(float64(now.Sub(lastRound)) / float64(time.Microsecond))
		lastRound = now
		return sseEvent(w, "round", ProgressiveRoundJSON{
			Round:      round.Round,
			Value:      round.Value,
			HalfWidth:  round.HalfWidth,
			Confidence: round.Confidence,
			SampleRows: round.SampleRows,
			Met:        round.Met,
		})
	}
	t0 := time.Now()
	sum, err := prep.QueryProgressiveBudget(r.Context(), req.SQL, opts, budget, yield)
	if err != nil {
		kind := aqppp.ErrorKindOf(err)
		if !started {
			s.writeError(w, ri, err)
			return
		}
		// The stream is underway; the 200 is committed. Count the kind
		// (a mid-stream disconnect lands here as "canceled") and tell
		// any still-listening client what happened in-band.
		s.met.observeKind(kind.String())
		_ = sseEvent(w, "error", ErrorBody{Error: ErrorDetail{
			Kind: kind.String(), Message: err.Error(), RequestID: ri.id,
		}})
		return
	}
	if sum.Met {
		s.met.observeContract(true, false)
	}
	done := ProgressiveDoneJSON{
		RequestID:  ri.id,
		Reason:     sum.Reason,
		Rounds:     sum.Rounds,
		Value:      sum.Value,
		HalfWidth:  sum.HalfWidth,
		Confidence: sum.Confidence,
		SampleRows: sum.SampleRows,
		Met:        sum.Met,
		ElapsedMS:  toMS(time.Since(t0)),
	}
	if !started {
		// Defensive: a stream that produced no rounds still frames its
		// terminal event as SSE so clients parse one shape.
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
	}
	_ = sseEvent(w, "done", done)
}
