package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"aqppp"
	"aqppp/internal/engine"
)

// churnTable builds a table whose SUM(v) encodes its round: every row
// carries v = round, so SUM(v) = rows × round and any reader can tell
// exactly which table version answered it — a torn or stale answer is
// arithmetically visible.
func churnTable(rows, round int) *engine.Table {
	v := make([]float64, rows)
	for i := range v {
		v[i] = float64(round)
	}
	return engine.MustNewTable("churn", engine.NewFloatColumn("v", v))
}

// TestServerCacheChurnRace is the -race acceptance test for cache
// invalidation: a writer churns Drop/re-Register with round-stamped
// tables while readers hammer the same statement (maximizing cache
// traffic). Correctness bar: no data race, every answer decodes to an
// exact whole round, and each reader's observed round never moves
// backward — a cached answer from a dropped table's generation would
// read as a round regression and fail here.
func TestServerCacheChurnRace(t *testing.T) {
	const (
		rows    = 256
		rounds  = 60
		readers = 4
	)
	db := aqppp.NewDB()
	if err := db.Register(churnTable(rows, 1)); err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{MaxConcurrent: 4, MaxQueue: 32})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var (
		wg   sync.WaitGroup
		stop atomic.Bool
	)

	// Writer: replace the table with the next round's, never reusing a
	// round number.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for r := 2; r <= rounds; r++ {
			db.Drop("churn")
			if err := db.Register(churnTable(rows, r)); err != nil {
				t.Errorf("register round %d: %v", r, err)
				return
			}
		}
	}()

	body, _ := json.Marshal(QueryRequest{SQL: "SELECT SUM(v) FROM churn"})
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := ts.Client()
			lastRound := 0
			for !stop.Load() {
				resp, err := c.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("reader post: %v", err)
					return
				}
				data, err := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				if err != nil {
					t.Errorf("reader read: %v", err)
					return
				}
				if resp.StatusCode == http.StatusNotFound {
					// Mid-churn gap between Drop and re-Register.
					continue
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader status %d: %s", resp.StatusCode, data)
					return
				}
				var qr QueryResponse
				if err := json.Unmarshal(data, &qr); err != nil {
					t.Errorf("reader decode: %v", err)
					return
				}
				round := int(math.Round(qr.Value / rows))
				if round < 1 || round > rounds || math.Abs(qr.Value-float64(round*rows)) > 0.5 {
					t.Errorf("torn answer: SUM = %v is not rows×round", qr.Value)
					return
				}
				// Tables only move forward; serving an earlier round after
				// a later one means a poisoned cache entry got out.
				if round < lastRound {
					t.Errorf("round moved backward %d -> %d (cached=%v): stale cache entry served",
						lastRound, round, qr.Cached)
					return
				}
				lastRound = round
			}
		}()
	}
	wg.Wait()

	// Post-churn the cache must be coherent: the final round's answer,
	// then a hit for the same.
	c := ts.Client()
	for i := 0; i < 2; i++ {
		resp, err := c.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if got := int(math.Round(qr.Value / rows)); got != rounds {
			t.Fatalf("post-churn answer %d, want final round %d", got, rounds)
		}
	}
	if st := srv.cache.Stats(); st.Hits == 0 {
		t.Error("churn race never exercised a cache hit; test lost its teeth")
	}
}
