package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promLineRe matches one sample line: name{labels} value, with the
// label block optional.
var promLineRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$`)

// scrapeMetrics fetches /metrics and returns the raw text.
func scrapeMetrics(t *testing.T, c *http.Client, base string) string {
	t.Helper()
	resp, err := c.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Errorf("Content-Type = %q, want text/plain version 0.0.4", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// sampleValue finds one exact series (full name with label block) and
// returns its value.
func sampleValue(t *testing.T, text, series string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found", series)
	return 0
}

// TestMetricsPrometheusFormat drives real traffic (a miss, a hit, an
// error, a quota shed) and then validates the scrape: every line is
// either a well-formed comment or a well-formed sample, every family
// has HELP and TYPE, histogram buckets are cumulative and end at +Inf
// == _count, and the gate/cache/quota counters carry the traffic that
// just happened.
func TestMetricsPrometheusFormat(t *testing.T) {
	db := newTestDB(t, 2000)
	srv := New(db, Config{MaxConcurrent: 2, MaxQueue: 4, QuotaRate: 0.001, QuotaBurst: 2})
	base := startServer(t, srv)
	c := burstClient()

	const stmt = "SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400"
	// Two misses (distinct clients so the second isn't quota-shed), one
	// hit, one taxonomy error, then quota sheds for the first client.
	if status, _, _ := postJSONWithHeader(t, c, base+"/v1/query", QueryRequest{SQL: stmt}, "X-Client-Id", "m1"); status != http.StatusOK {
		t.Fatalf("miss: %d", status)
	}
	if status, _, _ := postJSONWithHeader(t, c, base+"/v1/query", QueryRequest{SQL: stmt}, "X-Client-Id", "m2"); status != http.StatusOK {
		t.Fatalf("hit: %d", status)
	}
	if status, _, _ := postJSON(t, c, base+"/v1/query", QueryRequest{SQL: "SELECT SUM(v) FROM nope"}); status != http.StatusNotFound {
		t.Fatalf("error probe: %d", status)
	}
	quotaStatus := 0
	for i := 0; i < 4 && quotaStatus != http.StatusTooManyRequests; i++ {
		sql := fmt.Sprintf("SELECT COUNT(*) FROM demo WHERE k BETWEEN %d AND 100", i+1)
		quotaStatus, _, _ = postJSONWithHeader(t, c, base+"/v1/query", QueryRequest{SQL: sql}, "X-Client-Id", "m1")
	}
	if quotaStatus != http.StatusTooManyRequests {
		t.Fatal("never provoked a quota shed")
	}

	text := scrapeMetrics(t, c, base)

	// Line-level validity plus HELP/TYPE bookkeeping.
	helps, types := map[string]bool{}, map[string]string{}
	var sampleFamilies []string
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			helps[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unknown comment form: %q", line)
			continue
		}
		if !promLineRe.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		sampleFamilies = append(sampleFamilies, name)
	}
	for _, name := range sampleFamilies {
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				family = base
				break
			}
		}
		if !helps[family] {
			t.Errorf("series %s (family %s) missing # HELP", name, family)
		}
		if types[family] == "" {
			t.Errorf("series %s (family %s) missing # TYPE", name, family)
		}
	}

	// The counters reflect the traffic above.
	if v := sampleValue(t, text, "aqppp_cache_hits_total"); v < 1 {
		t.Errorf("cache hits = %v, want >= 1", v)
	}
	if v := sampleValue(t, text, "aqppp_cache_misses_total"); v < 1 {
		t.Errorf("cache misses = %v, want >= 1", v)
	}
	if v := sampleValue(t, text, "aqppp_quota_shed_total"); v < 1 {
		t.Errorf("quota sheds = %v, want >= 1", v)
	}
	if v := sampleValue(t, text, "aqppp_gate_served_total"); v < 2 {
		t.Errorf("gate served = %v, want >= 2", v)
	}
	if v := sampleValue(t, text, `aqppp_errors_total{kind="unknown-table"}`); v < 1 {
		t.Errorf("unknown-table errors = %v, want >= 1", v)
	}
	if v := sampleValue(t, text, `aqppp_errors_total{kind="quota-exceeded"}`); v < 1 {
		t.Errorf("quota-exceeded errors = %v, want >= 1", v)
	}
	sampleValue(t, text, "aqppp_uptime_seconds")
	sampleValue(t, text, "aqppp_ready")
	sampleValue(t, text, "aqppp_cache_entries")
	sampleValue(t, text, "aqppp_cache_bytes")
	sampleValue(t, text, "aqppp_quota_clients")
	if v := sampleValue(t, text, `aqppp_http_requests_total{endpoint="/v1/query",status="200"}`); v < 2 {
		t.Errorf("/v1/query 200s = %v, want >= 2", v)
	}

	// Histogram shape for /v1/query: cumulative buckets ending at +Inf,
	// and +Inf equals _count.
	var les []float64
	var cums []float64
	var infCum, count float64
	sc = bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		const pfx = `aqppp_http_request_duration_seconds_bucket{endpoint="/v1/query",le="`
		if rest, ok := strings.CutPrefix(line, pfx); ok {
			le, val, found := strings.Cut(rest, `"} `)
			if !found {
				t.Fatalf("bad bucket line %q", line)
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("bad bucket count in %q", line)
			}
			if le == "+Inf" {
				infCum = v
				continue
			}
			lf, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("bad le bound in %q", line)
			}
			les = append(les, lf)
			cums = append(cums, v)
		}
		if rest, ok := strings.CutPrefix(line, `aqppp_http_request_duration_seconds_count{endpoint="/v1/query"} `); ok {
			count, _ = strconv.ParseFloat(rest, 64)
		}
	}
	if len(les) < 10 {
		t.Fatalf("only %d finite buckets for /v1/query", len(les))
	}
	for i := 1; i < len(les); i++ {
		if les[i] <= les[i-1] {
			t.Errorf("le bounds not increasing: %v then %v", les[i-1], les[i])
		}
		if cums[i] < cums[i-1] {
			t.Errorf("bucket counts not cumulative: %v then %v", cums[i-1], cums[i])
		}
	}
	if infCum < cums[len(cums)-1] {
		t.Errorf("+Inf bucket %v below last finite bucket %v", infCum, cums[len(cums)-1])
	}
	if infCum != count {
		t.Errorf("+Inf bucket %v != _count %v", infCum, count)
	}
	if sum := sampleValue(t, text, `aqppp_http_request_duration_seconds_sum{endpoint="/v1/query"}`); sum <= 0 {
		t.Errorf("duration _sum = %v, want > 0", sum)
	}
}

// TestStatuszKeepsExistingFieldsAndGainsCache pins the /statusz
// contract: every pre-cache field is still present under its old name,
// and the new cache/quota fields are populated.
func TestStatuszKeepsExistingFieldsAndGainsCache(t *testing.T) {
	db := newTestDB(t, 1000)
	srv := New(db, Config{MaxConcurrent: 2, MaxQueue: 4, QuotaRate: 1})
	base := startServer(t, srv)
	c := burstClient()

	const stmt = "SELECT COUNT(*) FROM demo"
	for i := 0; i < 2; i++ {
		if status, _, _ := postJSON(t, c, base+"/v1/query", QueryRequest{SQL: stmt}); status != http.StatusOK {
			t.Fatalf("query %d failed", i)
		}
	}

	resp, err := c.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"uptime_seconds", "ready", "draining", "in_flight", "queued",
		"served_total", "shed_total", "queued_total", "concurrency_limit",
		"tables", "prepared", "endpoints",
	} {
		if _, ok := raw[field]; !ok {
			t.Errorf("/statusz lost existing field %q", field)
		}
	}
	cache, ok := raw["cache"].(map[string]any)
	if !ok {
		t.Fatal("/statusz missing cache block")
	}
	for _, field := range []string{"hits", "misses", "evictions", "invalidations", "entries", "bytes", "max_bytes"} {
		if _, ok := cache[field]; !ok {
			t.Errorf("cache block missing %q", field)
		}
	}
	if cache["hits"].(float64) < 1 {
		t.Errorf("cache hits = %v, want >= 1", cache["hits"])
	}
	if _, ok := raw["quota_shed_total"]; !ok {
		t.Error("/statusz missing quota_shed_total")
	}
	if _, ok := raw["quota_clients"]; !ok {
		t.Error("/statusz missing quota_clients")
	}
}
