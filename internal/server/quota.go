package server

import (
	"sync"
	"time"
)

// Quota is the per-client fairness layer: one token bucket per client
// key, refilled at rate tokens/second up to burst. It sits between the
// response cache and the admission gate — cache hits bypass it (they
// cost nothing worth rationing), and requests it sheds never reach the
// gate, so one hot client exhausts its own bucket instead of the shared
// queue. A quota shed is reported distinctly from a capacity shed: 429
// with kind "quota-exceeded" versus the gate's "overloaded".
//
// The client table is bounded at maxClients buckets; inserting past the
// bound evicts the least-recently-seen client (whose bucket restarts
// full if it returns — a bounded-memory tradeoff, not a correctness
// one). All methods are safe for concurrent use and nil-receiver-safe.
type Quota struct {
	mu         sync.Mutex
	rate       float64 // tokens per second
	burst      float64
	maxClients int
	clients    map[string]*tokenBucket
	shed       int64
}

// tokenBucket is one client's bucket; refill is computed lazily from
// the time of the last Allow call.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewQuota builds a quota admitting burst immediate requests per client
// and rate requests/second sustained. burst < 1 is treated as 1;
// maxClients < 1 falls back to 4096.
func NewQuota(rate float64, burst, maxClients int) *Quota {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	if maxClients < 1 {
		maxClients = 4096
	}
	return &Quota{
		rate:       rate,
		burst:      b,
		maxClients: maxClients,
		clients:    make(map[string]*tokenBucket),
	}
}

// Allow takes one token from client's bucket. When the bucket is empty
// it reports false plus the wait until one token refills (the 429's
// Retry-After hint) and counts a shed. now is a parameter so tests can
// drive the clock.
func (q *Quota) Allow(client string, now time.Time) (bool, time.Duration) {
	if q == nil {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.clients[client]
	if b == nil {
		if len(q.clients) >= q.maxClients {
			q.evictOldestLocked()
		}
		b = &tokenBucket{tokens: q.burst, last: now}
		q.clients[client] = b
	} else {
		if el := now.Sub(b.last).Seconds(); el > 0 {
			b.tokens += el * q.rate
			if b.tokens > q.burst {
				b.tokens = q.burst
			}
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	q.shed++
	wait := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// AllowN takes up to want tokens from client's bucket, returning how
// many it granted (possibly fewer than asked). It backs the quota-lease
// authority endpoint: a replica leases a batch on a client's behalf and
// admits from its local cache, so the fleet drains one logical bucket.
// A zero grant counts as one shed and reports the refill wait.
func (q *Quota) AllowN(client string, want int, now time.Time) (int, time.Duration) {
	if q == nil {
		return want, 0
	}
	if want < 1 {
		want = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.clients[client]
	if b == nil {
		if len(q.clients) >= q.maxClients {
			q.evictOldestLocked()
		}
		b = &tokenBucket{tokens: q.burst, last: now}
		q.clients[client] = b
	} else {
		if el := now.Sub(b.last).Seconds(); el > 0 {
			b.tokens += el * q.rate
			if b.tokens > q.burst {
				b.tokens = q.burst
			}
		}
		b.last = now
	}
	if b.tokens >= 1 {
		granted := int(b.tokens)
		if granted > want {
			granted = want
		}
		b.tokens -= float64(granted)
		return granted, 0
	}
	q.shed++
	wait := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return 0, wait
}

// evictOldestLocked removes the least-recently-seen bucket; callers
// hold q.mu and have at least one entry in the table.
func (q *Quota) evictOldestLocked() {
	var oldest string
	var oldestAt time.Time
	first := true
	for c, b := range q.clients {
		if first || b.last.Before(oldestAt) {
			oldest, oldestAt, first = c, b.last, false
		}
	}
	delete(q.clients, oldest)
}

// Shed reports requests rejected for being over quota.
func (q *Quota) Shed() int64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.shed
}

// Clients reports the tracked client-bucket count.
func (q *Quota) Clients() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.clients)
}
