package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

// postJSONWithHeader is postJSON with one extra request header (the
// quota tests identify clients via X-Client-Id).
func postJSONWithHeader(t *testing.T, c *http.Client, url string, body any, hk, hv string) (int, map[string]any, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(hk, hv)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("bad JSON body %q: %v", data, err)
		}
	}
	return resp.StatusCode, out, resp.Header
}

// TestQuotaTokenBucket drives one bucket with an injected clock: burst
// admits immediately, an empty bucket sheds with a sane Retry-After
// hint, and refill tracks elapsed time at the configured rate.
func TestQuotaTokenBucket(t *testing.T) {
	q := NewQuota(1, 2, 16) // 1 token/s, burst 2
	now := time.Unix(1000, 0)

	for i := 0; i < 2; i++ {
		if ok, _ := q.Allow("a", now); !ok {
			t.Fatalf("burst request %d should be admitted", i)
		}
	}
	ok, wait := q.Allow("a", now)
	if ok {
		t.Fatal("third immediate request should shed")
	}
	if wait < 500*time.Millisecond || wait > 2*time.Second {
		t.Errorf("retry hint %v outside the ~1s refill window", wait)
	}
	if q.Shed() != 1 {
		t.Errorf("shed = %d, want 1", q.Shed())
	}

	// One second refills one token.
	now = now.Add(time.Second)
	if ok, _ := q.Allow("a", now); !ok {
		t.Error("refilled bucket should admit")
	}
	if ok, _ := q.Allow("a", now); ok {
		t.Error("bucket should be empty again")
	}

	// Refill caps at burst: a long-idle client gets burst, not more.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 5; i++ {
		if ok, _ := q.Allow("a", now); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Errorf("after long idle: admitted %d, want burst=2", admitted)
	}

	// Buckets are per client: a fresh client is unaffected by the hot one.
	if ok, _ := q.Allow("b", now); !ok {
		t.Error("fresh client should be admitted")
	}
}

// TestQuotaClientEviction pins the bounded-memory behavior: past
// maxClients the least-recently-seen bucket is dropped.
func TestQuotaClientEviction(t *testing.T) {
	q := NewQuota(1, 1, 2)
	now := time.Unix(1000, 0)
	q.Allow("a", now)
	q.Allow("b", now.Add(time.Millisecond))
	q.Allow("c", now.Add(2*time.Millisecond)) // evicts a
	if got := q.Clients(); got != 2 {
		t.Fatalf("clients = %d, want 2", got)
	}
	// a returns with a full bucket (it was forgotten) — admitted even
	// though its old bucket would have been empty.
	if ok, _ := q.Allow("a", now.Add(3*time.Millisecond)); !ok {
		t.Error("evicted client should restart with a full bucket")
	}
	if got := q.Clients(); got != 2 {
		t.Errorf("clients = %d, want 2 after re-insert", got)
	}
}

// TestQuotaNilSafe verifies the disabled path is inert.
func TestQuotaNilSafe(t *testing.T) {
	var q *Quota
	if ok, _ := q.Allow("a", time.Now()); !ok {
		t.Error("nil quota must admit everything")
	}
	if q.Shed() != 0 || q.Clients() != 0 {
		t.Error("nil quota must report zeros")
	}
}

// TestServerQuotaFairness is the acceptance pin for per-client
// fairness: a hot client burning distinct (uncacheable-by-repeat)
// queries is shed with 429 kind "quota-exceeded" while a cold client
// sails through — and the quota sheds are counted apart from the
// gate's capacity sheds.
func TestServerQuotaFairness(t *testing.T) {
	db := newTestDB(t, 1000)
	srv := New(db, Config{
		MaxConcurrent: 4, MaxQueue: 16,
		QuotaRate: 0.5, QuotaBurst: 3,
	})
	base := startServer(t, srv)
	c := burstClient()

	post := func(clientID, sql string) (int, map[string]any, http.Header) {
		t.Helper()
		return postJSONWithHeader(t, c, base+"/v1/query", QueryRequest{SQL: sql}, "X-Client-Id", clientID)
	}

	// The hog sends distinct statements sequentially so neither the
	// cache nor concurrency is in play — only its bucket.
	hogSheds := 0
	var shedBody map[string]any
	var shedHdr http.Header
	for i := 0; i < 6; i++ {
		sql := fmt.Sprintf("SELECT COUNT(*) FROM demo WHERE k BETWEEN %d AND %d", i+1, i+100)
		status, body, hdr := post("hog", sql)
		switch status {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			hogSheds++
			shedBody, shedHdr = body, hdr
		default:
			t.Fatalf("hog request %d: unexpected status %d body %v", i, status, body)
		}
	}
	if hogSheds == 0 {
		t.Fatal("hog was never shed; quota is not enforced")
	}
	if kind := errKind(shedBody); kind != "quota-exceeded" {
		t.Errorf("shed kind = %q, want quota-exceeded", kind)
	}
	if shedHdr.Get("Retry-After") == "" {
		t.Error("quota shed missing Retry-After header")
	}
	if ra, _ := shedBody["error"].(map[string]any); ra["retry_after_ms"] == nil {
		t.Error("quota shed missing retry_after_ms in body")
	}

	// A cold client is untouched by the hog's exhaustion.
	status, body, _ := post("cold", "SELECT COUNT(*) FROM demo WHERE k BETWEEN 7 AND 300")
	if status != http.StatusOK {
		t.Fatalf("cold client: status %d body %v (one client's quota must not starve another)", status, body)
	}

	// The taxonomy of sheds: all of the above were quota sheds, none
	// were capacity sheds.
	if got := srv.Gate().Shed(); got != 0 {
		t.Errorf("gate sheds = %d, want 0 (server never hit capacity)", got)
	}
	if got := srv.quota.Shed(); int(got) != hogSheds {
		t.Errorf("quota sheds = %d, want %d", got, hogSheds)
	}
	if got := srv.met.kindCount("quota-exceeded"); int(got) != hogSheds {
		t.Errorf("quota-exceeded kind count = %d, want %d", got, hogSheds)
	}
}

// TestServerCacheHitBypassesQuota verifies cached answers are free: a
// client over its quota still gets hits (they cost the server nothing
// worth rationing).
func TestServerCacheHitBypassesQuota(t *testing.T) {
	db := newTestDB(t, 1000)
	srv := New(db, Config{
		MaxConcurrent: 2, MaxQueue: 4,
		QuotaRate: 0.001, QuotaBurst: 1, // one miss, then nothing for ~17min
	})
	base := startServer(t, srv)
	c := burstClient()

	const stmt = "SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400"
	status, body, _ := postJSONWithHeader(t, c, base+"/v1/query", QueryRequest{SQL: stmt}, "X-Client-Id", "x")
	if status != http.StatusOK {
		t.Fatalf("first (token-consuming) request: status %d body %v", status, body)
	}
	// The bucket is now empty; repeats of the same statement still land
	// because the cache answers before the quota is consulted.
	for i := 0; i < 3; i++ {
		status, body, hdr := postJSONWithHeader(t, c, base+"/v1/query", QueryRequest{SQL: stmt}, "X-Client-Id", "x")
		if status != http.StatusOK {
			t.Fatalf("cached repeat %d: status %d body %v", i, status, body)
		}
		if hdr.Get("X-Cache") != "hit" {
			t.Errorf("repeat %d should be a cache hit", i)
		}
	}
	// But a distinct statement from the same client is over quota.
	status, body, _ = postJSONWithHeader(t, c, base+"/v1/query",
		QueryRequest{SQL: "SELECT COUNT(*) FROM demo"}, "X-Client-Id", "x")
	if status != http.StatusTooManyRequests || errKind(body) != "quota-exceeded" {
		t.Errorf("distinct statement: status %d kind %q, want 429 quota-exceeded", status, errKind(body))
	}
}
