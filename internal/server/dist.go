package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"aqppp"
	"aqppp/internal/dist"
	"aqppp/internal/engine"
	"aqppp/internal/exec"
)

// This file is the server's distributed-execution surface: the three
// internal endpoints a fleet speaks among itself.
//
//	GET  /v1/shard        replica handshake: identity, schema, handles
//	POST /v1/partial      one stratum's share of a distributed query
//	POST /v1/quota/lease  token-lease authority for shared client quota
//
// A replica (Config.Replica set) serves the first two; the process
// holding the client-facing quota serves the third. The coordinator
// side lives in internal/dist; a coordinator server routes ordinary
// /v1/query and /v1/approx requests to it through the aqppp.DB like any
// other table.

// ReplicaRole marks a server as one shard replica: the sliced table it
// serves as Table, under the identity it reports in its handshake.
type ReplicaRole struct {
	Table string
	Ident dist.ShardIdentity
}

// handleShardHello answers GET /v1/shard: the handshake body a
// coordinator validates the fleet with.
func (s *Server) handleShardHello(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	role := s.cfg.Replica
	if role == nil {
		s.writeServerError(w, ri, http.StatusNotFound, "not-a-replica",
			"this server does not serve a shard slice")
		return
	}
	tbl, ok := s.db.LookupTable(role.Table)
	if !ok {
		s.writeServerError(w, ri, http.StatusInternalServerError, "internal",
			fmt.Sprintf("replica table %q is not registered", role.Table))
		return
	}
	handles := make([]dist.HandleInfo, 0, 4)
	for _, name := range s.preparedNames() {
		if p, _, found := s.lookupPrepared(name); found {
			handles = append(handles, dist.HandleInfo{
				Name:       name,
				Confidence: p.Confidence(),
				SampleRows: p.Stats().SampleRows,
			})
		}
	}
	s.writeJSON(w, http.StatusOK, dist.HelloFor(tbl, role.Ident, handles))
}

// handlePartial answers POST /v1/partial: one stratum's share of a
// distributed query, behind the same admission gate as client traffic —
// an overloaded replica sheds partials with 429 + Retry-After, and the
// coordinator propagates the hint rather than flattening it into a 500.
// Per-client quota does not apply: the fleet's quota was charged where
// the client's request entered.
func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	role := s.cfg.Replica
	if role == nil {
		s.writeServerError(w, ri, http.StatusNotFound, "not-a-replica",
			"this server does not serve a shard slice")
		return
	}
	var preq dist.PartialRequest
	if !s.decode(w, r, ri, &preq) {
		return
	}
	if preq.V != dist.WireVersion {
		s.writeServerError(w, ri, http.StatusBadRequest, "parse",
			fmt.Sprintf("request speaks wire v%d, replica v%d", preq.V, dist.WireVersion))
		return
	}
	if preq.Table != role.Table {
		s.writeServerError(w, ri, http.StatusNotFound, aqppp.ErrUnknownTable.String(),
			fmt.Sprintf("replica serves table %q, not %q", role.Table, preq.Table))
		return
	}
	q, err := dist.FromWireQuery(preq.Query)
	if err != nil {
		s.writeServerError(w, ri, http.StatusBadRequest, "parse", err.Error())
		return
	}
	release, _, ok := s.admit(w, r, ri, preq.TimeoutMS)
	if !ok {
		return
	}
	defer release()
	t0 := time.Now()
	resp := dist.PartialResponse{V: dist.WireVersion, Shard: role.Ident.Index, Mode: preq.Mode}
	switch preq.Mode {
	case dist.ModeExact:
		pr, err := s.partialExact(r.Context(), role.Table, q)
		if err != nil {
			s.writePartialError(r.Context(), w, ri, err)
			return
		}
		if len(q.GroupBy) > 0 {
			for _, g := range pr.Groups {
				resp.Groups = append(resp.Groups, dist.WireGroupPartial{Key: g.Key, Partial: dist.ToWirePartial(g.Partial)})
			}
		} else {
			sc := dist.ToWirePartial(pr.Scalar)
			resp.Scalar = &sc
		}

	case dist.ModeApprox, dist.ModeGroups, dist.ModeBootstrap:
		prep, _, found := s.lookupPrepared(preq.Handle)
		if !found {
			s.writeServerError(w, ri, http.StatusNotFound, "unknown-prepared",
				fmt.Sprintf("no prepared handle %q", preq.Handle))
			return
		}
		proc := prep.Processor()
		if proc == nil {
			s.writeServerError(w, ri, http.StatusUnprocessableEntity, aqppp.ErrUnsupported.String(),
				fmt.Sprintf("handle %q is not a single-processor preparation", preq.Handle))
			return
		}
		switch preq.Mode {
		case dist.ModeApprox:
			a, err := proc.Answer(q)
			if err != nil {
				s.writePartialError(r.Context(), w, ri, err)
				return
			}
			wa := dist.ToWireAnswer(a)
			resp.Answer = &wa
		case dist.ModeGroups:
			groups, err := proc.AnswerGroups(r.Context(), q)
			if err != nil {
				s.writePartialError(r.Context(), w, ri, err)
				return
			}
			for _, g := range groups {
				resp.AnswerGroups = append(resp.AnswerGroups, dist.WireGroupAnswer{Key: g.Key, Answer: dist.ToWireAnswer(g.Answer)})
			}
		case dist.ModeBootstrap:
			a, err := proc.AnswerBootstrap(r.Context(), q, preq.Resamples, preq.Seed, nil)
			if err != nil {
				s.writePartialError(r.Context(), w, ri, err)
				return
			}
			wa := dist.ToWireAnswer(a)
			resp.Answer = &wa
		}

	default:
		s.writeServerError(w, ri, http.StatusBadRequest, "parse",
			fmt.Sprintf("unknown partial mode %q", preq.Mode))
		return
	}
	resp.ElapsedUS = time.Since(t0).Microseconds()
	s.writeJSON(w, http.StatusOK, resp)
}

// partialExact runs one exact partial against the replica's slice.
func (s *Server) partialExact(ctx context.Context, table string, q engine.Query) (engine.PartialResult, error) {
	tbl, ok := s.db.LookupTable(table)
	if !ok {
		return engine.PartialResult{}, &exec.Error{Kind: exec.UnknownTable, Op: "exact",
			Err: fmt.Errorf("no table %q", table)}
	}
	return tbl.ExecutePartialContext(ctx, q)
}

// writePartialError classifies a partial-execution failure so the
// coordinator's taxonomy mapping sees honest kinds: deadline overruns
// report budget-exceeded (the replica ran out of the coordinator's
// remaining time, not a replica fault worth retrying) and cancellations
// report canceled; anything already carrying a taxonomy kind keeps it.
func (s *Server) writePartialError(ctx context.Context, w http.ResponseWriter, ri *reqInfo, err error) {
	if ctx.Err() == context.DeadlineExceeded {
		err = &exec.Error{Kind: exec.BudgetExceeded, Op: "partial", Err: err}
	} else if ctx.Err() != nil {
		err = &exec.Error{Kind: exec.Canceled, Op: "partial", Err: err}
	}
	s.writeError(w, ri, err)
}

// handleQuotaLease answers POST /v1/quota/lease: the quota authority
// grants a replica a batch of tokens on one client's behalf. With no
// quota configured the authority grants whatever is asked — the fleet
// then fails open exactly like a single unquota'd server.
func (s *Server) handleQuotaLease(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	var req dist.LeaseRequest
	if !s.decode(w, r, ri, &req) {
		return
	}
	if req.V != dist.WireVersion {
		s.writeServerError(w, ri, http.StatusBadRequest, "parse",
			fmt.Sprintf("request speaks wire v%d, authority v%d", req.V, dist.WireVersion))
		return
	}
	if req.Client == "" {
		s.writeServerError(w, ri, http.StatusBadRequest, "parse", `missing "client"`)
		return
	}
	// AllowN on a nil quota grants everything asked: with no quota
	// configured the fleet fails open exactly like one unquota'd server.
	granted, wait := s.quota.AllowN(req.Client, req.Want, time.Now())
	s.writeJSON(w, http.StatusOK, dist.LeaseResponse{
		V:            dist.WireVersion,
		Granted:      granted,
		RetryAfterMS: int64(wait / time.Millisecond),
	})
}
