package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"aqppp"
)

// contractTestServer builds a server with a registered handle "h" over
// the demo table, started on a loopback listener.
func contractTestServer(t *testing.T, rows int) (*aqppp.DB, *Server, string) {
	t.Helper()
	db := newTestDB(t, rows)
	prep, err := db.Prepare(aqppp.PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.1, CellBudget: 50, Seed: 11, WithCountCube: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{MaxConcurrent: 4, MaxQueue: 8})
	if err := srv.RegisterPrepared("h", prep); err != nil {
		t.Fatal(err)
	}
	return db, srv, startServer(t, srv)
}

// sse is one parsed Server-Sent Event.
type sse struct {
	event string
	data  map[string]any
}

// readSSE parses an event stream body into its events.
func readSSE(t *testing.T, body *bufio.Reader) []sse {
	t.Helper()
	var events []sse
	var cur sse
	for {
		line, err := body.ReadString('\n')
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			raw := strings.TrimPrefix(line, "data: ")
			if err := json.Unmarshal([]byte(raw), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", raw, err)
			}
		case line == "" && cur.event != "":
			events = append(events, cur)
			cur = sse{}
		}
		if err != nil {
			return events
		}
	}
}

// TestServerContractEndpoint drives /v1/contract end to end: a feasible
// contract answers 200 within the stated bound (realized against the
// exact answer), carries its strategy, repeats from the cache, and
// shows up in statusz and /metrics.
func TestServerContractEndpoint(t *testing.T) {
	db, srv, base := contractTestServer(t, 20000)
	c := burstClient()
	stmt := "SELECT SUM(v) FROM demo WHERE k BETWEEN 50 AND 400"

	status, body, _ := postJSON(t, c, base+"/v1/contract", ContractRequest{
		Prepared: "h", SQL: stmt, MaxRelError: 0.1,
	})
	if status != http.StatusOK {
		t.Fatalf("contract = %d (%v)", status, body)
	}
	val := body["value"].(float64)
	hw := body["half_width"].(float64)
	if hw > 0.1*math.Abs(val) {
		t.Errorf("answer violates its own contract: hw %v at value %v", hw, val)
	}
	if strat, _ := body["strategy"].(string); strat == "" {
		t.Errorf("contract answer carries no strategy (body %v)", body)
	}
	truth, err := db.Exact(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(val-truth.Value) > 0.25*math.Abs(truth.Value) {
		t.Errorf("contract answer %v too far from exact %v", val, truth.Value)
	}

	// Identical contract: served from the cache.
	status, body, _ = postJSON(t, c, base+"/v1/contract", ContractRequest{
		Prepared: "h", SQL: stmt, MaxRelError: 0.1,
	})
	if status != http.StatusOK || body["cached"] != true {
		t.Errorf("repeat contract = %d cached %v, want 200 from cache", status, body["cached"])
	}
	// A tighter contract over the same statement must not hit that entry.
	status, body, _ = postJSON(t, c, base+"/v1/contract", ContractRequest{
		Prepared: "h", SQL: stmt, MaxRelError: 0.05,
	})
	if status != http.StatusOK {
		t.Fatalf("tighter contract = %d (%v)", status, body)
	}
	if body["cached"] == true {
		t.Error("tighter contract served from the looser contract's cache entry")
	}

	met, infeasible, _, _ := srv.met.contractSnapshot()
	if met < 2 {
		t.Errorf("contract met counter = %d, want >= 2", met)
	}
	if infeasible != 0 {
		t.Errorf("contract infeasible counter = %d, want 0", infeasible)
	}

	// statusz exposes the contract block.
	resp, err := c.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st StatuszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if st.Contract == nil || st.Contract.MetTotal < 2 {
		t.Errorf("statusz contract block = %+v, want met_total >= 2", st.Contract)
	}

	// /metrics exposes the counters in Prometheus text format.
	resp, err = c.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	text := raw.String()
	for _, want := range []string{
		"aqppp_contract_met_total",
		"aqppp_contract_infeasible_total",
		"aqppp_contract_escalated_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestServerContractInfeasible pins the rejection path: an impossible
// bound answers 422 with kind contract-infeasible and a
// tightest_achievable block the client can retry with.
func TestServerContractInfeasible(t *testing.T) {
	_, srv, base := contractTestServer(t, 10000)
	c := burstClient()

	status, body, _ := postJSON(t, c, base+"/v1/contract", ContractRequest{
		Prepared: "h", SQL: "SELECT SUM(v) FROM demo WHERE k BETWEEN 50 AND 400",
		MaxRelError: 1e-10,
	})
	if status != http.StatusUnprocessableEntity || errKind(body) != "contract-infeasible" {
		t.Fatalf("impossible contract = %d kind %q, want 422 contract-infeasible", status, errKind(body))
	}
	e, _ := body["error"].(map[string]any)
	ta, _ := e["tightest_achievable"].(map[string]any)
	if ta == nil {
		t.Fatalf("422 body missing tightest_achievable: %v", body)
	}
	abs, _ := ta["abs"].(float64)
	if abs <= 0 {
		t.Errorf("tightest_achievable.abs = %v, want positive guidance", abs)
	}
	if _, infeasible, _, _ := srv.met.contractSnapshot(); infeasible < 1 {
		t.Errorf("infeasible counter = %d, want >= 1", infeasible)
	}

	// Missing bounds and missing handle are plain 400s, not contract
	// rejections.
	status, body, _ = postJSON(t, c, base+"/v1/contract", ContractRequest{
		Prepared: "h", SQL: "SELECT SUM(v) FROM demo",
	})
	if status != http.StatusBadRequest || errKind(body) != "parse" {
		t.Errorf("boundless contract = %d kind %q, want 400 parse", status, errKind(body))
	}
	status, body, _ = postJSON(t, c, base+"/v1/contract", ContractRequest{
		SQL: "SELECT SUM(v) FROM demo", MaxRelError: 0.1,
	})
	if status != http.StatusBadRequest || errKind(body) != "parse" {
		t.Errorf("handleless contract = %d kind %q, want 400 parse", status, errKind(body))
	}
}

// TestServerProgressiveSSE streams /v1/progressive under a contract and
// checks the SSE framing: Content-Type, at least one "round" event with
// monotonically non-widening half-widths, and a terminal "done" event
// whose reason is contract-met with the bound actually satisfied.
func TestServerProgressiveSSE(t *testing.T) {
	_, srv, base := contractTestServer(t, 20000)
	c := burstClient()

	raw, err := json.Marshal(ProgressiveRequest{
		Prepared: "h", SQL: "SELECT SUM(v) FROM demo WHERE k BETWEEN 50 AND 400",
		MaxRelError: 0.2, StepRows: 1500, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Post(base+"/v1/progressive", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progressive = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	events := readSSE(t, bufio.NewReader(resp.Body))
	if len(events) < 2 {
		t.Fatalf("stream produced %d events, want rounds + done", len(events))
	}
	last := events[len(events)-1]
	if last.event != "done" {
		t.Fatalf("terminal event = %q, want done (events %v)", last.event, events)
	}
	prevHW := math.Inf(1)
	rounds := 0
	for _, ev := range events[:len(events)-1] {
		if ev.event != "round" {
			t.Fatalf("mid-stream event = %q, want round", ev.event)
		}
		rounds++
		hw := ev.data["half_width"].(float64)
		if hw > prevHW {
			t.Errorf("round %v widened: hw %v after %v", ev.data["round"], hw, prevHW)
		}
		prevHW = hw
	}
	if last.data["reason"] != "contract-met" || last.data["met"] != true {
		t.Errorf("done = %v, want reason contract-met with met", last.data)
	}
	if got := int(last.data["rounds"].(float64)); got != rounds {
		t.Errorf("done rounds = %d, streamed %d", got, rounds)
	}
	val := last.data["value"].(float64)
	hw := last.data["half_width"].(float64)
	if hw > 0.2*math.Abs(val) {
		t.Errorf("contract-met stream ended outside its bound: hw %v at %v", hw, val)
	}
	if id, _ := last.data["request_id"].(string); id == "" {
		t.Error("done event missing request_id")
	}
	if met, _, _, prog := srv.met.contractSnapshot(); met < 1 || prog < int64(rounds) {
		t.Errorf("contract metrics after stream: met %d rounds %d, want >= 1 / >= %d", met, prog, rounds)
	}
}

// TestServerProgressiveDisconnect tears a client away mid-stream and
// requires the server to unwind: the admission slot frees and the
// canceled counter bumps, same as every other torn-down request.
func TestServerProgressiveDisconnect(t *testing.T) {
	_, srv, base := contractTestServer(t, 20000)
	c := burstClient()

	raw, err := json.Marshal(ProgressiveRequest{
		// No contract and a tiny step: the stream would run many rounds.
		Prepared: "h", SQL: "SELECT SUM(v) FROM demo WHERE k BETWEEN 50 AND 400",
		StepRows: 256, MaxRounds: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/progressive", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one round so the stream is demonstrably underway, then drop.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("never saw the first round: %v", err)
	}
	cancel()
	_ = resp.Body.Close()

	waitFor(t, 5*time.Second, func() bool { return srv.Gate().InFlight() == 0 })
	waitFor(t, 2*time.Second, func() bool { return srv.met.kindCount("canceled") >= 1 })
}
