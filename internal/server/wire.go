// Package server is aqppp's HTTP serving subsystem: a stdlib-only JSON
// API over one *aqppp.DB, fronted by an admission controller (bounded
// concurrency, bounded deadline-aware wait queue, immediate load
// shedding) and closed out by a graceful drain. It is the boundary the
// ROADMAP's "heavy traffic" north star needs: per-request deadlines map
// onto the executor's Budget, client disconnects propagate as context
// cancellation into the engine's per-block cancel checks, and every
// failure maps the unified error taxonomy onto a stable HTTP status
// with a machine-readable JSON body.
//
// Endpoints:
//
//	POST   /v1/query           exact answer over a registered table
//	POST   /v1/approx          approximate answer via a named prepared handle
//	POST   /v1/contract        answer under an a-priori error contract (422 if infeasible)
//	POST   /v1/progressive     SSE stream of refining estimates (online aggregation)
//	POST   /v1/prepare         build and name a prepared handle
//	DELETE /v1/prepared/{name} forget a prepared handle
//	GET    /v1/shard           replica handshake (fleet-internal; see dist.go)
//	POST   /v1/partial         one stratum's distributed partial (fleet-internal)
//	POST   /v1/quota/lease     shared-quota token lease (fleet-internal)
//	GET    /healthz            liveness (always 200 while the process serves)
//	GET    /readyz             readiness (503 once draining)
//	GET    /statusz            uptime, traffic counters, latency histograms
//	GET    /metrics            the same counters in Prometheus text format
//
// In front of the admission gate sit a response cache (LRU by bytes,
// TTL, invalidated by table generation and prepared-handle epoch — see
// cache.go) and a per-client token-bucket quota (quota.go): a repeated
// query is answered from the cache without consuming gate capacity or
// quota tokens, and a client hammering distinct queries exhausts its
// own bucket (429, kind "quota-exceeded") before it can crowd the
// shared queue.
package server

import (
	"net/http"
	"time"

	"aqppp"
	"aqppp/internal/engine"
)

// statusClientClosedRequest is the non-standard 499 (nginx convention)
// reported when the client's context canceled the query; the client is
// usually gone, but the code keeps access logs and metrics honest.
const statusClientClosedRequest = 499

// QueryRequest is the body of POST /v1/query and POST /v1/approx.
type QueryRequest struct {
	// SQL is the statement to answer.
	SQL string `json:"sql"`
	// Prepared names the handle to answer through (/v1/approx only).
	Prepared string `json:"prepared,omitempty"`
	// TimeoutMS bounds the request's wall time — queue wait included —
	// and maps onto the executor Budget's Timeout. 0 uses the server's
	// default; the server's MaxTimeout caps it either way.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Resamples switches /v1/approx to an empirical bootstrap interval
	// with that many replicates (0 keeps the closed form).
	Resamples int `json:"resamples,omitempty"`
}

// GroupJSON is one group's row in a response.
type GroupJSON struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
	// Rows is set on exact group-by answers.
	Rows int `json:"rows,omitempty"`
	// HalfWidth is set on approximate group-by answers — always, even
	// when the interval is exactly zero (the cube covered the group), so
	// clients can rely on its presence. Pointer-typed so exact answers
	// omit it instead of reporting a misleading 0.
	HalfWidth *float64 `json:"half_width,omitempty"`
	// Pre names the precomputed aggregate that anchored the group.
	Pre string `json:"pre,omitempty"`
}

// QueryResponse is the success body of POST /v1/query and /v1/approx.
type QueryResponse struct {
	RequestID string  `json:"request_id"`
	Value     float64 `json:"value"`
	// HalfWidth/Confidence/UsedPrecomputed/Pre are approx-only.
	// HalfWidth and Confidence are pointer-typed so an approx answer
	// always carries them — a zero-width interval (the cube covered the
	// query exactly) is a meaningful answer, not an absent field — while
	// exact answers omit them entirely.
	HalfWidth       *float64    `json:"half_width,omitempty"`
	Confidence      *float64    `json:"confidence,omitempty"`
	UsedPrecomputed bool        `json:"used_precomputed,omitempty"`
	Pre             string      `json:"pre,omitempty"`
	Groups          []GroupJSON `json:"groups,omitempty"`
	// Partial marks a degraded distributed answer: a replica was lost
	// and the surviving strata answered with a widened interval (opt-in
	// via the coordinator's degraded policy). Partial answers are never
	// cached.
	Partial bool `json:"partial,omitempty"`
	// Cached marks an answer served from the response cache (mirrored in
	// the X-Cache: hit header); ElapsedMS then measures the lookup, not
	// the original computation.
	Cached    bool    `json:"cached,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Strategy and Escalated are contract-only: the ladder rung that
	// answered ("cube", "approx", "bootstrap", "exact") and whether the
	// planner's first choice missed the bound at run time.
	Strategy  string `json:"strategy,omitempty"`
	Escalated bool   `json:"escalated,omitempty"`
}

// ContractRequest is the body of POST /v1/contract: a statement plus
// the error the client can tolerate. At least one of MaxRelError /
// MaxAbsError must be set; when both are, both must hold.
type ContractRequest struct {
	SQL      string `json:"sql"`
	Prepared string `json:"prepared"`
	// MaxRelError bounds half-width / |value| (0.01 = ±1%).
	MaxRelError float64 `json:"max_rel_error,omitempty"`
	// MaxAbsError bounds the half-width in the aggregate's units.
	MaxAbsError float64 `json:"max_abs_error,omitempty"`
	// Confidence is the CI level the bound holds at (default 0.95).
	Confidence float64 `json:"confidence,omitempty"`
	// AllowExact permits escalation to a full exact scan; without it an
	// unreachable bound is rejected 422 instead of silently degrading
	// into a table scan.
	AllowExact bool  `json:"allow_exact,omitempty"`
	TimeoutMS  int64 `json:"timeout_ms,omitempty"`
}

// ProgressiveRequest is the body of POST /v1/progressive. The optional
// contract fields terminate the stream early once met; without them
// the stream runs to sample exhaustion or the round cap.
type ProgressiveRequest struct {
	SQL         string  `json:"sql"`
	Prepared    string  `json:"prepared"`
	MaxRelError float64 `json:"max_rel_error,omitempty"`
	MaxAbsError float64 `json:"max_abs_error,omitempty"`
	Confidence  float64 `json:"confidence,omitempty"`
	// StepRows is the rows added to the sample per round (0 = 2% of the
	// table, at least 1024).
	StepRows int `json:"step_rows,omitempty"`
	// MaxRounds caps the stream (0 = 64).
	MaxRounds int    `json:"max_rounds,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// ProgressiveRoundJSON is the data payload of one "round" SSE event.
type ProgressiveRoundJSON struct {
	Round      int     `json:"round"`
	Value      float64 `json:"value"`
	HalfWidth  float64 `json:"half_width"`
	Confidence float64 `json:"confidence"`
	SampleRows int     `json:"sample_rows"`
	Met        bool    `json:"met,omitempty"`
}

// ProgressiveDoneJSON is the data payload of the terminal "done" SSE
// event: the summary plus why the stream stopped ("contract-met",
// "sample-exhausted", "max-rounds", or "budget-exhausted").
type ProgressiveDoneJSON struct {
	RequestID  string  `json:"request_id"`
	Reason     string  `json:"reason"`
	Rounds     int     `json:"rounds"`
	Value      float64 `json:"value"`
	HalfWidth  float64 `json:"half_width"`
	Confidence float64 `json:"confidence"`
	SampleRows int     `json:"sample_rows"`
	Met        bool    `json:"met,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// PrepareRequest is the body of POST /v1/prepare; it mirrors
// aqppp.PrepareOptions plus the handle name the server registers the
// preparation under.
type PrepareRequest struct {
	Name               string   `json:"name"`
	Table              string   `json:"table"`
	Aggregate          string   `json:"aggregate,omitempty"`
	Dimensions         []string `json:"dimensions"`
	SampleRate         float64  `json:"sample_rate,omitempty"`
	CellBudget         int      `json:"cell_budget,omitempty"`
	Confidence         float64  `json:"confidence,omitempty"`
	Seed               uint64   `json:"seed,omitempty"`
	WithCountCube      bool     `json:"with_count_cube,omitempty"`
	WithMinMax         bool     `json:"with_min_max,omitempty"`
	EqualPartitionOnly bool     `json:"equal_partition_only,omitempty"`
	TimeoutMS          int64    `json:"timeout_ms,omitempty"`
}

// PrepareResponse is the success body of POST /v1/prepare.
type PrepareResponse struct {
	RequestID  string  `json:"request_id"`
	Name       string  `json:"name"`
	Table      string  `json:"table"`
	SampleRows int     `json:"sample_rows"`
	CubeCells  int     `json:"cube_cells"`
	BuildMS    float64 `json:"build_ms"`
}

// ErrorBody is every non-2xx response's JSON shape.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable failure: Kind is either an
// aqppp.ErrorKind string ("parse", "unknown-table", "unsupported",
// "canceled", "budget-exceeded", "internal") or one of the server-level
// kinds "overloaded" (shed by admission control), "quota-exceeded"
// (shed by the per-client quota — the server has capacity, this client
// is over its rate), "unknown-prepared" (no such handle), and
// "conflict" (handle name taken).
type ErrorDetail struct {
	Kind      string `json:"kind"`
	Message   string `json:"message"`
	RequestID string `json:"request_id"`
	// RetryAfterMS accompanies kind "overloaded", "quota-exceeded", and
	// "unavailable" failures whose cause was a shedding replica; it
	// mirrors the Retry-After header at millisecond resolution.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// TightestAchievable accompanies kind "contract-infeasible": the
	// smallest error the planner predicts it could deliver without an
	// exact scan, so the client knows how much to loosen. Absent when
	// the aggregate has no sampling estimator at all.
	TightestAchievable *TightestJSON `json:"tightest_achievable,omitempty"`
}

// TightestJSON is the achievable-error block inside a
// contract-infeasible ErrorDetail.
type TightestJSON struct {
	Abs float64 `json:"abs"`
	// Rel is absent when the pilot value was zero (relative error is
	// undefined around zero).
	Rel *float64 `json:"rel,omitempty"`
}

// statusForKind maps the error taxonomy onto stable HTTP statuses:
//
//	parse               → 400 Bad Request
//	unknown-table       → 404 Not Found
//	unsupported         → 422 Unprocessable Entity
//	contract-infeasible → 422 Unprocessable Entity (+ tightest_achievable in the body)
//	budget-exceeded     → 408 Request Timeout
//	canceled            → 499 Client Closed Request
//	unavailable         → 503 Service Unavailable
//	internal            → 500 Internal Server Error
//
// (Admission sheds are not taxonomy errors; they respond 429 with
// Retry-After before any query work runs.)
func statusForKind(k aqppp.ErrorKind) int {
	switch k {
	case aqppp.ErrParse:
		return http.StatusBadRequest
	case aqppp.ErrUnknownTable:
		return http.StatusNotFound
	case aqppp.ErrUnsupported, aqppp.ErrContractInfeasible:
		return http.StatusUnprocessableEntity
	case aqppp.ErrBudgetExceeded:
		return http.StatusRequestTimeout
	case aqppp.ErrCanceled:
		return statusClientClosedRequest
	case aqppp.ErrUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// exactResponse converts an engine result to the wire shape.
func exactResponse(id string, res engine.Result, elapsed time.Duration) QueryResponse {
	out := QueryResponse{RequestID: id, Value: res.Value, ElapsedMS: toMS(elapsed)}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, GroupJSON{Key: g.Key, Value: g.Value, Rows: g.Rows})
	}
	return out
}

// approxResponse converts an AQP++ result to the wire shape.
func approxResponse(id string, res aqppp.Result, elapsed time.Duration) QueryResponse {
	hw, conf := res.HalfWidth, res.Confidence
	out := QueryResponse{
		RequestID:       id,
		Value:           res.Value,
		HalfWidth:       &hw,
		Confidence:      &conf,
		UsedPrecomputed: res.UsedPrecomputed,
		Pre:             res.Pre,
		Partial:         res.Partial,
		ElapsedMS:       toMS(elapsed),
	}
	for _, g := range res.Groups {
		ghw := g.HalfWidth
		out.Groups = append(out.Groups, GroupJSON{
			Key: g.Key, Value: g.Value, HalfWidth: &ghw, Pre: g.Pre,
		})
	}
	return out
}

// contractResponse converts a contract result to the wire shape.
func contractResponse(id string, res aqppp.ContractResult, elapsed time.Duration) QueryResponse {
	out := approxResponse(id, res.Result, elapsed)
	out.Strategy = res.Strategy
	out.Escalated = res.Escalated
	return out
}

func toMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
