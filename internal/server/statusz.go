package server

import (
	"math"
	"sort"
	"strconv"
	"sync"

	"aqppp/internal/dist"
	"aqppp/internal/shard"
	"aqppp/internal/stats"
	"aqppp/internal/store"
)

// Latency histograms bucket log10(latency in µs) so one fixed-width
// stats.Histogram spans 1µs to 1s at quarter-decade resolution —
// interactive-latency SLOs live in the 1ms–1s decades, and the log
// scale keeps both a 50µs cache hit and a 800ms cold scan resolvable.
const (
	latLogMin  = 0.0 // 10^0 µs = 1µs
	latLogMax  = 6.0 // 10^6 µs = 1s
	latBuckets = 24
)

// endpointMetrics aggregates one endpoint's traffic.
type endpointMetrics struct {
	requests int64
	statuses map[int]int64
	latency  *stats.Histogram // over log10(µs)
	// sumUS accumulates total latency so the Prometheus histogram can
	// emit its _sum series (the JSON histogram does not need it).
	sumUS float64
}

// metrics is the server's status registry: per-endpoint latency
// histograms plus per-error-kind counters. All methods are safe for
// concurrent use.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
	kinds     map[string]int64
	// Contract-serving counters: contracts answered within their bound,
	// contracts rejected as infeasible (plan-time or after the ladder
	// ran dry), and contracts that needed a costlier rung than planned.
	contractMet        int64
	contractInfeasible int64
	contractEscalated  int64
	// progRounds buckets progressive per-round wall time on the same
	// log10(µs) scale as the request histograms; progSumUS/progCount
	// feed the Prometheus _sum/_count series.
	progRounds *stats.Histogram
	progSumUS  float64
	progCount  int64
}

func newMetrics() *metrics {
	return &metrics{
		endpoints:  make(map[string]*endpointMetrics),
		kinds:      make(map[string]int64),
		progRounds: stats.NewHistogram(latLogMin, latLogMax, latBuckets),
	}
}

// observe records one completed request.
func (m *metrics) observe(endpoint string, status int, latencyUS float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoints[endpoint]
	if em == nil {
		em = &endpointMetrics{
			statuses: make(map[int]int64),
			latency:  stats.NewHistogram(latLogMin, latLogMax, latBuckets),
		}
		m.endpoints[endpoint] = em
	}
	em.requests++
	em.statuses[status]++
	if latencyUS < 1 {
		latencyUS = 1
	}
	em.sumUS += latencyUS
	em.latency.Add(math.Log10(latencyUS))
}

// observeKind counts one error by taxonomy kind ("canceled", ...).
func (m *metrics) observeKind(kind string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.kinds[kind]++
}

// observeContract records one contract query's outcome.
func (m *metrics) observeContract(met, escalated bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if met {
		m.contractMet++
	} else {
		m.contractInfeasible++
	}
	if escalated {
		m.contractEscalated++
	}
}

// observeProgressiveRound records one streamed round's wall time.
func (m *metrics) observeProgressiveRound(latencyUS float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if latencyUS < 1 {
		latencyUS = 1
	}
	m.progSumUS += latencyUS
	m.progCount++
	m.progRounds.Add(math.Log10(latencyUS))
}

// contractSnapshot reads the contract counters.
func (m *metrics) contractSnapshot() (met, infeasible, escalated, rounds int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.contractMet, m.contractInfeasible, m.contractEscalated, m.progCount
}

// kindCount reads one kind's counter.
func (m *metrics) kindCount(kind string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.kinds[kind]
}

// LatencyBucketJSON is one histogram bucket on the wire: requests with
// GeUS <= latency < LtUS microseconds.
type LatencyBucketJSON struct {
	GeUS  float64 `json:"ge_us"`
	LtUS  float64 `json:"lt_us"`
	Count int64   `json:"count"`
}

// EndpointJSON is one endpoint's statusz entry.
type EndpointJSON struct {
	Requests int64 `json:"requests"`
	// Statuses counts responses by HTTP status code (JSON object keys
	// are the codes as strings).
	Statuses map[string]int64 `json:"statuses"`
	// LatencyUS is the latency histogram; zero-count buckets are
	// omitted.
	LatencyUS []LatencyBucketJSON `json:"latency_us"`
}

// CacheStatusJSON is the response cache's statusz entry.
type CacheStatusJSON struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	MaxBytes      int64 `json:"max_bytes"`
}

// ContractStatusJSON is the contract-serving statusz entry.
type ContractStatusJSON struct {
	MetTotal        int64 `json:"met_total"`
	InfeasibleTotal int64 `json:"infeasible_total"`
	EscalatedTotal  int64 `json:"escalated_total"`
	// ProgressiveRounds counts refinement rounds streamed over SSE.
	ProgressiveRounds int64 `json:"progressive_rounds"`
}

// StatuszResponse is the body of GET /statusz. ShedTotal counts
// capacity sheds only (the admission gate); quota sheds are the
// distinct QuotaShedTotal — the two answer different operational
// questions ("server full" vs "client hot").
type StatuszResponse struct {
	UptimeSeconds  float64          `json:"uptime_seconds"`
	Ready          bool             `json:"ready"`
	Draining       bool             `json:"draining"`
	InFlight       int64            `json:"in_flight"`
	Queued         int64            `json:"queued"`
	ServedTotal    int64            `json:"served_total"`
	ShedTotal      int64            `json:"shed_total"`
	QueuedTotal    int64            `json:"queued_total"`
	Limit          int              `json:"concurrency_limit"`
	Tables         []string         `json:"tables"`
	Prepared       []string         `json:"prepared"`
	Cache          *CacheStatusJSON `json:"cache,omitempty"`
	QuotaShedTotal int64            `json:"quota_shed_total"`
	QuotaClients   int              `json:"quota_clients"`
	// Contract reports contract/progressive serving counters (absent
	// until the first contract or progressive request).
	Contract   *ContractStatusJSON     `json:"contract,omitempty"`
	ErrorKinds map[string]int64        `json:"error_kinds,omitempty"`
	Endpoints  map[string]EndpointJSON `json:"endpoints"`
	// Shards lists each sharded table's layout and per-shard scan
	// counters (absent when no table is sharded).
	Shards []shard.Snapshot `json:"shards,omitempty"`
	// Stores lists each disk-backed table's container and block-cache
	// counters (absent when no table is store-served).
	Stores []store.Snapshot `json:"stores,omitempty"`
	// Dist is the coordinator's fleet view — topology generation,
	// per-replica health and traffic counters (absent off-coordinator).
	Dist *dist.Snapshot `json:"dist,omitempty"`
	// QuotaLease is the replica's shared-quota lease state (absent when
	// quota is local).
	QuotaLease *dist.LeaseSnapshot `json:"quota_lease,omitempty"`
}

// snapshot renders the registry for /statusz.
func (m *metrics) snapshot() (map[string]EndpointJSON, map[string]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	eps := make(map[string]EndpointJSON, len(m.endpoints))
	for name, em := range m.endpoints {
		ej := EndpointJSON{
			Requests: em.requests,
			Statuses: make(map[string]int64, len(em.statuses)),
		}
		codes := make([]int, 0, len(em.statuses))
		for code := range em.statuses {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			ej.Statuses[strconv.Itoa(code)] = em.statuses[code]
		}
		width := (latLogMax - latLogMin) / float64(latBuckets)
		for b, count := range em.latency.Counts {
			if count == 0 {
				continue
			}
			lo := latLogMin + float64(b)*width
			ej.LatencyUS = append(ej.LatencyUS, LatencyBucketJSON{
				GeUS:  math.Round(math.Pow(10, lo)*100) / 100,
				LtUS:  math.Round(math.Pow(10, lo+width)*100) / 100,
				Count: count,
			})
		}
		eps[name] = ej
	}
	kinds := make(map[string]int64, len(m.kinds))
	for k, v := range m.kinds {
		kinds[k] = v
	}
	return eps, kinds
}
