package server

import (
	"container/list"
	"sync"
	"time"
)

// Cache is the serving layer's response cache: an LRU bounded by total
// byte size with a per-entry TTL, keyed on the canonical plan key (see
// exec.Plan.CacheKey) plus the serving-side discriminators the handlers
// fold in (prepared-handle epoch). Every entry records the table
// generation (aqppp.DB.Generation) observed *before* the query ran; a
// lookup whose current generation differs drops the entry on the spot.
// Because generations are monotone and bumped by both Register and
// Drop, an answer computed against a dropped table can never be served
// after the name is re-registered — the stale entry's generation can
// never equal the current one again.
//
// Hits are served in front of the admission gate: a cached answer costs
// a map lookup and a JSON encode, so making it queue behind real
// queries would only convert cheap requests into expensive ones. All
// methods are safe for concurrent use, and all are nil-receiver-safe so
// a server with caching disabled carries a nil *Cache and no branches
// elsewhere.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	ttl      time.Duration // <= 0 means entries never expire by age
	lru      *list.List    // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element
	bytes    int64

	hits          int64
	misses        int64
	evictions     int64
	invalidations int64
}

// cacheEntry is one cached response plus its admission metadata.
type cacheEntry struct {
	key     string
	gen     uint64
	resp    QueryResponse
	size    int64
	expires time.Time // zero when the cache has no TTL
}

// NewCache builds a cache bounded at maxBytes total entry size.
// ttl <= 0 disables age-based expiry (entries still churn by LRU and
// generation).
func NewCache(maxBytes int64, ttl time.Duration) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		ttl:      ttl,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get looks up key, requiring the entry's recorded generation to equal
// gen. A generation mismatch removes the entry and counts an
// invalidation; an expired entry is removed and counts an eviction.
// Both — and plain absence — count a miss.
func (c *Cache) Get(key string, gen uint64) (QueryResponse, bool) {
	if c == nil {
		return QueryResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return QueryResponse{}, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		c.removeLocked(el)
		c.invalidations++
		c.misses++
		return QueryResponse{}, false
	}
	if !e.expires.IsZero() && time.Now().After(e.expires) {
		c.removeLocked(el)
		c.evictions++
		c.misses++
		return QueryResponse{}, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.resp, true
}

// Put stores resp under key at generation gen, evicting from the LRU
// tail until the byte bound holds. A response too large to ever fit is
// not cached. Callers must capture gen BEFORE running the query: if the
// table churned mid-flight, the current generation has already moved
// past gen and the entry is stillborn (it can never be served) — which
// is exactly the safe outcome.
func (c *Cache) Put(key string, gen uint64, resp QueryResponse) {
	if c == nil {
		return
	}
	size := cacheSizeOf(key, resp)
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
	}
	e := &cacheEntry{key: key, gen: gen, resp: resp, size: size}
	if c.ttl > 0 {
		e.expires = time.Now().Add(c.ttl)
	}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += size
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

// removeLocked unlinks one element; callers hold c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	Entries       int
	Bytes         int64
	MaxBytes      int64
}

// Stats snapshots the counters. A nil cache reports zeros.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       len(c.entries),
		Bytes:         c.bytes,
		MaxBytes:      c.maxBytes,
	}
}

// cacheSizeOf estimates one entry's resident size: the key, the
// response struct, and each group row's strings. It is an accounting
// estimate (Go's real overhead varies), deliberately on the generous
// side so the byte bound errs toward caching less, not more.
func cacheSizeOf(key string, resp QueryResponse) int64 {
	size := int64(len(key)) + 160 + int64(len(resp.RequestID)+len(resp.Pre))
	for _, g := range resp.Groups {
		size += 96 + int64(len(g.Key)+len(g.Pre))
	}
	return size
}
