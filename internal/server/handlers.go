package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"

	"aqppp"
	"aqppp/internal/exec"
)

// reqInfo travels with one request through the handler chain.
type reqInfo struct {
	id       string
	endpoint string
	start    time.Time
}

// statusWriter records the status code written so the access log and
// metrics see what the client saw.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying flusher so the SSE progressive
// stream can push each round as it lands instead of letting the stdlib
// buffer coalesce the whole stream into one write at handler return.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routes wires the endpoint table.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/query", s.instrument("/v1/query", s.handleQuery))
	s.mux.HandleFunc("POST /v1/approx", s.instrument("/v1/approx", s.handleApprox))
	s.mux.HandleFunc("POST /v1/contract", s.instrument("/v1/contract", s.handleContract))
	s.mux.HandleFunc("POST /v1/progressive", s.instrument("/v1/progressive", s.handleProgressive))
	s.mux.HandleFunc("POST /v1/prepare", s.instrument("/v1/prepare", s.handlePrepare))
	s.mux.HandleFunc("DELETE /v1/prepared/{name}", s.instrument("/v1/prepared", s.handleDropPrepared))
	s.mux.HandleFunc("GET /v1/shard", s.instrument("/v1/shard", s.handleShardHello))
	s.mux.HandleFunc("POST /v1/partial", s.instrument("/v1/partial", s.handlePartial))
	s.mux.HandleFunc("POST /v1/quota/lease", s.instrument("/v1/quota/lease", s.handleQuotaLease))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statusz", s.instrument("/statusz", s.handleStatusz))
	s.mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
}

// instrument assigns the request ID, captures the status, and feeds the
// access log and per-endpoint metrics on completion.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request, *reqInfo)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ri := &reqInfo{id: s.nextRequestID(), endpoint: endpoint, start: time.Now()}
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Request-Id", ri.id)
		h(sw, r, ri)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		d := time.Since(ri.start)
		s.met.observe(endpoint, sw.status, float64(d)/float64(time.Microsecond))
		s.logAccess(ri.id, r.Method, r.URL.Path, sw.status, d)
	}
}

// writeJSON writes a JSON response body. Encode failures past the
// header cannot be reported to the client; they are deliberately
// dropped.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps err onto its HTTP status and JSON body, counting the
// kind in the metrics registry. An error carrying a retry-after hint —
// a coordinator's replica was shedding — propagates the hint as a
// Retry-After header and its millisecond mirror, so the backoff a
// replica asked for reaches the client instead of vanishing into a
// bare failure.
func (s *Server) writeError(w http.ResponseWriter, ri *reqInfo, err error) {
	kind := aqppp.ErrorKindOf(err)
	s.met.observeKind(kind.String())
	detail := ErrorDetail{
		Kind:      kind.String(),
		Message:   err.Error(),
		RequestID: ri.id,
	}
	// A contract the planner (or the run-time ladder) could not meet
	// reports how close it could get, so the client knows how much to
	// loosen instead of binary-searching by resubmission. An infinite
	// tightest bound (no sampling estimator at all) omits the block.
	var inf *aqppp.ContractInfeasibleError
	if errors.As(err, &inf) && !math.IsInf(inf.TightestAbs, 1) {
		t := &TightestJSON{Abs: inf.TightestAbs}
		if !math.IsInf(inf.TightestRel, 1) {
			rel := inf.TightestRel
			t.Rel = &rel
		}
		detail.TightestAchievable = t
	}
	var hinted interface{ RetryAfterHint() time.Duration }
	if errors.As(err, &hinted) {
		if ra := hinted.RetryAfterHint(); ra > 0 {
			secs := int64((ra + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			detail.RetryAfterMS = int64(ra / time.Millisecond)
		}
	}
	s.writeJSON(w, statusForKind(kind), ErrorBody{Error: detail})
}

// writeServerError emits a server-level (non-taxonomy) error kind.
func (s *Server) writeServerError(w http.ResponseWriter, ri *reqInfo, status int, kind, msg string) {
	s.met.observeKind(kind)
	s.writeJSON(w, status, ErrorBody{Error: ErrorDetail{
		Kind: kind, Message: msg, RequestID: ri.id,
	}})
}

// writeShed emits the 429 for an admission-control shed, with the
// Retry-After header (whole seconds, ceiling, minimum 1) and its
// millisecond-resolution mirror in the body.
func (s *Server) writeShed(w http.ResponseWriter, ri *reqInfo, o *Overload) {
	s.met.observeKind("overloaded")
	secs := int64((o.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	s.writeJSON(w, http.StatusTooManyRequests, ErrorBody{Error: ErrorDetail{
		Kind:         "overloaded",
		Message:      o.Error(),
		RequestID:    ri.id,
		RetryAfterMS: int64(o.RetryAfter / time.Millisecond),
	}})
}

// clientKey identifies the client for quota accounting: the explicit
// X-Client-Id header when present (multiplexing proxies set it per
// tenant), otherwise the remote host without its ephemeral port.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// allowQuota runs one cache-missing request through the per-client
// token bucket. On rejection it has written the 429 — kind
// "quota-exceeded", distinct from the gate's "overloaded", so clients
// and dashboards can tell "you are hot" from "the server is full" —
// and the caller must return.
func (s *Server) allowQuota(w http.ResponseWriter, r *http.Request, ri *reqInfo) bool {
	var ok bool
	var wait time.Duration
	switch {
	case s.cfg.QuotaLease != nil:
		// Fleet mode: admit from leased tokens so every process drains
		// one logical per-client bucket. An unreachable authority fails
		// open — quota is load protection, not an availability gate.
		ok, wait, _ = s.cfg.QuotaLease.Allow(r.Context(), clientKey(r))
	case s.quota != nil:
		ok, wait = s.quota.Allow(clientKey(r), time.Now())
	default:
		return true
	}
	if ok {
		return true
	}
	s.met.observeKind("quota-exceeded")
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	s.writeJSON(w, http.StatusTooManyRequests, ErrorBody{Error: ErrorDetail{
		Kind:         "quota-exceeded",
		Message:      "per-client quota exceeded; retry after backoff",
		RequestID:    ri.id,
		RetryAfterMS: int64(wait / time.Millisecond),
	}})
	return false
}

// writeCached serves a response straight from the cache: fresh request
// ID and elapsed time (the cached ones describe the request that
// computed the answer, not this one), Cached flag set, and an X-Cache
// header so clients can tell without parsing the body.
func (s *Server) writeCached(w http.ResponseWriter, ri *reqInfo, resp QueryResponse) {
	resp.RequestID = ri.id
	resp.Cached = true
	resp.ElapsedMS = toMS(time.Since(ri.start))
	w.Header().Set("X-Cache", "hit")
	s.writeJSON(w, http.StatusOK, resp)
}

// decode reads a JSON body into v, answering 400 (kind "parse") on
// malformed input. The body is bounded by Config.MaxBodyBytes.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, ri *reqInfo, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeServerError(w, ri, http.StatusBadRequest, "parse",
			fmt.Sprintf("malformed request body: %v", err))
		return false
	}
	return true
}

// requestBudget resolves one request's wall-time bound: its timeout_ms,
// defaulted and capped by config, stamped into an executor Budget along
// with the server-wide resample and scratch caps. The returned deadline
// (zero = none) is measured from the request's arrival, so queue wait
// spends the same budget the engine does.
func (s *Server) requestBudget(ri *reqInfo, timeoutMS int64) (aqppp.Budget, time.Time) {
	timeout := time.Duration(timeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	b := aqppp.Budget{
		MaxResamples:    s.cfg.MaxResamples,
		MaxScratchBytes: s.cfg.MaxScratchBytes,
	}
	if timeout <= 0 {
		return b, time.Time{}
	}
	return b, ri.start.Add(timeout)
}

// admit runs one request through the admission gate. On success the
// caller holds a slot and must call release; the returned budget's
// Timeout is the time remaining until the request deadline (queue wait
// already spent). On failure admit has written the response.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, ri *reqInfo, timeoutMS int64) (func(), aqppp.Budget, bool) {
	b, deadline := s.requestBudget(ri, timeoutMS)
	release, err := s.gate.Acquire(r.Context(), deadline)
	if err != nil {
		var o *Overload
		if errors.As(err, &o) {
			s.writeShed(w, ri, o)
		} else {
			// The client went away while queued; 499 keeps the log and
			// metrics honest even though nobody reads the response.
			s.met.observeKind(aqppp.ErrCanceled.String())
			s.writeJSON(w, statusClientClosedRequest, ErrorBody{Error: ErrorDetail{
				Kind: aqppp.ErrCanceled.String(), Message: err.Error(), RequestID: ri.id,
			}})
		}
		return nil, aqppp.Budget{}, false
	}
	if !deadline.IsZero() {
		remaining := time.Until(deadline)
		if remaining < time.Millisecond {
			remaining = time.Millisecond
		}
		b.Timeout = remaining
	}
	return release, b, true
}

// handleQuery answers POST /v1/query: an exact scan with the request's
// deadline mapped onto the executor budget. The statement is planned
// once — the plan yields the canonical cache key, a hit is served in
// front of the quota and the admission gate, and a miss runs the same
// plan (no second parse).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	var req QueryRequest
	if !s.decode(w, r, ri, &req) {
		return
	}
	plan, err := s.db.PlanExact(req.SQL)
	if err != nil {
		s.writeError(w, ri, err)
		return
	}
	key := plan.CacheKey()
	// The generation is captured before the query runs: if the table
	// churns mid-flight, the entry we Put below can never match a later
	// Get and is stillborn rather than stale. One window remains — a
	// churn between the plan resolving its table pointer and this capture
	// would pair the old table's answer with the new generation — so the
	// pointer is re-checked after the capture; on a mismatch this request
	// simply skips the cache (correct answer, just not cached).
	gen := s.db.Generation(plan.Table.Name)
	cacheable := true
	if tbl, ok := s.db.LookupTable(plan.Table.Name); !ok || tbl != plan.Table {
		cacheable = false
	}
	if cacheable {
		if resp, hit := s.cache.Get(key, gen); hit {
			s.writeCached(w, ri, resp)
			return
		}
	}
	if !s.allowQuota(w, r, ri) {
		return
	}
	release, budget, ok := s.admit(w, r, ri, req.TimeoutMS)
	if !ok {
		return
	}
	defer release()
	if h := s.hookGated; h != nil {
		h(r.Context())
	}
	t0 := time.Now()
	res, err := s.db.RunExactPlan(r.Context(), plan, budget)
	if err != nil {
		s.writeError(w, ri, err)
		return
	}
	resp := exactResponse(ri.id, res, time.Since(t0))
	if cacheable {
		s.cache.Put(key, gen, resp)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleApprox answers POST /v1/approx through a named prepared handle,
// optionally with a bootstrap interval.
func (s *Server) handleApprox(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	var req QueryRequest
	if !s.decode(w, r, ri, &req) {
		return
	}
	if req.Prepared == "" {
		s.writeServerError(w, ri, http.StatusBadRequest, "parse",
			`missing "prepared": /v1/approx answers through a named handle (build one with /v1/prepare)`)
		return
	}
	prep, epoch, found := s.lookupPrepared(req.Prepared)
	if !found {
		s.writeServerError(w, ri, http.StatusNotFound, "unknown-prepared",
			fmt.Sprintf("no prepared handle %q", req.Prepared))
		return
	}
	var plan *exec.Plan
	var err error
	if req.Resamples > 0 {
		plan, err = prep.PlanBootstrap(req.SQL, req.Resamples)
	} else {
		plan, err = prep.PlanQuery(req.SQL)
	}
	if err != nil {
		s.writeError(w, ri, err)
		return
	}
	// The key folds in the handle name and its epoch: two handles over
	// the same table answer with different samples/cubes, and a dropped
	// and rebuilt handle must never serve its predecessor's answers.
	// No pointer re-check is needed here (unlike handleQuery): a table
	// churn before the generation capture poisons the preparation, so
	// RunPlan's liveness re-check below refuses to answer; a churn after
	// the capture leaves the Put stillborn.
	key := fmt.Sprintf("%s|h=%s@%d", plan.CacheKey(), req.Prepared, epoch)
	gen := s.db.Generation(prep.TableName())
	if resp, hit := s.cache.Get(key, gen); hit {
		s.writeCached(w, ri, resp)
		return
	}
	if !s.allowQuota(w, r, ri) {
		return
	}
	release, budget, ok := s.admit(w, r, ri, req.TimeoutMS)
	if !ok {
		return
	}
	defer release()
	if h := s.hookGated; h != nil {
		h(r.Context())
	}
	t0 := time.Now()
	res, err := prep.RunPlan(r.Context(), plan, budget)
	if err != nil {
		s.writeError(w, ri, err)
		return
	}
	resp := approxResponse(ri.id, res, time.Since(t0))
	if !resp.Partial {
		// A degraded answer reflects which replicas happened to be up,
		// not the data; it must never outlive the outage in the cache.
		s.cache.Put(key, gen, resp)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handlePrepare answers POST /v1/prepare: builds a preparation under
// the admission gate (builds are the heaviest requests the server
// takes) and registers it under the requested handle name.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	var req PrepareRequest
	if !s.decode(w, r, ri, &req) {
		return
	}
	if req.Name == "" {
		s.writeServerError(w, ri, http.StatusBadRequest, "parse", `missing "name" for the prepared handle`)
		return
	}
	if _, _, taken := s.lookupPrepared(req.Name); taken {
		s.writeServerError(w, ri, http.StatusConflict, "conflict",
			fmt.Sprintf("prepared handle %q already exists (DELETE /v1/prepared/%s first)", req.Name, req.Name))
		return
	}
	// Prepares are never cached (they mutate server state), so the quota
	// applies to every one.
	if !s.allowQuota(w, r, ri) {
		return
	}
	release, budget, ok := s.admit(w, r, ri, req.TimeoutMS)
	if !ok {
		return
	}
	defer release()
	if h := s.hookGated; h != nil {
		h(r.Context())
	}
	t0 := time.Now()
	prep, err := s.db.PrepareWithBudget(r.Context(), aqppp.PrepareOptions{
		Table:              req.Table,
		Aggregate:          req.Aggregate,
		Dimensions:         req.Dimensions,
		SampleRate:         req.SampleRate,
		CellBudget:         req.CellBudget,
		Confidence:         req.Confidence,
		Seed:               req.Seed,
		WithCountCube:      req.WithCountCube,
		WithMinMax:         req.WithMinMax,
		EqualPartitionOnly: req.EqualPartitionOnly,
	}, budget)
	if err != nil {
		s.writeError(w, ri, err)
		return
	}
	if err := s.RegisterPrepared(req.Name, prep); err != nil {
		// Lost a race with a concurrent prepare for the same name.
		s.writeServerError(w, ri, http.StatusConflict, "conflict", err.Error())
		return
	}
	st := prep.Stats()
	s.writeJSON(w, http.StatusOK, PrepareResponse{
		RequestID:  ri.id,
		Name:       req.Name,
		Table:      prep.TableName(),
		SampleRows: st.SampleRows,
		CubeCells:  st.CubeCells,
		BuildMS:    toMS(time.Since(t0)),
	})
}

// handleDropPrepared answers DELETE /v1/prepared/{name}. It forgets the
// server's handle only; the table and any other handles stay live.
func (s *Server) handleDropPrepared(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	name := r.PathValue("name")
	if !s.dropPrepared(name) {
		s.writeServerError(w, ri, http.StatusNotFound, "unknown-prepared",
			fmt.Sprintf("no prepared handle %q", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 while accepting work, 503 once
// draining (load balancers stop routing here before the listener
// closes).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = fmt.Fprintln(w, "draining")
		return
	}
	_, _ = fmt.Fprintln(w, "ready")
}

// handleStatusz reports uptime, admission-control state, and
// per-endpoint latency histograms.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	eps, kinds := s.met.snapshot()
	resp := StatuszResponse{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Ready:          s.ready.Load(),
		Draining:       s.draining.Load(),
		InFlight:       s.gate.InFlight(),
		Queued:         s.gate.Queued(),
		ServedTotal:    s.gate.Served(),
		ShedTotal:      s.gate.Shed(),
		QueuedTotal:    s.gate.QueuedTotal(),
		Limit:          s.gate.Limit(),
		Tables:         sortedTables(s.db),
		Prepared:       s.preparedNames(),
		QuotaShedTotal: s.quota.Shed(),
		QuotaClients:   s.quota.Clients(),
		ErrorKinds:     kinds,
		Endpoints:      eps,
		Shards:         s.db.ShardSnapshots(),
		Stores:         s.db.StoreSnapshots(),
	}
	if met, infeasible, escalated, rounds := s.met.contractSnapshot(); met+infeasible+escalated+rounds > 0 {
		resp.Contract = &ContractStatusJSON{
			MetTotal:          met,
			InfeasibleTotal:   infeasible,
			EscalatedTotal:    escalated,
			ProgressiveRounds: rounds,
		}
	}
	if s.cfg.Coordinator != nil {
		snap := s.cfg.Coordinator.Snapshot()
		resp.Dist = &snap
	}
	if s.cfg.QuotaLease != nil {
		snap := s.cfg.QuotaLease.Snapshot()
		resp.QuotaLease = &snap
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		resp.Cache = &CacheStatusJSON{
			Hits:          cs.Hits,
			Misses:        cs.Misses,
			Evictions:     cs.Evictions,
			Invalidations: cs.Invalidations,
			Entries:       cs.Entries,
			Bytes:         cs.Bytes,
			MaxBytes:      cs.MaxBytes,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// sortedTables lists the DB's tables in stable order.
func sortedTables(db *aqppp.DB) []string {
	names := db.TableNames()
	sort.Strings(names)
	return names
}
