package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aqppp"
	"aqppp/internal/dist"
)

// Config tunes the server's traffic management. The zero value gets
// sensible defaults from New.
type Config struct {
	// MaxConcurrent bounds queries executing simultaneously (default
	// GOMAXPROCS): past the point where every core runs a block kernel,
	// extra concurrency only adds queueing inside the scheduler.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot (default
	// 4×MaxConcurrent). Requests beyond it are shed with 429.
	MaxQueue int
	// DefaultTimeout applies to requests that carry no timeout_ms
	// (0 = unlimited).
	DefaultTimeout time.Duration
	// MaxTimeout caps every request's timeout (0 = no cap); a client
	// asking for more is clamped, not rejected.
	MaxTimeout time.Duration
	// DrainPause is how long Shutdown keeps accepting after flipping
	// /readyz to 503, so load balancers observe not-ready before the
	// listener closes (default 0).
	DrainPause time.Duration
	// MaxResamples and MaxScratchBytes are folded into every request's
	// Budget (0 = unlimited), bounding what one bootstrap request can
	// cost.
	MaxResamples    int
	MaxScratchBytes int64
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// CacheMaxBytes bounds the response cache's total entry size
	// (default 32 MiB; negative disables caching entirely).
	CacheMaxBytes int64
	// CacheTTL bounds a cached response's age (default 60s; negative
	// disables age-based expiry — entries still churn by LRU and are
	// invalidated by table generation on Drop/re-Register).
	CacheTTL time.Duration
	// QuotaRate enables per-client fairness: each client sustains this
	// many cache-missing requests per second (0 disables quotas).
	QuotaRate float64
	// QuotaBurst is the per-client token-bucket depth (default
	// max(1, ceil(2×QuotaRate))).
	QuotaBurst int
	// QuotaMaxClients bounds tracked client buckets (default 4096; the
	// least-recently-seen client is evicted past it).
	QuotaMaxClients int
	// AccessLog receives one line per request (nil = no access log).
	AccessLog io.Writer
	// Replica, when set, marks this server as one shard replica of a
	// distributed fleet: it serves the internal GET /v1/shard handshake
	// and POST /v1/partial endpoints over the named slice table.
	Replica *ReplicaRole
	// Coordinator, when set, is the fleet this server fronts; /statusz
	// and /metrics render its topology and per-replica counters. The
	// query path needs no flag — distributed tables route through the
	// DB like any other.
	Coordinator *dist.Coordinator
	// QuotaLease, when set, replaces the local per-client quota with
	// leases from the fleet's quota authority, so N processes drain one
	// logical bucket (see internal/dist.QuotaLease).
	QuotaLease *dist.QuotaLease
}

// Server wraps one *aqppp.DB behind the HTTP API. Create with New,
// start with Serve, stop with Shutdown.
type Server struct {
	db    *aqppp.DB
	cfg   Config
	gate  *Gate
	mux   *http.ServeMux
	hs    *http.Server
	met   *metrics
	cache *Cache // nil when caching is disabled
	quota *Quota // nil when quotas are disabled

	ready    atomic.Bool
	draining atomic.Bool
	start    time.Time

	reqSeq   atomic.Uint64
	idPrefix string

	logMu sync.Mutex

	prepMu   sync.Mutex
	prepared map[string]*aqppp.Prepared
	// prepEpoch counts (re)registrations per handle name, bumped on
	// both RegisterPrepared and dropPrepared. The response cache folds
	// the epoch into /v1/approx keys, so deleting a handle and building
	// a new one under the same name can never serve the old handle's
	// cached answers.
	prepEpoch map[string]uint64

	// baseCancel hard-cancels every in-flight request's context when
	// the drain deadline passes; set by Serve.
	cancelMu   sync.Mutex
	baseCancel context.CancelFunc

	// hookGated, when non-nil, runs inside the admission gate before
	// the query executes. It is a test seam (set before Serve, never
	// mutated after) for making gated sections observably slow.
	hookGated func(ctx context.Context)
}

// New builds a Server over db. The DB's tables and preparations can be
// registered before or after; the server also grows prepared handles
// through POST /v1/prepare.
func New(db *aqppp.DB, cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4 * cfg.MaxConcurrent
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.CacheMaxBytes == 0 {
		cfg.CacheMaxBytes = 32 << 20
	}
	if cfg.CacheTTL == 0 {
		cfg.CacheTTL = time.Minute
	}
	if cfg.QuotaMaxClients <= 0 {
		cfg.QuotaMaxClients = 4096
	}
	if cfg.QuotaBurst <= 0 {
		cfg.QuotaBurst = int(2 * cfg.QuotaRate)
		if cfg.QuotaBurst < 1 {
			cfg.QuotaBurst = 1
		}
	}
	s := &Server{
		db:        db,
		cfg:       cfg,
		gate:      NewGate(cfg.MaxConcurrent, cfg.MaxQueue),
		mux:       http.NewServeMux(),
		met:       newMetrics(),
		start:     time.Now(),
		prepared:  make(map[string]*aqppp.Prepared),
		prepEpoch: make(map[string]uint64),
	}
	if cfg.CacheMaxBytes > 0 {
		s.cache = NewCache(cfg.CacheMaxBytes, cfg.CacheTTL)
	}
	if cfg.QuotaRate > 0 {
		s.quota = NewQuota(cfg.QuotaRate, cfg.QuotaBurst, cfg.QuotaMaxClients)
	}
	s.idPrefix = fmt.Sprintf("%08x", uint32(s.start.UnixNano()))
	s.routes()
	s.hs = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler exposes the routed handler (tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// RegisterPrepared names an already-built preparation so /v1/approx can
// use it (the cmd binary pre-builds one at startup). It fails if the
// name is taken.
func (s *Server) RegisterPrepared(name string, p *aqppp.Prepared) error {
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	if _, ok := s.prepared[name]; ok {
		return fmt.Errorf("server: prepared handle %q already exists", name)
	}
	s.prepared[name] = p
	s.prepEpoch[name]++
	return nil
}

// lookupPrepared resolves a handle name to the handle and its current
// epoch (see prepEpoch).
func (s *Server) lookupPrepared(name string) (*aqppp.Prepared, uint64, bool) {
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	p, ok := s.prepared[name]
	return p, s.prepEpoch[name], ok
}

// dropPrepared forgets a handle, reporting whether it existed.
func (s *Server) dropPrepared(name string) bool {
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	_, ok := s.prepared[name]
	if ok {
		delete(s.prepared, name)
		s.prepEpoch[name]++
	}
	return ok
}

// preparedNames lists handles sorted by name.
func (s *Server) preparedNames() []string {
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	names := make([]string, 0, len(s.prepared))
	for n := range s.prepared {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Serve accepts connections on l until Shutdown. Every request context
// derives from a server-lifetime base context, so the drain deadline
// can hard-cancel stragglers straight into the engine's per-block
// cancel checks. A clean shutdown returns nil.
func (s *Server) Serve(l net.Listener) error {
	base, cancel := context.WithCancel(context.Background())
	s.cancelMu.Lock()
	s.baseCancel = cancel
	s.cancelMu.Unlock()
	s.hs.BaseContext = func(net.Listener) context.Context { return base }
	s.ready.Store(true)
	err := s.hs.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains the server: /readyz flips to 503 immediately, the
// listener keeps accepting for Config.DrainPause (so load balancers
// notice), then stops; in-flight queries run to completion until ctx's
// deadline, after which every remaining request context is
// hard-canceled (unwinding engine scans within one zone block) and the
// connections are closed. Returns nil when every request finished
// inside the deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.ready.Store(false)
	if s.cfg.DrainPause > 0 {
		t := time.NewTimer(s.cfg.DrainPause)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}
	s.hs.SetKeepAlivesEnabled(false)
	err := s.hs.Shutdown(ctx)
	if err == nil {
		return nil
	}
	// Drain deadline passed with requests still in flight: cancel
	// their contexts and force the connections closed.
	s.cancelMu.Lock()
	cancel := s.baseCancel
	s.cancelMu.Unlock()
	if cancel != nil {
		cancel()
	}
	if cerr := s.hs.Close(); cerr != nil {
		return cerr
	}
	return err
}

// Ready reports whether the server accepts new work (false once
// draining).
func (s *Server) Ready() bool { return s.ready.Load() }

// Gate exposes the admission controller (statusz and tests).
func (s *Server) Gate() *Gate { return s.gate }

// nextRequestID mints a process-unique request ID: a startup-time
// prefix plus a sequence number. It appears in every response body,
// error body, and access-log line, so one ID ties a client-side failure
// to the server-side record.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", s.idPrefix, s.reqSeq.Add(1))
}

// logAccess writes one access-log line: timestamp, request ID, method,
// path, status, and wall time.
func (s *Server) logAccess(id, method, path string, status int, d time.Duration) {
	if s.cfg.AccessLog == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	// An access-log write failing must never fail the request; the
	// error is deliberately dropped.
	_, _ = fmt.Fprintf(s.cfg.AccessLog, "%s %s %s %s %d %.3fms\n",
		time.Now().UTC().Format(time.RFC3339Nano), id, method, path, status, toMS(d))
}
