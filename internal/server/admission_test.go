package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateConcurrencyLimit drives many goroutines through the gate and
// asserts the in-flight count never exceeds the limit.
func TestGateConcurrencyLimit(t *testing.T) {
	const limit, queue, workers = 3, 64, 32
	g := NewGate(limit, queue)
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				release, err := g.Acquire(context.Background(), time.Time{})
				if err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				c := cur.Add(1)
				for {
					m := max.Load()
					if c <= m || max.CompareAndSwap(m, c) {
						break
					}
				}
				time.Sleep(100 * time.Microsecond)
				cur.Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if m := max.Load(); m > limit {
		t.Errorf("observed concurrency %d exceeds limit %d", m, limit)
	}
	if got := g.Served(); got != workers*20 {
		t.Errorf("served = %d, want %d", got, workers*20)
	}
	if g.InFlight() != 0 || g.Queued() != 0 {
		t.Errorf("gate not drained: inFlight=%d queued=%d", g.InFlight(), g.Queued())
	}
}

// TestGateQueueFullShed fills every slot and every queue seat, then
// asserts the next request is shed immediately with an *Overload.
func TestGateQueueFullShed(t *testing.T) {
	g := NewGate(1, 2)
	hold, err := g.Acquire(context.Background(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	// Two waiters fill the queue.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire(ctx, time.Time{})
			if err == nil {
				release()
			}
		}()
	}
	waitFor(t, time.Second, func() bool { return g.Queued() == 2 })

	start := time.Now()
	release, err := g.Acquire(context.Background(), time.Time{})
	if err == nil {
		release()
		t.Fatal("third waiter admitted past the queue bound")
	}
	var o *Overload
	if !errors.As(err, &o) || o.Reason != "queue-full" {
		t.Fatalf("err = %v, want queue-full Overload", err)
	}
	if o.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", o.RetryAfter)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("queue-full shed took %v; must be immediate", el)
	}
	if g.Shed() != 1 {
		t.Errorf("shed = %d, want 1", g.Shed())
	}
	hold()
	wg.Wait()
}

// TestGateDeadlineShed primes the gate's service-time estimate, fills
// the slots, and asserts a request whose deadline is shorter than the
// predicted queue wait is shed up front — without waiting in line.
func TestGateDeadlineShed(t *testing.T) {
	g := NewGate(1, 8)
	// Prime the EWMA at ~100ms service time.
	g.recordService(100 * time.Millisecond)
	hold, err := g.Acquire(context.Background(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	release, err := g.Acquire(context.Background(), time.Now().Add(5*time.Millisecond))
	if err == nil {
		release()
		t.Fatal("infeasible deadline admitted")
	}
	var o *Overload
	if !errors.As(err, &o) || o.Reason != "deadline" {
		t.Fatalf("err = %v, want deadline Overload", err)
	}
	if el := time.Since(start); el >= 5*time.Millisecond {
		t.Errorf("deadline shed took %v; must not wait out the deadline", el)
	}
	hold()

	// With a met deadline the same request sails through.
	release, err = g.Acquire(context.Background(), time.Now().Add(time.Second))
	if err != nil {
		t.Fatalf("feasible request rejected: %v", err)
	}
	release()
}

// TestGateColdDeadlineExpiresInQueue: with no service history the gate
// cannot predict, so the waiter queues and its deadline firing in the
// queue still yields a shed (never a success after the deadline).
func TestGateColdDeadlineExpiresInQueue(t *testing.T) {
	g := NewGate(1, 8)
	hold, err := g.Acquire(context.Background(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Millisecond)
	_, err = g.Acquire(context.Background(), deadline)
	if err == nil {
		t.Fatal("expired waiter admitted")
	}
	var o *Overload
	if !errors.As(err, &o) || o.Reason != "deadline" {
		t.Fatalf("err = %v, want deadline Overload", err)
	}
	if time.Now().Before(deadline) {
		t.Error("shed before the deadline actually fired")
	}
	hold()
}

// TestGateClientGoneWhileQueued: a canceled context unblocks the waiter
// with ctx.Err(), not an Overload, and does not count as shed.
func TestGateClientGoneWhileQueued(t *testing.T) {
	g := NewGate(1, 8)
	hold, err := g.Acquire(context.Background(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx, time.Time{})
		done <- err
	}()
	waitFor(t, time.Second, func() bool { return g.Queued() == 1 })
	cancel()
	err = <-done
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	var o *Overload
	if errors.As(err, &o) {
		t.Errorf("client-gone wrongly classified as Overload")
	}
	if g.Shed() != 0 {
		t.Errorf("shed = %d, want 0", g.Shed())
	}
	hold()
}

// TestGateReleaseIdempotent: calling release twice must not free two
// slots.
func TestGateReleaseIdempotent(t *testing.T) {
	g := NewGate(1, 0)
	release, err := g.Acquire(context.Background(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	release()
	release()
	// One slot: acquire, and the next non-queuing acquire must shed.
	r2, err := g.Acquire(context.Background(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(context.Background(), time.Time{}); err == nil {
		t.Fatal("double release freed a phantom slot")
	}
	r2()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
