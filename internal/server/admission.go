package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Gate is the admission controller in front of the query engine: a
// bounded concurrency gate (at most limit requests execute at once)
// plus a bounded, deadline-aware wait queue (at most maxQueue requests
// wait for a slot). Requests beyond both bounds — and requests whose
// deadline provably cannot be met given the current queue and the
// observed service time — are shed immediately with an *Overload error
// carrying a Retry-After hint, instead of queuing up to die.
//
// The design follows the standard load-shedding argument: under
// overload, latency is minimized by rejecting excess work at the door
// (a 429 costs microseconds) rather than letting every request share a
// collapsing server. The deadline feasibility check is what turns the
// queue from FIFO-and-pray into an a-priori guarantee in the PilotDB
// sense: a request that enters the queue has a predicted wait shorter
// than its deadline.
type Gate struct {
	limit    int
	maxQueue int
	// slots is a token bucket: it starts full with limit tokens;
	// acquiring takes one, releasing puts it back.
	slots chan struct{}

	mu     sync.Mutex
	queued int

	// ewmaServiceNS tracks recent gated service time (¾ old + ¼ new),
	// seeding the queue-wait prediction. Zero until the first release,
	// so cold gates never deadline-shed.
	ewmaServiceNS atomic.Int64

	inFlight    atomic.Int64
	served      atomic.Int64
	shed        atomic.Int64
	queuedTotal atomic.Int64
}

// NewGate builds a gate admitting limit concurrent requests with a
// queue of maxQueue waiters. limit < 1 is treated as 1; maxQueue < 0
// as 0 (shed the moment all slots are busy).
func NewGate(limit, maxQueue int) *Gate {
	if limit < 1 {
		limit = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	g := &Gate{limit: limit, maxQueue: maxQueue, slots: make(chan struct{}, limit)}
	for i := 0; i < limit; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// Overload is the error Acquire sheds with: the request was not
// admitted and should be retried after RetryAfter. Reason is
// "queue-full" or "deadline".
type Overload struct {
	Reason     string
	RetryAfter time.Duration
}

// Error implements error.
func (o *Overload) Error() string {
	return fmt.Sprintf("server overloaded (%s); retry after %v", o.Reason, o.RetryAfter)
}

// Acquire admits one request. deadline is the request's absolute
// deadline (zero = none); ctx is the client's context, so a client that
// disconnects while queued stops waiting. On success the returned
// release must be called exactly once, after the gated work finishes.
// On failure release is nil and err is an *Overload (shed) or ctx.Err()
// (client gone while queued).
func (g *Gate) Acquire(ctx context.Context, deadline time.Time) (release func(), err error) {
	// Fast path: a slot is free, skip the queue entirely.
	select {
	case <-g.slots:
		return g.enter(), nil
	default:
	}

	// Slow path: try to queue. The queue is bounded, and a request
	// whose deadline cannot be met given its queue position is shed
	// now instead of timing out in line.
	g.mu.Lock()
	if g.queued >= g.maxQueue {
		g.mu.Unlock()
		g.shed.Add(1)
		return nil, &Overload{Reason: "queue-full", RetryAfter: g.retryAfter(g.maxQueue)}
	}
	g.queued++
	pos := g.queued
	g.mu.Unlock()
	g.queuedTotal.Add(1)

	if !deadline.IsZero() {
		if wait := g.predictWait(pos); wait > 0 && time.Until(deadline) < wait {
			g.exitQueue()
			g.shed.Add(1)
			return nil, &Overload{Reason: "deadline", RetryAfter: wait}
		}
	}

	var timer <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-g.slots:
		g.exitQueue()
		return g.enter(), nil
	case <-timer:
		// The deadline fired while queued (the prediction was too
		// optimistic — e.g. the gate was cold). Still a shed: the
		// client gets a 429 before any work ran.
		g.exitQueue()
		g.shed.Add(1)
		return nil, &Overload{Reason: "deadline", RetryAfter: g.retryAfter(1)}
	case <-ctx.Done():
		g.exitQueue()
		return nil, ctx.Err()
	}
}

// enter marks a request in flight and returns its release.
func (g *Gate) enter() func() {
	g.inFlight.Add(1)
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			g.recordService(time.Since(start))
			g.inFlight.Add(-1)
			g.served.Add(1)
			g.slots <- struct{}{}
		})
	}
}

func (g *Gate) exitQueue() {
	g.mu.Lock()
	g.queued--
	g.mu.Unlock()
}

// recordService folds one observed service time into the EWMA.
func (g *Gate) recordService(d time.Duration) {
	obs := int64(d)
	if obs < 1 {
		obs = 1
	}
	for {
		old := g.ewmaServiceNS.Load()
		next := obs
		if old > 0 {
			next = (3*old + obs) / 4
		}
		if g.ewmaServiceNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// predictWait estimates how long the request at queue position pos will
// wait for a slot: pos requests ahead of it must drain through limit
// lanes at the observed service time. Zero when the gate has no service
// history yet.
func (g *Gate) predictWait(pos int) time.Duration {
	svc := g.ewmaServiceNS.Load()
	if svc <= 0 {
		return 0
	}
	rounds := (pos + g.limit - 1) / g.limit
	return time.Duration(int64(rounds) * svc)
}

// retryAfter is the Retry-After hint for a shed request: the predicted
// time for depth queued requests to drain, floored at 1ms so clients
// never see zero.
func (g *Gate) retryAfter(depth int) time.Duration {
	if depth < 1 {
		depth = 1
	}
	d := g.predictWait(depth)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// InFlight reports requests currently holding a slot.
func (g *Gate) InFlight() int64 { return g.inFlight.Load() }

// Queued reports requests currently waiting for a slot.
func (g *Gate) Queued() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return int64(g.queued)
}

// Served reports requests that completed gated work.
func (g *Gate) Served() int64 { return g.served.Load() }

// Shed reports requests rejected with an *Overload.
func (g *Gate) Shed() int64 { return g.shed.Load() }

// QueuedTotal reports the cumulative count of requests that waited in
// the queue (admitted or not).
func (g *Gate) QueuedTotal() int64 { return g.queuedTotal.Load() }

// Limit reports the concurrency bound.
func (g *Gate) Limit() int { return g.limit }
