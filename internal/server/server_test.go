package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aqppp"
	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// serverDemoTable mirrors the root package's demo fixture: an integer
// key, a correlated float measure, and a low-cardinality tier.
func serverDemoTable(n int, seed uint64) *engine.Table {
	r := stats.NewRNG(seed)
	k := make([]int64, n)
	v := make([]float64, n)
	g := make([]string, n)
	for i := 0; i < n; i++ {
		k[i] = int64(r.Intn(500) + 1)
		v[i] = 50 + 0.2*float64(k[i]) + 8*r.NormFloat64()
		if i%5 == 0 {
			g[i] = "gold"
		} else {
			g[i] = "silver"
		}
	}
	return engine.MustNewTable("demo",
		engine.NewIntColumn("k", k),
		engine.NewFloatColumn("v", v),
		engine.NewStringColumn("tier", g),
	)
}

// newTestDB registers the demo table.
func newTestDB(t *testing.T, rows int) *aqppp.DB {
	t.Helper()
	db := aqppp.NewDB()
	if err := db.Register(serverDemoTable(rows, 7)); err != nil {
		t.Fatal(err)
	}
	return db
}

// startServer runs srv on a loopback listener and returns its base URL.
// Cleanup shuts it down (if the test didn't already) and verifies Serve
// returned cleanly.
func startServer(t *testing.T, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx) // idempotent enough: second shutdown errors are fine
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return "http://" + l.Addr().String()
}

// burstClient is an http.Client that actually opens one connection per
// concurrent request (the default transport caps idle conns per host).
func burstClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
}

// postJSON posts body as JSON and returns the status and decoded body.
func postJSON(t *testing.T, c *http.Client, url string, body any) (int, map[string]any, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("bad JSON body %q: %v", data, err)
		}
	}
	return resp.StatusCode, out, resp.Header
}

// errKind digs the error kind out of a decoded error body.
func errKind(body map[string]any) string {
	e, _ := body["error"].(map[string]any)
	k, _ := e["kind"].(string)
	return k
}

// TestServerEndToEnd drives the full handle lifecycle over a real
// listener: prepare, exact query, approx query (closed-form and
// bootstrap), group-by, statusz, and handle deletion.
func TestServerEndToEnd(t *testing.T) {
	db := newTestDB(t, 5000)
	srv := New(db, Config{MaxConcurrent: 4, MaxQueue: 8})
	base := startServer(t, srv)
	c := burstClient()

	// healthz / readyz up.
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := c.Get(base + ep)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", ep, resp.StatusCode)
		}
	}

	// Build a handle over the wire.
	status, body, _ := postJSON(t, c, base+"/v1/prepare", PrepareRequest{
		Name: "h", Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.2, CellBudget: 200, Seed: 11,
	})
	if status != http.StatusOK {
		t.Fatalf("prepare = %d (%v)", status, body)
	}
	if body["name"] != "h" || body["table"] != "demo" {
		t.Errorf("prepare body = %v", body)
	}

	// Exact query matches the library answer.
	stmt := "SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400"
	want, err := db.Exact(stmt)
	if err != nil {
		t.Fatal(err)
	}
	status, body, hdr := postJSON(t, c, base+"/v1/query", QueryRequest{SQL: stmt})
	if status != http.StatusOK {
		t.Fatalf("query = %d (%v)", status, body)
	}
	if got := body["value"].(float64); math.Abs(got-want.Value) > 1e-6*math.Abs(want.Value) {
		t.Errorf("exact value = %v, want %v", got, want.Value)
	}
	if hdr.Get("X-Request-Id") == "" {
		t.Error("response missing X-Request-Id")
	}
	if id, _ := body["request_id"].(string); id == "" {
		t.Error("body missing request_id")
	}

	// Approx through the handle: sane interval around the exact answer.
	status, body, _ = postJSON(t, c, base+"/v1/approx", QueryRequest{Prepared: "h", SQL: stmt})
	if status != http.StatusOK {
		t.Fatalf("approx = %d (%v)", status, body)
	}
	av := body["value"].(float64)
	hw := body["half_width"].(float64)
	if hw < 0 {
		t.Errorf("half_width = %v", hw)
	}
	if math.Abs(av-want.Value) > 10*hw+0.05*math.Abs(want.Value) {
		t.Errorf("approx %v ± %v too far from exact %v", av, hw, want.Value)
	}

	// Bootstrap variant.
	status, body, _ = postJSON(t, c, base+"/v1/approx", QueryRequest{Prepared: "h", SQL: stmt, Resamples: 50})
	if status != http.StatusOK {
		t.Fatalf("bootstrap approx = %d (%v)", status, body)
	}

	// Exact GROUP BY comes back with per-group rows.
	status, body, _ = postJSON(t, c, base+"/v1/query", QueryRequest{SQL: "SELECT COUNT(*) FROM demo GROUP BY tier"})
	if status != http.StatusOK {
		t.Fatalf("group query = %d (%v)", status, body)
	}
	if groups, _ := body["groups"].([]any); len(groups) != 2 {
		t.Errorf("groups = %v", body["groups"])
	}

	// statusz reflects the traffic.
	resp, err := c.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st StatuszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if !st.Ready || st.Draining {
		t.Errorf("statusz ready=%v draining=%v", st.Ready, st.Draining)
	}
	if st.ServedTotal < 5 {
		t.Errorf("served_total = %d, want >= 5", st.ServedTotal)
	}
	if len(st.Prepared) != 1 || st.Prepared[0] != "h" {
		t.Errorf("prepared = %v", st.Prepared)
	}
	if ep, ok := st.Endpoints["/v1/query"]; !ok || ep.Requests < 2 || len(ep.LatencyUS) == 0 {
		t.Errorf("endpoint metrics = %+v", st.Endpoints)
	}

	// Delete the handle; approx now 404s.
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/prepared/h", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d, want 204", resp.StatusCode)
	}
	status, body, _ = postJSON(t, c, base+"/v1/approx", QueryRequest{Prepared: "h", SQL: stmt})
	if status != http.StatusNotFound || errKind(body) != "unknown-prepared" {
		t.Errorf("approx after delete = %d kind %q", status, errKind(body))
	}
}

// TestServerErrorMapping pins the taxonomy→HTTP table with recorder
// requests against the routed handler.
func TestServerErrorMapping(t *testing.T) {
	db := newTestDB(t, 2000)
	prep, err := db.Prepare(aqppp.PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.2, CellBudget: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{MaxConcurrent: 2, MaxQueue: 2})
	if err := srv.RegisterPrepared("h", prep); err != nil {
		t.Fatal(err)
	}

	do := func(method, path string, body any) (int, map[string]any) {
		t.Helper()
		var rd io.Reader
		if s, ok := body.(string); ok {
			rd = bytes.NewReader([]byte(s))
		} else if body != nil {
			raw, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(raw)
		}
		req := httptest.NewRequest(method, path, rd)
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, req)
		var out map[string]any
		if w.Body.Len() > 0 {
			if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
				t.Fatalf("bad body %q: %v", w.Body.String(), err)
			}
		}
		return w.Code, out
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		status int
		kind   string
	}{
		{"malformed-json", "POST", "/v1/query", `{"sql":`, 400, "parse"},
		{"unknown-field", "POST", "/v1/query", `{"nope":1}`, 400, "parse"},
		{"parse", "POST", "/v1/query", QueryRequest{SQL: "SELEC SUM(v) FROM demo"}, 400, "parse"},
		{"unknown-table", "POST", "/v1/query", QueryRequest{SQL: "SELECT SUM(v) FROM nope"}, 404, "unknown-table"},
		{"approx-wrong-table", "POST", "/v1/approx", QueryRequest{Prepared: "h", SQL: "SELECT SUM(v) FROM other"}, 404, "unknown-table"},
		{"unsupported", "POST", "/v1/approx", QueryRequest{Prepared: "h", SQL: "SELECT AVG(v) FROM demo", Resamples: 20}, 422, "unsupported"},
		{"unknown-prepared", "POST", "/v1/approx", QueryRequest{Prepared: "ghost", SQL: "SELECT SUM(v) FROM demo"}, 404, "unknown-prepared"},
		{"missing-prepared", "POST", "/v1/approx", QueryRequest{SQL: "SELECT SUM(v) FROM demo"}, 400, "parse"},
		{"prepare-missing-name", "POST", "/v1/prepare", PrepareRequest{Table: "demo"}, 400, "parse"},
		{"prepare-unknown-table", "POST", "/v1/prepare", PrepareRequest{Name: "x", Table: "nope", Dimensions: []string{"k"}}, 404, "unknown-table"},
		{"delete-unknown", "DELETE", "/v1/prepared/ghost", nil, 404, "unknown-prepared"},
		{"budget-exceeded", "POST", "/v1/approx", QueryRequest{Prepared: "h", SQL: "SELECT SUM(v) FROM demo", Resamples: 2_000_000, TimeoutMS: 40}, 408, "budget-exceeded"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(tc.method, tc.path, tc.body)
			if status != tc.status {
				t.Errorf("status = %d, want %d (body %v)", status, tc.status, body)
			}
			if got := errKind(body); got != tc.kind {
				t.Errorf("kind = %q, want %q", got, tc.kind)
			}
			if e, _ := body["error"].(map[string]any); e != nil {
				if id, _ := e["request_id"].(string); id == "" {
					t.Error("error body missing request_id")
				}
			}
		})
	}

	// Prepare-name conflict: 409 on the second build.
	if code, body := do("POST", "/v1/prepare", PrepareRequest{
		Name: "h", Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.2, CellBudget: 100,
	}); code != http.StatusConflict || errKind(body) != "conflict" {
		t.Errorf("duplicate prepare = %d kind %q", code, errKind(body))
	}
}

// TestServerAdmissionUnderLoad is the acceptance-criteria integration
// test: 64 concurrent clients against a 4-wide gate with a 4-deep
// queue. It proves (a) concurrency never exceeds the configured limit,
// (b) overload is shed with 429 + Retry-After instead of queuing to
// die, and (c) the server state drains back to zero.
func TestServerAdmissionUnderLoad(t *testing.T) {
	const clients = 64
	db := newTestDB(t, 2000)
	srv := New(db, Config{MaxConcurrent: 4, MaxQueue: 4, DefaultTimeout: 10 * time.Second})
	var cur, peak atomic.Int64
	srv.hookGated = func(ctx context.Context) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		// Hold the slot long enough that 64 near-simultaneous arrivals
		// must overflow the 4+4 capacity.
		select {
		case <-time.After(15 * time.Millisecond):
		case <-ctx.Done():
		}
		cur.Add(-1)
	}
	base := startServer(t, srv)
	c := burstClient()

	start := make(chan struct{})
	type outcome struct {
		status     int
		retryAfter string
		kind       string
		latency    time.Duration
	}
	results := make(chan outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			t0 := time.Now()
			status, body, hdr := postJSON(t, c, base+"/v1/query", QueryRequest{
				SQL: "SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400", TimeoutMS: 10_000,
			})
			results <- outcome{
				status:     status,
				retryAfter: hdr.Get("Retry-After"),
				kind:       errKind(body),
				latency:    time.Since(t0),
			}
		}()
	}
	close(start)
	wg.Wait()
	close(results)

	var ok200, shed429, other int
	for r := range results {
		switch r.status {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
			if r.retryAfter == "" {
				t.Error("429 without Retry-After header")
			}
			if r.kind != "overloaded" {
				t.Errorf("429 kind = %q, want overloaded", r.kind)
			}
			// Shed, not queued to die: the response must come back far
			// inside the request's 10s deadline.
			if r.latency > 5*time.Second {
				t.Errorf("shed response took %v; sheds must be immediate", r.latency)
			}
		default:
			other++
			t.Errorf("unexpected status %d (kind %q)", r.status, r.kind)
		}
	}
	if ok200+shed429+other != clients {
		t.Errorf("accounted %d responses, want %d", ok200+shed429+other, clients)
	}
	if ok200 == 0 {
		t.Error("no request succeeded under load")
	}
	if shed429 == 0 {
		t.Error("64 clients against capacity 8 shed nothing; admission control inert")
	}
	if p := peak.Load(); p > 4 {
		t.Errorf("peak gated concurrency %d exceeds limit 4", p)
	}
	if got := srv.Gate().Shed(); got != int64(shed429) {
		t.Errorf("gate shed counter = %d, HTTP 429s = %d", got, shed429)
	}
	waitFor(t, 2*time.Second, func() bool {
		return srv.Gate().InFlight() == 0 && srv.Gate().Queued() == 0
	})
}

// TestServerClientDisconnectCancelsEngine proves a dropped client
// unwinds the engine work: a bootstrap query sized for tens of seconds
// is canceled client-side after ~50ms, and the server's in-flight count
// must return to zero long before the work could have finished.
func TestServerClientDisconnectCancelsEngine(t *testing.T) {
	db := newTestDB(t, 5000)
	prep, err := db.Prepare(aqppp.PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.2, CellBudget: 100, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{MaxConcurrent: 2, MaxQueue: 2})
	if err := srv.RegisterPrepared("h", prep); err != nil {
		t.Fatal(err)
	}
	base := startServer(t, srv)
	c := burstClient()

	raw, err := json.Marshal(QueryRequest{
		Prepared: "h", SQL: "SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400",
		// ~1000-row sample × 2M resamples ≈ a minute-plus of work if not
		// canceled (kept modest so the upfront replicate-slice allocation
		// doesn't dominate on small machines).
		Resamples: 2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/approx", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := c.Do(req)
		if err == nil {
			_ = resp.Body.Close()
		}
		errc <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return srv.Gate().InFlight() == 1 })
	time.Sleep(50 * time.Millisecond) // let the resample loop actually start
	cancel()
	if err := <-errc; err == nil {
		t.Error("client Do succeeded despite cancellation")
	}
	// The engine must unwind within one resample — seconds even on a
	// loaded single-core box, not the minute-plus the full schedule
	// would take.
	waitFor(t, 20*time.Second, func() bool { return srv.Gate().InFlight() == 0 })
	waitFor(t, 2*time.Second, func() bool { return srv.met.kindCount("canceled") >= 1 })
}

// TestServerGracefulDrain: Shutdown flips /readyz to 503 while the
// listener still accepts (DrainPause), completes the in-flight query,
// and leaks no goroutines.
func TestServerGracefulDrain(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	db := newTestDB(t, 2000)
	srv := New(db, Config{MaxConcurrent: 2, MaxQueue: 2, DrainPause: 400 * time.Millisecond})
	var sawCancel atomic.Bool
	srv.hookGated = func(ctx context.Context) {
		select {
		case <-time.After(300 * time.Millisecond):
		case <-ctx.Done():
			sawCancel.Store(true)
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	c := burstClient()

	// Readiness up before drain.
	resp, err := c.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain = %d", resp.StatusCode)
	}

	// One slow query in flight.
	type reply struct {
		status int
		err    error
	}
	inFlight := make(chan reply, 1)
	go func() {
		raw, _ := json.Marshal(QueryRequest{SQL: "SELECT SUM(v) FROM demo"})
		resp, err := c.Post(base+"/v1/query", "application/json", bytes.NewReader(raw))
		if err != nil {
			inFlight <- reply{err: err}
			return
		}
		_ = resp.Body.Close()
		inFlight <- reply{status: resp.StatusCode}
	}()
	waitFor(t, 5*time.Second, func() bool { return srv.Gate().InFlight() == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// During DrainPause the listener still accepts and readyz is 503.
	waitFor(t, time.Second, func() bool { return !srv.Ready() })
	resp, err = c.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz during drain pause: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", resp.StatusCode)
	}

	// The in-flight query must complete normally, not be hard-canceled.
	r := <-inFlight
	if r.err != nil || r.status != http.StatusOK {
		t.Errorf("in-flight query during drain: status %d err %v", r.status, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown = %v, want nil (clean drain)", err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("Serve = %v, want nil", err)
	}
	if sawCancel.Load() {
		t.Error("in-flight query was hard-canceled during a clean drain")
	}

	// No leaked goroutines once drained.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseGoroutines+4 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d live, started with %d", runtime.NumGoroutine(), baseGoroutines)
}

// TestServerDrainDeadlineHardCancels: when in-flight work outlives the
// drain deadline, Shutdown cancels the request contexts (unwinding the
// engine) and closes the connections, returning the deadline error.
func TestServerDrainDeadlineHardCancels(t *testing.T) {
	db := newTestDB(t, 2000)
	srv := New(db, Config{MaxConcurrent: 2, MaxQueue: 2})
	released := make(chan struct{})
	srv.hookGated = func(ctx context.Context) {
		<-ctx.Done() // hold the slot until hard-canceled
		close(released)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	c := burstClient()

	go func() {
		raw, _ := json.Marshal(QueryRequest{SQL: "SELECT SUM(v) FROM demo"})
		resp, err := c.Post(base+"/v1/query", "application/json", bytes.NewReader(raw))
		if err == nil {
			_ = resp.Body.Close()
		}
	}()
	waitFor(t, 5*time.Second, func() bool { return srv.Gate().InFlight() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Error("Shutdown = nil, want deadline error after hard cancel")
	}
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("hard cancel never reached the gated request")
	}
	if err := <-serveDone; err != nil {
		t.Errorf("Serve = %v, want nil", err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Gate().InFlight() == 0 })
}
