package server

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file is the Prometheus text-format (version 0.0.4) encoder for
// GET /metrics, hand-rolled on the stdlib: each family gets its # HELP
// and # TYPE line followed by its series, label values are escaped, and
// the latency histograms re-render the same log10(µs) buckets /statusz
// reports as cumulative le-bound buckets in seconds. /statusz stays the
// JSON surface for humans and tests; /metrics is the scrape surface.

// promEscape escapes a label value per the text-format rules.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// promHead writes one family's HELP and TYPE lines.
func promHead(b *bytes.Buffer, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promFloat renders a sample value (integers stay integral).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// boolGauge renders a bool as a 0/1 gauge sample.
func boolGauge(v bool) int {
	if v {
		return 1
	}
	return 0
}

// promEndpoint is one endpoint's metrics snapshot in deterministic
// (sorted) order for rendering.
type promEndpoint struct {
	name     string
	requests int64
	sumUS    float64
	statuses []promStatus
	buckets  []int64 // raw per-bucket counts over log10(µs)
}

// promStatus is one (status code, count) pair.
type promStatus struct {
	code  int
	count int64
}

// promKind is one (error kind, count) pair.
type promKind struct {
	name  string
	count int64
}

// promSnapshot renders the registry into sorted slices so the text
// output is deterministic run to run.
func (m *metrics) promSnapshot() (eps []promEndpoint, kinds []promKind) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		em := m.endpoints[name]
		pe := promEndpoint{
			name:     name,
			requests: em.requests,
			sumUS:    em.sumUS,
			buckets:  append([]int64(nil), em.latency.Counts...),
		}
		codes := make([]int, 0, len(em.statuses))
		for code := range em.statuses {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			pe.statuses = append(pe.statuses, promStatus{code: code, count: em.statuses[code]})
		}
		eps = append(eps, pe)
	}
	kindNames := make([]string, 0, len(m.kinds))
	for k := range m.kinds {
		kindNames = append(kindNames, k)
	}
	sort.Strings(kindNames)
	for _, k := range kindNames {
		kinds = append(kinds, promKind{name: k, count: m.kinds[k]})
	}
	return eps, kinds
}

// renderMetrics encodes the whole serving surface as Prometheus text.
func (s *Server) renderMetrics() []byte {
	var b bytes.Buffer

	promHead(&b, "aqppp_uptime_seconds", "gauge", "Seconds since the server started.")
	fmt.Fprintf(&b, "aqppp_uptime_seconds %s\n", promFloat(time.Since(s.start).Seconds()))

	promHead(&b, "aqppp_ready", "gauge", "1 while the server accepts new work, 0 once draining.")
	ready := 0
	if s.ready.Load() {
		ready = 1
	}
	fmt.Fprintf(&b, "aqppp_ready %d\n", ready)

	// Admission gate.
	promHead(&b, "aqppp_gate_in_flight", "gauge", "Requests currently holding an admission slot.")
	fmt.Fprintf(&b, "aqppp_gate_in_flight %d\n", s.gate.InFlight())
	promHead(&b, "aqppp_gate_queued", "gauge", "Requests currently waiting for an admission slot.")
	fmt.Fprintf(&b, "aqppp_gate_queued %d\n", s.gate.Queued())
	promHead(&b, "aqppp_gate_limit", "gauge", "Concurrency limit of the admission gate.")
	fmt.Fprintf(&b, "aqppp_gate_limit %d\n", s.gate.Limit())
	promHead(&b, "aqppp_gate_served_total", "counter", "Requests that completed gated work.")
	fmt.Fprintf(&b, "aqppp_gate_served_total %d\n", s.gate.Served())
	promHead(&b, "aqppp_gate_shed_total", "counter", "Requests shed by the admission gate (capacity or deadline).")
	fmt.Fprintf(&b, "aqppp_gate_shed_total %d\n", s.gate.Shed())
	promHead(&b, "aqppp_gate_queued_total", "counter", "Requests that waited in the admission queue.")
	fmt.Fprintf(&b, "aqppp_gate_queued_total %d\n", s.gate.QueuedTotal())

	// Response cache.
	cs := s.cache.Stats()
	promHead(&b, "aqppp_cache_hits_total", "counter", "Response cache hits (served without touching the gate).")
	fmt.Fprintf(&b, "aqppp_cache_hits_total %d\n", cs.Hits)
	promHead(&b, "aqppp_cache_misses_total", "counter", "Response cache misses.")
	fmt.Fprintf(&b, "aqppp_cache_misses_total %d\n", cs.Misses)
	promHead(&b, "aqppp_cache_evictions_total", "counter", "Response cache entries evicted by size or TTL.")
	fmt.Fprintf(&b, "aqppp_cache_evictions_total %d\n", cs.Evictions)
	promHead(&b, "aqppp_cache_invalidations_total", "counter", "Response cache entries dropped on a table-generation mismatch.")
	fmt.Fprintf(&b, "aqppp_cache_invalidations_total %d\n", cs.Invalidations)
	promHead(&b, "aqppp_cache_entries", "gauge", "Response cache resident entries.")
	fmt.Fprintf(&b, "aqppp_cache_entries %d\n", cs.Entries)
	promHead(&b, "aqppp_cache_bytes", "gauge", "Response cache resident bytes (accounting estimate).")
	fmt.Fprintf(&b, "aqppp_cache_bytes %d\n", cs.Bytes)

	// Per-client quota.
	promHead(&b, "aqppp_quota_shed_total", "counter", "Requests shed for exceeding a per-client quota.")
	fmt.Fprintf(&b, "aqppp_quota_shed_total %d\n", s.quota.Shed())
	promHead(&b, "aqppp_quota_clients", "gauge", "Client token buckets currently tracked.")
	fmt.Fprintf(&b, "aqppp_quota_clients %d\n", s.quota.Clients())

	// Contract serving: outcome counters plus the per-round latency
	// histogram of the progressive SSE stream.
	s.met.mu.Lock()
	cMet, cInf, cEsc := s.met.contractMet, s.met.contractInfeasible, s.met.contractEscalated
	progBuckets := append([]int64(nil), s.met.progRounds.Counts...)
	progSumUS, progCount := s.met.progSumUS, s.met.progCount
	s.met.mu.Unlock()
	promHead(&b, "aqppp_contract_met_total", "counter", "Contract queries answered within their error bound.")
	fmt.Fprintf(&b, "aqppp_contract_met_total %d\n", cMet)
	promHead(&b, "aqppp_contract_infeasible_total", "counter", "Contract queries rejected as infeasible (422).")
	fmt.Fprintf(&b, "aqppp_contract_infeasible_total %d\n", cInf)
	promHead(&b, "aqppp_contract_escalated_total", "counter", "Contract queries that needed a costlier rung than planned.")
	fmt.Fprintf(&b, "aqppp_contract_escalated_total %d\n", cEsc)

	eps, kinds := s.met.promSnapshot()

	// Error kinds.
	promHead(&b, "aqppp_errors_total", "counter", "Errors by taxonomy kind.")
	for _, k := range kinds {
		fmt.Fprintf(&b, "aqppp_errors_total{kind=\"%s\"} %d\n", promEscape(k.name), k.count)
	}

	// Per-endpoint request counters.
	promHead(&b, "aqppp_http_requests_total", "counter", "HTTP requests by endpoint and status code.")
	for _, ep := range eps {
		for _, st := range ep.statuses {
			fmt.Fprintf(&b, "aqppp_http_requests_total{endpoint=\"%s\",status=\"%d\"} %d\n",
				promEscape(ep.name), st.code, st.count)
		}
	}

	// Latency histograms. The registry buckets log10(latency µs) with
	// fixed width; bucket i covers [10^(min+i·w), 10^(min+(i+1)·w)) µs,
	// so the le bound after bucket i is 10^(min+(i+1)·w)/1e6 seconds.
	// The final bucket is the registry's clamp bucket (it absorbs
	// everything ≥ its lower bound), so it folds into +Inf rather than
	// pretending to have a finite upper bound.
	promHead(&b, "aqppp_http_request_duration_seconds", "histogram", "Request wall time by endpoint (log-scale buckets, 1µs–1s).")
	width := (latLogMax - latLogMin) / float64(latBuckets)
	for _, ep := range eps {
		name := promEscape(ep.name)
		var cum int64
		for i := 0; i < latBuckets-1; i++ {
			cum += ep.buckets[i]
			le := math.Pow(10, latLogMin+float64(i+1)*width) / 1e6
			fmt.Fprintf(&b, "aqppp_http_request_duration_seconds_bucket{endpoint=\"%s\",le=\"%s\"} %d\n",
				name, promFloat(le), cum)
		}
		fmt.Fprintf(&b, "aqppp_http_request_duration_seconds_bucket{endpoint=\"%s\",le=\"+Inf\"} %d\n",
			name, ep.requests)
		fmt.Fprintf(&b, "aqppp_http_request_duration_seconds_sum{endpoint=\"%s\"} %s\n",
			name, promFloat(ep.sumUS/1e6))
		fmt.Fprintf(&b, "aqppp_http_request_duration_seconds_count{endpoint=\"%s\"} %d\n",
			name, ep.requests)
	}

	// Progressive streaming: per-round wall time (same log-scale
	// buckets as the request histogram, so dashboards line up).
	promHead(&b, "aqppp_progressive_round_duration_seconds", "histogram", "Progressive stream per-round wall time (log-scale buckets, 1µs–1s).")
	{
		var cum int64
		for i := 0; i < latBuckets-1; i++ {
			cum += progBuckets[i]
			le := math.Pow(10, latLogMin+float64(i+1)*width) / 1e6
			fmt.Fprintf(&b, "aqppp_progressive_round_duration_seconds_bucket{le=\"%s\"} %d\n",
				promFloat(le), cum)
		}
		fmt.Fprintf(&b, "aqppp_progressive_round_duration_seconds_bucket{le=\"+Inf\"} %d\n", progCount)
		fmt.Fprintf(&b, "aqppp_progressive_round_duration_seconds_sum %s\n", promFloat(progSumUS/1e6))
		fmt.Fprintf(&b, "aqppp_progressive_round_duration_seconds_count %d\n", progCount)
	}

	// Sharded tables: layout gauges, pruning counters, and per-shard
	// scan-latency histograms (same log-scale buckets as the request
	// histogram, so the two line up on one dashboard).
	snaps := s.db.ShardSnapshots()
	if len(snaps) > 0 {
		promHead(&b, "aqppp_shard_rows", "gauge", "Rows resident in each shard of a sharded table.")
		for _, sn := range snaps {
			for _, sh := range sn.Shards {
				fmt.Fprintf(&b, "aqppp_shard_rows{table=\"%s\",shard=\"%d\"} %d\n",
					promEscape(sn.Table), sh.Index, sh.Rows)
			}
		}
		promHead(&b, "aqppp_shards_pruned_total", "counter", "Shard scans skipped by range-bound pruning.")
		for _, sn := range snaps {
			fmt.Fprintf(&b, "aqppp_shards_pruned_total{table=\"%s\"} %d\n", promEscape(sn.Table), sn.Pruned)
		}
		promHead(&b, "aqppp_shard_scan_duration_seconds", "histogram", "Per-shard sub-plan scan time (log-scale buckets, 1µs–1s).")
		for _, sn := range snaps {
			table := promEscape(sn.Table)
			for _, sh := range sn.Shards {
				var cum int64
				for i := 0; i < latBuckets-1; i++ {
					cum += sh.Latency[i]
					le := math.Pow(10, latLogMin+float64(i+1)*width) / 1e6
					fmt.Fprintf(&b, "aqppp_shard_scan_duration_seconds_bucket{table=\"%s\",shard=\"%d\",le=\"%s\"} %d\n",
						table, sh.Index, promFloat(le), cum)
				}
				fmt.Fprintf(&b, "aqppp_shard_scan_duration_seconds_bucket{table=\"%s\",shard=\"%d\",le=\"+Inf\"} %d\n",
					table, sh.Index, sh.Scans)
				fmt.Fprintf(&b, "aqppp_shard_scan_duration_seconds_sum{table=\"%s\",shard=\"%d\"} %s\n",
					table, sh.Index, promFloat(sh.LatencySumUS/1e6))
				fmt.Fprintf(&b, "aqppp_shard_scan_duration_seconds_count{table=\"%s\",shard=\"%d\"} %d\n",
					table, sh.Index, sh.Scans)
			}
		}
	}

	// Distributed fleet (coordinator only): topology, per-replica
	// request/retry/failure/hedge/shed counters and request-latency
	// histograms (same log-scale buckets as everything else).
	if c := s.cfg.Coordinator; c != nil {
		sn := c.Snapshot()
		promHead(&b, "aqppp_dist_topology_generation", "gauge", "Fleet topology generation folded into distributed cache keys.")
		fmt.Fprintf(&b, "aqppp_dist_topology_generation{table=\"%s\"} %d\n", promEscape(sn.Table), sn.TopoGen)
		promHead(&b, "aqppp_dist_pruned_total", "counter", "Replica requests skipped by range-bound pruning.")
		fmt.Fprintf(&b, "aqppp_dist_pruned_total{table=\"%s\"} %d\n", promEscape(sn.Table), sn.Pruned)
		promHead(&b, "aqppp_dist_degraded_total", "counter", "Distributed answers served degraded from surviving strata.")
		fmt.Fprintf(&b, "aqppp_dist_degraded_total{table=\"%s\"} %d\n", promEscape(sn.Table), sn.Degraded)
		promHead(&b, "aqppp_replica_healthy", "gauge", "1 while the replica's last partial round trip succeeded.")
		for _, rp := range sn.Replicas {
			fmt.Fprintf(&b, "aqppp_replica_healthy{replica=\"%s\"} %d\n", promEscape(rp.URL), boolGauge(rp.Healthy))
		}
		promHead(&b, "aqppp_replica_requests_total", "counter", "Partial-request attempts per replica.")
		for _, rp := range sn.Replicas {
			fmt.Fprintf(&b, "aqppp_replica_requests_total{replica=\"%s\"} %d\n", promEscape(rp.URL), rp.Requests)
		}
		promHead(&b, "aqppp_replica_retries_total", "counter", "Partial-request retries per replica.")
		for _, rp := range sn.Replicas {
			fmt.Fprintf(&b, "aqppp_replica_retries_total{replica=\"%s\"} %d\n", promEscape(rp.URL), rp.Retries)
		}
		promHead(&b, "aqppp_replica_failures_total", "counter", "Partial requests that exhausted every attempt per replica.")
		for _, rp := range sn.Replicas {
			fmt.Fprintf(&b, "aqppp_replica_failures_total{replica=\"%s\"} %d\n", promEscape(rp.URL), rp.Failures)
		}
		promHead(&b, "aqppp_replica_hedges_total", "counter", "Hedged duplicate attempts launched per replica.")
		for _, rp := range sn.Replicas {
			fmt.Fprintf(&b, "aqppp_replica_hedges_total{replica=\"%s\"} %d\n", promEscape(rp.URL), rp.Hedges)
		}
		promHead(&b, "aqppp_replica_shed_total", "counter", "Partial requests the replica shed with 429 per replica.")
		for _, rp := range sn.Replicas {
			fmt.Fprintf(&b, "aqppp_replica_shed_total{replica=\"%s\"} %d\n", promEscape(rp.URL), rp.Shed)
		}
		promHead(&b, "aqppp_replica_request_duration_seconds", "histogram", "Successful partial round-trip time per replica (log-scale buckets, 1µs–1s).")
		for _, rp := range sn.Replicas {
			name := promEscape(rp.URL)
			var cum, total int64
			for _, n := range rp.Latency {
				total += n
			}
			for i := 0; i < latBuckets-1; i++ {
				cum += rp.Latency[i]
				le := math.Pow(10, latLogMin+float64(i+1)*width) / 1e6
				fmt.Fprintf(&b, "aqppp_replica_request_duration_seconds_bucket{replica=\"%s\",le=\"%s\"} %d\n",
					name, promFloat(le), cum)
			}
			fmt.Fprintf(&b, "aqppp_replica_request_duration_seconds_bucket{replica=\"%s\",le=\"+Inf\"} %d\n", name, total)
			fmt.Fprintf(&b, "aqppp_replica_request_duration_seconds_sum{replica=\"%s\"} %s\n", name, promFloat(rp.LatencySumUS/1e6))
			fmt.Fprintf(&b, "aqppp_replica_request_duration_seconds_count{replica=\"%s\"} %d\n", name, total)
		}
	}

	// Shared-quota lease client (replica side of fleet quota).
	if ql := s.cfg.QuotaLease; ql != nil {
		sn := ql.Snapshot()
		promHead(&b, "aqppp_quota_lease_calls_total", "counter", "Lease round trips to the quota authority.")
		fmt.Fprintf(&b, "aqppp_quota_lease_calls_total %d\n", sn.LeaseCalls)
		promHead(&b, "aqppp_quota_lease_denied_total", "counter", "Requests denied because the authority granted zero tokens.")
		fmt.Fprintf(&b, "aqppp_quota_lease_denied_total %d\n", sn.Denied)
		promHead(&b, "aqppp_quota_lease_failopen_total", "counter", "Requests admitted because the quota authority was unreachable.")
		fmt.Fprintf(&b, "aqppp_quota_lease_failopen_total %d\n", sn.FailOpen)
	}

	// Disk-backed stores: block-cache counters and resident bytes per
	// table. A miss is one disk read + decode; blocks the zone maps
	// prune appear in neither counter.
	stores := s.db.StoreSnapshots()
	if len(stores) > 0 {
		promHead(&b, "aqppp_store_cache_hits_total", "counter", "Store block-cache hits by table.")
		for _, sn := range stores {
			fmt.Fprintf(&b, "aqppp_store_cache_hits_total{table=\"%s\"} %d\n", promEscape(sn.Table), sn.Cache.Hits)
		}
		promHead(&b, "aqppp_store_cache_misses_total", "counter", "Store block-cache misses (each one disk read + decode) by table.")
		for _, sn := range stores {
			fmt.Fprintf(&b, "aqppp_store_cache_misses_total{table=\"%s\"} %d\n", promEscape(sn.Table), sn.Cache.Misses)
		}
		promHead(&b, "aqppp_store_cache_evictions_total", "counter", "Store block-cache evictions by table.")
		for _, sn := range stores {
			fmt.Fprintf(&b, "aqppp_store_cache_evictions_total{table=\"%s\"} %d\n", promEscape(sn.Table), sn.Cache.Evictions)
		}
		promHead(&b, "aqppp_store_cache_resident_bytes", "gauge", "Decoded blocks resident in the store cache by table.")
		for _, sn := range stores {
			fmt.Fprintf(&b, "aqppp_store_cache_resident_bytes{table=\"%s\"} %d\n", promEscape(sn.Table), sn.Cache.ResidentBytes)
		}
		promHead(&b, "aqppp_store_file_bytes", "gauge", "Store container size on disk by table.")
		for _, sn := range stores {
			fmt.Fprintf(&b, "aqppp_store_file_bytes{table=\"%s\"} %d\n", promEscape(sn.Table), sn.FileBytes)
		}
	}
	return b.Bytes()
}

// handleMetrics answers GET /metrics with the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(s.renderMetrics())
}
