package baseline

import (
	"fmt"

	"aqppp/internal/cube"
	"aqppp/internal/engine"
)

// AggPre is the pure aggregate-precomputation baseline: the complete
// P-Cube, answering exactly and instantly but at preprocessing cost
// proportional to ∏|dom(C_i)| (Table 1's ">10 TB / >1 day" row at paper
// scale).
type AggPre struct {
	Cube *cube.BPCube
}

// NewAggPre builds the full P-Cube for the template.
func NewAggPre(tbl *engine.Table, tmpl cube.Template) (*AggPre, error) {
	c, err := cube.BuildFull(tbl, tmpl)
	if err != nil {
		return nil, err
	}
	return &AggPre{Cube: c}, nil
}

// Answer returns the exact answer from the cube. Queries the cube cannot
// express (wrong aggregate, unknown dimension) are errors.
func (a *AggPre) Answer(q engine.Query) (float64, error) {
	v, ok := a.Cube.AnswerExact(q)
	if !ok {
		return 0, fmt.Errorf("baseline: P-Cube cannot answer %v", q)
	}
	return v, nil
}

// SizeBytes reports the cube's storage footprint.
func (a *AggPre) SizeBytes() int64 { return a.Cube.SizeBytes() }

// FullCubeCells returns the number of cells a complete P-Cube holds for
// the template without building it: ∏ distinct(C_i). The paper uses this
// to report AggPre's (prohibitive) cost at scale.
func FullCubeCells(tbl *engine.Table, tmpl cube.Template) (int64, error) {
	total := int64(1)
	for _, d := range tmpl.Dims {
		col, err := tbl.Column(d)
		if err != nil {
			return 0, err
		}
		distinct := make(map[float64]struct{})
		for i := 0; i < col.Len(); i++ {
			distinct[col.Ordinal(i)] = struct{}{}
		}
		total *= int64(len(distinct))
	}
	return total, nil
}
